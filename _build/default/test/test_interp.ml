(* Unit tests for the interpreter: semantics, control flow, hooks,
   cycle accounting, forking. *)

open Privateer_ir
open Privateer_interp

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run a Cmini main() and return its integer result. *)
let run_int ?setup src =
  let program = Privateer_lang.Parser.parse_program_exn src in
  let st = Interp.create program in
  (match setup with Some f -> f st | None -> ());
  (Value.as_int (Interp.run_entry st), st)

let result_of src = fst (run_int src)

let test_arithmetic () =
  check_int "precedence" 14 (result_of "fn main() { return 2 + 3 * 4; }");
  check_int "sub/div" 3 (result_of "fn main() { return (10 - 1) / 3; }");
  check_int "rem" 2 (result_of "fn main() { return 17 % 5; }");
  check_int "shift" 40 (result_of "fn main() { return 5 << 3; }");
  check_int "bits" 6 (result_of "fn main() { return (7 & 14) | (1 ^ 1); }");
  check_int "unary" (-5) (result_of "fn main() { return -(2 + 3); }");
  check_int "bnot" (-1) (result_of "fn main() { return ~0; }");
  check_int "cmp chain" 1 (result_of "fn main() { return (3 < 4) == (10 >= 10); }")

let test_float_arithmetic () =
  check_int "float compare" 1 (result_of "fn main() { return 1.5 *. 2.0 ==. 3.0; }");
  check_int "ftoi" 3 (result_of "fn main() { return ftoi(3.9); }");
  check_int "itof/fdiv" 1 (result_of "fn main() { return itof(7) /. 2.0 ==. 3.5; }");
  check_int "fneg" 1 (result_of "fn main() { return -. 2.5 <. 0.0; }");
  check_int "builtin sqrt" 1 (result_of "fn main() { return sqrt(9.0) ==. 3.0; }");
  check_int "builtin pow" 1 (result_of "fn main() { return pow(2.0, 10.0) ==. 1024.0; }")

let test_division_by_zero () =
  check "div by zero raises" true
    (try
       ignore (result_of "fn main() { return 1 / 0; }");
       false
     with Interp.Runtime_error _ -> true)

let test_short_circuit () =
  (* The right operand must not be evaluated when the left decides:
     1/0 would raise. *)
  check_int "and shortcircuits" 0 (result_of "fn main() { return 0 && (1 / 0); }");
  check_int "or shortcircuits" 1 (result_of "fn main() { return 1 || (1 / 0); }");
  check_int "and both" 1 (result_of "fn main() { return 2 && 3; }");
  check_int "or falls through" 0 (result_of "fn main() { return 0 || 0; }")

let test_control_flow () =
  check_int "if/else" 10 (result_of "fn main() { if (1 < 2) { return 10; } return 20; }");
  check_int "else taken" 20 (result_of "fn main() { if (2 < 1) { return 10; } else { return 20; } }");
  check_int "while loop" 45
    (result_of "fn main() { var s = 0; var i = 0; while (i < 10) { s = s + i; i = i + 1; } return s; }");
  check_int "for loop" 45
    (result_of "fn main() { var s = 0; for (i = 0; i < 10) { s = s + i; } return s; }");
  check_int "break" 3
    (result_of "fn main() { var s = 0; for (i = 0; i < 10) { if (i == 3) { break; } s = i; } return s + 1; }");
  check_int "continue" 25
    (result_of
       "fn main() { var s = 0; for (i = 0; i < 10) { if (i % 2 == 0) { continue; } s = s + i; } return s; }");
  check_int "nested loops" 100
    (result_of
       "fn main() { var s = 0; for (i = 0; i < 10) { for (j = 0; j < 10) { s = s + 1; } } return s; }")

let test_for_induction_final_value () =
  check_int "var holds limit after loop" 10
    (result_of "fn main() { for (i = 0; i < 10) { } return i; }");
  check_int "empty loop leaves init" 5
    (result_of "fn main() { for (i = 5; i < 3) { } return i; }")

let test_functions () =
  check_int "fib" 55
    (result_of
       "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } fn main() { return fib(10); }");
  check_int "void returns 0" 0 (result_of "fn f() { } fn main() { return f(); }");
  check_int "multiple args" 6 (result_of "fn add3(a, b, c) { return a + b + c; } fn main() { return add3(1, 2, 3); }");
  check "arity mismatch raises" true
    (try
       ignore (result_of "fn f(a) { return a; } fn main() { return f(1, 2); }");
       false
     with Interp.Runtime_error _ -> true)

let test_memory_ops () =
  check_int "malloc store/load" 99
    (result_of "fn main() { var p = malloc(2); p[1] = 99; return p[1]; }");
  check_int "byte ops" 200
    (result_of "fn main() { var p = malloc(1); store1(p + 3, 200); return load1(p + 3); }");
  check_int "globals scalar" 7
    (result_of "global g; fn main() { g = 7; return g; }");
  check_int "globals array" 30
    (result_of "global a[4]; fn main() { a[0] = 10; a[1] = 20; return a[0] + a[1]; }");
  check_int "address-of" 5
    (result_of "global g; fn set(p) { p[0] = 5; } fn main() { set(&g); return g; }")

let test_salloc_auto_free () =
  let src = "fn f() { var buf[8]; buf[0] = 1; return buf[0]; } fn main() { var s = 0; for (i = 0; i < 100) { s = s + f(); } return s; }" in
  let program = Privateer_lang.Parser.parse_program_exn src in
  let st = Interp.create program in
  let r = Interp.run_entry st in
  check_int "runs" 100 (Value.as_int r);
  (* All stack slots must have been freed at function exits. *)
  check_int "no leaked stack slots" 0
    (Privateer_machine.Allocator.live_count
       (Privateer_machine.Machine.allocator st.machine Heap.Stack))

let test_print_formatting () =
  let program =
    Privateer_lang.Parser.parse_program_exn
      {|fn main() { print("i=%d f=%f x=%x pct=%%\n", 42, 1.5, 255); return 0; }|}
  in
  let st = Interp.create program in
  ignore (Interp.run_entry st);
  Alcotest.(check string) "output" "i=42 f=1.500000 x=ff pct=%\n" (Interp.output st)

let test_print_arity_errors () =
  check "too few args raises" true
    (try
       ignore (result_of {|fn main() { print("%d %d", 1); return 0; }|});
       false
     with Interp.Runtime_error _ -> true);
  check "too many args raises" true
    (try
       ignore (result_of {|fn main() { print("%d", 1, 2); return 0; }|});
       false
     with Interp.Runtime_error _ -> true)

let test_cycles_monotonic () =
  let _, st1 = run_int "fn main() { return 1; }" in
  let _, st2 = run_int "fn main() { var s = 0; for (i = 0; i < 100) { s = s + i; } return s; }" in
  check "work costs cycles" true (st2.cycles > st1.cycles);
  check "trivial program is cheap" true (st1.cycles < 100)

let test_step_budget () =
  let program = Privateer_lang.Parser.parse_program_exn "fn main() { while (1) { } return 0; }" in
  let st = Interp.create ~max_steps:10_000 program in
  check "infinite loop hits budget" true
    (try
       ignore (Interp.run_entry st);
       false
     with Interp.Runtime_error _ -> true)

let test_hooks_fire () =
  let src = "global g[4]; fn main() { for (i = 0; i < 3) { g[i] = i; g[0] = g[i] + 1; } return 0; }" in
  let program = Privateer_lang.Parser.parse_program_exn src in
  let st = Interp.create program in
  let loads = ref 0 and stores = ref 0 and iters = ref 0 and enters = ref 0 in
  st.hooks <-
    { Hooks.default with
      on_load = (fun _ ~addr:_ ~size:_ ~value:_ -> incr loads);
      on_store = (fun _ ~addr:_ ~size:_ ~value:_ -> incr stores);
      on_loop_iter = (fun _ ~iter:_ -> incr iters);
      on_loop_enter = (fun _ -> incr enters) };
  ignore (Interp.run_entry st);
  check_int "loads" 3 !loads;
  check_int "stores" 6 !stores;
  check_int "iterations" 3 !iters;
  check_int "loop entries" 1 !enters

let test_alloc_free_hooks () =
  let src = "fn main() { for (i = 0; i < 5) { var p = malloc(2); p[0] = i; free(p); } return 0; }" in
  let program = Privateer_lang.Parser.parse_program_exn src in
  let st = Interp.create program in
  let allocs = ref 0 and frees = ref 0 and ctx_depth = ref (-1) in
  st.hooks <-
    { Hooks.default with
      on_alloc =
        (fun _ ~ctx _ _ ~addr:_ ~size:_ ->
          incr allocs;
          ctx_depth := List.length ctx);
      on_free = (fun _ ~addr:_ ~size:_ _ -> incr frees) };
  ignore (Interp.run_entry st);
  check_int "allocs" 5 !allocs;
  check_int "frees" 5 !frees;
  (* Context: entry call + the for loop. *)
  check_int "dynamic context depth" 2 !ctx_depth

let test_fork_isolation () =
  let src = "global g; fn main() { g = 1; return 0; }" in
  let program = Privateer_lang.Parser.parse_program_exn src in
  let st = Interp.create program in
  ignore (Interp.run_entry st);
  let child = Interp.fork st in
  let gaddr = Hashtbl.find st.globals "g" in
  Privateer_machine.Machine.set_int child.machine gaddr 2;
  check_int "parent unchanged" 1 (Privateer_machine.Machine.get_int st.machine gaddr);
  check_int "child sees own write" 2
    (Privateer_machine.Machine.get_int child.machine gaddr)

let test_assert_value_hook () =
  let b = Builder.create () in
  let body =
    [ Ast.Assert_value (Builder.fresh b, Ast.Int 5, 5);
      Ast.Assert_value (Builder.fresh b, Ast.Int 6, 5); Ast.Return (Some (Ast.Int 0)) ]
  in
  let program =
    Builder.program b ~globals:[] ~funcs:[ Builder.func "main" [] body ] ~entry:"main"
  in
  let st = Interp.create program in
  let oks = ref [] in
  st.hooks <-
    { Hooks.default with
      on_assert_value = (fun _ ~observed:_ ~expected:_ ~ok -> oks := ok :: !oks) };
  ignore (Interp.run_entry st);
  check "first passes, second fails" true (!oks = [ false; true ])

let test_check_heap_stmt () =
  let b = Builder.create () in
  let alloc_e = Builder.malloc b (Ast.Int 16) in
  let body =
    [ Ast.Assign ("p", alloc_e);
      Ast.Check_heap (Builder.fresh b, Ast.Local "p", Heap.Default);
      Ast.Check_heap (Builder.fresh b, Ast.Local "p", Heap.Private);
      Ast.Return (Some (Ast.Int 0)) ]
  in
  let program =
    Builder.program b ~globals:[] ~funcs:[ Builder.func "main" [] body ] ~entry:"main"
  in
  let st = Interp.create program in
  let outcomes = ref [] in
  st.hooks <-
    { Hooks.default with
      on_check_heap = (fun _ ~addr:_ _ ~ok -> outcomes := ok :: !outcomes) };
  ignore (Interp.run_entry st);
  check "default heap passes, private fails" true (!outcomes = [ false; true ])

let suite =
  [ Alcotest.test_case "integer arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "float arithmetic" `Quick test_float_arithmetic;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "short-circuit && ||" `Quick test_short_circuit;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "for induction final value" `Quick test_for_induction_final_value;
    Alcotest.test_case "functions and recursion" `Quick test_functions;
    Alcotest.test_case "memory operations" `Quick test_memory_ops;
    Alcotest.test_case "stack slots auto-free" `Quick test_salloc_auto_free;
    Alcotest.test_case "print formatting" `Quick test_print_formatting;
    Alcotest.test_case "print arity errors" `Quick test_print_arity_errors;
    Alcotest.test_case "cycle accounting" `Quick test_cycles_monotonic;
    Alcotest.test_case "step budget stops runaways" `Quick test_step_budget;
    Alcotest.test_case "load/store/loop hooks" `Quick test_hooks_fire;
    Alcotest.test_case "alloc/free hooks and context" `Quick test_alloc_free_hooks;
    Alcotest.test_case "fork isolation" `Quick test_fork_isolation;
    Alcotest.test_case "assert-value hook" `Quick test_assert_value_hook;
    Alcotest.test_case "check-heap statement" `Quick test_check_heap_stmt ]
