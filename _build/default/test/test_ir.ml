(* Unit tests for the IR utilities: pretty-printer, structural
   validator, builder, hooks composition, and AST traversals. *)

open Privateer_ir

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---- pretty printer ----------------------------------------------------- *)

let test_pp_expressions () =
  let b = Builder.create () in
  check_str "arith" "(1 + (2 * x))"
    (Pp.expr_str (Builder.add (Ast.Int 1) (Builder.mul (Ast.Int 2) (Ast.Local "x"))));
  check_str "load" "load((&g + (8 * i)))"
    (Pp.expr_str (Builder.load b (Builder.word (Ast.Global_addr "g") (Ast.Local "i"))));
  check_str "float" "(x <=. 2.5)"
    (Pp.expr_str (Ast.Binop (Fle, Local "x", Float 2.5)));
  check_str "alloc with heap" "malloc(16, short-lived)"
    (Pp.expr_str (Ast.Alloc (0, Malloc, Some Heap.Short_lived, Int 16)));
  check_str "call" "f(1, y)" (Pp.expr_str (Ast.Call (1, "f", [ Int 1; Local "y" ])));
  check_str "logic" "(a && (b || c))"
    (Pp.expr_str (Ast.And (Local "a", Ast.Or (Local "b", Local "c"))))

let test_pp_statements () =
  let lines = Pp.stmt_lines 0 (Ast.Misspec (7, "control")) in
  check "misspec marker renders" true (lines = [ "misspec(\"control\");" ]);
  let lines = Pp.stmt_lines 2 (Ast.Assert_value (8, Ast.Local "x", 0)) in
  check "assert renders as guarded misspec" true
    (lines = [ "  if (x != 0) misspec();" ]);
  let prog =
    Privateer_lang.Parser.parse_program_exn
      "global g[2]; fn main() { g[0] = 1; if (g[0] > 0) { print(\"hi\\n\"); } return 0; }"
  in
  let s = Pp.program_str prog in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  check "program renders globals" true (contains "global g[16]");
  check "renders the if" true (contains "if (")

(* ---- validator ----------------------------------------------------------- *)

let test_validate_duplicate_ids () =
  let bad =
    { Ast.globals = []; entry = "main"; next_id = 10;
      funcs =
        [ { fname = "main"; params = [];
            body =
              [ Store (1, S8, Int 0, Int 0); Store (1, S8, Int 8, Int 0);
                Return None ] } ] }
  in
  check "duplicate ids caught" true
    (List.exists
       (fun e -> match e with Validate.Duplicate_node_id 1 -> true | _ -> false)
       (Validate.check bad))

let test_validate_watermark () =
  let bad =
    { Ast.globals = []; entry = "main"; next_id = 1;
      funcs = [ { fname = "main"; params = []; body = [ Store (5, S8, Int 0, Int 0) ] } ] }
  in
  check "watermark violation caught" true
    (List.exists
       (fun e -> match e with Validate.Node_id_above_watermark 5 -> true | _ -> false)
       (Validate.check bad))

let test_validate_unknowns () =
  let bad =
    { Ast.globals = []; entry = "main"; next_id = 10;
      funcs =
        [ { fname = "main"; params = [];
            body = [ Expr (Call (1, "nope", [])); Expr (Global_addr "gone") ] } ] }
  in
  let errs = Validate.check bad in
  check "unknown function" true
    (List.exists (fun e -> e = Validate.Unknown_function "nope") errs);
  check "unknown global" true
    (List.exists (fun e -> e = Validate.Unknown_global "gone") errs)

let test_validate_stray_break () =
  let bad =
    { Ast.globals = []; entry = "main"; next_id = 10;
      funcs = [ { fname = "main"; params = []; body = [ Break ] } ] }
  in
  check "stray break caught" true
    (List.exists
       (fun e -> match e with Validate.Stray_break_continue _ -> true | _ -> false)
       (Validate.check bad));
  check "break inside loop fine" true
    (Validate.check
       { Ast.globals = []; entry = "main"; next_id = 10;
         funcs =
           [ { fname = "main"; params = [];
               body = [ While (1, Int 1, [ Break ]) ] } ] }
    = [])

let test_validate_missing_entry () =
  let bad = { Ast.globals = []; entry = "main"; next_id = 1; funcs = [] } in
  check "missing entry" true
    (List.exists (fun e -> e = Validate.Missing_entry "main") (Validate.check bad))

(* ---- traversals ----------------------------------------------------------- *)

let test_loops_of_program () =
  let prog =
    Privateer_lang.Parser.parse_program_exn
      {|fn helper() { while (0) { } }
fn main() { for (i = 0; i < 2) { for (j = 0; j < 2) { } } helper(); return 0; }|}
  in
  let loops = Ast.loops_of_program prog in
  check_int "three loops" 3 (List.length loops);
  (* Outermost first within each function: the first listed loop
     contains the second in its body. *)
  match List.filter (fun ((f : Ast.func), _) -> f.fname = "main") loops with
  | [ (_, (_, Ast.For (_, _, _, _, outer_body))); (_, (inner, _)) ] ->
    check "outer listed first" true
      (List.exists (fun (id, _) -> id = inner) (Ast.loops_of_block outer_body))
  | _ -> Alcotest.fail "main's loops"

let test_iter_exprs_depth () =
  let prog =
    Privateer_lang.Parser.parse_program_exn
      "global g[4]; fn main() { g[g[0]] = g[1] + 2; return 0; }"
  in
  let loads = ref 0 in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_exprs
        (fun e -> match e with Ast.Load _ -> incr loads | _ -> ())
        f.body)
    prog.funcs;
  check_int "nested loads found" 2 !loads

(* ---- hooks composition ------------------------------------------------------ *)

let test_hooks_compose_order () =
  let open Privateer_interp in
  let log = ref [] in
  let mk tag =
    { Hooks.default with
      on_load = (fun _ ~addr:_ ~size:_ ~value:_ -> log := tag :: !log) }
  in
  let composed = Hooks.compose (mk "a") (mk "b") in
  composed.on_load 0 ~addr:0 ~size:8 ~value:(Value.VInt 0);
  check "a fires before b" true (!log = [ "b"; "a" ])

(* ---- builder ---------------------------------------------------------------- *)

let test_builder_fresh_ids () =
  let b = Builder.create ~first_id:100 () in
  let e1 = Builder.load b (Ast.Int 0) in
  let e2 = Builder.malloc b (Ast.Int 8) in
  (match (e1, e2) with
  | Ast.Load (i1, _, _), Ast.Alloc (i2, _, _, _) ->
    check_int "first id" 100 i1;
    check_int "second id" 101 i2
  | _ -> Alcotest.fail "builder shapes");
  let prog =
    Builder.program b ~globals:[ Builder.global "g" 8 ]
      ~funcs:[ Builder.func "main" [] [ Ast.Return (Some (Ast.Int 0)) ] ]
      ~entry:"main"
  in
  check_int "watermark recorded" 102 prog.next_id

let suite =
  [ Alcotest.test_case "pp: expressions" `Quick test_pp_expressions;
    Alcotest.test_case "pp: statements" `Quick test_pp_statements;
    Alcotest.test_case "validate: duplicate ids" `Quick test_validate_duplicate_ids;
    Alcotest.test_case "validate: id watermark" `Quick test_validate_watermark;
    Alcotest.test_case "validate: unknown names" `Quick test_validate_unknowns;
    Alcotest.test_case "validate: stray break" `Quick test_validate_stray_break;
    Alcotest.test_case "validate: missing entry" `Quick test_validate_missing_entry;
    Alcotest.test_case "loops_of_program" `Quick test_loops_of_program;
    Alcotest.test_case "iter_exprs reaches nesting" `Quick test_iter_exprs_depth;
    Alcotest.test_case "hooks compose in order" `Quick test_hooks_compose_order;
    Alcotest.test_case "builder fresh ids" `Quick test_builder_fresh_ids ]
