(* Unit tests for the profilers (paper section 4.1). *)

open Privateer_ir
open Privateer_interp
open Privateer_profile

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let profile src =
  let program = Privateer_lang.Parser.parse_program_exn src in
  let p, st = Profiler.profile_run program in
  (program, p, st)

(* The node id of the single For loop in [fname]. *)
let loop_in program fname =
  match
    List.find_opt
      (fun ((f : Ast.func), _) -> f.fname = fname)
      (Ast.loops_of_program program)
  with
  | Some (_, (id, _)) -> id
  | None -> Alcotest.fail ("no loop in " ^ fname)

let test_global_objects_registered () =
  let _, p, _ = profile "global g[4]; fn main() { g[0] = 1; return g[0]; }" in
  check "global named" true (Objname.Set.mem (Objname.Global "g") (Profiler.all_objects p));
  match Profiler.object_size p (Objname.Global "g") with
  | Some 32 -> ()
  | other -> Alcotest.fail (Printf.sprintf "size %s" (match other with Some n -> string_of_int n | None -> "?"))

let test_site_object_mapping () =
  let program, p, _ =
    profile
      "global a[4]; global b[4]; fn main() { var t = 0; for (i = 0; i < 4) { t = a[i]; b[i] = t; } return t; }"
  in
  ignore program;
  (* Find the load and store sites via the AST. *)
  let sites = ref [] in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_exprs
        (fun e -> match e with Ast.Load (id, _, _) -> sites := `L id :: !sites | _ -> ())
        f.body;
      Ast.iter_stmts
        (fun s -> match s with Ast.Store (id, _, _, _) -> sites := `S id :: !sites | _ -> ())
        f.body)
    program.funcs;
  let a_sites, b_sites =
    List.partition
      (fun site ->
        let id = match site with `L id | `S id -> id in
        Objname.Set.mem (Objname.Global "a") (Profiler.objects_at_site p id))
      (List.filter
         (fun site ->
           let id = match site with `L id | `S id -> id in
           not (Objname.Set.is_empty (Profiler.objects_at_site p id)))
         !sites)
  in
  check_int "one site touches a" 1 (List.length a_sites);
  check_int "one site touches b" 1 (List.length b_sites)

let test_alloc_context_naming () =
  (* The same malloc site called from two different call sites yields
     two distinct object names (paper's dijkstra line-11 example). *)
  let _, p, _ =
    profile
      {|fn mk() { return malloc(1); }
fn a() { return mk(); }
fn b() { return mk(); }
fn main() { var x = a(); var y = b(); free(x); free(y); return 0; }|}
  in
  let sites =
    Objname.Set.filter
      (fun o -> match o with Objname.Site _ -> true | _ -> false)
      (Profiler.all_objects p)
  in
  check_int "two context-distinguished names" 2 (Objname.Set.cardinal sites)

let test_short_lived_positive () =
  let program, p, _ =
    profile
      "fn main() { for (i = 0; i < 5) { var n = malloc(2); n[0] = i; free(n); } return 0; }"
  in
  let loop = loop_in program "main" in
  let site_names =
    Objname.Set.filter
      (fun o -> match o with Objname.Site _ -> true | _ -> false)
      (Profiler.all_objects p)
  in
  check_int "one dynamic name" 1 (Objname.Set.cardinal site_names);
  Objname.Set.iter
    (fun o -> check "short-lived" true (Profiler.is_short_lived p o ~loop))
    site_names

let test_short_lived_negative_escape () =
  (* Object freed in the NEXT iteration: crosses an iteration
     boundary, so not short-lived. *)
  let program, p, _ =
    profile
      {|global keep;
fn main() {
  keep = 0;
  for (i = 0; i < 5) {
    if (keep != 0) { free(keep); }
    keep = malloc(1);
  }
  free(keep);
  return 0;
}|}
  in
  let loop = loop_in program "main" in
  Objname.Set.iter
    (fun o ->
      match o with
      | Objname.Site _ -> check "escaping object not short-lived" false (Profiler.is_short_lived p o ~loop)
      | _ -> ())
    (Profiler.all_objects p)

let test_short_lived_negative_born_outside () =
  (* Allocated before the loop, freed inside it. *)
  let program, p, _ =
    profile
      "fn main() { var x = malloc(1); for (i = 0; i < 3) { if (i == 1) { free(x); } } return 0; }"
  in
  let loop = loop_in program "main" in
  Objname.Set.iter
    (fun o ->
      match o with
      | Objname.Site _ -> check "born outside loop" false (Profiler.is_short_lived p o ~loop)
      | _ -> ())
    (Profiler.all_objects p)

let test_flow_deps_cross_iteration () =
  let program, p, _ =
    profile "global acc; fn main() { acc = 0; for (i = 0; i < 4) { acc = acc + i; } return acc; }"
  in
  let loop = loop_in program "main" in
  check "cross-iteration flow dep on acc" true (Profiler.flow_deps p ~loop <> [])

let test_flow_deps_intra_iteration_only () =
  (* Written then read within each iteration: no loop-carried flow. *)
  let program, p, _ =
    profile "global t; fn main() { var s = 0; for (i = 0; i < 4) { t = i; s = s + t; } return s; }"
  in
  let loop = loop_in program "main" in
  check_int "no cross-iteration deps" 0 (List.length (Profiler.flow_deps p ~loop))

let test_flow_deps_recycled_address () =
  (* A freed-and-reallocated address must not produce a phantom dep:
     the write went to a *different* object. *)
  let program, p, _ =
    profile
      "fn main() { var s = 0; for (i = 0; i < 4) { var n = malloc(1); n[0] = i; s = s + n[0]; free(n); } return s; }"
  in
  let loop = loop_in program "main" in
  check_int "no phantom dep through recycled storage" 0
    (List.length (Profiler.flow_deps p ~loop))

let test_dep_value_constancy () =
  (* The flowing value is always 0: a value-prediction candidate. *)
  let program, p, _ =
    profile
      {|global flag;
fn main() {
  var s = 0;
  for (i = 0; i < 6) {
    s = s + flag;      // reads 0 written by previous iteration
    flag = 1;
    flag = 0;          // reset before iteration end
  }
  return s;
}|}
  in
  let loop = loop_in program "main" in
  let deps = Profiler.flow_deps p ~loop in
  check "has deps" true (deps <> []);
  List.iter
    (fun (_, _, (info : Profiler.dep_info)) ->
      (match info.dep_value with
      | Profiler.Const (Value.VInt 0) -> ()
      | _ -> Alcotest.fail "expected constant 0");
      match info.dep_addr with
      | `Addr _ -> ()
      | `Many -> Alcotest.fail "expected single address")
    deps

let test_branch_bias () =
  let program, p, _ =
    profile
      {|global g;
fn main() {
  for (i = 0; i < 10) {
    if (i < 100) { g = i; }      // always taken
    if (i > 100) { g = 0 - 1; }  // never taken
    if (i % 2 == 0) { g = 2; }   // mixed
  }
  return g;
}|}
  in
  ignore program;
  let branches = ref [] in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_stmts
        (fun s -> match s with Ast.If (id, _, _, _) -> branches := id :: !branches | _ -> ())
        f.body)
    program.funcs;
  let biases = List.map (fun id -> Profiler.branch_bias p id) (List.rev !branches) in
  check "always / never / mixed" true (biases = [ Some true; Some false; None ])

let test_loop_stats () =
  let program, p, _ =
    profile
      "fn main() { var s = 0; for (o = 0; o < 3) { for (i = 0; i < 5) { s = s + 1; } } return s; }"
  in
  let outer, inner =
    match Ast.loops_of_program program with
    | [ (_, (o, _)); (_, (i, _)) ] -> (o, i)
    | _ -> Alcotest.fail "expected two loops"
  in
  (match Profiler.loop_summary p inner with
  | Some s ->
    check_int "inner invocations" 3 s.loop_invocations;
    check_int "inner trips" 15 s.loop_trips
  | None -> Alcotest.fail "inner stats missing");
  match (Profiler.loop_summary p outer, Profiler.loop_summary p inner) with
  | Some o, Some i ->
    check "outer at least as heavy as inner" true (o.loop_cycles >= i.loop_cycles);
    check "weight ordering" true
      (match Profiler.loops_by_weight p with
      | (first, _) :: _ -> first = outer
      | [] -> false)
  | _ -> Alcotest.fail "stats missing"

let test_const_load () =
  let program, p, _ =
    profile
      {|global k; global v;
fn main() {
  k = 7;
  var s = 0;
  for (i = 0; i < 5) { s = s + k; v = i; s = s + v; }
  return s;
}|}
  in
  ignore program;
  (* Find load sites for k and v. *)
  let konst = ref None and varying = ref None in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_exprs
        (fun e ->
          match e with
          | Ast.Load (id, _, Ast.Global_addr "k") -> konst := Some id
          | Ast.Load (id, _, Ast.Global_addr "v") -> varying := Some id
          | _ -> ())
        f.body)
    program.funcs;
  (match !konst with
  | Some id -> (
    match Profiler.const_load_value p id with
    | Some (Value.VInt 7) -> ()
    | _ -> Alcotest.fail "k should profile as constant 7")
  | None -> Alcotest.fail "no k load site");
  match !varying with
  | Some id -> check "v load varies" true (Profiler.const_load_value p id = None)
  | None -> Alcotest.fail "no v load site"

let test_object_at_addr () =
  let src = "global g[8]; fn main() { g[0] = 1; return 0; }" in
  let program = Privateer_lang.Parser.parse_program_exn src in
  let st = Interp.create program in
  let p = Profiler.create () in
  Profiler.attach p st;
  ignore (Interp.run_entry st);
  let base = Hashtbl.find st.globals "g" in
  (match Profiler.object_at_addr p (base + 40) with
  | Some (Objname.Global "g", b) -> check_int "base" base b
  | _ -> Alcotest.fail "interior address should map to g");
  check "address outside any object" true (Profiler.object_at_addr p 0x9999 = None)

let suite =
  [ Alcotest.test_case "globals registered as objects" `Quick test_global_objects_registered;
    Alcotest.test_case "pointer-to-object site mapping" `Quick test_site_object_mapping;
    Alcotest.test_case "allocation context naming" `Quick test_alloc_context_naming;
    Alcotest.test_case "short-lived: alloc+free in iteration" `Quick test_short_lived_positive;
    Alcotest.test_case "short-lived: escape to next iteration" `Quick test_short_lived_negative_escape;
    Alcotest.test_case "short-lived: born outside loop" `Quick test_short_lived_negative_born_outside;
    Alcotest.test_case "flow deps: cross-iteration detected" `Quick test_flow_deps_cross_iteration;
    Alcotest.test_case "flow deps: intra-iteration ignored" `Quick test_flow_deps_intra_iteration_only;
    Alcotest.test_case "flow deps: recycled addresses" `Quick test_flow_deps_recycled_address;
    Alcotest.test_case "dep value constancy" `Quick test_dep_value_constancy;
    Alcotest.test_case "branch bias" `Quick test_branch_bias;
    Alcotest.test_case "loop statistics" `Quick test_loop_stats;
    Alcotest.test_case "constant-load detection" `Quick test_const_load;
    Alcotest.test_case "object_at_addr" `Quick test_object_at_addr ]
