(* Unit tests for Privateer_support: interval map, RNG, stats, tables. *)

open Privateer_support

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_interval_insert_find () =
  let m = Interval_map.create () in
  Interval_map.insert m 100 200 "a";
  Interval_map.insert m 300 400 "b";
  check_int "cardinal" 2 (Interval_map.cardinal m);
  (match Interval_map.find_opt m 150 with
  | Some (lo, hi, v) ->
    check_int "lo" 100 lo;
    check_int "hi" 200 hi;
    Alcotest.(check string) "value" "a" v
  | None -> Alcotest.fail "expected interval containing 150");
  check "left edge inclusive" true (Interval_map.mem m 100);
  check "right edge exclusive" false (Interval_map.mem m 200);
  check "gap" false (Interval_map.mem m 250);
  check "second" true (Interval_map.mem m 399)

let test_interval_overlap_eviction () =
  let m = Interval_map.create () in
  Interval_map.insert m 0 100 "a";
  Interval_map.insert m 100 200 "b";
  (* Overlapping insert evicts both neighbours it intersects. *)
  Interval_map.insert m 50 150 "c";
  check_int "only c remains" 1 (Interval_map.cardinal m);
  (match Interval_map.find_opt m 60 with
  | Some (_, _, v) -> Alcotest.(check string) "c" "c" v
  | None -> Alcotest.fail "expected c");
  check "old left gone" false (Interval_map.mem m 10);
  check "old right gone" false (Interval_map.mem m 180)

let test_interval_overlapping_query () =
  let m = Interval_map.create () in
  Interval_map.insert m 0 10 1;
  Interval_map.insert m 20 30 2;
  Interval_map.insert m 40 50 3;
  let hits = Interval_map.overlapping m 5 45 in
  check_int "three intervals intersect [5,45)" 3 (List.length hits);
  let hits = Interval_map.overlapping m 10 20 in
  check_int "none intersect the gap" 0 (List.length hits);
  let hits = Interval_map.overlapping m 25 26 in
  check_int "interior" 1 (List.length hits)

let test_interval_remove_start () =
  let m = Interval_map.create () in
  Interval_map.insert m 10 20 "x";
  (match Interval_map.remove_start m 10 with
  | Some (20, "x") -> ()
  | _ -> Alcotest.fail "remove_start should return (20, x)");
  check "gone" true (Interval_map.is_empty m);
  check "remove missing" true (Interval_map.remove_start m 10 = None)

let test_rng_determinism () =
  let a = Rng.create 42 in
  let b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 43 in
  let diff = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then diff := true
  done;
  check "different seeds differ" true !diff

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check "in range" true (v >= 0 && v < 17);
    let f = Rng.float r in
    check "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done;
  Alcotest.check_raises "bound must be positive"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int r 0))

let test_rng_split () =
  let r = Rng.create 1 in
  let s = Rng.split r in
  let a = Rng.int r 1000000 and b = Rng.int s 1000000 in
  check "split decorrelates" true (a <> b)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "geomean of equal" 5.0 (Stats.geomean [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 1e-9)) "percent" 25.0 (Stats.percent 1.0 4.0);
  Alcotest.(check (float 1e-9)) "clamp low" 0.0 (Stats.clamp 0.0 1.0 (-5.0));
  Alcotest.(check (float 1e-9)) "clamp high" 1.0 (Stats.clamp 0.0 1.0 5.0);
  check "geomean of empty is nan" true (Float.is_nan (Stats.geomean []))

let test_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "n" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bb"; "22" ];
  let s = Table.render t in
  check "header present" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  check_int "four lines" 4 (List.length lines);
  (* All lines padded to the same width. *)
  let widths = List.map String.length lines in
  check "uniform width" true (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.check_raises "arity enforced"
    (Invalid_argument "Table.add_row: wrong arity") (fun () ->
      Table.add_row t [ "only-one" ])

let test_table_fmt () =
  Alcotest.(check string) "fx" "2.50x" (Table.fx 2.5);
  Alcotest.(check string) "fpct" "12.3%" (Table.fpct 12.34);
  Alcotest.(check string) "bytes" "4.0 KB" (Table.fbytes 4096);
  Alcotest.(check string) "gbytes" "2.0 GB" (Table.fbytes (2 * 1024 * 1024 * 1024));
  Alcotest.(check string) "small" "100 B" (Table.fbytes 100)

let suite =
  [ Alcotest.test_case "interval-map insert/find" `Quick test_interval_insert_find;
    Alcotest.test_case "interval-map overlap eviction" `Quick test_interval_overlap_eviction;
    Alcotest.test_case "interval-map overlapping query" `Quick test_interval_overlapping_query;
    Alcotest.test_case "interval-map remove_start" `Quick test_interval_remove_start;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table formatting" `Quick test_table_fmt ]
