(* Unit tests for the Cmini front end: lexer and parser. *)

open Privateer_lang

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tokens src =
  List.map (fun (t : Lexer.located) -> t.tok) (Lexer.tokenize src)

let test_lexer_basic () =
  (match tokens "fn main ( ) { return 42 ; }" with
  | [ KW "fn"; IDENT "main"; PUNCT "("; PUNCT ")"; PUNCT "{"; KW "return"; INT 42;
      PUNCT ";"; PUNCT "}"; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected token stream");
  match tokens "1.5 2 3e2 0.25" with
  | [ FLOAT 1.5; INT 2; FLOAT 300.0; FLOAT 0.25; EOF ] -> ()
  | _ -> Alcotest.fail "number lexing"

let test_lexer_float_operators () =
  (* '1.' must not be lexed as a float: the dot belongs to the
     operator that follows. *)
  match tokens "a +. b *. c <=. d" with
  | [ IDENT "a"; PUNCT "+."; IDENT "b"; PUNCT "*."; IDENT "c"; PUNCT "<=."; IDENT "d";
      EOF ] -> ()
  | _ -> Alcotest.fail "float operators"

let test_lexer_comments_strings () =
  (match tokens "a // line comment\n b /* block\n comment */ c" with
  | [ IDENT "a"; IDENT "b"; IDENT "c"; EOF ] -> ()
  | _ -> Alcotest.fail "comments");
  (match tokens {|"hi\n\"there\""|} with
  | [ STRING "hi\n\"there\""; EOF ] -> ()
  | _ -> Alcotest.fail "string escapes");
  check "unterminated string raises" true
    (try
       ignore (tokens "\"oops");
       false
     with Lexer.Lex_error _ -> true);
  check "unterminated comment raises" true
    (try
       ignore (tokens "/* oops");
       false
     with Lexer.Lex_error _ -> true)

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  bb" in
  match toks with
  | [ { tok = IDENT "a"; line = 1; col = 1 }; { tok = IDENT "bb"; line = 2; col = 3 };
      { tok = EOF; _ } ] -> ()
  | _ -> Alcotest.fail "positions"

let parse = Parser.parse_program_exn

let test_parser_accepts_workload_style () =
  let program =
    parse
      {|
global n;
global a[10];
fn helper(p, k) {
  p[k] = k * 2;
  return p[k];
}
fn main() {
  var s = 0;
  for (i = 0; i < 10) {
    s = s + helper(&a, i);
  }
  n = s;
  return s;
}
|}
  in
  check_int "two globals" 2 (List.length program.globals);
  check_int "two funcs" 2 (List.length program.funcs);
  check "validates" true (Privateer_ir.Validate.check program = [])

let test_parser_global_semantics () =
  (* Scalar globals read as values; array globals read as addresses. *)
  let program = parse "global s; global a[2]; fn main() { s = 1; a[0] = s; return a[0]; }" in
  let st = Privateer_interp.Interp.create program in
  check_int "scalar/array globals" 1
    (Privateer_interp.Value.as_int (Privateer_interp.Interp.run_entry st))

let expect_parse_error src =
  try
    ignore (parse src);
    false
  with Failure _ -> true

let test_parser_errors () =
  check "missing semicolon" true (expect_parse_error "fn main() { return 1 }");
  check "bad assignment target" true (expect_parse_error "fn main() { 1 + 2 = 3; return 0; }");
  check "for variable mismatch" true
    (expect_parse_error "fn main() { for (i = 0; j < 10) { } return 0; }");
  check "duplicate global" true (expect_parse_error "global g; global g; fn main() { return 0; }");
  check "unknown & target" true (expect_parse_error "fn main() { return &nope; }");
  check "array size must be literal" true
    (expect_parse_error "global a[n]; fn main() { return 0; }");
  check "top-level junk" true (expect_parse_error "return 1;")

let test_parser_error_positions () =
  try
    ignore (Parser.parse_program "fn main() {\n  return @;\n}")
  with
  | Lexer.Lex_error (_, line, col) ->
    check_int "line" 2 line;
    check "col plausible" true (col >= 9)
  | _ -> Alcotest.fail "expected a lex error with position"

let test_parser_else_if_chain () =
  let program =
    parse
      {|fn classify(x) {
  if (x < 0) { return 0 - 1; }
  else { if (x == 0) { return 0; } else { return 1; } }
}
fn main() { return classify(5) + classify(0) + classify(0 - 3); }|}
  in
  let st = Privateer_interp.Interp.create program in
  check_int "else-if chain" 0
    (Privateer_interp.Value.as_int (Privateer_interp.Interp.run_entry st))

let test_parser_unique_ids () =
  let program =
    parse
      "global g[4]; fn main() { g[0] = g[1] + g[2]; if (g[0] > 0) { g[3] = 1; } for (i = 0; i < 2) { g[i] = i; } while (g[0] > 10) { g[0] = g[0] - 1; } return 0; }"
  in
  check "all ids unique and below watermark" true
    (Privateer_ir.Validate.check program = [])

let test_parser_precedence_vs_eval () =
  (* Cross-check parser precedence through evaluation. *)
  let eval src =
    let program = parse (Printf.sprintf "fn main() { return %s; }" src) in
    Privateer_interp.Value.as_int
      (Privateer_interp.Interp.run_entry (Privateer_interp.Interp.create program))
  in
  check_int "mul before add" 7 (eval "1 + 2 * 3");
  check_int "shift after add" 32 (eval "1 + 1 << 4");
  check_int "cmp after bits" 1 (eval "(6 & 3) == 2");
  check_int "and after cmp" 1 (eval "1 < 2 && 3 < 4");
  check_int "or after and" 1 (eval "0 && 0 || 1");
  check_int "unary tight" (-6) (eval "-2 * 3")

let suite =
  [ Alcotest.test_case "lexer basics" `Quick test_lexer_basic;
    Alcotest.test_case "lexer float operators" `Quick test_lexer_float_operators;
    Alcotest.test_case "lexer comments and strings" `Quick test_lexer_comments_strings;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "parser workload-style program" `Quick test_parser_accepts_workload_style;
    Alcotest.test_case "parser global semantics" `Quick test_parser_global_semantics;
    Alcotest.test_case "parser rejects malformed input" `Quick test_parser_errors;
    Alcotest.test_case "parser reports positions" `Quick test_parser_error_positions;
    Alcotest.test_case "parser else-if chains" `Quick test_parser_else_if_chain;
    Alcotest.test_case "parser emits unique node ids" `Quick test_parser_unique_ids;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence_vs_eval ]
