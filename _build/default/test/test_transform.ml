(* Unit tests for the privatization transformation (paper 4.4-4.6). *)

open Privateer_ir
open Privateer_profile
open Privateer_analysis
open Privateer_transform

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile src =
  let program = Privateer_lang.Parser.parse_program_exn src in
  let p, _ = Profiler.profile_run program in
  let selection = Selection.select program p in
  (program, Transform.apply program p selection)

let quickstart_src =
  {|global input[8]; global scratch[8]; global out[64];
fn main() {
  for (j = 0; j < 8) { input[j] = j * 3; }
  for (k = 0; k < 32) {
    var n = malloc(1);
    n[0] = k;
    for (i = 0; i < 8) { scratch[i] = input[i] + n[0]; }
    var s = 0;
    for (i2 = 0; i2 < 8) { s = s + scratch[i2]; }
    out[k] = s;
    free(n);
  }
  return 0;
}|}

let test_globals_rehomed () =
  let _, tr = compile quickstart_src in
  let heap_of g =
    match Ast.find_global tr.program g with
    | Some { gheap; _ } -> gheap
    | None -> Alcotest.fail ("no global " ^ g)
  in
  check "scratch -> private" true (heap_of "scratch" = Some Heap.Private);
  check "out -> private" true (heap_of "out" = Some Heap.Private);
  check "input -> read-only" true (heap_of "input" = Some Heap.Read_only)

let test_alloc_sites_rehomed () =
  let _, tr = compile quickstart_src in
  let found = ref None in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_exprs
        (fun e -> match e with Ast.Alloc (_, _, heap, _) -> found := Some heap | _ -> ())
        f.body)
    tr.program.funcs;
  check "malloc redirected to short-lived heap" true
    (!found = Some (Some Heap.Short_lived))

let test_transformed_program_validates () =
  let _, tr = compile quickstart_src in
  check "validates" true (Validate.check tr.program = [])

let test_sequential_semantics_preserved () =
  (* The rewritten program run WITHOUT the speculative runtime must
     behave exactly like the original (allocation re-homing and cold
     markers are semantically transparent). *)
  let program, tr = compile quickstart_src in
  let r1, o1 =
    let st = Privateer_interp.Interp.create program in
    let r = Privateer_interp.Interp.run_entry st in
    (r, Privateer_interp.Interp.output st)
  in
  let r2, o2 =
    let st = Privateer_interp.Interp.create tr.program in
    let r = Privateer_interp.Interp.run_entry st in
    (r, Privateer_interp.Interp.output st)
  in
  check "results equal" true (Privateer_interp.Value.equal r1 r2);
  Alcotest.(check string) "outputs equal" o1 o2

let test_manifest_checks_cover_region () =
  let _, tr = compile quickstart_src in
  check "manifest has access checks" true (Hashtbl.length tr.manifest.checks > 0);
  (* Direct global-array accesses are provable: expect elisions. *)
  check "some checks elided" true (Manifest.elided_check_count tr.manifest > 0)

let test_pointer_chase_not_elided () =
  (* When an object mixes data and pointer fields, values loaded from
     it are statically ambiguous (our points-to is field-insensitive,
     like the paper's weak static analysis), so separation checks on
     addresses derived from them must stay live — the analogue of
     Figure 2b keeping qKill's check. *)
  let _, tr =
    compile
      {|global out[64];
fn main() {
  for (k = 0; k < 32) {
    var node = malloc(2);
    node[0] = k;
    node[1] = node;          // a pointer field taints the object
    out[node[0]] = k;        // index loaded from the tainted object
    free(node);
  }
  return 0;
}|}
  in
  check "live checks remain" true (Manifest.live_check_count tr.manifest > 0);
  check "still elides the provable ones" true (Manifest.elided_check_count tr.manifest > 0)

let test_control_spec_marker_prepended () =
  let _, tr =
    compile
      {|global out[16]; global err;
fn main() {
  for (i = 0; i < 16) {
    out[i] = i;
    if (i < 1000) { out[i] = out[i] + 1; } else { err = err + 1; }
  }
  return 0;
}|}
  in
  (* The cold side must now start with a Misspec marker, followed by
     the original code. *)
  let found = ref false in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_stmts
        (fun s ->
          match s with
          | Ast.If (_, _, _, Ast.Misspec _ :: _ :: _) -> found := true
          | _ -> ())
        f.body)
    tr.program.funcs;
  check "marker prepended, original kept" true !found

let test_fresh_ids_above_watermark () =
  let program, tr =
    compile
      {|global out[16]; global err;
fn main() {
  for (i = 0; i < 16) {
    out[i] = i;
    if (i < 1000) { out[i] = out[i] + 1; } else { err = err + 1; }
  }
  return 0;
}|}
  in
  check "next_id advanced" true (tr.program.next_id >= program.next_id);
  check "still validates" true (Validate.check tr.program = [])

let test_redux_sites_marked () =
  let _, tr =
    compile
      {|global total; global data[64];
fn main() {
  for (j = 0; j < 64) { data[j] = j; }
  total = 0;
  for (i = 0; i < 64) {
    total = total + data[i];
  }
  var x = total;
  return x;
}|}
  in
  let redux_sites =
    Hashtbl.fold
      (fun _ (c : Manifest.site_check) acc -> if c.redux_op <> None then acc + 1 else acc)
      tr.manifest.checks 0
  in
  (* Both the load and the store of the reduction update. *)
  check_int "reduction load and store sanctioned" 2 redux_sites

let test_site_counts () =
  let _, tr = compile quickstart_src in
  let counts = Manifest.site_counts tr.manifest in
  check_int "private sites" 2 (List.assoc Heap.Private counts);
  check_int "short-lived sites" 1 (List.assoc Heap.Short_lived counts);
  check_int "read-only sites" 1 (List.assoc Heap.Read_only counts);
  check_int "redux sites" 0 (List.assoc Heap.Redux counts)

let suite =
  [ Alcotest.test_case "globals re-homed" `Quick test_globals_rehomed;
    Alcotest.test_case "allocation sites re-homed" `Quick test_alloc_sites_rehomed;
    Alcotest.test_case "transformed program validates" `Quick test_transformed_program_validates;
    Alcotest.test_case "sequential semantics preserved" `Quick test_sequential_semantics_preserved;
    Alcotest.test_case "manifest covers region accesses" `Quick test_manifest_checks_cover_region;
    Alcotest.test_case "pointer chase keeps live check" `Quick test_pointer_chase_not_elided;
    Alcotest.test_case "control-spec marker prepended" `Quick test_control_spec_marker_prepended;
    Alcotest.test_case "fresh node ids" `Quick test_fresh_ids_above_watermark;
    Alcotest.test_case "reduction sites sanctioned" `Quick test_redux_sites_marked;
    Alcotest.test_case "Table-3 style site counts" `Quick test_site_counts ]
