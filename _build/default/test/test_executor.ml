(* Integration tests for the speculative DOALL executor (paper
   section 5): privatized parallel execution must be observationally
   equivalent to sequential execution, under all worker counts,
   checkpoint periods, and injected misspeculation. *)

open Privateer

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile src = Pipeline.compile (Pipeline.parse src)

let config ?(workers = 4) ?checkpoint_period ?inject () =
  { Privateer_parallel.Executor.default_config with workers; checkpoint_period; inject }

(* Run both versions; assert byte-identical output and equal result. *)
let assert_equivalent ?workers ?checkpoint_period ?inject src =
  let program = Pipeline.parse src in
  let tr, _ = Pipeline.compile program in
  check "a loop was planned" true (tr.selection.plans <> []);
  let seq = Pipeline.run_sequential program in
  let par = Pipeline.run_parallel ~config:(config ?workers ?checkpoint_period ?inject ()) tr in
  Alcotest.(check string) "outputs equal" seq.seq_output par.par_output;
  check "results equal" true
    (Privateer_interp.Value.equal seq.seq_result par.par_result);
  (seq, par)

let private_src =
  {|global scratch[16]; global out[100];
fn main() {
  for (k = 0; k < 100) {
    for (i = 0; i < 16) { scratch[i] = k * i; }
    var s = 0;
    for (j = 0; j < 16) { s = s + scratch[j]; }
    out[k] = s;
  }
  var total = 0;
  for (q = 0; q < 100) { total = total + out[q]; }
  print("total %d\n", total);
  return total;
}|}

let test_privatization_equivalence () = ignore (assert_equivalent private_src)

let test_worker_counts () =
  List.iter
    (fun workers -> ignore (assert_equivalent ~workers private_src))
    [ 1; 2; 3; 7; 24; 64 ]

let test_checkpoint_periods () =
  List.iter
    (fun k -> ignore (assert_equivalent ~checkpoint_period:k private_src))
    [ 1; 2; 13; 100; 253 ]

(* A loop heavy enough that parallelization must pay off despite
   spawn and validation overheads. *)
let heavy_src =
  {|global scratch[128]; global out[100];
fn main() {
  for (k = 0; k < 100) {
    for (i = 0; i < 128) { scratch[i] = k * i + (i & 15); }
    var s = 0;
    for (j = 0; j < 128) { s = s + scratch[j]; }
    out[k] = s;
  }
  var total = 0;
  for (q = 0; q < 100) { total = total + out[q]; }
  print("total %d\n", total);
  return total;
}|}

let test_speedup_positive () =
  let seq, par = assert_equivalent ~workers:16 heavy_src in
  check "parallel is faster" true (par.par_cycles < seq.seq_cycles);
  check "meaningfully faster (>3x)" true
    (float_of_int seq.seq_cycles /. float_of_int par.par_cycles > 3.0);
  check_int "one invocation" 1 par.stats.invocations;
  check "checkpoints happened" true (par.stats.checkpoints > 0)

let test_short_lived_equivalence () =
  ignore
    (assert_equivalent
       {|global out[50];
fn main() {
  for (k = 0; k < 50) {
    var node = malloc(2);
    node[0] = k;
    node[1] = k * k;
    out[k] = node[0] + node[1];
    free(node);
  }
  var s = 0;
  for (q = 0; q < 50) { s = s + out[q]; }
  return s;
}|})

let test_memory_reduction_equivalence () =
  (* Integer reductions are exact under reassociation. *)
  let _, par =
    assert_equivalent
      {|global total; global data[64];
fn main() {
  for (j = 0; j < 64) { data[j] = j * 7; }
  total = 0;
  for (i = 0; i < 64) { total = total + data[i]; }
  print("%d\n", total);
  return total;
}|}
  in
  check "redux ran in parallel" true (par.stats.invocations = 1)

let test_register_reduction_equivalence () =
  ignore
    (assert_equivalent
       {|global data[64];
fn main() {
  for (j = 0; j < 64) { data[j] = j; }
  var s = 0;
  for (i = 0; i < 64) { s = s + data[i] * data[i]; }
  print("%d\n", s);
  return s;
}|})

let test_deferred_io_order () =
  let _, par =
    assert_equivalent
      {|global scratch[4];
fn main() {
  for (k = 0; k < 37) {
    scratch[0] = k * 3;
    print("iter %d -> %d\n", k, scratch[0]);
  }
  return 0;
}|}
  in
  (* I/O must appear in iteration order despite parallel execution. *)
  check "some output" true (String.length par.par_output > 0)

let test_value_prediction_end_to_end () =
  (* The dijkstra handoff: flag returns to 0 every iteration. *)
  let src =
    {|global flag; global out[60];
fn main() {
  flag = 0;
  for (i = 0; i < 60) {
    out[i] = flag + i;
    flag = 7;
    flag = 0;
  }
  var s = 0;
  for (q = 0; q < 60) { s = s + out[q]; }
  return s;
}|}
  in
  let tr, _ = compile src in
  check "prediction planned" true
    (List.exists
       (fun (l : Privateer_transform.Manifest.loop_spec) -> l.predictions <> [])
       tr.manifest.loops);
  let _, par = assert_equivalent src in
  check "no misspeculation" true (par.stats.misspeculations = 0)

let test_preheader_fallback () =
  (* If the live-in value does not match the prediction, the
     invocation must fall back to sequential execution and still be
     correct. *)
  let src =
    {|global flag; global out[60]; global mode;
fn main() {
  flag = mode;     // 9 => prediction (trained with 0... ) fails at entry
  for (i = 0; i < 60) {
    out[i] = flag + i;
    flag = 7;
    flag = 0;
  }
  return out[3];
}|}
  in
  let program = Pipeline.parse src in
  (* Train with mode=0 so the profiler predicts flag==0. *)
  let tr, _ = Pipeline.compile ~setup:(fun st -> Pipeline.set_global st "mode" 0) program in
  check "prediction exists" true
    (List.exists
       (fun (l : Privateer_transform.Manifest.loop_spec) -> l.predictions <> [])
       tr.manifest.loops);
  (* Run with mode=9: live-in differs from the prediction. *)
  let setup st = Pipeline.set_global st "mode" 9 in
  let seq = Pipeline.run_sequential ~setup program in
  let par = Pipeline.run_parallel ~setup ~config:(config ()) tr in
  check "fell back to sequential" true (par.fallbacks = 1);
  check "still correct" true (Privateer_interp.Value.equal seq.seq_result par.par_result)

let test_induction_var_final_value () =
  let _, _ =
    assert_equivalent
      {|global out[20];
fn main() {
  for (i = 0; i < 20) { out[i] = i; }
  return i;   // must be 20, as after sequential execution
}|}
  in
  ()

let test_live_out_private_register () =
  ignore
    (assert_equivalent
       {|global out[30];
fn main() {
  var last = 0 - 1;
  for (i = 0; i < 30) {
    last = i * 2;
    out[i] = last;
  }
  return last;   // value from the final iteration
}|})

let test_zero_iteration_loop () =
  ignore
    (assert_equivalent
       {|global scratch[4]; global out[10]; global n;
fn main() {
  for (k = 0; k < n) {     // n = 0: loop never runs
    scratch[0] = k;
    out[k] = scratch[0];
  }
  for (w = 0; w < 10) { out[w] = out[w] + 1; }
  return k;
}|})

let test_injected_misspec_recovers () =
  List.iter
    (fun inject_every ->
      let inject iter = iter mod inject_every = inject_every - 1 in
      let seq, par = assert_equivalent ~inject private_src in
      ignore seq;
      check "misspeculations occurred" true (par.stats.misspeculations > 0);
      check "iterations were recovered" true (par.stats.recovered_iterations > 0))
    [ 10; 25; 97 ]

let test_injected_misspec_with_io () =
  let src =
    {|global scratch[4];
fn main() {
  for (k = 0; k < 40) {
    scratch[0] = k;
    print("k=%d\n", k);
  }
  return 0;
}|}
  in
  let inject iter = iter mod 7 = 6 in
  let _, par = assert_equivalent ~inject src in
  (* Output of squashed iterations must not be duplicated or lost. *)
  check_int "40 lines exactly" 40
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' par.par_output)))

let test_injected_misspec_with_reductions () =
  let src =
    {|global total; global data[64];
fn main() {
  for (j = 0; j < 64) { data[j] = j; }
  total = 0;
  for (i = 0; i < 64) { total = total + data[i]; }
  return total;
}|}
  in
  let inject iter = iter = 13 || iter = 50 in
  let _, par = assert_equivalent ~inject src in
  check "recovered" true (par.stats.misspeculations > 0)

let test_stats_private_bytes () =
  let _, par = assert_equivalent ~workers:2 private_src in
  check "private reads counted" true (par.stats.private_bytes_read > 0);
  check "private writes counted" true (par.stats.private_bytes_written > 0);
  let b = Privateer_runtime.Stats.breakdown par.stats in
  let total =
    b.useful +. b.private_read +. b.private_write +. b.checkpoint +. b.spawn_join
    +. b.other
  in
  Alcotest.(check (float 0.5)) "breakdown sums to 100%" 100.0 total

let test_wrong_prediction_at_runtime_recovers () =
  (* Trained to predict flag==0, but iteration 31 leaves flag=1: the
     end-of-iteration check must misspeculate and recovery must
     reproduce sequential semantics. *)
  let src =
    {|global flag; global out[60];
fn main() {
  flag = 0;
  for (i = 0; i < 60) {
    out[i] = flag + i;
    flag = 7;
    if (i == 31) { flag = 1; } else { flag = 0; }
  }
  var s = 0;
  for (q = 0; q < 60) { s = s + out[q]; }
  return s;
}|}
  in
  (* Note: training runs the same input, so i==31 is profiled and the
     branch is mixed; but the dep value profile sees both 0 and 1 ->
     no prediction for flag... unless only address constant. To force
     the scenario, train on a modified input is not possible here, so
     accept either outcome: if a plan exists, execution must still be
     equivalent. *)
  let program = Pipeline.parse src in
  let tr, _ = Pipeline.compile program in
  match tr.selection.plans with
  | [] -> () (* classified unrestricted: also acceptable (dep value varies) *)
  | _ ->
    let seq = Pipeline.run_sequential program in
    let par = Pipeline.run_parallel ~config:(config ()) tr in
    check "equivalent" true (String.equal seq.seq_output par.par_output)

let suite =
  [ Alcotest.test_case "privatization equivalence" `Quick test_privatization_equivalence;
    Alcotest.test_case "all worker counts" `Quick test_worker_counts;
    Alcotest.test_case "all checkpoint periods" `Quick test_checkpoint_periods;
    Alcotest.test_case "speedup is positive" `Quick test_speedup_positive;
    Alcotest.test_case "short-lived objects" `Quick test_short_lived_equivalence;
    Alcotest.test_case "memory reductions" `Quick test_memory_reduction_equivalence;
    Alcotest.test_case "register reductions" `Quick test_register_reduction_equivalence;
    Alcotest.test_case "deferred I/O ordering" `Quick test_deferred_io_order;
    Alcotest.test_case "value prediction end-to-end" `Quick test_value_prediction_end_to_end;
    Alcotest.test_case "preheader prediction fallback" `Quick test_preheader_fallback;
    Alcotest.test_case "induction variable final value" `Quick test_induction_var_final_value;
    Alcotest.test_case "live-out private register" `Quick test_live_out_private_register;
    Alcotest.test_case "zero-iteration loop" `Quick test_zero_iteration_loop;
    Alcotest.test_case "injected misspeculation recovers" `Quick test_injected_misspec_recovers;
    Alcotest.test_case "misspeculation with deferred I/O" `Quick test_injected_misspec_with_io;
    Alcotest.test_case "misspeculation with reductions" `Quick test_injected_misspec_with_reductions;
    Alcotest.test_case "stats and breakdown" `Quick test_stats_private_bytes;
    Alcotest.test_case "runtime prediction failure" `Quick test_wrong_prediction_at_runtime_recovers ]
