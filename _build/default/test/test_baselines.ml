(* Unit tests for the comparison systems: DOALL-only and LRPD. *)

open Privateer
open Privateer_baselines
open Privateer_profile

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let profile src =
  let program = Pipeline.parse src in
  let p, _ = Profiler.profile_run program in
  (program, p)

(* ---- DOALL-only -------------------------------------------------------- *)

let affine_src =
  {|global a[256]; global b[256];
fn main() {
  for (j = 0; j < 256) { a[j] = j; }
  for (i = 0; i < 256) { b[i] = a[i] * 2 + 1; }
  var s = 0;
  for (q = 0; q < 256) { s = s + b[q]; }
  return s;
}|}

let test_doall_proves_affine () =
  let program, p = profile affine_src in
  let report = Doall_only.select program p in
  check "chose provable loops" true (report.chosen <> [])

let test_doall_rejects_pointer_loop () =
  let program, p =
    profile
      {|global out[32];
fn main() {
  for (k = 0; k < 32) {
    var n = malloc(1);
    n[0] = k;
    out[k] = n[0];
    free(n);
  }
  return 0;
}|}
  in
  let report = Doall_only.select program p in
  check "nothing chosen" true (report.chosen = []);
  check "rejection mentions allocation" true
    (List.exists (fun (_, _, r) -> r = "dynamic allocation in region") report.rejected)

let test_doall_rejects_scratch_reuse () =
  (* The privatization pattern: same scratch words written every
     iteration -> loop-carried under a non-speculative compiler. *)
  let program, p =
    profile
      {|global scratch[8]; global out[32];
fn main() {
  for (k = 0; k < 32) {
    scratch[0] = k;
    out[k] = scratch[0];
  }
  return 0;
}|}
  in
  let report = Doall_only.select program p in
  check "outer loop not chosen" true
    (List.for_all (fun (c : Doall_only.choice) -> c.d_func <> "main") report.chosen)

let test_doall_rejects_io () =
  let program, p =
    profile
      {|global out[16];
fn main() {
  for (k = 0; k < 16) {
    out[k] = k;
    print("%d\n", k);
  }
  return 0;
}|}
  in
  let report = Doall_only.select program p in
  check "no plan with I/O" true (report.chosen = [])

let test_doall_run_preserves_semantics () =
  let program, p = profile affine_src in
  let report = Doall_only.select program p in
  let seq = Pipeline.run_sequential program in
  let st, result, stats = Doall_only.run ~workers:8 program report ~setup:(fun _ -> ()) in
  check "result equal" true
    (Privateer_interp.Value.equal seq.seq_result result);
  check "invocations counted" true (stats.invocations > 0);
  check "some cycles accounted" true (st.cycles > 0)

let test_doall_unprofitable_skipped () =
  (* Tiny inner loop: provable but below the profitability floor. *)
  let program, p =
    profile
      {|global a[4];
fn main() {
  var s = 0;
  for (o = 0; o < 200) {
    for (i = 0; i < 4) { a[i] = i; }
    s = s + a[0];
  }
  return s;
}|}
  in
  let report = Doall_only.select program p in
  check "tiny loop skipped" true
    (List.exists (fun (_, _, r) -> r = "provable but unprofitable (tiny invocations)")
       report.rejected)

(* ---- LRPD --------------------------------------------------------------- *)

let lrpd_ok_src =
  {|global scratch[16]; global out[128];
fn main() {
  for (k = 0; k < 40) {
    for (i = 0; i < 16) { scratch[i] = k + i; }
    var s = 0;
    for (j = 0; j < 16) { s = s + scratch[j]; }
    out[k] = s;
  }
  return 0;
}|}

let test_lrpd_applicable_on_arrays () =
  let program, p = profile lrpd_ok_src in
  let survey = Lrpd.survey program p in
  (* The hottest loop (the outer one) must be applicable. *)
  match survey with
  | (_, f, _, Lrpd.Applicable) :: _ -> Alcotest.(check string) "hot loop in main" "main" f
  | (_, f, _, Lrpd.Inapplicable r) :: _ ->
    Alcotest.fail (Printf.sprintf "expected applicable, got %s in %s" r f)
  | [] -> Alcotest.fail "no loops surveyed"

let test_lrpd_shadow_test_passes () =
  let program, p = profile lrpd_ok_src in
  match Privateer_analysis.Selection.select program p with
  | { plans = plan :: _; _ } ->
    let r = Lrpd.run_test program ~setup:(fun _ -> ()) ~loop:plan.loop in
    check "privatization criterion holds" true r.passed;
    check "elements were marked" true (r.marked_words > 0)
  | _ -> Alcotest.fail "no plan"

let test_lrpd_shadow_test_fails_on_flow () =
  (* acc carries a value across iterations through memory in a
     non-reduction way: the test must fail the criterion. *)
  let src =
    {|global acc; global out[32];
fn main() {
  acc = 1;
  for (k = 0; k < 32) {
    acc = (acc * 3) % 101;
    out[k] = acc;
  }
  return 0;
}|}
  in
  let program, p = profile src in
  (* Find the k loop directly (selection would reject it). *)
  let loop =
    match
      List.find_opt
        (fun ((f : Privateer_ir.Ast.func), _) -> f.fname = "main")
        (Privateer_ir.Ast.loops_of_program program)
    with
    | Some (_, (id, _)) -> id
    | None -> Alcotest.fail "no loop"
  in
  ignore p;
  let r = Lrpd.run_test program ~setup:(fun _ -> ()) ~loop in
  check "privatization criterion violated" false r.passed

let test_lrpd_inapplicable_on_pointers () =
  let program, p =
    profile
      {|global out[16];
fn main() {
  for (k = 0; k < 16) {
    var node = malloc(1);
    node[0] = k;
    out[k] = node[0];
    free(node);
  }
  return 0;
}|}
  in
  let survey = Lrpd.survey program p in
  match survey with
  | (_, _, _, Lrpd.Inapplicable _) :: _ -> ()
  | _ -> Alcotest.fail "LRPD must be inapplicable with dynamic allocation"

(* ---- feature matrix ------------------------------------------------------ *)

let test_feature_matrix_shape () =
  let rows = Feature_matrix.paper_rows in
  check_int "eight techniques" 8 (List.length rows);
  let privateer = List.nth rows 7 in
  Alcotest.(check string) "last row is Privateer" "Privateer (this work)"
    privateer.technique;
  check "privateer supports everything" true
    (privateer.fully_automatic = Feature_matrix.Yes
    && privateer.pointers_dynamic_alloc = Feature_matrix.Yes
    && privateer.redux_layout_beyond_static = Feature_matrix.Yes);
  (* Rendering shouldn't raise and produces one line per row + 2. *)
  let rendered = Privateer_support.Table.render (Feature_matrix.to_table ()) in
  check_int "rendered lines" 10 (List.length (String.split_on_char '\n' rendered))

let test_probe_on_quickstartish () =
  let program, p = profile lrpd_ok_src in
  let probe = Feature_matrix.probe_program ~name:"demo" program p in
  check "privateer plans" true probe.privateer_plans;
  check "lrpd applicable on the array demo" true probe.lrpd_applicable

let suite =
  [ Alcotest.test_case "DOALL-only proves affine loops" `Quick test_doall_proves_affine;
    Alcotest.test_case "DOALL-only rejects pointer loops" `Quick test_doall_rejects_pointer_loop;
    Alcotest.test_case "DOALL-only rejects scratch reuse" `Quick test_doall_rejects_scratch_reuse;
    Alcotest.test_case "DOALL-only rejects I/O" `Quick test_doall_rejects_io;
    Alcotest.test_case "DOALL-only run preserves semantics" `Quick test_doall_run_preserves_semantics;
    Alcotest.test_case "DOALL-only profitability floor" `Quick test_doall_unprofitable_skipped;
    Alcotest.test_case "LRPD applicable on named arrays" `Quick test_lrpd_applicable_on_arrays;
    Alcotest.test_case "LRPD shadow test passes" `Quick test_lrpd_shadow_test_passes;
    Alcotest.test_case "LRPD shadow test detects flow" `Quick test_lrpd_shadow_test_fails_on_flow;
    Alcotest.test_case "LRPD inapplicable with pointers" `Quick test_lrpd_inapplicable_on_pointers;
    Alcotest.test_case "feature matrix shape" `Quick test_feature_matrix_shape;
    Alcotest.test_case "dynamic probe" `Quick test_probe_on_quickstartish ]

(* ---- R-LRPD ---------------------------------------------------------- *)

let test_r_lrpd_fully_parallel () =
  let program, p = profile lrpd_ok_src in
  match Privateer_analysis.Selection.select program p with
  | { plans = plan :: _; _ } ->
    let r = Lrpd.run_r_lrpd program ~setup:(fun _ -> ()) ~loop:plan.loop in
    check "one stage" true r.fully_parallel;
    check_int "covers all iterations" 40 r.iterations
  | _ -> Alcotest.fail "no plan"

let test_r_lrpd_partially_parallel () =
  (* A loop with exactly one mid-loop flow dependence: iteration 25
     reads what iteration 10 wrote.  R-LRPD must commit [0,25), then
     the rest, in two stages. *)
  let src =
    {|global cell; global out[50];
fn main() {
  cell = 7;
  for (k = 0; k < 50) {
    if (k == 10) { cell = 42; }
    if (k == 25) { out[0] = cell; }
    out[k] = out[k] + k;
  }
  return 0;
}|}
  in
  let program = Pipeline.parse src in
  let loop =
    match
      List.find_opt
        (fun ((f : Privateer_ir.Ast.func), _) -> f.fname = "main")
        (Privateer_ir.Ast.loops_of_program program)
    with
    | Some (_, (id, _)) -> id
    | None -> Alcotest.fail "no loop"
  in
  let r = Lrpd.run_r_lrpd program ~setup:(fun _ -> ()) ~loop in
  check "not fully parallel" false r.fully_parallel;
  check_int "two stages" 2 (List.length r.stages);
  (match r.stages with
  | [ s1; s2 ] ->
    check_int "first stage ends at the violating iteration" 25 s1.stage_hi;
    check_int "second stage resumes there" 25 s2.stage_lo;
    check_int "second stage finishes the loop" 50 s2.stage_hi
  | _ -> Alcotest.fail "stage structure");
  check_int "iterations observed" 50 r.iterations

let suite =
  suite
  @ [ Alcotest.test_case "R-LRPD: fully parallel loop" `Quick test_r_lrpd_fully_parallel;
      Alcotest.test_case "R-LRPD: partially parallel loop" `Quick
        test_r_lrpd_partially_parallel ]
