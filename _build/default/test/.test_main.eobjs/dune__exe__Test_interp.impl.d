test/test_interp.ml: Alcotest Ast Builder Hashtbl Heap Hooks Interp List Privateer_interp Privateer_ir Privateer_lang Privateer_machine Value
