test/test_profiler.ml: Alcotest Ast Hashtbl Interp List Objname Printf Privateer_interp Privateer_ir Privateer_lang Privateer_profile Profiler Value
