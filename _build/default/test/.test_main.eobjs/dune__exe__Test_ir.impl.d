test/test_ir.ml: Alcotest Ast Builder Heap Hooks List Pp Privateer_interp Privateer_ir Privateer_lang String Validate Value
