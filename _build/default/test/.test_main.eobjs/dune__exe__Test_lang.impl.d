test/test_lang.ml: Alcotest Lexer List Parser Printf Privateer_interp Privateer_ir Privateer_lang
