test/test_runtime.ml: Alcotest Ast Buffer Checkpoint Deferred_io Hashtbl Heap Int64 List Machine Memory Misspec Printf Privateer_interp Privateer_ir Privateer_machine Privateer_runtime Shadow
