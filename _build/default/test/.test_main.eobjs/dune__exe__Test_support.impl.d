test/test_support.ml: Alcotest Float Interval_map List Privateer_support Rng Stats String Table
