test/test_machine.ml: Alcotest Allocator Heap Int64 List Machine Memory Privateer_ir Privateer_machine
