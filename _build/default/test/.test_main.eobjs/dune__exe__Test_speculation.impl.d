test/test_speculation.ml: Alcotest List Pipeline Privateer Privateer_interp Privateer_parallel
