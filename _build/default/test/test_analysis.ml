(* Unit tests for the analyses: reduction recognition, footprints
   (Algorithm 2), classification (Algorithm 1), scalar classes, static
   points-to, and loop selection. *)

open Privateer_ir
open Privateer_profile
open Privateer_analysis

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let parse = Privateer_lang.Parser.parse_program_exn

let profile src =
  let program = parse src in
  let p, _ = Profiler.profile_run program in
  (program, p)

let loop_in program fname =
  match
    List.find_opt (fun ((f : Ast.func), _) -> f.fname = fname)
      (Ast.loops_of_program program)
  with
  | Some (_, (id, Ast.For (_, _, _, _, body))) -> (id, body)
  | Some (_, (id, Ast.While (_, _, body))) -> (id, body)
  | _ -> Alcotest.fail ("no loop in " ^ fname)

let names set = List.map Objname.to_string (Objname.Set.elements set)

(* ---- reduction recognition ------------------------------------------- *)

let body_of program fname =
  match Ast.find_func program fname with
  | Some f -> f.Ast.body
  | None -> Alcotest.fail ("no function " ^ fname)

let test_reduction_pairs () =
  let program =
    parse
      {|global a[4]; global b[4];
fn main() {
  a[0] = a[0] + 1;       // reduction: load op x
  a[1] = 2 + a[1];       // reduction: x op load
  b[0] = a[0] + 1;       // not: different address
  a[2] = a[2] - 1;       // not: subtraction is not assoc-comm here
  a[3] = a[3] *. 2.0;    // reduction: float multiply
  return 0;
}|}
  in
  let pairs = Reduction.pairs_in_block (body_of program "main") in
  check_int "three reduction pairs" 3 (List.length pairs);
  let ops = List.sort compare (List.map (fun (p : Reduction.pair) -> p.op) pairs) in
  check "ops" true (ops = List.sort compare [ Ast.Add; Ast.Add; Ast.Fmul ])

let test_reduction_identity_merge () =
  let open Privateer_interp.Value in
  check "add identity" true (equal (Reduction.identity_value Ast.Add) (VInt 0));
  check "mul identity" true (equal (Reduction.identity_value Ast.Mul) (VInt 1));
  check "band identity" true (equal (Reduction.identity_value Ast.Band) (VInt (-1)));
  check "fadd identity" true (equal (Reduction.identity_value Ast.Fadd) (VFloat 0.0));
  check "merge add" true (equal (Reduction.merge_values Ast.Add (VInt 3) (VInt 4)) (VInt 7));
  check "merge fmul" true
    (equal (Reduction.merge_values Ast.Fmul (VFloat 2.0) (VFloat 3.0)) (VFloat 6.0));
  check "merge bxor" true (equal (Reduction.merge_values Ast.Bxor (VInt 5) (VInt 3)) (VInt 6))

(* ---- footprint / classification --------------------------------------- *)

let test_footprint_sets () =
  let program, p =
    profile
      {|global src[8]; global dst[8]; global acc;
fn main() {
  acc = 0;
  for (i = 0; i < 8) {
    dst[i] = src[i] * 2;
    acc = acc + src[i];
  }
  return acc;
}|}
  in
  let _, body = loop_in program "main" in
  let fp = Footprint.compute program p body in
  check "src read" true (Objname.Set.mem (Objname.Global "src") fp.reads);
  check "dst written" true (Objname.Set.mem (Objname.Global "dst") fp.writes);
  check "acc is a reduction" true (Objname.Set.mem (Objname.Global "acc") fp.redux);
  check "acc not plain-read" false (Objname.Set.mem (Objname.Global "acc") fp.reads);
  check "dst not read" false (Objname.Set.mem (Objname.Global "dst") fp.reads)

let test_footprint_through_calls () =
  let program, p =
    profile
      {|global t[4];
fn helper(k) { t[k] = k; return t[k]; }
fn main() { var s = 0; for (i = 0; i < 4) { s = s + helper(i); } return s; }|}
  in
  let _, body = loop_in program "main" in
  let fp = Footprint.compute program p body in
  check "callee write visible" true (Objname.Set.mem (Objname.Global "t") fp.writes)

let test_classification_basic () =
  (* The quickstart shape: scratch reused every iteration -> private;
     input read-only; per-iteration nodes short-lived. *)
  let program, p =
    profile
      {|global input[8]; global scratch[8]; global out[64];
fn main() {
  for (j = 0; j < 8) { input[j] = j; }
  for (k = 0; k < 32) {
    var n = malloc(1);
    n[0] = k;
    for (i = 0; i < 8) { scratch[i] = input[i] + n[0]; }
    var s = 0;
    for (i2 = 0; i2 < 8) { s = s + scratch[i2]; }
    out[k] = s;
    free(n);
  }
  return 0;
}|}
  in
  let loop, body =
    (* the k loop is the second loop in main *)
    match Ast.loops_of_program program with
    | _ :: (_, (id, Ast.For (_, _, _, _, b))) :: _ -> (id, b)
    | _ -> Alcotest.fail "loop structure"
  in
  let a = Classify.classify program p ~loop ~body in
  check "scratch private" true (Objname.Set.mem (Objname.Global "scratch") a.priv);
  check "out private" true (Objname.Set.mem (Objname.Global "out") a.priv);
  check "input read-only" true (Objname.Set.mem (Objname.Global "input") a.read_only);
  check_int "one short-lived name" 1 (Objname.Set.cardinal a.short_lived);
  check "no unrestricted" true (Objname.Set.is_empty a.unrestricted);
  (* heap_of agrees with the sets *)
  check "heap_of scratch" true
    (Classify.heap_of a (Objname.Global "scratch") = Some Heap.Private);
  check "heap_of input" true
    (Classify.heap_of a (Objname.Global "input") = Some Heap.Read_only)

let test_classification_unrestricted () =
  let program, p =
    profile
      "global acc; fn main() { acc = 0; for (i = 0; i < 4) { acc = (acc + i) * 2; } return acc; }"
  in
  (* (acc + i) * 2 is not a pure reduction update: acc flows across
     iterations -> unrestricted. *)
  let loop, body = loop_in program "main" in
  let a = Classify.classify program p ~loop ~body in
  check "acc unrestricted" true (Objname.Set.mem (Objname.Global "acc") a.unrestricted)

let test_classification_redux_demoted_when_read () =
  (* A reduction-updated object that is ALSO read elsewhere in the
     loop fails the reduction criterion. *)
  let program, p =
    profile
      {|global acc; global out[8];
fn main() {
  acc = 0;
  for (i = 0; i < 8) {
    acc = acc + i;
    out[i] = acc;      // reads an intermediate value
  }
  return 0;
}|}
  in
  let loop, body = loop_in program "main" in
  let a = Classify.classify program p ~loop ~body in
  check "acc not redux" false (Objname.Set.mem (Objname.Global "acc") a.redux);
  check "acc unrestricted" true (Objname.Set.mem (Objname.Global "acc") a.unrestricted)

let test_value_prediction_classification () =
  (* The dijkstra handoff shape: flag always returns to 0 by iteration
     end; the cross-iteration dep carries the constant 0. *)
  let program, p =
    profile
      {|global flag; global out[16];
fn main() {
  flag = 0;
  for (i = 0; i < 16) {
    out[i] = flag;   // cross-iteration read, always 0
    flag = 1;
    flag = 0;
  }
  return 0;
}|}
  in
  let loop, body = loop_in program "main" in
  let a = Classify.classify program p ~loop ~body in
  check_int "one prediction" 1 (List.length a.predictions);
  let pr = List.hd a.predictions in
  Alcotest.(check string) "predicted global" "flag" pr.pred_global;
  check_int "predicted value" 0 pr.pred_value;
  check "dep removed: flag is private, not unrestricted" true
    (Objname.Set.mem (Objname.Global "flag") a.priv);
  check "no unrestricted" true (Objname.Set.is_empty a.unrestricted)

let test_control_speculation_requires_cold_access () =
  let program, p =
    profile
      {|global g; global err;
fn main() {
  g = 0;
  for (i = 0; i < 8) {
    if (i < 100) { g = i; } else { err = err + 1; }  // cold side: unprofiled store
    if (i >= 0) { g = g + 1; } else { g = 2; }       // cold side: unprofiled store
    if (i % 2 == 0) { g = g + 1; } else { g = g + 2; }  // mixed: both sides profiled
  }
  return g;
}|}
  in
  let loop, body = loop_in program "main" in
  let a = Classify.classify program p ~loop ~body in
  (* The two biased branches qualify (their cold sides contain
     never-executed accesses); the mixed branch never does. *)
  check_int "two control-speculated branches" 2 (List.length a.control_spec)

(* ---- scalars ----------------------------------------------------------- *)

let classify_scalars src =
  let program = parse src in
  let _, body = loop_in program "main" in
  Scalars.classify ~induction:"i" body

let test_scalars_classes () =
  match
    classify_scalars
      {|global a[8];
fn main() {
  var livein = 3;
  var sum = 0;
  for (i = 0; i < 8) {
    var t = a[i] + livein;   // t: iteration-private
    sum = sum + t;           // sum: register reduction
    a[i] = t;
  }
  return sum;
}|}
  with
  | Scalars.Classified classes ->
    check "induction" true (List.assoc "i" classes = Scalars.Induction);
    check "private" true (List.assoc "t" classes = Scalars.Private_reg);
    check "reduction" true (List.assoc "sum" classes = Scalars.Reduction_reg Ast.Add);
    check "live-in" true (List.assoc "livein" classes = Scalars.Live_in)
  | Scalars.Rejected r -> Alcotest.fail r

let test_scalars_reject_carried () =
  (match classify_scalars "fn main() { var x = 0; for (i = 0; i < 4) { x = x * 2 + 1; } return x; }" with
  | Scalars.Rejected _ -> ()
  | Scalars.Classified _ -> Alcotest.fail "x * 2 + 1 is not a reduction update");
  match
    classify_scalars
      "global a[8]; fn main() { var s = 0; for (i = 0; i < 4) { a[i] = s; s = s + 1; } return s; }"
  with
  | Scalars.Rejected _ -> () (* s read outside its update *)
  | Scalars.Classified _ -> Alcotest.fail "s is read outside its reduction update"

let test_scalars_conditional_def_is_carried () =
  (* Defined only on one branch: may be read before defined. *)
  match
    classify_scalars
      "fn main() { var x = 0; for (i = 0; i < 4) { if (i > 2) { x = i; } x = x + 0 - x; } return x; }"
  with
  | Scalars.Rejected _ -> ()
  | Scalars.Classified _ -> Alcotest.fail "conditional def must reject"

let test_scalars_mixed_ops_reject () =
  match
    classify_scalars
      "fn main() { var s = 0; for (i = 0; i < 4) { s = s + i; s = s * 2; } return s; }"
  with
  | Scalars.Rejected _ -> ()
  | Scalars.Classified _ -> Alcotest.fail "two different update operators must reject"

(* ---- static points-to -------------------------------------------------- *)

let test_pta_precision () =
  let program =
    parse
      {|global g[4]; global cell;
fn main() {
  var p = &g;
  p[0] = 1;
  var q = malloc(2);
  cell = q;
  var r = cell;
  r[0] = 2;
  free(q);
  return 0;
}|}
  in
  let pta = Static_pta.analyze program in
  let pts e = Static_pta.points_to pta ~fname:"main" e in
  let p = pts (Ast.Local "p") in
  check "p -> {g}" true
    (Static_pta.Abs_set.equal p (Static_pta.Abs_set.singleton (Static_pta.Abs.AGlobal "g")));
  (* r is loaded from memory: flows through cell's contents. *)
  let r = pts (Ast.Local "r") in
  check "r includes the malloc site" true
    (Static_pta.Abs_set.exists
       (fun a -> match a with Static_pta.Abs.ASite _ -> true | _ -> false)
       r)

let test_pta_call_flow () =
  let program =
    parse
      {|global a[4];
fn id(x) { return x; }
fn main() { var p = id(&a); p[0] = 1; return 0; }|}
  in
  let pta = Static_pta.analyze program in
  let p = Static_pta.points_to pta ~fname:"main" (Ast.Local "p") in
  check "return flow" true
    (Static_pta.Abs_set.mem (Static_pta.Abs.AGlobal "a") p);
  check "precise" true (Static_pta.is_precise p)

(* ---- selection --------------------------------------------------------- *)

let select src =
  let program, p = profile src in
  (program, Selection.select program p)

let test_selection_accepts_privatizable () =
  let _, sel =
    select
      {|global scratch[8]; global out[32];
fn main() {
  for (k = 0; k < 32) {
    for (i = 0; i < 8) { scratch[i] = k + i; }
    var s = 0;
    for (j = 0; j < 8) { s = s + scratch[j]; }
    out[k] = s;
  }
  return 0;
}|}
  in
  check_int "one plan" 1 (List.length sel.plans);
  let plan = List.hd sel.plans in
  Alcotest.(check string) "outer loop in main" "main" plan.func;
  check "scratch site private" true
    (List.exists
       (fun (s, h) ->
         s = Objname.Global_site "scratch" && Heap.equal_kind h Heap.Private)
       plan.site_heap)

let test_selection_rejects () =
  (* Loop-carried memory dependence -> reject. *)
  let _, sel =
    select "global acc; fn main() { acc = 1; for (i = 0; i < 8) { acc = (acc * 3) % 97; } return acc; }"
  in
  check "no plans" true (sel.plans = []);
  check "rejection recorded" true (sel.rejections <> [])

let test_selection_rejects_noninvariant_limit () =
  let _, sel =
    select
      "global out[64]; fn main() { var n = 4; for (i = 0; i < n) { out[i] = i; n = 4; } return 0; }"
  in
  check "no plans for varying bound" true
    (List.for_all (fun (p : Selection.plan) -> p.func <> "main") sel.plans)

let test_selection_rejects_break () =
  let _, sel =
    select
      "global out[8]; fn main() { for (i = 0; i < 8) { out[i] = i; if (i == 5) { break; } } return 0; }"
  in
  check "no plans with break" true (sel.plans = [])

let test_selection_no_nested_parallelism () =
  let _, sel =
    select
      {|global out[1024];
fn main() {
  for (k = 0; k < 16) {
    for (i = 0; i < 32) { out[k * 32 + i] = k + i; }
  }
  return 0;
}|}
  in
  (* Both loops may be individually plannable, but only one can be
     selected. *)
  check_int "single compatible plan" 1 (List.length sel.plans)

let test_selection_extras () =
  let _, sel =
    select
      {|global flag; global out[16]; global err;
fn main() {
  flag = 0;
  for (i = 0; i < 16) {
    if (i > 1000) { err = err + 1; }
    out[i] = flag;
    flag = 1;
    flag = 0;
    print("%d\n", i);
  }
  return 0;
}|}
  in
  match sel.plans with
  | [ plan ] ->
    let extras = Selection.extras plan in
    check "value" true (List.mem "Value" extras);
    check "control" true (List.mem "Control" extras);
    check "io" true (List.mem "I/O" extras)
  | _ -> Alcotest.fail "expected one plan"

let suite =
  [ Alcotest.test_case "reduction pair recognition" `Quick test_reduction_pairs;
    Alcotest.test_case "reduction identity and merge" `Quick test_reduction_identity_merge;
    Alcotest.test_case "footprint read/write/redux" `Quick test_footprint_sets;
    Alcotest.test_case "footprint recurses into calls" `Quick test_footprint_through_calls;
    Alcotest.test_case "classification: private/RO/SL" `Quick test_classification_basic;
    Alcotest.test_case "classification: unrestricted" `Quick test_classification_unrestricted;
    Alcotest.test_case "classification: redux read elsewhere demoted" `Quick test_classification_redux_demoted_when_read;
    Alcotest.test_case "classification: value prediction" `Quick test_value_prediction_classification;
    Alcotest.test_case "control speculation needs cold access" `Quick test_control_speculation_requires_cold_access;
    Alcotest.test_case "scalar classes" `Quick test_scalars_classes;
    Alcotest.test_case "scalars: carried register rejected" `Quick test_scalars_reject_carried;
    Alcotest.test_case "scalars: conditional def rejected" `Quick test_scalars_conditional_def_is_carried;
    Alcotest.test_case "scalars: mixed update ops rejected" `Quick test_scalars_mixed_ops_reject;
    Alcotest.test_case "points-to precision" `Quick test_pta_precision;
    Alcotest.test_case "points-to call flow" `Quick test_pta_call_flow;
    Alcotest.test_case "selection accepts privatizable loop" `Quick test_selection_accepts_privatizable;
    Alcotest.test_case "selection rejects carried deps" `Quick test_selection_rejects;
    Alcotest.test_case "selection rejects varying bound" `Quick test_selection_rejects_noninvariant_limit;
    Alcotest.test_case "selection rejects break" `Quick test_selection_rejects_break;
    Alcotest.test_case "selection avoids nested parallelism" `Quick test_selection_no_nested_parallelism;
    Alcotest.test_case "selection extras labels" `Quick test_selection_extras ]
