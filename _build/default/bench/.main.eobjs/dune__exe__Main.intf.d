bench/main.mli:
