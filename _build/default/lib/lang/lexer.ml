(* Lexer for Cmini, the C-like surface language the workloads are
   written in.  Hand-written (no menhir in the sealed environment);
   tracks line/column for error reporting. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | STRING of string
  | KW of string (* keywords: global fn var if else while for ... *)
  | PUNCT of string (* operators and delimiters *)
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

let keywords =
  [ "global"; "fn"; "var"; "if"; "else"; "while"; "for"; "print"; "free";
    "return"; "break"; "continue"; "malloc"; "load1"; "store1"; "itof"; "ftoi" ]

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> Printf.sprintf "%g" f
  | IDENT s -> s
  | STRING s -> Printf.sprintf "%S" s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"

(* Multi-character operators, longest first so matching is greedy. *)
let multi_ops =
  [ "<=."; ">=."; "==."; "!=."; "&&"; "||"; "<<"; ">>"; "<="; ">="; "=="; "!=";
    "+."; "-."; "*."; "/."; "<."; ">." ]

let single_ops = "+-*/%<>=!&|^~(){}[];,"

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let err msg = raise (Lex_error (msg, !line, !col)) in
  let advance k =
    for j = !i to min (n - 1) (!i + k - 1) do
      if src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  (* Token positions are captured at the start of each token. *)
  let tok_line = ref 1 and tok_col = ref 1 in
  let emit tok = toks := { tok; line = !tok_line; col = !tok_col } :: !toks in
  let starts_with s =
    let l = String.length s in
    !i + l <= n && String.sub src !i l = s
  in
  while !i < n do
    tok_line := !line;
    tok_col := !col;
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if starts_with "//" then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if starts_with "/*" then begin
      advance 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if starts_with "*/" then begin
          advance 2;
          closed := true
        end
        else advance 1
      done;
      if not !closed then err "unterminated comment"
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let start_i = !i in
      advance 1;
      let closed = ref false in
      while (not !closed) && !i < n do
        let d = src.[!i] in
        if d = '"' then begin
          advance 1;
          closed := true
        end
        else if d = '\\' && !i + 1 < n then begin
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | e -> err (Printf.sprintf "bad escape \\%c" e));
          advance 2
        end
        else begin
          Buffer.add_char buf d;
          advance 1
        end
      done;
      if not !closed then err "unterminated string";
      ignore start_i;
      emit (STRING (Buffer.contents buf))
    end
    else if (c >= '0' && c <= '9')
            || (c = '.' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      let j = ref !i in
      let is_float = ref false in
      let digit ch = ch >= '0' && ch <= '9' in
      while !j < n && digit src.[!j] do
        incr j
      done;
      (* A '.' introduces a float only when followed by a digit, so that
         the float operators (+., <., ...) never swallow a trailing dot
         of an integer operand. *)
      if !j < n && src.[!j] = '.' && !j + 1 < n && digit src.[!j + 1] then begin
        is_float := true;
        incr j;
        while !j < n && digit src.[!j] do
          incr j
        done
      end;
      if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
        is_float := true;
        incr j;
        if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
        while !j < n && digit src.[!j] do
          incr j
        done
      end;
      let text = String.sub src !i (!j - !i) in
      (if !is_float then emit (FLOAT (float_of_string text))
       else
         match int_of_string_opt text with
         | Some v -> emit (INT v)
         | None -> err ("bad integer literal " ^ text));
      advance (!j - !i)
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      let ident_char ch =
        (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
        || (ch >= '0' && ch <= '9') || ch = '_'
      in
      while !j < n && ident_char src.[!j] do
        incr j
      done;
      let text = String.sub src !i (!j - !i) in
      emit (if List.mem text keywords then KW text else IDENT text);
      advance (!j - !i)
    end
    else begin
      match List.find_opt starts_with multi_ops with
      | Some op ->
        emit (PUNCT op);
        advance (String.length op)
      | None ->
        if String.contains single_ops c then begin
          emit (PUNCT (String.make 1 c));
          advance 1
        end
        else err (Printf.sprintf "unexpected character %C" c)
    end
  done;
  emit EOF;
  List.rev !toks
