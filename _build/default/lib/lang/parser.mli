(** Recursive-descent parser for Cmini, lowering directly to the IR.

    Cmini is deliberately close to C's memory model: untyped 64-bit
    words, word subscripts ([e1\[e2\]] is the word at [e1 + 8*e2]),
    [malloc]/[free] in words, byte access via [load1]/[store1],
    distinct float operators ([+.], [<.], ...), scalar globals reading
    as values and array globals as base addresses, [&g] for any
    global's address, and [var a\[n\]] for stack arrays. *)

exception Parse_error of string * int * int
(** Message, line, column. *)

(** Parse a whole program (validated before returning).
    @param entry entry function name, default ["main"]
    @raise Parse_error / {!Lexer.Lex_error} on malformed input. *)
val parse_program : ?entry:string -> string -> Privateer_ir.Ast.program

(** Like {!parse_program}, but turns errors into [Failure] with the
    position formatted into the message. *)
val parse_program_exn : ?entry:string -> string -> Privateer_ir.Ast.program
