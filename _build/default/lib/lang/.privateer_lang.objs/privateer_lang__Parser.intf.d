lib/lang/parser.mli: Privateer_ir
