lib/lang/parser.ml: Ast Builder Hashtbl Lexer List Printf Privateer_ir Validate
