(* Recursive-descent parser for Cmini, lowering directly to the IR.

   Cmini is deliberately close to the memory model of C: untyped
   64-bit words, pointer arithmetic via subscripts (e[i] is the 8-byte
   word at e + 8*i), dynamic allocation in words (malloc(n) allocates
   n 8-byte words), byte access via load1/store1, and distinct float
   operators (+. *. <. ...) since the IR is dynamically typed.

   Scalar globals read as their value and assign with '=', matching C
   globals; array globals evaluate to their base address.  '&g' takes
   any global's address. *)

open Privateer_ir

exception Parse_error of string * int * int

type gkind = Gscalar | Garray

type st = {
  mutable toks : Lexer.located list;
  builder : Builder.t;
  globals : (string, gkind) Hashtbl.t;
}

let peek st = match st.toks with [] -> assert false | t :: _ -> t

let err st msg =
  let t = peek st in
  raise (Parse_error (Printf.sprintf "%s (found %s)" msg (Lexer.token_to_string t.tok), t.line, t.col))

let advance st = match st.toks with [] -> assert false | _ :: rest -> st.toks <- rest

let expect_punct st p =
  match (peek st).tok with
  | PUNCT q when q = p -> advance st
  | _ -> err st (Printf.sprintf "expected %S" p)

let expect_ident st =
  match (peek st).tok with
  | IDENT name ->
    advance st;
    name
  | _ -> err st "expected identifier"

let accept_punct st p =
  match (peek st).tok with
  | PUNCT q when q = p ->
    advance st;
    true
  | _ -> false

let fresh st = Builder.fresh st.builder

(* ---- expressions ---------------------------------------------------- *)

(* Word subscript: the 8-byte word at base + 8*index. *)
let subscript_addr base index =
  Ast.Binop (Add, base, Ast.Binop (Mul, Int 8, index))

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept_punct st "||" then Ast.Or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_cmp st in
  if accept_punct st "&&" then Ast.And (lhs, parse_and st) else lhs

and parse_cmp st =
  let lhs = parse_bits st in
  let op =
    match (peek st).tok with
    | PUNCT "<" -> Some Ast.Lt
    | PUNCT "<=" -> Some Le
    | PUNCT ">" -> Some Gt
    | PUNCT ">=" -> Some Ge
    | PUNCT "==" -> Some Eq
    | PUNCT "!=" -> Some Ne
    | PUNCT "<." -> Some Flt
    | PUNCT "<=." -> Some Fle
    | PUNCT ">." -> Some Fgt
    | PUNCT ">=." -> Some Fge
    | PUNCT "==." -> Some Feq
    | PUNCT "!=." -> Some Fne
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, parse_bits st)

and parse_bits st =
  let rec loop lhs =
    match (peek st).tok with
    | PUNCT "&" -> advance st; loop (Ast.Binop (Band, lhs, parse_shift st))
    | PUNCT "|" -> advance st; loop (Ast.Binop (Bor, lhs, parse_shift st))
    | PUNCT "^" -> advance st; loop (Ast.Binop (Bxor, lhs, parse_shift st))
    | _ -> lhs
  in
  loop (parse_shift st)

and parse_shift st =
  let rec loop lhs =
    match (peek st).tok with
    | PUNCT "<<" -> advance st; loop (Ast.Binop (Shl, lhs, parse_add st))
    | PUNCT ">>" -> advance st; loop (Ast.Binop (Shr, lhs, parse_add st))
    | _ -> lhs
  in
  loop (parse_add st)

and parse_add st =
  let rec loop lhs =
    match (peek st).tok with
    | PUNCT "+" -> advance st; loop (Ast.Binop (Add, lhs, parse_mul st))
    | PUNCT "-" -> advance st; loop (Ast.Binop (Sub, lhs, parse_mul st))
    | PUNCT "+." -> advance st; loop (Ast.Binop (Fadd, lhs, parse_mul st))
    | PUNCT "-." -> advance st; loop (Ast.Binop (Fsub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match (peek st).tok with
    | PUNCT "*" -> advance st; loop (Ast.Binop (Mul, lhs, parse_unary st))
    | PUNCT "/" -> advance st; loop (Ast.Binop (Div, lhs, parse_unary st))
    | PUNCT "%" -> advance st; loop (Ast.Binop (Rem, lhs, parse_unary st))
    | PUNCT "*." -> advance st; loop (Ast.Binop (Fmul, lhs, parse_unary st))
    | PUNCT "/." -> advance st; loop (Ast.Binop (Fdiv, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  match (peek st).tok with
  | PUNCT "-" -> advance st; Ast.Unop (Neg, parse_unary st)
  | PUNCT "-." -> advance st; Ast.Unop (Fneg, parse_unary st)
  | PUNCT "!" -> advance st; Ast.Unop (Not, parse_unary st)
  | PUNCT "~" -> advance st; Ast.Unop (Bnot, parse_unary st)
  | KW "itof" ->
    advance st;
    expect_punct st "(";
    let e = parse_expr st in
    expect_punct st ")";
    Ast.Unop (Itof, e)
  | KW "ftoi" ->
    advance st;
    expect_punct st "(";
    let e = parse_expr st in
    expect_punct st ")";
    Ast.Unop (Ftoi, e)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec loop e =
    if accept_punct st "[" then begin
      let idx = parse_expr st in
      expect_punct st "]";
      loop (Ast.Load (fresh st, S8, subscript_addr e idx))
    end
    else e
  in
  loop (parse_primary st)

and parse_args st =
  expect_punct st "(";
  if accept_punct st ")" then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if accept_punct st "," then loop (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

and parse_primary st =
  match (peek st).tok with
  | INT n -> advance st; Ast.Int n
  | FLOAT f -> advance st; Ast.Float f
  | PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | PUNCT "&" ->
    advance st;
    let name = expect_ident st in
    if not (Hashtbl.mem st.globals name) then err st ("&: unknown global " ^ name);
    Ast.Global_addr name
  | KW "malloc" ->
    advance st;
    expect_punct st "(";
    let words = parse_expr st in
    expect_punct st ")";
    Ast.Alloc (fresh st, Malloc, None, Ast.Binop (Mul, Int 8, words))
  | KW "load1" ->
    advance st;
    expect_punct st "(";
    let addr = parse_expr st in
    expect_punct st ")";
    Ast.Load (fresh st, S1, addr)
  | IDENT name -> (
    advance st;
    match (peek st).tok with
    | PUNCT "(" -> Ast.Call (fresh st, name, parse_args st)
    | _ -> (
      match Hashtbl.find_opt st.globals name with
      | Some Gscalar -> Ast.Load (fresh st, S8, Global_addr name)
      | Some Garray -> Ast.Global_addr name
      | None -> Ast.Local name))
  | _ -> err st "expected expression"

(* ---- statements ----------------------------------------------------- *)

let rec parse_block st =
  expect_punct st "{";
  let rec loop acc =
    if accept_punct st "}" then List.rev acc else loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st : Ast.stmt =
  match (peek st).tok with
  | KW "var" -> (
    advance st;
    let name = expect_ident st in
    if accept_punct st "[" then begin
      (* var a[n];  -- stack array of n words *)
      let words = parse_expr st in
      expect_punct st "]";
      expect_punct st ";";
      Ast.Assign
        (name, Ast.Alloc (fresh st, Salloc, None, Ast.Binop (Mul, Int 8, words)))
    end
    else begin
      expect_punct st "=";
      let e = parse_expr st in
      expect_punct st ";";
      Ast.Assign (name, e)
    end)
  | KW "if" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let b1 = parse_block st in
    let b2 =
      match (peek st).tok with
      | KW "else" ->
        advance st;
        (* else-if chains: else followed directly by another if. *)
        (match (peek st).tok with
        | KW "if" -> [ parse_stmt st ]
        | _ -> parse_block st)
      | _ -> []
    in
    Ast.If (fresh st, c, b1, b2)
  | KW "while" ->
    advance st;
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let body = parse_block st in
    Ast.While (fresh st, c, body)
  | KW "for" ->
    advance st;
    expect_punct st "(";
    let v = expect_ident st in
    expect_punct st "=";
    let init = parse_expr st in
    expect_punct st ";";
    let v2 = expect_ident st in
    if v <> v2 then err st "for: condition variable must match induction variable";
    expect_punct st "<";
    let limit = parse_expr st in
    expect_punct st ")";
    let body = parse_block st in
    Ast.For (fresh st, v, init, limit, body)
  | KW "print" ->
    advance st;
    expect_punct st "(";
    let fmt =
      match (peek st).tok with
      | STRING s ->
        advance st;
        s
      | _ -> err st "print: expected format string"
    in
    let args =
      let rec loop acc =
        if accept_punct st "," then loop (parse_expr st :: acc)
        else begin
          expect_punct st ")";
          List.rev acc
        end
      in
      loop []
    in
    expect_punct st ";";
    Ast.Print (fresh st, fmt, args)
  | KW "free" ->
    advance st;
    expect_punct st "(";
    let e = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    Ast.Free (fresh st, None, e)
  | KW "store1" ->
    advance st;
    expect_punct st "(";
    let addr = parse_expr st in
    expect_punct st ",";
    let v = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    Ast.Store (fresh st, S1, addr, v)
  | KW "return" ->
    advance st;
    if accept_punct st ";" then Ast.Return None
    else begin
      let e = parse_expr st in
      expect_punct st ";";
      Ast.Return (Some e)
    end
  | KW "break" ->
    advance st;
    expect_punct st ";";
    Ast.Break
  | KW "continue" ->
    advance st;
    expect_punct st ";";
    Ast.Continue
  | _ ->
    (* assignment or expression statement *)
    let e = parse_expr st in
    if accept_punct st "=" then begin
      let rhs = parse_expr st in
      expect_punct st ";";
      match e with
      | Ast.Local name -> Ast.Assign (name, rhs)
      | Ast.Load (_, size, addr) -> Ast.Store (fresh st, size, addr, rhs)
      | _ -> err st "bad assignment target"
    end
    else begin
      expect_punct st ";";
      Ast.Expr e
    end

(* ---- top level ------------------------------------------------------ *)

let parse_program ?(entry = "main") src =
  let st =
    { toks = Lexer.tokenize src; builder = Builder.create (); globals = Hashtbl.create 16 }
  in
  let globals = ref [] in
  let funcs = ref [] in
  let rec loop () =
    match (peek st).tok with
    | EOF -> ()
    | KW "global" ->
      advance st;
      let name = expect_ident st in
      let kind, words =
        if accept_punct st "[" then begin
          let n =
            match (peek st).tok with
            | INT n ->
              advance st;
              n
            | _ -> err st "global: array size must be an integer literal"
          in
          expect_punct st "]";
          (Garray, n)
        end
        else (Gscalar, 1)
      in
      expect_punct st ";";
      if Hashtbl.mem st.globals name then err st ("duplicate global " ^ name);
      Hashtbl.replace st.globals name kind;
      globals := Builder.global name (8 * words) :: !globals;
      loop ()
    | KW "fn" ->
      advance st;
      let name = expect_ident st in
      expect_punct st "(";
      let params =
        if accept_punct st ")" then []
        else begin
          let rec ps acc =
            let p = expect_ident st in
            if accept_punct st "," then ps (p :: acc)
            else begin
              expect_punct st ")";
              List.rev (p :: acc)
            end
          in
          ps []
        end
      in
      let body = parse_block st in
      funcs := Builder.func name params body :: !funcs;
      loop ()
    | _ -> err st "expected 'global' or 'fn' at top level"
  in
  loop ();
  let program =
    Builder.program st.builder ~globals:(List.rev !globals) ~funcs:(List.rev !funcs)
      ~entry
  in
  Validate.check_exn program;
  program

(* Friendly wrapper surfacing positions in the message. *)
let parse_program_exn ?entry src =
  try parse_program ?entry src with
  | Parse_error (msg, line, col) ->
    failwith (Printf.sprintf "Cmini parse error at %d:%d: %s" line col msg)
  | Lexer.Lex_error (msg, line, col) ->
    failwith (Printf.sprintf "Cmini lex error at %d:%d: %s" line col msg)
