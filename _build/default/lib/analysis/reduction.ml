(* Syntactic recognition of memory reduction operations.

   The paper's getFootprint (Algorithm 2) classifies a load/store pair
   as a reduction when the store's value is [op r, x] for the loaded
   value r and an associative-commutative op, through the same
   pointer.  In this structured IR the whole pattern appears as one
   statement:

       store(addr, load(addr') op x)     with addr ~ addr'

   where ~ is structural equality modulo node ids. *)

open Privateer_ir

type pair = {
  store_site : Ast.node_id;
  load_site : Ast.node_id;
  op : Ast.binop;
  addr : Ast.expr; (* the shared address expression *)
}

(* Match [rhs] as [load(addr) op x] or [x op load(addr)]. *)
let match_update addr rhs =
  match (rhs : Ast.expr) with
  | Binop (op, Load (lid, _, addr'), _) when Ast.is_reduction_op op
                                             && Ast_util.equal_expr_mod_ids addr addr' ->
    Some (op, lid)
  | Binop (op, _, Load (lid, _, addr')) when Ast.is_reduction_op op
                                             && Ast_util.equal_expr_mod_ids addr addr' ->
    Some (op, lid)
  | _ -> None

(* All reduction pairs in a block (not following calls). *)
let pairs_in_block blk =
  let acc = ref [] in
  Ast.iter_stmts
    (fun stmt ->
      match stmt with
      | Store (sid, _, addr, rhs) -> (
        match match_update addr rhs with
        | Some (op, lid) -> acc := { store_site = sid; load_site = lid; op; addr } :: !acc
        | None -> ())
      | _ -> ())
    blk;
  List.rev !acc

(* Reduction pairs in a block and in every function reachable from it. *)
let pairs_in_region program blk =
  let own = pairs_in_block blk in
  let funcs = Ast_util.reachable_funcs program blk in
  let called =
    Ast_util.String_set.fold
      (fun name acc ->
        match Ast.find_func program name with
        | Some f -> pairs_in_block f.body @ acc
        | None -> acc)
      funcs []
  in
  own @ called

(* Identity element for merging partial reduction results: the value a
   worker's accumulator starts from (paper 3.2: "bytes within those
   pages are initialized with the identity value").  Returns the raw
   64-bit word image. *)
let identity_bits (op : Ast.binop) : int64 * bool =
  match op with
  | Add -> (0L, false)
  | Mul -> (1L, false)
  | Band -> (-1L, false)
  | Bor | Bxor -> (0L, false)
  | Fadd -> (Int64.bits_of_float 0.0, true)
  | Fmul -> (Int64.bits_of_float 1.0, true)
  | _ -> invalid_arg "Reduction.identity_bits: not a reduction op"

(* Merge two partial values under the reduction operator. *)
let merge_values (op : Ast.binop) (a : Privateer_interp.Value.t) b =
  let open Privateer_interp.Value in
  match op with
  | Add -> VInt (as_int a + as_int b)
  | Mul -> VInt (as_int a * as_int b)
  | Band -> VInt (as_int a land as_int b)
  | Bor -> VInt (as_int a lor as_int b)
  | Bxor -> VInt (as_int a lxor as_int b)
  | Fadd -> VFloat (as_float a +. as_float b)
  | Fmul -> VFloat (as_float a *. as_float b)
  | _ -> invalid_arg "Reduction.merge_values: not a reduction op"

let identity_value op =
  let bits, is_float = identity_bits op in
  Privateer_interp.Value.of_bits bits is_float
