(* Register-level (scalar) classification for DOALL legality.

   Memory is handled by the heap assignment; loop-local variables
   (registers) need their own privatization story.  For a candidate
   loop each local assigned in the body must be one of:

   - the induction variable;
   - iteration-private: defined before any use on every path through
     one iteration (each worker computes it afresh);
   - a register reduction: every assignment is [x = x op e] with one
     associative-commutative op, and x is read only inside those
     updates (the paper's 052.alvinn scalar reduction);

   anything else is a loop-carried register dependence and the loop is
   rejected.  Locals that are only read are live-ins, copied into each
   worker's frame. *)

open Privateer_ir
module SS = Ast_util.String_set

type scalar_class =
  | Induction
  | Private_reg
  | Live_in
  | Reduction_reg of Ast.binop

type result =
  | Classified of (string * scalar_class) list
  | Rejected of string

(* Locals possibly read before being defined within one iteration of
   [blk].  Branches join with set-intersection of definitions; nested
   loop bodies are analyzed once with definitions accumulating (their
   own cross-iteration reads stay within one outer iteration, which is
   all DOALL needs), but definitions inside a nested loop do not count
   as definite afterwards (the loop may run zero times). *)
let reads_before_def blk ~induction =
  let flagged = ref SS.empty in
  let read defined x = if not (SS.mem x defined) then flagged := SS.add x !flagged in
  let rec expr defined (e : Ast.expr) =
    match e with
    | Local x -> read defined x
    | Int _ | Float _ | Global_addr _ -> ()
    | Load (_, _, a) | Unop (_, a) | Alloc (_, _, _, a) -> expr defined a
    | Binop (_, a, b) | And (a, b) | Or (a, b) ->
      expr defined a;
      expr defined b
    | Call (_, _, args) -> List.iter (expr defined) args
  in
  let rec block defined stmts = List.fold_left stmt defined stmts
  and stmt defined (s : Ast.stmt) =
    match s with
    | Assign (x, e) ->
      expr defined e;
      SS.add x defined
    | Store (_, _, a, v) ->
      expr defined a;
      expr defined v;
      defined
    | If (_, c, b1, b2) ->
      expr defined c;
      let d1 = block defined b1 in
      let d2 = block defined b2 in
      SS.inter d1 d2
    | While (_, c, body) ->
      expr defined c;
      ignore (block defined body);
      defined
    | For (_, v, init, limit, body) ->
      expr defined init;
      expr defined limit;
      ignore (block (SS.add v defined) body);
      defined
    | Expr e | Return (Some e) | Free (_, _, e) | Assert_value (_, e, _) ->
      expr defined e;
      defined
    | Check_heap (_, e, _) ->
      expr defined e;
      defined
    | Print (_, _, args) ->
      List.iter (expr defined) args;
      defined
    | Return None | Break | Continue | Misspec _ -> defined
  in
  ignore (block (SS.singleton induction) blk);
  !flagged

(* All assignments to [x] in the body, shallowly and in nested
   control flow (calls don't see our locals). *)
let assignments_to blk x =
  let acc = ref [] in
  Ast.iter_stmts
    (fun s -> match s with Assign (y, rhs) when y = x -> acc := rhs :: !acc | _ -> ())
    blk;
  List.rev !acc

(* Count reads of [x] at any expression depth in the body. *)
let count_reads blk x =
  let n = ref 0 in
  Ast.iter_exprs (fun e -> match e with Local y when y = x -> incr n | _ -> ()) blk;
  !n

(* Match [rhs] as a self-update [x op e] / [e op x]. *)
let match_self_update x (rhs : Ast.expr) =
  match rhs with
  | Binop (op, Local y, _) when y = x && Ast.is_reduction_op op -> Some op
  | Binop (op, _, Local y) when y = x && Ast.is_reduction_op op -> Some op
  | _ -> None

let classify ~induction (body : Ast.block) : result =
  let assigned = Ast_util.assigned_locals body in
  let read = Ast_util.read_locals body in
  let rbd = reads_before_def body ~induction in
  let classes = ref [ (induction, Induction) ] in
  let reject = ref None in
  SS.iter
    (fun x ->
      if !reject = None then
        if x = induction then () (* already classified *)
        else if not (SS.mem x rbd) then classes := (x, Private_reg) :: !classes
        else begin
          (* Read-before-def: only acceptable as a register reduction. *)
          let updates = assignments_to body x in
          let ops = List.map (match_self_update x) updates in
          let distinct_ops =
            List.sort_uniq compare (List.filter_map (fun o -> o) ops)
          in
          match distinct_ops with
          | [ op ] when List.for_all Option.is_some ops ->
            (* Every read of x must come from the self-updates. *)
            if count_reads body x = List.length updates then
              classes := (x, Reduction_reg op) :: !classes
            else
              reject :=
                Some
                  (Printf.sprintf "local %s is read outside its reduction updates" x)
          | _ ->
            reject :=
              Some (Printf.sprintf "loop-carried register dependence on local %s" x)
        end)
    assigned;
  (match !reject with
  | None ->
    SS.iter
      (fun x ->
        if (not (SS.mem x assigned)) && x <> induction then
          classes := (x, Live_in) :: !classes)
      read
  | Some _ -> ());
  match !reject with Some r -> Rejected r | None -> Classified (List.rev !classes)
