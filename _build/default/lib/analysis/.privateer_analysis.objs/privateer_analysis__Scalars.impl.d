lib/analysis/scalars.ml: Ast Ast_util List Option Printf Privateer_ir
