lib/analysis/classify.ml: Ast Ast_util Footprint Heap List Objname Printf Privateer_interp Privateer_ir Privateer_profile Profiler String Value
