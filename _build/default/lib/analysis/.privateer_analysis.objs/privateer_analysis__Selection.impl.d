lib/analysis/selection.ml: Ast Ast_util Classify Hashtbl Heap List Objname Printf Privateer_ir Privateer_profile Profiler Scalars String
