lib/analysis/ast_util.ml: Ast List Privateer_ir Set String Validate
