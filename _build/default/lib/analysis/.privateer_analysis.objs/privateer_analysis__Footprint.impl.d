lib/analysis/footprint.ml: Ast Ast_util Hashtbl List Objname Privateer_ir Privateer_profile Profiler Reduction Validate
