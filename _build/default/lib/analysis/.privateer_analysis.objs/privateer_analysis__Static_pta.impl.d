lib/analysis/static_pta.ml: Ast Hashtbl List Printf Privateer_ir Set Validate
