lib/analysis/reduction.ml: Ast Ast_util Int64 List Privateer_interp Privateer_ir
