(* Loop selection (paper section 4.3): choose the hot loops to
   parallelize, validate DOALL applicability under the heap
   assignment, and resolve a single consistent allocation-site-to-heap
   mapping across the selected set. *)

open Privateer_ir
open Privateer_profile
module SS = Ast_util.String_set

type plan = {
  func : string;
  loop : Ast.node_id;
  var : string;
  init : Ast.expr;
  limit : Ast.expr;
  body : Ast.block;
  assignment : Classify.assignment;
  scalars : (string * Scalars.scalar_class) list;
  deferred_io : bool;
  site_heap : (Objname.site * Heap.kind) list;
  weight : int; (* profiled cycles spent in the loop *)
}

type rejection = { rloop : Ast.node_id; rfunc : string; reason : string }

type t = { plans : plan list; rejections : rejection list }

(* Break/Continue statements binding to this loop: directly in the
   body, not nested inside an inner loop. *)
let rec has_direct_exit blk =
  List.exists
    (fun (s : Ast.stmt) ->
      match s with
      | Break | Continue -> true
      | If (_, _, b1, b2) -> has_direct_exit b1 || has_direct_exit b2
      | While _ | For _ -> false (* inner loops capture their own exits *)
      | Assign _ | Store _ | Expr _ | Free _ | Return _ | Print _ | Check_heap _
      | Assert_value _ | Misspec _ -> false)
    blk

let has_return blk =
  Ast_util.exists_stmt (fun s -> match s with Return _ -> true | _ -> false) blk

(* Loops whose dynamic instances can be simultaneously active with
   [body]'s loop: loops nested in the body, plus loops in functions
   reachable from the body. *)
let active_within program body =
  let nested = List.map fst (Ast.loops_of_block body) in
  let called =
    SS.fold
      (fun name acc ->
        match Ast.find_func program name with
        | Some f -> List.map fst (Ast.loops_of_block f.body) @ acc
        | None -> acc)
      (Ast_util.reachable_funcs program body)
      []
  in
  nested @ called

let plan_loop program profiler ~func ~(stmt : Ast.stmt) =
  match stmt with
  | For (loop, var, init, limit, body) -> (
    let fail reason = Error { rloop = loop; rfunc = func; reason } in
    let weight =
      match Profiler.loop_summary profiler loop with
      | Some s -> s.loop_cycles
      | None -> 0
    in
    if weight = 0 then fail "loop never executed during profiling"
    else if has_return body then fail "loop body may return from the function"
    else if has_direct_exit body then fail "loop body may break out of the loop"
    else begin
      let assigned = Ast_util.assigned_locals body in
      if SS.mem var assigned then fail "induction variable is assigned in the body"
      else if not (Ast_util.loop_invariant ~assigned limit) then
        fail "loop bound is not loop-invariant"
      else begin
        let assignment = Classify.classify program profiler ~loop ~body in
        if not (Objname.Set.is_empty assignment.unrestricted) then
          fail
            (Printf.sprintf "unremovable cross-iteration flow dependences on {%s}"
               (String.concat ", "
                  (List.map Objname.to_string
                     (Objname.Set.elements assignment.unrestricted))))
        else
          match Scalars.classify ~induction:var body with
          | Scalars.Rejected reason -> fail reason
          | Scalars.Classified scalars -> (
            (* Resolve each allocation site to a single heap. *)
            let site_heaps = Hashtbl.create 16 in
            let conflict = ref None in
            Objname.Set.iter
              (fun name ->
                match Classify.heap_of assignment name with
                | None -> ()
                | Some h -> (
                  let site = Objname.site_of name in
                  match Hashtbl.find_opt site_heaps site with
                  | None -> Hashtbl.replace site_heaps site h
                  | Some h' when Heap.equal_kind h h' -> ()
                  | Some h' ->
                    conflict :=
                      Some
                        (Printf.sprintf
                           "allocation site %s serves objects in both %s and %s heaps"
                           (Objname.site_to_string site) (Heap.name h') (Heap.name h))))
              (Classify.all_names assignment);
            match !conflict with
            | Some reason -> fail reason
            | None ->
              let site_heap =
                Hashtbl.fold (fun s h acc -> (s, h) :: acc) site_heaps []
              in
              let deferred_io = Hashtbl.length assignment.footprint.print_sites > 0 in
              Ok
                { func; loop; var; init; limit; body; assignment; scalars;
                  deferred_io; site_heap; weight })
      end
    end)
  | While (loop, _, _) ->
    Error { rloop = loop; rfunc = func; reason = "not a counted (For) loop" }
  | _ -> invalid_arg "Selection.plan_loop: not a loop"

(* Do two plans assign some allocation site to different heaps? *)
let site_conflict a b =
  List.exists
    (fun (s, h) ->
      match List.assoc_opt s b.site_heap with
      | Some h' -> not (Heap.equal_kind h h')
      | None -> false)
    a.site_heap

let select program profiler =
  let candidates =
    Ast.loops_of_program program
    |> List.filter_map (fun ((f : Ast.func), (_, stmt)) ->
           match stmt with
           | Ast.For _ -> Some (f.fname, stmt)
           | _ -> None)
  in
  let planned, rejections =
    List.fold_left
      (fun (oks, errs) (func, stmt) ->
        match plan_loop program profiler ~func ~stmt with
        | Ok p -> (p :: oks, errs)
        | Error e -> (oks, e :: errs))
      ([], []) candidates
  in
  (* Greedy selection by weight under the compatibility constraints:
     no nested parallelism, no conflicting site assignments. *)
  let by_weight = List.sort (fun a b -> compare b.weight a.weight) planned in
  let selected =
    List.fold_left
      (fun acc p ->
        let inner_of q = List.mem p.loop (active_within program q.body) in
        let outer_of q = List.mem q.loop (active_within program p.body) in
        let compatible q =
          (not (inner_of q)) && (not (outer_of q)) && not (site_conflict p q)
        in
        if List.for_all compatible acc then p :: acc else acc)
      [] by_weight
  in
  { plans = List.rev selected; rejections = List.rev rejections }

(* The merged site->heap map across all selected loops. *)
let merged_site_heap t =
  List.concat_map (fun p -> p.site_heap) t.plans
  |> List.sort_uniq compare

(* Extra transformations a plan relies on, for the paper's Table 3
   "Extras" column. *)
let extras p =
  List.filter_map
    (fun x -> x)
    [ (if p.assignment.predictions <> [] then Some "Value" else None);
      (if p.assignment.control_spec <> [] then Some "Control" else None);
      (if p.deferred_io then Some "I/O" else None) ]
