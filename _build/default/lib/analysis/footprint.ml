(* Algorithm 2 (getFootprint): the read, write, and reduction
   footprints of a region, as sets of profiled object names.

   The walk recurses into called functions and can prune branches that
   control speculation removed (the paper notes limited profile
   coverage is tolerable because unprofiled paths are speculated
   away). *)

open Privateer_ir
open Privateer_profile

type t = {
  reads : Objname.Set.t;
  writes : Objname.Set.t;
  redux : Objname.Set.t;
  redux_ops : Ast.binop Objname.Map.t; (* per-object reduction operator *)
  (* Sites observed in the region, partitioned by role; the transform
     builds its runtime check map from these. *)
  load_sites : (int, unit) Hashtbl.t;
  store_sites : (int, unit) Hashtbl.t;
  redux_load_sites : (int, unit) Hashtbl.t;
  redux_store_sites : (int, Ast.binop) Hashtbl.t;
  alloc_sites : (int, unit) Hashtbl.t; (* allocation sites in the region *)
  free_sites : (int, unit) Hashtbl.t;
  print_sites : (int, unit) Hashtbl.t;
}

let empty () =
  { reads = Objname.Set.empty; writes = Objname.Set.empty; redux = Objname.Set.empty;
    redux_ops = Objname.Map.empty; load_sites = Hashtbl.create 32;
    store_sites = Hashtbl.create 32; redux_load_sites = Hashtbl.create 8;
    redux_store_sites = Hashtbl.create 8; alloc_sites = Hashtbl.create 8;
    free_sites = Hashtbl.create 8; print_sites = Hashtbl.create 8 }

(* [prune id] = Some taken: control speculation keeps only that side
   of branch [id]. *)
let compute ?(prune = fun _ -> None) program profiler blk =
  let fp = ref (empty ()) in
  let reads = ref Objname.Set.empty in
  let writes = ref Objname.Set.empty in
  let redux = ref Objname.Set.empty in
  let redux_ops = ref Objname.Map.empty in
  let conflicted = ref Objname.Set.empty in
  let visited_funcs = ref Ast_util.String_set.empty in
  let note_redux_obj op name =
    redux := Objname.Set.add name !redux;
    match Objname.Map.find_opt name !redux_ops with
    | None -> redux_ops := Objname.Map.add name op !redux_ops
    | Some op' when op' = op -> ()
    | Some _ ->
      (* Two different operators update this object: not a valid
         reduction; demote to an ordinary read+write object. *)
      conflicted := Objname.Set.add name !conflicted
  in
  let rec walk_block blk =
    let pairs = Reduction.pairs_in_block blk in
    let redux_loads = Hashtbl.create 8 in
    let redux_stores = Hashtbl.create 8 in
    List.iter
      (fun (p : Reduction.pair) ->
        Hashtbl.replace redux_loads p.load_site p.op;
        Hashtbl.replace redux_stores p.store_site p.op)
      pairs;
    let rec walk_expr (e : Ast.expr) =
      match e with
      | Int _ | Float _ | Local _ | Global_addr _ -> ()
      | Load (id, _, addr) ->
        walk_expr addr;
        let objs = Profiler.objects_at_site profiler id in
        (match Hashtbl.find_opt redux_loads id with
        | Some op ->
          Hashtbl.replace !fp.redux_load_sites id ();
          Objname.Set.iter (note_redux_obj op) objs
        | None ->
          Hashtbl.replace !fp.load_sites id ();
          reads := Objname.Set.union !reads objs)
      | Unop (_, a) -> walk_expr a
      | Binop (_, a, b) | And (a, b) | Or (a, b) ->
        walk_expr a;
        walk_expr b
      | Call (_, fn, args) ->
        List.iter walk_expr args;
        if not (Validate.is_builtin fn) then walk_func fn
      | Alloc (id, _, _, size) ->
        walk_expr size;
        Hashtbl.replace !fp.alloc_sites id ()
    in
    let rec walk_stmt (s : Ast.stmt) =
      match s with
      | Assign (_, e) | Expr e | Return (Some e) | Assert_value (_, e, _) -> walk_expr e
      | Store (id, _, addr, value) ->
        walk_expr addr;
        walk_expr value;
        let objs = Profiler.objects_at_site profiler id in
        (match Hashtbl.find_opt redux_stores id with
        | Some op ->
          Hashtbl.replace !fp.redux_store_sites id op;
          Objname.Set.iter (note_redux_obj op) objs
        | None ->
          Hashtbl.replace !fp.store_sites id ();
          writes := Objname.Set.union !writes objs)
      | If (id, c, b1, b2) -> (
        walk_expr c;
        match prune id with
        | Some true -> List.iter walk_stmt b1
        | Some false -> List.iter walk_stmt b2
        | None ->
          List.iter walk_stmt b1;
          List.iter walk_stmt b2)
      | While (_, c, body) ->
        walk_expr c;
        List.iter walk_stmt body
      | For (_, _, init, limit, body) ->
        walk_expr init;
        walk_expr limit;
        List.iter walk_stmt body
      | Free (id, _, e) ->
        walk_expr e;
        Hashtbl.replace !fp.free_sites id ()
      | Print (id, _, args) ->
        List.iter walk_expr args;
        Hashtbl.replace !fp.print_sites id ()
      | Check_heap (_, e, _) -> walk_expr e
      | Return None | Break | Continue | Misspec _ -> ()
    in
    List.iter walk_stmt blk
  and walk_func name =
    if not (Ast_util.String_set.mem name !visited_funcs) then begin
      visited_funcs := Ast_util.String_set.add name !visited_funcs;
      match Ast.find_func program name with
      | Some f -> walk_block f.body
      | None -> ()
    end
  in
  walk_block blk;
  (* Demote conflicted reduction objects to plain read+write. *)
  Objname.Set.iter
    (fun name ->
      redux := Objname.Set.remove name !redux;
      redux_ops := Objname.Map.remove name !redux_ops;
      reads := Objname.Set.add name !reads;
      writes := Objname.Set.add name !writes)
    !conflicted;
  { !fp with reads = !reads; writes = !writes; redux = !redux; redux_ops = !redux_ops }
