(* Flow-insensitive, context-insensitive points-to analysis.

   This is the deliberately-weak static analysis of the paper's
   story: strong enough to prove separation for direct global/array
   accesses (so their checks can be elided, section 4.5) and to let
   the non-speculative DOALL-only baseline handle affine array loops,
   but defeated by pointer indirection through memory — exactly the
   layout-sensitivity that motivates speculative separation.

   Abstract objects: globals, allocation sites, and Top (unknown).
   Memory is modeled field-insensitively with one content set per
   abstract object. *)

open Privateer_ir

module Abs = struct
  type t = AGlobal of string | ASite of Ast.node_id | ATop

  let compare = compare

  let to_string = function
    | AGlobal g -> "&" ^ g
    | ASite s -> Printf.sprintf "alloc@%d" s
    | ATop -> "T"
end

module Abs_set = Set.Make (Abs)

type t = {
  program : Ast.program;
  (* Per-function local variable points-to sets ("fname.local"). *)
  locals : (string, Abs_set.t ref) Hashtbl.t;
  (* Field-insensitive heap contents per abstract object. *)
  contents : (Abs.t, Abs_set.t ref) Hashtbl.t;
  (* Return-value set per function. *)
  returns : (string, Abs_set.t ref) Hashtbl.t;
  mutable changed : bool;
}

let cell tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
    let c = ref Abs_set.empty in
    Hashtbl.replace tbl key c;
    c

let add_to t c s =
  if not (Abs_set.subset s !c) then begin
    c := Abs_set.union !c s;
    t.changed <- true
  end

let local_key fname v = fname ^ "." ^ v

(* Contents reachable through a pointer set; ATop taints everything.
   A store through an unknown pointer may have written any object, so
   every load also sees the ATop cell's contents. *)
let load_from t ptrs =
  if Abs_set.mem Abs.ATop ptrs then Abs_set.singleton Abs.ATop
  else
    Abs_set.fold
      (fun o acc -> Abs_set.union acc !(cell t.contents o))
      ptrs
      !(cell t.contents Abs.ATop)

let store_into t ptrs values =
  if Abs_set.is_empty values then ()
  else if Abs_set.mem Abs.ATop ptrs then
    (* Unknown target: every object's contents may now include values.
       We record it on the ATop cell and treat ATop's contents as part
       of every load (see [load_from] returning Top). *)
    add_to t (cell t.contents Abs.ATop) values
  else Abs_set.iter (fun o -> add_to t (cell t.contents o) values) ptrs

let rec eval t fname (e : Ast.expr) : Abs_set.t =
  match e with
  | Int _ | Float _ -> Abs_set.empty
  | Local v -> !(cell t.locals (local_key fname v))
  | Global_addr g -> Abs_set.singleton (AGlobal g)
  | Load (_, _, addr) -> load_from t (eval t fname addr)
  | Alloc (id, _, _, size) ->
    ignore (eval t fname size);
    Abs_set.singleton (ASite id)
  | Unop (_, a) -> eval t fname a
  | Binop (_, a, b) | And (a, b) | Or (a, b) ->
    (* Pointer arithmetic stays within the object in well-defined
       programs; union the operand sets. *)
    Abs_set.union (eval t fname a) (eval t fname b)
  | Call (_, callee, args) ->
    let arg_sets = List.map (eval t fname) args in
    if Validate.is_builtin callee then Abs_set.empty
    else begin
      (match Ast.find_func t.program callee with
      | Some f ->
        (try
           List.iter2
             (fun p s -> add_to t (cell t.locals (local_key callee p)) s)
             f.params arg_sets
         with Invalid_argument _ -> ())
      | None -> ());
      !(cell t.returns callee)
    end

let rec transfer_block t fname blk = List.iter (transfer_stmt t fname) blk

and transfer_stmt t fname (s : Ast.stmt) =
  match s with
  | Assign (x, e) -> add_to t (cell t.locals (local_key fname x)) (eval t fname e)
  | Store (_, _, addr, v) ->
    let ptrs = eval t fname addr in
    let values = eval t fname v in
    store_into t ptrs values
  | If (_, c, b1, b2) ->
    ignore (eval t fname c);
    transfer_block t fname b1;
    transfer_block t fname b2
  | While (_, c, body) ->
    ignore (eval t fname c);
    transfer_block t fname body
  | For (_, v, init, limit, body) ->
    add_to t (cell t.locals (local_key fname v)) (eval t fname init);
    ignore (eval t fname limit);
    transfer_block t fname body
  | Expr e | Free (_, _, e) | Assert_value (_, e, _) | Check_heap (_, e, _) ->
    ignore (eval t fname e)
  | Return (Some e) -> add_to t (cell t.returns fname) (eval t fname e)
  | Print (_, _, args) -> List.iter (fun e -> ignore (eval t fname e)) args
  | Return None | Break | Continue | Misspec _ -> ()

(* Iterate all functions to a fixpoint. *)
let analyze program =
  let t =
    { program; locals = Hashtbl.create 64; contents = Hashtbl.create 32;
      returns = Hashtbl.create 16; changed = true }
  in
  let rounds = ref 0 in
  while t.changed && !rounds < 100 do
    t.changed <- false;
    incr rounds;
    List.iter (fun (f : Ast.func) -> transfer_block t f.fname f.body) program.funcs
  done;
  t

(* Points-to set of an address expression evaluated in [fname];
   answers "which objects might this access touch". *)
let points_to t ~fname e =
  let s = eval t fname e in
  (* Re-running eval must not perturb the fixpoint. *)
  s

(* True when the analysis can bound the targets (no Top). *)
let is_precise s = (not (Abs_set.is_empty s)) && not (Abs_set.mem Abs.ATop s)
