(* Small syntactic helpers shared by the analyses. *)

open Privateer_ir

module String_set = Set.Make (String)

(* Structural expression equality ignoring node ids: two occurrences
   of the same source expression (e.g. the address of a reduction's
   load and store) have different ids but equal shape. *)
let rec equal_expr_mod_ids (a : Ast.expr) (b : Ast.expr) =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Local x, Local y -> x = y
  | Global_addr x, Global_addr y -> x = y
  | Load (_, sx, ex), Load (_, sy, ey) -> sx = sy && equal_expr_mod_ids ex ey
  | Unop (ox, ex), Unop (oy, ey) -> ox = oy && equal_expr_mod_ids ex ey
  | Binop (ox, ax, bx), Binop (oy, ay, by) ->
    ox = oy && equal_expr_mod_ids ax ay && equal_expr_mod_ids bx by
  | And (ax, bx), And (ay, by) | Or (ax, bx), Or (ay, by) ->
    equal_expr_mod_ids ax ay && equal_expr_mod_ids bx by
  | Call (_, fx, ax), Call (_, fy, ay) ->
    fx = fy && List.length ax = List.length ay && List.for_all2 equal_expr_mod_ids ax ay
  | Alloc (_, kx, hx, ex), Alloc (_, ky, hy, ey) ->
    kx = ky && hx = hy && equal_expr_mod_ids ex ey
  | ( ( Int _ | Float _ | Local _ | Global_addr _ | Load _ | Unop _ | Binop _ | And _
      | Or _ | Call _ | Alloc _ ),
      _ ) -> false

(* Locals assigned anywhere in a block, including For induction
   variables of nested loops. *)
let assigned_locals blk =
  let acc = ref String_set.empty in
  Ast.iter_stmts
    (fun stmt ->
      match stmt with
      | Assign (x, _) -> acc := String_set.add x !acc
      | For (_, v, _, _, _) -> acc := String_set.add v !acc
      | Store _ | If _ | While _ | Expr _ | Free _ | Return _ | Break | Continue
      | Print _ | Check_heap _ | Assert_value _ | Misspec _ -> ())
    blk;
  !acc

(* Locals read anywhere in a block (at any expression depth). *)
let read_locals blk =
  let acc = ref String_set.empty in
  Ast.iter_exprs
    (fun e -> match e with Local x -> acc := String_set.add x !acc | _ -> ())
    blk;
  !acc

(* Does the block contain a statement for which [pred] holds
   (recursively, not following calls)? *)
let exists_stmt pred blk =
  let found = ref false in
  Ast.iter_stmts (fun s -> if pred s then found := true) blk;
  !found

(* Direct callees of a block (function names, builtins excluded). *)
let callees blk =
  let acc = ref String_set.empty in
  Ast.iter_exprs
    (fun e ->
      match e with
      | Call (_, fn, _) when not (Validate.is_builtin fn) -> acc := String_set.add fn !acc
      | _ -> ())
    blk;
  !acc

(* Transitive closure of functions reachable from a block. *)
let reachable_funcs program blk =
  let visited = ref String_set.empty in
  let rec visit name =
    if not (String_set.mem name !visited) then begin
      visited := String_set.add name !visited;
      match Ast.find_func program name with
      | Some f -> String_set.iter visit (callees f.body)
      | None -> ()
    end
  in
  String_set.iter visit (callees blk);
  !visited

(* Is [e] invariant w.r.t. a loop whose body assigns [assigned]?
   Conservative: constants, and locals not assigned in the body.
   Loads and calls are never considered invariant. *)
let rec loop_invariant ~assigned (e : Ast.expr) =
  match e with
  | Int _ | Float _ | Global_addr _ -> true
  | Local x -> not (String_set.mem x assigned)
  | Unop (_, a) -> loop_invariant ~assigned a
  | Binop (_, a, b) | And (a, b) | Or (a, b) ->
    loop_invariant ~assigned a && loop_invariant ~assigned b
  | Load _ | Call _ | Alloc _ -> false
