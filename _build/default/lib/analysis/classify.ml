(* Algorithm 1 (classify): partition a loop's memory footprint into
   the five logical heaps, refined with control speculation and value
   prediction.

   ShortLived: objects allocated and freed within one iteration.
   Redux: objects updated only by one associative-commutative operator
     and not otherwise read or written (the Reduction Criterion).
   Unrestricted: objects carrying a cross-iteration flow dependence
     that speculation could not remove.
   Private: all other written objects (the Privatization Criterion is
     then validated at runtime).
   ReadOnly: all other read objects. *)

open Privateer_ir
open Privateer_interp
open Privateer_profile

type prediction = {
  pred_global : string; (* object holding the predicted location *)
  pred_offset : int; (* byte offset within it *)
  pred_value : int;
  pred_deps : (int * int) list; (* the flow deps this prediction removes *)
}

type assignment = {
  loop : Ast.node_id;
  footprint : Footprint.t;
  short_lived : Objname.Set.t;
  redux : Objname.Set.t;
  redux_ops : Ast.binop Objname.Map.t;
  unrestricted : Objname.Set.t;
  priv : Objname.Set.t;
  read_only : Objname.Set.t;
  predictions : prediction list;
  (* Branches inside the region pruned by control speculation:
     (branch id, the side kept). *)
  control_spec : (Ast.node_id * bool) list;
}

(* The heap an object was assigned to, if any. *)
let heap_of a name : Heap.kind option =
  if Objname.Set.mem name a.short_lived then Some Heap.Short_lived
  else if Objname.Set.mem name a.redux then Some Heap.Redux
  else if Objname.Set.mem name a.unrestricted then Some Heap.Unrestricted
  else if Objname.Set.mem name a.priv then Some Heap.Private
  else if Objname.Set.mem name a.read_only then Some Heap.Read_only
  else None

let all_names a =
  List.fold_left Objname.Set.union Objname.Set.empty
    [ a.short_lived; a.redux; a.unrestricted; a.priv; a.read_only ]

(* Does a block contain a memory-access site the training run never
   executed?  Such sites touch objects the profiler could not name, so
   speculating the path away is the only way to classify the region. *)
let has_unprofiled_access profiler blk =
  let found = ref false in
  Ast.iter_exprs
    (fun e ->
      match e with
      | Ast.Load (id, _, _) ->
        if Objname.Set.is_empty (Profiler.objects_at_site profiler id) then found := true
      | Ast.Alloc (id, _, _, _) ->
        if Objname.Set.is_empty (Profiler.alloc_names profiler id) then found := true
      | _ -> ())
    blk;
  Ast.iter_stmts
    (fun s ->
      match s with
      | Ast.Store (id, _, _, _) ->
        if Objname.Set.is_empty (Profiler.objects_at_site profiler id) then found := true
      | _ -> ())
    blk;
  !found

(* Branches within the region (body + reachable callees) that the
   training run observed as fully biased *and* whose cold side
   contains never-executed memory accesses.  The paper "interprets
   profiling results conservatively": speculation that buys nothing
   (a biased branch whose both sides are fully profiled) only adds
   misspeculation risk, so it is not applied. *)
let biased_branches program profiler blk =
  let acc = ref [] in
  let visit_block b =
    Ast.iter_stmts
      (fun s ->
        match s with
        | If (id, _, b_then, b_else) -> (
          match Profiler.branch_bias profiler id with
          | Some taken ->
            let cold = if taken then b_else else b_then in
            if has_unprofiled_access profiler cold then acc := (id, taken) :: !acc
          | None -> ())
        | _ -> ())
      b
  in
  visit_block blk;
  Ast_util.String_set.iter
    (fun name ->
      match Ast.find_func program name with
      | Some f -> visit_block f.body
      | None -> ())
    (Ast_util.reachable_funcs program blk);
  List.rev !acc

let classify program profiler ~(loop : Ast.node_id) ~(body : Ast.block) =
  let control_spec = biased_branches program profiler body in
  let prune id = List.assoc_opt id control_spec in
  let fp = Footprint.compute ~prune program profiler body in
  let accessed = Objname.Set.union fp.reads fp.writes in
  (* Short-lived objects. *)
  let short_lived =
    Objname.Set.filter (fun o -> Profiler.is_short_lived profiler o ~loop) accessed
  in
  (* Reduction objects: in the reduction footprint and not read or
     written by any non-reduction operation in the loop. *)
  let redux =
    Objname.Set.filter
      (fun o -> (not (Objname.Set.mem o fp.reads)) && not (Objname.Set.mem o fp.writes))
      fp.redux
  in
  let redux_ops = Objname.Map.filter (fun o _ -> Objname.Set.mem o redux) fp.redux_ops in
  (* Cross-iteration flow dependences, with value prediction removing
     those that always flow one constant through one address of a
     global object. *)
  let deps = Profiler.flow_deps profiler ~loop in
  let predictions = ref [] in
  let residual = ref [] in
  List.iter
    (fun (w, r, (info : Profiler.dep_info)) ->
      let candidate =
        match (info.dep_value, info.dep_addr) with
        | Const (Value.VInt c), `Addr a -> (
          match Profiler.object_at_addr profiler a with
          | Some (Objname.Global g, base) -> Some (g, a - base, c)
          | Some _ | None -> None)
        | _ -> None
      in
      match candidate with
      | Some (g, off, c) -> (
        match
          List.find_opt
            (fun p -> p.pred_global = g && p.pred_offset = off && p.pred_value = c)
            !predictions
        with
        | Some p ->
          predictions :=
            { p with pred_deps = (w, r) :: p.pred_deps }
            :: List.filter (fun q -> q != p) !predictions
        | None ->
          predictions :=
            { pred_global = g; pred_offset = off; pred_value = c; pred_deps = [ (w, r) ] }
            :: !predictions)
      | None -> residual := (w, r) :: !residual)
    deps;
  (* Unrestricted: objects of residual dependences, minus those whose
     dependences are explained by short-lived or reduction semantics. *)
  let unrestricted =
    List.fold_left
      (fun acc (w, r) ->
        let f =
          Objname.Set.inter
            (Profiler.objects_at_site profiler w)
            (Profiler.objects_at_site profiler r)
        in
        Objname.Set.union acc (Objname.Set.diff (Objname.Set.diff f short_lived) redux))
      Objname.Set.empty !residual
  in
  (* Accesses the profiler could not map to an object can never be
     separated: force them unrestricted. *)
  let unrestricted =
    if Objname.Set.mem Objname.Unknown accessed then
      Objname.Set.add Objname.Unknown unrestricted
    else unrestricted
  in
  let minus a b = Objname.Set.diff a b in
  let priv = minus (minus (minus fp.writes short_lived) unrestricted) redux in
  let read_only = minus (minus (minus (minus fp.reads short_lived) unrestricted) redux) priv in
  { loop; footprint = fp; short_lived; redux; redux_ops; unrestricted; priv; read_only;
    predictions = !predictions; control_spec }

let to_string a =
  let set_str label s =
    Printf.sprintf "%s: {%s}" label
      (String.concat ", " (List.map Objname.to_string (Objname.Set.elements s)))
  in
  String.concat "\n"
    [ Printf.sprintf "heap assignment for loop %d:" a.loop;
      set_str "  short-lived " a.short_lived; set_str "  redux       " a.redux;
      set_str "  unrestricted" a.unrestricted; set_str "  private     " a.priv;
      set_str "  read-only   " a.read_only;
      Printf.sprintf "  predictions : %d, control-spec branches: %d"
        (List.length a.predictions)
        (List.length a.control_spec) ]
