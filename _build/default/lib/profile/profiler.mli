(** The Privateer profilers (paper section 4.1), all driven by one set
    of interpreter hooks over the training run: pointer-to-object,
    object lifetime, cross-iteration memory flow dependence,
    value-prediction, branch-bias, and per-loop execution time. *)

type const_status = Const of Privateer_interp.Value.t | Varying

(** Per cross-iteration flow dependence: occurrence count, whether the
    flowing value was one constant, and whether it flowed through a
    single address — constant single-address dependences are
    value-prediction candidates. *)
type dep_info = {
  mutable dep_count : int;
  mutable dep_value : const_status;
  mutable dep_addr : [ `Addr of int | `Many ];
}

type t

val create : unit -> t

(** Register the program's globals and install the profiling hooks on
    an interpreter (call before [Interp.run_entry]). *)
val attach : t -> Privateer_interp.Interp.t -> unit

(** Convenience: create an interpreter, attach, run the program. *)
val profile_run : Privateer_ir.Ast.program -> t * Privateer_interp.Interp.t

(** {1 Post-run queries} *)

(** Objects a load/store site was observed to touch
    (the paper's [mapPointerToObjects]). *)
val objects_at_site : t -> int -> Objname.Set.t

(** Object names created by an allocation site (one per dynamic
    context). *)
val alloc_names : t -> int -> Objname.Set.t

(** Was every instance of this object allocated and freed within a
    single iteration of [loop]? *)
val is_short_lived : t -> Objname.t -> loop:int -> bool

(** Cross-iteration (loop-carried) flow dependences of [loop]:
    [(writer site, reader site, info)]. *)
val flow_deps : t -> loop:int -> (int * int * dep_info) list

(** The constant every observation of this load produced, if any. *)
val const_load_value : t -> int -> Privateer_interp.Value.t option

(** [Some true]: branch always taken; [Some false]: never taken;
    [None]: mixed or never executed. *)
val branch_bias : t -> int -> bool option

(** Raw (taken, not-taken) counts. *)
val branch_counts : t -> int -> int * int

type loop_summary = { loop_invocations : int; loop_trips : int; loop_cycles : int }

val loop_summary : t -> int -> loop_summary option

(** Every object name observed during the run. *)
val all_objects : t -> Objname.Set.t

(** Largest observed size of the named object. *)
val object_size : t -> Objname.t -> int option

(** The live object containing [addr] (post-run: globals and leaks),
    with its base address. *)
val object_at_addr : t -> int -> (Objname.t * int) option

(** Loops by total profiled cycles, heaviest first (the execution-time
    profiler's hot-loop ranking). *)
val loops_by_weight : t -> (int * int) list
