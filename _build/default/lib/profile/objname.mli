(** Static names for memory objects (paper section 4.1).

    Globals are named by source name; dynamic objects by their
    allocation site plus the enclosing dynamic context (call-site and
    loop node ids), so one static instruction allocating in different
    contexts yields distinguishable names. *)

type t =
  | Global of string
  | Site of Privateer_ir.Ast.node_id * int list
      (** allocation site, enclosing context (innermost first) *)
  | Unknown  (** an access the profiler could not map to any object *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string

(** The static allocation site behind a name; the paper's Table 3
    counts globals among the "static allocation sites". *)
type site = Global_site of string | Alloc_site of Privateer_ir.Ast.node_id | Unknown_site

val site_of : t -> site
val site_to_string : site -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
