(* Static names for memory objects (paper section 4.1).

   Globals are named by their source name.  Dynamic objects (malloc,
   stack slots) are named by their allocation site plus the *dynamic
   context* — the chain of call-site/loop node ids enclosing the
   allocation — so that one static instruction allocating in several
   contexts yields distinguishable names (the paper's dijkstra example
   names line-11 nodes differently when enqueueQ is called from line
   60 vs line 74). *)

open Privateer_ir

type t =
  | Global of string
  | Site of Ast.node_id * int list (* alloc site, enclosing context *)
  | Unknown (* an access the profiler could not map to any live object *)

let rank = function Global _ -> 0 | Site _ -> 1 | Unknown -> 2

let compare a b =
  match (a, b) with
  | Global x, Global y -> String.compare x y
  | Site (s1, c1), Site (s2, c2) ->
    let c = Int.compare s1 s2 in
    if c <> 0 then c else List.compare Int.compare c1 c2
  | Unknown, Unknown -> 0
  | (Global _ | Site _ | Unknown), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let to_string = function
  | Global g -> g
  | Site (site, []) -> Printf.sprintf "alloc@%d" site
  | Site (site, ctx) ->
    Printf.sprintf "alloc@%d[%s]" site (String.concat "," (List.map string_of_int ctx))
  | Unknown -> "<unknown>"

(* The static allocation site behind a name: globals are their own
   site (the paper's Table 3 counts globals among the "static
   allocation sites" assigned to each heap). *)
type site = Global_site of string | Alloc_site of Ast.node_id | Unknown_site

let site_of = function
  | Global g -> Global_site g
  | Site (s, _) -> Alloc_site s
  | Unknown -> Unknown_site

let site_to_string = function
  | Global_site g -> "global " ^ g
  | Alloc_site s -> Printf.sprintf "alloc@%d" s
  | Unknown_site -> "<unknown>"

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
