lib/profile/profiler.ml: Ast Hashtbl Hooks Interp Interval_map List Objname Privateer_interp Privateer_ir Privateer_support Value
