lib/profile/objname.mli: Map Privateer_ir Set
