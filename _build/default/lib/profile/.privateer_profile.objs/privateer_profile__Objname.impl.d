lib/profile/objname.ml: Ast Int List Map Printf Privateer_ir Set String
