lib/profile/profiler.mli: Objname Privateer_interp Privateer_ir
