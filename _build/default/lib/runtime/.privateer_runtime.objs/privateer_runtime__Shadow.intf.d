lib/runtime/shadow.mli: Misspec Privateer_machine
