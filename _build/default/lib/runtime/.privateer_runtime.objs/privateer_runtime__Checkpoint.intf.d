lib/runtime/checkpoint.mli: Hashtbl Misspec Privateer_interp Privateer_ir Privateer_machine Value
