lib/runtime/misspec.mli: Privateer_ir
