lib/runtime/shadow.ml: Heap List Machine Memory Misspec Privateer_ir Privateer_machine
