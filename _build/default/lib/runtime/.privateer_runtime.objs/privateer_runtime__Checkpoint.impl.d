lib/runtime/checkpoint.ml: Hashtbl Heap List Machine Memory Misspec Privateer_analysis Privateer_interp Privateer_ir Privateer_machine Shadow Value
