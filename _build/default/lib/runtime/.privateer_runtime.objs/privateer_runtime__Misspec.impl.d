lib/runtime/misspec.ml: Printf Privateer_ir
