lib/runtime/stats.mli:
