lib/runtime/deferred_io.ml: Buffer Hashtbl List
