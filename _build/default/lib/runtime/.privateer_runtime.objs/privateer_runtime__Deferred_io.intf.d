lib/runtime/deferred_io.mli:
