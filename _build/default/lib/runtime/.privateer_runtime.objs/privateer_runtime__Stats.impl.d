lib/runtime/stats.ml:
