(** Runtime statistics: the counters behind the paper's Table 3 and
    the Figure 8 overhead breakdown. *)

type t = {
  mutable invocations : int;
  mutable checkpoints : int;
  mutable private_bytes_read : int;
  mutable private_bytes_written : int;
  mutable separation_checks : int; (* dynamic, non-elided *)
  mutable separation_checks_elided : int; (* static count *)
  mutable misspeculations : int;
  mutable recovered_iterations : int;
  mutable iterations : int;
  (* Overhead cycle accounting (Figure 8 categories). *)
  mutable cyc_useful : int;
  mutable cyc_private_read : int;
  mutable cyc_private_write : int;
  mutable cyc_checkpoint : int;
  mutable cyc_spawn : int;
  mutable cyc_join : int;
  mutable cyc_recovery : int;
  mutable wall_cycles : int; (* sum over parallel invocations *)
  mutable workers : int;
}

val create : unit -> t

(** Parallel-region capacity: [workers * wall_cycles], the
    denominator of the paper's Figure 8 normalization. *)
val capacity : t -> int

type breakdown = {
  useful : float;
  private_read : float;
  private_write : float;
  checkpoint : float;
  spawn_join : float;
  other : float; (* residual: elided-check costs, rounding *)
}

(** Percentages of capacity; sums to ~100 for misspeculation-free
    runs. *)
val breakdown : t -> breakdown
