(* The shadow-heap metadata state machine (paper Table 2).

   Each byte of private data has one byte of metadata in the shadow
   heap, at the address obtained by OR-ing the private/shadow tag bit.
   Codes:

     0                live-in (initial state; shadow pages read as 0)
     1                old-write (written before the last checkpoint)
     2                read-live-in (read, believed live-in; confirmed
                      at the next checkpoint's phase-2 validation)
     3 + (i - i0)     timestamp: written at iteration i, where i0 is
                      the first iteration after the last checkpoint

   Checkpoints fire at least every [max_interval] iterations so
   timestamps cannot overflow one byte. *)

open Privateer_ir
open Privateer_machine

let live_in = 0
let old_write = 1
let read_live_in = 2
let first_timestamp = 3

(* 253 iterations: timestamps 3 .. 255. *)
let max_interval = 256 - first_timestamp

let timestamp ~iter ~interval_start = first_timestamp + (iter - interval_start)

let is_timestamp m = m >= first_timestamp

let iteration_of_timestamp ~interval_start m =
  if not (is_timestamp m) then invalid_arg "Shadow.iteration_of_timestamp";
  interval_start + m - first_timestamp

type op = Read | Write

type verdict = Keep | Update of int | Fail of (addr:int -> Misspec.reason)

(* The pure transition function; exhaustively unit-tested against the
   paper's table. [beta] is the current iteration's timestamp. *)
let transition op ~current ~beta : verdict =
  match op with
  | Read ->
    if current = live_in then Update read_live_in
    else if current = old_write then Fail (fun ~addr -> Misspec.Privacy_flow { addr })
    else if current = read_live_in then Keep
    else if current < beta then Fail (fun ~addr -> Misspec.Privacy_flow { addr })
    else Keep (* current = beta: intra-iteration flow *)
  | Write ->
    if current = live_in || current = old_write then Update beta
    else if current = read_live_in then
      Fail (fun ~addr -> Misspec.Privacy_conservative { addr })
    else Update beta (* overwrite of this interval's earlier/current write *)

(* Apply the transition to every metadata byte covering a private
   access.  Raises Misspec.Misspeculation on a violation. *)
let access machine op ~addr ~size ~beta =
  for b = addr to addr + size - 1 do
    let shadow_addr = Heap.shadow_of_private b in
    let current = Machine.read_byte machine shadow_addr in
    match transition op ~current ~beta with
    | Keep -> ()
    | Update m -> Machine.write_byte machine shadow_addr m
    | Fail mk -> raise (Misspec.Misspeculation (mk ~addr:b))
  done

(* Checkpoint-time metadata reset: all timestamps become old-write.
   Returns the number of shadow pages scanned (for cost accounting). *)
let reset_interval machine =
  let mem = machine.Machine.mem in
  let pages =
    List.filter
      (fun key ->
        Heap.equal_kind (Heap.heap_of_addr (key * Memory.page_size)) Heap.Shadow)
      (Memory.mapped_pages mem)
  in
  List.iter
    (fun key ->
      let base = key * Memory.page_size in
      for off = 0 to Memory.page_size - 1 do
        let m = Memory.read_byte mem (base + off) in
        if is_timestamp m then Memory.write_byte mem (base + off) old_write
      done)
    pages;
  List.length pages
