(** Deferred I/O: output from speculative iterations, buffered per
    iteration and committed in order when the covering checkpoint
    retires (paper section 5.2). *)

type t

val create : unit -> t

(** Buffer [text] as iteration [iter]'s output (appends). *)
val emit : t -> iter:int -> string -> unit

(** Commit iterations [\[lo, hi)] to [sink] in iteration order,
    removing them. *)
val commit_range : t -> lo:int -> hi:int -> sink:(string -> unit) -> unit

(** Discard buffered output for iterations [>= from] (squashed work). *)
val discard_from : t -> from:int -> unit

(** Iterations still buffered. *)
val pending : t -> int
