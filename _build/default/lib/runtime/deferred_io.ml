(* Deferred I/O: output issued inside the speculative region is
   buffered per iteration and committed in iteration order when the
   covering checkpoint becomes non-speculative (paper section 5.2:
   "side effects of stream output functions are issued through the
   checkpoint system"). *)

type t = { outputs : (int, Buffer.t) Hashtbl.t }

let create () = { outputs = Hashtbl.create 32 }

let emit t ~iter text =
  let buf =
    match Hashtbl.find_opt t.outputs iter with
    | Some b -> b
    | None ->
      let b = Buffer.create 64 in
      Hashtbl.replace t.outputs iter b;
      b
  in
  Buffer.add_string buf text

(* Commit the output of iterations [lo, hi) in order, removing them. *)
let commit_range t ~lo ~hi ~sink =
  for i = lo to hi - 1 do
    match Hashtbl.find_opt t.outputs i with
    | Some b ->
      sink (Buffer.contents b);
      Hashtbl.remove t.outputs i
    | None -> ()
  done

(* Discard buffered output for iterations >= [from] (squashed work). *)
let discard_from t ~from =
  let victims =
    Hashtbl.fold (fun i _ acc -> if i >= from then i :: acc else acc) t.outputs []
  in
  List.iter (Hashtbl.remove t.outputs) victims

let pending t = Hashtbl.length t.outputs
