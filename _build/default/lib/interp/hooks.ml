(* Instrumentation hooks fired by the interpreter.

   Profilers (during the training run) and the speculative runtime
   (during parallel execution) both observe execution through this one
   interface, mirroring how the paper's profilers and inserted
   validation calls intercept the same IR operations. *)

open Privateer_ir

type t = {
  (* [on_load] fires after the value is read; [on_store] fires before
     the value is written (so validators see pre-store memory). *)
  on_load : Ast.node_id -> addr:int -> size:int -> value:Value.t -> unit;
  on_store : Ast.node_id -> addr:int -> size:int -> value:Value.t -> unit;
  (* [ctx] is the dynamic context: node ids of enclosing call sites and
     loops, innermost first (paper section 4.1). *)
  on_alloc :
    Ast.node_id -> ctx:int list -> Ast.alloc_kind -> Heap.kind -> addr:int ->
    size:int -> unit;
  on_free : Ast.node_id -> addr:int -> size:int -> Heap.kind -> unit;
  on_loop_enter : Ast.node_id -> unit;
  on_loop_iter : Ast.node_id -> iter:int -> unit;
  on_loop_exit : Ast.node_id -> trips:int -> unit;
  (* Separation check outcome: [ok = false] is a misspeculation when
     running speculatively. *)
  on_check_heap : Ast.node_id -> addr:int -> Heap.kind -> ok:bool -> unit;
  (* Value-prediction check outcome, with the observed value. *)
  on_assert_value : Ast.node_id -> observed:Value.t -> expected:int -> ok:bool -> unit;
  on_branch : Ast.node_id -> taken:bool -> unit;
  (* A control-speculation marker was reached. *)
  on_misspec : Ast.node_id -> reason:string -> unit;
}

let default =
  { on_load = (fun _ ~addr:_ ~size:_ ~value:_ -> ());
    on_store = (fun _ ~addr:_ ~size:_ ~value:_ -> ());
    on_alloc = (fun _ ~ctx:_ _ _ ~addr:_ ~size:_ -> ());
    on_free = (fun _ ~addr:_ ~size:_ _ -> ());
    on_loop_enter = (fun _ -> ());
    on_loop_iter = (fun _ ~iter:_ -> ());
    on_loop_exit = (fun _ ~trips:_ -> ());
    on_check_heap = (fun _ ~addr:_ _ ~ok:_ -> ());
    on_assert_value = (fun _ ~observed:_ ~expected:_ ~ok:_ -> ());
    on_branch = (fun _ ~taken:_ -> ());
    on_misspec = (fun _ ~reason:_ -> ()) }

(* Compose two hook sets: [a] fires before [b] on every event. *)
let compose a b =
  { on_load =
      (fun id ~addr ~size ~value ->
        a.on_load id ~addr ~size ~value;
        b.on_load id ~addr ~size ~value);
    on_store =
      (fun id ~addr ~size ~value ->
        a.on_store id ~addr ~size ~value;
        b.on_store id ~addr ~size ~value);
    on_alloc =
      (fun id ~ctx kind heap ~addr ~size ->
        a.on_alloc id ~ctx kind heap ~addr ~size;
        b.on_alloc id ~ctx kind heap ~addr ~size);
    on_free =
      (fun id ~addr ~size heap -> a.on_free id ~addr ~size heap; b.on_free id ~addr ~size heap);
    on_loop_enter = (fun id -> a.on_loop_enter id; b.on_loop_enter id);
    on_loop_iter = (fun id ~iter -> a.on_loop_iter id ~iter; b.on_loop_iter id ~iter);
    on_loop_exit = (fun id ~trips -> a.on_loop_exit id ~trips; b.on_loop_exit id ~trips);
    on_check_heap =
      (fun id ~addr heap ~ok -> a.on_check_heap id ~addr heap ~ok; b.on_check_heap id ~addr heap ~ok);
    on_assert_value =
      (fun id ~observed ~expected ~ok ->
        a.on_assert_value id ~observed ~expected ~ok;
        b.on_assert_value id ~observed ~expected ~ok);
    on_branch = (fun id ~taken -> a.on_branch id ~taken; b.on_branch id ~taken);
    on_misspec = (fun id ~reason -> a.on_misspec id ~reason; b.on_misspec id ~reason) }
