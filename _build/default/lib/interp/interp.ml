(* The IR interpreter: a deterministic simulated machine.

   Runs a program against a Machine (paged memory + per-heap
   allocators), firing instrumentation hooks at every memory event and
   charging cycle costs from a cost table.  The DOALL executor
   intercepts a chosen For loop through [parallel_for]; everything
   else (profiling runs, sequential baselines, worker-iteration
   execution, sequential recovery) is this same evaluator. *)

open Privateer_ir
open Privateer_machine

exception Runtime_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type frame = {
  locals : (string, Value.t) Hashtbl.t;
  (* Stack slots to auto-free at function exit: (alloc site, address). *)
  mutable frame_allocs : (Ast.node_id * int) list;
}

let new_frame () = { locals = Hashtbl.create 16; frame_allocs = [] }

let copy_frame fr =
  { locals = Hashtbl.copy fr.locals; frame_allocs = fr.frame_allocs }

type t = {
  program : Ast.program;
  machine : Machine.t;
  globals : (string, int) Hashtbl.t; (* name -> base address *)
  cost : Cost.t;
  mutable hooks : Hooks.t;
  mutable cycles : int;
  mutable ctx : int list; (* enclosing call/loop node ids, innermost first *)
  mutable emit : string -> unit;
  output : Buffer.t;
  mutable steps : int;
  max_steps : int;
  (* Set by the DOALL executor: called on For loops; returns true when
     the loop was executed in parallel (skip sequential execution). *)
  mutable parallel_for : (t -> frame -> Ast.stmt -> bool) option;
}

(* Build an interpreter over a fresh machine, laying out the program's
   globals.  Global storage is allocated from each global's assigned
   heap during "an initializer which runs before main" (paper 4.4). *)
let create ?(cost = Cost.default) ?(max_steps = 4_000_000_000) ?machine program =
  let machine = match machine with Some m -> m | None -> Machine.create () in
  let st =
    { program; machine; globals = Hashtbl.create 16; cost; hooks = Hooks.default;
      cycles = 0; ctx = []; emit = (fun _ -> ()); output = Buffer.create 256;
      steps = 0; max_steps; parallel_for = None }
  in
  st.emit <- (fun s -> Buffer.add_string st.output s);
  List.iter
    (fun (g : Ast.global) ->
      let heap = Option.value g.gheap ~default:Heap.Default in
      let addr = Machine.alloc machine heap (max 8 g.gbytes) in
      Hashtbl.replace st.globals g.gname addr)
    program.globals;
  st

let global_addr st name =
  match Hashtbl.find_opt st.globals name with
  | Some a -> a
  | None -> error "unknown global %s" name

(* A worker-process view of [st]: copy-on-write machine snapshot, same
   program and global layout, independent cycle counter and output. *)
let fork st =
  let child =
    { program = st.program; machine = Machine.snapshot st.machine;
      globals = st.globals; cost = st.cost; hooks = Hooks.default; cycles = 0;
      ctx = st.ctx; emit = (fun _ -> ()); output = Buffer.create 64; steps = 0;
      max_steps = st.max_steps; parallel_for = None }
  in
  child.emit <- (fun s -> Buffer.add_string child.output s);
  child

let step st =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then error "step budget exhausted (infinite loop?)"

let charge st c = st.cycles <- st.cycles + c

exception Break_exc
exception Continue_exc
exception Return_exc of Value.t

let read_value st size addr =
  match (size : Ast.size) with
  | S1 -> Value.VInt (Machine.read_byte st.machine addr)
  | S8 ->
    let bits, is_float = Machine.read_word st.machine addr in
    Value.of_bits bits is_float

let write_value st size addr v =
  match (size : Ast.size) with
  | S1 -> Machine.write_byte st.machine addr (Value.as_int v)
  | S8 ->
    let bits, is_float = Value.to_bits v in
    Machine.write_word st.machine addr bits is_float

let eval_unop op v =
  let open Value in
  match (op : Ast.unop) with
  | Neg -> VInt (-as_int v)
  | Not -> of_bool (not (to_bool v))
  | Bnot -> VInt (lnot (as_int v))
  | Fneg -> VFloat (-.as_float v)
  | Ftoi -> VInt (int_of_float (as_float v))
  | Itof -> VFloat (as_float v)

let eval_binop op a b =
  let open Value in
  let i () = (as_int a, as_int b) in
  let f () = (as_float a, as_float b) in
  match (op : Ast.binop) with
  | Add -> let x, y = i () in VInt (x + y)
  | Sub -> let x, y = i () in VInt (x - y)
  | Mul -> let x, y = i () in VInt (x * y)
  | Div -> let x, y = i () in if y = 0 then error "division by zero" else VInt (x / y)
  | Rem -> let x, y = i () in if y = 0 then error "modulo by zero" else VInt (x mod y)
  | Band -> let x, y = i () in VInt (x land y)
  | Bor -> let x, y = i () in VInt (x lor y)
  | Bxor -> let x, y = i () in VInt (x lxor y)
  | Shl -> let x, y = i () in VInt (x lsl y)
  | Shr -> let x, y = i () in VInt (x lsr y)
  | Lt -> let x, y = i () in of_bool (x < y)
  | Le -> let x, y = i () in of_bool (x <= y)
  | Gt -> let x, y = i () in of_bool (x > y)
  | Ge -> let x, y = i () in of_bool (x >= y)
  | Eq -> of_bool (equal a b)
  | Ne -> of_bool (not (equal a b))
  | Fadd -> let x, y = f () in VFloat (x +. y)
  | Fsub -> let x, y = f () in VFloat (x -. y)
  | Fmul -> let x, y = f () in VFloat (x *. y)
  | Fdiv -> let x, y = f () in VFloat (x /. y)
  | Flt -> let x, y = f () in of_bool (x < y)
  | Fle -> let x, y = f () in of_bool (x <= y)
  | Fgt -> let x, y = f () in of_bool (x > y)
  | Fge -> let x, y = f () in of_bool (x >= y)
  | Feq -> let x, y = f () in of_bool (x = y)
  | Fne -> let x, y = f () in of_bool (x <> y)

let eval_builtin st name args =
  charge st st.cost.c_builtin;
  let open Value in
  let f1 f = match args with [ a ] -> VFloat (f (as_float a)) | _ -> error "%s: arity" name in
  let f2 f =
    match args with
    | [ a; b ] -> VFloat (f (as_float a) (as_float b))
    | _ -> error "%s: arity" name
  in
  let i2 f =
    match args with
    | [ a; b ] -> VInt (f (as_int a) (as_int b))
    | _ -> error "%s: arity" name
  in
  match name with
  | "sqrt" -> f1 sqrt
  | "exp" -> f1 exp
  | "log" -> f1 log
  | "sin" -> f1 sin
  | "cos" -> f1 cos
  | "fabs" -> f1 abs_float
  | "floor" -> f1 floor
  | "pow" -> f2 ( ** )
  | "fmin" -> f2 min
  | "fmax" -> f2 max
  | "min" -> i2 min
  | "max" -> i2 max
  | "abs" -> (match args with [ a ] -> VInt (abs (as_int a)) | _ -> error "abs: arity")
  | _ -> error "unknown builtin %s" name

(* printf-style rendering: %d, %f, %x, %%. *)
let render_format fmt args =
  let buf = Buffer.create (String.length fmt + 16) in
  let args = ref args in
  let next () =
    match !args with
    | [] -> error "print: not enough arguments for %S" fmt
    | a :: rest ->
      args := rest;
      a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    (if fmt.[!i] = '%' && !i + 1 < n then begin
       (match fmt.[!i + 1] with
       | 'd' -> Buffer.add_string buf (string_of_int (Value.as_int (next ())))
       | 'f' -> Buffer.add_string buf (Printf.sprintf "%.6f" (Value.as_float (next ())))
       | 'x' -> Buffer.add_string buf (Printf.sprintf "%x" (Value.as_int (next ())))
       | '%' -> Buffer.add_char buf '%'
       | c -> error "print: bad directive %%%c" c);
       i := !i + 2
     end
     else begin
       Buffer.add_char buf fmt.[!i];
       incr i
     end)
  done;
  if !args <> [] then error "print: too many arguments for %S" fmt;
  Buffer.contents buf

let rec eval st fr (e : Ast.expr) : Value.t =
  step st;
  match e with
  | Int n -> VInt n
  | Float f -> VFloat f
  | Local name -> (
    match Hashtbl.find_opt fr.locals name with
    | Some v -> v
    | None -> error "unbound local %s" name)
  | Global_addr g -> VInt (global_addr st g)
  | Load (id, size, ea) ->
    let addr = Value.as_int (eval st fr ea) in
    charge st st.cost.c_load;
    let v = read_value st size addr in
    st.hooks.on_load id ~addr ~size:(Ast.bytes_of_size size) ~value:v;
    v
  | Unop (op, a) ->
    let v = eval st fr a in
    charge st st.cost.c_arith;
    eval_unop op v
  | Binop (op, a, b) ->
    let va = eval st fr a in
    let vb = eval st fr b in
    charge st st.cost.c_arith;
    eval_binop op va vb
  | And (a, b) ->
    charge st st.cost.c_branch;
    if Value.to_bool (eval st fr a) then Value.of_bool (Value.to_bool (eval st fr b))
    else Value.VInt 0
  | Or (a, b) ->
    charge st st.cost.c_branch;
    if Value.to_bool (eval st fr a) then Value.VInt 1
    else Value.of_bool (Value.to_bool (eval st fr b))
  | Call (id, fname, arg_exprs) ->
    let args = List.map (eval st fr) arg_exprs in
    if Validate.is_builtin fname then eval_builtin st fname args
    else call_function st id fname args
  | Alloc (id, kind, heap, size_e) ->
    let size = Value.as_int (eval st fr size_e) in
    if size < 0 then error "negative allocation size %d" size;
    charge st st.cost.c_alloc;
    let heap =
      match (heap, kind) with
      | Some h, _ -> h
      | None, Ast.Malloc -> Heap.Default
      | None, Ast.Salloc -> Heap.Stack
    in
    let addr = Machine.alloc st.machine heap size in
    st.hooks.on_alloc id ~ctx:st.ctx kind heap ~addr ~size;
    (match kind with
    | Salloc -> fr.frame_allocs <- (id, addr) :: fr.frame_allocs
    | Malloc -> ());
    VInt addr

and call_function st id fname args =
  match Ast.find_func st.program fname with
  | None -> error "call to undefined function %s" fname
  | Some f ->
    if List.length f.params <> List.length args then
      error "%s: expected %d arguments, got %d" fname (List.length f.params)
        (List.length args);
    charge st st.cost.c_call;
    let fr = new_frame () in
    List.iter2 (fun p v -> Hashtbl.replace fr.locals p v) f.params args;
    let saved_ctx = st.ctx in
    st.ctx <- id :: st.ctx;
    let result =
      try
        exec_block st fr f.body;
        Value.VInt 0
      with Return_exc v -> v
    in
    (* Auto-free stack slots on every function exit (paper 4.4). *)
    List.iter
      (fun (alloc_id, addr) ->
        charge st st.cost.c_free;
        let heap, size = Machine.free st.machine addr in
        st.hooks.on_free alloc_id ~addr ~size heap)
      fr.frame_allocs;
    st.ctx <- saved_ctx;
    result

and exec_block st fr blk = List.iter (exec_stmt st fr) blk

and exec_stmt st fr (s : Ast.stmt) =
  step st;
  match s with
  | Assign (name, e) -> Hashtbl.replace fr.locals name (eval st fr e)
  | Store (id, size, ea, ev) ->
    let addr = Value.as_int (eval st fr ea) in
    let v = eval st fr ev in
    charge st st.cost.c_store;
    st.hooks.on_store id ~addr ~size:(Ast.bytes_of_size size) ~value:v;
    write_value st size addr v
  | If (id, c, b1, b2) ->
    charge st st.cost.c_branch;
    let taken = Value.to_bool (eval st fr c) in
    st.hooks.on_branch id ~taken;
    if taken then exec_block st fr b1 else exec_block st fr b2
  | While (id, cond, body) ->
    st.hooks.on_loop_enter id;
    let saved_ctx = st.ctx in
    st.ctx <- id :: st.ctx;
    let iter = ref 0 in
    (try
       let continue_loop = ref true in
       while !continue_loop do
         charge st st.cost.c_branch;
         if Value.to_bool (eval st fr cond) then begin
           st.hooks.on_loop_iter id ~iter:!iter;
           (try exec_block st fr body with Continue_exc -> ());
           incr iter
         end
         else continue_loop := false
       done
     with Break_exc -> ());
    st.ctx <- saved_ctx;
    st.hooks.on_loop_exit id ~trips:!iter
  | For (_, var, init_e, limit_e, _) as loop -> (
    match st.parallel_for with
    | Some handler when handler st fr loop -> ()
    | Some _ | None ->
      let id, body =
        match loop with
        | For (id, _, _, _, body) -> (id, body)
        | _ -> assert false
      in
      let init = Value.as_int (eval st fr init_e) in
      let limit = Value.as_int (eval st fr limit_e) in
      st.hooks.on_loop_enter id;
      let saved_ctx = st.ctx in
      st.ctx <- id :: st.ctx;
      Hashtbl.replace fr.locals var (Value.VInt init);
      let iter = ref 0 in
      (try
         let continue_loop = ref true in
         while !continue_loop do
           charge st st.cost.c_branch;
           let v = Value.as_int (Hashtbl.find fr.locals var) in
           if v < limit then begin
             st.hooks.on_loop_iter id ~iter:!iter;
             (try exec_block st fr body with Continue_exc -> ());
             incr iter;
             let v' = Value.as_int (Hashtbl.find fr.locals var) in
             Hashtbl.replace fr.locals var (Value.VInt (v' + 1))
           end
           else continue_loop := false
         done
       with Break_exc -> ());
      st.ctx <- saved_ctx;
      st.hooks.on_loop_exit id ~trips:!iter)
  | Expr e -> ignore (eval st fr e)
  | Free (id, _, pe) ->
    let addr = Value.as_int (eval st fr pe) in
    charge st st.cost.c_free;
    let heap, size = Machine.free st.machine addr in
    st.hooks.on_free id ~addr ~size heap
  | Return (Some e) -> raise (Return_exc (eval st fr e))
  | Return None -> raise (Return_exc (Value.VInt 0))
  | Break -> raise Break_exc
  | Continue -> raise Continue_exc
  | Print (_, fmt, arg_exprs) ->
    let args = List.map (eval st fr) arg_exprs in
    charge st st.cost.c_print;
    st.emit (render_format fmt args)
  | Check_heap (id, pe, heap) ->
    let addr = Value.as_int (eval st fr pe) in
    charge st st.cost.c_check_heap;
    st.hooks.on_check_heap id ~addr heap ~ok:(Heap.check addr heap)
  | Assert_value (id, e, expected) ->
    let v = eval st fr e in
    charge st st.cost.c_assert_value;
    st.hooks.on_assert_value id ~observed:v ~expected
      ~ok:(Value.equal v (Value.VInt expected))
  | Misspec (id, reason) -> st.hooks.on_misspec id ~reason

(* Run the program's entry function.  Returns the entry's return value. *)
let run_entry st =
  match Ast.find_func st.program st.program.entry with
  | None -> error "entry function %s not found" st.program.entry
  | Some _ ->
    let id = 0 (* synthetic call-site id for the entry invocation *) in
    call_function st id st.program.entry []

let output st = Buffer.contents st.output

(* One-shot convenience: build, run, return (state, result). *)
let run ?cost ?max_steps program =
  let st = create ?cost ?max_steps program in
  let result = run_entry st in
  (st, result)
