lib/interp/value.mli:
