lib/interp/hooks.ml: Ast Heap Privateer_ir Value
