lib/interp/interp.ml: Ast Buffer Cost Hashtbl Heap Hooks List Machine Option Printf Privateer_ir Privateer_machine String Validate Value
