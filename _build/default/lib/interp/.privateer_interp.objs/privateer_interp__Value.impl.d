lib/interp/value.ml: Float Int64 Printf
