lib/interp/cost.ml:
