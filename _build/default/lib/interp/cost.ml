(* Cycle-cost table for the simulated machine.

   The paper measures wall-clock time on a 24-core Xeon; we replace
   the hardware with a deterministic cost model.  Only *relative*
   costs matter for reproducing the evaluation's shape; the defaults
   are loosely calibrated to a superscalar core (arithmetic ~1 cycle,
   cache-hit loads ~4, allocation tens of cycles) and to the paper's
   observation that validation is a few instructions per access.

   Runtime-system costs (metadata updates, checkpointing, fork/join)
   live in Privateer_parallel.Cost_model; this table covers only the
   application instructions the interpreter executes. *)

type t = {
  c_arith : int;
  c_load : int;
  c_store : int;
  c_branch : int;
  c_call : int; (* call/return overhead per user-function call *)
  c_builtin : int; (* transcendental intrinsics (sqrt, exp, ...) *)
  c_alloc : int;
  c_free : int;
  c_print : int;
  c_check_heap : int; (* separation check: bit arithmetic, paper 5.1 *)
  c_assert_value : int; (* value-prediction check *)
}

let default =
  { c_arith = 1; c_load = 4; c_store = 4; c_branch = 1; c_call = 10;
    c_builtin = 20; c_alloc = 40; c_free = 20; c_print = 60; c_check_heap = 2;
    c_assert_value = 2 }

(* A free cost table: used when profiling, where simulated time must
   not be perturbed by instrumentation (costs are still charged for
   application instructions, just with the same table). *)
let zero =
  { c_arith = 0; c_load = 0; c_store = 0; c_branch = 0; c_call = 0; c_builtin = 0;
    c_alloc = 0; c_free = 0; c_print = 0; c_check_heap = 0; c_assert_value = 0 }
