(** Runtime values: 63-bit integers (doubling as pointers) and floats,
    with the word encoding used by the simulated memory. *)

type t = VInt of int | VFloat of float

val int : int -> t
val float : float -> t

(** C-style truthiness: zero (of either kind) is false. *)
val to_bool : t -> bool

val of_bool : bool -> t

exception Type_error of string

(** @raise Type_error on floats. *)
val as_int : t -> int

(** Integers coerce to floats. *)
val as_float : t -> float

(** [(bits, is_float)] word image for memory. *)
val to_bits : t -> int64 * bool

val of_bits : int64 -> bool -> t

(** Structural equality; NaN equals NaN (determinism over IEEE). *)
val equal : t -> t -> bool

val to_string : t -> string
