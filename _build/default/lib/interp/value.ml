(* Runtime values: 63-bit integers (doubling as pointers) and floats.

   Memory stores raw 8-byte words plus a float tag (see
   Privateer_machine.Memory); this module is the encode/decode layer. *)

type t = VInt of int | VFloat of float

let int n = VInt n
let float f = VFloat f

let to_bool = function VInt 0 -> false | VInt _ -> true | VFloat f -> f <> 0.0

let of_bool b = VInt (if b then 1 else 0)

exception Type_error of string

let as_int = function
  | VInt n -> n
  | VFloat f -> raise (Type_error (Printf.sprintf "expected int, got float %g" f))

let as_float = function VFloat f -> f | VInt n -> float_of_int n

(* Word encoding for memory. *)
let to_bits = function
  | VInt n -> (Int64.of_int n, false)
  | VFloat f -> (Int64.bits_of_float f, true)

let of_bits bits is_float =
  if is_float then VFloat (Int64.float_of_bits bits) else VInt (Int64.to_int bits)

let equal a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VFloat x, VFloat y -> x = y || (Float.is_nan x && Float.is_nan y)
  | VInt _, VFloat _ | VFloat _, VInt _ -> false

let to_string = function
  | VInt n -> string_of_int n
  | VFloat f -> Printf.sprintf "%g" f
