(** Map from disjoint half-open integer intervals [\[lo, hi)] to values.

    The pointer-to-object profiler's core structure: address ranges of
    live memory objects map to their names, interior addresses resolve
    in logarithmic time, and inserting a range evicts anything it
    overlaps (recycled storage names a new object). *)

type 'a t

(** Fresh empty map. *)
val create : unit -> 'a t

val is_empty : 'a t -> bool

(** Number of intervals. *)
val cardinal : 'a t -> int

(** [find_opt m addr] is the interval [(lo, hi, v)] containing [addr],
    if any ([lo <= addr < hi]). *)
val find_opt : 'a t -> int -> (int * int * 'a) option

(** Is [addr] inside any interval? *)
val mem : 'a t -> int -> bool

(** All intervals intersecting [\[lo, hi)], in address order. *)
val overlapping : 'a t -> int -> int -> (int * int * 'a) list

(** Remove every interval intersecting [\[lo, hi)]; returns the
    removed intervals. *)
val remove_range : 'a t -> int -> int -> (int * int * 'a) list

(** [insert m lo hi v] maps [\[lo, hi)] to [v], evicting any
    previously-inserted interval it overlaps.
    @raise Invalid_argument if [lo >= hi]. *)
val insert : 'a t -> int -> int -> 'a -> unit

(** Remove the interval starting exactly at [lo], returning its
    [(hi, value)]. *)
val remove_start : 'a t -> int -> (int * 'a) option

(** Iterate in address order: [f lo hi v]. *)
val iter : 'a t -> (int -> int -> 'a -> unit) -> unit

val fold : 'a t -> 'b -> ('b -> int -> int -> 'a -> 'b) -> 'b

(** Intervals in address order. *)
val to_list : 'a t -> (int * int * 'a) list

(** Internal invariant check (disjoint, ordered, non-empty intervals);
    used by the property tests. *)
val well_formed : 'a t -> bool
