(* Map from disjoint half-open integer intervals [lo, hi) to values.

   This is the profiler's core data structure: the pointer-to-object
   profiler maintains an interval map from address ranges to the name of
   the memory object occupying that range (paper section 4.1).  Lookups
   must be fast for arbitrary interior addresses, and insertions must be
   able to evict any previously-registered intervals they overlap (a
   freed object's range can be recycled by a later allocation). *)

module Int_map = Map.Make (Int)

type 'a t = { mutable by_lo : (int * 'a) Int_map.t }
(* [by_lo] maps interval start -> (end, value); intervals are disjoint. *)

let create () = { by_lo = Int_map.empty }

let is_empty t = Int_map.is_empty t.by_lo

let cardinal t = Int_map.cardinal t.by_lo

(* The interval containing [addr], if any: the candidate is the interval
   with the greatest start <= addr. *)
let find_opt t addr =
  match Int_map.find_last_opt (fun lo -> lo <= addr) t.by_lo with
  | Some (lo, (hi, v)) when addr < hi -> Some (lo, hi, v)
  | Some _ | None -> None

let mem t addr = Option.is_some (find_opt t addr)

(* All intervals intersecting [lo, hi). *)
let overlapping t lo hi =
  if lo >= hi then []
  else begin
    (* Start from the interval containing lo (if any), then walk right. *)
    let start =
      match Int_map.find_last_opt (fun l -> l <= lo) t.by_lo with
      | Some (l, (h, _)) when lo < h -> l
      | Some _ | None -> lo
    in
    let rec walk acc key =
      match Int_map.find_first_opt (fun l -> l >= key) t.by_lo with
      | Some (l, (h, v)) when l < hi -> walk ((l, h, v) :: acc) (l + 1)
      | Some _ | None -> List.rev acc
    in
    walk [] start
  end

(* Remove every interval intersecting [lo, hi). Returns removed intervals. *)
let remove_range t lo hi =
  let victims = overlapping t lo hi in
  List.iter (fun (l, _, _) -> t.by_lo <- Int_map.remove l t.by_lo) victims;
  victims

(* Insert [lo, hi) -> v, evicting anything it overlaps. *)
let insert t lo hi v =
  if lo >= hi then invalid_arg "Interval_map.insert: empty interval";
  ignore (remove_range t lo hi);
  t.by_lo <- Int_map.add lo (hi, v) t.by_lo

(* Remove the interval that starts exactly at [lo], if present. *)
let remove_start t lo =
  match Int_map.find_opt lo t.by_lo with
  | None -> None
  | Some (hi, v) ->
    t.by_lo <- Int_map.remove lo t.by_lo;
    Some (hi, v)

let iter t f = Int_map.iter (fun lo (hi, v) -> f lo hi v) t.by_lo

let fold t init f =
  Int_map.fold (fun lo (hi, v) acc -> f acc lo hi v) t.by_lo init

let to_list t = fold t [] (fun acc lo hi v -> (lo, hi, v) :: acc) |> List.rev

(* Internal invariant check, used by property tests. *)
let well_formed t =
  let ok = ref true in
  let prev_hi = ref min_int in
  iter t (fun lo hi _ ->
      if lo >= hi || lo < !prev_hi then ok := false;
      prev_hi := hi);
  !ok
