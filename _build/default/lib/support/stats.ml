(* Small numeric helpers for the evaluation harness. *)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Geometric mean; the paper's headline number (11.4x) is a geomean of
   whole-program speedups. *)
let geomean = function
  | [] -> nan
  | xs ->
    let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (logsum /. float_of_int (List.length xs))

let percent part whole = if whole = 0.0 then 0.0 else 100.0 *. part /. whole

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let round_to digits x =
  let f = 10.0 ** float_of_int digits in
  Float.round (x *. f) /. f

(* Sum of an int list / float list without Fun.flip noise at call sites. *)
let sum_int = List.fold_left ( + ) 0
let sum_float = List.fold_left ( +. ) 0.0
