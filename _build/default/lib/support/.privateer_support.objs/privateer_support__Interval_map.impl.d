lib/support/interval_map.ml: Int List Map Option
