lib/support/interval_map.mli:
