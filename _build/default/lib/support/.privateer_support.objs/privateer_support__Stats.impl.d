lib/support/stats.ml: Float List
