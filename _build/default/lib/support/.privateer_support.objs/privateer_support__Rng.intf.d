lib/support/rng.mli:
