lib/support/table.mli:
