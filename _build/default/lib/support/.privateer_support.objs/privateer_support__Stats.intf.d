lib/support/stats.mli:
