(** Deterministic splittable RNG (splitmix64).

    The only randomness source in the repository, so that every
    experiment regenerates byte-identically. *)

type t

(** RNG seeded with the given integer. *)
val create : int -> t

(** Independent copy continuing the same stream. *)
val copy : t -> t

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** Uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** Uniform float in [\[lo, hi)]. *)
val float_range : t -> float -> float -> float

val bool : t -> bool

(** Split off an independent stream (advances [t]). *)
val split : t -> t
