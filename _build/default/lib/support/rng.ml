(* Deterministic splittable RNG (splitmix64 core).

   Everything in the reproduction must be deterministic so that the
   figures regenerate byte-identically; this module is the only source
   of randomness for input generators and misspeculation injection. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

(* Uniform float in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(* Uniform float in [lo, hi). *)
let float_range t lo hi = lo +. ((hi -. lo) *. float t)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Split off an independent stream; used to decorrelate sub-generators. *)
let split t =
  let seed = Int64.to_int (next_int64 t) land max_int in
  create seed
