(** Fixed-width ASCII table rendering for the evaluation harness. *)

type align = Left | Right

type t

(** [create ?aligns headers] starts a table; [aligns] defaults to all
    [Left] and must match [headers] in length. *)
val create : ?aligns:align list -> string list -> t

(** Append a row.
    @raise Invalid_argument on arity mismatch. *)
val add_row : t -> string list -> unit

(** Render with a separator line under the headers; all columns padded
    to their widest cell. *)
val render : t -> string

val print : t -> unit

(** ["2.50x"]-style speedup formatting. *)
val fx : ?digits:int -> float -> string

(** ["12.3%"]-style percentage formatting. *)
val fpct : ?digits:int -> float -> string

(** Human byte counts: ["4.0 KB"], ["2.0 GB"], ... *)
val fbytes : int -> string
