(* Fixed-width ASCII table rendering for the evaluation harness.

   The bench harness prints the paper's tables and figure series as
   aligned text; this module centralizes the layout so every experiment
   output looks the same. *)

type align = Left | Right

type t = {
  headers : string list;
  mutable rows : string list list; (* reverse order *)
  aligns : align list;
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
      if List.length a <> List.length headers then
        invalid_arg "Table.create: aligns/headers length mismatch";
      a
    | None -> List.map (fun _ -> Left) headers
  in
  { headers; rows = []; aligns }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let render_row row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth t.aligns i) widths.(i) cell)
        row
    in
    String.concat "  " cells
  in
  let sep =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  String.concat "\n" (render_row t.headers :: sep :: List.map render_row rows)

let print t = print_endline (render t)

(* Formatting helpers shared by the harness. *)
let fx ?(digits = 2) v = Printf.sprintf "%.*fx" digits v
let fpct ?(digits = 1) v = Printf.sprintf "%.*f%%" digits v
let fbytes b =
  let fb = float_of_int b in
  if b >= 1 lsl 30 then Printf.sprintf "%.1f GB" (fb /. 1073741824.0)
  else if b >= 1 lsl 20 then Printf.sprintf "%.1f MB" (fb /. 1048576.0)
  else if b >= 1 lsl 10 then Printf.sprintf "%.1f KB" (fb /. 1024.0)
  else Printf.sprintf "%d B" b
