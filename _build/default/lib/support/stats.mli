(** Numeric helpers for the evaluation harness. *)

(** Arithmetic mean; [nan] on the empty list. *)
val mean : float list -> float

(** Geometric mean (the paper's headline aggregation); [nan] on the
    empty list. *)
val geomean : float list -> float

(** [percent part whole] is [100 * part / whole] (0 if [whole] is 0). *)
val percent : float -> float -> float

val clamp : float -> float -> float -> float

(** Round to the given number of decimal digits. *)
val round_to : int -> float -> float

val sum_int : int list -> int
val sum_float : float list -> float
