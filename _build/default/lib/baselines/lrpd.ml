(* The LRPD test (Rauchwerger & Padua, PLDI'95), the paper's closest
   speculative ancestor and Table 1 comparison point.

   LRPD speculatively parallelizes loops *over statically-named
   arrays*: it allocates shadow arrays matching each source array and
   marks reads/writes per element, then validates the privatization
   criterion (no element read-before-write in one iteration is
   written in a different iteration).  Its applicability hinges on the
   memory-layout problem Privateer removes: every access must be
   provably within a named array.  Pointers, dynamic allocation and
   linked structures make it inapplicable — which is exactly what it
   reports on all five evaluation programs. *)

open Privateer_ir
open Privateer_interp
open Privateer_analysis

type applicability =
  | Applicable
  | Inapplicable of string (* why the memory layout defeats LRPD *)

(* Every access must target a statically-named global array. *)
let applicable program pta ~func ~iv body : applicability =
  let acc = Doall_only.region_accesses program ~func body in
  if acc.has_alloc then Inapplicable "dynamic allocation in region"
  else begin
    let named_array (_, fname, addr) =
      let pts = Static_pta.points_to pta ~fname addr in
      Static_pta.is_precise pts
      && Static_pta.Abs_set.for_all
           (fun a -> match a with Static_pta.Abs.AGlobal _ -> true | _ -> false)
           pts
    in
    match
      List.find_opt (fun a -> not (named_array a)) (acc.loads @ acc.stores)
    with
    | Some (site, fname, _) ->
      Inapplicable
        (Printf.sprintf
           "access at site %d (%s) is not provably within a named array" site fname)
    | None -> (
      match Scalars.classify ~induction:iv body with
      | Scalars.Rejected r -> Inapplicable ("scalars: " ^ r)
      | Scalars.Classified _ -> Applicable)
  end

(* ---- the shadow-array test ------------------------------------------- *)

type mark = {
  mutable write_iters : int list; (* distinct iterations writing (capped) *)
  mutable read_first_iters : int list; (* iterations reading before writing *)
  mutable cur_iter : int;
  mutable wrote_this_iter : bool;
}

type test_result = {
  passed : bool;
  failure : string option;
  marked_words : int;
}

(* Run the loop sequentially with shadow marking; validate the
   privatization criterion afterwards (the "D" phase of LRPD run
   before committing, here folded into one pass since our harness only
   needs the verdict and the marking cost). *)
let run_test program ~setup ~loop =
  let st = Interp.create program in
  let shadow : (int, mark) Hashtbl.t = Hashtbl.create 1024 in
  let current_iter = ref (-1) in
  let in_loop = ref false in
  let mark_of addr =
    let word = addr land lnot 7 in
    match Hashtbl.find_opt shadow word with
    | Some m -> m
    | None ->
      let m =
        { write_iters = []; read_first_iters = []; cur_iter = -1;
          wrote_this_iter = false }
      in
      Hashtbl.replace shadow word m;
      m
  in
  let enter_iter m =
    if m.cur_iter <> !current_iter then begin
      m.cur_iter <- !current_iter;
      m.wrote_this_iter <- false
    end
  in
  st.hooks <-
    { Hooks.default with
      on_loop_iter =
        (fun id ~iter -> if id = loop then current_iter := iter);
      on_loop_enter = (fun id -> if id = loop then in_loop := true);
      on_loop_exit = (fun id ~trips:_ -> if id = loop then in_loop := false);
      on_load =
        (fun _ ~addr ~size:_ ~value:_ ->
          if !in_loop then begin
            let m = mark_of addr in
            enter_iter m;
            if (not m.wrote_this_iter)
               && not (List.mem !current_iter m.read_first_iters)
            then m.read_first_iters <- !current_iter :: m.read_first_iters
          end);
      on_store =
        (fun _ ~addr ~size:_ ~value:_ ->
          if !in_loop then begin
            let m = mark_of addr in
            enter_iter m;
            m.wrote_this_iter <- true;
            if not (List.mem !current_iter m.write_iters) then
              m.write_iters <- !current_iter :: m.write_iters
          end) };
  setup st;
  ignore (Interp.run_entry st);
  (* Privatization criterion per element: a read-before-write in
     iteration j must not coexist with a write in iteration i <> j. *)
  let failure = ref None in
  Hashtbl.iter
    (fun word m ->
      if !failure = None then
        List.iter
          (fun j ->
            if List.exists (fun i -> i <> j) m.write_iters then
              failure :=
                Some
                  (Printf.sprintf
                     "element %#x read live-in in iteration %d but written in another"
                     word j))
          m.read_first_iters)
    shadow;
  { passed = !failure = None; failure = !failure; marked_words = Hashtbl.length shadow }

(* ---- the R-LRPD extension --------------------------------------------- *)

(* R-LRPD (Dang, Yu & Rauchwerger, IPDPS'02) handles *partially
   parallel* loops: when the test fails, all iterations before the
   earliest violation are correct and are committed; the test restarts
   on the remainder.  The paper's Table 1 groups it with LRPD (same
   array-only memory-layout limitation).

   Here: a staged run of the shadow test restricted to iteration
   windows; each stage commits the maximal violation-free prefix. *)

type stage = { stage_lo : int; stage_hi : int (* committed range [lo, hi) *) }

type r_lrpd_result = {
  stages : stage list;
  fully_parallel : bool; (* one stage = plain LRPD success *)
  iterations : int;
}

(* Earliest privacy-violating iteration in [lo, hi), if any: an
   element read-before-write in iteration j after a write in an
   earlier in-window iteration i < j. *)
let earliest_violation program ~setup ~loop ~lo =
  let st = Interp.create program in
  let shadow : (int, mark) Hashtbl.t = Hashtbl.create 1024 in
  let current_iter = ref (-1) in
  let in_loop = ref false in
  let total = ref 0 in
  let violation = ref None in
  let note_violation j =
    match !violation with
    | Some j' when j' <= j -> ()
    | Some _ | None -> violation := Some j
  in
  let in_window () = !in_loop && !current_iter >= lo in
  let mark_of addr =
    let word = addr land lnot 7 in
    match Hashtbl.find_opt shadow word with
    | Some m -> m
    | None ->
      let m =
        { write_iters = []; read_first_iters = []; cur_iter = -1;
          wrote_this_iter = false }
      in
      Hashtbl.replace shadow word m;
      m
  in
  let enter m =
    if m.cur_iter <> !current_iter then begin
      m.cur_iter <- !current_iter;
      m.wrote_this_iter <- false
    end
  in
  st.hooks <-
    { Hooks.default with
      on_loop_iter = (fun id ~iter -> if id = loop then current_iter := iter);
      on_loop_enter = (fun id -> if id = loop then in_loop := true);
      on_loop_exit =
        (fun id ~trips -> if id = loop then begin in_loop := false; total := trips end);
      on_load =
        (fun _ ~addr ~size:_ ~value:_ ->
          if in_window () then begin
            let m = mark_of addr in
            enter m;
            if not m.wrote_this_iter then begin
              (* Read-before-write this iteration: a violation iff an
                 earlier in-window iteration wrote this element. *)
              if List.exists (fun i -> i < !current_iter) m.write_iters then
                note_violation !current_iter;
              if not (List.mem !current_iter m.read_first_iters) then
                m.read_first_iters <- !current_iter :: m.read_first_iters
            end
          end);
      on_store =
        (fun _ ~addr ~size:_ ~value:_ ->
          if in_window () then begin
            let m = mark_of addr in
            enter m;
            m.wrote_this_iter <- true;
            if not (List.mem !current_iter m.write_iters) then
              m.write_iters <- !current_iter :: m.write_iters
          end) };
  setup st;
  ignore (Interp.run_entry st);
  (!violation, !total)

let run_r_lrpd program ~setup ~loop =
  let rec stage lo acc total =
    match earliest_violation program ~setup ~loop ~lo with
    | None, trips ->
      let total = max total trips in
      ({ stage_lo = lo; stage_hi = total } :: acc, total)
    | Some f, trips ->
      let total = max total trips in
      if f <= lo then
        (* The very first window iteration violates: commit it alone
           sequentially and restart after it. *)
        stage (lo + 1) ({ stage_lo = lo; stage_hi = lo + 1 } :: acc) total
      else stage f ({ stage_lo = lo; stage_hi = f } :: acc) total
  in
  let stages, total = stage 0 [] 0 in
  let stages = List.rev stages in
  { stages; fully_parallel = List.length stages = 1; iterations = total }

(* Applicability verdict for a whole program's hottest For loops. *)
let survey program profiler =
  let pta = Static_pta.analyze program in
  Ast.loops_of_program program
  |> List.filter_map (fun ((f : Ast.func), (_, stmt)) ->
         match stmt with
         | Ast.For (loop, var, _, _, body) ->
           let weight =
             match Privateer_profile.Profiler.loop_summary profiler loop with
             | Some s -> s.loop_cycles
             | None -> 0
           in
           Some (loop, f.fname, weight, applicable program pta ~func:f.fname ~iv:var body)
         | _ -> None)
  |> List.sort (fun (_, _, a, _) (_, _, b, _) -> compare b a)
