(* Paper Table 1: comparison of Privateer with prior privatization and
   reduction schemes.  The static rows transcribe the paper's
   qualitative matrix; [probe] adds a dynamic row per workload showing
   what the three systems implemented in this repository actually do
   on our suite (Privateer plans the hot loop; LRPD is defeated by
   memory layout; DOALL-only parallelizes only provable loops). *)

type support = Yes | No | Partial | NotApplicable

let support_str = function
  | Yes -> "yes"
  | No -> "x"
  | Partial -> "partial"
  | NotApplicable -> "-"

type row = {
  technique : string;
  fully_automatic : support;
  pointers_dynamic_alloc : support;
  priv_supported : support;
  priv_criterion_beyond_static : support; (* not limited by static analysis *)
  priv_layout_beyond_static : support;
  redux_supported : support;
  redux_criterion_beyond_static : support;
  redux_layout_beyond_static : support;
}

(* Transcription of the paper's Table 1. *)
let paper_rows =
  [ { technique = "Paralax"; fully_automatic = No; pointers_dynamic_alloc = NotApplicable;
      priv_supported = Yes; priv_criterion_beyond_static = NotApplicable;
      priv_layout_beyond_static = NotApplicable; redux_supported = NotApplicable;
      redux_criterion_beyond_static = NotApplicable;
      redux_layout_beyond_static = NotApplicable };
    { technique = "TL2 / Intel STM"; fully_automatic = No;
      pointers_dynamic_alloc = NotApplicable; priv_supported = Yes;
      priv_criterion_beyond_static = NotApplicable;
      priv_layout_beyond_static = NotApplicable; redux_supported = NotApplicable;
      redux_criterion_beyond_static = NotApplicable;
      redux_layout_beyond_static = NotApplicable };
    { technique = "PD / LRPD / R-LRPD"; fully_automatic = Yes;
      pointers_dynamic_alloc = No; priv_supported = Yes;
      priv_criterion_beyond_static = Yes; priv_layout_beyond_static = No;
      redux_supported = Yes; redux_criterion_beyond_static = Yes;
      redux_layout_beyond_static = No };
    { technique = "Hybrid Analysis"; fully_automatic = Yes; pointers_dynamic_alloc = No;
      priv_supported = Yes; priv_criterion_beyond_static = Yes;
      priv_layout_beyond_static = No; redux_supported = Yes;
      redux_criterion_beyond_static = Yes; redux_layout_beyond_static = No };
    { technique = "Array Expansion / ASSA / DSA"; fully_automatic = Yes;
      pointers_dynamic_alloc = No; priv_supported = Yes;
      priv_criterion_beyond_static = No; priv_layout_beyond_static = No;
      redux_supported = No; redux_criterion_beyond_static = NotApplicable;
      redux_layout_beyond_static = NotApplicable };
    { technique = "STMLite+LLVM"; fully_automatic = Yes; pointers_dynamic_alloc = Yes;
      priv_supported = Yes; priv_criterion_beyond_static = Yes;
      priv_layout_beyond_static = NotApplicable; redux_supported = Yes;
      redux_criterion_beyond_static = No; redux_layout_beyond_static = No };
    { technique = "CorD+Objects"; fully_automatic = Yes; pointers_dynamic_alloc = Yes;
      priv_supported = Yes; priv_criterion_beyond_static = No;
      priv_layout_beyond_static = No; redux_supported = Yes;
      redux_criterion_beyond_static = No; redux_layout_beyond_static = No };
    { technique = "Privateer (this work)"; fully_automatic = Yes;
      pointers_dynamic_alloc = Yes; priv_supported = Yes;
      priv_criterion_beyond_static = Yes; priv_layout_beyond_static = Yes;
      redux_supported = Yes; redux_criterion_beyond_static = Yes;
      redux_layout_beyond_static = Yes } ]

let headers =
  [ "Technique"; "Automatic"; "Ptrs+Alloc"; "Priv"; "Priv>static crit";
    "Priv>static layout"; "Redux"; "Redux>static crit"; "Redux>static layout" ]

let to_table () =
  let t = Privateer_support.Table.create headers in
  List.iter
    (fun r ->
      Privateer_support.Table.add_row t
        [ r.technique; support_str r.fully_automatic;
          support_str r.pointers_dynamic_alloc; support_str r.priv_supported;
          support_str r.priv_criterion_beyond_static;
          support_str r.priv_layout_beyond_static; support_str r.redux_supported;
          support_str r.redux_criterion_beyond_static;
          support_str r.redux_layout_beyond_static ])
    paper_rows;
  t

(* Dynamic probe: for one program, what do our three implemented
   systems do with its hottest loop? *)
type probe = {
  program : string;
  privateer_plans : bool;
  lrpd_applicable : bool;
  lrpd_reason : string;
  doall_proves_hot : bool;
  doall_chosen_loops : int;
}

let probe_program ~name program profiler =
  let selection = Privateer_analysis.Selection.select program profiler in
  let privateer_plans = selection.plans <> [] in
  let hot_loop =
    match selection.plans with
    | p :: _ -> Some p.loop
    | [] -> (
      match Privateer_profile.Profiler.loops_by_weight profiler with
      | (l, _) :: _ -> Some l
      | [] -> None)
  in
  let lrpd_survey = Lrpd.survey program profiler in
  let lrpd_applicable, lrpd_reason =
    match hot_loop with
    | None -> (false, "no loops")
    | Some l -> (
      match List.find_opt (fun (l', _, _, _) -> l' = l) lrpd_survey with
      | Some (_, _, _, Lrpd.Applicable) -> (true, "applicable")
      | Some (_, _, _, Lrpd.Inapplicable r) -> (false, r)
      | None -> (false, "loop not surveyed"))
  in
  let doall = Doall_only.select program profiler in
  let doall_proves_hot =
    match hot_loop with
    | Some l -> List.exists (fun (c : Doall_only.choice) -> c.d_loop = l) doall.chosen
    | None -> false
  in
  { program = name; privateer_plans; lrpd_applicable; lrpd_reason; doall_proves_hot;
    doall_chosen_loops = List.length doall.chosen }
