lib/baselines/doall_only.ml: Array Ast Ast_util Hashtbl Interp List Printf Privateer_analysis Privateer_interp Privateer_ir Privateer_parallel Privateer_profile Profiler Scalars Static_pta Value
