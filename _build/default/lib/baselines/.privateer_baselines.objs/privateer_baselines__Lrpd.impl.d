lib/baselines/lrpd.ml: Ast Doall_only Hashtbl Hooks Interp List Printf Privateer_analysis Privateer_interp Privateer_ir Privateer_profile Scalars Static_pta
