(* The non-speculative DOALL-only baseline (paper Figure 7).

   This compiler may only parallelize a loop it can *prove* parallel
   with static analysis: every store lands in a precisely-known object
   at an affine word subscript of the induction variable (so
   iterations write disjoint words), every load either touches objects
   the region never writes or matches the same subscript pattern,
   registers classify without speculation, and there is no I/O or
   dynamic allocation in the region.  This reproduces the baseline's
   characteristic behaviour: it parallelizes provable inner loops
   (sometimes unprofitably, as in 052.alvinn) and leaves the hot,
   pointer-rich outer loops alone. *)

open Privateer_ir
open Privateer_interp
open Privateer_profile
open Privateer_analysis

type verdict = Provable | Unprovable of string

(* Accept address expressions of the form [base + 8 * iv] (the word
   subscript the front end generates) where [base] is loop-invariant,
   or a loop-invariant address (for objects only read). *)
let affine_in_iv ~iv ~assigned (addr : Ast.expr) =
  match addr with
  | Binop (Add, base, Binop (Mul, Int 8, Local v))
  | Binop (Add, base, Binop (Mul, Local v, Int 8))
    when v = iv -> Ast_util.loop_invariant ~assigned base
  | _ -> false

(* All access sites of a region with their address expressions, plus
   region facts (allocs, prints), found by walking body + callees. *)
type region_accesses = {
  loads : (int * string * Ast.expr) list; (* site, fname, addr expr *)
  stores : (int * string * Ast.expr) list;
  has_alloc : bool;
  has_io : bool;
}

let region_accesses program ~func body =
  let loads = ref [] in
  let stores = ref [] in
  let has_alloc = ref false in
  let has_io = ref false in
  let visit fname blk =
    Ast.iter_exprs
      (fun e ->
        match e with
        | Ast.Load (id, _, addr) -> loads := (id, fname, addr) :: !loads
        | Ast.Alloc _ -> has_alloc := true
        | _ -> ())
      blk;
    Ast.iter_stmts
      (fun s ->
        match s with
        | Ast.Store (id, _, addr, _) -> stores := (id, fname, addr) :: !stores
        | Ast.Free _ -> has_alloc := true
        | Ast.Print _ -> has_io := true
        | _ -> ())
      blk
  in
  visit func body;
  Ast_util.String_set.iter
    (fun name ->
      match Ast.find_func program name with
      | Some f -> visit f.fname f.body
      | None -> ())
    (Ast_util.reachable_funcs program body);
  { loads = !loads; stores = !stores; has_alloc = !has_alloc; has_io = !has_io }

let prove program pta ~func ~iv body : verdict =
  let acc = region_accesses program ~func body in
  if acc.has_alloc then Unprovable "dynamic allocation in region"
  else if acc.has_io then Unprovable "I/O in region"
  else if
    Ast_util.exists_stmt
      (fun s -> match s with Ast.Return _ | Ast.Break -> true | _ -> false)
      body
  then Unprovable "early exit"
  else begin
    match Scalars.classify ~induction:iv body with
    | Scalars.Rejected r -> Unprovable ("scalars: " ^ r)
    | Scalars.Classified _ ->
      let assigned = Ast_util.assigned_locals body in
      let pts_of (_, fname, addr) = Static_pta.points_to pta ~fname addr in
      (* Objects possibly written by the region. *)
      let written =
        List.fold_left
          (fun s a -> Static_pta.Abs_set.union s (pts_of a))
          Static_pta.Abs_set.empty acc.stores
      in
      let store_ok ((_, _fname, addr) as a) =
        let pts = pts_of a in
        Static_pta.is_precise pts
        && affine_in_iv ~iv ~assigned addr
        && (* Every store possibly hitting the same objects must use
              the same affine shape, or two iterations may collide. *)
        List.for_all
          (fun ((_, _, addr') as other) ->
            Static_pta.Abs_set.is_empty (Static_pta.Abs_set.inter pts (pts_of other))
            || affine_in_iv ~iv ~assigned addr')
          acc.stores
      in
      let load_ok ((_, _, addr) as a) =
        let pts = pts_of a in
        if Static_pta.Abs_set.is_empty (Static_pta.Abs_set.inter pts written) then
          (* Read-only data: safe regardless of shape, as long as the
             points-to set is bounded (Top may alias written data). *)
          Static_pta.is_precise pts || Static_pta.Abs_set.is_empty written
        else
          (* Reads of written objects must read the own iteration's
             element: same affine subscript. *)
          Static_pta.is_precise pts && affine_in_iv ~iv ~assigned addr
      in
      match List.find_opt (fun a -> not (store_ok a)) acc.stores with
      | Some (site, fname, _) ->
        Unprovable (Printf.sprintf "store at site %d (%s) not provably independent" site fname)
      | None -> (
        match List.find_opt (fun a -> not (load_ok a)) acc.loads with
        | Some (site, fname, _) ->
          Unprovable
            (Printf.sprintf "load at site %d (%s) may alias written data" site fname)
        | None -> Provable)
  end

(* ---- selection -------------------------------------------------------- *)

type choice = {
  d_loop : Ast.node_id;
  d_func : string;
  d_var : string;
  d_weight : int;
  d_avg_invocation_cycles : int;
}

type report = {
  chosen : choice list;
  rejected : (Ast.node_id * string * string) list; (* loop, func, reason *)
}

(* Loops whose invocations are too small to amortize worker spawn are
   skipped (a simple profitability heuristic the paper's baseline
   evidently lacked for 052.alvinn: we keep its threshold low enough
   that alvinn's deeply nested inner loops still qualify, reproducing
   the reported slowdown). *)
let min_invocation_cycles = 1000

let select program profiler =
  let pta = Static_pta.analyze program in
  let rejected = ref [] in
  let candidates =
    Ast.loops_of_program program
    |> List.filter_map (fun ((f : Ast.func), (_, stmt)) ->
           match stmt with
           | Ast.For (loop, var, _, _, body) -> Some (f.fname, loop, var, body)
           | _ -> None)
  in
  let provable =
    List.filter_map
      (fun (func, loop, var, body) ->
        let weight, avg =
          match Profiler.loop_summary profiler loop with
          | Some s ->
            (s.loop_cycles, if s.loop_invocations = 0 then 0
             else s.loop_cycles / s.loop_invocations)
          | None -> (0, 0)
        in
        if weight = 0 then begin
          rejected := (loop, func, "never executed in training run") :: !rejected;
          None
        end
        else
          match prove program pta ~func ~iv:var body with
          | Provable ->
            if avg < min_invocation_cycles then begin
              rejected := (loop, func, "provable but unprofitable (tiny invocations)") :: !rejected;
              None
            end
            else
              Some { d_loop = loop; d_func = func; d_var = var; d_weight = weight;
                     d_avg_invocation_cycles = avg }
          | Unprovable r ->
            rejected := (loop, func, r) :: !rejected;
            None)
      candidates
  in
  (* Compatibility: no nested parallelism among chosen loops. *)
  let contains outer inner =
    match
      List.find_opt (fun ((_ : Ast.func), (id, _)) -> id = outer)
        (Ast.loops_of_program program)
    with
    | Some (_, (_, Ast.For (_, _, _, _, body))) | Some (_, (_, Ast.While (_, _, body)))
      ->
      let actives =
        List.map fst (Ast.loops_of_block body)
        @ Ast_util.String_set.fold
            (fun name acc ->
              match Ast.find_func program name with
              | Some f -> List.map fst (Ast.loops_of_block f.body) @ acc
              | None -> acc)
            (Ast_util.reachable_funcs program body)
            []
      in
      List.mem inner actives
    | _ -> false
  in
  let by_weight = List.sort (fun a b -> compare b.d_weight a.d_weight) provable in
  let chosen =
    List.fold_left
      (fun acc c ->
        if
          List.for_all
            (fun c' -> (not (contains c'.d_loop c.d_loop)) && not (contains c.d_loop c'.d_loop))
            acc
        then c :: acc
        else acc)
      [] by_weight
  in
  { chosen = List.rev chosen; rejected = List.rev !rejected }

(* ---- timing simulation ------------------------------------------------ *)

(* Execute a DOALL-only parallel run: proven loops execute their
   iterations (sequentially, for state — they are proven independent,
   so values equal sequential execution) while per-iteration cycles
   feed a spawn + balanced-workers + join wall-clock model.

   The paper's DOALL-only baseline "distributes loop iterations across
   worker threads" (section 6.1) — threads, not the forked processes
   Privateer needs for page-map isolation — so its dispatch latency is
   a fraction of Privateer's fork cost. *)
let thread_spawn_divisor = 8

type sim_stats = { mutable invocations : int; mutable par_cycles_saved : int }

let run ?(workers = 24) ?(costs = Privateer_parallel.Cost_model.default) program
    report ~setup =
  let st = Interp.create ~cost:costs.Privateer_parallel.Cost_model.base program in
  let stats = { invocations = 0; par_cycles_saved = 0 } in
  let chosen_ids = List.map (fun c -> c.d_loop) report.chosen in
  st.parallel_for <-
    Some
      (fun st fr stmt ->
        match stmt with
        | Ast.For (loop, var, init_e, limit_e, body) when List.mem loop chosen_ids ->
          let init_value = Value.as_int (Interp.eval st fr init_e) in
          let limit = Value.as_int (Interp.eval st fr limit_e) in
          let n = limit - init_value in
          if n <= 0 then begin
            Hashtbl.replace fr.Interp.locals var (Value.VInt init_value);
            true
          end
          else begin
            stats.invocations <- stats.invocations + 1;
            let c0 = st.cycles in
            let per_worker = Array.make workers 0 in
            for iter = 0 to n - 1 do
              Hashtbl.replace fr.Interp.locals var (Value.VInt (init_value + iter));
              let before = st.cycles in
              Interp.exec_block st fr body;
              per_worker.(iter mod workers) <-
                per_worker.(iter mod workers) + (st.cycles - before)
            done;
            Hashtbl.replace fr.Interp.locals var (Value.VInt limit);
            let seq_cycles = st.cycles - c0 in
            let c_spawn = costs.c_fork / thread_spawn_divisor in
            let wall = ref 0 in
            Array.iteri
              (fun w c -> wall := max !wall (((w + 1) * c_spawn) + c))
              per_worker;
            let wall = !wall + (costs.c_join / thread_spawn_divisor) in
            stats.par_cycles_saved <- stats.par_cycles_saved + (seq_cycles - wall);
            st.cycles <- c0 + wall;
            true
          end
        | _ -> false);
  setup st;
  let result = Interp.run_entry st in
  (st, result, stats)
