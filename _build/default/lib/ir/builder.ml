(* Convenience layer for constructing IR programs in OCaml.

   The Cmini parser uses this to assign fresh node ids; tests and
   examples use it to build small programs without writing surface
   syntax. *)

type t = { mutable next : int }

let create ?(first_id = 1) () = { next = first_id }

let fresh t =
  let id = t.next in
  t.next <- t.next + 1;
  id

open Ast

let int n = Int n
let float f = Float f
let local n = Local n
let gaddr n = Global_addr n
let load ?(size = S8) t addr = Load (fresh t, size, addr)
let unop op e = Unop (op, e)
let binop op a b = Binop (op, a, b)
let add a b = Binop (Add, a, b)
let sub a b = Binop (Sub, a, b)
let mul a b = Binop (Mul, a, b)
let lt a b = Binop (Lt, a, b)
let eq a b = Binop (Eq, a, b)
let ne a b = Binop (Ne, a, b)
let call t fn args = Call (fresh t, fn, args)
let malloc t size = Alloc (fresh t, Malloc, None, size)
let salloc t size = Alloc (fresh t, Salloc, None, size)

(* Address of the i-th 8-byte word of [base]. *)
let word base i = Binop (Add, base, Binop (Mul, Int 8, i))

let assign n e = Assign (n, e)
let store ?(size = S8) t addr v = Store (fresh t, size, addr, v)
let if_ t c b1 b2 = If (fresh t, c, b1, b2)
let while_ t c body = While (fresh t, c, body)
let for_ t var init limit body = For (fresh t, var, init, limit, body)
let expr e = Expr e
let free t p = Free (fresh t, None, p)
let ret e = Return (Some e)
let ret_void = Return None
let print t fmt args = Print (fresh t, fmt, args)

let func name params body = { fname = name; params; body }
let global ?heap name bytes = { gname = name; gbytes = bytes; gheap = heap }

let program t ~globals ~funcs ~entry =
  { globals; funcs; entry; next_id = t.next }
