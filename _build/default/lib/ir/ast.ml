(* The Privateer intermediate representation.

   A structured, dynamically-typed IR in the spirit of the paper's
   LLVM substrate: programs manipulate 64-bit integers/pointers and
   floats, access a byte-addressable memory through sized loads and
   stores, and allocate objects dynamically.  Every memory-touching
   site (load, store, alloc, free, call, loop) carries a unique static
   [node_id]; the profilers and the transformation key all their facts
   on these ids, exactly as the paper keys facts on LLVM instructions.

   Control flow is structured (if/while/for) rather than a CFG: loop
   identification is then syntactic, which matches the paper's use of
   natural loops without requiring a dominator analysis substrate. *)

type node_id = int [@@deriving show, eq, ord]

type size = S1 | S8 [@@deriving show { with_path = false }, eq, ord]

let bytes_of_size = function S1 -> 1 | S8 -> 8

type unop =
  | Neg (* integer negate *)
  | Not (* logical not: 0 -> 1, nonzero -> 0 *)
  | Bnot (* bitwise complement *)
  | Fneg
  | Ftoi (* truncate float to int *)
  | Itof
[@@deriving show { with_path = false }, eq, ord]

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne
  | Fadd | Fsub | Fmul | Fdiv
  | Flt | Fle | Fgt | Fge | Feq | Fne
[@@deriving show { with_path = false }, eq, ord]

(* Whether updates through this operator form an associative and
   commutative reduction (paper's Reduction Criterion). *)
let is_reduction_op = function
  | Add | Mul | Band | Bor | Bxor | Fadd | Fmul -> true
  | Sub | Div | Rem | Shl | Shr | Lt | Le | Gt | Ge | Eq | Ne
  | Fsub | Fdiv | Flt | Fle | Fgt | Fge | Feq | Fne -> false

type alloc_kind =
  | Malloc (* heap allocation; lives until freed *)
  | Salloc (* stack slot; freed automatically at function exit *)
[@@deriving show { with_path = false }, eq, ord]

type expr =
  | Int of int
  | Float of float
  | Local of string (* register read *)
  | Global_addr of string (* address of a global object *)
  | Load of node_id * size * expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  (* Short-circuit boolean connectives (right operand conditionally
     evaluated, so conditions like [p != 0 && p[0] > x] are safe). *)
  | And of expr * expr
  | Or of expr * expr
  | Call of node_id * string * expr list
  (* [Alloc (id, kind, heap, size_bytes)]: [heap = None] means the
     untransformed program's default placement; the privatization
     transform rewrites it to [Some h] (paper section 4.4). *)
  | Alloc of node_id * alloc_kind * Heap.kind option * expr
[@@deriving show { with_path = false }, eq]

type stmt =
  | Assign of string * expr
  | Store of node_id * size * expr * expr (* addr, value *)
  | If of node_id * expr * block * block
  | While of node_id * expr * block
  (* [For (id, var, init, limit, body)]: var from init while var < limit,
     step +1.  DOALL parallelization targets these loops. *)
  | For of node_id * string * expr * expr * block
  | Expr of expr (* evaluate for side effects, e.g. a call *)
  | Free of node_id * Heap.kind option * expr
  | Return of expr option
  | Break
  | Continue
  | Print of node_id * string * expr list (* printf-style; %d %f %x *)
  (* Inserted by the transformation: *)
  | Check_heap of node_id * expr * Heap.kind (* separation check, 4.5 *)
  | Assert_value of node_id * expr * int (* value-prediction check *)
  (* Control speculation: replaces a profiled-never-taken branch body;
     reaching it at runtime is a misspeculation. *)
  | Misspec of node_id * string
[@@deriving show { with_path = false }, eq]

and block = stmt list [@@deriving show, eq]

type func = {
  fname : string;
  params : string list;
  body : block;
}
[@@deriving show { with_path = false }, eq]

type global = {
  gname : string;
  gbytes : int; (* size in bytes, zero-initialized *)
  gheap : Heap.kind option; (* None before transformation *)
}
[@@deriving show { with_path = false }, eq]

type program = {
  globals : global list;
  funcs : func list;
  entry : string; (* name of the entry function, usually "main" *)
  next_id : int; (* first unused node id; transforms allocate from here *)
}
[@@deriving show { with_path = false }, eq]

let find_func program name =
  List.find_opt (fun f -> f.fname = name) program.funcs

let find_global program name =
  List.find_opt (fun g -> g.gname = name) program.globals

(* Iterate over every statement of a block, recursing into nested
   blocks.  Shared by analyses that need all statements of a region. *)
let rec iter_stmts f blk =
  List.iter
    (fun stmt ->
      f stmt;
      match stmt with
      | If (_, _, b1, b2) ->
        iter_stmts f b1;
        iter_stmts f b2
      | While (_, _, b) | For (_, _, _, _, b) -> iter_stmts f b
      | Assign _ | Store _ | Expr _ | Free _ | Return _ | Break | Continue
      | Print _ | Check_heap _ | Assert_value _ | Misspec _ -> ())
    blk

(* Iterate over every expression appearing in a block (including
   sub-expressions), recursing into nested blocks. *)
let rec iter_exprs f blk =
  let rec on_expr e =
    f e;
    match e with
    | Int _ | Float _ | Local _ | Global_addr _ -> ()
    | Load (_, _, e1) | Unop (_, e1) | Alloc (_, _, _, e1) -> on_expr e1
    | Binop (_, e1, e2) | And (e1, e2) | Or (e1, e2) ->
      on_expr e1;
      on_expr e2
    | Call (_, _, args) -> List.iter on_expr args
  in
  List.iter
    (fun stmt ->
      match stmt with
      | Assign (_, e) | Expr e | Free (_, _, e) | Return (Some e)
      | Assert_value (_, e, _) -> on_expr e
      | Store (_, _, a, v) ->
        on_expr a;
        on_expr v
      | Check_heap (_, e, _) -> on_expr e
      | Print (_, _, args) -> List.iter on_expr args
      | If (_, c, b1, b2) ->
        on_expr c;
        iter_exprs f b1;
        iter_exprs f b2
      | While (_, c, b) ->
        on_expr c;
        iter_exprs f b
      | For (_, _, init, limit, b) ->
        on_expr init;
        on_expr limit;
        iter_exprs f b
      | Return None | Break | Continue | Misspec _ -> ())
    blk

(* All loop headers (For and While) in a block, outermost first. *)
let rec loops_of_block blk =
  List.concat_map
    (fun stmt ->
      match stmt with
      | For (id, _, _, _, body) -> (id, stmt) :: loops_of_block body
      | While (id, _, body) -> (id, stmt) :: loops_of_block body
      | If (_, _, b1, b2) -> loops_of_block b1 @ loops_of_block b2
      | Assign _ | Store _ | Expr _ | Free _ | Return _ | Break | Continue
      | Print _ | Check_heap _ | Assert_value _ | Misspec _ -> [])
    blk

let loops_of_program program =
  List.concat_map (fun f -> List.map (fun l -> (f, l)) (loops_of_block f.body)) program.funcs
