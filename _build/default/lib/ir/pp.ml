(* Source-like pretty-printer for IR programs.

   Used by the CLI's [dump] command and by the Figure-2 style
   before/after listings: the transformed program renders its heap
   placements and inserted checks inline, so a reader can compare it
   with the paper's motivating example. *)

open Ast

let unop_str = function
  | Neg -> "-"
  | Not -> "!"
  | Bnot -> "~"
  | Fneg -> "-."
  | Ftoi -> "(int)"
  | Itof -> "(float)"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Fadd -> "+." | Fsub -> "-." | Fmul -> "*." | Fdiv -> "/."
  | Flt -> "<." | Fle -> "<=." | Fgt -> ">." | Fge -> ">=." | Feq -> "==." | Fne -> "!=."

let heap_str h = Heap.name h

let rec expr_str e =
  match e with
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%g" f
  | Local n -> n
  | Global_addr n -> "&" ^ n
  | Load (_, S8, a) -> Printf.sprintf "load(%s)" (expr_str a)
  | Load (_, S1, a) -> Printf.sprintf "load1(%s)" (expr_str a)
  | Unop (op, a) -> Printf.sprintf "%s(%s)" (unop_str op) (expr_str a)
  | Binop (op, a, b) -> Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | And (a, b) -> Printf.sprintf "(%s && %s)" (expr_str a) (expr_str b)
  | Or (a, b) -> Printf.sprintf "(%s || %s)" (expr_str a) (expr_str b)
  | Call (_, fn, args) ->
    Printf.sprintf "%s(%s)" fn (String.concat ", " (List.map expr_str args))
  | Alloc (_, kind, heap, size) ->
    let fn = match kind with Malloc -> "malloc" | Salloc -> "salloc" in
    let placement = match heap with None -> "" | Some h -> ", " ^ heap_str h in
    Printf.sprintf "%s(%s%s)" fn (expr_str size) placement

let rec stmt_lines indent stmt =
  let pad = String.make indent ' ' in
  match stmt with
  | Assign (n, e) -> [ Printf.sprintf "%s%s = %s;" pad n (expr_str e) ]
  | Store (_, size, a, v) ->
    let fn = match size with S8 -> "store" | S1 -> "store1" in
    [ Printf.sprintf "%s%s(%s, %s);" pad fn (expr_str a) (expr_str v) ]
  | If (_, c, b1, []) ->
    (Printf.sprintf "%sif (%s) {" pad (expr_str c) :: block_lines (indent + 2) b1)
    @ [ pad ^ "}" ]
  | If (_, c, b1, b2) ->
    (Printf.sprintf "%sif (%s) {" pad (expr_str c) :: block_lines (indent + 2) b1)
    @ [ pad ^ "} else {" ]
    @ block_lines (indent + 2) b2
    @ [ pad ^ "}" ]
  | While (id, c, b) ->
    (Printf.sprintf "%swhile (%s) {  // loop %d" pad (expr_str c) id
     :: block_lines (indent + 2) b)
    @ [ pad ^ "}" ]
  | For (id, v, init, limit, b) ->
    (Printf.sprintf "%sfor (%s = %s; %s < %s) {  // loop %d" pad v (expr_str init) v
       (expr_str limit) id
     :: block_lines (indent + 2) b)
    @ [ pad ^ "}" ]
  | Expr e -> [ Printf.sprintf "%s%s;" pad (expr_str e) ]
  | Free (_, heap, p) ->
    let placement = match heap with None -> "" | Some h -> ", " ^ heap_str h in
    [ Printf.sprintf "%sfree(%s%s);" pad (expr_str p) placement ]
  | Return (Some e) -> [ Printf.sprintf "%sreturn %s;" pad (expr_str e) ]
  | Return None -> [ pad ^ "return;" ]
  | Break -> [ pad ^ "break;" ]
  | Continue -> [ pad ^ "continue;" ]
  | Print (_, fmt, args) ->
    let args = List.map expr_str args in
    [ Printf.sprintf "%sprint(%S%s);" pad fmt
        (if args = [] then "" else ", " ^ String.concat ", " args) ]
  | Check_heap (_, e, h) ->
    [ Printf.sprintf "%scheck_heap(%s, %s);" pad (expr_str e) (heap_str h) ]
  | Assert_value (_, e, expected) ->
    [ Printf.sprintf "%sif (%s != %d) misspec();" pad (expr_str e) expected ]
  | Misspec (_, reason) -> [ Printf.sprintf "%smisspec(%S);" pad reason ]

and block_lines indent blk = List.concat_map (stmt_lines indent) blk

let func_str f =
  let header = Printf.sprintf "fn %s(%s) {" f.fname (String.concat ", " f.params) in
  String.concat "\n" ((header :: block_lines 2 f.body) @ [ "}" ])

let global_str g =
  let placement = match g.gheap with None -> "" | Some h -> " @" ^ heap_str h in
  Printf.sprintf "global %s[%d]%s;" g.gname g.gbytes placement

let program_str p =
  let globals = List.map global_str p.globals in
  let funcs = List.map func_str p.funcs in
  String.concat "\n" (globals @ ("" :: funcs))
