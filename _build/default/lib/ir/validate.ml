(* Structural validation of IR programs.

   Every pass output is validated in tests: unique node ids, resolvable
   callees and globals, break/continue confined to loops, and node ids
   below the program's [next_id] watermark (so transforms can safely
   mint fresh ids). *)

open Ast

type error =
  | Duplicate_node_id of node_id
  | Unknown_function of string
  | Unknown_global of string
  | Stray_break_continue of string
  | Node_id_above_watermark of node_id
  | Duplicate_function of string
  | Duplicate_global of string
  | Missing_entry of string

let error_to_string = function
  | Duplicate_node_id id -> Printf.sprintf "duplicate node id %d" id
  | Unknown_function f -> Printf.sprintf "call to unknown function %s" f
  | Unknown_global g -> Printf.sprintf "reference to unknown global %s" g
  | Stray_break_continue f -> Printf.sprintf "break/continue outside loop in %s" f
  | Node_id_above_watermark id -> Printf.sprintf "node id %d >= next_id" id
  | Duplicate_function f -> Printf.sprintf "duplicate function %s" f
  | Duplicate_global g -> Printf.sprintf "duplicate global %s" g
  | Missing_entry e -> Printf.sprintf "entry function %s not defined" e

(* Builtins callable without a user definition (interpreter intrinsics). *)
let builtins =
  [ "sqrt"; "exp"; "log"; "pow"; "fabs"; "floor"; "fmin"; "fmax"; "min"; "max"; "abs";
    "sin"; "cos" ]

let is_builtin name = List.mem name builtins

let check program =
  let errors = ref [] in
  let err e = errors := e :: !errors in
  let seen_ids = Hashtbl.create 256 in
  let note_id id =
    if Hashtbl.mem seen_ids id then err (Duplicate_node_id id)
    else Hashtbl.add seen_ids id ();
    if id >= program.next_id then err (Node_id_above_watermark id)
  in
  let fnames = List.map (fun f -> f.fname) program.funcs in
  let gnames = List.map (fun g -> g.gname) program.globals in
  let rec dup_names = function
    | [] -> []
    | x :: rest -> (if List.mem x rest then [ x ] else []) @ dup_names rest
  in
  List.iter (fun f -> err (Duplicate_function f)) (dup_names fnames);
  List.iter (fun g -> err (Duplicate_global g)) (dup_names gnames);
  if not (List.mem program.entry fnames) then err (Missing_entry program.entry);
  let on_expr e =
    match e with
    | Load (id, _, _) | Call (id, _, _) | Alloc (id, _, _, _) -> note_id id
    | Global_addr g -> if not (List.mem g gnames) then err (Unknown_global g)
    | Int _ | Float _ | Local _ | Unop _ | Binop _ | And _ | Or _ -> ()
  in
  let on_call_target e =
    match e with
    | Call (_, fn, _) ->
      if not (List.mem fn fnames || is_builtin fn) then err (Unknown_function fn)
    | _ -> ()
  in
  let rec check_block in_loop fname blk =
    List.iter
      (fun stmt ->
        (match stmt with
        | Store (id, _, _, _)
        | Free (id, _, _)
        | Print (id, _, _)
        | Check_heap (id, _, _)
        | Assert_value (id, _, _)
        | Misspec (id, _) -> note_id id
        | While (id, _, _) | For (id, _, _, _, _) | If (id, _, _, _) -> note_id id
        | Break | Continue -> if not in_loop then err (Stray_break_continue fname)
        | Assign _ | Expr _ | Return _ -> ());
        match stmt with
        | If (_, _, b1, b2) ->
          check_block in_loop fname b1;
          check_block in_loop fname b2
        | While (_, _, b) | For (_, _, _, _, b) -> check_block true fname b
        | _ -> ())
      blk
  in
  List.iter
    (fun f ->
      check_block false f.fname f.body;
      iter_exprs
        (fun e ->
          on_expr e;
          on_call_target e)
        f.body;
      (* Expressions in statement heads are covered by iter_exprs. *))
    program.funcs;
  List.rev !errors

let check_exn program =
  match check program with
  | [] -> ()
  | errs ->
    failwith
      ("IR validation failed: " ^ String.concat "; " (List.map error_to_string errs))
