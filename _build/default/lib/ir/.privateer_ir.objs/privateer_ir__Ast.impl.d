lib/ir/ast.pp.ml: Heap List Ppx_deriving_runtime
