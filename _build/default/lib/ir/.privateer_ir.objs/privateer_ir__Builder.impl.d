lib/ir/builder.pp.ml: Ast
