lib/ir/pp.pp.ml: Ast Heap List Printf String
