lib/ir/heap.pp.ml: Ppx_deriving_runtime Printf
