lib/ir/heap.pp.mli: Format
