(** Logical heaps and their address-tag encoding (paper sections 3.2
    and 5.1).

    Each heap occupies a fixed virtual address range identified by a
    3-bit tag in address bits 44–46, so a separation check is bit
    arithmetic on the pointer, and the shadow address of a private
    byte is one OR away ([Private] and [Shadow] differ in one bit). *)

type kind =
  | Default  (** ordinary program memory (untransformed) *)
  | Read_only
  | Redux  (** reduction accumulators *)
  | Short_lived  (** objects confined to one iteration *)
  | Private
  | Shadow  (** privacy metadata; never program-visible *)
  | Unrestricted
  | Stack  (** simulated stack slots *)

val pp_kind : Format.formatter -> kind -> unit
val show_kind : kind -> string
val equal_kind : kind -> kind -> bool
val compare_kind : kind -> kind -> int

val all : kind list

(** The 3-bit tag (0–7); [Private] = 4 = [0b100], [Shadow] = 5. *)
val tag : kind -> int

val tag_shift : int
val tag_bits : int
val tag_mask : int

(** The single bit distinguishing private from shadow addresses. *)
val private_shadow_bit : int

(** @raise Invalid_argument outside 0–7. *)
val of_tag : int -> kind

(** Lowest address of the heap's range. *)
val base : kind -> int

(** 16 TB per heap, as in the paper. *)
val capacity : int

val heap_of_addr : int -> kind

(** The separation check: does [addr] carry [kind]'s tag?  A few
    instructions at runtime. *)
val check : int -> kind -> bool

val shadow_of_private : int -> int
val private_of_shadow : int -> int

(** Human-readable name ("short-lived", "read-only", ...). *)
val name : kind -> string
