(* Logical heaps and their address-tag encoding.

   Privateer partitions a loop's memory footprint into five logical
   heaps with restricted semantics (paper section 4.2), plus the
   shadow heap holding privacy metadata (section 5.1).  Every heap
   occupies a fixed virtual address range identified by a 3-bit tag in
   address bits 44..46, so a separation check is bit arithmetic on the
   pointer, and the shadow address of a private byte is one OR away. *)

type kind =
  | Default (* ordinary program memory: untransformed globals & mallocs *)
  | Read_only
  | Redux
  | Short_lived
  | Private
  | Shadow (* metadata for the private heap; never visible to programs *)
  | Unrestricted
  | Stack (* simulated stack slots; a distinct range so frees are checked *)
[@@deriving show { with_path = false }, eq, ord]

let all = [ Default; Read_only; Redux; Short_lived; Private; Shadow; Unrestricted; Stack ]

(* Paper section 5.1: bits 44-46 hold the tag; Private and Shadow were
   chosen to differ in exactly one bit so that
   [shadow_addr = private_addr lor private_shadow_bit]. *)
let tag = function
  | Default -> 0
  | Read_only -> 1
  | Redux -> 2
  | Short_lived -> 3
  | Private -> 4 (* 100b *)
  | Shadow -> 5 (* 101b *)
  | Unrestricted -> 6
  | Stack -> 7

let tag_shift = 44
let tag_bits = 3
let tag_mask = ((1 lsl tag_bits) - 1) lsl tag_shift

(* The single bit distinguishing the private heap from its shadow. *)
let private_shadow_bit = 1 lsl tag_shift

let of_tag = function
  | 0 -> Default
  | 1 -> Read_only
  | 2 -> Redux
  | 3 -> Short_lived
  | 4 -> Private
  | 5 -> Shadow
  | 6 -> Unrestricted
  | 7 -> Stack
  | n -> invalid_arg (Printf.sprintf "Heap.of_tag: %d" n)

let base kind = tag kind lsl tag_shift

(* 16 TB of allocation within any heap, as in the paper. *)
let capacity = 1 lsl tag_shift

let heap_of_addr addr = of_tag ((addr land tag_mask) lsr tag_shift)

(* The separation check: does [addr] carry [kind]'s tag?  This is the
   few-instruction test the compiler inserts at pointer definitions. *)
let check addr kind = addr land tag_mask = tag kind lsl tag_shift

let shadow_of_private addr = addr lor private_shadow_bit
let private_of_shadow addr = addr lxor private_shadow_bit

let name = function
  | Default -> "default"
  | Read_only -> "read-only"
  | Redux -> "redux"
  | Short_lived -> "short-lived"
  | Private -> "private"
  | Shadow -> "shadow"
  | Unrestricted -> "unrestricted"
  | Stack -> "stack"
