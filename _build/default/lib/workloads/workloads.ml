(* The evaluation suite: the paper's five programs (section 6,
   Table 3). *)

let all : Workload.t list =
  [ Alvinn.workload; Dijkstra.workload; Blackscholes.workload; Swaptions.workload;
    Enc_md5.workload ]

let find name = List.find_opt (fun (w : Workload.t) -> w.name = name) all

let find_exn name =
  match find name with
  | Some w -> w
  | None ->
    invalid_arg
      (Printf.sprintf "unknown workload %s (have: %s)" name
         (String.concat ", " (List.map (fun (w : Workload.t) -> w.name) all)))
