(* Workload plumbing: each benchmark is a Cmini program plus input
   parameterizations (train for profiling, ref for evaluation, alt for
   the profile-stability check the paper performs). *)

type input = Train | Ref | Alt

let input_name = function Train -> "train" | Ref -> "ref" | Alt -> "alt"

type t = {
  name : string;
  description : string;
  source : string;
  (* Scalar globals to set for each input. *)
  params : input -> (string * int) list;
  (* What the paper's Table 3 lists under "Extras" for this program. *)
  paper_extras : string list;
}

let program t = Privateer.Pipeline.parse t.source

let setup t input : Privateer.Pipeline.setup =
 fun st ->
  List.iter (fun (g, v) -> Privateer.Pipeline.set_global st g v) (t.params input)
