lib/workloads/workload.ml: List Privateer
