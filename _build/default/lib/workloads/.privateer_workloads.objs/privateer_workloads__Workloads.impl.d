lib/workloads/workloads.ml: Alvinn Blackscholes Dijkstra Enc_md5 List Printf String Swaptions Workload
