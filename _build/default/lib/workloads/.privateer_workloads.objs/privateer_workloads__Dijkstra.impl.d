lib/workloads/dijkstra.ml: Printf Workload
