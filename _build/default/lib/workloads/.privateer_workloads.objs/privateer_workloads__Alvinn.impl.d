lib/workloads/alvinn.ml: Printf Workload
