lib/workloads/enc_md5.ml: Printf Workload
