lib/workloads/blackscholes.ml: Printf Workload
