lib/workloads/swaptions.ml: Printf Workload
