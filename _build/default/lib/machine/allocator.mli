(** Per-heap allocator: bump pointer plus exact-size free lists.

    Every address carries its heap's tag (paper section 5.1); freed
    ranges are recycled same-size-first, which exercises the
    profiler's interval-map eviction. *)

type t

val create : Privateer_ir.Heap.kind -> t

(** Deep copy; the copy evolves independently (worker snapshot). *)
val copy : t -> t

(** Allocate at least [size] bytes (16-byte aligned and rounded);
    the address lies within the heap's tagged range.
    @raise Invalid_argument on negative size
    @raise Failure when the heap's 16 TB range is exhausted. *)
val alloc : t -> int -> int

(** Free a live allocation, returning its (rounded) size.
    @raise Failure on double free or foreign pointers. *)
val free : t -> int -> int

val live_count : t -> int
val total_allocs : t -> int
val is_live : t -> int -> bool
val live_size : t -> int -> int option

(** Highest bump offset reached (allocator commit support). *)
val bump : t -> int

(** Raise the bump pointer to at least [b] (never lowers it). *)
val raise_bump : t -> int -> unit

(** Drop all live objects and free lists. *)
val reset : t -> unit
