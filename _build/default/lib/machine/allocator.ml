(* Per-heap allocator: bump pointer plus size-class free lists.

   Each logical heap subdivides its fixed 16 TB address range; all
   objects inherit the heap's address tag (paper section 5.1).  Freed
   ranges are recycled exactly (same size class first), which is what
   makes the pointer-to-object profiler's interval-map eviction
   interesting: a recycled address names a different object.

   Workers snapshot allocator state together with memory, so
   same-address allocations in different workers never interfere. *)

open Privateer_ir

type t = {
  heap : Heap.kind;
  mutable bump : int; (* next fresh offset within the heap range *)
  free_lists : (int, int list ref) Hashtbl.t; (* size -> addresses *)
  live : (int, int) Hashtbl.t; (* address -> size *)
  mutable live_count : int;
  mutable total_allocs : int;
}

let alignment = 16

let create heap =
  { heap; bump = Heap.base heap + alignment; free_lists = Hashtbl.create 16;
    live = Hashtbl.create 64; live_count = 0; total_allocs = 0 }

let copy t =
  let free_lists = Hashtbl.create 16 in
  Hashtbl.iter (fun k v -> Hashtbl.replace free_lists k (ref !v)) t.free_lists;
  { heap = t.heap; bump = t.bump; free_lists; live = Hashtbl.copy t.live;
    live_count = t.live_count; total_allocs = t.total_allocs }

let round_up n = (n + alignment - 1) / alignment * alignment

let alloc t size =
  if size < 0 then invalid_arg "Allocator.alloc: negative size";
  let size = max alignment (round_up size) in
  let addr =
    match Hashtbl.find_opt t.free_lists size with
    | Some ({ contents = addr :: rest } as cell) ->
      cell := rest;
      addr
    | Some _ | None ->
      let addr = t.bump in
      t.bump <- t.bump + size;
      if t.bump - Heap.base t.heap > Heap.capacity then
        failwith ("Allocator: heap exhausted: " ^ Heap.name t.heap);
      addr
  in
  Hashtbl.replace t.live addr size;
  t.live_count <- t.live_count + 1;
  t.total_allocs <- t.total_allocs + 1;
  addr

(* Returns the freed object's size; raises if [addr] is not live
   (double free / foreign pointer — a program error worth surfacing). *)
let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> failwith (Printf.sprintf "Allocator.free: %#x not live in %s heap" addr (Heap.name t.heap))
  | Some size ->
    Hashtbl.remove t.live addr;
    t.live_count <- t.live_count - 1;
    (match Hashtbl.find_opt t.free_lists size with
    | Some cell -> cell := addr :: !cell
    | None -> Hashtbl.replace t.free_lists size (ref [ addr ]));
    size

let live_count t = t.live_count
let total_allocs t = t.total_allocs
let is_live t addr = Hashtbl.mem t.live addr
let live_size t addr = Hashtbl.find_opt t.live addr

let bump t = t.bump
let raise_bump t b = if b > t.bump then t.bump <- b

(* Drop all live objects (used when a worker resets its short-lived
   arena between iterations after validating emptiness). *)
let reset t =
  Hashtbl.reset t.live;
  Hashtbl.reset t.free_lists;
  t.live_count <- 0;
  t.bump <- Heap.base t.heap + alignment
