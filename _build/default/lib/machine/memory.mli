(** Byte-addressable memory with 4 KiB pages and copy-on-write
    snapshots — the stand-in for the paper's POSIX shm/mmap substrate.

    Unmapped pages read as zero (so shadow metadata starts at code 0,
    live-in, with no initialization).  Each 8-byte-aligned word carries
    a float tag so the dynamically-typed interpreter can round-trip
    floats; partial (byte) stores clear the tag. *)

val page_shift : int
val page_size : int
val words_per_page : int

type t

val create : unit -> t

(** Copy-on-write child sharing every current page with the parent;
    either side's first write to a shared page clones it. *)
val snapshot : t -> t

val page_of_addr : int -> int
val offset_of_addr : int -> int

(** Read one byte (0 for unmapped memory). *)
val read_byte : t -> int -> int

(** Write one byte (low 8 bits of [v]); clears the containing word's
    float tag. *)
val write_byte : t -> int -> int -> unit

(** Raw 8-byte little-endian read: [(bits, is_float)].  The float tag
    is only meaningful for aligned, same-page access. *)
val read_word : t -> int -> int64 * bool

val write_word : t -> int -> int64 -> bool -> unit

(** Pages written since the last [clear_dirty] (page numbers). *)
val dirty_pages : t -> int list

val clear_dirty : t -> unit
val dirty_count : t -> int

(** Deep-copy [src]'s page [key] into [dst] (checkpoint restore). *)
val copy_page_into : dst:t -> src:t -> int -> unit

(** All mapped page numbers. *)
val mapped_pages : t -> int list

(** Byte-for-byte equality over [\[lo, hi)]; unmapped reads as zero. *)
val equal_range : t -> t -> int -> int -> bool

(** Equality over the union of both memories' mapped pages. *)
val equal_footprint : t -> t -> bool
