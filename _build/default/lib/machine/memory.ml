(* Byte-addressable memory with 4 KiB pages and copy-on-write snapshots.

   This stands in for the paper's POSIX shm/mmap substrate: each
   simulated worker process owns a page table; [snapshot] gives a
   child the parent's pages with copy-on-write semantics, exactly the
   mechanism the Privateer runtime uses to replicate a logical heap's
   storage without changing virtual addresses (paper section 5.1).

   Unmapped pages read as zero, so the shadow heap's metadata starts
   at code 0 (live-in) with no explicit initialization, as in the
   paper.

   Because the interpreter is dynamically typed, each 8-byte-aligned
   word carries a one-byte "float tag" recording whether the last full
   word store was a float; partial (byte) stores clear the tag. *)

let page_shift = 12
let page_size = 1 lsl page_shift
let words_per_page = page_size / 8

type page = {
  bytes : Bytes.t;
  ftags : Bytes.t;
  mutable shared : bool;
      (* true when this page object may be referenced by another page
         table; a write must clone first (copy-on-write). *)
}

type t = {
  pages : (int, page) Hashtbl.t; (* page number -> page *)
  dirty : (int, unit) Hashtbl.t; (* pages written since last [clear_dirty] *)
}

let create () = { pages = Hashtbl.create 64; dirty = Hashtbl.create 64 }

let fresh_page () =
  { bytes = Bytes.make page_size '\000'; ftags = Bytes.make words_per_page '\000';
    shared = false }

let clone_page p =
  { bytes = Bytes.copy p.bytes; ftags = Bytes.copy p.ftags; shared = false }

(* Copy-on-write child: shares every current page with the parent.
   Both sides will clone a shared page on first write. *)
let snapshot t =
  let child = create () in
  Hashtbl.iter
    (fun key page ->
      page.shared <- true;
      Hashtbl.replace child.pages key page)
    t.pages;
  child

let page_of_addr addr = addr lsr page_shift
let offset_of_addr addr = addr land (page_size - 1)

(* Page for reading: never allocates; None means all-zero. *)
let read_page t addr = Hashtbl.find_opt t.pages (page_of_addr addr)

(* Page for writing: allocates or clones as needed, marks dirty. *)
let write_page t addr =
  let key = page_of_addr addr in
  Hashtbl.replace t.dirty key ();
  match Hashtbl.find_opt t.pages key with
  | None ->
    let p = fresh_page () in
    Hashtbl.replace t.pages key p;
    p
  | Some p when p.shared ->
    let p' = clone_page p in
    Hashtbl.replace t.pages key p';
    p'
  | Some p -> p

let read_byte t addr =
  match read_page t addr with
  | None -> 0
  | Some p -> Char.code (Bytes.get p.bytes (offset_of_addr addr))

let write_byte t addr v =
  let p = write_page t addr in
  let off = offset_of_addr addr in
  Bytes.set p.bytes off (Char.chr (v land 0xff));
  (* A partial store invalidates the word's float tag. *)
  Bytes.set p.ftags (off lsr 3) '\000'

(* Raw 8-byte little-endian read; [is_float] is the word's float tag
   (only meaningful for aligned access within one page). *)
let read_word t addr =
  let off = offset_of_addr addr in
  if off land 7 = 0 then
    match read_page t addr with
    | None -> (0L, false)
    | Some p ->
      (Bytes.get_int64_le p.bytes off, Bytes.get p.ftags (off lsr 3) <> '\000')
  else begin
    (* Unaligned (possibly page-crossing): assemble byte by byte. *)
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_byte t (addr + i)))
    done;
    (!v, false)
  end

let write_word t addr bits is_float =
  let off = offset_of_addr addr in
  if off land 7 = 0 then begin
    let p = write_page t addr in
    Bytes.set_int64_le p.bytes off bits;
    Bytes.set p.ftags (off lsr 3) (if is_float then '\001' else '\000')
  end
  else
    for i = 0 to 7 do
      write_byte t (addr + i)
        (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

let dirty_pages t = Hashtbl.fold (fun k () acc -> k :: acc) t.dirty []
let clear_dirty t = Hashtbl.reset t.dirty
let dirty_count t = Hashtbl.length t.dirty

(* Install [src]'s page [key] into [dst] (used by checkpoint commit and
   recovery).  The page is copied so later writes don't alias. *)
let copy_page_into ~dst ~src key =
  (match Hashtbl.find_opt src.pages key with
  | None -> Hashtbl.remove dst.pages key
  | Some p -> Hashtbl.replace dst.pages key (clone_page p));
  Hashtbl.replace dst.dirty key ()

(* All page numbers mapped in [t] (zero pages excluded). *)
let mapped_pages t = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages []

(* Byte-for-byte equality of an address range across two memories;
   unmapped pages compare as zero. *)
let equal_range a b lo hi =
  let rec go addr = addr >= hi || (read_byte a addr = read_byte b addr && go (addr + 1)) in
  go lo

(* Compare the full mapped footprint of two memories. *)
let equal_footprint a b =
  let keys = List.sort_uniq compare (mapped_pages a @ mapped_pages b) in
  List.for_all
    (fun key ->
      let lo = key lsl page_shift in
      equal_range a b lo (lo + page_size))
    keys
