lib/machine/allocator.ml: Hashtbl Heap Printf Privateer_ir
