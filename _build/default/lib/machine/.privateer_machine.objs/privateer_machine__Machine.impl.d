lib/machine/machine.ml: Allocator Array Heap Int64 List Memory Privateer_ir
