lib/machine/memory.mli:
