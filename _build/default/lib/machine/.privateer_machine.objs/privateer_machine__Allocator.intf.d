lib/machine/allocator.mli: Privateer_ir
