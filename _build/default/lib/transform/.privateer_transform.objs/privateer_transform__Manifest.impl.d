lib/transform/manifest.ml: Ast Classify Hashtbl Heap List Objname Option Privateer_analysis Privateer_ir Privateer_profile Scalars
