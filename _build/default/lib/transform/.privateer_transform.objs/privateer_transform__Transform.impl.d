lib/transform/transform.ml: Ast Classify Hashtbl Heap List Manifest Objname Privateer_analysis Privateer_ir Privateer_profile Profiler Selection Static_pta Validate
