(* The privatization transformation (paper sections 4.4-4.6).

   4.4 Replace Allocation: globals and dynamic allocation sites are
       re-homed into their assigned logical heaps (a real IR rewrite:
       the global's placement and each Alloc's heap annotation).
   4.5 Add Separation Checks: every load/store site in the parallel
       region gets an expected-heap entry in the manifest; checks the
       static points-to analysis can prove are marked elided.
   4.6 Add Privacy Checks: the runtime updates shadow metadata on
       every access whose address carries the private tag, so privacy
       instrumentation needs no per-site registration; reduction sites
       are registered so their loads/stores of the redux heap are
       sanctioned.

   Control speculation prepends a misspeculation marker to each
   profiled-never-taken branch side (the original code remains, so
   non-speculative execution and recovery are untouched).  Value
   predictions are recorded in the manifest; the parallel executor
   re-initializes predicted locations at iteration start and validates
   them at iteration end (see Privateer_parallel). *)

open Privateer_ir
open Privateer_profile
open Privateer_analysis

type result = {
  program : Ast.program; (* rewritten *)
  manifest : Manifest.t;
  selection : Selection.t;
}

(* ---- allocation replacement ----------------------------------------- *)

let heap_for_site site_heap (s : Objname.site) = List.assoc_opt s site_heap

let rec rewrite_expr site_heap (e : Ast.expr) : Ast.expr =
  let r = rewrite_expr site_heap in
  match e with
  | Int _ | Float _ | Local _ | Global_addr _ -> e
  | Load (id, sz, a) -> Load (id, sz, r a)
  | Unop (op, a) -> Unop (op, r a)
  | Binop (op, a, b) -> Binop (op, r a, r b)
  | And (a, b) -> And (r a, r b)
  | Or (a, b) -> Or (r a, r b)
  | Call (id, fn, args) -> Call (id, fn, List.map r args)
  | Alloc (id, kind, _, size) ->
    Alloc (id, kind, heap_for_site site_heap (Objname.Alloc_site id), r size)

let rec rewrite_block site_heap control_spec fresh blk =
  List.map (rewrite_stmt site_heap control_spec fresh) blk

and rewrite_stmt site_heap control_spec fresh (s : Ast.stmt) : Ast.stmt =
  let re = rewrite_expr site_heap in
  let rb = rewrite_block site_heap control_spec fresh in
  match s with
  | Assign (x, e) -> Assign (x, re e)
  | Store (id, sz, a, v) -> Store (id, sz, re a, re v)
  | If (id, c, b1, b2) -> (
    let b1 = rb b1 and b2 = rb b2 in
    (* Control speculation: mark the cold side.  The original code is
       kept after the marker so sequential execution and recovery are
       unaffected; reaching the marker speculatively misspeculates. *)
    match List.assoc_opt id control_spec with
    | Some true -> If (id, re c, b1, Ast.Misspec (fresh (), "control") :: b2)
    | Some false -> If (id, re c, Ast.Misspec (fresh (), "control") :: b1, b2)
    | None -> If (id, re c, b1, b2))
  | While (id, c, body) -> While (id, re c, rb body)
  | For (id, v, init, limit, body) -> For (id, v, re init, re limit, rb body)
  | Expr e -> Expr (re e)
  | Free (id, heap, e) -> Free (id, heap, re e)
  | Return (Some e) -> Return (Some (re e))
  | Print (id, fmt, args) -> Print (id, fmt, List.map re args)
  | Check_heap (id, e, h) -> Check_heap (id, re e, h)
  | Assert_value (id, e, c) -> Assert_value (id, re e, c)
  | Return None | Break | Continue | Misspec _ -> s

(* ---- separation checks and eliding ----------------------------------- *)

(* Address expression and enclosing function of every load/store site. *)
let index_access_sites (program : Ast.program) =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_exprs
        (fun e ->
          match e with
          | Load (id, _, addr) -> Hashtbl.replace tbl id (f.fname, addr)
          | _ -> ())
        f.body;
      Ast.iter_stmts
        (fun s ->
          match s with
          | Store (id, _, addr, _) -> Hashtbl.replace tbl id (f.fname, addr)
          | _ -> ())
        f.body)
    program.funcs;
  tbl

(* The heap of an abstract points-to target under the merged site map. *)
let heap_of_abs site_heap (a : Static_pta.Abs.t) =
  match a with
  | AGlobal g -> heap_for_site site_heap (Objname.Global_site g)
  | ASite s -> heap_for_site site_heap (Objname.Alloc_site s)
  | ATop -> None

(* Can the compiler prove this access always lands in [expected]? *)
let provable pta site_heap ~fname addr expected =
  let pts = Static_pta.points_to pta ~fname addr in
  Static_pta.is_precise pts
  && Static_pta.Abs_set.for_all
       (fun a ->
         match heap_of_abs site_heap a with
         | Some h -> Heap.equal_kind h expected
         | None -> false)
       pts

(* Expected heap of an access site: the single heap its profiled
   objects were assigned to, if unique. *)
let expected_heap assignment profiler site =
  let objs = Profiler.objects_at_site profiler site in
  let heaps =
    Objname.Set.fold
      (fun o acc ->
        match Classify.heap_of assignment o with
        | Some h -> h :: acc
        | None -> acc)
      objs []
    |> List.sort_uniq compare
  in
  match heaps with [ h ] -> Some h | _ -> None

(* ---- main entry ------------------------------------------------------ *)

let apply (program : Ast.program) (profiler : Profiler.t) (selection : Selection.t) =
  let site_heap = Selection.merged_site_heap selection in
  let control_spec =
    List.concat_map (fun (p : Selection.plan) -> p.assignment.control_spec)
      selection.plans
  in
  let next = ref program.next_id in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  (* Rewrite every function (allocation sites in callees of the
     parallel region must be re-homed too; sites outside any region
     are not in [site_heap] and stay untouched). *)
  let funcs =
    List.map
      (fun (f : Ast.func) ->
        { f with Ast.body = rewrite_block site_heap control_spec fresh f.body })
      program.funcs
  in
  let globals =
    List.map
      (fun (g : Ast.global) ->
        { g with Ast.gheap = heap_for_site site_heap (Objname.Global_site g.gname) })
      program.globals
  in
  let program' = { program with Ast.funcs; globals; next_id = !next } in
  Validate.check_exn program';
  (* Build the manifest against the rewritten program (same site ids). *)
  let pta = Static_pta.analyze program' in
  let access_index = index_access_sites program' in
  let checks = Hashtbl.create 256 in
  List.iter
    (fun (p : Selection.plan) ->
      let fp = p.assignment.footprint in
      let add_site ?redux_op site =
        let expected = expected_heap p.assignment profiler site in
        let elided =
          match (expected, Hashtbl.find_opt access_index site) with
          | Some h, Some (fname, addr) -> provable pta site_heap ~fname addr h
          | _ -> false
        in
        Hashtbl.replace checks site { Manifest.expected; elided; redux_op }
      in
      Hashtbl.iter (fun site () -> add_site site) fp.load_sites;
      Hashtbl.iter (fun site () -> add_site site) fp.store_sites;
      Hashtbl.iter (fun site () -> add_site site) fp.redux_load_sites;
      Hashtbl.iter (fun site op -> add_site ~redux_op:op site) fp.redux_store_sites)
    selection.plans;
  (* Redux load sites need their operator too (they are sanctioned
     reads of the redux heap). *)
  List.iter
    (fun (p : Selection.plan) ->
      let fp = p.assignment.footprint in
      Hashtbl.iter
        (fun site () ->
          match Hashtbl.find_opt checks site with
          | Some c when c.Manifest.redux_op = None ->
            (* Find the operator from the object assignment. *)
            let objs = Profiler.objects_at_site profiler site in
            let op =
              Objname.Set.fold
                (fun o acc ->
                  match Objname.Map.find_opt o p.assignment.redux_ops with
                  | Some op -> Some op
                  | None -> acc)
                objs None
            in
            Hashtbl.replace checks site { c with redux_op = op }
          | _ -> ())
        fp.redux_load_sites)
    selection.plans;
  let loops =
    List.map
      (fun (p : Selection.plan) ->
        { Manifest.loop = p.loop; func = p.func; var = p.var;
          predictions = p.assignment.predictions; scalars = p.scalars;
          deferred_io = p.deferred_io; extras = Selection.extras p;
          assignment = p.assignment; control_spec = p.assignment.control_spec })
      selection.plans
  in
  let manifest = { Manifest.checks; loops; site_heap } in
  { program = program'; manifest; selection }

(* Profile + select + transform in one call. *)
let pipeline program =
  let profiler, _st = Profiler.profile_run program in
  let selection = Selection.select program profiler in
  (apply program profiler selection, profiler)
