(* The speculation manifest: everything the compiler tells the runtime
   system about the transformed program.

   The paper communicates this through inserted calls (check_heap,
   private_read/private_write, value-prediction tests) plus the heap
   assignment baked into allocation sites.  Here the allocation
   re-homing is a real IR rewrite, while per-access expectations are
   carried in this manifest and enforced by the runtime at the same
   program points, with the same cost accounting; Pp_spec renders them
   inline for the Figure-2 style listing. *)

open Privateer_ir
open Privateer_profile
open Privateer_analysis

type site_check = {
  expected : Heap.kind option;
      (* separation check: the heap this access's pointer must carry.
         None when no single heap is expected. *)
  elided : bool; (* true: proved at compile time, no runtime cost *)
  redux_op : Ast.binop option; (* Some op: sanctioned reduction access *)
}

type loop_spec = {
  loop : Ast.node_id;
  func : string;
  var : string;
  predictions : Classify.prediction list;
  scalars : (string * Scalars.scalar_class) list;
  deferred_io : bool;
  extras : string list;
  assignment : Classify.assignment;
  control_spec : (Ast.node_id * bool) list;
}

type t = {
  checks : (Ast.node_id, site_check) Hashtbl.t;
  loops : loop_spec list;
  site_heap : (Objname.site * Heap.kind) list;
}

let find_check t id = Hashtbl.find_opt t.checks id

let loop_spec t loop = List.find_opt (fun l -> l.loop = loop) t.loops

let is_parallel_loop t loop = Option.is_some (loop_spec t loop)

(* Count of non-elided separation checks (ablation metric). *)
let live_check_count t =
  Hashtbl.fold
    (fun _ c acc -> if c.expected <> None && not c.elided then acc + 1 else acc)
    t.checks 0

let elided_check_count t =
  Hashtbl.fold (fun _ c acc -> if c.elided then acc + 1 else acc) t.checks 0

(* Static allocation sites (globals included) per heap — the paper's
   Table 3 "Replaced Static Allocation Sites" columns. *)
let site_counts t =
  let count h =
    List.length (List.filter (fun (_, h') -> Heap.equal_kind h h') t.site_heap)
  in
  [ (Heap.Private, count Heap.Private); (Heap.Short_lived, count Heap.Short_lived);
    (Heap.Read_only, count Heap.Read_only); (Heap.Redux, count Heap.Redux);
    (Heap.Unrestricted, count Heap.Unrestricted) ]
