(* The speculative DOALL executor (paper section 5).

   Intercepts a selected For loop and executes its iterations across
   simulated worker processes.  Each worker owns a copy-on-write
   snapshot of the main process (its page map), validates speculation
   inline (separation by address tag, privacy via the shadow metadata
   machine, short-lived lifetimes by allocation balance), contributes
   its state to a checkpoint every k iterations, and the checkpoint
   system performs phase-2 privacy validation, last-writer-wins
   merging, reduction combination and in-order I/O commit.  On
   misspeculation the main process recovers sequentially from the last
   valid checkpoint and parallel execution resumes.

   Timing is simulated: workers accumulate cycle clocks (application
   costs from the interpreter's table, runtime costs from
   Cost_model), and the invocation's wall time is the checkpointed
   maximum, charged back to the main interpreter's cycle counter. *)

open Privateer_ir
open Privateer_machine
open Privateer_interp
open Privateer_profile
open Privateer_analysis
open Privateer_transform
open Privateer_runtime

type config = {
  workers : int;
  checkpoint_period : int option; (* None: auto (aim ~6 per invocation) *)
  costs : Cost_model.t;
  inject : (int -> bool) option; (* injected misspeculation, by iteration *)
  validate : bool; (* false: disable all validation work (ablation) *)
  serial_commit : bool;
      (* true: model an STMLite-style central commit process that
         serially merges every contributed page (ablation; the paper
         notes STMLite's central commit "can quickly become an
         execution bottleneck"). *)
}

let default_config =
  { workers = 4; checkpoint_period = None; costs = Cost_model.default; inject = None;
    validate = true; serial_commit = false }

(* Per-worker simulated process. *)
type worker = {
  w_id : int;
  w_st : Interp.t;
  w_frame : Interp.frame;
  mutable w_clock : int; (* absolute simulated time *)
  mutable w_cycles_mark : int; (* st.cycles at last sample *)
  mutable w_beta : int;
  mutable w_iter : int;
  mutable w_sl_balance : int;
  mutable w_instr : int; (* instrumentation cycles this iteration *)
}

exception Worker_misspec of int * Misspec.reason (* iteration, reason *)

type t = {
  manifest : Manifest.t;
  config : config;
  stats : Stats.t;
  mutable fallbacks : int; (* invocations run sequentially (failed preheader) *)
}

let create manifest config =
  let stats = Stats.create () in
  stats.workers <- config.workers;
  { manifest; config; stats; fallbacks = 0 }

(* ---- worker hooks ---------------------------------------------------- *)

let charge_instr w n =
  Interp.charge w.w_st n;
  w.w_instr <- w.w_instr + n

let hooks t w : Hooks.t =
  let cm = t.config.costs in
  let stats = t.stats in
  let separation_check id addr =
    match Manifest.find_check t.manifest id with
    | Some { expected = Some h; elided = false; _ } ->
      charge_instr w cm.c_check_heap;
      stats.separation_checks <- stats.separation_checks + 1;
      if not (Heap.check addr h) then
        raise (Misspec.Misspeculation (Misspec.Separation { site = id; addr; expected = h }))
    | Some _ | None -> ()
  in
  let redux_ok id =
    match Manifest.find_check t.manifest id with
    | Some { redux_op = Some _; _ } -> true
    | Some _ | None -> false
  in
  let on_access ~is_read id ~addr ~size =
    separation_check id addr;
    match Heap.heap_of_addr addr with
    | Heap.Private ->
      if is_read then begin
        charge_instr w (cm.c_private_read * ((size + 7) / 8));
        stats.private_bytes_read <- stats.private_bytes_read + size;
        stats.cyc_private_read <- stats.cyc_private_read + cm.c_private_read;
        Shadow.access w.w_st.machine Shadow.Read ~addr ~size ~beta:w.w_beta
      end
      else begin
        charge_instr w (cm.c_private_write * ((size + 7) / 8));
        stats.private_bytes_written <- stats.private_bytes_written + size;
        stats.cyc_private_write <- stats.cyc_private_write + cm.c_private_write;
        Shadow.access w.w_st.machine Shadow.Write ~addr ~size ~beta:w.w_beta
      end
    | Heap.Read_only ->
      if not is_read then
        raise (Misspec.Misspeculation (Misspec.Foreign_heap { addr }))
    | Heap.Redux ->
      if not (redux_ok id) then
        raise (Misspec.Misspeculation (Misspec.Redux_violation { site = id; addr }))
    | Heap.Short_lived | Heap.Stack -> ()
    | Heap.Default | Heap.Unrestricted | Heap.Shadow ->
      raise (Misspec.Misspeculation (Misspec.Foreign_heap { addr }))
  in
  if not t.config.validate then Hooks.default
  else
    { Hooks.default with
      on_load = (fun id ~addr ~size ~value:_ -> on_access ~is_read:true id ~addr ~size);
      on_store = (fun id ~addr ~size ~value:_ -> on_access ~is_read:false id ~addr ~size);
      on_alloc =
        (fun _ ~ctx:_ _ heap ~addr:_ ~size:_ ->
          if Heap.equal_kind heap Heap.Short_lived then
            w.w_sl_balance <- w.w_sl_balance + 1);
      on_free =
        (fun _ ~addr:_ ~size:_ heap ->
          if Heap.equal_kind heap Heap.Short_lived then
            w.w_sl_balance <- w.w_sl_balance - 1);
      on_check_heap =
        (fun id ~addr heap ~ok ->
          if not ok then
            raise (Misspec.Misspeculation (Misspec.Separation { site = id; addr; expected = heap })));
      on_assert_value =
        (fun id ~observed:_ ~expected ~ok ->
          if not ok then
            raise
              (Misspec.Misspeculation
                 (Misspec.Value_prediction
                    { global = Printf.sprintf "<site %d>" id; offset = 0;
                      expected })));
      on_misspec =
        (fun id ~reason:_ ->
          raise (Misspec.Misspeculation (Misspec.Control { site = id }))) }

(* ---- value predictions ----------------------------------------------- *)

let prediction_addr (st : Interp.t) (p : Classify.prediction) =
  Hashtbl.find st.globals p.pred_global + p.pred_offset

(* Runtime-performed re-initialization of a predicted location at
   iteration start (a sanctioned private write). *)
let apply_predictions t w predictions =
  let cm = t.config.costs in
  List.iter
    (fun (p : Classify.prediction) ->
      let addr = prediction_addr w.w_st p in
      charge_instr w (cm.c_prediction + cm.base.c_store + cm.c_private_write);
      t.stats.private_bytes_written <- t.stats.private_bytes_written + 8;
      t.stats.cyc_private_write <- t.stats.cyc_private_write + cm.c_private_write;
      if t.config.validate then
        Shadow.access w.w_st.machine Shadow.Write ~addr ~size:8 ~beta:w.w_beta;
      Machine.set_int w.w_st.machine addr p.pred_value)
    predictions

(* End-of-iteration prediction validation (a sanctioned private read). *)
let validate_predictions t w predictions =
  let cm = t.config.costs in
  List.iter
    (fun (p : Classify.prediction) ->
      let addr = prediction_addr w.w_st p in
      charge_instr w (cm.c_prediction + cm.base.c_load + cm.c_private_read);
      t.stats.private_bytes_read <- t.stats.private_bytes_read + 8;
      t.stats.cyc_private_read <- t.stats.cyc_private_read + cm.c_private_read;
      if t.config.validate then
        Shadow.access w.w_st.machine Shadow.Read ~addr ~size:8 ~beta:w.w_beta;
      let v = Machine.get_int w.w_st.machine addr in
      if v <> p.pred_value then
        raise
          (Misspec.Misspeculation
             (Misspec.Value_prediction
                { global = p.pred_global; offset = p.pred_offset;
                  expected = p.pred_value })))
    predictions

(* ---- invocation ------------------------------------------------------ *)

(* Reduction registers of a loop spec. *)
let reduction_regs (spec : Manifest.loop_spec) =
  List.filter_map
    (fun (name, cls) ->
      match (cls : Scalars.scalar_class) with
      | Reduction_reg op -> Some (name, op)
      | Induction | Private_reg | Live_in -> None)
    spec.scalars

(* Redux heap ranges: (base address, byte size, operator). *)
let redux_ranges (st : Interp.t) (spec : Manifest.loop_spec) =
  Objname.Map.fold
    (fun name op acc ->
      match name with
      | Objname.Global g -> (
        match (Ast.find_global st.program g, Hashtbl.find_opt st.globals g) with
        | Some gl, Some base -> (base, max 8 gl.gbytes, op) :: acc
        | _ -> acc)
      | Objname.Site _ | Objname.Unknown -> acc)
    spec.assignment.redux_ops []

(* Absolute values of the reduction words at (re)spawn time; worker
   partials are folded over these at each checkpoint. *)
let read_redux_base (st : Interp.t) ranges =
  List.concat_map
    (fun (base, size, _op) ->
      List.init ((size + 7) / 8) (fun i ->
          let addr = base + (8 * i) in
          let bits, is_float = Machine.read_word st.machine addr in
          (addr, Value.of_bits bits is_float)))
    ranges

let write_value_word machine addr (v : Value.t) =
  let bits, is_float = Value.to_bits v in
  Machine.write_word machine addr bits is_float

let spawn_workers t (st : Interp.t) fr spec ranges n_workers ~now =
  let cm = t.config.costs in
  List.init n_workers (fun i ->
      let wst = Interp.fork st in
      let frame = Interp.copy_frame fr in
      (* Reduction registers restart from the operator's identity. *)
      List.iter
        (fun (name, op) ->
          Hashtbl.replace frame.Interp.locals name (Reduction.identity_value op))
        (reduction_regs spec);
      (* The reduction heap is replaced by identity-initialized pages
         (paper 3.2). *)
      List.iter
        (fun (base, size, op) ->
          let bits, is_float = Reduction.identity_bits op in
          for wd = 0 to ((size + 7) / 8) - 1 do
            Machine.write_word wst.machine (base + (8 * wd)) bits is_float
          done)
        ranges;
      Memory.clear_dirty wst.machine.Machine.mem;
      let w =
        { w_id = i; w_st = wst; w_frame = frame; w_clock = now + ((i + 1) * cm.c_fork);
          w_cycles_mark = wst.cycles; w_beta = 0; w_iter = 0; w_sl_balance = 0;
          w_instr = 0 }
      in
      t.stats.cyc_spawn <- t.stats.cyc_spawn + ((i + 1) * cm.c_fork);
      wst.hooks <- hooks t w;
      w)

(* Execute one iteration on a worker.  Raises Worker_misspec. *)
let exec_iteration t w ~var ~init_value ~iter ~interval_start ~body ~predictions ~io =
  w.w_iter <- iter;
  w.w_beta <- Shadow.timestamp ~iter ~interval_start;
  w.w_sl_balance <- 0;
  w.w_instr <- 0;
  let cycles_before = w.w_st.cycles in
  w.w_st.emit <- (fun s -> Deferred_io.emit io ~iter s);
  (try
     apply_predictions t w predictions;
     Hashtbl.replace w.w_frame.Interp.locals var (Value.VInt (init_value + iter));
     Interp.exec_block w.w_st w.w_frame body;
     validate_predictions t w predictions;
     if t.config.validate && w.w_sl_balance <> 0 then
       raise
         (Misspec.Misspeculation (Misspec.Short_lived_escape { unfreed = w.w_sl_balance }));
     match t.config.inject with
     | Some f when f iter -> raise (Misspec.Misspeculation Misspec.Injected)
     | Some _ | None -> ()
   with
  | Misspec.Misspeculation r ->
    let delta = w.w_st.cycles - cycles_before in
    w.w_clock <- w.w_clock + delta;
    raise (Worker_misspec (iter, r))
  | Interp.Runtime_error msg ->
    let delta = w.w_st.cycles - cycles_before in
    w.w_clock <- w.w_clock + delta;
    raise (Worker_misspec (iter, Misspec.Worker_fault msg)));
  let delta = w.w_st.cycles - cycles_before in
  w.w_clock <- w.w_clock + delta;
  t.stats.cyc_useful <- t.stats.cyc_useful + (delta - w.w_instr);
  t.stats.iterations <- t.stats.iterations + 1

(* ---- main invocation driver ----------------------------------------- *)

let auto_period n = max 1 (min Shadow.max_interval ((n + 5) / 6))

(* Sequential (non-speculative) execution of iterations [lo, hi] on
   the main process: recovery (paper 5.3) and preheader fallback. *)
let run_sequentially (st : Interp.t) fr ~var ~init_value ~body ~lo ~hi =
  let saved_hooks = st.hooks in
  st.hooks <- Hooks.default;
  let c0 = st.cycles in
  for iter = lo to hi do
    Hashtbl.replace fr.Interp.locals var (Value.VInt (init_value + iter));
    Interp.exec_block st fr body
  done;
  st.hooks <- saved_hooks;
  st.cycles - c0

let run_invocation t (st : Interp.t) fr (spec : Manifest.loop_spec) ~var ~init_value
    ~n ~body =
  let cm = t.config.costs in
  let stats = t.stats in
  stats.invocations <- stats.invocations + 1;
  let predictions = spec.predictions in
  let ranges = redux_ranges st spec in
  let reg_ops = reduction_regs spec in
  let io = Deferred_io.create () in
  let emit_main = st.emit in
  (* Preheader: live-in values must match the predictions, otherwise
     fall back to sequential, non-speculative execution. *)
  let preheader_ok =
    List.for_all
      (fun (p : Classify.prediction) ->
        Machine.get_int st.machine (prediction_addr st p) = p.pred_value)
      predictions
  in
  if not preheader_ok then begin
    t.fallbacks <- t.fallbacks + 1;
    let cycles = run_sequentially st fr ~var ~init_value ~body ~lo:0 ~hi:(n - 1) in
    ignore cycles
  end
  else begin
    let k = match t.config.checkpoint_period with Some k -> k | None -> auto_period n in
    let k = max 1 (min Shadow.max_interval k) in
    let timeline = ref 0 in
    let c_start = st.cycles in
    let predictions_hold () =
      List.for_all
        (fun (p : Classify.prediction) ->
          Machine.get_int st.machine (prediction_addr st p) = p.pred_value)
        predictions
    in
    (* Reduction bases: absolute values at (re)spawn time. *)
    let rec parallel_from start_iter =
      if start_iter >= n then ()
      else if not (predictions_hold ()) then begin
        (* The recovered (or entry) state contradicts the value
           predictions: speculation cannot resume yet.  Execute one
           iteration non-speculatively and try again — the prediction
           typically re-establishes itself (e.g. the queue drains). *)
        let rec_cycles =
          run_sequentially st fr ~var ~init_value ~body ~lo:start_iter ~hi:start_iter
        in
        stats.recovered_iterations <- stats.recovered_iterations + 1;
        stats.cyc_recovery <- stats.cyc_recovery + rec_cycles;
        timeline := !timeline + rec_cycles;
        parallel_from (start_iter + 1)
      end
      else begin
        let nw = t.config.workers in
        let workers = spawn_workers t st fr spec ranges nw ~now:!timeline in
        let redux_base = read_redux_base st ranges in
        let reg_base =
          List.map (fun (name, _) -> (name, Hashtbl.find fr.Interp.locals name)) reg_ops
        in
        let assigned w_id iter = (iter - start_iter) mod nw = w_id in
        let rec interval_loop i0 =
          let hi = min n (i0 + k) in
          (* Execute every worker's iterations of [i0, hi). *)
          let misspecs = ref [] in
          List.iter
            (fun w ->
              try
                for iter = i0 to hi - 1 do
                  if assigned w.w_id iter then
                    exec_iteration t w ~var ~init_value ~iter ~interval_start:i0 ~body
                      ~predictions ~io
                done
              with Worker_misspec (iter, reason) ->
                misspecs := (iter, reason) :: !misspecs)
            workers;
          (* Contributions and phase-2 validation. *)
          let contributions =
            if !misspecs <> [] then []
            else
              List.map
                (fun w ->
                  let reg_partials =
                    List.map
                      (fun (name, _) ->
                        (name, Hashtbl.find w.w_frame.Interp.locals name))
                      reg_ops
                  in
                  let c =
                    Checkpoint.contribution_of_worker ~worker:w.w_id
                      ~interval_start:i0 w.w_st.machine ~redux_ranges:ranges
                      ~reg_partials
                  in
                  let copy_cost =
                    cm.c_checkpoint_base + (c.Checkpoint.pages_touched * cm.c_checkpoint_page)
                  in
                  w.w_clock <- w.w_clock + copy_cost;
                  stats.cyc_checkpoint <- stats.cyc_checkpoint + copy_cost;
                  c)
                workers
          in
          let merged =
            if contributions = [] then None else Some (Checkpoint.merge contributions)
          in
          let violation =
            match (!misspecs, merged) with
            | (_ :: _ as ms), _ ->
              (* Workers record the earliest misspeculated iteration
                 (paper 5.3). *)
              let earliest_iter, reason =
                List.fold_left
                  (fun (bi, br) (i, r) -> if i < bi then (i, r) else (bi, br))
                  (max_int, Misspec.Injected) ms
              in
              Some (earliest_iter, reason)
            | [], Some m -> (
              match m.Checkpoint.violation with
              | Some r -> Some (hi - 1, r) (* unknown iteration: recover interval *)
              | None -> None)
            | [], None -> None
          in
          match violation with
          | Some (miss_iter, _reason) ->
            (* Recovery (paper 5.3): squash, restore to the last valid
               checkpoint (the main state already holds it), re-execute
               sequentially through the misspeculated iteration. *)
            stats.misspeculations <- stats.misspeculations + 1;
            timeline := List.fold_left (fun acc w -> max acc w.w_clock) !timeline workers;
            Deferred_io.discard_from io ~from:i0;
            st.emit <- emit_main;
            let rec_cycles =
              run_sequentially st fr ~var ~init_value ~body ~lo:i0 ~hi:miss_iter
            in
            stats.recovered_iterations <- stats.recovered_iterations + (miss_iter - i0 + 1);
            stats.cyc_recovery <- stats.cyc_recovery + rec_cycles;
            timeline := !timeline + rec_cycles;
            parallel_from (miss_iter + 1)
          | None ->
            let m = Option.get merged in
            (* Commit: overlay private bytes, absolute reduction values,
               deferred output, then advance. *)
            Checkpoint.apply_overlay st.machine m;
            List.iter
              (fun (addr, v) -> write_value_word st.machine addr v)
              (Checkpoint.merge_redux ~redux_ranges:ranges ~base:redux_base
                 m.Checkpoint.contributions);
            List.iter
              (fun (name, v) -> Hashtbl.replace fr.Interp.locals name v)
              (Checkpoint.merge_reg_partials ~ops:reg_ops ~base:reg_base
                 m.Checkpoint.contributions);
            Deferred_io.commit_range io ~lo:i0 ~hi ~sink:emit_main;
            stats.checkpoints <- stats.checkpoints + 1;
            (* Metadata reset + dirty clear per worker. *)
            List.iter
              (fun w ->
                let pages = Shadow.reset_interval w.w_st.machine in
                let cost = pages * cm.c_reset_page in
                w.w_clock <- w.w_clock + cost;
                stats.cyc_checkpoint <- stats.cyc_checkpoint + cost;
                Memory.clear_dirty w.w_st.machine.Machine.mem)
              workers;
            (* Workers merge their own contributions into the
               checkpoint object (paper 5.2: per-checkpoint locks, no
               barrier); the per-page copy cost is already on their
               clocks.  The checkpoint retires when the last worker
               has added its state. *)
            let serial_tail =
              if t.config.serial_commit then cm.c_merge_page * m.Checkpoint.total_pages
              else 0
            in
            let checkpoint_done =
              List.fold_left (fun acc w -> max acc w.w_clock) 0 workers
              + cm.c_checkpoint_base + serial_tail
            in
            (* A serial commit stalls every worker behind the central
               process (the STMLite bottleneck). *)
            if t.config.serial_commit then
              List.iter (fun w -> w.w_clock <- max w.w_clock checkpoint_done) workers;
            if hi >= n then begin
              (* Final commit: allocator state, frame scalars, join. *)
              let last_iter = n - 1 in
              let last_w =
                List.find (fun w -> assigned w.w_id last_iter) workers
              in
              Machine.commit_allocators st.machine ~last:last_w.w_st.machine
                ~all:(List.map (fun w -> w.w_st.machine) workers);
              List.iter
                (fun (name, cls) ->
                  match (cls : Scalars.scalar_class) with
                  | Private_reg -> (
                    match Hashtbl.find_opt last_w.w_frame.Interp.locals name with
                    | Some v -> Hashtbl.replace fr.Interp.locals name v
                    | None -> ())
                  | Induction | Live_in | Reduction_reg _ -> ())
                spec.scalars;
              let end_time = checkpoint_done + cm.c_join in
              List.iter
                (fun w ->
                  stats.cyc_join <- stats.cyc_join + max 0 (end_time - w.w_clock))
                workers;
              timeline := max !timeline end_time
            end
            else interval_loop hi
        in
        interval_loop start_iter
      end
    in
    parallel_from 0;
    (* Induction variable's final value, as after a sequential For. *)
    Hashtbl.replace fr.Interp.locals var (Value.VInt (init_value + n));
    st.emit <- emit_main;
    stats.wall_cycles <- stats.wall_cycles + !timeline;
    (* Charge the invocation's wall time to the main process clock. *)
    st.cycles <- c_start + !timeline
  end

(* ---- installation ---------------------------------------------------- *)

(* Install the executor on an interpreter: selected loops run in
   parallel, everything else is untouched. *)
let install t (st : Interp.t) =
  st.parallel_for <-
    Some
      (fun st fr stmt ->
        match stmt with
        | Ast.For (loop, var, init_e, limit_e, body) -> (
          match Manifest.loop_spec t.manifest loop with
          | None -> false
          | Some spec ->
            let init_value = Value.as_int (Interp.eval st fr init_e) in
            let limit = Value.as_int (Interp.eval st fr limit_e) in
            let n = limit - init_value in
            if n <= 0 then begin
              Hashtbl.replace fr.Interp.locals var (Value.VInt init_value);
              true
            end
            else begin
              run_invocation t st fr spec ~var ~init_value ~n ~body;
              true
            end)
        | _ -> false)

(* One-shot: run a transformed program under the speculative runtime. *)
let run ?(config = default_config) (tr : Transform.result) =
  let st = Interp.create ~cost:config.costs.base tr.program in
  let t = create tr.manifest config in
  t.stats.separation_checks_elided <- Manifest.elided_check_count tr.manifest;
  install t st;
  ignore (Interp.run_entry st);
  (st, t)
