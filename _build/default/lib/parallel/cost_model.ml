(* Runtime-system cost parameters for the simulated parallel machine.

   These stand in for the paper's measured overheads on the 24-core
   Xeon: fork latency dominates spawn, checkpoint costs are
   page-granular copies, and privacy validation is a few instructions
   of metadata arithmetic per access (paper sections 5.1-5.2, Figure
   8).  Only relative magnitudes matter for reproducing the
   evaluation's shape; the ablation bench sweeps them. *)

type t = {
  base : Privateer_interp.Cost.t; (* application instruction costs *)
  c_private_read : int; (* shadow metadata check per private-byte read *)
  c_private_write : int; (* shadow metadata update per private-byte write *)
  c_check_heap : int; (* non-elided separation check (bit arithmetic) *)
  c_fork : int; (* per-worker process spawn latency *)
  c_join : int; (* per-invocation join / final-commit fixed cost *)
  c_checkpoint_base : int; (* per worker per checkpoint fixed cost *)
  c_checkpoint_page : int; (* copying one dirty page into a checkpoint *)
  c_merge_page : int; (* merging/validating one contributed page *)
  c_reset_page : int; (* metadata-reset scan of one shadow page *)
  c_prediction : int; (* per value prediction per iteration *)
}

(* Calibration note: the paper's fork latency (~hundreds of
   microseconds) is amortized over loops running for seconds; our
   inputs are scaled down by roughly three orders of magnitude, so the
   fixed runtime costs are scaled to keep the same *ratios* to loop
   work.  EXPERIMENTS.md records the calibration; the ablation bench
   sweeps these. *)
let default =
  { base = Privateer_interp.Cost.default; c_private_read = 4; c_private_write = 4;
    c_check_heap = 2; c_fork = 1_200; c_join = 800; c_checkpoint_base = 400;
    c_checkpoint_page = 150; c_merge_page = 200; c_reset_page = 80;
    c_prediction = 12 }
