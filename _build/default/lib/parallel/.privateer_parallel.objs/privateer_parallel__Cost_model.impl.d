lib/parallel/cost_model.ml: Privateer_interp
