(* Reductions: 052.alvinn's weight-delta accumulators.

   The hot loop updates two global arrays only through [x = x +. e]
   and accumulates the epoch error in a scalar — the paper's memory
   and register reductions.  Each worker accumulates partials over
   identity-initialized reduction pages; checkpoints merge them with
   the operator.

   Run with: dune exec examples/reduction_alvinn.exe *)

open Privateer
open Privateer_workloads

let () =
  let wl = Alvinn.workload in
  let program = Workload.program wl in
  let tr, _ = Pipeline.compile ~setup:(Workload.setup wl Train) program in
  let spec = List.hd tr.manifest.loops in
  print_endline "memory reductions (object -> operator):";
  Privateer_profile.Objname.Map.iter
    (fun name op ->
      Printf.printf "  %s -> %s\n"
        (Privateer_profile.Objname.to_string name)
        (Privateer_ir.Pp.binop_str op))
    spec.assignment.redux_ops;
  print_endline "register reductions:";
  List.iter
    (fun (name, cls) ->
      match (cls : Privateer_analysis.Scalars.scalar_class) with
      | Reduction_reg op ->
        Printf.printf "  %s -> %s\n" name (Privateer_ir.Pp.binop_str op)
      | Induction | Private_reg | Live_in -> ())
    spec.scalars;
  let seq = Pipeline.run_sequential ~setup:(Workload.setup wl Ref) program in
  let config = { Privateer_parallel.Executor.default_config with workers = 16 } in
  let par = Pipeline.run_parallel ~setup:(Workload.setup wl Ref) ~config tr in
  Printf.printf "\nspeedup %.2fx over %d epochs (%d parallel invocations)\n"
    (float_of_int seq.seq_cycles /. float_of_int par.par_cycles)
    par.stats.invocations par.stats.invocations;
  (* Floating-point reductions re-associate, so outputs may differ in
     the last bits; compare with a tolerance. *)
  let close a b =
    String.equal a b
    ||
    let fa = Scanf.sscanf_opt a "epoch %d rmse %f" (fun _ f -> f) in
    let fb = Scanf.sscanf_opt b "epoch %d rmse %f" (fun _ f -> f) in
    match (fa, fb) with
    | Some x, Some y -> abs_float (x -. y) < 1e-6
    | _ -> false
  in
  let la = String.split_on_char '\n' seq.seq_output in
  let lb = String.split_on_char '\n' par.par_output in
  let ok = List.length la = List.length lb && List.for_all2 close la lb in
  Printf.printf "outputs match (within reduction reassociation tolerance): %b\n" ok
