(* Layout sensitivity: where LRPD works and where only Privateer does
   (paper Table 1).

   On a FORTRAN-style kernel whose accesses are all within named
   global arrays, the LRPD shadow-array test applies and passes.  Add
   one linked-list node to the loop and LRPD becomes inapplicable —
   the memory-layout problem — while Privateer still privatizes it via
   speculative separation.

   Run with: dune exec examples/lrpd_comparison.exe *)

open Privateer
open Privateer_baselines

(* Array-only kernel: scratch is privatizable, out is affine. *)
let array_source =
  {|
global n;
global scratch[64];
global out[512];

fn main() {
  var rounds = n;
  for (k = 0; k < rounds) {
    for (i = 0; i < 64) {
      scratch[i] = k + i * i;
    }
    var s = 0;
    for (j = 0; j < 64) {
      s = s + scratch[j];
    }
    out[k] = s;
  }
  return 0;
}
|}

(* The same kernel routed through a heap-allocated list node. *)
let pointer_source =
  {|
global n;
global scratch[64];
global out[512];

fn main() {
  var rounds = n;
  for (k = 0; k < rounds) {
    var node = malloc(2);
    node[0] = k;
    for (i = 0; i < 64) {
      scratch[i] = node[0] + i * i;
    }
    var s = 0;
    for (j = 0; j < 64) {
      s = s + scratch[j];
    }
    out[k] = s;
    free(node);
  }
  return 0;
}
|}

let survey_hot name source =
  let program = Pipeline.parse source in
  let setup st = Pipeline.set_global st "n" 200 in
  let profiler, _ = Pipeline.profile ~setup program in
  let probe = Feature_matrix.probe_program ~name program profiler in
  Printf.printf "%-12s LRPD: %-12s Privateer: %s\n" name
    (if probe.lrpd_applicable then "applicable" else "inapplicable")
    (if probe.privateer_plans then "privatizes" else "cannot");
  if not probe.lrpd_applicable then Printf.printf "  (LRPD: %s)\n" probe.lrpd_reason;
  (* When LRPD applies, actually run its shadow-array test. *)
  if probe.lrpd_applicable then begin
    match Privateer_analysis.Selection.select program profiler with
    | { plans = p :: _; _ } ->
      let result = Lrpd.run_test program ~setup ~loop:p.loop in
      Printf.printf "  LRPD shadow test: %s (%d words marked)\n"
        (if result.passed then "PASS (loop is privatizable)" else "FAIL")
        result.marked_words
    | _ -> ()
  end

let () =
  print_endline "paper Table 1 (transcribed):";
  Privateer_support.Table.print (Feature_matrix.to_table ());
  print_newline ();
  survey_hot "array-only" array_source;
  survey_hot "linked" pointer_source
