examples/quickstart.ml: List Pipeline Printf Privateer Privateer_analysis Privateer_parallel String
