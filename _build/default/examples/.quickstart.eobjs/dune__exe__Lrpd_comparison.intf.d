examples/lrpd_comparison.mli:
