examples/reduction_alvinn.mli:
