examples/misspec_recovery.mli:
