examples/dijkstra_pipeline.mli:
