examples/quickstart.mli:
