(* The paper's motivating example (Figures 2 and 4), staged.

   Walks dijkstra through every compiler stage, printing what each one
   produces: the profile's object map, the heap assignment, the
   transformed code with its re-homed allocation sites, and the
   speculative parallel run.

   Run with: dune exec examples/dijkstra_pipeline.exe *)

open Privateer
open Privateer_workloads
open Privateer_profile

let () =
  let wl = Dijkstra.workload in
  let program = Workload.program wl in
  print_endline "=== 1. pointer-to-object profile (training input) ===";
  let profiler, _ = Pipeline.profile ~setup:(Workload.setup wl Train) program in
  Printf.printf "objects observed: %d\n"
    (Objname.Set.cardinal (Profiler.all_objects profiler));
  List.iter
    (fun (loop, cycles) -> Printf.printf "  loop %d: %d profiled cycles\n" loop cycles)
    (Profiler.loops_by_weight profiler);

  print_endline "\n=== 2. classification and selection (Figure 4) ===";
  let selection = Privateer_analysis.Selection.select program profiler in
  List.iter
    (fun (p : Privateer_analysis.Selection.plan) ->
      print_endline (Privateer_analysis.Classify.to_string p.assignment);
      List.iter
        (fun (pr : Privateer_analysis.Classify.prediction) ->
          Printf.printf "  value prediction: %s+%d == %d\n" pr.pred_global
            pr.pred_offset pr.pred_value)
        p.assignment.predictions)
    selection.plans;

  print_endline "\n=== 3. transformed program (Figure 2b analogue) ===";
  let tr = Privateer_transform.Transform.apply program profiler selection in
  (* Show just the queue functions, where the interesting rewrites are. *)
  List.iter
    (fun (f : Privateer_ir.Ast.func) ->
      if f.fname = "enqueue" || f.fname = "dequeue" then
        print_endline (Privateer_ir.Pp.func_str f))
    tr.program.funcs;
  Printf.printf "separation checks: %d live, %d elided at compile time\n"
    (Privateer_transform.Manifest.live_check_count tr.manifest)
    (Privateer_transform.Manifest.elided_check_count tr.manifest);

  print_endline "\n=== 4. speculative parallel execution (ref input) ===";
  let seq = Pipeline.run_sequential ~setup:(Workload.setup wl Ref) program in
  let config = { Privateer_parallel.Executor.default_config with workers = 24 } in
  let par = Pipeline.run_parallel ~setup:(Workload.setup wl Ref) ~config tr in
  Printf.printf "speedup %.2fx on %d workers; outputs identical: %b\n"
    (float_of_int seq.seq_cycles /. float_of_int par.par_cycles)
    config.workers
    (String.equal seq.seq_output par.par_output);
  Printf.printf "checkpoints: %d, misspeculations: %d\n" par.stats.checkpoints
    par.stats.misspeculations
