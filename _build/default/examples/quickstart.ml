(* Quickstart: privatize and parallelize a small Cmini program.

   The program repeatedly fills and sums a reused global scratch
   buffer — a textbook privatization target: every outer iteration is
   independent except for the false dependences on [scratch].

   Run with: dune exec examples/quickstart.exe *)

open Privateer

let source =
  {|
global n;
global scratch[256];   // reused every iteration: false dependences
global results[512];

fn fill(k) {
  for (i = 0; i < 256) {
    scratch[i] = k * i + (i & 7);
  }
}

fn total() {
  var s = 0;
  for (i = 0; i < 256) {
    s = s + scratch[i];
  }
  return s;
}

fn main() {
  var rounds = n;
  for (k = 0; k < rounds) {
    fill(k);
    results[k] = total();
  }
  var sum = 0;
  for (k2 = 0; k2 < rounds) {
    sum = sum + results[k2];
  }
  print("sum %d\n", sum);
  return 0;
}
|}

let () =
  let program = Pipeline.parse source in
  let setup st = Pipeline.set_global st "n" 400 in
  (* 1. Profile a training run, classify, select, transform. *)
  let tr, _profiler = Pipeline.compile ~setup program in
  List.iter
    (fun (p : Privateer_analysis.Selection.plan) ->
      Printf.printf "Privateer selected loop %d in %s:\n%s\n\n" p.loop p.func
        (Privateer_analysis.Classify.to_string p.assignment))
    tr.selection.plans;
  (* 2. Run the original sequentially and the privatized program on 16
        simulated worker processes. *)
  let seq = Pipeline.run_sequential ~setup program in
  let config = { Privateer_parallel.Executor.default_config with workers = 16 } in
  let par = Pipeline.run_parallel ~setup ~config tr in
  Printf.printf "sequential: %d cycles -> parallel: %d cycles (%.2fx)\n"
    seq.seq_cycles par.par_cycles
    (float_of_int seq.seq_cycles /. float_of_int par.par_cycles);
  Printf.printf "outputs identical: %b\n" (String.equal seq.seq_output par.par_output);
  print_string par.par_output
