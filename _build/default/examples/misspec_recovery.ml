(* Misspeculation and recovery (paper section 5.3, Figure 9).

   Injects artificial misspeculation into swaptions at increasing
   rates and shows (a) output correctness is always preserved by
   checkpoint-based recovery, and (b) performance degrades with the
   misspeculation rate, since each event squashes an interval and
   re-executes it sequentially.

   Run with: dune exec examples/misspec_recovery.exe *)

open Privateer
open Privateer_workloads

(* Deterministically spaced injection. *)
let spaced rate =
  if rate <= 0.0 then None
  else
    Some
      (fun iter ->
        int_of_float (float_of_int (iter + 1) *. rate)
        > int_of_float (float_of_int iter *. rate))

let () =
  let wl = Swaptions.workload in
  let program = Workload.program wl in
  let tr, _ = Pipeline.compile ~setup:(Workload.setup wl Train) program in
  let seq = Pipeline.run_sequential ~setup:(Workload.setup wl Ref) program in
  let table =
    Privateer_support.Table.create
      ~aligns:[ Right; Right; Right; Right; Right ]
      [ "misspec rate"; "speedup"; "misspecs"; "recovered iters"; "output ok" ]
  in
  List.iter
    (fun rate ->
      let config =
        { Privateer_parallel.Executor.default_config with workers = 24;
          inject = spaced rate }
      in
      let par = Pipeline.run_parallel ~setup:(Workload.setup wl Ref) ~config tr in
      Privateer_support.Table.add_row table
        [ Printf.sprintf "%.2f%%" (100.0 *. rate);
          Privateer_support.Table.fx
            (float_of_int seq.seq_cycles /. float_of_int par.par_cycles);
          string_of_int par.stats.misspeculations;
          string_of_int par.stats.recovered_iterations;
          string_of_bool (String.equal seq.seq_output par.par_output) ])
    [ 0.0; 0.002; 0.005; 0.01; 0.02; 0.05 ];
  Privateer_support.Table.print table
