#!/usr/bin/env python3
"""Fail on dead relative links in the repository's markdown docs.

Scans README.md and docs/*.md for inline markdown links and images
(``[text](target)``), skips absolute URLs (http/https/mailto) and
pure in-page anchors (``#...``), resolves everything else relative to
the containing file, and exits 1 listing every target that does not
exist.  Anchor fragments on relative links (``RUNTIME.md#host-parallelism``)
are checked for file existence only — heading slugs are not verified.

Usage: python3 tools/check_links.py  (from the repository root)
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP = ("http://", "https://", "mailto:")


def targets(md: Path):
    text = md.read_text(encoding="utf-8")
    # Strip fenced code blocks: link syntax inside them is illustrative.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for m in LINK.finditer(text):
        yield m.group(1)


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    files = sorted([root / "README.md", *(root / "docs").glob("*.md")])
    dead = []
    checked = 0
    for md in files:
        if not md.exists():
            continue
        for target in targets(md):
            if target.startswith(SKIP) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            checked += 1
            if not (md.parent / path).exists():
                dead.append(f"{md.relative_to(root)}: dead link -> {target}")
    for line in dead:
        print(line, file=sys.stderr)
    print(f"checked {checked} relative links in {len(files)} files: "
          f"{'OK' if not dead else f'{len(dead)} dead'}")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
