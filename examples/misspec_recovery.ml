(* Misspeculation and recovery (paper section 5.3, Figure 9).

   Injects artificial misspeculation into swaptions at increasing
   rates and shows (a) output correctness is always preserved by
   checkpoint-based recovery, (b) performance degrades with the
   misspeculation rate, since each event squashes an interval and
   re-executes it sequentially, and (c) the adaptive checkpoint
   period recovers much of that loss: once failures cluster, the
   engine halves the interval — bounding each squash-and-re-execute —
   and grows it back over clean intervals, so checkpoint + recovery
   cycles drop versus the fixed period at identical output.

   Run with: dune exec examples/misspec_recovery.exe *)

open Privateer
open Privateer_workloads

(* Deterministically spaced injection. *)
let spaced rate =
  if rate <= 0.0 then None
  else
    Some
      (fun iter ->
        int_of_float (float_of_int (iter + 1) *. rate)
        > int_of_float (float_of_int iter *. rate))

let () =
  let wl = Swaptions.workload in
  let program = Workload.program wl in
  let tr, _ = Pipeline.compile ~setup:(Workload.setup wl Train) program in
  let seq = Pipeline.run_sequential ~setup:(Workload.setup wl Ref) program in
  let run ~rate ~adaptive =
    let config =
      { Privateer_parallel.Executor.default_config with workers = 24;
        inject = spaced rate; adaptive_period = adaptive }
    in
    Pipeline.run_parallel ~setup:(Workload.setup wl Ref) ~config tr
  in
  let table =
    Privateer_support.Table.create
      ~aligns:[ Right; Right; Right; Right; Right; Right; Right ]
      [ "misspec rate"; "period"; "speedup"; "misspecs"; "recovered iters";
        "ckpt+rec cycles"; "output ok" ]
  in
  List.iter
    (fun rate ->
      List.iter
        (fun adaptive ->
          let par = run ~rate ~adaptive in
          Privateer_support.Table.add_row table
            [ Printf.sprintf "%.2f%%" (100.0 *. rate);
              (if adaptive then "adaptive" else "fixed");
              Privateer_support.Table.fx
                (float_of_int seq.seq_cycles /. float_of_int par.par_cycles);
              string_of_int par.stats.misspeculations;
              string_of_int par.stats.recovered_iterations;
              string_of_int (par.stats.cyc_checkpoint + par.stats.cyc_recovery);
              string_of_bool (String.equal seq.seq_output par.par_output) ])
        (if rate = 0.0 then [ false ] else [ false; true ]))
    [ 0.0; 0.002; 0.005; 0.01; 0.02; 0.05 ];
  Privateer_support.Table.print table;
  (* The acceptance check: on a misspec-heavy configuration the
     adaptive period must beat the fixed one on checkpoint + recovery
     cycles at equal output. *)
  let rate = 0.02 in
  let fixed = run ~rate ~adaptive:false in
  let adaptive = run ~rate ~adaptive:true in
  let cost (p : Pipeline.par_run) = p.stats.cyc_checkpoint + p.stats.cyc_recovery in
  Printf.printf
    "\nat %.1f%% injection: fixed ckpt+rec %d cycles, adaptive %d cycles (%.0f%% less), outputs %s\n"
    (100.0 *. rate) (cost fixed) (cost adaptive)
    (100.0 *. (1.0 -. (float_of_int (cost adaptive) /. float_of_int (cost fixed))))
    (if
       String.equal fixed.par_output adaptive.par_output
       && String.equal fixed.par_output seq.seq_output
     then "identical"
     else "DIFFER (bug)");
  assert (cost adaptive < cost fixed)
