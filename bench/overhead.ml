(* The `overhead` experiment: host-time and simulated-cycle breakdowns
   for the metadata hot paths the page-index refactor targets —
   inline shadow validation, checkpoint extraction + merge, and
   checkpoint metadata reset.

   Host times compare the indexed implementation against the retained
   per-byte reference (Shadow_reference), so the wall-clock effect of
   range-granular metadata is measured inside one binary.  Simulated
   cycles come from a real dijkstra run at 24 workers: they are part
   of the deterministic cycle model and must NOT move across
   refactors (the page indexes change host time only).

   Results are printed as a table and written to BENCH_overhead.json
   so the perf trajectory is tracked PR over PR.  Iteration counts
   scale down via OVERHEAD_ITERS (CI smoke runs use a small value). *)

open Privateer_ir
open Privateer_machine
open Privateer_runtime
open Privateer_support

let iters () =
  match Sys.getenv_opt "OVERHEAD_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 200)
  | None -> 200

let now () = Unix.gettimeofday ()

(* ns per call of [f], amortized over [reps] calls x [rounds] rounds,
   with [prep] run untimed before each round (resets mutated state). *)
let time_ns ?(prep = fun () -> ()) ~rounds ~reps f =
  prep ();
  f (); (* warmup *)
  let total = ref 0.0 in
  for _ = 1 to rounds do
    prep ();
    let t0 = now () in
    for _ = 1 to reps do
      f ()
    done;
    total := !total +. (now () -. t0)
  done;
  !total *. 1e9 /. float_of_int (rounds * reps)

let words = 512 (* one page of private words *)

let populate access m =
  for i = 0 to words - 1 do
    access m Shadow.Write ~addr:(Heap.base Heap.Private + (i * 8)) ~size:8 ~beta:5
  done

(* ---- the three hot paths ---------------------------------------------- *)

(* 8-byte private-write validation, amortized per access. *)
let bench_validation access =
  let m = Machine.create () in
  let i = ref 0 in
  time_ns ~rounds:(iters ()) ~reps:words (fun () ->
      access m Shadow.Write
        ~addr:(Heap.base Heap.Private + (!i mod words * 8))
        ~size:8 ~beta:7;
      incr i)

(* Metadata reset of one fully-timestamped page, per reset; the
   repopulation runs untimed between rounds. *)
let bench_reset access reset =
  let m = Machine.create () in
  time_ns
    ~prep:(fun () -> populate access m)
    ~rounds:(iters ()) ~reps:1
    (fun () -> ignore (reset m))

(* Checkpoint extraction + phase-2 merge for one worker with a dirty
   page of timestamps plus live-in reads (extraction does not mutate,
   so rounds share one populated machine). *)
let bench_checkpoint () =
  let m = Machine.create () in
  populate Shadow.access m;
  for i = 0 to 63 do
    Shadow.access m Shadow.Read
      ~addr:(Heap.base Heap.Private + Memory.page_size + (i * 8))
      ~size:8 ~beta:7
  done;
  time_ns ~rounds:(iters ()) ~reps:1 (fun () ->
      let c =
        Checkpoint.contribution_of_worker ~worker:0 ~interval_start:0 m
          ~redux_ranges:[] ~reg_partials:[]
      in
      ignore (Checkpoint.merge [ c ]))

(* ---- simulated-cycle breakdown ---------------------------------------- *)

let simulated () =
  let par = Harness.matrix_run Privateer_workloads.Dijkstra.workload 24 in
  let s : Privateer_runtime.Stats.t = par.Privateer.Pipeline.stats in
  [ ("cyc_private_read", s.cyc_private_read); ("cyc_private_write", s.cyc_private_write);
    ("cyc_checkpoint", s.cyc_checkpoint); ("cyc_recovery", s.cyc_recovery);
    ("wall_cycles", s.wall_cycles) ]

(* ---- driver ------------------------------------------------------------ *)

let run () =
  Printf.printf
    "\n================ overhead: metadata hot paths, host time ================\n\n";
  let v_new = bench_validation Shadow.access in
  let v_ref = bench_validation Shadow_reference.access in
  let r_new = bench_reset Shadow.access (fun m -> Shadow.reset_interval m) in
  let r_ref =
    bench_reset Shadow_reference.access (fun m -> Shadow_reference.reset_interval m)
  in
  let ckpt = bench_checkpoint () in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "hot path"; "indexed ns"; "per-byte ref ns"; "speedup" ]
  in
  let row name a b =
    Table.add_row t
      [ name; Printf.sprintf "%.1f" a;
        (match b with Some b -> Printf.sprintf "%.1f" b | None -> "-");
        (match b with Some b -> Printf.sprintf "%.1fx" (b /. a) | None -> "-") ]
  in
  row "shadow validation (8B write)" v_new (Some v_ref);
  row "checkpoint reset (1 page)" r_new (Some r_ref);
  row "checkpoint extract + merge" ckpt None;
  Table.print t;
  let sim = simulated () in
  Printf.printf "\nsimulated cycles (dijkstra, 24 workers; refactor-invariant):\n";
  List.iter (fun (k, v) -> Printf.printf "  %-18s %d\n" k v) sim;
  let json =
    let open Json in
    Obj
      [ ("experiment", String "overhead");
        ( "host_ns",
          Obj
            [ ( "shadow_validation_8B",
                Obj
                  [ ("indexed", Float v_new); ("reference", Float v_ref);
                    ("speedup", Float (v_ref /. v_new)) ] );
              ( "checkpoint_reset_page",
                Obj
                  [ ("indexed", Float r_new); ("reference", Float r_ref);
                    ("speedup", Float (r_ref /. r_new)) ] );
              ("checkpoint_extract_merge", Obj [ ("indexed", Float ckpt) ]) ] );
        ( "simulated_cycles",
          Obj [ ("dijkstra_24w", Obj (List.map (fun (k, v) -> (k, Int v)) sim)) ] ) ]
  in
  let oc = open_out "BENCH_overhead.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "\nwrote BENCH_overhead.json"
