(* The `scale` experiment: the --scale large-input mode of the five
   ports.

   Each port declares a max_scale and scaled parameter tables; at
   scale 1 the parameters are byte-for-byte the paper-sized inputs
   every other experiment uses.  Per (port, scale) this experiment
   re-profiles on the scaled train input, runs the scaled ref input
   sequentially and in parallel, and checks:

   - *growth*: sequential cycles and private-heap write traffic grow
     strictly with the scale factor on every port — the knob actually
     enlarges the input, deterministically;
   - *fidelity*: the parallel output matches the sequential output at
     every scale;
   - *host identity at scale*: the paper's determinism contract holds
     on the enlarged inputs — a run with host domains, the sharded
     merge and the pooled interval reset is cycle- and byte-identical
     to the sequential-host reference cell, and the pooled/sharded
     paths are actually exercised (resets and merges counted).  This
     is the scaled re-statement of the merge short-circuit and pooled
     reset guarantees: host-side wins must never move simulated state.

   SCALE_MAX caps the scale sweep (default 3, clamped per port;
   the ports themselves go to 4), SCALE_WORKERS the worker count.
   Results go to BENCH_scale.json.  Simulated state only: no timing
   rounds, no ITERS. *)

open Privateer_support
open Privateer_workloads
module Pipeline = Privateer.Pipeline
module Page_pool = Privateer_runtime.Page_pool

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n when n >= 1 -> n | _ -> default)
  | None -> default

let scale_cap () = env_int "SCALE_MAX" 3
let workers () = env_int "SCALE_WORKERS" 8

type cell = {
  c_scale : int;
  c_params : (string * int) list; (* ref-input parameters at this scale *)
  c_seq : Pipeline.seq_run;
  c_par : Pipeline.par_run; (* reference host cell: 1 domain, no pool *)
  c_host : Pipeline.par_run; (* 3 domains, pooled reset, sharded merge *)
}

let run_port wl =
  let program = Workload.program wl in
  let scales =
    List.init (min (scale_cap ()) wl.Workload.max_scale) (fun i -> i + 1)
  in
  List.map
    (fun s ->
      let tr, _ =
        Pipeline.compile ~setup:(Workload.setup ~scale:s wl Workload.Train) program
      in
      let setup = Workload.setup ~scale:s wl Workload.Ref in
      let seq = Pipeline.run_sequential ~setup program in
      let par ~host_domains ~pool_cap =
        Pipeline.run_parallel ~setup
          ~config:
            { Privateer_parallel.Executor.default_config with
              workers = workers (); adaptive_period = false; host_domains;
              pool_cap; merge_shards = 8 }
          tr
      in
      { c_scale = s; c_params = Workload.params ~scale:s wl Workload.Ref;
        c_seq = seq; c_par = par ~host_domains:1 ~pool_cap:0;
        c_host = par ~host_domains:3 ~pool_cap:Page_pool.unbounded })
    scales

let strictly_increasing = function
  | [] | [ _ ] -> true
  | x :: rest -> fst (List.fold_left (fun (ok, prev) v -> (ok && v > prev, v)) (true, x) rest)

let host_identical (c : cell) =
  let open Pipeline in
  c.c_par.par_cycles = c.c_host.par_cycles
  && c.c_par.stats.wall_cycles = c.c_host.stats.wall_cycles
  && c.c_par.stats.checkpoints = c.c_host.stats.checkpoints
  && String.equal c.c_par.par_output c.c_host.par_output
  && c.c_par.par_result = c.c_host.par_result

let run () =
  Printf.printf "\n================ scale: large-input mode of the five ports ================\n\n";
  Printf.printf "scale sweep 1..%d (per-port cap), %d workers\n\n" (scale_cap ())
    (workers ());
  let open Pipeline in
  let ports = Workloads.builtin in
  let results = List.map (fun wl -> (wl, run_port wl)) ports in
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Left ]
      [ "port"; "scale"; "seq cycles"; "par cycles"; "speedup"; "priv KB written";
        "host cell" ]
  in
  List.iter
    (fun (wl, cells) ->
      List.iter
        (fun c ->
          Table.add_row t
            [ wl.Workload.name; string_of_int c.c_scale;
              string_of_int c.c_seq.seq_cycles; string_of_int c.c_par.par_cycles;
              Printf.sprintf "%.2f"
                (float_of_int c.c_seq.seq_cycles /. float_of_int c.c_par.par_cycles);
              string_of_int (c.c_par.stats.private_bytes_written / 1024);
              (if host_identical c then "identical" else "DIFFERS (BUG)") ])
        cells)
    results;
  Table.print t;
  let per_port =
    List.map
      (fun (wl, cells) ->
        let cycles = List.map (fun c -> c.c_seq.seq_cycles) cells in
        let footprint = List.map (fun c -> c.c_par.stats.private_bytes_written) cells in
        let outputs_ok =
          List.for_all
            (fun c ->
              String.equal c.c_par.par_output c.c_seq.seq_output
              && c.c_par.par_result = c.c_seq.seq_result)
            cells
        in
        let identity_ok = List.for_all host_identical cells in
        (* The pooled reset and (sharded) merge must actually run at
           the top scale for the identity above to certify anything. *)
        let exercised =
          match List.rev cells with
          | top :: _ ->
            top.c_host.stats.par_resets + top.c_host.stats.seq_resets > 0
            && top.c_host.stats.par_merges + top.c_host.stats.seq_merges > 0
          | [] -> false
        in
        (wl, cells, strictly_increasing cycles, strictly_increasing footprint,
         outputs_ok, identity_ok, exercised))
      results
  in
  let all b = List.for_all b per_port in
  let cycles_grow = all (fun (_, _, g, _, _, _, _) -> g) in
  let footprint_grows = all (fun (_, _, _, g, _, _, _) -> g) in
  let outputs_ok = all (fun (_, _, _, _, o, _, _) -> o) in
  let identity_ok = all (fun (_, _, _, _, _, i, _) -> i) in
  let exercised = all (fun (_, _, _, _, _, _, e) -> e) in
  Printf.printf "\nsequential cycles grow strictly with scale on every port: %s\n"
    (if cycles_grow then "yes" else "NO (BUG)");
  Printf.printf "private write footprint grows strictly with scale: %s\n"
    (if footprint_grows then "yes" else "NO (BUG)");
  Printf.printf "parallel output matches sequential at every scale: %s\n"
    (if outputs_ok then "yes" else "NO (BUG)");
  Printf.printf
    "host cell (3 domains, pooled reset, 8 merge shards) identical at every scale: %s\n"
    (if identity_ok then "yes" else "NO (BUG)");
  Printf.printf "pooled reset and merge paths exercised at top scale: %s\n"
    (if exercised then "yes" else "NO (BUG)");
  let json =
    let open Json in
    Obj
      [ ("experiment", String "scale"); ("scale_cap", Int (scale_cap ()));
        ("workers", Int (workers ()));
        ( "ports",
          List
            (List.map
               (fun (wl, cells, cyc, fp, out, ident, ex) ->
                 Obj
                   [ ("workload", String wl.Workload.name);
                     ("max_scale", Int wl.Workload.max_scale);
                     ( "cells",
                       List
                         (List.map
                            (fun c ->
                              Obj
                                [ ("scale", Int c.c_scale);
                                  ( "params",
                                    Obj (List.map (fun (k, v) -> (k, Int v)) c.c_params) );
                                  ("seq_cycles", Int c.c_seq.seq_cycles);
                                  ("par_cycles", Int c.c_par.par_cycles);
                                  ( "speedup",
                                    Float
                                      (float_of_int c.c_seq.seq_cycles
                                      /. float_of_int c.c_par.par_cycles) );
                                  ( "private_bytes_written",
                                    Int c.c_par.stats.private_bytes_written );
                                  ("checkpoints", Int c.c_par.stats.checkpoints);
                                  ( "misspeculations",
                                    Int c.c_par.stats.misspeculations );
                                  ("host_identical", Bool (host_identical c)) ])
                            cells) );
                     ("cycles_monotonic", Bool cyc);
                     ("footprint_monotonic", Bool fp);
                     ("outputs_match_sequential", Bool out);
                     ("host_identity", Bool ident);
                     ("pooled_paths_exercised", Bool ex) ])
               per_port) );
        ("cycles_monotonic", Bool cycles_grow);
        ("footprint_monotonic", Bool footprint_grows);
        ("outputs_match_sequential", Bool outputs_ok);
        ("host_identity", Bool identity_ok);
        ("pooled_paths_exercised", Bool exercised) ]
  in
  let oc = open_out "BENCH_scale.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "\nwrote BENCH_scale.json"
