(* The `eager` experiment: does in-flight conflict detection actually
   reduce the work wasted on squashed intervals, without perturbing
   anything else?

   Two measurements:

   - *wasted work* on a misspeculation-heavy run (dijkstra under
     deterministically spaced injected misspeculation, adaptive
     checkpoint period): at each injection rate, run once with
     `--validation commit` (every worker burns its whole interval
     before the discard) and once with `--validation eager` (the first
     observed misspeculation squashes the interval mid-sweep).  Both
     runs must reproduce the sequential output; eager mode must not
     execute *more* doomed iterations at any rate and must skip some
     in aggregate (`wasted_reduced`);

   - *identity*: on the clean (injection-free) workload, eager and
     commit validation must be byte-identical — output, result,
     verdicts, wall cycles, checkpoints — at every (host domains x
     merge shards x pool kind) cell, and eager must report zero kills
     (`no_false_kills`): the board's precise confirmation never fires
     on a conflict the checkpoint merge would not also flag, so a
     violation-free run cannot tell the modes apart.  Under injection
     cycles legitimately diverge (that is the saving), so there the
     oracle is output/result identity only.

   Results go to BENCH_eager.json.  Everything here is simulated
   state, so there are no timing rounds and no ITERS knob. *)

open Privateer_support
module Runtime_config = Privateer_parallel.Runtime_config

let workload = Privateer_workloads.Dijkstra.workload
let rates = [ 0.05; 0.1; 0.2 ]

(* One (rate, validation) run: misspeculation-heavy settings — a
   sizable fixed checkpoint period so commit mode has a whole interval
   to burn, adaptive so the eager signal reaches the period policy. *)
let heavy_run c ~rate ~validation =
  Harness.run_parallel ~checkpoint_period:24 ~adaptive:true
    ?inject:(Harness.spaced_injection rate) ~validation c

let wasted_work () =
  let c = Harness.compiled workload in
  List.map
    (fun rate ->
      let commit = heavy_run c ~rate ~validation:Runtime_config.Commit in
      let eager = heavy_run c ~rate ~validation:Runtime_config.Eager in
      (rate, commit, eager))
    rates

(* ---- eager = commit identity on the clean workload --------------------- *)

let identity_matrix () =
  let c = Harness.compiled workload in
  let open Privateer.Pipeline in
  List.concat_map
    (fun kind ->
      List.map
        (fun (domains, shards) ->
          let run validation =
            Harness.run_parallel ~host_domains:domains ~merge_shards:shards
              ~pool_kind:kind ~validation c
          in
          let commit = run Runtime_config.Commit in
          let eager = run Runtime_config.Eager in
          let identical =
            commit.par_cycles = eager.par_cycles
            && commit.stats.wall_cycles = eager.stats.wall_cycles
            && commit.stats.checkpoints = eager.stats.checkpoints
            && commit.stats.misspeculations = eager.stats.misspeculations
            && String.equal commit.par_output eager.par_output
            && commit.par_result = eager.par_result
          in
          (kind, domains, shards, commit, eager, identical))
        [ (1, 1); (3, 4) ])
    [ Domain_pool.Work_stealing; Domain_pool.Single_queue ]

(* ---- driver ------------------------------------------------------------- *)

let run () =
  Printf.printf
    "\n================ eager: in-flight conflict detection ================\n\n";
  let c = Harness.compiled workload in
  let open Privateer.Pipeline in
  let heavy = wasted_work () in
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      [ "inject rate"; "misspecs"; "squashed (commit)"; "squashed (eager)";
        "avoided"; "kills"; "cycles eager/commit" ]
  in
  let outputs_ok = ref true in
  List.iter
    (fun (rate, (commit : par_run), (eager : par_run)) ->
      outputs_ok :=
        !outputs_ok
        && String.equal commit.par_output c.Harness.seq.seq_output
        && String.equal eager.par_output c.Harness.seq.seq_output
        && commit.par_result = c.Harness.seq.seq_result
        && eager.par_result = c.Harness.seq.seq_result;
      Table.add_row t
        [ Printf.sprintf "%.2f" rate;
          string_of_int eager.stats.misspeculations;
          string_of_int commit.stats.squashed_iterations;
          string_of_int eager.stats.squashed_iterations;
          string_of_int eager.stats.avoided_iterations;
          string_of_int eager.stats.eager_kills;
          Printf.sprintf "%.3f"
            (float_of_int eager.par_cycles /. float_of_int commit.par_cycles) ])
    heavy;
  Table.print t;
  let wasted_reduced =
    List.for_all
      (fun (_, (commit : par_run), (eager : par_run)) ->
        eager.stats.squashed_iterations <= commit.stats.squashed_iterations)
      heavy
    && List.exists
         (fun (_, (commit : par_run), (eager : par_run)) ->
           eager.stats.squashed_iterations < commit.stats.squashed_iterations)
         heavy
  in
  Printf.printf
    "\nboth modes reproduce the sequential output at every rate: %s\n"
    (if !outputs_ok then "yes" else "NO (BUG)");
  Printf.printf "eager reduces wasted (squashed) iteration work: %s\n"
    (if wasted_reduced then "yes" else "NO (BUG)");

  let cells = identity_matrix () in
  let all_identical =
    List.for_all (fun (_, _, _, _, _, identical) -> identical) cells
  in
  let no_false_kills =
    List.for_all
      (fun (_, _, _, _, (eager : par_run), _) -> eager.stats.eager_kills = 0)
      cells
  in
  Printf.printf "\nclean-run identity, eager vs commit per host cell (%s):\n"
    workload.Privateer_workloads.Workload.name;
  List.iter
    (fun (kind, domains, shards, (commit : par_run), (eager : par_run), identical) ->
      Printf.printf
        "  %-13s / %d domains / %d shards -> %d vs %d wall cycles; %s\n"
        (Domain_pool.kind_to_string kind)
        domains shards commit.stats.wall_cycles eager.stats.wall_cycles
        (if identical then "identical" else "DIFFERS (BUG)"))
    cells;
  Printf.printf "identity matrix (%d cells): %s; false kills: %s\n"
    (List.length cells)
    (if all_identical then "all cells identical" else "MISMATCH (BUG)")
    (if no_false_kills then "none" else "SOME (BUG)");

  let json =
    let open Json in
    Obj
      [ ("experiment", String "eager");
        ("workload", String workload.Privateer_workloads.Workload.name);
        ( "wasted_work",
          List
            (List.map
               (fun (rate, (commit : par_run), (eager : par_run)) ->
                 Obj
                   [ ("inject_rate", Float rate);
                     ("misspeculations", Int eager.stats.misspeculations);
                     ( "squashed_iterations_commit",
                       Int commit.stats.squashed_iterations );
                     ( "squashed_iterations_eager",
                       Int eager.stats.squashed_iterations );
                     ("avoided_iterations", Int eager.stats.avoided_iterations);
                     ("eager_kills", Int eager.stats.eager_kills);
                     ("eager_checks", Int eager.stats.eager_checks);
                     ("eager_hits", Int eager.stats.eager_hits);
                     ("cycles_commit", Int commit.par_cycles);
                     ("cycles_eager", Int eager.par_cycles) ])
               heavy) );
        ("outputs_match_sequential", Bool !outputs_ok);
        ("wasted_reduced", Bool wasted_reduced);
        ( "identity",
          Obj
            [ ("cells_total", Int (List.length cells));
              ("all_identical", Bool all_identical);
              ("no_false_kills", Bool no_false_kills);
              ( "cells",
                List
                  (List.map
                     (fun (kind, domains, shards, (commit : par_run),
                           (eager : par_run), identical) ->
                       Obj
                         [ ("pool_kind", String (Domain_pool.kind_to_string kind));
                           ("host_domains", Int domains);
                           ("merge_shards", Int shards);
                           ("wall_cycles_commit", Int commit.stats.wall_cycles);
                           ("wall_cycles_eager", Int eager.stats.wall_cycles);
                           ("identical", Bool identical) ])
                     cells) ) ] ) ]
  in
  let oc = open_out "BENCH_eager.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "\nwrote BENCH_eager.json"
