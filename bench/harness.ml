(* Shared experiment logic for the evaluation harness: compiles each
   workload once, caches sequential baselines, and exposes the runs
   each table/figure needs. *)

open Privateer
open Privateer_workloads

let worker_counts = [ 4; 8; 12; 16; 20; 24 ]

type compiled = {
  wl : Workload.t;
  program : Privateer_ir.Ast.program;
  tr : Privateer_transform.Transform.result;
  profiler : Privateer_profile.Profiler.t;
  seq : Pipeline.seq_run; (* ref input, best sequential *)
}

let compile_workload wl =
  let program = Workload.program wl in
  let tr, profiler = Pipeline.compile ~setup:(Workload.setup wl Workload.Train) program in
  let seq = Pipeline.run_sequential ~setup:(Workload.setup wl Workload.Ref) program in
  { wl; program; tr; profiler; seq }

let compiled_cache : (string, compiled) Hashtbl.t = Hashtbl.create 8

let compiled wl =
  match Hashtbl.find_opt compiled_cache wl.Workload.name with
  | Some c -> c
  | None ->
    let c = compile_workload wl in
    Hashtbl.replace compiled_cache wl.Workload.name c;
    c

let config ?(workers = 24) ?checkpoint_period ?inject ?(serial_commit = false)
    ?(schedule = Privateer_parallel.Schedule.Cyclic) ?(adaptive = false) ?throttle
    ?(host_domains = Privateer_parallel.Runtime_config.default_host_domains)
    ?(pool_cap = Privateer_parallel.Runtime_config.default_pool_cap)
    ?(merge_shards = Privateer_parallel.Runtime_config.default_merge_shards)
    ?(pool_kind = Privateer_parallel.Runtime_config.default_pool_kind)
    ?(host_controller = Privateer_parallel.Runtime_config.default_host_controller)
    ?(validation = Privateer_parallel.Runtime_config.default_validation) () =
  { Privateer_parallel.Executor.default_config with
    workers; checkpoint_period; inject; serial_commit; schedule;
    adaptive_period = adaptive; throttle; host_domains; pool_cap; merge_shards;
    pool_kind; host_controller; validation }

let run_parallel ?workers ?checkpoint_period ?inject ?serial_commit ?schedule
    ?adaptive ?throttle ?host_domains ?pool_cap ?merge_shards ?pool_kind
    ?host_controller ?validation c =
  Pipeline.run_parallel
    ~setup:(Workload.setup c.wl Workload.Ref)
    ~config:
      (config ?workers ?checkpoint_period ?inject ?serial_commit ?schedule ?adaptive
         ?throttle ?host_domains ?pool_cap ?merge_shards ?pool_kind ?host_controller
         ?validation ())
    c.tr

let speedup c (par : Pipeline.par_run) =
  float_of_int c.seq.seq_cycles /. float_of_int par.par_cycles

(* Deterministically spaced misspeculation injection: one event every
   1/rate speculatively executed iterations, counted across
   invocations (so per-epoch programs like alvinn see the same
   per-iteration rate as single-invocation ones). *)
let spaced_injection rate =
  if rate <= 0.0 then None
  else begin
    let executed = ref 0 in
    Some
      (fun _iter ->
        incr executed;
        int_of_float (float_of_int !executed *. rate)
        > int_of_float (float_of_int (!executed - 1) *. rate))
  end

(* The (workload x workers) result matrix behind Figures 6 and 8. *)
let matrix_cache : (string * int, Pipeline.par_run) Hashtbl.t = Hashtbl.create 32

let matrix_run wl workers =
  match Hashtbl.find_opt matrix_cache (wl.Workload.name, workers) with
  | Some r -> r
  | None ->
    let c = compiled wl in
    let r = run_parallel ~workers c in
    Hashtbl.replace matrix_cache (wl.Workload.name, workers) r;
    r

(* DOALL-only baseline run (Figure 7). *)
let doall_only_run ?(workers = 24) wl =
  let c = compiled wl in
  let report = Privateer_baselines.Doall_only.select c.program c.profiler in
  let st, _, _ =
    Privateer_baselines.Doall_only.run ~workers c.program report
      ~setup:(Workload.setup wl Workload.Ref)
  in
  (report, float_of_int c.seq.seq_cycles /. float_of_int st.cycles)
