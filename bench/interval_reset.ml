(* The `interval_reset` experiment: host-time scaling of the shadow
   interval reset over OCaml domains, and the pooled swap-and-zero
   retirement of fully-timestamped pages.

   Three measurements:

   - reset wall time over 1/2/4/8 host domains on a fixed footprint
     (24 fully-timestamped + 8 half-timestamped private shadow pages),
     with the page pool disabled (every page scan-rewritten in place)
     and with an unbounded pool (full pages retired by pointer swap,
     retired buffers refilled by memset and recycled next interval).
     As in `host_parallel`, the curve depends on the cores the host
     actually has — `host_cores` is recorded next to the numbers so a
     1-core CI container's flat curve is not mistaken for a regression;
   - rewrite vs swap on the same footprint at one domain: the pool's
     win is algorithmic (memset refill beats the word-wise
     read-check-write scan), so it must show even without domain
     parallelism.  Steady-state pool stats (swaps/recycled/high water)
     are reported alongside;
   - simulated-cycle identity: dijkstra across host_domains {1, 3} x
     pool cap {0, unbounded} must report byte-identical output and the
     same wall/parallel cycles and checkpoint count — neither host
     knob is allowed to move the cycle model.

   Results go to BENCH_interval_reset.json; iteration counts scale
   down via INTERVAL_RESET_ITERS (CI smoke runs use a small value). *)

open Privateer_ir
open Privateer_machine
open Privateer_runtime
open Privateer_support

let iters () =
  match Sys.getenv_opt "INTERVAL_RESET_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 40)
  | None -> 40

let time_ns = Overhead.time_ns

(* ---- the interval footprint --------------------------------------------- *)

let full_pages = 24
let partial_pages = 8

(* A machine whose private shadow bank holds [full_pages] pages of
   wall-to-wall timestamps (swap candidates) and [partial_pages] pages
   stamped only on their first half (scan-rewritten regardless of the
   pool).  beta = 5 puts every mark at or above [first_timestamp]. *)
let footprint () =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  for p = 0 to full_pages - 1 do
    let base = Heap.base Heap.Private + (p * Memory.page_size) in
    for i = 0 to (Memory.page_size / 8) - 1 do
      Shadow.access m Shadow.Write ~addr:(base + (i * 8)) ~size:8 ~beta:5
    done
  done;
  for p = full_pages to full_pages + partial_pages - 1 do
    let base = Heap.base Heap.Private + (p * Memory.page_size) in
    for i = 0 to (Memory.page_size / 16) - 1 do
      Shadow.access m Shadow.Write ~addr:(base + (i * 8)) ~size:8 ~beta:5
    done
  done;
  m

let fresh_pool () = Page_pool.create ~fill:(Char.chr Shadow.old_write) ()

(* ns per full reset of the footprint.  The footprint is consumed by
   each reset, so `prep` rebuilds it outside the timed section; the
   page pool (when present) persists across rounds, so after the
   warmup mints its buffers every timed round runs at steady state,
   swapping in recycled pages. *)
let bench_reset ?page_pool domains =
  let rounds = iters () in
  let machine = ref (Machine.create ()) in
  let prep () = machine := footprint () in
  if domains = 1 then
    time_ns ~prep ~rounds ~reps:1 (fun () ->
        ignore (Shadow.reset_interval ?page_pool !machine))
  else begin
    let pool = Domain_pool.create ~domains () in
    let ns =
      time_ns ~prep ~rounds ~reps:1 (fun () ->
          ignore (Shadow.reset_interval ~pool ?page_pool !machine))
    in
    Domain_pool.shutdown pool;
    ns
  end

(* ---- simulated-cycle identity ------------------------------------------- *)

let identity_matrix () =
  let c = Harness.compiled Privateer_workloads.Dijkstra.workload in
  let open Privateer.Pipeline in
  let base = Harness.run_parallel ~host_domains:1 ~pool_cap:0 c in
  let cells =
    List.map
      (fun (domains, cap, label) ->
        let par = Harness.run_parallel ~host_domains:domains ~pool_cap:cap c in
        let identical =
          base.par_cycles = par.par_cycles
          && base.stats.wall_cycles = par.stats.wall_cycles
          && base.stats.checkpoints = par.stats.checkpoints
          && String.equal base.par_output par.par_output
        in
        (domains, label, par, identical))
      [ (1, Page_pool.unbounded, "unbounded");
        (3, 0, "0");
        (3, Page_pool.unbounded, "unbounded") ]
  in
  (base, cells)

(* ---- driver ------------------------------------------------------------- *)

let run () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "\n================ interval_reset: shadow reset over OCaml domains ================\n\n";
  Printf.printf
    "footprint: %d fully-timestamped + %d half-timestamped private pages; host cores: %d\n\n"
    full_pages partial_pages cores;
  let domain_counts = [ 1; 2; 4; 8 ] in
  let pool = fresh_pool () in
  let curve =
    List.map
      (fun d -> (d, bench_reset d, bench_reset ~page_pool:pool d))
      domain_counts
  in
  let t_seq_rewrite =
    match curve with (_, ns, _) :: _ -> ns | [] -> assert false
  in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "host domains"; "rewrite us"; "pooled us"; "pool win"; "speedup vs 1" ]
  in
  List.iter
    (fun (d, rewrite_ns, pooled_ns) ->
      Table.add_row t
        [ string_of_int d; Printf.sprintf "%.1f" (rewrite_ns /. 1e3);
          Printf.sprintf "%.1f" (pooled_ns /. 1e3);
          Printf.sprintf "%.2fx" (rewrite_ns /. pooled_ns);
          Printf.sprintf "%.2fx" (t_seq_rewrite /. pooled_ns) ])
    curve;
  Table.print t;
  if cores <= 1 then
    print_endline
      "\n(single host core: the domain curve is flat here by construction; the\n\
      \ pool win column is algorithmic and should hold regardless)";
  let ps = Page_pool.stats pool in
  Printf.printf
    "\npool steady state: %d swaps (%d recycled), high water %d buffers, %d evictions\n"
    ps.Page_pool.swaps ps.Page_pool.recycled ps.Page_pool.high_water
    ps.Page_pool.evictions;
  let base, cells = identity_matrix () in
  let open Privateer.Pipeline in
  Printf.printf
    "\nsimulated identity (dijkstra, 24 workers): 1 domain / cap 0 -> %d wall cycles\n"
    base.stats.wall_cycles;
  List.iter
    (fun (domains, cap_label, (par : Privateer.Pipeline.par_run), identical) ->
      Printf.printf "  %d domains / cap %-9s -> %d wall cycles; %s\n" domains
        cap_label par.stats.wall_cycles
        (if identical then "identical" else "DIFFERS (BUG)"))
    cells;
  let json =
    let open Json in
    Obj
      [ ("experiment", String "interval_reset"); ("host_cores", Int cores);
        ("iters", Int (iters ()));
        ( "footprint",
          Obj
            [ ("full_pages", Int full_pages); ("partial_pages", Int partial_pages);
              ("page_size", Int Memory.page_size) ] );
        ( "reset_ns",
          List
            (List.map
               (fun (d, rewrite_ns, pooled_ns) ->
                 Obj
                   [ ("host_domains", Int d); ("rewrite_ns", Float rewrite_ns);
                     ("pooled_ns", Float pooled_ns);
                     ("pool_win", Float (rewrite_ns /. pooled_ns));
                     ("pooled_speedup_vs_1", Float (t_seq_rewrite /. pooled_ns)) ])
               curve) );
        ( "pool_stats",
          Obj
            [ ("swaps", Int ps.Page_pool.swaps);
              ("recycled", Int ps.Page_pool.recycled);
              ("high_water", Int ps.Page_pool.high_water);
              ("evictions", Int ps.Page_pool.evictions) ] );
        ( "simulated_identity",
          Obj
            [ ("workload", String "dijkstra");
              ("baseline_wall_cycles", Int base.stats.wall_cycles);
              ( "cells",
                List
                  (List.map
                     (fun (domains, cap_label, (par : Privateer.Pipeline.par_run),
                           identical) ->
                       Obj
                         [ ("host_domains", Int domains);
                           ("pool_cap", String cap_label);
                           ("wall_cycles", Int par.stats.wall_cycles);
                           ("identical_to_baseline", Bool identical) ])
                     cells) ) ] ) ]
  in
  let oc = open_out "BENCH_interval_reset.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "\nwrote BENCH_interval_reset.json"
