(* The `server` experiment: does multiplexing concurrent speculative
   pipelines over one shared pool raise aggregate throughput, and do
   the concurrent runs stay byte-identical to serial?

   A stress corpus of SERVER_JOBS (default 500) generated scenarios
   (Privateer_gen.Scenario_gen.corpus: seeded, so the corpus is
   reproducible run to run) — loop counts, trip counts, heap
   footprints, reduction mixes and planted misspeculation rates all
   varying per job, worker counts varying per slot, every job parsing
   its own AST (concurrent jobs never share programs) — runs through
   four server cells:

   - `serial`: 1 host core, max_inflight 1 — the reference;
   - `ws-4` / `legacy-4`: the real host, max_inflight 4, each pool
     scheduler.  On a multi-core host ws-4 throughput must beat
     serial; on 1 core the clamp keeps jobs effectively sequential and
     throughput must not regress;
   - `forced-4`: 4 "cores" forced, so the genuinely concurrent path
     (jobs as pool futures, nested stage fan-outs interleaving on the
     shared deques) is exercised even on a 1-core host — for the
     determinism check, not the throughput claim.

   Every cell's per-job fingerprints (cycles, output, result, non-host
   stats, per-loop table) must equal the serial cell's.  Results go to
   BENCH_server.json; CI smoke runs scale down via SERVER_JOBS. *)

open Privateer_support
module Job_server = Privateer_server.Job_server
module RC = Privateer_parallel.Runtime_config
module Scenario_gen = Privateer_gen.Scenario_gen
module Workload = Privateer_workloads.Workload

let jobs_n () =
  match Sys.getenv_opt "SERVER_JOBS" with
  | Some s -> (try max 2 (int_of_string s) with Failure _ -> 200)
  | None -> 500

let corpus_seed = 0xC0FFEE

(* The corpus is drawn once per process so every cell runs the same
   scenario sequence; each spec still parses its own AST. *)
let corpus = lazy (Scenario_gen.corpus ~seed:corpus_seed ~count:(jobs_n ()))

let specs ~kind ~max_inflight =
  List.mapi
    (fun i (t : Scenario_gen.t) ->
      let config =
        { RC.default with
          RC.pool_kind = kind; max_inflight; queue_cap = 0;
          workers = 4 + (4 * (i mod 3)); host_domains = 1 }
      in
      let wl = t.Scenario_gen.sc_workload in
      Job_server.job_spec ~config
        ~train:(Workload.setup wl Workload.Train)
        ~run:(Workload.setup wl Workload.Ref)
        ~name:(Printf.sprintf "job%03d" i)
        (Privateer.Pipeline.parse t.Scenario_gen.sc_source))
    (Lazy.force corpus)

type cell = {
  label : string;
  kind : Domain_pool.kind;
  inflight : int;
  forced_cores : int option;
  wall_s : float;
  throughput : float;
  effective : int;
  cores : int;
  done_ : int;
  failed : int;
  queue_p50_ms : float;
  queue_p95_ms : float;
  service_p50_ms : float;
  service_p95_ms : float;
  fingerprints : (string * string) list;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let run_cell ~label ?host_cores ~kind ~inflight n =
  let config =
    { RC.default with RC.pool_kind = kind; max_inflight = inflight }
  in
  let t0 = Clock.now_ns () in
  let sv = Job_server.run_jobs ?host_cores ~config (specs ~kind ~max_inflight:inflight) in
  let wall_s = (Clock.now_ns () -. t0) /. 1e9 in
  let results =
    List.map (fun j -> Job_server.state sv j) (Job_server.jobs sv)
  in
  let dones =
    List.filter_map
      (function Job_server.Done r -> Some r | _ -> None)
      results
  in
  let failed =
    List.length (List.filter (function Job_server.Failed _ -> true | _ -> false) results)
  in
  let ms f sel =
    let a = Array.of_list (List.map (fun r -> sel r /. 1e6) dones) in
    Array.sort compare a;
    percentile a f
  in
  { label; kind; inflight; forced_cores = host_cores; wall_s;
    throughput = float_of_int n /. wall_s;
    effective = Job_server.effective_inflight sv;
    cores = Job_server.host_cores sv;
    done_ = List.length dones; failed;
    queue_p50_ms = ms 0.50 (fun r -> r.Job_server.jr_queue_ns);
    queue_p95_ms = ms 0.95 (fun r -> r.Job_server.jr_queue_ns);
    service_p50_ms = ms 0.50 (fun r -> r.Job_server.jr_service_ns);
    service_p95_ms = ms 0.95 (fun r -> r.Job_server.jr_service_ns);
    fingerprints =
      List.map (fun r -> (r.Job_server.jr_name, r.Job_server.jr_fingerprint)) dones }

let run () =
  let n = jobs_n () in
  let real_cores = Domain.recommended_domain_count () in
  let multicore = real_cores > 1 in
  Printf.printf "server: %d jobs, %d host cores%s\n%!" n real_cores
    (if multicore then "" else " (1-core host: inflight clamps to sequential)");
  let serial = run_cell ~label:"serial" ~host_cores:1 ~kind:Domain_pool.Work_stealing ~inflight:1 n in
  let ws4 = run_cell ~label:"ws-4" ~kind:Domain_pool.Work_stealing ~inflight:4 n in
  let legacy4 = run_cell ~label:"legacy-4" ~kind:Domain_pool.Single_queue ~inflight:4 n in
  let forced4 =
    run_cell ~label:"forced-4" ~host_cores:4 ~kind:Domain_pool.Work_stealing ~inflight:4 n
  in
  let cells = [ serial; ws4; legacy4; forced4 ] in
  let identical c = c.fingerprints = serial.fingerprints in
  let all_identical = List.for_all identical cells in
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      [ "cell"; "cores"; "inflight"; "wall s"; "jobs/s"; "p95 ms"; "identical" ]
  in
  List.iter
    (fun c ->
      Table.add_row t
        [ c.label; string_of_int c.cores; string_of_int c.effective;
          Printf.sprintf "%.2f" c.wall_s; Printf.sprintf "%.1f" c.throughput;
          Printf.sprintf "%.2f" c.service_p95_ms;
          (if identical c then "yes" else "NO (BUG)") ])
    cells;
  Table.print t;
  let speedup = ws4.throughput /. serial.throughput in
  (* The acceptance gate: concurrency must pay on a multi-core host
     and must cost (at most noise) nothing on a 1-core one, where the
     clamp keeps execution sequential. *)
  let throughput_ok =
    if multicore then speedup > 1.0 else speedup >= 0.85
  in
  Printf.printf
    "\nmax_inflight 4 vs serial: %.2fx throughput -> %s\n"
    speedup
    (if throughput_ok then
       if multicore then "concurrent wins" else "no regression at 1 core"
     else "REGRESSION (BUG)");
  Printf.printf "determinism: %s\n"
    (if all_identical then
       Printf.sprintf "all %d cells byte-identical to serial" (List.length cells)
     else "MISMATCH (BUG)");
  let json =
    let open Json in
    Obj
      [ ("experiment", String "server"); ("jobs", Int n);
        ("host_cores", Int real_cores); ("multicore", Bool multicore);
        ( "cells",
          List
            (List.map
               (fun c ->
                 Obj
                   [ ("label", String c.label);
                     ("pool_kind", String (Domain_pool.kind_to_string c.kind));
                     ("max_inflight", Int c.inflight);
                     ("effective_inflight", Int c.effective);
                     ("host_cores", Int c.cores);
                     ( "host_cores_forced",
                       Bool (Option.is_some c.forced_cores) );
                     ("wall_s", Float c.wall_s);
                     ("throughput_jobs_per_s", Float c.throughput);
                     ("done", Int c.done_); ("failed", Int c.failed);
                     ("queue_p50_ms", Float c.queue_p50_ms);
                     ("queue_p95_ms", Float c.queue_p95_ms);
                     ("service_p50_ms", Float c.service_p50_ms);
                     ("service_p95_ms", Float c.service_p95_ms);
                     ("identical_to_serial", Bool (identical c)) ])
               cells) );
        ("serial_throughput_jobs_per_s", Float serial.throughput);
        ("concurrent_throughput_jobs_per_s", Float ws4.throughput);
        ("speedup_vs_serial", Float speedup);
        ("throughput_ok", Bool throughput_ok);
        ("all_identical", Bool all_identical) ]
  in
  let oc = open_out "BENCH_server.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "\nwrote BENCH_server.json"
