(* Bechamel microbenchmarks: one Test.make per core runtime mechanism.
   These are the only wall-clock measurements in the repository;
   everything else uses the deterministic cycle model. *)

open Bechamel
open Toolkit
open Privateer_ir
open Privateer_machine
open Privateer_runtime

let test_heap_check =
  let addr = Heap.base Heap.Private + 0x1234 in
  Test.make ~name:"separation-check (tag test)"
    (Staged.stage (fun () -> ignore (Heap.check addr Heap.Private)))

let test_shadow_transition =
  Test.make ~name:"shadow metadata transition"
    (Staged.stage (fun () -> ignore (Shadow.transition Shadow.Write ~current:0 ~beta:7)))

let test_shadow_access =
  let m = Machine.create () in
  let addr = Heap.base Heap.Private + 64 in
  Test.make ~name:"private-write validation (8B)"
    (Staged.stage (fun () -> Shadow.access m Shadow.Write ~addr ~size:8 ~beta:7))

let test_shadow_access_reference =
  let m = Machine.create () in
  let addr = Heap.base Heap.Private + 64 in
  Test.make ~name:"private-write validation (8B, per-byte ref)"
    (Staged.stage (fun () -> Shadow_reference.access m Shadow.Write ~addr ~size:8 ~beta:7))

let test_shadow_access_run =
  let m = Machine.create () in
  let addr = Heap.base Heap.Private + 128 in
  Test.make ~name:"private-write validation (64B run)"
    (Staged.stage (fun () -> Shadow.access m Shadow.Write ~addr ~size:64 ~beta:7))

let test_alloc_free =
  let a = Allocator.create Heap.Short_lived in
  Test.make ~name:"h_alloc + h_dealloc (16B)"
    (Staged.stage (fun () ->
         let p = Allocator.alloc a 16 in
         ignore (Allocator.free a p)))

let test_cow_fault =
  let parent = Memory.create () in
  Memory.write_byte parent 0 1;
  Test.make ~name:"COW snapshot + first-write fault"
    (Staged.stage (fun () ->
         let child = Memory.snapshot parent in
         Memory.write_byte child 0 2))

let test_interval_lookup =
  let m = Privateer_support.Interval_map.create () in
  for i = 0 to 999 do
    Privateer_support.Interval_map.insert m (i * 64) ((i * 64) + 48) i
  done;
  Test.make ~name:"profiler interval-map lookup"
    (Staged.stage (fun () -> ignore (Privateer_support.Interval_map.find_opt m 31337)))

(* Reset mutates (timestamps -> old-write), so a fair repeated
   measurement must re-populate the page's timestamps each run; both
   the indexed and the per-byte reference variant pay the same
   repopulation (via their own access implementation). *)
let test_metadata_reset =
  let m = Machine.create () in
  Test.make ~name:"checkpoint reset (1 page, incl. repopulate)"
    (Staged.stage (fun () ->
         for i = 0 to 511 do
           Shadow.access m Shadow.Write ~addr:(Heap.base Heap.Private + (i * 8)) ~size:8
             ~beta:5
         done;
         ignore (Shadow.reset_interval m)))

let test_metadata_reset_reference =
  let m = Machine.create () in
  Test.make ~name:"checkpoint reset (1 page, per-byte ref)"
    (Staged.stage (fun () ->
         for i = 0 to 511 do
           Shadow_reference.access m Shadow.Write
             ~addr:(Heap.base Heap.Private + (i * 8))
             ~size:8 ~beta:5
         done;
         ignore (Shadow_reference.reset_interval m)))

let all_tests =
  [ test_heap_check; test_shadow_transition; test_shadow_access;
    test_shadow_access_reference; test_shadow_access_run; test_alloc_free;
    test_cow_fault; test_interval_lookup; test_metadata_reset;
    test_metadata_reset_reference ]

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let table =
    Privateer_support.Table.create
      ~aligns:[ Privateer_support.Table.Left; Privateer_support.Table.Right ]
      [ "microbenchmark"; "ns/op" ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> Printf.sprintf "%.1f" x
            | Some [] | None -> "n/a"
          in
          Privateer_support.Table.add_row table [ name; ns ])
        results)
    all_tests;
  Privateer_support.Table.print table
