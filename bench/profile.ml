(* The `profile` experiment: overhead and fidelity of the rebuilt
   profiling framework.

   Measures, per (port, scale) and over a seeded scenario corpus:

   - *overhead*: wall time of the instrumented training run (fast
     frontend with all five profilers, and the retained monolithic
     Profiler_reference oracle) against plain uninstrumented
     interpretation of the same program + input;
   - *reference-vs-fast*: what the rebuild buys.  The interpreter
     dominates wall time on every program (hooks fire either way), so
     the headline gate compares *profiling overhead* — instrumented
     minus plain — and wants (ref - plain) >= 2x (fast - plain) on at
     least one top-scale port or on the corpus aggregate.  The three
     configurations are timed in interleaved rounds (best-of each) so
     machine-load drift hits all three alike;
   - *per-profiler breakdown*: each profiler enabled alone over the
     scale-1 ports + corpus, so the cost of ptr/lifetime/flow/value/
     exec is attributable;
   - *plan identity* (hard gate): for every measured program, the fast
     and reference profilers must induce byte-identical selection,
     classification and transformed IR — the differential-oracle
     restatement of "same answers, faster".

   PROFILE_SCALE_MAX caps the port scale sweep (default 4, clamped per
   port), PROFILE_ITERS the timing rounds (best-of, default 3),
   PROFILE_CORPUS / PROFILE_SEED size and seed the scenario corpus.
   Results go to BENCH_profile.json. *)

open Privateer_support
open Privateer_workloads
module Pipeline = Privateer.Pipeline
module Profiler = Privateer_profile.Profiler
module RC = Privateer_parallel.Runtime_config
module Selection = Privateer_analysis.Selection
module Classify = Privateer_analysis.Classify

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n when n >= 1 -> n | _ -> default)
  | None -> default

let scale_cap () = env_int "PROFILE_SCALE_MAX" 4
let iters () = env_int "PROFILE_ITERS" 3
let corpus_count () = env_int "PROFILE_CORPUS" 12
let corpus_seed () = env_int "PROFILE_SEED" 42
let now () = Unix.gettimeofday ()

(* Best-of-[iters] wall nanoseconds of [f] (the whole call: interpreter
   layout + instrumented run + profiler sync). *)
let once f =
  let t0 = now () in
  f ();
  (now () -. t0) *. 1e9

let time_ns f =
  let best = ref infinity in
  for _ = 1 to iters () do
    let dt = once f in
    if dt < !best then best := dt
  done;
  !best

(* Best-of-[iters] for several configurations with the rounds
   interleaved — round r times every configuration once before round
   r+1 starts — so a slow patch on a shared machine degrades all
   configurations rather than whichever one it happened to span. *)
let time_interleaved fs =
  let best = Array.make (Array.length fs) infinity in
  for _ = 1 to iters () do
    Array.iteri
      (fun i f ->
        let dt = once f in
        if dt < best.(i) then best.(i) <- dt)
      fs
  done;
  best

let config_for profilers = { RC.default with RC.profilers }

(* One canonical string for everything the profiler feeds the
   compiler: selection (plans, weights, extras, rejections), the
   classification of every selected loop, the per-site heap map, and
   the transformed program itself.  Fast and reference must agree on
   every byte. *)
let plan_str (tr : Privateer_transform.Transform.result) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (p : Selection.plan) ->
      Buffer.add_string buf
        (Printf.sprintf "loop %d in %s weight %d extras [%s]\n" p.loop p.func p.weight
           (String.concat "," (Selection.extras p)));
      Buffer.add_string buf (Classify.to_string p.assignment);
      List.iter
        (fun (s, h) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s\n"
               (Privateer_profile.Objname.site_to_string s)
               (Privateer_ir.Heap.name h)))
        p.site_heap)
    tr.selection.plans;
  List.iter
    (fun (r : Selection.rejection) ->
      Buffer.add_string buf
        (Printf.sprintf "rejected loop %d in %s: %s\n" r.rloop r.rfunc r.reason))
    tr.selection.rejections;
  Buffer.add_string buf (Privateer_ir.Pp.program_str tr.program);
  Buffer.contents buf

type row = {
  r_name : string;
  r_kind : string; (* "port" | "scenario" *)
  r_scale : int;
  r_plain_ns : float;
  r_fast_ns : float;
  r_ref_ns : float;
  r_identical : bool;
}

let measure ~kind ~scale ~name program setup =
  let profile profilers () =
    ignore (Pipeline.profile ~setup ~config:(config_for profilers) program)
  in
  let best =
    time_interleaved
      [| (fun () -> ignore (Pipeline.run_sequential ~setup program));
         profile [ "all" ]; profile [ "reference" ] |]
  in
  let plain_ns = best.(0) and fast_ns = best.(1) and ref_ns = best.(2) in
  let compile profilers =
    let tr, _ = Pipeline.compile ~setup ~config:(config_for profilers) program in
    plan_str tr
  in
  let identical = String.equal (compile [ "all" ]) (compile [ "reference" ]) in
  { r_name = name; r_kind = kind; r_scale = scale; r_plain_ns = plain_ns;
    r_fast_ns = fast_ns; r_ref_ns = ref_ns; r_identical = identical }

(* Whole-set pass under one profiler selection, for the breakdown. *)
let run_set profilers set () =
  List.iter
    (fun (program, setup) ->
      ignore (Pipeline.profile ~setup ~config:(config_for profilers) program))
    set

let ratio num den = if den > 0.0 then num /. den else 0.0

(* The gate statistic: profiling overhead (instrumented minus plain)
   of the reference over the fast frontend.  0.0 when noise leaves
   either overhead non-positive — a near-zero denominator must not
   award the gate to noise. *)
let overhead_ratio ~plain ~fast ~rf =
  let fo = fast -. plain and ro = rf -. plain in
  if fo > 0.0 && ro > 0.0 then ro /. fo else 0.0

let run () =
  Printf.printf
    "\n================ profile: frontend overhead vs reference oracle ================\n\n";
  Printf.printf
    "scales 1..%d (per-port cap), best of %d rounds, corpus %d scenarios (seed %d)\n"
    (scale_cap ()) (iters ()) (corpus_count ()) (corpus_seed ());
  Printf.printf "profilers: %s\n\n" (String.concat ", " (Profiler.available ()));
  let port_rows =
    List.concat_map
      (fun wl ->
        let program = Workload.program wl in
        List.map
          (fun s ->
            measure ~kind:"port" ~scale:s ~name:wl.Workload.name program
              (Workload.setup ~scale:s wl Workload.Train))
          (List.init (min (scale_cap ()) wl.Workload.max_scale) (fun i -> i + 1)))
      Workloads.builtin
  in
  let corpus =
    Privateer_gen.Scenario_gen.corpus ~seed:(corpus_seed ()) ~count:(corpus_count ())
  in
  let scenario_rows =
    List.map
      (fun (sc : Privateer_gen.Scenario_gen.t) ->
        let wl = sc.sc_workload in
        measure ~kind:"scenario" ~scale:1 ~name:sc.sc_name (Workload.program wl)
          (Workload.setup ~scale:1 wl Workload.Train))
      corpus
  in
  let rows = port_rows @ scenario_rows in
  (* Corpus aggregate: summed wall time over all scenarios, the stable
     statistic for programs too small to time individually. *)
  let sum f = List.fold_left (fun a r -> a +. f r) 0.0 scenario_rows in
  let corpus_plain = sum (fun r -> r.r_plain_ns) in
  let corpus_fast = sum (fun r -> r.r_fast_ns) in
  let corpus_ref = sum (fun r -> r.r_ref_ns) in
  let corpus_speedup = ratio corpus_ref corpus_fast in
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "program"; "scale"; "plain ms"; "fast ms"; "ref ms"; "fast ovh"; "ref ovh";
        "ref/fast"; "ovh ratio"; "plan" ]
  in
  let add_line name scale plain fast rf identical =
    Table.add_row t
      [ name; scale; Printf.sprintf "%.2f" (plain /. 1e6);
        Printf.sprintf "%.2f" (fast /. 1e6); Printf.sprintf "%.2f" (rf /. 1e6);
        Printf.sprintf "%.2fx" (ratio fast plain);
        Printf.sprintf "%.2fx" (ratio rf plain); Printf.sprintf "%.2fx" (ratio rf fast);
        Printf.sprintf "%.2fx" (overhead_ratio ~plain ~fast ~rf);
        (if identical then "identical" else "DIFFERS (BUG)") ]
  in
  List.iter
    (fun r -> add_line r.r_name (string_of_int r.r_scale) r.r_plain_ns r.r_fast_ns r.r_ref_ns r.r_identical)
    port_rows;
  add_line
    (Printf.sprintf "corpus (%d scenarios)" (List.length scenario_rows))
    "-" corpus_plain corpus_fast corpus_ref
    (List.for_all (fun r -> r.r_identical) scenario_rows);
  Table.print t;
  (* Per-profiler breakdown: each profiler alone over the top-scale
     ports + the corpus, against the all-five and plain passes over
     the same set.  All configurations run in interleaved rounds, the
     same discipline as the per-program rows. *)
  let set =
    List.map
      (fun wl ->
        let s = min (scale_cap ()) wl.Workload.max_scale in
        (Workload.program wl, Workload.setup ~scale:s wl Workload.Train))
      Workloads.builtin
    @ List.map
        (fun (sc : Privateer_gen.Scenario_gen.t) ->
          ( Workload.program sc.sc_workload,
            Workload.setup ~scale:1 sc.sc_workload Workload.Train ))
        corpus
  in
  let singles = Profiler.available () in
  let best =
    time_interleaved
      (Array.of_list
         ((fun () -> List.iter (fun (p, setup) -> ignore (Pipeline.run_sequential ~setup p)) set)
          :: run_set [ "all" ] set
          :: run_set [ "reference" ] set
          :: List.map (fun p -> run_set [ p ] set) singles))
  in
  let set_plain = best.(0) and set_fast = best.(1) and set_ref = best.(2) in
  let breakdown = List.mapi (fun i p -> (p, best.(i + 3))) singles in
  Printf.printf
    "\nper-profiler cost over top-scale ports + corpus (plain %.2f ms):\n"
    (set_plain /. 1e6);
  List.iter
    (fun (p, ns) ->
      Printf.printf "  %-10s %8.2f ms  (%.2fx plain)\n" p (ns /. 1e6)
        (ratio ns set_plain))
    breakdown;
  Printf.printf "  %-10s %8.2f ms  (%.2fx plain)   reference %8.2f ms  (%.2fx plain)\n"
    "all five" (set_fast /. 1e6) (ratio set_fast set_plain) (set_ref /. 1e6)
    (ratio set_ref set_plain);
  let identical_all = List.for_all (fun r -> r.r_identical) rows in
  (* The gate sweeps the top measured scale of every port plus the
     corpus aggregate — the rows large enough for the overheads to
     stand clear of timer noise. *)
  let top_scale name =
    List.fold_left (fun m r -> if r.r_name = name then max m r.r_scale else m) 0
      port_rows
  in
  let corpus_ratio =
    overhead_ratio ~plain:corpus_plain ~fast:corpus_fast ~rf:corpus_ref
  in
  let best_row =
    List.fold_left
      (fun (bn, bs) r ->
        let s = overhead_ratio ~plain:r.r_plain_ns ~fast:r.r_fast_ns ~rf:r.r_ref_ns in
        if r.r_scale = top_scale r.r_name && s > bs then
          (Printf.sprintf "%s@%d" r.r_name r.r_scale, s)
        else (bn, bs))
      ("corpus", corpus_ratio) port_rows
  in
  let speedup_max = snd best_row in
  let speedup_ok = speedup_max >= 2.0 in
  Printf.printf
    "\nfast and reference induce identical plans on every program: %s\n"
    (if identical_all then "yes" else "NO (BUG)");
  Printf.printf
    "best reference/fast profiling-overhead ratio: %.2fx at %s (gate >= 2.0x: %s)\n"
    speedup_max (fst best_row)
    (if speedup_ok then "pass" else "FAIL");
  let json =
    let open Json in
    Obj
      [ ("experiment", String "profile"); ("scale_cap", Int (scale_cap ()));
        ("iters", Int (iters ())); ("corpus_count", Int (corpus_count ()));
        ("corpus_seed", Int (corpus_seed ()));
        ( "programs",
          List
            (List.map
               (fun r ->
                 Obj
                   [ ("name", String r.r_name); ("kind", String r.r_kind);
                     ("scale", Int r.r_scale); ("plain_ns", Float r.r_plain_ns);
                     ("fast_ns", Float r.r_fast_ns);
                     ("reference_ns", Float r.r_ref_ns);
                     ("fast_overhead", Float (ratio r.r_fast_ns r.r_plain_ns));
                     ("reference_overhead", Float (ratio r.r_ref_ns r.r_plain_ns));
                     ("ref_over_fast", Float (ratio r.r_ref_ns r.r_fast_ns));
                     ( "overhead_ratio",
                       Float
                         (overhead_ratio ~plain:r.r_plain_ns ~fast:r.r_fast_ns
                            ~rf:r.r_ref_ns) );
                     ("plans_identical", Bool r.r_identical) ])
               rows) );
        ( "breakdown",
          Obj
            [ ("set", String "ports@top-scale+corpus"); ("plain_ns", Float set_plain);
              ("fast_ns", Float set_fast); ("reference_ns", Float set_ref);
              ( "profilers",
                List
                  (List.map
                     (fun (p, ns) ->
                       Obj
                         [ ("name", String p); ("ns", Float ns);
                           ("overhead", Float (ratio ns set_plain)) ])
                     breakdown) ) ] );
        ("corpus_plain_ns", Float corpus_plain); ("corpus_fast_ns", Float corpus_fast);
        ("corpus_reference_ns", Float corpus_ref);
        ("corpus_speedup", Float corpus_speedup);
        ("corpus_overhead_ratio", Float corpus_ratio);
        ("plans_identical_all", Bool identical_all);
        ("gate_metric", String "(reference_ns - plain_ns) / (fast_ns - plain_ns)");
        ("fast_speedup_max", Float speedup_max);
        ("fast_speedup_at", String (fst best_row));
        ("fast_speedup_ok", Bool speedup_ok) ]
  in
  let oc = open_out "BENCH_profile.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "\nwrote BENCH_profile.json"
