(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (section 6), plus ablations and bechamel
   microbenchmarks.

     dune exec bench/main.exe              -- everything (except micro)
     dune exec bench/main.exe -- fig6      -- one experiment
     dune exec bench/main.exe -- micro     -- wall-clock microbenches

   EXPERIMENTS.md records the paper-vs-measured comparison. *)

open Privateer
open Privateer_workloads
open Privateer_support
open Harness

let section title =
  Printf.printf "\n================ %s ================\n\n" title

(* ---- Table 1 ----------------------------------------------------------- *)

let table1 () =
  section "Table 1: comparison of privatization and reduction schemes";
  Table.print (Privateer_baselines.Feature_matrix.to_table ());
  print_newline ();
  print_endline "Applicability probe on the evaluation suite (this implementation):";
  let t =
    Table.create [ "program"; "Privateer"; "LRPD family"; "DOALL-only (hot loop)" ]
  in
  List.iter
    (fun wl ->
      let c = compiled wl in
      let probe =
        Privateer_baselines.Feature_matrix.probe_program ~name:wl.Workload.name
          c.program c.profiler
      in
      Table.add_row t
        [ probe.program;
          (if probe.privateer_plans then "privatizes" else "no plan");
          (if probe.lrpd_applicable then "applicable" else "inapplicable (layout)");
          (if probe.doall_proves_hot then "proves" else "cannot prove") ])
    (Workloads.all ());
  Table.print t

(* ---- Table 2 ----------------------------------------------------------- *)

let table2 () =
  section "Table 2: metadata transitions on private accesses";
  let open Privateer_runtime in
  let t = Table.create [ "op"; "metadata before"; "metadata after"; "comment" ] in
  let show op current label comment =
    let beta = 9 in
    let after =
      match Shadow.transition op ~current ~beta with
      | Shadow.Keep -> string_of_int current
      | Shadow.Update m ->
        if m = beta then "beta" else string_of_int m
      | Shadow.Fail _ -> "misspec"
    in
    Table.add_row t
      [ (match op with Shadow.Read -> "read" | Shadow.Write -> "write"); label; after;
        comment ]
  in
  show Shadow.Read 0 "0 (live-in)" "read a live-in value";
  show Shadow.Read 1 "1 (old-write)" "loop-carried flow dependence";
  show Shadow.Read 2 "2 (read-live-in)" "read a live-in value";
  show Shadow.Read 5 "a (2 < a < beta)" "loop-carried flow dependence";
  show Shadow.Read 9 "beta" "intra-iteration (private) flow";
  show Shadow.Write 0 "0 (live-in)" "overwrite a live-in value";
  show Shadow.Write 1 "1 (old-write)" "overwrite an old write";
  show Shadow.Write 2 "2 (read-live-in)" "conservative false positive";
  show Shadow.Write 5 "a (2 < a <= beta)" "overwrite a recent write";
  Table.print t;
  Printf.printf
    "\n(The transition function is exhaustively tested against this table;\n checkpoints fire at least every %d iterations so timestamps fit a byte.)\n"
    Shadow.max_interval

(* ---- Table 3 ----------------------------------------------------------- *)

let table3 () =
  section "Table 3: details of privatized and parallelized programs";
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "program"; "invoc"; "checkpt"; "priv R"; "priv W"; "private"; "short-lived";
        "read-only"; "redux"; "unrestricted"; "extras" ]
  in
  List.iter
    (fun wl ->
      let c = compiled wl in
      let par = matrix_run wl 24 in
      let counts = Privateer_transform.Manifest.site_counts c.tr.manifest in
      let count h = string_of_int (List.assoc h counts) in
      let extras =
        match c.tr.manifest.loops with
        | l :: _ when l.extras <> [] -> String.concat ", " l.extras
        | _ -> "-"
      in
      Table.add_row t
        [ wl.Workload.name; string_of_int par.stats.invocations;
          string_of_int par.stats.checkpoints;
          Table.fbytes par.stats.private_bytes_read;
          Table.fbytes par.stats.private_bytes_written; count Privateer_ir.Heap.Private;
          count Privateer_ir.Heap.Short_lived; count Privateer_ir.Heap.Read_only;
          count Privateer_ir.Heap.Redux; count Privateer_ir.Heap.Unrestricted; extras ])
    (Workloads.all ());
  Table.print t

(* ---- Figure 2 (narrative) ---------------------------------------------- *)

let fig2 () =
  section "Figure 2: dijkstra before/after speculative privatization";
  let c = compiled Dijkstra.workload in
  let show program label fns =
    Printf.printf "--- %s ---\n" label;
    List.iter
      (fun (f : Privateer_ir.Ast.func) ->
        if List.mem f.fname fns then print_endline (Privateer_ir.Pp.func_str f))
      program.Privateer_ir.Ast.funcs
  in
  show c.program "original" [ "enqueue"; "dequeue" ];
  show c.tr.program "privatized (allocation sites re-homed)" [ "enqueue"; "dequeue" ];
  (match c.tr.manifest.loops with
  | spec :: _ ->
    List.iter
      (fun (p : Privateer_analysis.Classify.prediction) ->
        Printf.printf
          "// value prediction: at iteration start store %d to %s+%d;\n// at iteration end: if (load(%s+%d) != %d) misspec();\n"
          p.pred_value p.pred_global p.pred_offset p.pred_global p.pred_offset
          p.pred_value)
      spec.predictions
  | [] -> ());
  Printf.printf "separation checks: %d live, %d elided at compile time\n"
    (Privateer_transform.Manifest.live_check_count c.tr.manifest)
    (Privateer_transform.Manifest.elided_check_count c.tr.manifest)

(* ---- Figure 6 ----------------------------------------------------------- *)

let fig6 () =
  section "Figure 6: whole-program speedup vs best sequential execution";
  let t =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) worker_counts)
      ("program" :: List.map (fun w -> string_of_int w ^ "w") worker_counts)
  in
  List.iter
    (fun wl ->
      let c = compiled wl in
      Table.add_row t
        (wl.Workload.name
        :: List.map (fun w -> Table.fx (speedup c (matrix_run wl w))) worker_counts))
    (Workloads.all ());
  let geo w =
    Stats.geomean
      (List.map (fun wl -> speedup (compiled wl) (matrix_run wl w)) (Workloads.all ()))
  in
  Table.add_row t ("geomean" :: List.map (fun w -> Table.fx (geo w)) worker_counts);
  Table.print t;
  Printf.printf "\npaper: geomean 11.4x at 24 cores; measured geomean: %s at 24 workers\n"
    (Table.fx (geo 24))

(* ---- Figure 7 ----------------------------------------------------------- *)

let fig7 () =
  section "Figure 7: enabling effect of Privateer at 24 worker processes";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left ]
      [ "program"; "DOALL-only"; "Privateer"; "DOALL-only parallelized" ]
  in
  let doall_speedups = ref [] in
  List.iter
    (fun wl ->
      let c = compiled wl in
      let report, d_speedup = doall_only_run wl in
      doall_speedups := d_speedup :: !doall_speedups;
      let what =
        match report.chosen with
        | [] -> "nothing"
        | cs ->
          String.concat ", "
            (List.map
               (fun (ch : Privateer_baselines.Doall_only.choice) ->
                 Printf.sprintf "loop %d in %s" ch.d_loop ch.d_func)
               cs)
      in
      Table.add_row t
        [ wl.Workload.name; Table.fx d_speedup; Table.fx (speedup c (matrix_run wl 24));
          what ])
    (Workloads.all ());
  Table.add_row t
    [ "geomean"; Table.fx (Stats.geomean !doall_speedups);
      Table.fx
        (Stats.geomean
           (List.map (fun wl -> speedup (compiled wl) (matrix_run wl 24)) (Workloads.all ())));
      "" ];
  Table.print t;
  print_endline "\npaper: non-speculative parallelization yields 0.93x geomean";
  print_endline "(DOALL-only slows 052.alvinn, proves only blackscholes' inner loop,";
  print_endline " and leaves dijkstra, swaptions and enc-md5 sequential.)"

(* ---- Figure 8 ----------------------------------------------------------- *)

let fig8 () =
  section "Figure 8: breakdown of overheads on parallel performance";
  List.iter
    (fun wl ->
      Printf.printf "%s:\n" wl.Workload.name;
      let t =
        Table.create
          ~aligns:
            [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
              Table.Right; Table.Right ]
          [ "workers"; "useful"; "priv read"; "priv write"; "checkpoint"; "spawn/join";
            "other" ]
      in
      List.iter
        (fun w ->
          let par = matrix_run wl w in
          let b = Privateer_runtime.Stats.breakdown par.stats in
          Table.add_row t
            [ string_of_int w; Table.fpct b.useful; Table.fpct b.private_read;
              Table.fpct b.private_write; Table.fpct b.checkpoint;
              Table.fpct b.spawn_join; Table.fpct b.other ])
        worker_counts;
      Table.print t;
      print_newline ())
    (Workloads.all ())

(* ---- Figure 9 ----------------------------------------------------------- *)

let fig9 () =
  section "Figure 9: performance degradation with misspeculation";
  print_endline
    "(Rates are per iteration; our scaled-down inputs have ~50-2300 iterations\n\
     per program vs the paper's thousands, so the swept rates are proportionally\n\
     higher; the paper's observation -- roughly half the speedup once ~1 in 4\n\
     checkpoints fails -- is checked against the checkpoint failure fraction.)\n";
  let rates = [ 0.0; 0.002; 0.005; 0.01; 0.02; 0.05 ] in
  let t =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) rates)
      ("program" :: List.map (fun r -> Printf.sprintf "%.1f%%" (100.0 *. r)) rates)
  in
  List.iter
    (fun wl ->
      let c = compiled wl in
      Table.add_row t
        (wl.Workload.name
        :: List.map
             (fun rate ->
               let par = run_parallel ?inject:(spaced_injection rate) c in
               Table.fx (speedup c par))
             rates))
    (Workloads.all ());
  Table.print t;
  (* Checkpoint-failure framing for one representative program. *)
  let c = compiled Swaptions.workload in
  print_newline ();
  List.iter
    (fun rate ->
      let par = run_parallel ?inject:(spaced_injection rate) c in
      let failed = par.stats.misspeculations in
      let total = par.stats.checkpoints + failed in
      Printf.printf
        "swaptions at %.1f%%: %d of %d checkpoints failed -> speedup %s\n"
        (100.0 *. rate) failed total
        (Table.fx (speedup c par)))
    [ 0.0; 0.005; 0.01 ]

(* ---- scheduler comparison ------------------------------------------------ *)

(* Cyclic vs Blocked vs Chunked self-scheduling on the two loops with
   the most contrasting iteration profiles: dijkstra (uneven relax
   work per node) and blackscholes (uniform per-option work).  The
   committed state is schedule-independent; only the simulated wall
   clock differs, so per-policy wall cycles are also emitted as JSON
   for downstream tooling. *)
let sched () =
  section "Scheduler comparison: iteration-assignment policies at 24 workers";
  let policies =
    [ Privateer_parallel.Schedule.Cyclic; Privateer_parallel.Schedule.Blocked;
      Privateer_parallel.Schedule.Chunked 4; Privateer_parallel.Schedule.Chunked 16 ]
  in
  let wls = [ Dijkstra.workload; Blackscholes.workload ] in
  let t =
    Table.create
      ~aligns:(Table.Left :: List.concat_map (fun _ -> [ Table.Right; Table.Right ]) wls)
      ("policy"
      :: List.concat_map
           (fun (wl : Workload.t) -> [ wl.name ^ " wall"; wl.name ^ " speedup" ])
           wls)
  in
  let results =
    List.map
      (fun policy ->
        let runs =
          List.map
            (fun wl ->
              let c = compiled wl in
              let par = run_parallel ~schedule:policy c in
              (wl, c, par))
            wls
        in
        Table.add_row t
          (Privateer_parallel.Schedule.to_string policy
          :: List.concat_map
               (fun (_, c, (par : Pipeline.par_run)) ->
                 [ string_of_int par.stats.wall_cycles; Table.fx (speedup c par) ])
               runs);
        (policy, runs))
      policies
  in
  Table.print t;
  let json =
    let open Privateer_support.Json in
    Obj
      [ ( "scheduler_comparison",
          List
            (List.map
               (fun (policy, runs) ->
                 Obj
                   [ ("policy", String (Privateer_parallel.Schedule.to_string policy));
                     ( "workloads",
                       List
                         (List.map
                            (fun ((wl : Workload.t), c, (par : Pipeline.par_run)) ->
                              Obj
                                [ ("program", String wl.name);
                                  ("wall_cycles", Int par.stats.wall_cycles);
                                  ("parallel_cycles", Int par.par_cycles);
                                  ("speedup", Float (speedup c par));
                                  ("output_identical",
                                   Bool (String.equal c.seq.seq_output par.par_output))
                                ])
                            runs) ) ])
               results) ) ]
  in
  print_newline ();
  print_endline (Privateer_support.Json.to_string json)

(* ---- ablations ----------------------------------------------------------- *)

let ablation () =
  section "Ablation: checkpoint period (dijkstra, 24 workers)";
  let c = compiled Dijkstra.workload in
  let t =
    Table.create ~aligns:[ Table.Right; Table.Right; Table.Right ]
      [ "period"; "checkpoints"; "speedup" ]
  in
  List.iter
    (fun k ->
      let par = run_parallel ~checkpoint_period:k c in
      Table.add_row t
        [ string_of_int k; string_of_int par.stats.checkpoints;
          Table.fx (speedup c par) ])
    [ 1; 2; 4; 8; 16; 48; 128; 253 ];
  Table.print t;

  section "Ablation: value prediction disabled (dijkstra)";
  (* Strip the predictions from the manifest: without the iteration
     re-initialization, every worker's second iteration reads queue
     pointers written by its first -> privacy misspeculation storm. *)
  let stripped =
    { c.tr with
      manifest =
        { c.tr.manifest with
          loops =
            List.map
              (fun (l : Privateer_transform.Manifest.loop_spec) ->
                { l with predictions = [] })
              c.tr.manifest.loops } }
  in
  let par =
    Pipeline.run_parallel
      ~setup:(Workload.setup Dijkstra.workload Workload.Ref)
      ~config:(config ()) stripped
  in
  let with_pred = matrix_run Dijkstra.workload 24 in
  Printf.printf
    "with value prediction   : %s (0 misspeculations)\nwithout value prediction: %s (%d misspeculations, %d iterations recovered)\n"
    (Table.fx (speedup c with_pred))
    (Table.fx (speedup c par))
    par.stats.misspeculations par.stats.recovered_iterations;

  section "Ablation: central (serial) commit, STMLite-style";
  let t =
    Table.create ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "program"; "distributed commit"; "serial commit" ]
  in
  List.iter
    (fun wl ->
      let c = compiled wl in
      let serial = run_parallel ~serial_commit:true c in
      Table.add_row t
        [ wl.Workload.name; Table.fx (speedup c (matrix_run wl 24));
          Table.fx (speedup c serial) ])
    (Workloads.all ());
  Table.print t;

  section "Ablation: validation disabled (upper bound, unsound)";
  let t =
    Table.create ~aligns:[ Table.Left; Table.Right; Table.Right ]
      [ "program"; "validated"; "no validation" ]
  in
  List.iter
    (fun wl ->
      let c = compiled wl in
      let novalidate =
        Pipeline.run_parallel
          ~setup:(Workload.setup wl Workload.Ref)
          ~config:{ (config ()) with validate = false }
          c.tr
      in
      Table.add_row t
        [ wl.Workload.name; Table.fx (speedup c (matrix_run wl 24));
          Table.fx (speedup c novalidate) ])
    (Workloads.all ());
  Table.print t

(* ---- dispatch ------------------------------------------------------------ *)

let experiments =
  [ ("table1", table1); ("table2", table2); ("table3", table3); ("fig2", fig2);
    ("fig6", fig6); ("fig7", fig7); ("fig8", fig8); ("fig9", fig9);
    ("sched", sched); ("ablation", ablation) ]

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] ->
    List.iter (fun (_, f) -> f ()) experiments;
    print_newline ();
    print_endline
      "(wall-clock experiments: dune exec bench/main.exe -- micro | overhead | host_parallel | interval_reset | merge | controller | server | eager | scale | profile)"
  | _ :: [ "micro" ] -> Micro.run ()
  | _ :: names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None when name = "micro" -> Micro.run ()
        | None when name = "overhead" -> Overhead.run ()
        | None when name = "host_parallel" -> Host_parallel.run ()
        | None when name = "interval_reset" -> Interval_reset.run ()
        | None when name = "merge" -> Merge.run ()
        | None when name = "controller" -> Controller.run ()
        | None when name = "server" -> Server.run ()
        | None when name = "eager" -> Eager.run ()
        | None when name = "scale" -> Scale.run ()
        | None when name = "profile" -> Profile.run ()
        | None ->
          Printf.eprintf
            "unknown experiment %s (have: %s, micro, overhead, host_parallel, interval_reset, merge, controller, server, eager, scale, profile)\n"
            name
            (String.concat ", " (List.map fst experiments));
          exit 1)
      names
