(* The `host_parallel` experiment: host-time scaling of checkpoint
   extraction over OCaml domains, and the incremental phase-2 merge.

   Three measurements:

   - extraction wall time over 1/2/4/8 host domains on a fixed
     multi-worker footprint (8 workers x 20 dirty shadow pages).  The
     speedup curve depends on the cores the host actually has —
     `host_cores` is recorded next to the numbers so a 1-core CI
     container's flat curve is not mistaken for a regression;
   - merge cost per interval: a clean interval (no new writes)
     short-circuits the index fill and phase-2 scan outright, vs the
     full phase-2 pass over the same live-in reads forced by a single
     write; plus carried vs fresh index state on a writing interval;
   - simulated-cycle identity: dijkstra at host_domains 4 must report
     byte-identical output and the same wall/parallel cycles as at 1 —
     host parallelism is never allowed to move the cycle model.

   Results go to BENCH_host_parallel.json; iteration counts scale down
   via HOST_PARALLEL_ITERS (CI smoke runs use a small value). *)

open Privateer_ir
open Privateer_machine
open Privateer_runtime
open Privateer_support

let iters () =
  match Sys.getenv_opt "HOST_PARALLEL_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 60)
  | None -> 60

let time_ns = Overhead.time_ns

(* ---- extraction scaling ------------------------------------------------- *)

let n_workers = 8
let write_pages = 16
let read_pages = 4

(* One worker's interval footprint: [write_pages] fully timestamped
   pages plus [read_pages] pages of live-in read marks. *)
let footprint_machine () =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  for p = 0 to write_pages - 1 do
    let base = Heap.base Heap.Private + (p * Memory.page_size) in
    for i = 0 to (Memory.page_size / 8) - 1 do
      Shadow.access m Shadow.Write ~addr:(base + (i * 8)) ~size:8 ~beta:5;
      Machine.set_int m (base + (i * 8)) i
    done
  done;
  for p = write_pages to write_pages + read_pages - 1 do
    let base = Heap.base Heap.Private + (p * Memory.page_size) in
    for i = 0 to (Memory.page_size / 8) - 1 do
      Shadow.access m Shadow.Read ~addr:(base + (i * 8)) ~size:8 ~beta:5
    done
  done;
  m

let extraction_requests () =
  List.init n_workers (fun w ->
      { Checkpoint.req_worker = w; req_machine = footprint_machine ();
        req_redux_ranges = []; req_reg_partials = [] })

(* ns per full extraction (all workers), at a given pool size.
   Dedicated pools per size so the chunking matches the label. *)
let bench_extraction reqs domains =
  let rounds = iters () in
  if domains = 1 then
    time_ns ~rounds ~reps:1 (fun () ->
        ignore (Checkpoint.extract ~interval_start:0 reqs))
  else begin
    let pool = Domain_pool.create ~domains () in
    let ns =
      time_ns ~rounds ~reps:1 (fun () ->
          ignore (Checkpoint.extract ~pool ~interval_start:0 reqs))
    in
    Domain_pool.shutdown pool;
    ns
  end

(* ---- merge cost per interval -------------------------------------------- *)

let reader_contribution ~reads =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  for i = 0 to reads - 1 do
    Shadow.access m Shadow.Read ~addr:(Heap.base Heap.Private + (i * 8)) ~size:8 ~beta:5
  done;
  Checkpoint.contribution_of_worker ~worker:0 ~interval_start:0 m ~redux_ranges:[]
    ~reg_partials:[]

let writer_contribution ~words =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  for i = 0 to words - 1 do
    let addr = Heap.base Heap.Private + 65536 + (i * 8) in
    Shadow.access m Shadow.Write ~addr ~size:8 ~beta:5;
    Machine.set_int m addr i
  done;
  Checkpoint.contribution_of_worker ~worker:1 ~interval_start:0 m ~redux_ranges:[]
    ~reg_partials:[]

let bench_merge () =
  let rounds = iters () * 20 in
  let clean = [ reader_contribution ~reads:2048 ] in
  let one_write = writer_contribution ~words:1 :: clean in
  let writing = [ writer_contribution ~words:2048 ] in
  let state = Checkpoint.create_merge_state () in
  let t_clean = time_ns ~rounds ~reps:1 (fun () -> ignore (Checkpoint.merge ~state clean)) in
  let t_full =
    time_ns ~rounds ~reps:1 (fun () -> ignore (Checkpoint.merge ~state one_write))
  in
  let t_write_fresh =
    time_ns ~rounds ~reps:1 (fun () -> ignore (Checkpoint.merge writing))
  in
  let t_write_carried =
    time_ns ~rounds ~reps:1 (fun () -> ignore (Checkpoint.merge ~state writing))
  in
  (t_clean, t_full, t_write_fresh, t_write_carried)

(* ---- simulated-cycle identity ------------------------------------------- *)

let simulated_identity () =
  let c = Harness.compiled Privateer_workloads.Dijkstra.workload in
  let base = Harness.run_parallel ~host_domains:1 c in
  let par = Harness.run_parallel ~host_domains:4 c in
  let open Privateer.Pipeline in
  ( base.stats.wall_cycles, par.stats.wall_cycles,
    base.par_cycles = par.par_cycles
    && base.stats.wall_cycles = par.stats.wall_cycles
    && base.stats.checkpoints = par.stats.checkpoints,
    String.equal base.par_output par.par_output )

(* ---- driver ------------------------------------------------------------- *)

let run () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "\n================ host_parallel: extraction over OCaml domains ================\n\n";
  Printf.printf
    "footprint: %d workers x (%d written + %d read-live-in) pages; host cores: %d\n\n"
    n_workers write_pages read_pages cores;
  let reqs = extraction_requests () in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let curve = List.map (fun d -> (d, bench_extraction reqs d)) domain_counts in
  let t_seq = List.assoc 1 curve in
  let t =
    Table.create
      ~aligns:[ Table.Right; Table.Right; Table.Right ]
      [ "host domains"; "extraction us"; "speedup vs 1" ]
  in
  List.iter
    (fun (d, ns) ->
      Table.add_row t
        [ string_of_int d; Printf.sprintf "%.1f" (ns /. 1e3);
          Printf.sprintf "%.2fx" (t_seq /. ns) ])
    curve;
  Table.print t;
  if cores <= 1 then
    print_endline
      "\n(single host core: the curve is flat here by construction; the speedup\n\
      \ column is only meaningful on a multi-core host)";
  let t_clean, t_full, t_write_fresh, t_write_carried = bench_merge () in
  Printf.printf "\nmerge cost per interval (2048 live-in reads / 2048 written words):\n";
  Printf.printf "  clean interval, short-circuit   : %8.1f ns\n" t_clean;
  Printf.printf "  1-write interval, full phase-2  : %8.1f ns (%.1fx the clean cost)\n"
    t_full (t_full /. t_clean);
  Printf.printf "  writing interval, fresh index   : %8.1f ns\n" t_write_fresh;
  Printf.printf "  writing interval, carried index : %8.1f ns\n" t_write_carried;
  let wall_1, wall_4, cycles_equal, output_equal = simulated_identity () in
  Printf.printf
    "\nsimulated identity (dijkstra, 24 workers): host_domains 1 -> %d cycles, 4 -> %d cycles; cycles %s, output %s\n"
    wall_1 wall_4
    (if cycles_equal then "identical" else "DIFFER (BUG)")
    (if output_equal then "identical" else "DIFFERS (BUG)");
  let json =
    let open Json in
    Obj
      [ ("experiment", String "host_parallel"); ("host_cores", Int cores);
        ("iters", Int (iters ()));
        ( "footprint",
          Obj
            [ ("workers", Int n_workers); ("write_pages", Int write_pages);
              ("read_pages", Int read_pages) ] );
        ( "extraction_ns",
          List
            (List.map
               (fun (d, ns) ->
                 Obj
                   [ ("host_domains", Int d); ("ns", Float ns);
                     ("speedup_vs_1", Float (t_seq /. ns)) ])
               curve) );
        ( "merge_ns",
          Obj
            [ ("clean_interval_short_circuit", Float t_clean);
              ("one_write_full_phase2", Float t_full);
              ("short_circuit_speedup", Float (t_full /. t_clean));
              ("writing_interval_fresh_index", Float t_write_fresh);
              ("writing_interval_carried_index", Float t_write_carried) ] );
        ( "simulated_identity",
          Obj
            [ ("workload", String "dijkstra"); ("wall_cycles_1_domain", Int wall_1);
              ("wall_cycles_4_domains", Int wall_4); ("cycles_identical", Bool cycles_equal);
              ("output_identical", Bool output_equal) ] ) ]
  in
  let oc = open_out "BENCH_host_parallel.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "\nwrote BENCH_host_parallel.json"
