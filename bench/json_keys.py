#!/usr/bin/env python3
"""Print the sorted set of key paths in a JSON document.

Used by CI to diff a freshly generated bench report (e.g.
BENCH_merge.json) against its committed schema (BENCH_merge.keys):
values change run to run, the key structure must not drift silently.
List elements collapse onto one `[]` segment, so arrays of uniform
objects contribute each field once.

    python3 bench/json_keys.py BENCH_merge.json | diff -u bench/BENCH_merge.keys -
"""
import json
import sys


def paths(node, prefix, out):
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            out.add(path)
            paths(value, path, out)
    elif isinstance(node, list):
        for value in node:
            paths(value, prefix + "[]", out)


def main():
    if len(sys.argv) != 2:
        sys.exit(f"usage: {sys.argv[0]} FILE.json")
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    out = set()
    paths(doc, "", out)
    print("\n".join(sorted(out)))


if __name__ == "__main__":
    main()
