(* The `controller` experiment: does the adaptive host-parallelism
   controller eliminate the merge's parallel-dispatch regression, and
   do its modes (and the pool schedulers) leave the simulation
   byte-identical?

   Two measurements:

   - merge wall time through the full controller loop (decide ->
     merge -> note) on the dense `merge` footprint, at modes never /
     always / auto x host domains 1 / 4.  `never` at 1 domain is the
     sequential reference; `always` at 4 domains reproduces the
     pre-controller behavior (parallel unconditionally — the
     configuration that regressed on few-core hosts); `auto` at 4
     domains is the controller's answer, which must come out within
     5% of the sequential reference (`regression_eliminated`) — by
     deciding sequential where dispatch loses, and by actually being
     faster where it wins;
   - simulated-cycle identity over 18 cells: controller mode {auto,
     always, never} x pool kind {work-stealing, legacy} x
     (host_domains, merge_shards) {(1,1), (3,4), (3,7)} on dijkstra
     must be byte-identical (output, wall cycles, checkpoints) to the
     1-domain / never / 1-shard baseline — neither the scheduler nor
     the policy is allowed to move the cycle model.

   Results go to BENCH_controller.json; iteration counts scale down
   via CONTROLLER_ITERS (CI smoke runs use a small value). *)

open Privateer_runtime
open Privateer_support
module Host_controller = Privateer_parallel.Host_controller

let iters () =
  match Sys.getenv_opt "CONTROLLER_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 40)
  | None -> 40

(* One merge of the dense footprint, exactly as Commit drives it: the
   controller decides, the merge runs sequential or parallel at the
   decided width, the observed cost feeds the EWMA back.  Auto's later
   rounds therefore run at whatever the controller learned from the
   earlier ones — which is the point. *)
let bench_mode mode domains =
  let cs = Merge.contribs () in
  let state = Checkpoint.create_merge_state ~shards:Merge.shards () in
  let units =
    List.fold_left
      (fun acc (c : Checkpoint.contribution) ->
        acc + Hashtbl.length c.Checkpoint.writes
        + Hashtbl.length c.Checkpoint.live_in_reads)
      0 cs
  in
  let hc = Host_controller.create ~mode ~pool_size:domains () in
  (* As in Executor.create: no pool unless the controller could ever
     use it — idle domains tax every minor collection. *)
  let pool =
    if domains > 1 && Host_controller.may_parallelize hc then
      Some (Domain_pool.create ~domains ())
    else None
  in
  let ns =
    Overhead.time_ns ~rounds:(iters ()) ~reps:1 (fun () ->
        let d = Host_controller.decide hc Host_controller.Merge ~units in
        let t0 = Clock.now_ns () in
        ignore
          (Checkpoint.merge ~state
             ?pool:(if d.Host_controller.par then pool else None)
             ~jobs:d.Host_controller.width cs);
        let dt = Clock.now_ns () -. t0 in
        Host_controller.note hc Host_controller.Merge ~units
          ~par:(d.Host_controller.par && pool <> None)
          ~ns:dt)
  in
  (match pool with Some p -> Domain_pool.shutdown p | None -> ());
  ns

(* ---- simulated-cycle identity ------------------------------------------- *)

let identity_matrix () =
  let c = Harness.compiled Privateer_workloads.Dijkstra.workload in
  let open Privateer.Pipeline in
  let base =
    Harness.run_parallel ~host_domains:1 ~merge_shards:1
      ~host_controller:Host_controller.Never c
  in
  let cells =
    List.concat_map
      (fun mode ->
        List.concat_map
          (fun kind ->
            List.map
              (fun (domains, shards) ->
                let par =
                  Harness.run_parallel ~host_domains:domains ~merge_shards:shards
                    ~pool_kind:kind ~host_controller:mode c
                in
                let identical =
                  base.par_cycles = par.par_cycles
                  && base.stats.wall_cycles = par.stats.wall_cycles
                  && base.stats.checkpoints = par.stats.checkpoints
                  && String.equal base.par_output par.par_output
                in
                (mode, kind, domains, shards, par, identical))
              [ (1, 1); (3, 4); (3, 7) ])
          [ Domain_pool.Work_stealing; Domain_pool.Single_queue ])
      [ Host_controller.Auto; Host_controller.Always; Host_controller.Never ]
  in
  (base, cells)

(* ---- driver ------------------------------------------------------------- *)

let run () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "\n================ controller: adaptive per-stage host parallelism ================\n\n";
  Printf.printf
    "merge footprint as in `merge` (%d workers x %d words + %d live-in probes, %d shards); host cores: %d\n\n"
    Merge.n_workers Merge.words_per_worker Merge.live_in_per_worker Merge.shards
    cores;
  let modes =
    [ (Host_controller.Never, 1); (Host_controller.Never, 4);
      (Host_controller.Always, 4); (Host_controller.Auto, 1);
      (Host_controller.Auto, 4) ]
  in
  let results =
    List.map (fun (mode, domains) -> (mode, domains, bench_mode mode domains)) modes
  in
  let t_seq =
    match results with (_, _, ns) :: _ -> ns | [] -> assert false
  in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      [ "controller"; "host domains"; "merge us"; "vs sequential" ]
  in
  List.iter
    (fun (mode, domains, ns) ->
      Table.add_row t
        [ Host_controller.mode_to_string mode; string_of_int domains;
          Printf.sprintf "%.1f" (ns /. 1e3); Printf.sprintf "%.2fx" (ns /. t_seq) ])
    results;
  Table.print t;
  let find mode domains =
    let _, _, ns =
      List.find (fun (m, d, _) -> m = mode && d = domains) results
    in
    ns
  in
  let auto_ns = find Host_controller.Auto 4 in
  let always_ns = find Host_controller.Always 4 in
  let auto_vs_seq = auto_ns /. t_seq in
  let regression_eliminated = auto_vs_seq <= 1.05 in
  Printf.printf
    "\nalways@4: %.2fx sequential; auto@4: %.2fx sequential -> regression %s\n"
    (always_ns /. t_seq) auto_vs_seq
    (if regression_eliminated then "eliminated (<= 1.05x)" else "NOT eliminated");
  if cores <= 1 then
    print_endline
      "(single host core: auto's core gate alone picks sequential here)";

  let base, cells = identity_matrix () in
  let open Privateer.Pipeline in
  Printf.printf
    "\nsimulated identity (dijkstra, 24 workers): 1 domain / never / 1 shard -> %d wall cycles\n"
    base.stats.wall_cycles;
  let all_identical =
    List.for_all (fun (_, _, _, _, _, identical) -> identical) cells
  in
  List.iter
    (fun (mode, kind, domains, shards, (par : Privateer.Pipeline.par_run),
          identical) ->
      Printf.printf
        "  %-6s / %-13s / %d domains / %d shards -> %d wall cycles; %s\n"
        (Host_controller.mode_to_string mode)
        (Domain_pool.kind_to_string kind)
        domains shards par.stats.wall_cycles
        (if identical then "identical" else "DIFFERS (BUG)"))
    cells;
  Printf.printf "identity matrix (%d cells): %s\n" (List.length cells)
    (if all_identical then "all cells identical" else "MISMATCH (BUG)");

  let json =
    let open Json in
    Obj
      [ ("experiment", String "controller"); ("host_cores", Int cores);
        ("iters", Int (iters ()));
        ( "merge_ns",
          List
            (List.map
               (fun (mode, domains, ns) ->
                 Obj
                   [ ("controller", String (Host_controller.mode_to_string mode));
                     ("host_domains", Int domains); ("merge_ns", Float ns);
                     ("vs_sequential", Float (ns /. t_seq)) ])
               results) );
        ("auto_vs_seq", Float auto_vs_seq);
        ("always_vs_seq", Float (always_ns /. t_seq));
        ("regression_eliminated", Bool regression_eliminated);
        ( "simulated_identity",
          Obj
            [ ("workload", String "dijkstra");
              ("baseline_wall_cycles", Int base.stats.wall_cycles);
              ("cells_total", Int (List.length cells));
              ("all_identical", Bool all_identical);
              ( "cells",
                List
                  (List.map
                     (fun (mode, kind, domains, shards,
                           (par : Privateer.Pipeline.par_run), identical) ->
                       Obj
                         [ ( "controller",
                             String (Host_controller.mode_to_string mode) );
                           ("pool_kind", String (Domain_pool.kind_to_string kind));
                           ("host_domains", Int domains);
                           ("merge_shards", Int shards);
                           ("wall_cycles", Int par.stats.wall_cycles);
                           ("identical_to_baseline", Bool identical) ])
                     cells) ) ] ) ]
  in
  let oc = open_out "BENCH_controller.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "\nwrote BENCH_controller.json"
