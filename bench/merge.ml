(* The `merge` experiment: host-time scaling of the sharded phase-2
   merge over OCaml domains, the early-exit extraction scan, and the
   adaptive shadow-pool cap.

   Four measurements:

   - merge wall time over 1/2/4/8 host domains on a dense multi-worker
     interval (8 workers x 3000 overlapping words each + 512 live-in
     probes per worker), through a carried 8-shard merge state.  One
     domain is the sequential baseline (single routed pass); more
     domains run the fill / validate / sweep passes as per-shard jobs.
     Per-phase host time is reported from the state's accumulated
     timings.  As in `interval_reset`, the curve depends on the cores
     the host actually has -- `host_cores` is recorded next to the
     numbers so a 1-core CI container's flat curve is not mistaken for
     a regression;
   - the early-exit extraction scan: three 16-page footprints with
     identical extraction work per kind -- 8 marked words at each page
     head, the same 8 words at each page tail, and fully-marked pages.
     Head vs tail isolates the early exit itself (same marks, the tail
     variant must walk the whole page to find them), dense shows the
     cost scan distance no longer dominates;
   - fixed vs adaptive pool cap on a phase-shifting reset footprint
     (32 -> 4 -> 16 fully-timestamped pages): the unbounded pool keeps
     its high-water buffer count forever, a small fixed cap evicts
     through the big phase, `auto` tracks each phase's retirement
     footprint.  Free-list high water, evictions, ready buffers and
     the learned cap are reported per mode;
   - simulated-cycle identity: dijkstra across merge_shards {1, 4, 7}
     x host_domains {1, 3} x pool cap {0, auto, unbounded} must report
     byte-identical output and the same wall cycles and checkpoint
     count as the (1 domain, cap 0, 1 shard) baseline -- no host knob
     is allowed to move the cycle model.

   Results go to BENCH_merge.json; iteration counts scale down via
   MERGE_ITERS (CI smoke runs use a small value). *)

open Privateer_ir
open Privateer_machine
open Privateer_runtime
open Privateer_support

let iters () =
  match Sys.getenv_opt "MERGE_ITERS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 40)
  | None -> 40

let time_ns = Overhead.time_ns

(* ---- the dense merge footprint ------------------------------------------ *)

let n_workers = 8
let words_per_worker = 3000
let live_in_per_worker = 512
let shards = 8

(* Synthetic interval contributions: worker [w] writes words
   [w*1500, w*1500 + 3000), so adjacent workers overlap on half their
   range (exercising the multi-writer index path), and probes 512
   live-in byte addresses far above every written word (each costs a
   phase-2 index lookup that misses -- the interval is clean). *)
let contribs () =
  let base = Heap.base Heap.Private in
  List.init n_workers (fun w ->
      let writes = Hashtbl.create (words_per_worker * 2) in
      for i = 0 to words_per_worker - 1 do
        let addr = base + (((w * (words_per_worker / 2)) + i) * 8) in
        Hashtbl.replace writes addr
          { Checkpoint.iter = w; bits = Int64.of_int ((w * 100000) + i);
            is_float = false }
      done;
      let live = Hashtbl.create (live_in_per_worker * 2) in
      for i = 0 to live_in_per_worker - 1 do
        Hashtbl.replace live
          (base + (1 lsl 22) + (((w * live_in_per_worker) + i) * 8))
          ()
      done;
      { Checkpoint.worker = w; writes; live_in_reads = live; redux_words = [];
        reg_partials = [];
        pages_touched = words_per_worker * 8 / Memory.page_size })

(* ns per merge of the dense interval through a carried 8-shard state
   (the sweep returns the state to empty, so every round runs the same
   delta).  Returns total ns plus per-call phase-time averages.
   [kind] selects the pool scheduler (work-stealing vs the legacy
   single queue) so the curve doubles as the schedulers' comparison. *)
let bench_merge ?(kind = Domain_pool.Work_stealing) domains =
  let cs = contribs () in
  let state = Checkpoint.create_merge_state ~shards () in
  let rounds = iters () in
  let run pool =
    time_ns ~rounds ~reps:1 (fun () ->
        ignore (Checkpoint.merge ~state ?pool cs))
  in
  let ns =
    if domains = 1 then run None
    else begin
      let pool = Domain_pool.create ~kind ~domains () in
      let ns = run (Some pool) in
      Domain_pool.shutdown pool;
      ns
    end
  in
  (* time_ns runs one untimed warmup call plus [rounds] timed calls,
     all through the same state. *)
  let calls = float_of_int (rounds + 1) in
  let pt = Checkpoint.phase_timings state in
  ( ns, pt.Checkpoint.fill_ns /. calls, pt.Checkpoint.validate_ns /. calls,
    pt.Checkpoint.sweep_ns /. calls )

(* ---- the early-exit extraction scan ------------------------------------- *)

let scan_pages = 16
let sparse_marks = 8

type scan_kind = Head | Tail | Dense

(* [scan_pages] private shadow pages, each marked per [kind]:
   [sparse_marks] words at the page head, the same count at the page
   tail, or wall-to-wall timestamps.  beta = 5 puts every mark at or
   above [first_timestamp]. *)
let scan_machine kind =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  for p = 0 to scan_pages - 1 do
    let base = Heap.base Heap.Private + (p * Memory.page_size) in
    let mark off = Shadow.access m Shadow.Write ~addr:(base + off) ~size:8 ~beta:5 in
    match kind with
    | Head -> for i = 0 to sparse_marks - 1 do mark (i * 8) done
    | Tail ->
      for i = 0 to sparse_marks - 1 do
        mark (Memory.page_size - (sparse_marks * 8) + (i * 8))
      done
    | Dense -> for i = 0 to (Memory.page_size / 8) - 1 do mark (i * 8) done
  done;
  m

(* Extraction does not mutate, so rounds share one populated machine. *)
let bench_scan kind =
  let m = scan_machine kind in
  time_ns ~rounds:(iters ()) ~reps:1 (fun () ->
      ignore
        (Checkpoint.contribution_of_worker ~worker:0 ~interval_start:0 m
           ~redux_ranges:[] ~reg_partials:[]))

(* ---- fixed vs adaptive pool cap ----------------------------------------- *)

(* Reset-footprint phases: (intervals, fully-timestamped pages). *)
let pool_phases = [ (10, 32); (20, 4); (10, 16) ]

let phase_footprint pages =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  for p = 0 to pages - 1 do
    let base = Heap.base Heap.Private + (p * Memory.page_size) in
    for i = 0 to (Memory.page_size / 8) - 1 do
      Shadow.access m Shadow.Write ~addr:(base + (i * 8)) ~size:8 ~beta:5
    done
  done;
  m

(* Run the phase-shifting reset sequence against one pool; the reset's
   sequential tail reports each interval's retirement footprint, which
   is what the auto cap learns from. *)
let run_pool_scenario cap =
  let pool = Page_pool.create ~cap ~fill:(Char.chr Shadow.old_write) () in
  List.iter
    (fun (intervals, pages) ->
      for _ = 1 to intervals do
        ignore (Shadow.reset_interval ~page_pool:pool (phase_footprint pages))
      done)
    pool_phases;
  (Page_pool.stats pool, Page_pool.ready pool, Page_pool.current_cap pool)

let cap_label cap =
  if cap = Page_pool.auto then "auto"
  else if cap = Page_pool.unbounded then "unbounded"
  else string_of_int cap

(* ---- simulated-cycle identity ------------------------------------------- *)

let identity_matrix () =
  let c = Harness.compiled Privateer_workloads.Dijkstra.workload in
  let open Privateer.Pipeline in
  let base = Harness.run_parallel ~host_domains:1 ~pool_cap:0 ~merge_shards:1 c in
  let cells =
    List.concat_map
      (fun merge_shards ->
        List.concat_map
          (fun domains ->
            List.map
              (fun cap ->
                let par =
                  Harness.run_parallel ~host_domains:domains ~pool_cap:cap
                    ~merge_shards c
                in
                let identical =
                  base.par_cycles = par.par_cycles
                  && base.stats.wall_cycles = par.stats.wall_cycles
                  && base.stats.checkpoints = par.stats.checkpoints
                  && String.equal base.par_output par.par_output
                in
                (merge_shards, domains, cap, par, identical))
              [ 0; Page_pool.auto; Page_pool.unbounded ])
          [ 1; 3 ])
      [ 1; 4; 7 ]
  in
  (base, cells)

(* ---- driver ------------------------------------------------------------- *)

let run () =
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "\n================ merge: sharded phase-2 merge over OCaml domains ================\n\n";
  Printf.printf
    "footprint: %d workers x %d words (half-overlapping) + %d live-in probes each, %d shards; host cores: %d\n\n"
    n_workers words_per_worker live_in_per_worker shards cores;
  let domain_counts = [ 1; 2; 4; 8 ] in
  (* Both pool schedulers over the same domain counts; domains = 1 is
     the poolless sequential baseline in either kind, so it runs once
     (under the work-stealing label). *)
  let curve =
    List.concat_map
      (fun kind ->
        List.filter_map
          (fun d ->
            if d = 1 && kind <> Domain_pool.Work_stealing then None
            else Some (kind, d, bench_merge ~kind d))
          domain_counts)
      [ Domain_pool.Work_stealing; Domain_pool.Single_queue ]
  in
  let t_seq =
    match curve with (_, _, (ns, _, _, _)) :: _ -> ns | [] -> assert false
  in
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Right ]
      [ "pool kind"; "host domains"; "merge us"; "fill us"; "validate us";
        "sweep us"; "speedup vs 1" ]
  in
  List.iter
    (fun (kind, d, (ns, fill, validate, sweep)) ->
      Table.add_row t
        [ Domain_pool.kind_to_string kind; string_of_int d;
          Printf.sprintf "%.1f" (ns /. 1e3);
          Printf.sprintf "%.1f" (fill /. 1e3);
          Printf.sprintf "%.1f" (validate /. 1e3);
          Printf.sprintf "%.1f" (sweep /. 1e3);
          Printf.sprintf "%.2fx" (t_seq /. ns) ])
    curve;
  Table.print t;
  if cores <= 1 then
    print_endline
      "\n(single host core: the domain curve is flat here by construction)";

  let head_ns = bench_scan Head in
  let tail_ns = bench_scan Tail in
  let dense_ns = bench_scan Dense in
  Printf.printf
    "\nextraction scan (%d pages): %d head marks %.1f us, same marks at tail %.1f us (early-exit win %.2fx), dense %.1f us\n"
    scan_pages sparse_marks (head_ns /. 1e3) (tail_ns /. 1e3)
    (tail_ns /. head_ns) (dense_ns /. 1e3);

  let pool_results =
    List.map
      (fun cap -> (cap, run_pool_scenario cap))
      [ Page_pool.unbounded; 8; Page_pool.auto ]
  in
  Printf.printf "\npool cap on a %s-page reset sequence:\n"
    (String.concat " -> "
       (List.map (fun (_, pages) -> string_of_int pages) pool_phases));
  let t =
    Table.create
      ~aligns:
        [ Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
          Table.Right ]
      [ "cap"; "swaps"; "recycled"; "evictions"; "high water"; "learned cap" ]
  in
  List.iter
    (fun (cap, ((ps : Page_pool.stats), _ready, current)) ->
      Table.add_row t
        [ cap_label cap; string_of_int ps.Page_pool.swaps;
          string_of_int ps.Page_pool.recycled;
          string_of_int ps.Page_pool.evictions;
          string_of_int ps.Page_pool.high_water; cap_label current ])
    pool_results;
  Table.print t;

  let base, cells = identity_matrix () in
  let open Privateer.Pipeline in
  Printf.printf
    "\nsimulated identity (dijkstra, 24 workers): 1 domain / cap 0 / 1 shard -> %d wall cycles\n"
    base.stats.wall_cycles;
  let all_identical =
    List.for_all (fun (_, _, _, _, identical) -> identical) cells
  in
  List.iter
    (fun (merge_shards, domains, cap, (par : Privateer.Pipeline.par_run),
          identical) ->
      Printf.printf "  %d shards / %d domains / cap %-9s -> %d wall cycles; %s\n"
        merge_shards domains (cap_label cap) par.stats.wall_cycles
        (if identical then "identical" else "DIFFERS (BUG)"))
    cells;
  Printf.printf "identity matrix: %s\n"
    (if all_identical then "all cells identical" else "MISMATCH (BUG)");

  let json =
    let open Json in
    Obj
      [ ("experiment", String "merge"); ("host_cores", Int cores);
        ("iters", Int (iters ()));
        ( "footprint",
          Obj
            [ ("workers", Int n_workers);
              ("words_per_worker", Int words_per_worker);
              ("live_in_per_worker", Int live_in_per_worker);
              ("shards", Int shards) ] );
        ( "merge_ns",
          List
            (List.map
               (fun (kind, d, (ns, fill, validate, sweep)) ->
                 Obj
                   [ ("pool_kind", String (Domain_pool.kind_to_string kind));
                     ("host_domains", Int d); ("merge_ns", Float ns);
                     ("fill_ns", Float fill); ("validate_ns", Float validate);
                     ("sweep_ns", Float sweep);
                     ("speedup_vs_1", Float (t_seq /. ns)) ])
               curve) );
        ( "scan_ns",
          Obj
            [ ("pages", Int scan_pages); ("sparse_marks", Int sparse_marks);
              ("head_ns", Float head_ns); ("tail_ns", Float tail_ns);
              ("dense_ns", Float dense_ns);
              ("early_exit_win", Float (tail_ns /. head_ns)) ] );
        ( "pool_cap",
          List
            (List.map
               (fun (cap, ((ps : Page_pool.stats), ready, current)) ->
                 Obj
                   [ ("cap", String (cap_label cap));
                     ("swaps", Int ps.Page_pool.swaps);
                     ("recycled", Int ps.Page_pool.recycled);
                     ("evictions", Int ps.Page_pool.evictions);
                     ("high_water", Int ps.Page_pool.high_water);
                     ("ready", Int ready);
                     ("current_cap", String (cap_label current)) ])
               pool_results) );
        ( "simulated_identity",
          Obj
            [ ("workload", String "dijkstra");
              ("baseline_wall_cycles", Int base.stats.wall_cycles);
              ("all_identical", Bool all_identical);
              ( "cells",
                List
                  (List.map
                     (fun (merge_shards, domains, cap,
                           (par : Privateer.Pipeline.par_run), identical) ->
                       Obj
                         [ ("merge_shards", Int merge_shards);
                           ("host_domains", Int domains);
                           ("pool_cap", String (cap_label cap));
                           ("wall_cycles", Int par.stats.wall_cycles);
                           ("identical_to_baseline", Bool identical) ])
                     cells) ) ] ) ]
  in
  let oc = open_out "BENCH_merge.json" in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  print_endline "\nwrote BENCH_merge.json"
