(* End-to-end speculation-safety tests: programs whose *reference*
   input behaves differently from the training input, so speculation
   is genuinely wrong at runtime.  The system must detect every case
   (separation, control, value, lifetime) and recover to exactly
   sequential behaviour — the paper's core soundness claim. *)

open Privateer

let check = Alcotest.(check bool)

(* Plan-content assertions need the full profile, regardless of the
   PRIVATEER_PROFILERS environment the suite runs under. *)
let full_profile =
  { Privateer_parallel.Runtime_config.default with profilers = [ "all" ] }

let config ?(workers = 4) () =
  { Privateer_parallel.Executor.default_config with workers }

(* Train with mode=0, run with mode=1; compare against sequential. *)
let train_ref_divergence ?workers src =
  let program = Pipeline.parse src in
  let tr, _ =
    Pipeline.compile ~config:full_profile
      ~setup:(fun st -> Pipeline.set_global st "mode" 0)
      program
  in
  check "trained program planned a loop" true (tr.selection.plans <> []);
  let setup st = Pipeline.set_global st "mode" 1 in
  let seq = Pipeline.run_sequential ~setup program in
  let par = Pipeline.run_parallel ~setup ~config:(config ?workers ()) tr in
  Alcotest.(check string) "recovered output equals sequential" seq.seq_output
    par.par_output;
  check "results equal" true (Privateer_interp.Value.equal seq.seq_result par.par_result);
  par

let test_control_misspeculation_in_production () =
  (* The error path never runs in training (control-speculated away)
     but runs for some ref iterations: the Misspec marker must fire
     and recovery must execute the original cold code. *)
  let par =
    train_ref_divergence
      {|global mode; global scratch[8]; global err_count;
fn main() {
  err_count = 0;
  for (k = 0; k < 60) {
    scratch[0] = k;
    if (mode == 1 && k % 13 == 5) {
      err_count = err_count + 1;   // cold in training
    }
  }
  print("errs %d\n", err_count);
  return err_count;
}|}
  in
  check "misspeculated at least once" true (par.stats.misspeculations > 0)

let test_lifetime_misspeculation_in_production () =
  (* In training every node is freed within its iteration
     (short-lived); the ref input leaks one node past the iteration,
     violating lifetime speculation. *)
  let par =
    train_ref_divergence
      {|global mode; global keeper; global out[40];
fn main() {
  keeper = 0;
  for (k = 0; k < 40) {
    var node = malloc(1);
    node[0] = k * 3;
    out[k] = node[0];
    if (mode == 1 && k == 17) {
      keeper = node;           // escapes the iteration
    } else {
      free(node);
    }
  }
  if (keeper != 0) { free(keeper); }
  var s = 0;
  for (q = 0; q < 40) { s = s + out[q]; }
  return s;
}|}
  in
  check "lifetime violation detected" true (par.stats.misspeculations > 0)

let test_value_misspeculation_in_production () =
  (* flag returns to 0 every training iteration; one ref iteration
     leaves 5 behind: the end-of-iteration prediction check fires. *)
  let par =
    train_ref_divergence
      {|global mode; global flag; global out[50];
fn main() {
  flag = 0;
  for (k = 0; k < 50) {
    out[k] = flag + k;
    flag = 9;
    if (mode == 1 && k == 20) { flag = 5; } else { flag = 0; }
  }
  flag = 0;
  var s = 0;
  for (q = 0; q < 50) { s = s + out[q]; }
  return s;
}|}
  in
  check "prediction failure detected" true (par.stats.misspeculations > 0)

let test_separation_misspeculation_in_production () =
  (* In training the helper only ever touches the iteration's own
     node; in the ref run one iteration writes through a pointer into
     an object classified read-only. *)
  let par =
    train_ref_divergence
      {|global mode; global table[16]; global out[48];
fn main() {
  for (j = 0; j < 16) { table[j] = j * j; }
  for (k = 0; k < 48) {
    var node = malloc(2);
    node[0] = table[k % 16];
    var target = node;
    if (mode == 1 && k == 9) { target = &table; }  // foreign write
    target[0] = k;
    out[k] = node[0];
    free(node);
  }
  var s = 0;
  for (q = 0; q < 48) { s = s + out[q] + table[q % 16]; }
  return s;
}|}
  in
  check "separation violation detected" true (par.stats.misspeculations > 0)

let test_two_parallel_loops_one_program () =
  (* Two independent privatizable hot loops, not nested: both must be
     selected and both must run speculatively. *)
  let src =
    {|global scratch[16]; global out_a[40]; global out_b[40]; global buf[16];
fn phase_a() {
  for (k = 0; k < 40) {
    for (i = 0; i < 16) { scratch[i] = k + i; }
    out_a[k] = scratch[k % 16];
  }
}
fn phase_b() {
  for (k2 = 0; k2 < 40) {
    for (i2 = 0; i2 < 16) { buf[i2] = k2 * i2; }
    out_b[k2] = buf[k2 % 16];
  }
}
fn main() {
  phase_a();
  phase_b();
  var s = 0;
  for (q = 0; q < 40) { s = s + out_a[q] + out_b[q]; }
  print("%d\n", s);
  return s;
}|}
  in
  let program = Pipeline.parse src in
  let tr, _ = Pipeline.compile ~config:full_profile program in
  Alcotest.(check int) "two plans" 2 (List.length tr.selection.plans);
  let seq = Pipeline.run_sequential program in
  let par = Pipeline.run_parallel ~config:(config ()) tr in
  Alcotest.(check string) "outputs equal" seq.seq_output par.par_output;
  Alcotest.(check int) "two invocations" 2 par.stats.invocations

let test_loop_in_helper_called_twice () =
  (* One parallel loop invoked from two call sites: two invocations of
     the same region (like alvinn's per-epoch invocations). *)
  let src =
    {|global scratch[8]; global out[80];
fn sweep(base) {
  for (k = 0; k < 40) {
    scratch[0] = base + k;
    out[base + k] = scratch[0] * 2;
  }
}
fn main() {
  sweep(0);
  sweep(40);
  var s = 0;
  for (q = 0; q < 80) { s = s + out[q]; }
  return s;
}|}
  in
  let program = Pipeline.parse src in
  let tr, _ = Pipeline.compile ~config:full_profile program in
  let seq = Pipeline.run_sequential program in
  let par = Pipeline.run_parallel ~config:(config ()) tr in
  check "results equal" true (Privateer_interp.Value.equal seq.seq_result par.par_result);
  Alcotest.(check int) "two invocations of one region" 2 par.stats.invocations

let test_worker_fault_recovers () =
  (* Division by zero on a path only the ref input reaches: the worker
     faults; the fault is treated as misspeculation; recovery replays
     sequentially, where the same fault becomes the program's real
     behaviour... so instead make the fault *speculation-induced*:
     reading a stale pointer that sequential execution would never
     see is impossible here, so we check a plain worker fault aborts
     cleanly rather than crashing the host. *)
  let src =
    {|global mode; global scratch[4]; global out[30];
fn main() {
  for (k = 0; k < 30) {
    scratch[0] = k + 1;
    var d = scratch[0];
    if (mode == 1 && k == 7) { d = 0; }
    if (d == 0) { d = 1; }    // keeps sequential execution safe
    out[k] = 100 / d;
  }
  var s = 0;
  for (q = 0; q < 30) { s = s + out[q]; }
  return s;
}|}
  in
  let program = Pipeline.parse src in
  let tr, _ =
    Pipeline.compile ~config:full_profile
      ~setup:(fun st -> Pipeline.set_global st "mode" 0)
      program
  in
  let setup st = Pipeline.set_global st "mode" 1 in
  let seq = Pipeline.run_sequential ~setup program in
  let par = Pipeline.run_parallel ~setup ~config:(config ()) tr in
  check "equivalent under ref input" true
    (Privateer_interp.Value.equal seq.seq_result par.par_result)

let suite =
  [ Alcotest.test_case "control misspeculation in production" `Quick
      test_control_misspeculation_in_production;
    Alcotest.test_case "lifetime misspeculation in production" `Quick
      test_lifetime_misspeculation_in_production;
    Alcotest.test_case "value misspeculation in production" `Quick
      test_value_misspeculation_in_production;
    Alcotest.test_case "separation misspeculation in production" `Quick
      test_separation_misspeculation_in_production;
    Alcotest.test_case "two parallel loops in one program" `Quick
      test_two_parallel_loops_one_program;
    Alcotest.test_case "one region invoked twice" `Quick test_loop_in_helper_called_twice;
    Alcotest.test_case "worker fault recovers cleanly" `Quick test_worker_fault_recovers ]
