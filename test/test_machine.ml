(* Unit tests for the machine layer: heap tags, paged COW memory,
   allocators. *)

open Privateer_ir
open Privateer_machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- heap tags -------------------------------------------------------- *)

let test_heap_tags_roundtrip () =
  List.iter
    (fun h ->
      let base = Heap.base h in
      check "base carries tag" true (Heap.check base h);
      check "heap_of_addr" true (Heap.equal_kind (Heap.heap_of_addr base) h);
      check "interior address keeps tag" true
        (Heap.equal_kind (Heap.heap_of_addr (base + 123456)) h);
      Alcotest.(check int) "of_tag . tag" (Heap.tag h) (Heap.tag (Heap.of_tag (Heap.tag h))))
    Heap.all

let test_heap_tags_distinct () =
  let tags = List.map Heap.tag Heap.all in
  check_int "eight distinct tags" 8 (List.length (List.sort_uniq compare tags))

let test_private_shadow_one_bit () =
  (* Paper 5.1: the private and shadow tags differ in exactly one bit,
     so the metadata address is one OR away. *)
  let p = Heap.base Heap.Private + 0xabc in
  let s = Heap.shadow_of_private p in
  check "shadow tagged" true (Heap.check s Heap.Shadow);
  check_int "roundtrip" p (Heap.private_of_shadow s);
  check_int "one bit apart" 1
    (let x = Heap.tag Heap.Private lxor Heap.tag Heap.Shadow in
     (* popcount of a 3-bit value *)
     (x land 1) + ((x lsr 1) land 1) + ((x lsr 2) land 1))

let test_heap_check_rejects_foreign () =
  let p = Heap.base Heap.Private + 8 in
  check "not read-only" false (Heap.check p Heap.Read_only);
  check "not default" false (Heap.check p Heap.Default);
  check "is private" true (Heap.check p Heap.Private)

(* ---- memory ------------------------------------------------------------ *)

let test_memory_bytes () =
  let m = Memory.create () in
  check_int "unmapped reads zero" 0 (Memory.read_byte m 0x1234);
  Memory.write_byte m 0x1234 0xAB;
  check_int "write/read" 0xAB (Memory.read_byte m 0x1234);
  Memory.write_byte m 0x1234 0x300;
  check_int "byte truncated" 0 (Memory.read_byte m 0x1234)

let test_memory_words_and_float_tags () =
  let m = Memory.create () in
  Memory.write_word m 0x1000 42L false;
  let bits, isf = Memory.read_word m 0x1000 in
  check "int tag" false isf;
  check_int "int bits" 42 (Int64.to_int bits);
  Memory.write_word m 0x1008 (Int64.bits_of_float 2.5) true;
  let bits, isf = Memory.read_word m 0x1008 in
  check "float tag" true isf;
  Alcotest.(check (float 0.0)) "float value" 2.5 (Int64.float_of_bits bits);
  (* A partial byte store invalidates the word's float tag. *)
  Memory.write_byte m 0x1008 7;
  let _, isf = Memory.read_word m 0x1008 in
  check "tag cleared by byte store" false isf

let test_memory_unaligned_word () =
  let m = Memory.create () in
  Memory.write_word m 0x1003 0x1122334455667788L false;
  let bits, isf = Memory.read_word m 0x1003 in
  check "unaligned loses float tag" false isf;
  check "unaligned value" true (bits = 0x1122334455667788L);
  (* Crosses a page boundary. *)
  Memory.write_word m (Memory.page_size - 3) 0x0102030405060708L false;
  let bits, _ = Memory.read_word m (Memory.page_size - 3) in
  check "page-crossing value" true (bits = 0x0102030405060708L)

let test_memory_cow_isolation () =
  let parent = Memory.create () in
  Memory.write_word parent 0x2000 100L false;
  let child = Memory.snapshot parent in
  (* Child sees parent's data. *)
  check_int "child inherits" 100 (Int64.to_int (fst (Memory.read_word child 0x2000)));
  (* Child writes don't leak to parent. *)
  Memory.write_word child 0x2000 200L false;
  check_int "parent unchanged" 100 (Int64.to_int (fst (Memory.read_word parent 0x2000)));
  check_int "child changed" 200 (Int64.to_int (fst (Memory.read_word child 0x2000)));
  (* Parent writes after snapshot don't leak to child. *)
  Memory.write_word parent 0x3000 7L false;
  check_int "child does not see later parent write" 0
    (Int64.to_int (fst (Memory.read_word child 0x3000)))

let test_memory_cow_two_children () =
  let parent = Memory.create () in
  Memory.write_word parent 0x100 1L false;
  let c1 = Memory.snapshot parent in
  let c2 = Memory.snapshot parent in
  Memory.write_word c1 0x100 11L false;
  Memory.write_word c2 0x100 22L false;
  check_int "c1" 11 (Int64.to_int (fst (Memory.read_word c1 0x100)));
  check_int "c2" 22 (Int64.to_int (fst (Memory.read_word c2 0x100)));
  check_int "parent" 1 (Int64.to_int (fst (Memory.read_word parent 0x100)))

let test_memory_dirty_tracking () =
  let m = Memory.create () in
  Memory.write_byte m 0x0 1;
  Memory.write_byte m 0x1 1; (* same page *)
  Memory.write_byte m (Memory.page_size * 5) 1;
  check_int "two dirty pages" 2 (Memory.dirty_count m);
  Memory.clear_dirty m;
  check_int "cleared" 0 (Memory.dirty_count m);
  ignore (Memory.read_byte m 0x0);
  check_int "reads don't dirty" 0 (Memory.dirty_count m)

let test_memory_equal_range_page_boundary () =
  let a = Memory.create () in
  let b = Memory.create () in
  (* A value straddling the first page boundary, equal in both. *)
  Memory.write_word a (Memory.page_size - 3) 0x0102030405060708L false;
  Memory.write_word b (Memory.page_size - 3) 0x0102030405060708L false;
  check "equal across boundary" true
    (Memory.equal_range a b (Memory.page_size - 8) (Memory.page_size + 8));
  (* Diverge one byte just past the boundary. *)
  Memory.write_byte b (Memory.page_size + 1) 0x7f;
  check "difference past boundary detected" false
    (Memory.equal_range a b (Memory.page_size - 8) (Memory.page_size + 8));
  (* The divergent byte is outside this sub-range. *)
  check "sub-range before the divergence still equal" true
    (Memory.equal_range a b (Memory.page_size - 8) (Memory.page_size + 1));
  (* Unaligned bounds exercise the byte head/tail of the word loop. *)
  check "unaligned bounds" true (Memory.equal_range a b 3 (Memory.page_size - 5))

let test_memory_equal_range_unmapped_vs_zero () =
  let a = Memory.create () in
  let b = Memory.create () in
  (* Map a page in [a] that holds only zeros (write then zero it). *)
  Memory.write_byte a 0x20 1;
  Memory.write_byte a 0x20 0;
  check "mapped-all-zero page equals unmapped" true
    (Memory.equal_range a b 0 Memory.page_size);
  check "footprint: mapped zeros = unmapped" true (Memory.equal_footprint a b);
  Memory.write_byte a 0x20 9;
  check "nonzero byte breaks it" false (Memory.equal_range a b 0 Memory.page_size)

let test_memory_equal_range_large_stack_safe () =
  (* 1 MiB range: the old byte recursion would take ~10^6 nested
     steps; the word-wise loop must handle it comfortably. *)
  let a = Memory.create () in
  let b = Memory.create () in
  let hi = 1 lsl 20 in
  Memory.write_word a (hi - 8) 5L false;
  Memory.write_word b (hi - 8) 5L false;
  check "1 MiB equal" true (Memory.equal_range a b 0 hi);
  Memory.write_byte b (hi - 1) 1;
  check "last byte differs" false (Memory.equal_range a b 0 hi)

let test_memory_fill_words_and_blit () =
  let a = Memory.create () in
  Memory.fill_words a 0x1000 ~words:(Memory.words_per_page + 4)
    (Int64.bits_of_float 1.5) true;
  (* Fill spans two pages and sets float tags. *)
  check "fill start" true (fst (Memory.read_word a 0x1000) = Int64.bits_of_float 1.5);
  let bits, isf = Memory.read_word a (0x1000 + (8 * (Memory.words_per_page + 3))) in
  check "fill end bits" true (bits = Int64.bits_of_float 1.5);
  check "fill end float tag" true isf;
  (* Word blit into a second memory preserves data and float tags. *)
  let b = Memory.create () in
  Memory.blit ~src:a ~src_addr:0x1000 ~dst:b ~dst_addr:0x3000 ~len:64;
  let bits, isf = Memory.read_word b 0x3038 in
  check "blit bits" true (bits = Int64.bits_of_float 1.5);
  check "blit float tag" true isf;
  (* Unmapped source blits as zeros (over previously nonzero bytes). *)
  Memory.write_word b 0x5000 77L false;
  Memory.blit ~src:a ~src_addr:0x100000 ~dst:b ~dst_addr:0x5000 ~len:16;
  check_int "unmapped source zeros the destination" 0
    (Int64.to_int (fst (Memory.read_word b 0x5000)))

let test_memory_heap_banks () =
  let m = Memory.create () in
  Memory.write_byte m (Heap.base Heap.Private + 5) 1;
  Memory.write_byte m (Heap.base Heap.Private + Memory.page_size) 2;
  Memory.write_byte m (Heap.base Heap.Shadow + 7) 3;
  check_int "private bank has two pages" 2
    (Memory.mapped_page_count m ~heap:Heap.Private);
  check_int "shadow bank has one page" 1 (Memory.mapped_page_count m ~heap:Heap.Shadow);
  check_int "default bank empty" 0 (Memory.mapped_page_count m ~heap:Heap.Default);
  check_int "fold visits the bank's pages" 2
    (Memory.fold_pages m ~heap:Heap.Private ~init:0 ~f:(fun ~key:_ _ acc -> acc + 1));
  check_int "per-heap dirty index" 1
    (List.length (Memory.dirty_pages ~heap:Heap.Shadow m));
  check_int "global dirty count spans banks" 3 (Memory.dirty_count m);
  Memory.clear_dirty m;
  check_int "per-heap dirty cleared" 0
    (List.length (Memory.dirty_pages ~heap:Heap.Shadow m))

let test_memory_copy_page_equal_footprint () =
  let a = Memory.create () in
  let b = Memory.create () in
  Memory.write_word a 0x42 99L false;
  check "differ" false (Memory.equal_footprint a b);
  Memory.copy_page_into ~dst:b ~src:a (Memory.page_of_addr 0x42);
  check "equal after copy" true (Memory.equal_footprint a b);
  (* The copy is deep: mutating b must not affect a. *)
  Memory.write_word b 0x42 1L false;
  check_int "a intact" 99 (Int64.to_int (fst (Memory.read_word a 0x42)))

(* ---- allocator --------------------------------------------------------- *)

let test_allocator_basic () =
  let a = Allocator.create Heap.Private in
  let p1 = Allocator.alloc a 24 in
  let p2 = Allocator.alloc a 24 in
  check "tagged" true (Heap.check p1 Heap.Private);
  check "distinct" true (p1 <> p2);
  check "aligned" true (p1 mod 16 = 0);
  check "no overlap" true (abs (p2 - p1) >= 24);
  check_int "live" 2 (Allocator.live_count a);
  check_int "freed size (rounded)" 32 (Allocator.free a p1);
  check_int "live after free" 1 (Allocator.live_count a)

let test_allocator_recycles () =
  let a = Allocator.create Heap.Short_lived in
  let p1 = Allocator.alloc a 16 in
  ignore (Allocator.free a p1);
  let p2 = Allocator.alloc a 16 in
  check_int "same-size free list recycles the address" p1 p2;
  let p3 = Allocator.alloc a 64 in
  check "different size gets fresh storage" true (p3 <> p1)

let test_allocator_double_free () =
  let a = Allocator.create Heap.Default in
  let p = Allocator.alloc a 8 in
  ignore (Allocator.free a p);
  check "double free rejected" true
    (try
       ignore (Allocator.free a p);
       false
     with Failure _ -> true)

let test_allocator_copy_independent () =
  let a = Allocator.create Heap.Private in
  let p1 = Allocator.alloc a 16 in
  let b = Allocator.copy a in
  let pa = Allocator.alloc a 16 in
  let pb = Allocator.alloc b 16 in
  check_int "copies evolve identically from the same state" pa pb;
  ignore (Allocator.free a p1);
  check "copy still considers p1 live" true (Allocator.is_live b p1)

let test_machine_free_by_tag () =
  let m = Machine.create () in
  let p = Machine.alloc m Heap.Short_lived 40 in
  let heap, size = Machine.free m p in
  check "freed from its tag's heap" true (Heap.equal_kind heap Heap.Short_lived);
  check_int "size" 48 size

let test_machine_accessors () =
  let m = Machine.create () in
  Machine.set_int m 0x500 (-12345);
  check_int "int roundtrip" (-12345) (Machine.get_int m 0x500);
  Machine.set_float m 0x508 3.25;
  Alcotest.(check (float 0.0)) "float roundtrip" 3.25 (Machine.get_float m 0x508)

let test_machine_commit_allocators () =
  let main = Machine.create () in
  let w1 = Machine.snapshot main in
  let w2 = Machine.snapshot main in
  let a1 = Machine.alloc w1 Heap.Private 16 in
  let _a2 = Machine.alloc w2 Heap.Private 16 in
  let _a3 = Machine.alloc w2 Heap.Private 16 in
  Machine.commit_allocators main ~last:w1 ~all:[ w1; w2 ];
  (* Main must not hand out addresses colliding with either worker's
     allocations: its bump is the max across workers. *)
  let fresh = Machine.alloc main Heap.Private 16 in
  check "fresh allocation beyond all workers" true (fresh > a1);
  check "last worker's live table adopted" true
    (Allocator.is_live (Machine.allocator main Heap.Private) a1)

let suite =
  [ Alcotest.test_case "heap tag roundtrips" `Quick test_heap_tags_roundtrip;
    Alcotest.test_case "heap tags distinct" `Quick test_heap_tags_distinct;
    Alcotest.test_case "private/shadow one bit apart" `Quick test_private_shadow_one_bit;
    Alcotest.test_case "separation check rejects foreign tags" `Quick test_heap_check_rejects_foreign;
    Alcotest.test_case "memory bytes" `Quick test_memory_bytes;
    Alcotest.test_case "memory words and float tags" `Quick test_memory_words_and_float_tags;
    Alcotest.test_case "memory unaligned words" `Quick test_memory_unaligned_word;
    Alcotest.test_case "COW parent/child isolation" `Quick test_memory_cow_isolation;
    Alcotest.test_case "COW sibling isolation" `Quick test_memory_cow_two_children;
    Alcotest.test_case "dirty page tracking" `Quick test_memory_dirty_tracking;
    Alcotest.test_case "equal_range across a page boundary" `Quick test_memory_equal_range_page_boundary;
    Alcotest.test_case "equal_range: unmapped vs mapped zeros" `Quick test_memory_equal_range_unmapped_vs_zero;
    Alcotest.test_case "equal_range is stack-safe on 1 MiB" `Quick test_memory_equal_range_large_stack_safe;
    Alcotest.test_case "fill_words and blit" `Quick test_memory_fill_words_and_blit;
    Alcotest.test_case "heap-banked page index" `Quick test_memory_heap_banks;
    Alcotest.test_case "page copy + footprint equality" `Quick test_memory_copy_page_equal_footprint;
    Alcotest.test_case "allocator basics" `Quick test_allocator_basic;
    Alcotest.test_case "allocator recycles freed ranges" `Quick test_allocator_recycles;
    Alcotest.test_case "allocator rejects double free" `Quick test_allocator_double_free;
    Alcotest.test_case "allocator copies are independent" `Quick test_allocator_copy_independent;
    Alcotest.test_case "machine frees by address tag" `Quick test_machine_free_by_tag;
    Alcotest.test_case "machine int/float accessors" `Quick test_machine_accessors;
    Alcotest.test_case "machine allocator commit" `Quick test_machine_commit_allocators ]
