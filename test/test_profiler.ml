(* Unit and differential tests for the profilers (paper section 4.1).

   Every unit test runs under three implementations — the fast
   frontend inline, the monolithic reference oracle, and the fast
   frontend in batched mode (2-domain pool, tiny batches so flushes
   land inside loop bodies) — all of which must answer identically.
   A qcheck property then checks the full query surface of the fast
   frontend against the reference over generated scenarios. *)

open Privateer_ir
open Privateer_interp
open Privateer_profile
module RC = Privateer_parallel.Runtime_config

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let run_with ?(profilers = [ "all" ]) ?pool ?batch src =
  let program = Privateer_lang.Parser.parse_program_exn src in
  let st = Interp.create program in
  let p = Profiler.create ~profilers ?pool ?batch () in
  Profiler.attach p st;
  ignore (Interp.run_entry st);
  Profiler.sync p;
  (program, p, st)

(* Batched runs keep the pool alive for the instrumented run and the
   sync; queries after shutdown fall back to inline task execution. *)
let run_batched ?(batch = 3) src =
  let pool = Privateer_support.Domain_pool.create ~domains:2 () in
  Fun.protect
    ~finally:(fun () -> Privateer_support.Domain_pool.shutdown pool)
    (fun () -> run_with ~pool ~batch src)

type runner = string -> Ast.program * Profiler.t * Interp.t

let variants : (string * runner) list =
  [ ("fast", fun src -> run_with src);
    ("reference", fun src -> run_with ~profilers:[ "reference" ] src);
    ("batched", fun src -> run_batched src) ]

(* The node id of the single For loop in [fname]. *)
let loop_in program fname =
  match
    List.find_opt
      (fun ((f : Ast.func), _) -> f.fname = fname)
      (Ast.loops_of_program program)
  with
  | Some (_, (id, _)) -> id
  | None -> Alcotest.fail ("no loop in " ^ fname)

(* ---- unit tests, parameterized over the implementations --------------- *)

let test_global_objects_registered (profile : runner) () =
  let _, p, _ = profile "global g[4]; fn main() { g[0] = 1; return g[0]; }" in
  check "global named" true (Objname.Set.mem (Objname.Global "g") (Profiler.all_objects p));
  match Profiler.object_size p (Objname.Global "g") with
  | Some 32 -> ()
  | other -> Alcotest.fail (Printf.sprintf "size %s" (match other with Some n -> string_of_int n | None -> "?"))

let test_site_object_mapping (profile : runner) () =
  let program, p, _ =
    profile
      "global a[4]; global b[4]; fn main() { var t = 0; for (i = 0; i < 4) { t = a[i]; b[i] = t; } return t; }"
  in
  (* Find the load and store sites via the AST. *)
  let sites = ref [] in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_exprs
        (fun e -> match e with Ast.Load (id, _, _) -> sites := `L id :: !sites | _ -> ())
        f.body;
      Ast.iter_stmts
        (fun s -> match s with Ast.Store (id, _, _, _) -> sites := `S id :: !sites | _ -> ())
        f.body)
    program.funcs;
  let a_sites, b_sites =
    List.partition
      (fun site ->
        let id = match site with `L id | `S id -> id in
        Objname.Set.mem (Objname.Global "a") (Profiler.objects_at_site p id))
      (List.filter
         (fun site ->
           let id = match site with `L id | `S id -> id in
           not (Objname.Set.is_empty (Profiler.objects_at_site p id)))
         !sites)
  in
  check_int "one site touches a" 1 (List.length a_sites);
  check_int "one site touches b" 1 (List.length b_sites)

let test_alloc_context_naming (profile : runner) () =
  (* The same malloc site called from two different call sites yields
     two distinct object names (paper's dijkstra line-11 example). *)
  let _, p, _ =
    profile
      {|fn mk() { return malloc(1); }
fn a() { return mk(); }
fn b() { return mk(); }
fn main() { var x = a(); var y = b(); free(x); free(y); return 0; }|}
  in
  let sites =
    Objname.Set.filter
      (fun o -> match o with Objname.Site _ -> true | _ -> false)
      (Profiler.all_objects p)
  in
  check_int "two context-distinguished names" 2 (Objname.Set.cardinal sites)

let test_short_lived_positive (profile : runner) () =
  let program, p, _ =
    profile
      "fn main() { for (i = 0; i < 5) { var n = malloc(2); n[0] = i; free(n); } return 0; }"
  in
  let loop = loop_in program "main" in
  let site_names =
    Objname.Set.filter
      (fun o -> match o with Objname.Site _ -> true | _ -> false)
      (Profiler.all_objects p)
  in
  check_int "one dynamic name" 1 (Objname.Set.cardinal site_names);
  Objname.Set.iter
    (fun o -> check "short-lived" true (Profiler.is_short_lived p o ~loop))
    site_names

let test_short_lived_negative_escape (profile : runner) () =
  (* Object freed in the NEXT iteration: crosses an iteration
     boundary, so not short-lived. *)
  let program, p, _ =
    profile
      {|global keep;
fn main() {
  keep = 0;
  for (i = 0; i < 5) {
    if (keep != 0) { free(keep); }
    keep = malloc(1);
  }
  free(keep);
  return 0;
}|}
  in
  let loop = loop_in program "main" in
  Objname.Set.iter
    (fun o ->
      match o with
      | Objname.Site _ -> check "escaping object not short-lived" false (Profiler.is_short_lived p o ~loop)
      | _ -> ())
    (Profiler.all_objects p)

let test_short_lived_negative_born_outside (profile : runner) () =
  (* Allocated before the loop, freed inside it. *)
  let program, p, _ =
    profile
      "fn main() { var x = malloc(1); for (i = 0; i < 3) { if (i == 1) { free(x); } } return 0; }"
  in
  let loop = loop_in program "main" in
  Objname.Set.iter
    (fun o ->
      match o with
      | Objname.Site _ -> check "born outside loop" false (Profiler.is_short_lived p o ~loop)
      | _ -> ())
    (Profiler.all_objects p)

let test_flow_deps_cross_iteration (profile : runner) () =
  let program, p, _ =
    profile "global acc; fn main() { acc = 0; for (i = 0; i < 4) { acc = acc + i; } return acc; }"
  in
  let loop = loop_in program "main" in
  check "cross-iteration flow dep on acc" true (Profiler.flow_deps p ~loop <> [])

let test_flow_deps_intra_iteration_only (profile : runner) () =
  (* Written then read within each iteration: no loop-carried flow. *)
  let program, p, _ =
    profile "global t; fn main() { var s = 0; for (i = 0; i < 4) { t = i; s = s + t; } return s; }"
  in
  let loop = loop_in program "main" in
  check_int "no cross-iteration deps" 0 (List.length (Profiler.flow_deps p ~loop))

let test_flow_deps_recycled_address (profile : runner) () =
  (* A freed-and-reallocated address must not produce a phantom dep:
     the write went to a *different* object. *)
  let program, p, _ =
    profile
      "fn main() { var s = 0; for (i = 0; i < 4) { var n = malloc(1); n[0] = i; s = s + n[0]; free(n); } return s; }"
  in
  let loop = loop_in program "main" in
  check_int "no phantom dep through recycled storage" 0
    (List.length (Profiler.flow_deps p ~loop))

let test_flow_deps_unaligned (profile : runner) () =
  (* An 8-byte store at buf+4 straddles words 0 and 1; the aligned
     read of buf[1] in the next iteration depends on its *high* word.
     Regression: the shadow update must cover every word the access
     touches, not just the first. *)
  let program, p, _ =
    profile
      {|global buf[4];
fn main() {
  var s = 0;
  var q = buf + 4;
  for (i = 0; i < 4) {
    s = s + buf[1];
    q[0] = i;
  }
  return s;
}|}
  in
  let loop = loop_in program "main" in
  check "unaligned store's high word carries the dep" true
    (Profiler.flow_deps p ~loop <> [])

let test_flow_deps_unaligned_load (profile : runner) () =
  (* Mirror case: aligned store, straddling load. *)
  let program, p, _ =
    profile
      {|global buf[4];
fn main() {
  var s = 0;
  var q = buf + 12;
  for (i = 0; i < 4) {
    s = s + q[0];
    buf[2] = i;
  }
  return s;
}|}
  in
  let loop = loop_in program "main" in
  check "unaligned load's high word sees the dep" true
    (Profiler.flow_deps p ~loop <> [])

let test_dep_value_constancy (profile : runner) () =
  (* The flowing value is always 0: a value-prediction candidate. *)
  let program, p, _ =
    profile
      {|global flag;
fn main() {
  var s = 0;
  for (i = 0; i < 6) {
    s = s + flag;      // reads 0 written by previous iteration
    flag = 1;
    flag = 0;          // reset before iteration end
  }
  return s;
}|}
  in
  let loop = loop_in program "main" in
  let deps = Profiler.flow_deps p ~loop in
  check "has deps" true (deps <> []);
  List.iter
    (fun (_, _, (info : Profiler.dep_info)) ->
      (match info.dep_value with
      | Profiler.Const (Value.VInt 0) -> ()
      | _ -> Alcotest.fail "expected constant 0");
      match info.dep_addr with
      | `Addr _ -> ()
      | `Many -> Alcotest.fail "expected single address")
    deps

let test_branch_bias (profile : runner) () =
  let program, p, _ =
    profile
      {|global g;
fn main() {
  for (i = 0; i < 10) {
    if (i < 100) { g = i; }      // always taken
    if (i > 100) { g = 0 - 1; }  // never taken
    if (i % 2 == 0) { g = 2; }   // mixed
  }
  return g;
}|}
  in
  let branches = ref [] in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_stmts
        (fun s -> match s with Ast.If (id, _, _, _) -> branches := id :: !branches | _ -> ())
        f.body)
    program.funcs;
  let biases = List.map (fun id -> Profiler.branch_bias p id) (List.rev !branches) in
  check "always / never / mixed" true (biases = [ Some true; Some false; None ])

let test_loop_stats (profile : runner) () =
  let program, p, _ =
    profile
      "fn main() { var s = 0; for (o = 0; o < 3) { for (i = 0; i < 5) { s = s + 1; } } return s; }"
  in
  let outer, inner =
    match Ast.loops_of_program program with
    | [ (_, (o, _)); (_, (i, _)) ] -> (o, i)
    | _ -> Alcotest.fail "expected two loops"
  in
  (match Profiler.loop_summary p inner with
  | Some s ->
    check_int "inner invocations" 3 s.loop_invocations;
    check_int "inner trips" 15 s.loop_trips
  | None -> Alcotest.fail "inner stats missing");
  match (Profiler.loop_summary p outer, Profiler.loop_summary p inner) with
  | Some o, Some i ->
    check "outer at least as heavy as inner" true (o.loop_cycles >= i.loop_cycles);
    check "weight ordering" true
      (match Profiler.loops_by_weight p with
      | (first, _) :: _ -> first = outer
      | [] -> false)
  | _ -> Alcotest.fail "stats missing"

let test_const_load (profile : runner) () =
  let program, p, _ =
    profile
      {|global k; global v;
fn main() {
  k = 7;
  var s = 0;
  for (i = 0; i < 5) { s = s + k; v = i; s = s + v; }
  return s;
}|}
  in
  (* Find load sites for k and v. *)
  let konst = ref None and varying = ref None in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_exprs
        (fun e ->
          match e with
          | Ast.Load (id, _, Ast.Global_addr "k") -> konst := Some id
          | Ast.Load (id, _, Ast.Global_addr "v") -> varying := Some id
          | _ -> ())
        f.body)
    program.funcs;
  (match !konst with
  | Some id -> (
    match Profiler.const_load_value p id with
    | Some (Value.VInt 7) -> ()
    | _ -> Alcotest.fail "k should profile as constant 7")
  | None -> Alcotest.fail "no k load site");
  match !varying with
  | Some id -> check "v load varies" true (Profiler.const_load_value p id = None)
  | None -> Alcotest.fail "no v load site"

let test_object_at_addr (profile : runner) () =
  let _, p, st = profile "global g[8]; fn main() { g[0] = 1; return 0; }" in
  let base = Hashtbl.find st.globals "g" in
  (match Profiler.object_at_addr p (base + 40) with
  | Some (Objname.Global "g", b) -> check_int "base" base b
  | _ -> Alcotest.fail "interior address should map to g");
  check "address outside any object" true (Profiler.object_at_addr p 0x9999 = None)

(* ---- deterministic loops_by_weight order ------------------------------ *)

let test_loops_by_weight_tiebreak () =
  (* Two byte-identical loops tie on weight; the order must be the
     same deterministic one (descending weight, loop id ascending on
     ties) from every implementation. *)
  let src =
    "fn main() { var s = 0; for (a = 0; a < 3) { s = s + 1; } for (b = 0; b < 3) { s = s + 1; } return s; }"
  in
  let ranked (_, p, _) = Profiler.loops_by_weight p in
  let fast = ranked (run_with src) in
  let rf = ranked (run_with ~profilers:[ "reference" ] src) in
  let batched = ranked (run_batched src) in
  check "two ranked loops" true (List.length fast = 2);
  (match fast with
  | (l1, w1) :: (l2, w2) :: _ ->
    check "tie on weight" true (w1 = w2);
    check "ties break by loop id" true (l1 < l2)
  | _ -> Alcotest.fail "expected two loops");
  check "fast = reference" true (fast = rf);
  check "fast = batched" true (fast = batched)

(* ---- full query surface differential ---------------------------------- *)

let dep_info_eq (a : Profiler.dep_info) (b : Profiler.dep_info) =
  a.dep_count = b.dep_count
  && (match (a.dep_value, b.dep_value) with
     | Profiler.Const x, Profiler.Const y -> Value.equal x y
     | Profiler.Varying, Profiler.Varying -> true
     | _ -> false)
  && a.dep_addr = b.dep_addr

let deps_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun (w1, r1, i1) (w2, r2, i2) -> w1 = w2 && r1 = r2 && dep_info_eq i1 i2)
       a b

(* First query family on which [pa] and [pb] disagree, if any.  Covers
   all six families: pointer-to-object, lifetime, flow, constant
   loads, branch bias, and loop execution weight. *)
let diff_answers (program : Ast.program) pa pb =
  let fail = ref None in
  let expect what ok = if !fail = None && not ok then fail := Some what in
  let objs_a = Profiler.all_objects pa in
  expect "all_objects" (Objname.Set.equal objs_a (Profiler.all_objects pb));
  Objname.Set.iter
    (fun o -> expect "object_size" (Profiler.object_size pa o = Profiler.object_size pb o))
    objs_a;
  let loads = ref [] and stores = ref [] and branches = ref [] and allocs = ref [] in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_exprs
        (fun e ->
          match e with
          | Ast.Load (id, _, _) -> loads := id :: !loads
          | Ast.Alloc (id, _, _, _) -> allocs := id :: !allocs
          | _ -> ())
        f.body;
      Ast.iter_stmts
        (fun s ->
          match s with
          | Ast.Store (id, _, _, _) -> stores := id :: !stores
          | Ast.If (id, _, _, _) -> branches := id :: !branches
          | _ -> ())
        f.body)
    program.funcs;
  List.iter
    (fun site ->
      expect "objects_at_site"
        (Objname.Set.equal (Profiler.objects_at_site pa site) (Profiler.objects_at_site pb site)))
    (!loads @ !stores);
  List.iter
    (fun site ->
      expect "alloc_names"
        (Objname.Set.equal (Profiler.alloc_names pa site) (Profiler.alloc_names pb site)))
    !allocs;
  List.iter
    (fun site ->
      expect "const_load_value"
        (match (Profiler.const_load_value pa site, Profiler.const_load_value pb site) with
        | Some x, Some y -> Value.equal x y
        | None, None -> true
        | _ -> false))
    !loads;
  List.iter
    (fun b ->
      expect "branch_counts" (Profiler.branch_counts pa b = Profiler.branch_counts pb b);
      expect "branch_bias" (Profiler.branch_bias pa b = Profiler.branch_bias pb b))
    !branches;
  let loops = List.map (fun (_, (id, _)) -> id) (Ast.loops_of_program program) in
  List.iter
    (fun loop ->
      expect "flow_deps" (deps_eq (Profiler.flow_deps pa ~loop) (Profiler.flow_deps pb ~loop));
      expect "loop_summary" (Profiler.loop_summary pa loop = Profiler.loop_summary pb loop);
      Objname.Set.iter
        (fun o ->
          expect "is_short_lived"
            (Profiler.is_short_lived pa o ~loop = Profiler.is_short_lived pb o ~loop))
        objs_a)
    loops;
  expect "loops_by_weight" (Profiler.loops_by_weight pa = Profiler.loops_by_weight pb);
  !fail

let scenario_corpus =
  lazy (Privateer_gen.Scenario_gen.corpus ~seed:11 ~count:6)

let run_scenario ?profilers ?pool ?batch (sc : Privateer_gen.Scenario_gen.t) =
  let wl = sc.sc_workload in
  let program = Privateer_workloads.Workload.program wl in
  let setup = Privateer_workloads.Workload.setup ~scale:1 wl Privateer_workloads.Workload.Train in
  let st = Interp.create program in
  let p = Profiler.create ?profilers ?pool ?batch () in
  Profiler.attach p st;
  setup st;
  ignore (Interp.run_entry st);
  Profiler.sync p;
  (program, p)

let prop_fast_matches_reference =
  QCheck.Test.make ~count:12 ~name:"fast frontend = reference on generated scenarios"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 5))
    (fun i ->
      let sc = List.nth (Lazy.force scenario_corpus) i in
      let program, pf = run_scenario sc in
      let _, pr = run_scenario ~profilers:[ "reference" ] sc in
      match diff_answers program pf pr with
      | None -> true
      | Some what -> QCheck.Test.fail_reportf "%s differs on %s" what sc.sc_name)

(* ---- batched mode ------------------------------------------------------ *)

(* Every query must be invariant in the batch size: a batch of 1
   flushes at every event, so batch boundaries land on loop enters,
   iterations and exits. *)
let test_batch_boundaries () =
  let src =
    {|global acc;
fn main() {
  acc = 0;
  for (o = 0; o < 3) {
    for (i = 0; i < 4) { acc = acc + i; }
  }
  return acc;
}|}
  in
  let program, pr, _ = run_with ~profilers:[ "reference" ] src in
  List.iter
    (fun batch ->
      let _, pb, _ = run_batched ~batch src in
      match diff_answers program pb pr with
      | None -> ()
      | Some what -> Alcotest.fail (Printf.sprintf "batch=%d differs on %s" batch what))
    [ 1; 2; 7 ]

let test_batch_free_then_realloc () =
  (* The allocator recycles the freed base address, so the name id of
     an in-flight event must be resolved at hook time, not replay
     time: with a tiny batch the free and the next alloc land in
     different batches than the accesses they govern. *)
  let src =
    "fn main() { var s = 0; for (i = 0; i < 6) { var n = malloc(1); n[0] = i; s = s + n[0]; free(n); } return s; }"
  in
  let program, pr, _ = run_with ~profilers:[ "reference" ] src in
  let _, pb, _ = run_batched ~batch:1 src in
  (match diff_answers program pb pr with
  | None -> ()
  | Some what -> Alcotest.fail ("free/realloc differs on " ^ what));
  let loop = loop_in program "main" in
  check_int "still no phantom dep" 0 (List.length (Profiler.flow_deps pb ~loop))

let test_batch_nested_invocation_cycles () =
  (* Cycle accounting across nested invocations: enter/exit cycle
     stamps ride inside the event stream, so per-loop cycles must
     survive batching exactly. *)
  let src =
    "fn main() { var s = 0; for (o = 0; o < 3) { for (i = 0; i < 5) { s = s + 1; } } return s; }"
  in
  let program, pr, _ = run_with ~profilers:[ "reference" ] src in
  let _, pb, _ = run_batched ~batch:2 src in
  List.iter
    (fun (_, (loop, _)) ->
      match (Profiler.loop_summary pb loop, Profiler.loop_summary pr loop) with
      | Some a, Some b ->
        check_int "invocations" b.loop_invocations a.loop_invocations;
        check_int "trips" b.loop_trips a.loop_trips;
        check_int "cycles" b.loop_cycles a.loop_cycles
      | _ -> Alcotest.fail "summary missing")
    (Ast.loops_of_program program)

(* ---- restricted profiler sets ----------------------------------------- *)

let test_restricted_set () =
  let src =
    {|global acc;
fn main() {
  acc = 0;
  for (i = 0; i < 4) {
    if (i % 2 == 0) { acc = acc + i; }
    var n = malloc(1); n[0] = acc; free(n);
  }
  return acc;
}|}
  in
  let program, p, _ = run_with ~profilers:[ "exec"; "flow" ] src in
  check "enabled set" true (Profiler.enabled p = [ "exec"; "flow" ]);
  let loop = loop_in program "main" in
  (* Enabled profilers answer... *)
  check "flow deps observed" true (Profiler.flow_deps p ~loop <> []);
  check "loop summary present" true (Profiler.loop_summary p loop <> None);
  (* ...disabled ones answer as if they observed nothing. *)
  let sites = ref [] in
  List.iter
    (fun (f : Ast.func) ->
      Ast.iter_exprs
        (fun e -> match e with Ast.Load (id, _, _) -> sites := id :: !sites | _ -> ())
        f.body;
      Ast.iter_stmts
        (fun s -> match s with Ast.If (id, _, _, _) -> sites := id :: !sites | _ -> ())
        f.body)
    program.funcs;
  List.iter
    (fun id ->
      check "no objects at site" true (Objname.Set.is_empty (Profiler.objects_at_site p id));
      check "no const load" true (Profiler.const_load_value p id = None);
      check "no branch bias" true (Profiler.branch_bias p id = None))
    !sites;
  Objname.Set.iter
    (fun o -> check "nothing short-lived" false (Profiler.is_short_lived p o ~loop))
    (Profiler.all_objects p)

let test_parse_profilers () =
  let ok = function Ok names -> names | Error e -> Alcotest.fail e in
  Alcotest.(check (list string))
    "plain list" [ "exec"; "flow" ]
    (ok (RC.parse_profilers "exec,flow"));
  Alcotest.(check (list string))
    "normalized" [ "exec"; "flow" ]
    (ok (RC.parse_profilers " Exec , FLOW "));
  Alcotest.(check (list string)) "all" [ "all" ] (ok (RC.parse_profilers "all"));
  Alcotest.(check (list string))
    "reference alone" [ "reference" ]
    (ok (RC.parse_profilers "reference"));
  let is_err = function Error _ -> true | Ok _ -> false in
  check "unknown name rejected" true (is_err (RC.parse_profilers "bogus"));
  check "reference cannot combine" true (is_err (RC.parse_profilers "reference,exec"));
  check "empty rejected" true (is_err (RC.parse_profilers ""));
  check "unknown profiler in create" true
    (try
       ignore (Profiler.create ~profilers:[ "nope" ] ());
       false
     with Invalid_argument _ -> true)

let suite =
  let parameterized =
    List.concat_map
      (fun (vname, runner) ->
        List.map
          (fun (name, fn) ->
            Alcotest.test_case (Printf.sprintf "%s [%s]" name vname) `Quick (fn runner))
          [ ("globals registered as objects", test_global_objects_registered);
            ("pointer-to-object site mapping", test_site_object_mapping);
            ("allocation context naming", test_alloc_context_naming);
            ("short-lived: alloc+free in iteration", test_short_lived_positive);
            ("short-lived: escape to next iteration", test_short_lived_negative_escape);
            ("short-lived: born outside loop", test_short_lived_negative_born_outside);
            ("flow deps: cross-iteration detected", test_flow_deps_cross_iteration);
            ("flow deps: intra-iteration ignored", test_flow_deps_intra_iteration_only);
            ("flow deps: recycled addresses", test_flow_deps_recycled_address);
            ("flow deps: unaligned store straddles words", test_flow_deps_unaligned);
            ("flow deps: unaligned load straddles words", test_flow_deps_unaligned_load);
            ("dep value constancy", test_dep_value_constancy);
            ("branch bias", test_branch_bias);
            ("loop statistics", test_loop_stats);
            ("constant-load detection", test_const_load);
            ("object_at_addr", test_object_at_addr) ])
      variants
  in
  parameterized
  @ [ Alcotest.test_case "loops_by_weight tie-break is deterministic" `Quick
        test_loops_by_weight_tiebreak;
      Alcotest.test_case "batched: boundaries at loop transitions" `Quick
        test_batch_boundaries;
      Alcotest.test_case "batched: free then realloc same address" `Quick
        test_batch_free_then_realloc;
      Alcotest.test_case "batched: nested-invocation cycle accounting" `Quick
        test_batch_nested_invocation_cycles;
      Alcotest.test_case "restricted profiler set" `Quick test_restricted_set;
      Alcotest.test_case "parse_profilers" `Quick test_parse_profilers;
      QCheck_alcotest.to_alcotest prop_fast_matches_reference ]
