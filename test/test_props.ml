(* Property-based tests (qcheck via QCheck_alcotest).

   Each property targets a core invariant of the system:
   - the interval map behaves like a naive model;
   - the allocator never hands out overlapping live ranges and always
     stays within its heap's tagged range;
   - copy-on-write snapshots are bidirectionally isolated under random
     write sequences;
   - the shadow metadata machine agrees with an oracle that tracks
     the full access history of a byte (the privatization criterion);
   - randomly generated privatizable loop programs execute identically
     under the speculative parallel runtime and sequentially. *)

open Privateer_support

let count = 200

(* ---- interval map vs naive model --------------------------------------- *)

type im_op = Insert of int * int | RemoveStart of int | Query of int

let im_op_gen =
  QCheck.Gen.(
    frequency
      [ (4, map2 (fun lo len -> Insert (lo * 8, lo * 8 + 8 + (len mod 64))) (int_bound 100) (int_bound 63));
        (1, map (fun lo -> RemoveStart (lo * 8)) (int_bound 100));
        (3, map (fun a -> Query a) (int_bound 900)) ])

let im_ops_arb =
  QCheck.make ~print:(fun ops -> string_of_int (List.length ops) ^ " ops")
    QCheck.Gen.(list_size (int_bound 60) im_op_gen)

(* Naive model: list of disjoint (lo, hi, id). *)
let prop_interval_map_model ops =
  let m = Interval_map.create () in
  let model = ref [] in
  let ok = ref true in
  List.iteri
    (fun i op ->
      match op with
      | Insert (lo, hi) ->
        Interval_map.insert m lo hi i;
        model := (lo, hi, i) :: List.filter (fun (l, h, _) -> h <= lo || l >= hi) !model
      | RemoveStart lo -> (
        let got = Interval_map.remove_start m lo in
        let want = List.find_opt (fun (l, _, _) -> l = lo) !model in
        model := List.filter (fun (l, _, _) -> l <> lo) !model;
        match (got, want) with
        | Some (h, v), Some (_, h', v') -> if h <> h' || v <> v' then ok := false
        | None, None -> ()
        | _ -> ok := false)
      | Query a -> (
        let got = Interval_map.find_opt m a in
        let want = List.find_opt (fun (l, h, _) -> l <= a && a < h) !model in
        match (got, want) with
        | Some (l, h, v), Some (l', h', v') ->
          if l <> l' || h <> h' || v <> v' then ok := false
        | None, None -> ()
        | _ -> ok := false))
    ops;
  !ok && Interval_map.well_formed m

(* ---- allocator --------------------------------------------------------- *)

let alloc_script_arb =
  (* positive = alloc of that many bytes; negative = free the n-th
     oldest live allocation. *)
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_int l))
    QCheck.Gen.(list_size (int_bound 80) (map (fun n -> (n mod 120) - 20) nat))

let prop_allocator_no_overlap script =
  let open Privateer_machine in
  let a = Allocator.create Privateer_ir.Heap.Private in
  let live = ref [] in
  let ok = ref true in
  List.iter
    (fun n ->
      if n >= 0 then begin
        let size = max 1 n in
        let addr = Allocator.alloc a size in
        if not (Privateer_ir.Heap.check addr Privateer_ir.Heap.Private) then ok := false;
        (* no overlap with any live range *)
        List.iter
          (fun (base, sz) ->
            if addr < base + sz && base < addr + size then ok := false)
          !live;
        live := (addr, size) :: !live
      end
      else begin
        match !live with
        | [] -> ()
        | (base, _) :: rest ->
          ignore (Allocator.free a base);
          live := rest
      end)
    script;
  !ok && Allocator.live_count a = List.length !live

(* ---- COW isolation ------------------------------------------------------ *)

let cow_script_arb =
  QCheck.make
    ~print:(fun l -> string_of_int (List.length l) ^ " writes")
    QCheck.Gen.(list_size (int_bound 120) (pair (int_bound 5000) (int_bound 255)))

let prop_cow_isolation writes =
  let open Privateer_machine in
  let parent = Memory.create () in
  (* Seed the parent with every other write. *)
  List.iteri (fun i (a, v) -> if i mod 2 = 0 then Memory.write_byte parent a v) writes;
  let child = Memory.snapshot parent in
  (* Divergent writes on both sides. *)
  List.iteri
    (fun i (a, v) ->
      if i mod 3 = 0 then Memory.write_byte child a ((v + 1) land 0xff)
      else if i mod 3 = 1 then Memory.write_byte parent a ((v + 2) land 0xff))
    writes;
  (* Replay both sides against reference hashtables. *)
  let ref_parent = Hashtbl.create 64 and ref_child = Hashtbl.create 64 in
  List.iteri (fun i (a, v) -> if i mod 2 = 0 then Hashtbl.replace ref_parent a v) writes;
  Hashtbl.iter (fun a v -> Hashtbl.replace ref_child a v) ref_parent;
  List.iteri
    (fun i (a, v) ->
      if i mod 3 = 0 then Hashtbl.replace ref_child a ((v + 1) land 0xff)
      else if i mod 3 = 1 then Hashtbl.replace ref_parent a ((v + 2) land 0xff))
    writes;
  List.for_all
    (fun (a, _) ->
      Memory.read_byte parent a = Option.value (Hashtbl.find_opt ref_parent a) ~default:0
      && Memory.read_byte child a = Option.value (Hashtbl.find_opt ref_child a) ~default:0)
    writes

(* ---- shadow machine vs history oracle ----------------------------------- *)

(* A byte's access history within one checkpoint interval: list of
   (iteration, op).  The oracle decides validity from the paper's
   privatization criterion directly. *)
type acc = { it : int; write : bool }

let history_arb =
  QCheck.make
    ~print:(fun l ->
      String.concat ","
        (List.map (fun a -> Printf.sprintf "%s@%d" (if a.write then "W" else "R") a.it) l))
    QCheck.Gen.(
      list_size (int_bound 20)
        (map2 (fun it w -> { it; write = w }) (int_bound 12) bool))

(* Sort accesses by iteration (stable), as execution would produce
   them; then both machine and oracle consume them in order. *)
let prop_shadow_vs_oracle history =
  let history = List.stable_sort (fun a b -> compare a.it b.it) history in
  (* Machine verdict. *)
  let open Privateer_runtime in
  let meta = ref Shadow.live_in in
  let machine_fail = ref None in
  List.iteri
    (fun idx a ->
      if !machine_fail = None then begin
        let beta = Shadow.timestamp ~iter:a.it ~interval_start:0 in
        match
          Shadow.transition (if a.write then Shadow.Write else Shadow.Read)
            ~current:!meta ~beta
        with
        | Shadow.Keep -> ()
        | Shadow.Update m -> meta := m
        | Shadow.Fail _ -> machine_fail := Some idx
      end)
    history;
  (* Oracle: the first failure index under the paper's rules:
     - a read in iteration j of a byte last written in iteration i<j
       violates privacy;
     - a read of a never-written byte is a live-in read; a LATER write
       (in any iteration) after some live-in read is flagged
       conservatively (the one-byte metadata design);
     - intra-iteration write->read is fine. *)
  let oracle_fail = ref None in
  let last_write = ref None in
  let read_live_in = ref false in
  List.iteri
    (fun idx a ->
      if !oracle_fail = None then
        if a.write then begin
          if !read_live_in then oracle_fail := Some idx else last_write := Some a.it
        end
        else
          match !last_write with
          | None -> read_live_in := true
          | Some w when w = a.it -> ()
          | Some _ -> oracle_fail := Some idx)
    history;
  !machine_fail = !oracle_fail

(* ---- range-granular shadow access vs per-byte reference ----------------- *)

(* The refactored Shadow.access resolves pages per contiguous run and
   keeps per-page summary flags; Shadow_reference retains the original
   per-byte implementation.  Under random op/addr/size/beta sequences
   (addresses biased to straddle page boundaries, occasional interval
   resets to stress the flag-driven reset path) both must produce the
   same verdicts at the same op index and byte-identical metadata.

   Both implementations satisfy [Shadow_sig.S], so the op-list driver
   is a functor over the signature: the same workload replays against
   any implementation, and [test_host_parallel] reuses the instances
   to pin the pooled/domain-parallel reset against the plain one. *)
type sh_op = Access of { write : bool; off : int; size : int; beta : int } | Reset

module Shadow_equiv (S : Privateer_runtime.Shadow_sig.S) = struct
  (* Replay [ops] on a fresh machine through [S]; returns the machine
     and the first failure (op index + structural misspec reason).
     [pool]/[page_pool] thread through to [S.reset_interval] — host
     accelerations the oracle ignores and the optimized path must not
     let show. *)
  let run ?pool ?page_pool ops =
    let open Privateer_machine in
    let open Privateer_runtime in
    let base = Privateer_ir.Heap.base Privateer_ir.Heap.Private in
    let m = Machine.create () in
    let fail = ref None in
    List.iteri
      (fun idx op ->
        if !fail = None then
          match op with
          | Reset -> ignore (S.reset_interval ?pool ?page_pool m)
          | Access a -> (
            try
              S.access m
                (if a.write then Shadow_sig.Write else Shadow_sig.Read)
                ~addr:(base + a.off) ~size:a.size ~beta:a.beta
            with Misspec.Misspeculation r -> fail := Some (idx, r)))
      ops;
    (m, !fail)
end

module Run_shadow = Shadow_equiv (Privateer_runtime.Shadow)
module Run_reference = Shadow_equiv (Privateer_runtime.Shadow_reference)

let sh_op_gen =
  QCheck.Gen.(
    let page = 4096 in
    let off_gen =
      oneof
        [ int_bound (3 * page);
          map (fun d -> page - 20 + d) (int_bound 40);
          map (fun d -> (2 * page) - 20 + d) (int_bound 40) ]
    in
    frequency
      [ ( 9,
          map2
            (fun (w, off) (size, beta) -> Access { write = w; off; size; beta })
            (pair bool off_gen)
            (pair (int_range 1 64) (int_range 3 250)) );
        (1, return Reset) ])

let sh_ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Access a ->
               Printf.sprintf "%s@%d+%d b%d" (if a.write then "W" else "R") a.off a.size
                 a.beta
             | Reset -> "RESET")
           ops))
    QCheck.Gen.(list_size (int_bound 40) sh_op_gen)

let prop_range_access_matches_reference ops =
  let open Privateer_machine in
  let m_new, f_new = Run_shadow.run ops in
  let m_ref, f_ref = Run_reference.run ops in
  (* Same failing op index and structurally equal verdict (Misspec
     reasons are pure data), and byte-identical memories afterwards. *)
  f_new = f_ref && Memory.equal_footprint m_new.Machine.mem m_ref.Machine.mem

(* ---- random privatizable programs --------------------------------------- *)

(* Generate a loop body from templates that reuse a global scratch
   array (privatization), a per-iteration malloc (short-lived), and an
   output array write, then check sequential/parallel equivalence.
   Some generated bodies have real loop-carried dependences (e.g.
   reading scratch before writing it); for those, selection must
   reject the loop, which is also a pass. *)
type tmpl = Fill of int | ReadSum | Node of int | OutWrite | PrintIter

let tmpl_gen =
  QCheck.Gen.(
    frequency
      [ (3, map (fun k -> Fill k) (int_bound 7)); (2, return ReadSum);
        (2, map (fun k -> Node k) (int_bound 9)); (3, return OutWrite);
        (1, return PrintIter) ])

let body_arb =
  QCheck.make
    ~print:(fun l -> string_of_int (List.length l) ^ " stmts")
    QCheck.Gen.(list_size (int_range 1 6) tmpl_gen)

let program_of_templates tmpls =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "global scratch[8]; global out[40];\nfn main() {\n";
  Buffer.add_string buf "  for (k = 0; k < 40) {\n    var s = k;\n";
  List.iteri
    (fun i t ->
      match t with
      | Fill n ->
        Buffer.add_string buf
          (Printf.sprintf "    scratch[%d] = k * %d + %d;\n" (n mod 8) (i + 1) i)
      | ReadSum ->
        Buffer.add_string buf
          (Printf.sprintf "    s = s + scratch[%d];\n" (i mod 8))
      | Node n ->
        Buffer.add_string buf
          (Printf.sprintf
             "    var p%d = malloc(2);\n    p%d[0] = k + %d;\n    s = s + p%d[0];\n    free(p%d);\n"
             i i n i i)
      | OutWrite -> Buffer.add_string buf (Printf.sprintf "    out[k] = s + %d;\n" i)
      | PrintIter -> Buffer.add_string buf "    print(\"%d \", s);\n")
    tmpls;
  Buffer.add_string buf "  }\n  var total = 0;\n";
  Buffer.add_string buf "  for (q = 0; q < 40) { total = total + out[q]; }\n";
  Buffer.add_string buf "  print(\"= %d\\n\", total);\n  return total;\n}\n";
  Buffer.contents buf

let prop_random_privatizable_equivalence tmpls =
  let src = program_of_templates tmpls in
  let program = Privateer.Pipeline.parse src in
  let tr, _ = Privateer.Pipeline.compile program in
  let seq = Privateer.Pipeline.run_sequential program in
  let config = { Privateer_parallel.Executor.default_config with workers = 5 } in
  let par = Privateer.Pipeline.run_parallel ~config tr in
  String.equal seq.seq_output par.par_output
  && Privateer_interp.Value.equal seq.seq_result par.par_result

(* The same property under injected misspeculation: recovery must
   never change observable behaviour. *)
let prop_random_equivalence_with_misspec tmpls =
  let src = program_of_templates tmpls in
  let program = Privateer.Pipeline.parse src in
  let tr, _ = Privateer.Pipeline.compile program in
  let seq = Privateer.Pipeline.run_sequential program in
  let config =
    { Privateer_parallel.Executor.default_config with workers = 3;
      inject = Some (fun iter -> iter mod 11 = 7) }
  in
  let par = Privateer.Pipeline.run_parallel ~config tr in
  String.equal seq.seq_output par.par_output

(* ---- parser totality ----------------------------------------------------- *)

let prop_pp_total tmpls =
  (* Pretty-printing and validation never raise on generated
     programs, before or after transformation. *)
  let src = program_of_templates tmpls in
  let program = Privateer.Pipeline.parse src in
  let tr, _ = Privateer.Pipeline.compile program in
  String.length (Privateer_ir.Pp.program_str program) > 0
  && String.length (Privateer_ir.Pp.program_str tr.program) > 0
  && Privateer_ir.Validate.check tr.program = []

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ QCheck.Test.make ~count ~name:"interval map matches naive model" im_ops_arb
        prop_interval_map_model;
      QCheck.Test.make ~count ~name:"allocator: live ranges disjoint + tagged"
        alloc_script_arb prop_allocator_no_overlap;
      QCheck.Test.make ~count ~name:"COW snapshots isolated" cow_script_arb
        prop_cow_isolation;
      QCheck.Test.make ~count:500 ~name:"shadow machine = history oracle" history_arb
        prop_shadow_vs_oracle;
      QCheck.Test.make ~count:300 ~name:"range-granular access = per-byte reference"
        sh_ops_arb prop_range_access_matches_reference;
      QCheck.Test.make ~count:60 ~name:"random privatizable loops: par = seq" body_arb
        prop_random_privatizable_equivalence;
      QCheck.Test.make ~count:30 ~name:"random loops + misspec: par = seq" body_arb
        prop_random_equivalence_with_misspec;
      QCheck.Test.make ~count:40 ~name:"pp/validate total on generated programs"
        body_arb prop_pp_total ]
