(* Unit tests for the speculative runtime: the Table 2 metadata state
   machine (exhaustively), deferred I/O, and checkpoint merging. *)

open Privateer_ir
open Privateer_machine
open Privateer_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- Table 2, exhaustively -------------------------------------------- *)

(* The paper's transition table, written out independently of the
   implementation:

   Op     before              after
   Read   0                   2        (read a live-in value)
   Read   1                   misspec  (loop-carried flow)
   Read   2                   2
   Read   a, 2 < a < beta     misspec  (loop-carried flow)
   Read   beta                beta     (intra-iteration flow)
   Write  0                   beta
   Write  1                   beta
   Write  2                   misspec  (conservative false positive)
   Write  a, 2 < a <= beta    beta *)

let oracle op current beta =
  match op with
  | Shadow.Read ->
    if current = 0 then `Update 2
    else if current = 1 then `Misspec
    else if current = 2 then `Keep
    else if current < beta then `Misspec
    else `Keep
  | Shadow.Write -> if current = 2 then `Misspec else `Update beta

let test_table2_exhaustive () =
  (* Every metadata byte value x every legal beta x both ops. *)
  let cases = ref 0 in
  List.iter
    (fun op ->
      for beta = Shadow.first_timestamp to 255 do
        for current = 0 to beta do
          incr cases;
          let got = Shadow.transition op ~current ~beta in
          let want = oracle op current beta in
          let agree =
            match (got, want) with
            | Shadow.Keep, `Keep -> true
            | Shadow.Update m, `Update m' -> m = m'
            | Shadow.Fail _, `Misspec -> true
            | _ -> false
          in
          if not agree then
            Alcotest.fail
              (Printf.sprintf "disagreement at op=%s current=%d beta=%d"
                 (match op with Shadow.Read -> "R" | Shadow.Write -> "W")
                 current beta)
        done
      done)
    [ Shadow.Read; Shadow.Write ];
  check "covered all cases" true (!cases > 60_000)

let test_shadow_access_on_machine () =
  let m = Machine.create () in
  let addr = Heap.base Heap.Private + 64 in
  let beta = Shadow.timestamp ~iter:5 ~interval_start:3 in
  check_int "beta encoding" 5 beta;
  (* Write then read in the same iteration: fine. *)
  Shadow.access m Shadow.Write ~addr ~size:8 ~beta;
  Shadow.access m Shadow.Read ~addr ~size:8 ~beta;
  (* Metadata lives at the OR-ed shadow address. *)
  check_int "metadata byte" beta (Machine.read_byte m (Heap.shadow_of_private addr));
  (* Reading it in a later iteration is a privacy violation. *)
  let beta' = beta + 1 in
  check "cross-iteration read misspeculates" true
    (try
       Shadow.access m Shadow.Read ~addr ~size:8 ~beta:beta';
       false
     with Misspec.Misspeculation (Misspec.Privacy_flow _) -> true)

let test_shadow_read_live_in_then_write () =
  let m = Machine.create () in
  let addr = Heap.base Heap.Private + 128 in
  Shadow.access m Shadow.Read ~addr ~size:1 ~beta:4;
  check_int "marked read-live-in" Shadow.read_live_in
    (Machine.read_byte m (Heap.shadow_of_private addr));
  check "overwrite of read-live-in is conservative misspec" true
    (try
       Shadow.access m Shadow.Write ~addr ~size:1 ~beta:4;
       false
     with Misspec.Misspeculation (Misspec.Privacy_conservative _) -> true)

let test_shadow_reset_interval () =
  let m = Machine.create () in
  let a1 = Heap.base Heap.Private + 8 in
  let a2 = Heap.base Heap.Private + 16 in
  Shadow.access m Shadow.Write ~addr:a1 ~size:8 ~beta:10;
  Shadow.access m Shadow.Read ~addr:a2 ~size:1 ~beta:10;
  let pages = Shadow.reset_interval m in
  check "scanned at least one shadow page" true (pages >= 1);
  check_int "timestamp became old-write" Shadow.old_write
    (Machine.read_byte m (Heap.shadow_of_private a1));
  check_int "read-live-in preserved" Shadow.read_live_in
    (Machine.read_byte m (Heap.shadow_of_private a2));
  (* A later-interval read of the old write now misspeculates. *)
  check "read of old-write misspeculates" true
    (try
       Shadow.access m Shadow.Read ~addr:a1 ~size:8 ~beta:5;
       false
     with Misspec.Misspeculation (Misspec.Privacy_flow _) -> true)

let test_max_interval_fits_byte () =
  check_int "253 iterations per interval" 253 Shadow.max_interval;
  check_int "last timestamp fits a byte" 255
    (Shadow.timestamp ~iter:252 ~interval_start:0)

(* ---- deferred I/O ------------------------------------------------------ *)

let test_deferred_io_ordering () =
  let io = Deferred_io.create () in
  Deferred_io.emit io ~iter:3 "c";
  Deferred_io.emit io ~iter:1 "a";
  Deferred_io.emit io ~iter:1 "A";
  Deferred_io.emit io ~iter:2 "b";
  let buf = Buffer.create 8 in
  Deferred_io.commit_range io ~lo:0 ~hi:4 ~sink:(Buffer.add_string buf);
  Alcotest.(check string) "iteration order, intra-iteration order" "aAbc"
    (Buffer.contents buf);
  check_int "drained" 0 (Deferred_io.pending io)

let test_deferred_io_discard () =
  let io = Deferred_io.create () in
  Deferred_io.emit io ~iter:1 "a";
  Deferred_io.emit io ~iter:5 "b";
  Deferred_io.discard_from io ~from:3;
  let buf = Buffer.create 8 in
  Deferred_io.commit_range io ~lo:0 ~hi:10 ~sink:(Buffer.add_string buf);
  Alcotest.(check string) "squashed output discarded" "a" (Buffer.contents buf)

(* ---- checkpoints ------------------------------------------------------- *)

(* Build a worker machine that wrote [writes] (addr, value, iter) to
   the private heap with shadow metadata, as the executor would. *)
let worker_with_writes ~interval_start writes =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  List.iter
    (fun (addr, value, iter) ->
      let beta = Shadow.timestamp ~iter ~interval_start in
      Shadow.access m Shadow.Write ~addr ~size:8 ~beta;
      Machine.set_int m addr value)
    writes;
  m

let test_checkpoint_contribution () =
  let base = Heap.base Heap.Private in
  let m = worker_with_writes ~interval_start:0 [ (base + 8, 11, 0); (base + 16, 22, 1) ] in
  let c =
    Checkpoint.contribution_of_worker ~worker:0 ~interval_start:0 m ~redux_ranges:[]
      ~reg_partials:[]
  in
  check_int "two words contributed" 2 (Hashtbl.length c.writes);
  (match Hashtbl.find_opt c.writes (base + 8) with
  | Some { iter = 0; bits; _ } -> check_int "value" 11 (Int64.to_int bits)
  | _ -> Alcotest.fail "missing write record");
  check "pages counted" true (c.pages_touched > 0)

let test_checkpoint_last_writer_wins () =
  let base = Heap.base Heap.Private in
  (* Worker 0 writes in iteration 0; worker 1 writes the same word in
     iteration 3: the later iteration's value must win. *)
  let w0 = worker_with_writes ~interval_start:0 [ (base + 8, 100, 0) ] in
  let w1 = worker_with_writes ~interval_start:0 [ (base + 8, 300, 3) ] in
  let c0 =
    Checkpoint.contribution_of_worker ~worker:0 ~interval_start:0 w0 ~redux_ranges:[]
      ~reg_partials:[]
  in
  let c1 =
    Checkpoint.contribution_of_worker ~worker:1 ~interval_start:0 w1 ~redux_ranges:[]
      ~reg_partials:[]
  in
  let merged = Checkpoint.merge [ c0; c1 ] in
  check "no violation" true (merged.violation = None);
  (match Checkpoint.find_overlay merged (base + 8) with
  | Some { iter = 3; bits; _ } -> check_int "iteration 3 wins" 300 (Int64.to_int bits)
  | _ -> Alcotest.fail "missing merged word");
  (* Applying the overlay installs the winner. *)
  let main = Machine.create () in
  Checkpoint.apply_overlay main merged;
  check_int "installed" 300 (Machine.get_int main (base + 8))

let test_checkpoint_phase2_violation () =
  let base = Heap.base Heap.Private in
  (* Worker 0 reads the byte as live-in; worker 1 wrote it: the
     phase-2 validation must flag the conflict. *)
  let w0 = Machine.create () in
  Memory.clear_dirty w0.Machine.mem;
  Shadow.access w0 Shadow.Read ~addr:(base + 8) ~size:8 ~beta:3;
  let w1 = worker_with_writes ~interval_start:0 [ (base + 8, 5, 1) ] in
  let c0 =
    Checkpoint.contribution_of_worker ~worker:0 ~interval_start:0 w0 ~redux_ranges:[]
      ~reg_partials:[]
  in
  let c1 =
    Checkpoint.contribution_of_worker ~worker:1 ~interval_start:0 w1 ~redux_ranges:[]
      ~reg_partials:[]
  in
  let merged = Checkpoint.merge [ c0; c1 ] in
  check "phase-2 conflict detected" true
    (match merged.violation with Some (Misspec.Phase2 _) -> true | _ -> false)

let test_checkpoint_float_preserved () =
  let base = Heap.base Heap.Private in
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  Shadow.access m Shadow.Write ~addr:(base + 8) ~size:8 ~beta:3;
  Machine.set_float m (base + 8) 6.25;
  let c =
    Checkpoint.contribution_of_worker ~worker:0 ~interval_start:0 m ~redux_ranges:[]
      ~reg_partials:[]
  in
  let merged = Checkpoint.merge [ c ] in
  let main = Machine.create () in
  Checkpoint.apply_overlay main merged;
  Alcotest.(check (float 0.0)) "float survives the merge" 6.25
    (Machine.get_float main (base + 8))

let test_checkpoint_redux_merge () =
  let base_addr = Heap.base Heap.Redux + 16 in
  let ranges = [ (base_addr, 8, Ast.Add) ] in
  let mk_worker partial =
    let m = Machine.create () in
    Machine.set_int m base_addr partial;
    Memory.clear_dirty m.Machine.mem;
    Checkpoint.contribution_of_worker ~worker:0 ~interval_start:0 m ~redux_ranges:ranges
      ~reg_partials:[]
  in
  let c0 = mk_worker 10 and c1 = mk_worker 32 in
  let merged =
    Checkpoint.merge_redux ~redux_ranges:ranges
      ~base:[ (base_addr, Privateer_interp.Value.VInt 100) ] [ c0; c1 ]
  in
  match merged with
  | [ (_, Privateer_interp.Value.VInt 142) ] -> ()
  | _ -> Alcotest.fail "expected 100 + 10 + 32 = 142"

let test_checkpoint_reg_partials () =
  let mk p =
    { Checkpoint.worker = 0; writes = Hashtbl.create 1; live_in_reads = Hashtbl.create 1;
      redux_words = []; reg_partials = [ ("terr", Privateer_interp.Value.VFloat p) ];
      pages_touched = 0 }
  in
  match
    Checkpoint.merge_reg_partials ~ops:[ ("terr", Ast.Fadd) ]
      ~base:[ ("terr", Privateer_interp.Value.VFloat 1.0) ] [ mk 2.0; mk 3.5 ]
  with
  | [ ("terr", Privateer_interp.Value.VFloat v) ] ->
    Alcotest.(check (float 1e-12)) "merged" 6.5 v
  | _ -> Alcotest.fail "expected merged register partial"

let suite =
  [ Alcotest.test_case "Table 2 transitions (exhaustive)" `Quick test_table2_exhaustive;
    Alcotest.test_case "shadow access on machine" `Quick test_shadow_access_on_machine;
    Alcotest.test_case "read-live-in then write" `Quick test_shadow_read_live_in_then_write;
    Alcotest.test_case "interval metadata reset" `Quick test_shadow_reset_interval;
    Alcotest.test_case "timestamps fit one byte" `Quick test_max_interval_fits_byte;
    Alcotest.test_case "deferred I/O ordering" `Quick test_deferred_io_ordering;
    Alcotest.test_case "deferred I/O discard" `Quick test_deferred_io_discard;
    Alcotest.test_case "checkpoint contribution" `Quick test_checkpoint_contribution;
    Alcotest.test_case "checkpoint last-writer-wins" `Quick test_checkpoint_last_writer_wins;
    Alcotest.test_case "checkpoint phase-2 violation" `Quick test_checkpoint_phase2_violation;
    Alcotest.test_case "checkpoint preserves floats" `Quick test_checkpoint_float_preserved;
    Alcotest.test_case "checkpoint reduction merge" `Quick test_checkpoint_redux_merge;
    Alcotest.test_case "checkpoint register partials" `Quick test_checkpoint_reg_partials ]
