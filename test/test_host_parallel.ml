(* Host-parallel checkpoint extraction and the sharded phase-2 merge:
   the sequential path is the correctness oracle.

   - qcheck: extraction over a domain pool is byte-identical to the
     sequential scan, on random multi-page shadow states — and both
     equal a byte-wise oracle that ignores the mark counts, so the
     early-exit page scan can never under-read;
   - qcheck: the sharded merge equals the sequential merge equals a
     pre-shard nested-scan oracle, over shard counts {1, 4, 7} x host
     pools {sequential, 3 domains}, with identical index-op counts in
     every cell;
   - qcheck: merging through a carried [merge_state] gives the same
     overlay/violation/pages as rebuilding the index per interval,
     over random multi-interval sequences;
   - regression: a clean interval (no new writes) does zero index
     work; a writing interval sweeps its delta back out; a violation
     is pinned to the smallest conflicting byte at every shard count;
   - unit: [Memory.live_in_bytes] stays exact under overlapping
     [Shadow.access] ranges and across the interval reset;
   - qcheck: the full pipeline is byte-identical across host_domains x
     pool cap x merge shards (output, result, simulated cycles);
   - unit tests for the Domain_pool itself (ordering, exceptions,
     sequential fallback after shutdown). *)

open Privateer_ir
open Privateer_machine
open Privateer_runtime
module Domain_pool = Privateer_support.Domain_pool
module Host_controller = Privateer_parallel.Host_controller

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The pool under test.  [shared] so a PRIVATEER_HOST_DOMAINS >= 3 run
   reuses the executor's pool rather than replacing it; resolved per
   use (not once) because the pipeline-identity cells below
   deliberately swap the shared pool's scheduler kind, which replaces
   the shared instance. *)
let pool () = Domain_pool.shared ~domains:3 ()

(* ---- random shadow states ---------------------------------------------- *)

(* One op: (page, word, kind, iter, value); kind 0-2 writes a word,
   3 reads 1-8 bytes as live-in.  Illegal sequences (e.g. a write over
   a live-in mark) raise Misspeculation and are simply skipped — the
   surviving shadow state is still a valid worker interval state. *)
let op_gen =
  QCheck.Gen.(
    int_bound 15 >>= fun page ->
    int_bound 511 >>= fun word ->
    int_bound 3 >>= fun kind ->
    int_bound 20 >>= fun iter ->
    map (fun value -> (page, word, kind, iter, value)) (int_bound 1000))

let ops_print ops = string_of_int (List.length ops) ^ " ops"

let worker_ops_arb =
  QCheck.make
    ~print:(fun ws ->
      String.concat "+" (List.map ops_print ws) ^ " across workers")
    QCheck.Gen.(list_size (int_range 1 4) (list_size (int_bound 120) op_gen))

let build_machine ~interval_start ops =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  List.iter
    (fun (page, word, kind, iter, value) ->
      let addr = Heap.base Heap.Private + (page * Memory.page_size) + (word * 8) in
      let beta = Shadow.timestamp ~iter ~interval_start in
      try
        if kind < 3 then begin
          Shadow.access m Shadow.Write ~addr ~size:8 ~beta;
          Machine.set_int m addr value
        end
        else Shadow.access m Shadow.Read ~addr ~size:(1 + (value mod 8)) ~beta
      with Misspec.Misspeculation _ -> ())
    ops;
  m

let reqs_of ~interval_start workerses =
  List.mapi
    (fun i ops ->
      { Checkpoint.req_worker = i;
        req_machine = build_machine ~interval_start ops;
        req_redux_ranges = []; req_reg_partials = [] })
    workerses

(* ---- extraction equality ------------------------------------------------ *)

let tbl_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold (fun k v acc -> acc && Hashtbl.find_opt b k = Some v) a true

let contribution_equal (a : Checkpoint.contribution) (b : Checkpoint.contribution) =
  a.worker = b.worker
  && tbl_equal a.writes b.writes
  && tbl_equal a.live_in_reads b.live_in_reads
  && a.redux_words = b.redux_words
  && a.reg_partials = b.reg_partials
  && a.pages_touched = b.pages_touched

let prop_parallel_extraction_equals_sequential workerses =
  let reqs = reqs_of ~interval_start:0 workerses in
  let seq = Checkpoint.extract ~interval_start:0 reqs in
  let par = Checkpoint.extract ~pool:(pool ()) ~interval_start:0 reqs in
  List.length seq = List.length par && List.for_all2 contribution_equal seq par

(* ---- early-exit scan vs byte-wise oracle -------------------------------- *)

(* Extraction oracle that ignores summary flags and mark counts: every
   byte of every dirty shadow page through [read_byte].  The real scan
   stops once [timestamp_bytes + live_in_bytes] marks are found; if a
   count were ever short, the early exit would drop marks and this
   property would catch it. *)
let naive_tables ~interval_start (m : Machine.t) =
  let mem = m.Machine.mem in
  let writes = Hashtbl.create 64 in
  let live_in_reads = Hashtbl.create 16 in
  List.iter
    (fun key ->
      let base = Memory.base_of_page key in
      for off = 0 to Memory.page_size - 1 do
        let md = Memory.read_byte mem (base + off) in
        if Shadow.is_timestamp md then begin
          let private_addr = Heap.private_of_shadow (base + off) in
          let word_addr = Checkpoint.word_base private_addr in
          let iter = Shadow.iteration_of_timestamp ~interval_start md in
          let keep =
            match Hashtbl.find_opt writes word_addr with
            | Some (prev : Checkpoint.word_write) -> iter > prev.iter
            | None -> true
          in
          if keep then begin
            let bits, is_float = Memory.read_word mem word_addr in
            Hashtbl.replace writes word_addr { Checkpoint.iter; bits; is_float }
          end
        end
        else if md = Shadow.read_live_in then
          Hashtbl.replace live_in_reads (Heap.private_of_shadow (base + off)) ()
      done)
    (Memory.dirty_pages ~heap:Heap.Shadow mem);
  (writes, live_in_reads)

let prop_early_exit_scan_matches_bytewise workerses =
  let reqs = reqs_of ~interval_start:0 workerses in
  let extracted = Checkpoint.extract ~interval_start:0 reqs in
  List.for_all2
    (fun (req : Checkpoint.extract_request) (c : Checkpoint.contribution) ->
      let writes, live_in = naive_tables ~interval_start:0 req.req_machine in
      tbl_equal writes c.writes && tbl_equal live_in c.live_in_reads)
    reqs extracted

(* ---- incremental merge equality ----------------------------------------- *)

let overlay_equal (a : Checkpoint.merged) (b : Checkpoint.merged) =
  Checkpoint.overlay_size a = Checkpoint.overlay_size b
  &&
  let ok = ref true in
  Checkpoint.iter_overlay a ~f:(fun k v ->
      if Checkpoint.find_overlay b k <> Some v then ok := false);
  !ok

let merged_equal (a : Checkpoint.merged) (b : Checkpoint.merged) =
  overlay_equal a b
  && a.violation = b.violation
  && a.total_pages = b.total_pages

let intervals_arb =
  QCheck.make
    ~print:(fun is -> string_of_int (List.length is) ^ " intervals")
    QCheck.Gen.(
      list_size (int_range 1 5)
        (list_size (int_range 1 3) (list_size (int_bound 60) op_gen)))

let prop_incremental_merge_equals_rebuilt intervals =
  let state = Checkpoint.create_merge_state () in
  List.for_all
    (fun workerses ->
      (* Fresh machines per interval: contributions are per-interval
         deltas by construction, exactly as after a commit's
         reset_interval + clear_dirty. *)
      let contribs = Checkpoint.extract ~interval_start:0 (reqs_of ~interval_start:0 workerses) in
      let incremental = Checkpoint.merge ~state contribs in
      let rebuilt = Checkpoint.merge contribs in
      merged_equal incremental rebuilt)
    intervals

(* ---- sharded merge vs pre-shard oracle ---------------------------------- *)

(* The pre-shard oracle: nested-scan semantics with no writer index at
   all.  Overlay is last-writer-wins by iteration; the violation is
   the smallest live-in byte whose containing word any other worker
   wrote. *)
let oracle_merge (contribs : Checkpoint.contribution list) =
  let overlay = Hashtbl.create 64 in
  List.iter
    (fun (c : Checkpoint.contribution) ->
      Hashtbl.iter
        (fun addr (w : Checkpoint.word_write) ->
          match Hashtbl.find_opt overlay addr with
          | Some (prev : Checkpoint.word_write) when prev.iter >= w.iter -> ()
          | Some _ | None -> Hashtbl.replace overlay addr w)
        c.writes)
    contribs;
  let violation = ref None in
  List.iter
    (fun (r : Checkpoint.contribution) ->
      Hashtbl.iter
        (fun addr () ->
          let conflict =
            List.exists
              (fun (w : Checkpoint.contribution) ->
                w.worker <> r.worker
                && Hashtbl.mem w.writes (Checkpoint.word_base addr))
              contribs
          in
          if conflict then
            match !violation with
            | Some a when a <= addr -> ()
            | Some _ | None -> violation := Some addr)
        r.live_in_reads)
    contribs;
  (overlay, Option.map (fun addr -> Misspec.Phase2 { addr }) !violation)

let overlay_matches_oracle (m : Checkpoint.merged) oracle =
  Checkpoint.overlay_size m = Hashtbl.length oracle
  && Hashtbl.fold
       (fun k v acc -> acc && Checkpoint.find_overlay m k = Some v)
       oracle true

(* The tentpole matrix: for every shard count in {1, 4, 7} and both
   host modes (sequential, 3-domain pool), the sharded merge must
   reproduce the oracle's overlay and verdict, do the same number of
   index ops, and — because the sweep must leave every shard empty —
   re-merge the same contributions identically through the carried
   state. *)
let prop_sharded_merge_matches_oracle workerses =
  let contribs =
    Checkpoint.extract ~interval_start:0 (reqs_of ~interval_start:0 workerses)
  in
  let oracle_ov, oracle_v = oracle_merge contribs in
  let cells =
    List.concat_map
      (fun shards -> [ (shards, None); (shards, Some (pool ())) ])
      [ 1; 4; 7 ]
  in
  let ops = ref None in
  List.for_all
    (fun (shards, p) ->
      let state = Checkpoint.create_merge_state ~shards () in
      let m = Checkpoint.merge ~state ?pool:p contribs in
      let cell_ops = Checkpoint.index_ops state in
      let ops_ok =
        match !ops with
        | None ->
          ops := Some cell_ops;
          true
        | Some o -> o = cell_ops
      in
      let m2 = Checkpoint.merge ~state ?pool:p contribs in
      ops_ok
      && overlay_matches_oracle m oracle_ov
      && m.violation = oracle_v
      && merged_equal m m2)
    cells

(* ---- clean-interval short-circuit (regression) -------------------------- *)

let reader_only worker addr =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  Shadow.access m Shadow.Read ~addr ~size:8 ~beta:3;
  Checkpoint.contribution_of_worker ~worker ~interval_start:0 m ~redux_ranges:[]
    ~reg_partials:[]

let writer worker addr value iter =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  Shadow.access m Shadow.Write ~addr ~size:8
    ~beta:(Shadow.timestamp ~iter ~interval_start:0);
  Machine.set_int m addr value;
  Checkpoint.contribution_of_worker ~worker ~interval_start:0 m ~redux_ranges:[]
    ~reg_partials:[]

let test_clean_interval_no_index_work () =
  let base = Heap.base Heap.Private in
  let state = Checkpoint.create_merge_state () in
  (* Live-in reads but no writes: merge must not touch the index. *)
  let m = Checkpoint.merge ~state [ reader_only 0 (base + 8); reader_only 1 (base + 64) ] in
  check "clean interval: no violation" true (m.violation = None);
  check_int "clean interval: zero index ops" 0 (Checkpoint.index_ops state);
  check_int "clean interval: empty overlay" 0 (Checkpoint.overlay_size m)

let test_writing_interval_sweeps_delta () =
  let base = Heap.base Heap.Private in
  let state = Checkpoint.create_merge_state () in
  (* Interval 1: worker 1 writes base+8. *)
  let m1 = Checkpoint.merge ~state [ writer 1 (base + 8) 42 0 ] in
  check "interval 1 clean" true (m1.violation = None);
  let ops_after_1 = Checkpoint.index_ops state in
  check "writing interval does index work" true (ops_after_1 > 0);
  (* Interval 2: worker 0 reads base+8 as live-in and worker 0 writes
     elsewhere.  A stale index entry from interval 1 (worker 1 wrote
     base+8) would flag a phase-2 conflict; the sweep must prevent
     that. *)
  let r =
    let m = Machine.create () in
    Memory.clear_dirty m.Machine.mem;
    Shadow.access m Shadow.Read ~addr:(base + 8) ~size:8 ~beta:3;
    Shadow.access m Shadow.Write ~addr:(base + 128) ~size:8
      ~beta:(Shadow.timestamp ~iter:4 ~interval_start:0);
    Machine.set_int m (base + 128) 7;
    Checkpoint.contribution_of_worker ~worker:0 ~interval_start:0 m ~redux_ranges:[]
      ~reg_partials:[]
  in
  let m2 = Checkpoint.merge ~state [ r ] in
  check "no stale cross-interval conflict" true (m2.violation = None)

let test_violation_reports_smallest_addr () =
  let base = Heap.base Heap.Private in
  (* Two distinct conflicts on different pages (and so, at most shard
     counts, in different shards); the reported address must be the
     smaller one at every shard count and in both host modes — the
     parallel verdict is the min over per-shard minima. *)
  let w =
    let m = Machine.create () in
    Memory.clear_dirty m.Machine.mem;
    List.iter
      (fun a ->
        Shadow.access m Shadow.Write ~addr:a ~size:8
          ~beta:(Shadow.timestamp ~iter:1 ~interval_start:0);
        Machine.set_int m a 9)
      [ base + 8; base + 4096 + 16 ];
    Checkpoint.contribution_of_worker ~worker:1 ~interval_start:0 m ~redux_ranges:[]
      ~reg_partials:[]
  in
  let r =
    let m = Machine.create () in
    Memory.clear_dirty m.Machine.mem;
    Shadow.access m Shadow.Read ~addr:(base + 8) ~size:8 ~beta:3;
    Shadow.access m Shadow.Read ~addr:(base + 4096 + 16) ~size:8 ~beta:3;
    Checkpoint.contribution_of_worker ~worker:0 ~interval_start:0 m ~redux_ranges:[]
      ~reg_partials:[]
  in
  List.iter
    (fun (shards, p, label) ->
      let state = Checkpoint.create_merge_state ~shards () in
      match (Checkpoint.merge ~state ?pool:p [ r; w ]).violation with
      | Some (Misspec.Phase2 { addr }) ->
        check_int (Printf.sprintf "smallest conflict (%s)" label) (base + 8) addr
      | _ -> Alcotest.fail (Printf.sprintf "expected a phase-2 violation (%s)" label))
    [ (1, None, "1 shard, seq"); (4, None, "4 shards, seq");
      (7, None, "7 shards, seq");
      (1, Some (pool ()), "1 shard, pool");
      (4, Some (pool ()), "4 shards, pool");
      (7, Some (pool ()), "7 shards, pool") ]

(* ---- exact live-in counts ------------------------------------------------ *)

(* Recount read-live-in marks straight off a shadow page's bytes — the
   oracle for [Memory.live_in_bytes]. *)
let recount_live_in (m : Machine.t) key =
  match Memory.find_page m.Machine.mem (Memory.base_of_page key) with
  | None -> 0
  | Some p ->
    let bytes = Memory.page_bytes p in
    let n = ref 0 in
    for i = 0 to Memory.page_size - 1 do
      if Char.code (Bytes.get bytes i) = Shadow.read_live_in then incr n
    done;
    !n

let counted_live_in (m : Machine.t) key =
  match Memory.find_page m.Machine.mem (Memory.base_of_page key) with
  | None -> 0
  | Some p -> Memory.live_in_bytes p

let test_live_in_count_exact () =
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  let base = Heap.base Heap.Private in
  let check_all msg =
    List.iter
      (fun key ->
        check_int
          (Printf.sprintf "%s: page %#x" msg key)
          (recount_live_in m key) (counted_live_in m key))
      (Memory.dirty_pages ~heap:Heap.Shadow m.Machine.mem)
  in
  (* Overlapping reads (the second re-covers already-marked bytes), a
     page-crossing read, and an unrelated write on the same page. *)
  Shadow.access m Shadow.Read ~addr:base ~size:100 ~beta:3;
  Shadow.access m Shadow.Read ~addr:(base + 50) ~size:100 ~beta:3;
  Shadow.access m Shadow.Read ~addr:(base + 4000) ~size:200 ~beta:3;
  Shadow.access m Shadow.Write ~addr:(base + 512) ~size:64 ~beta:5;
  check_all "after overlapping reads";
  (* Live-in marks survive the interval reset; so must the count. *)
  ignore (Shadow.reset_interval m);
  check_all "after reset";
  (* Partially-overlapping re-read: bytes 100-149 are already marked
     (Keep — no double count), 150-299 are fresh. *)
  Shadow.access m Shadow.Read ~addr:(base + 100) ~size:200 ~beta:3;
  check_all "after partially-overlapping re-read"

(* ---- pooled / domain-parallel interval reset ---------------------------- *)

(* Page-scale accesses so fully-timestamped shadow pages (the
   swap-retirement path) actually occur: writes cover up to two whole
   pages, and resets recycle retired buffers through a shared
   [Page_pool] across intervals.  The plain sequential reset is the
   oracle; the pooled + domain-parallel reset must leave byte-identical
   metadata and verdicts. *)
let big_op_gen =
  QCheck.Gen.(
    let page = Memory.page_size in
    frequency
      [ ( 6,
          map2
            (fun (w, off) (size, beta) ->
              Test_props.Access { write = w; off; size; beta })
            (pair bool (map (fun p -> p * page) (int_bound 3)))
            (pair (oneofl [ page; 2 * page; 17; page + 9 ]) (int_range 3 250)) );
        (2, return Test_props.Reset) ])

let big_ops_arb =
  QCheck.make
    ~print:(fun ops -> string_of_int (List.length ops) ^ " page-scale ops")
    QCheck.Gen.(list_size (int_range 2 24) big_op_gen)

let fresh_page_pool ?cap () =
  Page_pool.create ?cap ~fill:(Char.chr Shadow.old_write) ()

let prop_pooled_reset_matches_plain ops =
  let plain_m, plain_f = Test_props.Run_shadow.run ops in
  let page_pool = fresh_page_pool () in
  let pooled_m, pooled_f =
    Test_props.Run_shadow.run ~pool:(pool ()) ~page_pool ops
  in
  (* Pool-recycled pages must be indistinguishable from rewritten
     ones; a disabled pool (cap 0) must behave like no pool at all. *)
  let disabled_m, disabled_f =
    Test_props.Run_shadow.run ~page_pool:(fresh_page_pool ~cap:0 ()) ops
  in
  let ref_m, ref_f = Test_props.Run_reference.run ops in
  plain_f = pooled_f && plain_f = disabled_f && plain_f = ref_f
  && Memory.equal_footprint plain_m.Machine.mem pooled_m.Machine.mem
  && Memory.equal_footprint plain_m.Machine.mem disabled_m.Machine.mem
  && Memory.equal_footprint plain_m.Machine.mem ref_m.Machine.mem

(* ---- the page pool itself ----------------------------------------------- *)

let test_page_pool_eviction () =
  let pp = fresh_page_pool ~cap:2 () in
  let take () =
    match Page_pool.acquire pp with
    | Some b ->
      check_int "pre-filled page-sized buffer" Memory.page_size (Bytes.length b);
      check "every byte is the fill" true
        (Bytes.for_all (fun c -> c = Page_pool.fill pp) b);
      b
    | None -> Alcotest.fail "acquire returned None on an enabled pool"
  in
  let b1 = take () and b2 = take () and b3 = take () in
  List.iter (Page_pool.deposit pp) [ b1; b2; b3 ];
  let s = Page_pool.stats pp in
  check_int "high-water stops at the cap" 2 s.Page_pool.high_water;
  check_int "third deposit evicted" 1 s.Page_pool.evictions;
  check_int "free list at cap" 2 (Page_pool.ready pp);
  (* The next interval recycles instead of minting. *)
  ignore (take ());
  check_int "recycled from the free list" 1 (Page_pool.stats pp).Page_pool.recycled

let test_page_pool_disabled () =
  let pp = fresh_page_pool ~cap:0 () in
  check "cap 0 disables acquire" true (Page_pool.acquire pp = None);
  check "cap 0 reports disabled" false (Page_pool.enabled pp);
  check_int "no swaps counted" 0 (Page_pool.stats pp).Page_pool.swaps

let test_page_pool_swap_stats () =
  (* A full-page write then a pooled reset must take the swap path. *)
  let m = Machine.create () in
  Memory.clear_dirty m.Machine.mem;
  let base = Heap.base Heap.Private in
  Shadow.access m Shadow.Write ~addr:base ~size:Memory.page_size ~beta:3;
  let pp = fresh_page_pool () in
  ignore (Shadow.reset_interval ~page_pool:pp m);
  check_int "fully-timestamped page swapped" 1 (Page_pool.stats pp).Page_pool.swaps;
  check_int "retired buffer deposited" 1 (Page_pool.ready pp);
  (* A partially-timestamped page must not be swapped. *)
  Shadow.access m Shadow.Write ~addr:base ~size:24 ~beta:3;
  ignore (Shadow.reset_interval ~page_pool:pp m);
  check_int "partial page rewritten in place" 1 (Page_pool.stats pp).Page_pool.swaps

let test_page_pool_fill_validation () =
  let m = Machine.create () in
  check "wrong fill byte rejected" true
    (try
       ignore
         (Shadow.reset_interval ~page_pool:(Page_pool.create ~fill:'\000' ()) m);
       false
     with Invalid_argument _ -> true)

(* ---- merge-state isolation (regression) ---------------------------------- *)

(* [Checkpoint.index_ops] counts per merge state (reachable per-cohort
   as [Commit.index_ops ctx]), so two pipelines interleaving in one
   process cannot contaminate each other's zero-index-work baseline. *)
let test_merge_state_isolation () =
  let base = Heap.base Heap.Private in
  let s1 = Checkpoint.create_merge_state () in
  let s2 = Checkpoint.create_merge_state () in
  ignore (Checkpoint.merge ~state:s1 [ writer 1 (base + 8) 42 0 ]);
  let ops1 = Checkpoint.index_ops s1 in
  check "s1 did index work" true (ops1 > 0);
  (* A concurrent pipeline's clean interval stays at zero even though
     s1 wrote. *)
  let m2 = Checkpoint.merge ~state:s2 [ reader_only 0 (base + 64) ] in
  check "s2 clean merge" true (m2.violation = None);
  check_int "s2 unaffected by s1's work" 0 (Checkpoint.index_ops s2);
  check_int "s1 unaffected by s2's merge" ops1 (Checkpoint.index_ops s1)

(* ---- full-pipeline equality --------------------------------------------- *)

(* The whole host-tuning matrix — host_domains {1, 3} x pool cap
   {0, auto, unbounded} x merge shards {1, 4, 7} x pool kind
   {work-stealing, legacy} x controller mode {auto, always, never}
   (sampled; every mode x kind pair appears) — must be byte-identical:
   output, result, simulated cycles, every stats counter. *)
let prop_pipeline_identical_across_host_domains tmpls =
  let src = Test_props.program_of_templates tmpls in
  let program = Privateer.Pipeline.parse src in
  let tr, _ = Privateer.Pipeline.compile program in
  let run (host_domains, pool_cap, merge_shards, pool_kind, host_controller) =
    let config =
      { Privateer_parallel.Executor.default_config with workers = 5; host_domains;
        pool_cap; merge_shards; pool_kind; host_controller }
    in
    Privateer.Pipeline.run_parallel ~config tr
  in
  let ws = Domain_pool.Work_stealing and sq = Domain_pool.Single_queue in
  let a = run (1, 0, 1, ws, Host_controller.Never) in
  List.for_all
    (fun cell ->
      let b = run cell in
      String.equal a.par_output b.par_output
      && Privateer_interp.Value.equal a.par_result b.par_result
      && a.par_cycles = b.par_cycles
      && a.stats.checkpoints = b.stats.checkpoints
      && a.stats.wall_cycles = b.stats.wall_cycles
      && a.stats.private_bytes_read = b.stats.private_bytes_read
      && a.stats.private_bytes_written = b.stats.private_bytes_written)
    [ (1, Privateer_runtime.Page_pool.unbounded, 8, ws, Host_controller.Auto);
      (3, 0, 1, ws, Host_controller.Auto);
      (3, 0, 1, sq, Host_controller.Auto);
      (3, Privateer_runtime.Page_pool.unbounded, 4, ws, Host_controller.Always);
      (3, Privateer_runtime.Page_pool.unbounded, 4, sq, Host_controller.Always);
      (3, Privateer_runtime.Page_pool.auto, 7, ws, Host_controller.Never);
      (3, Privateer_runtime.Page_pool.auto, 7, sq, Host_controller.Never) ]

(* ---- the pool itself ---------------------------------------------------- *)

(* Run [f] against both scheduler kinds: the suite's shared
   work-stealing pool, and a private legacy (single-queue) pool that is
   shut down afterwards.  Both kinds share [run]'s result/exception
   contract, so every pool test must pass unchanged on each. *)
let with_both_kinds f =
  f (pool ()) "work-stealing";
  let legacy = Domain_pool.create ~kind:Domain_pool.Single_queue ~domains:3 () in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown legacy)
    (fun () -> f legacy "legacy")

let test_pool_ordering () =
  with_both_kinds (fun p label ->
      let results = Domain_pool.run p (List.init 40 (fun i () -> i * i)) in
      check
        (Printf.sprintf "results in task order (%s)" label)
        true
        (results = List.init 40 (fun i -> i * i)))

let test_pool_exception () =
  with_both_kinds (fun p label ->
      check
        (Printf.sprintf "task exception re-raised (%s)" label)
        true
        (try
           ignore (Domain_pool.run p [ (fun () -> 1); (fun () -> failwith "boom") ]);
           false
         with Failure msg -> msg = "boom");
      (* The pool survives a failing run. *)
      check
        (Printf.sprintf "pool reusable after failure (%s)" label)
        true
        (Domain_pool.run p [ (fun () -> 7); (fun () -> 8) ] = [ 7; 8 ]))

exception Boom of int

(* Regression for the exception contract: a task raising mid-run must
   not stop the remaining tasks, and the caller must see the first
   exception in TASK order (not completion order — under work
   stealing a later task's exception can settle first). *)
let test_pool_exception_order () =
  with_both_kinds (fun p label ->
      let ran = Atomic.make 0 in
      let task i () =
        Atomic.incr ran;
        if i = 1 || i = 3 then raise (Boom i) else i
      in
      (match Domain_pool.run p (List.init 5 task) with
      | _ -> Alcotest.fail (label ^ ": expected Boom")
      | exception Boom i ->
        check_int (Printf.sprintf "first task-order exception (%s)" label) 1 i);
      check_int (Printf.sprintf "all five tasks still ran (%s)" label) 5
        (Atomic.get ran);
      check
        (Printf.sprintf "pool reusable after mixed failures (%s)" label)
        true
        (Domain_pool.run p [ (fun () -> 7); (fun () -> 8) ] = [ 7; 8 ]))

let test_pool_shutdown_fallback () =
  let p = Domain_pool.create ~domains:2 () in
  Domain_pool.shutdown p;
  check "sequential fallback after shutdown" true
    (Domain_pool.run p (List.init 5 (fun i () -> i + 1)) = [ 1; 2; 3; 4; 5 ])

let test_pool_size_validation () =
  check "rejects 0 domains" true
    (try ignore (Domain_pool.create ~domains:0 ()); false with Invalid_argument _ -> true);
  check "rejects 65 domains" true
    (try ignore (Domain_pool.create ~domains:65 ()); false with Invalid_argument _ -> true)

(* Regression: [shared] must report the REQUESTED size, not the
   spawned one — a smaller request reusing a larger pool's domains
   used to inherit the larger size, inflating every chunking
   heuristic. *)
let test_shared_reports_requested_size () =
  let p3 = pool () in
  check_int "shared 3 reports 3" 3 (Domain_pool.size p3);
  let p2 = Domain_pool.shared ~domains:2 () in
  check "smaller request reuses the spawned domains" true (p2 == p3);
  check_int "smaller request reports the requested size" 2 (Domain_pool.size p2);
  let p3' = Domain_pool.shared ~domains:3 () in
  check_int "re-request restores the size" 3 (Domain_pool.size p3')

(* ---- futures: submit / await -------------------------------------------- *)

let test_submit_await_basic () =
  with_both_kinds (fun p label ->
      let fus = List.init 50 (fun i -> Domain_pool.submit p (fun () -> i * 3)) in
      let results = List.map Domain_pool.await fus in
      check
        (Printf.sprintf "awaited results in submission order (%s)" label)
        true
        (results = List.init 50 (fun i -> i * 3));
      (* A settled future stays settled: poll and re-await agree. *)
      let fu = Domain_pool.submit p (fun () -> 41) in
      check_int (Printf.sprintf "await (%s)" label) 41 (Domain_pool.await fu);
      check
        (Printf.sprintf "poll after settle (%s)" label)
        true
        (Domain_pool.poll fu = Some (Ok 41));
      check_int (Printf.sprintf "re-await (%s)" label) 41 (Domain_pool.await fu))

let test_submit_exception () =
  with_both_kinds (fun p label ->
      let fu = Domain_pool.submit p (fun () -> raise (Boom 9)) in
      (match Domain_pool.await fu with
      | _ -> Alcotest.fail (label ^ ": expected Boom")
      | exception Boom 9 -> ());
      (* The failure is confined to its future: the pool survives. *)
      check_int
        (Printf.sprintf "pool usable after failed future (%s)" label)
        5
        (Domain_pool.await (Domain_pool.submit p (fun () -> 5))))

let test_submit_inline_fallback () =
  (* A pool of size 1 runs the task inline on the submitting domain:
     the future is settled before submit returns. *)
  let p = Domain_pool.create ~domains:1 () in
  let ran = ref false in
  let fu = Domain_pool.submit p (fun () -> ran := true; 13) in
  check "inline execution on size-1 pool" true !ran;
  check "inline future settled" true (Domain_pool.poll fu = Some (Ok 13));
  check_int "inline await" 13 (Domain_pool.await fu);
  Domain_pool.shutdown p;
  (* After shutdown, submit degrades the same way. *)
  let fu = Domain_pool.submit p (fun () -> 14) in
  check_int "inline await after shutdown" 14 (Domain_pool.await fu)

(* The job-server pattern: a submitted task performs a nested barrier
   [run] on the same pool (stage fan-outs inside a job body), and the
   awaiting caller helps instead of deadlocking. *)
let test_nested_run_inside_future () =
  with_both_kinds (fun p label ->
      let fus =
        List.init 6 (fun j ->
            Domain_pool.submit p (fun () ->
                let parts = Domain_pool.run p (List.init 8 (fun i () -> (j * 8) + i)) in
                List.fold_left ( + ) 0 parts))
      in
      let expected j = List.init 8 (fun i -> (j * 8) + i) |> List.fold_left ( + ) 0 in
      List.iteri
        (fun j fu ->
          check_int
            (Printf.sprintf "nested run result %d (%s)" j label)
            (expected j) (Domain_pool.await fu))
        fus)

(* Concurrent barrier [run]s from independent client domains share one
   pool: each caller must get its own results in its own task order. *)
let test_concurrent_barrier_runs () =
  with_both_kinds (fun p label ->
      let client c =
        Domain.spawn (fun () ->
            List.init 20 (fun round ->
                Domain_pool.run p (List.init 10 (fun i () -> (c * 1000) + (round * 10) + i)))
            |> List.concat)
      in
      let clients = List.init 3 client in
      List.iteri
        (fun c d ->
          let got = Domain.join d in
          let want =
            List.concat
              (List.init 20 (fun round ->
                   List.init 10 (fun i -> (c * 1000) + (round * 10) + i)))
          in
          check
            (Printf.sprintf "client %d results in task order (%s)" c label)
            true (got = want))
        clients)

(* qcheck: interleaved submit/await from several client domains
   preserves per-client result order, and a failing task's exception
   surfaces at exactly its position — on both pool kinds. *)
let submitters_arb =
  QCheck.make
    ~print:(fun (clients, per, fail_mod) ->
      Printf.sprintf "%d clients x %d tasks, fail mod %d" clients per fail_mod)
    QCheck.Gen.(triple (int_range 2 4) (int_range 1 25) (int_range 0 7))

let prop_concurrent_submitters (clients, per, fail_mod) =
  let check_kind kind =
    let p = Domain_pool.create ~kind ~domains:3 () in
    Fun.protect ~finally:(fun () -> Domain_pool.shutdown p)
      (fun () ->
        let fails c i = fail_mod > 0 && (i + c) mod fail_mod = 1 in
        let client c =
          Domain.spawn (fun () ->
              (* Interleave: submit everything, then await in order. *)
              let fus =
                List.init per (fun i ->
                    Domain_pool.submit p (fun () ->
                        if fails c i then raise (Boom ((c * 1000) + i))
                        else (c * 1000) + i))
              in
              List.mapi
                (fun i fu ->
                  match Domain_pool.await fu with
                  | v -> (not (fails c i)) && v = (c * 1000) + i
                  | exception Boom b -> fails c i && b = (c * 1000) + i
                  | exception _ -> false)
                fus)
        in
        let domains = List.init clients client in
        List.for_all (fun d -> List.for_all Fun.id (Domain.join d)) domains)
  in
  check_kind Domain_pool.Work_stealing && check_kind Domain_pool.Single_queue

(* ---- the host controller ------------------------------------------------- *)

let test_controller_modes () =
  let open Host_controller in
  let units = 1_000_000 in
  let never = create ~host_cores:8 ~mode:Never ~pool_size:4 () in
  check "never: sequential" false (decide never Merge ~units).par;
  check "never: no pool wanted" false (may_parallelize never);
  let always = create ~host_cores:1 ~mode:Always ~pool_size:4 () in
  check "always: parallel whenever a pool exists" true (decide always Merge ~units:1).par;
  check "always: pool wanted" true (may_parallelize always);
  let always1 = create ~host_cores:8 ~mode:Always ~pool_size:1 () in
  check "always: sequential without a pool" false (decide always1 Merge ~units).par;
  let auto1core = create ~host_cores:1 ~mode:Auto ~pool_size:4 () in
  check "auto: sequential on a single core" false (decide auto1core Merge ~units).par;
  check "auto on one core: no pool wanted" false (may_parallelize auto1core);
  let auto = create ~host_cores:8 ~mode:Auto ~pool_size:4 () in
  check "auto: tiny jobs stay sequential" false (decide auto Merge ~units:10).par;
  check "auto multicore: pool wanted" true (may_parallelize auto)

let test_controller_learning () =
  let open Host_controller in
  let units = 1_000_000 in
  let hc = create ~host_cores:8 ~mode:Auto ~pool_size:4 () in
  (* Unknown modes are probed before any comparison: parallel first,
     then sequential. *)
  check "probe parallel first" true (decide hc Merge ~units).par;
  note hc Merge ~units ~par:true ~ns:1e7;
  check "probe sequential second" false (decide hc Merge ~units).par;
  note hc Merge ~units ~par:false ~ns:1e6;
  (* Sequential measured 10x cheaper per unit -> stays sequential. *)
  check "learned: sequential wins" false (decide hc Merge ~units).par;
  (* The winner is per stage: an unrelated stage still probes. *)
  check "stages learn independently" true (decide hc Reset ~units).par;
  (* A controller that observed parallel winning decides parallel. *)
  let hc2 = create ~host_cores:8 ~mode:Auto ~pool_size:4 () in
  note hc2 Merge ~units ~par:true ~ns:1e6;
  note hc2 Merge ~units ~par:false ~ns:1e7;
  check "learned: parallel wins" true (decide hc2 Merge ~units).par;
  (* Within the hysteresis margin (parallel < 10% faster), sequential
     keeps the tie. *)
  let hc3 = create ~host_cores:8 ~mode:Auto ~pool_size:4 () in
  note hc3 Merge ~units ~par:true ~ns:9.5e6;
  note hc3 Merge ~units ~par:false ~ns:1e7;
  check "hysteresis keeps near-ties sequential" false (decide hc3 Merge ~units).par

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ QCheck.Test.make ~count:60 ~name:"parallel extraction = sequential scan"
        worker_ops_arb prop_parallel_extraction_equals_sequential;
      QCheck.Test.make ~count:60 ~name:"early-exit scan = byte-wise oracle"
        worker_ops_arb prop_early_exit_scan_matches_bytewise;
      QCheck.Test.make ~count:60 ~name:"sharded merge = sequential = oracle"
        worker_ops_arb prop_sharded_merge_matches_oracle;
      QCheck.Test.make ~count:60 ~name:"incremental merge = rebuilt index"
        intervals_arb prop_incremental_merge_equals_rebuilt;
      QCheck.Test.make ~count:120 ~name:"pooled parallel reset = plain reset"
        big_ops_arb prop_pooled_reset_matches_plain;
      QCheck.Test.make ~count:30 ~name:"concurrent submitters: order + exceptions"
        submitters_arb prop_concurrent_submitters;
      QCheck.Test.make ~count:15 ~name:"pipeline identical across domains x pool cap"
        Test_props.body_arb prop_pipeline_identical_across_host_domains ]
  @ [ Alcotest.test_case "clean interval: zero index ops" `Quick
        test_clean_interval_no_index_work;
      Alcotest.test_case "merge states are isolated" `Quick
        test_merge_state_isolation;
      Alcotest.test_case "page pool: high-water eviction" `Quick
        test_page_pool_eviction;
      Alcotest.test_case "page pool: cap 0 disables" `Quick test_page_pool_disabled;
      Alcotest.test_case "page pool: swap only full pages" `Quick
        test_page_pool_swap_stats;
      Alcotest.test_case "page pool: fill byte validated" `Quick
        test_page_pool_fill_validation;
      Alcotest.test_case "writing interval sweeps its delta" `Quick
        test_writing_interval_sweeps_delta;
      Alcotest.test_case "violation pinned to smallest address" `Quick
        test_violation_reports_smallest_addr;
      Alcotest.test_case "live-in byte count stays exact" `Quick
        test_live_in_count_exact;
      Alcotest.test_case "pool: task ordering" `Quick test_pool_ordering;
      Alcotest.test_case "pool: exception propagation" `Quick test_pool_exception;
      Alcotest.test_case "pool: first task-order exception wins" `Quick
        test_pool_exception_order;
      Alcotest.test_case "pool: shutdown fallback" `Quick test_pool_shutdown_fallback;
      Alcotest.test_case "pool: submit/await basics" `Quick test_submit_await_basic;
      Alcotest.test_case "pool: future exception confined" `Quick
        test_submit_exception;
      Alcotest.test_case "pool: submit inline fallback" `Quick
        test_submit_inline_fallback;
      Alcotest.test_case "pool: nested run inside future" `Quick
        test_nested_run_inside_future;
      Alcotest.test_case "pool: concurrent barrier runs" `Quick
        test_concurrent_barrier_runs;
      Alcotest.test_case "pool: size validation" `Quick test_pool_size_validation;
      Alcotest.test_case "pool: shared reports requested size" `Quick
        test_shared_reports_requested_size;
      Alcotest.test_case "controller: forced modes and static gates" `Quick
        test_controller_modes;
      Alcotest.test_case "controller: probes, learns, hysteresis" `Quick
        test_controller_learning ]
