(* Eager in-flight validation: the conflict board's detection rules on
   hand-built worker machines, the squash/accounting semantics of
   `--validation eager` end to end, and the mode's contract — final
   output, result and violation verdicts byte-identical to commit-time
   validation (which stays on as the differential oracle), cycles
   identical whenever the run is violation-free. *)

open Privateer
open Privateer_machine
open Privateer_runtime
module Runtime_config = Privateer_parallel.Runtime_config

(* Plan-content assertions need the full profile, regardless of the
   PRIVATEER_PROFILERS environment the suite runs under. *)
let full_profile = { Runtime_config.default with profilers = [ "all" ] }

let check = Alcotest.(check bool)
let base = Privateer_ir.Heap.base Privateer_ir.Heap.Private

(* A two-worker board over fresh machines.  Accesses go through
   [Shadow.access] first, as in the worker hooks, so the board's
   precise confirmation sees real metadata. *)
let two_workers () =
  let b = Conflict_board.create () in
  let m0 = Machine.create () and m1 = Machine.create () in
  Conflict_board.new_cohort b [ (0, m0); (1, m1) ];
  Conflict_board.new_interval b ~interval_start:0;
  (b, m0, m1)

let touch m op ~addr ~size ~iter =
  Shadow.access m op ~addr ~size ~beta:(Shadow.timestamp ~iter ~interval_start:0)

let publish b ~worker ~op ~addr ~size ~iter = Conflict_board.publish b ~worker ~op ~addr ~size ~iter

let test_read_observes_write () =
  let b, m0, m1 = two_workers () in
  touch m0 Shadow.Write ~addr:base ~size:8 ~iter:2;
  check "writer alone: no conflict" true
    (publish b ~worker:0 ~op:Shadow.Write ~addr:base ~size:8 ~iter:2 = None);
  touch m1 Shadow.Read ~addr:base ~size:8 ~iter:5;
  match publish b ~worker:1 ~op:Shadow.Read ~addr:base ~size:8 ~iter:5 with
  | None -> Alcotest.fail "cross-worker read of a written word not confirmed"
  | Some c ->
    Alcotest.(check int) "pinned to the first conflicting byte" base
      c.Conflict_board.c_addr;
    (* earliest involved iteration: the writer's decoded timestamp (2),
       not the reading iteration (5) — recovery resumes at 3. *)
    Alcotest.(check int) "earliest violating iteration" 2
      c.Conflict_board.c_earliest_iter

let test_write_observes_read () =
  let b, m0, m1 = two_workers () in
  touch m1 Shadow.Read ~addr:(base + 16) ~size:4 ~iter:1;
  check "reader alone: no conflict" true
    (publish b ~worker:1 ~op:Shadow.Read ~addr:(base + 16) ~size:4 ~iter:1 = None);
  touch m0 Shadow.Write ~addr:(base + 16) ~size:4 ~iter:6;
  match publish b ~worker:0 ~op:Shadow.Write ~addr:(base + 16) ~size:4 ~iter:6 with
  | None -> Alcotest.fail "cross-worker write over a live-in read not confirmed"
  | Some c ->
    Alcotest.(check int) "pinned to the reader's live-in byte" (base + 16)
      c.Conflict_board.c_addr;
    (* The read-live-in code carries no iteration, so the writing
       iteration stands in as the earliest known. *)
    Alcotest.(check int) "writer's iteration stands in" 6
      c.Conflict_board.c_earliest_iter

let test_disjoint_pages_no_hit () =
  let b, m0, m1 = two_workers () in
  touch m0 Shadow.Write ~addr:base ~size:8 ~iter:0;
  ignore (publish b ~worker:0 ~op:Shadow.Write ~addr:base ~size:8 ~iter:0);
  touch m1 Shadow.Read ~addr:(base + 8192) ~size:8 ~iter:1;
  check "different pages: coarse filter suffices" true
    (publish b ~worker:1 ~op:Shadow.Read ~addr:(base + 8192) ~size:8 ~iter:1 = None);
  Alcotest.(check int) "no precise confirms ran" 0 (Conflict_board.hits b)

let test_same_worker_no_conflict () =
  let b, m0, _ = two_workers () in
  touch m0 Shadow.Write ~addr:base ~size:8 ~iter:0;
  ignore (publish b ~worker:0 ~op:Shadow.Write ~addr:base ~size:8 ~iter:0);
  (* Intra-iteration read of the worker's own write: Keep, no mark,
     and the board must not see worker 0 as its own adversary. *)
  touch m0 Shadow.Read ~addr:base ~size:8 ~iter:0;
  check "own write then own read: clean" true
    (publish b ~worker:0 ~op:Shadow.Read ~addr:base ~size:8 ~iter:0 = None)

let test_new_interval_clears_summaries () =
  let b, m0, m1 = two_workers () in
  touch m0 Shadow.Write ~addr:base ~size:8 ~iter:0;
  ignore (publish b ~worker:0 ~op:Shadow.Write ~addr:base ~size:8 ~iter:0);
  (* Interval boundary: the committed interval's summaries belong to
     the merge's carried index now.  The stale metadata is still on
     m0's pages (no reset ran here), but the coarse tables are empty,
     so the board stays quiet — detection deferred to the backstop. *)
  Conflict_board.new_interval b ~interval_start:8;
  touch m1 Shadow.Read ~addr:base ~size:8 ~iter:9;
  check "previous interval's summaries are gone" true
    (publish b ~worker:1 ~op:Shadow.Read ~addr:base ~size:8 ~iter:9 = None)

(* ---- end-to-end squash semantics -------------------------------------- *)

let clean_src =
  {|global scratch[8]; global out[60];
fn main() {
  for (k = 0; k < 60) {
    for (i = 0; i < 8) { scratch[i] = k + i; }
    out[k] = scratch[k % 8];
  }
  var s = 0;
  for (q = 0; q < 60) { s = s + out[q]; }
  print("= %d\n", s);
  return s;
}|}

let run_mode ?inject validation =
  let program = Pipeline.parse clean_src in
  let tr, _ = Pipeline.compile ~config:full_profile program in
  let config =
    { Privateer_parallel.Executor.default_config with
      workers = 4; checkpoint_period = Some 20; inject; validation }
  in
  (Pipeline.run_sequential program, Pipeline.run_parallel ~config tr)

let test_kill_at_earliest_violating_iteration () =
  (* One injected misspeculation at iteration 5 (owned by worker 1 of
     4, cyclic).  Commit mode burns the whole 20-iteration interval;
     eager mode stops the sweep at the kill, skipping workers 2 and 3
     entirely — yet both recover exactly [0, 5] and resume at 6. *)
  let inject = Some (fun iter -> iter = 5) in
  let seq, commit = run_mode ?inject Runtime_config.Commit in
  let _, eager = run_mode ?inject Runtime_config.Eager in
  Alcotest.(check string) "commit output = sequential" seq.Pipeline.seq_output
    commit.Pipeline.par_output;
  Alcotest.(check string) "eager output = sequential" seq.Pipeline.seq_output
    eager.Pipeline.par_output;
  Alcotest.(check int) "one misspeculation either way" 1
    eager.Pipeline.stats.Stats.misspeculations;
  Alcotest.(check int) "same verdict count as commit"
    commit.Pipeline.stats.Stats.misspeculations
    eager.Pipeline.stats.Stats.misspeculations;
  Alcotest.(check int) "identical recovery extent"
    commit.Pipeline.stats.Stats.recovered_iterations
    eager.Pipeline.stats.Stats.recovered_iterations;
  Alcotest.(check int) "one eager kill" 1 eager.Pipeline.stats.Stats.eager_kills;
  check "eager squashes fewer executed iterations" true
    (eager.Pipeline.stats.Stats.squashed_iterations
    < commit.Pipeline.stats.Stats.squashed_iterations);
  check "the skipped iterations are accounted" true
    (eager.Pipeline.stats.Stats.avoided_iterations > 0);
  Alcotest.(check int) "commit mode never kills early" 0
    commit.Pipeline.stats.Stats.eager_kills

let test_no_false_kill_on_clean_intervals () =
  (* Violation-free run: the board must stay silent and eager mode
     must be indistinguishable from commit mode, cycles included. *)
  let seq, commit = run_mode Runtime_config.Commit in
  let _, eager = run_mode Runtime_config.Eager in
  Alcotest.(check string) "output = sequential" seq.Pipeline.seq_output
    eager.Pipeline.par_output;
  Alcotest.(check int) "no kills" 0 eager.Pipeline.stats.Stats.eager_kills;
  Alcotest.(check int) "no misspeculations" 0
    eager.Pipeline.stats.Stats.misspeculations;
  Alcotest.(check int) "cycles identical to commit mode"
    commit.Pipeline.par_cycles eager.Pipeline.par_cycles;
  Alcotest.(check int) "wall cycles identical"
    commit.Pipeline.stats.Stats.wall_cycles eager.Pipeline.stats.Stats.wall_cycles;
  check "the board was actually consulted" true
    (eager.Pipeline.stats.Stats.eager_checks > 0)

(* ---- qcheck: eager = commit across the identity matrix ----------------- *)

(* Generated programs (Test_props templates) through both validation
   modes at several (host_domains, merge_shards) cells.  Output and
   result must always match; on violation-free runs (the generator's
   selected loops are clean — dependence-carrying bodies are rejected
   at selection) cycles and checkpoints must match too, and eager must
   report zero kills. *)
let prop_eager_equals_commit tmpls =
  let src = Test_props.program_of_templates tmpls in
  let program = Pipeline.parse src in
  let tr, _ = Pipeline.compile ~config:full_profile program in
  List.for_all
    (fun (host_domains, merge_shards) ->
      let run validation =
        let config =
          Runtime_config.make ~workers:5 ~host_domains ~merge_shards ~validation ()
        in
        Pipeline.run_parallel ~config tr
      in
      let commit = run Runtime_config.Commit in
      let eager = run Runtime_config.Eager in
      String.equal commit.Pipeline.par_output eager.Pipeline.par_output
      && Privateer_interp.Value.equal commit.Pipeline.par_result
           eager.Pipeline.par_result
      && commit.Pipeline.stats.Stats.misspeculations
         = eager.Pipeline.stats.Stats.misspeculations
      && (commit.Pipeline.stats.Stats.misspeculations > 0
         || commit.Pipeline.par_cycles = eager.Pipeline.par_cycles
            && commit.Pipeline.stats.Stats.checkpoints
               = eager.Pipeline.stats.Stats.checkpoints
            && eager.Pipeline.stats.Stats.eager_kills = 0))
    [ (1, 1); (3, 4) ]

(* Under injected misspeculation cycles legitimately diverge, but the
   observable behaviour (and the sequential oracle) must not. *)
let prop_eager_equals_commit_with_misspec tmpls =
  let src = Test_props.program_of_templates tmpls in
  let program = Pipeline.parse src in
  let tr, _ = Pipeline.compile ~config:full_profile program in
  let seq = Pipeline.run_sequential program in
  let run validation =
    let config =
      Runtime_config.make ~workers:3
        ~inject:(Some (fun iter -> iter mod 11 = 7))
        ~validation ()
    in
    Pipeline.run_parallel ~config tr
  in
  let commit = run Runtime_config.Commit in
  let eager = run Runtime_config.Eager in
  String.equal seq.Pipeline.seq_output commit.Pipeline.par_output
  && String.equal seq.Pipeline.seq_output eager.Pipeline.par_output
  && Privateer_interp.Value.equal commit.Pipeline.par_result
       eager.Pipeline.par_result
  && eager.Pipeline.stats.Stats.squashed_iterations
     <= commit.Pipeline.stats.Stats.squashed_iterations

let suite =
  [ Alcotest.test_case "board: read observes earlier write" `Quick
      test_read_observes_write;
    Alcotest.test_case "board: write observes live-in read" `Quick
      test_write_observes_read;
    Alcotest.test_case "board: disjoint pages never confirm" `Quick
      test_disjoint_pages_no_hit;
    Alcotest.test_case "board: a worker is not its own adversary" `Quick
      test_same_worker_no_conflict;
    Alcotest.test_case "board: interval boundary clears summaries" `Quick
      test_new_interval_clears_summaries;
    Alcotest.test_case "kill at earliest violating iteration" `Quick
      test_kill_at_earliest_violating_iteration;
    Alcotest.test_case "no false kill on clean intervals" `Quick
      test_no_false_kill_on_clean_intervals ]
  @ List.map QCheck_alcotest.to_alcotest
      [ QCheck.Test.make ~count:40 ~name:"eager = commit across host cells"
          Test_props.body_arb prop_eager_equals_commit;
        QCheck.Test.make ~count:25 ~name:"eager = commit + oracle under misspec"
          Test_props.body_arb prop_eager_equals_commit_with_misspec ]
