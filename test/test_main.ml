let () =
  Alcotest.run "privateer"
    [ ("support", Test_support.suite);
      ("machine", Test_machine.suite);
      ("ir", Test_ir.suite);
      ("interp", Test_interp.suite);
      ("lang", Test_lang.suite);
      ("profiler", Test_profiler.suite);
      ("analysis", Test_analysis.suite);
      ("transform", Test_transform.suite);
      ("runtime", Test_runtime.suite);
      ("executor", Test_executor.suite);
      ("speculation", Test_speculation.suite);
      ("host-parallel", Test_host_parallel.suite);
      ("baselines", Test_baselines.suite);
      ("workloads", Test_workloads.suite);
      ("properties", Test_props.suite);
      ("eager", Test_eager.suite);
      ("server", Test_server.suite);
      ("gen", Test_gen.suite) ]
