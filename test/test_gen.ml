(* The scenario generator (lib/gen): spec grammar, determinism, the
   expected-classification oracle, the planted-conflict misspeculation
   oracle, and the qcheck fuzzer the corpus doubles as.

   The fuzz property is the generator's reason to exist: for random
   knobs, the generated program's parallel run must reproduce the
   sequential output byte-for-byte — at one worker (where the planted
   misspeculation count is exact), at several workers over >= 4 host
   cells, and under both validation modes (eager = commit on clean
   scenarios; both = sequential on conflicted ones).  GEN_FUZZ_COUNT
   scales the case count (default 25). *)

open Privateer
module Scenario_gen = Privateer_gen.Scenario_gen
module Sources = Privateer_gen.Sources
module Workload = Privateer_workloads.Workload
module Workloads = Privateer_workloads.Workloads

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fuzz_count =
  match Sys.getenv_opt "GEN_FUZZ_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 25)
  | None -> 25

let contains s frag =
  let ls = String.length s and lf = String.length frag in
  let rec go i = i + lf <= ls && (String.equal (String.sub s i lf) frag || go (i + 1)) in
  go 0

(* ---- spec grammar ------------------------------------------------------- *)

let test_spec_roundtrip () =
  let k =
    { Scenario_gen.default_knobs with
      Scenario_gen.k_seed = 42; k_loops = 3; k_trip = 48; k_misspec = 0.1 }
  in
  match Scenario_gen.knobs_of_spec (Scenario_gen.spec_of_knobs k) with
  | Ok k' -> check "canonical spec round-trips" true (k = k')
  | Error m -> Alcotest.fail m

let test_spec_errors () =
  let bad spec frag =
    match Scenario_gen.knobs_of_spec spec with
    | Ok _ -> Alcotest.fail (Printf.sprintf "spec %S accepted" spec)
    | Error m ->
      check (Printf.sprintf "%S -> %s" spec frag) true (contains m frag)
  in
  bad "" "empty scenario spec";
  bad "trip" "want key=value";
  bad "trip=banana" "expected an integer";
  bad "redux=x" "expected a number";
  bad "zap=1" "unknown scenario knob";
  bad "loops=99" "loops must be in 1..8";
  bad "trip=4" "trip must be in 8..65536";
  bad "misspec=0.5" "misspec must be 0 or in [0.01, 0.2]";
  bad "misspec=0.001" "misspec must be 0 or in [0.01, 0.2]"

let test_deterministic () =
  let k = { Scenario_gen.default_knobs with Scenario_gen.k_seed = 7; k_misspec = 0.1 } in
  let a = Scenario_gen.generate k and b = Scenario_gen.generate k in
  check "same knobs, same source" true
    (String.equal a.Scenario_gen.sc_source b.Scenario_gen.sc_source);
  check "same knobs, same name" true
    (String.equal a.Scenario_gen.sc_name b.Scenario_gen.sc_name);
  let c = Scenario_gen.generate { k with Scenario_gen.k_seed = 8 } in
  check "different seed, different source" false
    (String.equal a.Scenario_gen.sc_source c.Scenario_gen.sc_source)

(* ---- registry integration ----------------------------------------------- *)

let test_workload_of_spec () =
  (match Scenario_gen.workload_of_spec "seed=901,trip=24" with
  | Error m -> Alcotest.fail m
  | Ok wl ->
    check "registered under canonical name" true (Workloads.find wl.Workload.name <> None);
    (match Scenario_gen.workload_of_spec "seed=901,trip=24" with
    | Ok wl' -> check "second resolution is cached" true (wl == wl')
    | Error m -> Alcotest.fail m));
  match Sources.parse "scenario:seed=901,trip=banana" with
  | Ok _ -> Alcotest.fail "bad scenario spec accepted by source loader"
  | Error m -> check "loader surfaces the knob error" true (contains m "expected an integer")

(* ---- classification oracle ---------------------------------------------- *)

(* Plan-content assertions need the full profile, regardless of the
   PRIVATEER_PROFILERS environment the suite runs under. *)
let full_profile =
  { Privateer_parallel.Runtime_config.default with profilers = [ "all" ] }

let compile_scenario (t : Scenario_gen.t) =
  let wl = t.Scenario_gen.sc_workload in
  let program = Workload.program wl in
  let tr, _ =
    Pipeline.compile ~config:full_profile ~setup:(Workload.setup wl Workload.Train)
      program
  in
  (wl, program, tr)

let assigned_heap (tr : Privateer_transform.Transform.result) name =
  let obj = Privateer_profile.Objname.Global name in
  List.find_map
    (fun (p : Privateer_analysis.Selection.plan) ->
      Privateer_analysis.Classify.heap_of p.assignment obj)
    tr.selection.plans

let test_expected_classification () =
  let t =
    Scenario_gen.generate
      { Scenario_gen.default_knobs with
        Scenario_gen.k_seed = 5; k_loops = 2; k_misspec = 0.1; k_redux = 1.0 }
  in
  let _, _, tr = compile_scenario t in
  let e = t.Scenario_gen.sc_expect in
  check "enough hot loops selected" true
    (List.length tr.selection.plans >= e.Scenario_gen.x_hot_loops);
  let expect_heap names h label =
    List.iter
      (fun name ->
        match assigned_heap tr name with
        | Some h' ->
          check (Printf.sprintf "%s -> %s heap" name label) true
            (Privateer_ir.Heap.equal_kind h h')
        | None -> Alcotest.fail (Printf.sprintf "%s not assigned anywhere" name))
      names
  in
  expect_heap e.Scenario_gen.x_private Privateer_ir.Heap.Private "private";
  expect_heap e.Scenario_gen.x_redux Privateer_ir.Heap.Redux "redux"

(* ---- planted-conflict oracle -------------------------------------------- *)

let run_scenario ?(workers = 1) ?(host_domains = 1) ?(merge_shards = 8)
    ?(validation = Privateer_parallel.Runtime_config.Commit) (t : Scenario_gen.t) input =
  let wl, program, tr = compile_scenario t in
  let setup = Workload.setup wl input in
  let seq = Pipeline.run_sequential ~setup program in
  let par =
    Pipeline.run_parallel ~setup
      ~config:
        { Privateer_parallel.Executor.default_config with
          workers; host_domains; merge_shards; validation }
      tr
  in
  (seq, par)

let test_misspec_oracle () =
  List.iter
    (fun (seed, trip, misspec) ->
      let t =
        Scenario_gen.generate
          { Scenario_gen.default_knobs with Scenario_gen.k_seed = seed;
            k_trip = trip; k_misspec = misspec }
      in
      let seq, par = run_scenario ~workers:1 t Workload.Ref in
      let n = trip in
      let expected = Scenario_gen.expected_misspecs t ~n in
      check "one-worker output identical" true
        (String.equal par.Pipeline.par_output seq.Pipeline.seq_output);
      check_int
        (Printf.sprintf "seed=%d trip=%d misspec=%g: exact count" seed trip misspec)
        expected par.Pipeline.stats.Privateer_runtime.Stats.misspeculations;
      (* Realized per-loop rate tracks the knob (docs/SCENARIOS.md:
         the period is round(1/misspec) clamped to >= 5, so the rate
         is faithful up to clamping and trip-count discretization). *)
      let loops = t.Scenario_gen.sc_knobs.Scenario_gen.k_loops in
      let rate = float_of_int expected /. float_of_int (loops * n) in
      check
        (Printf.sprintf "realized rate %.3f within [x0.5, x2] of %.3f" rate misspec)
        true
        (rate >= (misspec /. 2.0) -. 0.001 && rate <= (misspec *. 2.0) +. 0.001))
    [ (1, 64, 0.1); (2, 48, 0.05); (3, 40, 0.2); (9, 64, 0.15) ]

(* ---- fuzz --------------------------------------------------------------- *)

let knob_gen =
  QCheck.Gen.(
    let* seed = int_bound 999_999 in
    let* loops = 1 -- 2 in
    let* trip = map (fun i -> 24 + (8 * i)) (int_bound 5) in
    let* heap = map (fun i -> 16 * (1 + i)) (int_bound 7) in
    let* reuse = 1 -- 6 in
    let* redux = oneofl [ 0.0; 0.25; 0.5; 0.75; 1.0 ] in
    let+ misspec = oneofl [ 0.0; 0.0; 0.05; 0.1; 0.15 ] in
    { Scenario_gen.k_seed = seed; k_loops = loops; k_trip = trip; k_heap = heap;
      k_reuse = reuse; k_redux = redux; k_misspec = misspec })

let knob_arb =
  QCheck.make ~print:Scenario_gen.spec_of_knobs knob_gen

let fuzz_identity =
  QCheck.Test.make ~name:"fuzz: seq = par, eager = commit, oracle exact" ~count:fuzz_count
    knob_arb (fun knobs ->
      let t = Scenario_gen.generate knobs in
      let open Pipeline in
      (* One worker: exact misspeculation oracle. *)
      let seq, par1 = run_scenario ~workers:1 t Workload.Ref in
      let n = knobs.Scenario_gen.k_trip in
      let expected = Scenario_gen.expected_misspecs t ~n in
      let ok1 =
        String.equal par1.par_output seq.seq_output
        && par1.par_result = seq.seq_result
        && par1.stats.Privateer_runtime.Stats.misspeculations = expected
      in
      (* >= 4 host cells at 4 workers, both validation modes. *)
      let cells =
        List.map
          (fun (domains, shards, validation) ->
            snd
              (run_scenario ~workers:4 ~host_domains:domains ~merge_shards:shards
                 ~validation t Workload.Ref))
          [ (1, 1, Privateer_parallel.Runtime_config.Commit);
            (4, 8, Privateer_parallel.Runtime_config.Commit);
            (1, 1, Privateer_parallel.Runtime_config.Eager);
            (4, 8, Privateer_parallel.Runtime_config.Eager) ]
      in
      let outputs_ok =
        List.for_all
          (fun (par : par_run) ->
            String.equal par.par_output seq.seq_output
            && par.par_result = seq.seq_result
            && par.stats.Privateer_runtime.Stats.misspeculations <= expected)
          cells
      in
      (* Clean scenarios: eager is indistinguishable from commit and
         host cells are cycle-identical. *)
      let clean_ok =
        knobs.Scenario_gen.k_misspec > 0.0
        ||
        match cells with
        | first :: rest ->
          List.for_all
            (fun (par : par_run) ->
              par.par_cycles = first.par_cycles
              && par.stats.Privateer_runtime.Stats.checkpoints
                 = first.stats.Privateer_runtime.Stats.checkpoints
              && String.equal par.par_output first.par_output)
            rest
          && first.stats.Privateer_runtime.Stats.misspeculations = 0
        | [] -> false
      in
      if not (ok1 && outputs_ok && clean_ok) then
        QCheck.Test.fail_reportf
          "scenario %s: one-worker %b (misspecs %d vs expected %d), cells %b, clean %b"
          (Scenario_gen.spec_of_knobs knobs)
          ok1 par1.stats.Privateer_runtime.Stats.misspeculations expected
          outputs_ok clean_ok;
      true)

let suite =
  List.map QCheck_alcotest.to_alcotest [ fuzz_identity ]
  @ [ Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
      Alcotest.test_case "spec errors" `Quick test_spec_errors;
      Alcotest.test_case "generation is deterministic" `Quick test_deterministic;
      Alcotest.test_case "workload_of_spec registers and caches" `Quick
        test_workload_of_spec;
      Alcotest.test_case "expected classification holds" `Quick
        test_expected_classification;
      Alcotest.test_case "misspeculation oracle exact at one worker" `Quick
        test_misspec_oracle ]
