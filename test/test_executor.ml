(* Integration tests for the speculative DOALL executor (paper
   section 5): privatized parallel execution must be observationally
   equivalent to sequential execution, under all worker counts,
   checkpoint periods, and injected misspeculation. *)

open Privateer

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Plan-content assertions need the full profile, regardless of the
   PRIVATEER_PROFILERS environment the suite runs under. *)
let full_profile =
  { Privateer_parallel.Runtime_config.default with profilers = [ "all" ] }

let compile src = Pipeline.compile ~config:full_profile (Pipeline.parse src)

let config ?(workers = 4) ?checkpoint_period ?inject ?(schedule = Privateer_parallel.Schedule.Cyclic)
    ?(adaptive = false) ?throttle ?(serial_commit = false) () =
  { Privateer_parallel.Executor.default_config with
    workers; checkpoint_period; inject; schedule; adaptive_period = adaptive;
    throttle; serial_commit }

(* Run both versions; assert byte-identical output and equal result. *)
let assert_equivalent ?workers ?checkpoint_period ?inject ?schedule ?adaptive
    ?throttle ?serial_commit src =
  let program = Pipeline.parse src in
  let tr, _ = Pipeline.compile ~config:full_profile program in
  check "a loop was planned" true (tr.selection.plans <> []);
  let seq = Pipeline.run_sequential program in
  let par =
    Pipeline.run_parallel
      ~config:
        (config ?workers ?checkpoint_period ?inject ?schedule ?adaptive ?throttle
           ?serial_commit ())
      tr
  in
  Alcotest.(check string) "outputs equal" seq.seq_output par.par_output;
  check "results equal" true
    (Privateer_interp.Value.equal seq.seq_result par.par_result);
  (seq, par)

let private_src =
  {|global scratch[16]; global out[100];
fn main() {
  for (k = 0; k < 100) {
    for (i = 0; i < 16) { scratch[i] = k * i; }
    var s = 0;
    for (j = 0; j < 16) { s = s + scratch[j]; }
    out[k] = s;
  }
  var total = 0;
  for (q = 0; q < 100) { total = total + out[q]; }
  print("total %d\n", total);
  return total;
}|}

let test_privatization_equivalence () = ignore (assert_equivalent private_src)

let test_worker_counts () =
  List.iter
    (fun workers -> ignore (assert_equivalent ~workers private_src))
    [ 1; 2; 3; 7; 24; 64 ]

let test_checkpoint_periods () =
  List.iter
    (fun k -> ignore (assert_equivalent ~checkpoint_period:k private_src))
    [ 1; 2; 13; 100; 253 ]

(* A loop heavy enough that parallelization must pay off despite
   spawn and validation overheads. *)
let heavy_src =
  {|global scratch[128]; global out[100];
fn main() {
  for (k = 0; k < 100) {
    for (i = 0; i < 128) { scratch[i] = k * i + (i & 15); }
    var s = 0;
    for (j = 0; j < 128) { s = s + scratch[j]; }
    out[k] = s;
  }
  var total = 0;
  for (q = 0; q < 100) { total = total + out[q]; }
  print("total %d\n", total);
  return total;
}|}

let test_speedup_positive () =
  let seq, par = assert_equivalent ~workers:16 heavy_src in
  check "parallel is faster" true (par.par_cycles < seq.seq_cycles);
  check "meaningfully faster (>3x)" true
    (float_of_int seq.seq_cycles /. float_of_int par.par_cycles > 3.0);
  check_int "one invocation" 1 par.stats.invocations;
  check "checkpoints happened" true (par.stats.checkpoints > 0)

let test_short_lived_equivalence () =
  ignore
    (assert_equivalent
       {|global out[50];
fn main() {
  for (k = 0; k < 50) {
    var node = malloc(2);
    node[0] = k;
    node[1] = k * k;
    out[k] = node[0] + node[1];
    free(node);
  }
  var s = 0;
  for (q = 0; q < 50) { s = s + out[q]; }
  return s;
}|})

let test_memory_reduction_equivalence () =
  (* Integer reductions are exact under reassociation. *)
  let _, par =
    assert_equivalent
      {|global total; global data[64];
fn main() {
  for (j = 0; j < 64) { data[j] = j * 7; }
  total = 0;
  for (i = 0; i < 64) { total = total + data[i]; }
  print("%d\n", total);
  return total;
}|}
  in
  check "redux ran in parallel" true (par.stats.invocations = 1)

let test_register_reduction_equivalence () =
  ignore
    (assert_equivalent
       {|global data[64];
fn main() {
  for (j = 0; j < 64) { data[j] = j; }
  var s = 0;
  for (i = 0; i < 64) { s = s + data[i] * data[i]; }
  print("%d\n", s);
  return s;
}|})

let test_deferred_io_order () =
  let _, par =
    assert_equivalent
      {|global scratch[4];
fn main() {
  for (k = 0; k < 37) {
    scratch[0] = k * 3;
    print("iter %d -> %d\n", k, scratch[0]);
  }
  return 0;
}|}
  in
  (* I/O must appear in iteration order despite parallel execution. *)
  check "some output" true (String.length par.par_output > 0)

let test_value_prediction_end_to_end () =
  (* The dijkstra handoff: flag returns to 0 every iteration. *)
  let src =
    {|global flag; global out[60];
fn main() {
  flag = 0;
  for (i = 0; i < 60) {
    out[i] = flag + i;
    flag = 7;
    flag = 0;
  }
  var s = 0;
  for (q = 0; q < 60) { s = s + out[q]; }
  return s;
}|}
  in
  let tr, _ = compile src in
  check "prediction planned" true
    (List.exists
       (fun (l : Privateer_transform.Manifest.loop_spec) -> l.predictions <> [])
       tr.manifest.loops);
  let _, par = assert_equivalent src in
  check "no misspeculation" true (par.stats.misspeculations = 0)

let test_preheader_fallback () =
  (* If the live-in value does not match the prediction, the
     invocation must fall back to sequential execution and still be
     correct. *)
  let src =
    {|global flag; global out[60]; global mode;
fn main() {
  flag = mode;     // 9 => prediction (trained with 0... ) fails at entry
  for (i = 0; i < 60) {
    out[i] = flag + i;
    flag = 7;
    flag = 0;
  }
  return out[3];
}|}
  in
  let program = Pipeline.parse src in
  (* Train with mode=0 so the profiler predicts flag==0. *)
  let tr, _ =
    Pipeline.compile ~config:full_profile
      ~setup:(fun st -> Pipeline.set_global st "mode" 0)
      program
  in
  check "prediction exists" true
    (List.exists
       (fun (l : Privateer_transform.Manifest.loop_spec) -> l.predictions <> [])
       tr.manifest.loops);
  (* Run with mode=9: live-in differs from the prediction. *)
  let setup st = Pipeline.set_global st "mode" 9 in
  let seq = Pipeline.run_sequential ~setup program in
  let par = Pipeline.run_parallel ~setup ~config:(config ()) tr in
  check "fell back to sequential" true (par.fallbacks = 1);
  check "still correct" true (Privateer_interp.Value.equal seq.seq_result par.par_result)

let test_induction_var_final_value () =
  let _, _ =
    assert_equivalent
      {|global out[20];
fn main() {
  for (i = 0; i < 20) { out[i] = i; }
  return i;   // must be 20, as after sequential execution
}|}
  in
  ()

let test_live_out_private_register () =
  ignore
    (assert_equivalent
       {|global out[30];
fn main() {
  var last = 0 - 1;
  for (i = 0; i < 30) {
    last = i * 2;
    out[i] = last;
  }
  return last;   // value from the final iteration
}|})

let test_zero_iteration_loop () =
  ignore
    (assert_equivalent
       {|global scratch[4]; global out[10]; global n;
fn main() {
  for (k = 0; k < n) {     // n = 0: loop never runs
    scratch[0] = k;
    out[k] = scratch[0];
  }
  for (w = 0; w < 10) { out[w] = out[w] + 1; }
  return k;
}|})

let test_injected_misspec_recovers () =
  List.iter
    (fun inject_every ->
      let inject iter = iter mod inject_every = inject_every - 1 in
      let seq, par = assert_equivalent ~inject private_src in
      ignore seq;
      check "misspeculations occurred" true (par.stats.misspeculations > 0);
      check "iterations were recovered" true (par.stats.recovered_iterations > 0))
    [ 10; 25; 97 ]

let test_injected_misspec_with_io () =
  let src =
    {|global scratch[4];
fn main() {
  for (k = 0; k < 40) {
    scratch[0] = k;
    print("k=%d\n", k);
  }
  return 0;
}|}
  in
  let inject iter = iter mod 7 = 6 in
  let _, par = assert_equivalent ~inject src in
  (* Output of squashed iterations must not be duplicated or lost. *)
  check_int "40 lines exactly" 40
    (List.length (List.filter (fun l -> l <> "") (String.split_on_char '\n' par.par_output)))

let test_injected_misspec_with_reductions () =
  let src =
    {|global total; global data[64];
fn main() {
  for (j = 0; j < 64) { data[j] = j; }
  total = 0;
  for (i = 0; i < 64) { total = total + data[i]; }
  return total;
}|}
  in
  let inject iter = iter = 13 || iter = 50 in
  let _, par = assert_equivalent ~inject src in
  check "recovered" true (par.stats.misspeculations > 0)

let test_stats_private_bytes () =
  let _, par = assert_equivalent ~workers:2 private_src in
  check "private reads counted" true (par.stats.private_bytes_read > 0);
  check "private writes counted" true (par.stats.private_bytes_written > 0);
  let b = Privateer_runtime.Stats.breakdown par.stats in
  let total =
    b.useful +. b.private_read +. b.private_write +. b.checkpoint +. b.spawn_join
    +. b.other
  in
  Alcotest.(check (float 0.5)) "breakdown sums to 100%" 100.0 total

let test_wrong_prediction_at_runtime_recovers () =
  (* Trained to predict flag==0, but iteration 31 leaves flag=1: the
     end-of-iteration check must misspeculate and recovery must
     reproduce sequential semantics. *)
  let src =
    {|global flag; global out[60];
fn main() {
  flag = 0;
  for (i = 0; i < 60) {
    out[i] = flag + i;
    flag = 7;
    if (i == 31) { flag = 1; } else { flag = 0; }
  }
  var s = 0;
  for (q = 0; q < 60) { s = s + out[q]; }
  return s;
}|}
  in
  (* Note: training runs the same input, so i==31 is profiled and the
     branch is mixed; but the dep value profile sees both 0 and 1 ->
     no prediction for flag... unless only address constant. To force
     the scenario, train on a modified input is not possible here, so
     accept either outcome: if a plan exists, execution must still be
     equivalent. *)
  let program = Pipeline.parse src in
  let tr, _ = Pipeline.compile ~config:full_profile program in
  match tr.selection.plans with
  | [] -> () (* classified unrestricted: also acceptable (dep value varies) *)
  | _ ->
    let seq = Pipeline.run_sequential program in
    let par = Pipeline.run_parallel ~config:(config ()) tr in
    check "equivalent" true (String.equal seq.seq_output par.par_output)

(* ---- schedule policies ------------------------------------------------ *)

let all_schedules =
  [ Privateer_parallel.Schedule.Cyclic; Privateer_parallel.Schedule.Blocked;
    Privateer_parallel.Schedule.Chunked 1; Privateer_parallel.Schedule.Chunked 3;
    Privateer_parallel.Schedule.Chunked 16 ]

let test_schedule_equivalence () =
  (* The committed state must be schedule-independent: every policy
     reproduces the sequential run on every source shape. *)
  List.iter
    (fun schedule ->
      ignore (assert_equivalent ~schedule private_src);
      ignore (assert_equivalent ~schedule ~workers:7 heavy_src);
      ignore
        (assert_equivalent ~schedule
           {|global total; global data[64];
fn main() {
  for (j = 0; j < 64) { data[j] = j * 3; }
  total = 0;
  for (i = 0; i < 64) { total = total + data[i]; }
  print("%d\n", total);
  return total;
}|}))
    all_schedules

let test_schedule_equivalence_under_misspec () =
  List.iter
    (fun schedule ->
      let inject iter = iter mod 13 = 12 in
      let _, par = assert_equivalent ~schedule ~inject private_src in
      check "misspeculations occurred" true (par.stats.misspeculations > 0))
    all_schedules

let test_schedule_io_order () =
  (* Deferred output must commit in iteration order under every
     assignment policy. *)
  let src =
    {|global scratch[4];
fn main() {
  for (k = 0; k < 37) {
    scratch[0] = k * 3;
    print("iter %d -> %d\n", k, scratch[0]);
  }
  return 0;
}|}
  in
  List.iter (fun schedule -> ignore (assert_equivalent ~schedule src)) all_schedules

let test_schedule_of_string () =
  let open Privateer_parallel.Schedule in
  List.iter
    (fun s -> Alcotest.(check (option string)) "round-trip" (Some (to_string s))
        (Option.map to_string (of_string (to_string s))))
    all_schedules;
  check "bad policy rejected" true (of_string "zigzag" = None);
  check "bad chunk rejected" true (of_string "chunked:0" = None)

(* ---- config validation ------------------------------------------------ *)

let test_config_validation () =
  let tr, _ = compile private_src in
  let raises cfg =
    match Privateer_parallel.Executor.create tr.manifest cfg with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check "workers = 0 rejected" true (raises (config ~workers:0 ()));
  check "workers < 0 rejected" true (raises (config ~workers:(-3) ()));
  check "checkpoint_period = 0 rejected" true (raises (config ~checkpoint_period:0 ()));
  check "checkpoint_period < 0 rejected" true
    (raises (config ~checkpoint_period:(-1) ()));
  check "throttle = 0 rejected" true (raises (config ~throttle:0 ()));
  check "chunk size 0 rejected" true
    (raises (config ~schedule:(Privateer_parallel.Schedule.Chunked 0) ()));
  check "valid config accepted" false (raises (config ()))

(* ---- recovery edge cases ---------------------------------------------- *)

let test_misspec_on_iteration_zero () =
  (* Misspeculation on the very first iteration: recovery re-executes
     exactly iteration 0 and speculation resumes at 1. *)
  let inject iter = iter = 0 in
  let _, par = assert_equivalent ~checkpoint_period:10 ~inject private_src in
  check_int "one misspeculation" 1 par.stats.misspeculations;
  check_int "exactly iteration 0 recovered" 1 par.stats.recovered_iterations

let test_misspec_on_interval_last_iteration () =
  (* Misspeculation on an interval's last iteration squashes and
     re-executes the whole interval: k iterations. *)
  let k = 10 in
  let inject iter = iter = k - 1 in
  let _, par = assert_equivalent ~checkpoint_period:k ~inject private_src in
  check_int "one misspeculation" 1 par.stats.misspeculations;
  check_int "the whole interval recovered" k par.stats.recovered_iterations

let test_misspec_on_loop_last_iteration () =
  (* private_src has 100 iterations; with k=10 the last interval is
     [90, 100) and a misspec at 99 recovers all 10 of them. *)
  let inject iter = iter = 99 in
  let _, par = assert_equivalent ~checkpoint_period:10 ~inject private_src in
  check_int "one misspeculation" 1 par.stats.misspeculations;
  check_int "last interval recovered" 10 par.stats.recovered_iterations

let test_misspec_under_serial_commit () =
  List.iter
    (fun inject_every ->
      let inject iter = iter mod inject_every = inject_every - 1 in
      let _, par =
        assert_equivalent ~serial_commit:true ~checkpoint_period:10 ~inject private_src
      in
      check "misspeculations occurred" true (par.stats.misspeculations > 0))
    [ 10; 25 ];
  (* Injection at interval boundaries under serial commit, with I/O. *)
  let src =
    {|global scratch[4];
fn main() {
  for (k = 0; k < 40) {
    scratch[0] = k;
    print("k=%d\n", k);
  }
  return 0;
}|}
  in
  let inject iter = iter = 9 || iter = 10 in
  ignore (assert_equivalent ~serial_commit:true ~checkpoint_period:10 ~inject src)

(* ---- adaptive checkpoint period --------------------------------------- *)

let test_adaptive_period_equivalence () =
  List.iter
    (fun inject_every ->
      let inject iter = iter mod inject_every = inject_every - 1 in
      ignore (assert_equivalent ~adaptive:true ~inject private_src))
    [ 5; 10; 33 ]

let test_adaptive_period_clean_run_identical () =
  (* Without misspeculation the adaptive controller never moves, so
     the run is cycle-identical to the fixed-period one. *)
  let _, fixed = assert_equivalent private_src in
  let _, adaptive = assert_equivalent ~adaptive:true private_src in
  check_int "same wall cycles" fixed.stats.wall_cycles adaptive.stats.wall_cycles;
  check_int "same checkpoints" fixed.stats.checkpoints adaptive.stats.checkpoints

let test_adaptive_period_cuts_recovery () =
  (* Under clustered misspeculation the shrunken intervals bound each
     recovery's sequential re-execution: checkpoint + recovery cycles
     must drop versus the fixed period at equal output.  heavy_src has
     iterations expensive enough that re-execution dominates the extra
     checkpoints the shorter intervals cost. *)
  let inject iter = iter mod 8 = 7 in
  let _, fixed = assert_equivalent ~checkpoint_period:32 ~inject heavy_src in
  let _, adaptive =
    assert_equivalent ~checkpoint_period:32 ~adaptive:true ~inject heavy_src
  in
  let cost (p : Pipeline.par_run) = p.stats.cyc_checkpoint + p.stats.cyc_recovery in
  check "misspecs in both" true
    (fixed.stats.misspeculations > 0 && adaptive.stats.misspeculations > 0);
  check
    (Printf.sprintf "adaptive %d < fixed %d" (cost adaptive) (cost fixed))
    true
    (cost adaptive < cost fixed)

(* ---- misspeculation throttle ------------------------------------------ *)

let throttle_src =
  (* The selected loop lives in [work]; main invokes it three times,
     so suspension must carry across invocations. *)
  {|global scratch[16]; global out[100];
fn work() {
  for (k = 0; k < 100) {
    for (i = 0; i < 16) { scratch[i] = k * i; }
    var s = 0;
    for (j = 0; j < 16) { s = s + scratch[j]; }
    out[k] = out[k] + s;
  }
}
fn main() {
  work();
  work();
  work();
  var total = 0;
  for (q = 0; q < 100) { total = total + out[q]; }
  print("total %d\n", total);
  return total;
}|}

let test_throttle_demotes_and_suspends () =
  let inject iter = iter mod 5 = 4 in
  let _, par = assert_equivalent ~throttle:3 ~inject throttle_src in
  check_int "three invocations" 3 par.stats.invocations;
  (* The throttle caps the first invocation at 3 misspeculations and
     the suspension silences the other two invocations entirely. *)
  check_int "misspeculations capped by the throttle" 3 par.stats.misspeculations;
  match Pipeline.loop_report par with
  | [ (_, ls) ] ->
    check_int "demoted once" 1 ls.l_demotions;
    check_int "two suspended invocations" 2 ls.l_suspended_invocations;
    check_int "per-loop invocations" 3 ls.l_invocations;
    check_int "per-loop misspecs" 3 ls.l_misspeculations
  | other ->
    Alcotest.failf "expected exactly one loop entry, got %d" (List.length other)

let test_throttle_off_keeps_speculating () =
  let inject iter = iter mod 5 = 4 in
  let _, par = assert_equivalent ~inject throttle_src in
  check "far more misspeculations without the throttle" true
    (par.stats.misspeculations > 3);
  List.iter
    (fun (_, (ls : Privateer_runtime.Stats.loop_stats)) ->
      check_int "no demotions" 0 ls.l_demotions;
      check_int "no suspensions" 0 ls.l_suspended_invocations)
    (Pipeline.loop_report par)

let test_reenable_loop () =
  (* After re-enabling, the loop speculates again. *)
  let program = Pipeline.parse throttle_src in
  let tr, _ = Pipeline.compile ~config:full_profile program in
  let inject iter = iter mod 5 = 4 in
  let cfg = config ~throttle:2 ~inject () in
  let st = Privateer_interp.Interp.create ~cost:cfg.costs.base tr.program in
  let ex = Privateer_parallel.Executor.create tr.manifest cfg in
  Privateer_parallel.Executor.install ex st;
  ignore (Privateer_interp.Interp.run_entry st);
  let loop, ls =
    match Privateer_runtime.Stats.loop_table ex.stats with
    | [ (loop, ls) ] -> (loop, ls)
    | _ -> Alcotest.fail "expected one loop"
  in
  check "suspended after the run" true (ls.l_suspended_invocations > 0);
  Privateer_parallel.Executor.reenable_loop ex loop;
  let st2 = Privateer_interp.Interp.create ~cost:cfg.costs.base tr.program in
  Privateer_parallel.Executor.install ex st2;
  ignore (Privateer_interp.Interp.run_entry st2);
  check "speculated again after re-enable" true
    (ls.l_demotions >= 2 || ls.l_misspeculations >= 4)

(* ---- per-loop stats table --------------------------------------------- *)

let test_loop_report_totals () =
  let _, par = assert_equivalent ~workers:8 private_src in
  let report = Pipeline.loop_report par in
  check "one selected loop" true (List.length report = 1);
  let _, ls = List.hd report in
  check_int "loop invocations = global" par.stats.invocations ls.l_invocations;
  check_int "loop wall cycles = global" par.stats.wall_cycles ls.l_wall_cycles;
  check_int "no demotions on a clean run" 0 ls.l_demotions

(* ---- preheader fallback induction variable ---------------------------- *)

let test_fallback_induction_final_value () =
  (* A failed preheader must still leave the induction variable at its
     sequential final value. *)
  let src =
    {|global flag; global out[60]; global mode;
fn main() {
  flag = mode;
  for (i = 0; i < 60) {
    out[i] = flag + i;
    flag = 7;
    flag = 0;
  }
  return i;
}|}
  in
  let program = Pipeline.parse src in
  let tr, _ =
    Pipeline.compile ~config:full_profile
      ~setup:(fun st -> Pipeline.set_global st "mode" 0)
      program
  in
  let setup st = Pipeline.set_global st "mode" 9 in
  let seq = Pipeline.run_sequential ~setup program in
  let par = Pipeline.run_parallel ~setup ~config:(config ()) tr in
  check "fell back" true (par.fallbacks = 1);
  check "induction variable final value matches sequential" true
    (Privateer_interp.Value.equal seq.seq_result par.par_result)

let suite =
  [ Alcotest.test_case "privatization equivalence" `Quick test_privatization_equivalence;
    Alcotest.test_case "all worker counts" `Quick test_worker_counts;
    Alcotest.test_case "all checkpoint periods" `Quick test_checkpoint_periods;
    Alcotest.test_case "speedup is positive" `Quick test_speedup_positive;
    Alcotest.test_case "short-lived objects" `Quick test_short_lived_equivalence;
    Alcotest.test_case "memory reductions" `Quick test_memory_reduction_equivalence;
    Alcotest.test_case "register reductions" `Quick test_register_reduction_equivalence;
    Alcotest.test_case "deferred I/O ordering" `Quick test_deferred_io_order;
    Alcotest.test_case "value prediction end-to-end" `Quick test_value_prediction_end_to_end;
    Alcotest.test_case "preheader prediction fallback" `Quick test_preheader_fallback;
    Alcotest.test_case "induction variable final value" `Quick test_induction_var_final_value;
    Alcotest.test_case "live-out private register" `Quick test_live_out_private_register;
    Alcotest.test_case "zero-iteration loop" `Quick test_zero_iteration_loop;
    Alcotest.test_case "injected misspeculation recovers" `Quick test_injected_misspec_recovers;
    Alcotest.test_case "misspeculation with deferred I/O" `Quick test_injected_misspec_with_io;
    Alcotest.test_case "misspeculation with reductions" `Quick test_injected_misspec_with_reductions;
    Alcotest.test_case "stats and breakdown" `Quick test_stats_private_bytes;
    Alcotest.test_case "runtime prediction failure" `Quick test_wrong_prediction_at_runtime_recovers;
    Alcotest.test_case "schedule equivalence" `Quick test_schedule_equivalence;
    Alcotest.test_case "schedule equivalence under misspec" `Quick
      test_schedule_equivalence_under_misspec;
    Alcotest.test_case "schedule-independent I/O order" `Quick test_schedule_io_order;
    Alcotest.test_case "schedule parsing" `Quick test_schedule_of_string;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "misspec on iteration 0" `Quick test_misspec_on_iteration_zero;
    Alcotest.test_case "misspec on interval's last iteration" `Quick
      test_misspec_on_interval_last_iteration;
    Alcotest.test_case "misspec on the loop's last iteration" `Quick
      test_misspec_on_loop_last_iteration;
    Alcotest.test_case "misspec under serial commit" `Quick test_misspec_under_serial_commit;
    Alcotest.test_case "adaptive period equivalence" `Quick test_adaptive_period_equivalence;
    Alcotest.test_case "adaptive period: clean runs identical" `Quick
      test_adaptive_period_clean_run_identical;
    Alcotest.test_case "adaptive period cuts recovery cost" `Quick
      test_adaptive_period_cuts_recovery;
    Alcotest.test_case "throttle demotes and suspends" `Quick test_throttle_demotes_and_suspends;
    Alcotest.test_case "no throttle: speculation continues" `Quick
      test_throttle_off_keeps_speculating;
    Alcotest.test_case "re-enable after suspension" `Quick test_reenable_loop;
    Alcotest.test_case "per-loop stats table" `Quick test_loop_report_totals;
    Alcotest.test_case "fallback induction final value" `Quick
      test_fallback_induction_final_value ]
