(* The job server: concurrent speculative pipelines over one shared
   pool.

   - qcheck: N generated jobs run concurrently (max_inflight 2-4, both
     pool kinds, forced 4 "cores") produce per-job fingerprints —
     simulated cycles, outputs, results, non-host stats, per-loop
     tables — byte-identical to the same jobs run serially (1 core,
     effectively sequential);
   - regression: two whole pipelines running interleaved on separate
     domains in one process (same source, hence the SAME loop node
     ids) each match the serial reference — per-run state (stats
     tables above all) must be run-scoped, never keyed by loop id in
     a process-global;
   - units: lifecycle states settle to Done, a failing job is
     confined (Failed, server survives, neighbours finish), the
     in-flight bound clamps to the host core count, a full queue
     rejects try_submit (backpressure), and a bounded queue cannot
     deadlock the inline 1-core path. *)

module Job_server = Privateer_server.Job_server
module Jobs_manifest = Privateer_server.Jobs_manifest
module Domain_pool = Privateer_support.Domain_pool
module RC = Privateer_parallel.Runtime_config

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small deterministic program family for unit tests (distinct [salt]
   gives distinct outputs/fingerprints). *)
let program_src salt =
  Printf.sprintf
    "global out[32];\n\
     fn main() {\n\
     \  for (k = 0; k < 32) { out[k] = k * k + %d; }\n\
     \  var total = 0;\n\
     \  for (q = 0; q < 32) { total = total + out[q]; }\n\
     \  print(\"= %%d\\n\", total);\n\
     \  return total;\n\
     }\n"
    salt

let spec_of_src ?(config = RC.default) name src =
  Job_server.job_spec ~name ~config (Privateer.Pipeline.parse src)

let fingerprint_of t job =
  match Job_server.state t job with
  | Job_server.Done r -> r.jr_fingerprint
  | Job_server.Failed msg -> "failed: " ^ msg
  | s -> "unsettled: " ^ Job_server.state_name s

(* ---- qcheck: concurrent = serial, both kinds --------------------------- *)

(* Job sources come from the same template generator as the pipeline
   equivalence properties; per-job configs vary workers so the jobs
   are not clones of each other. *)
let jobs_arb =
  QCheck.make
    ~print:(fun (progs, inflight) ->
      Printf.sprintf "%d jobs, max_inflight %d" (List.length progs) inflight)
    QCheck.Gen.(
      pair
        (list_size (int_range 2 4)
           (list_size (int_range 1 5) Test_props.tmpl_gen))
      (int_range 2 4))

let run_fingerprints ~host_cores ~kind ~max_inflight sources =
  let config =
    { RC.default with
      RC.pool_kind = kind; max_inflight; queue_cap = 0; host_domains = 1 }
  in
  let specs =
    List.mapi
      (fun i src ->
        spec_of_src
          ~config:{ config with RC.workers = 3 + (i mod 3) }
          (Printf.sprintf "job%d" i) src)
      sources
  in
  let t = Job_server.run_jobs ~host_cores ~config specs in
  List.map (fingerprint_of t) (Job_server.jobs t)

let prop_concurrent_identical_to_serial (template_lists, max_inflight) =
  let sources = List.map Test_props.program_of_templates template_lists in
  (* Serial reference: 1 host core clamps the server to sequential,
     poolless execution. *)
  let serial =
    run_fingerprints ~host_cores:1 ~kind:Domain_pool.Work_stealing ~max_inflight
      sources
  in
  let ws =
    run_fingerprints ~host_cores:4 ~kind:Domain_pool.Work_stealing ~max_inflight
      sources
  in
  let legacy =
    run_fingerprints ~host_cores:4 ~kind:Domain_pool.Single_queue ~max_inflight
      sources
  in
  List.for_all (fun fp -> not (String.length fp >= 6 && String.sub fp 0 6 = "failed")) serial
  && serial = ws && serial = legacy

(* ---- regression: interleaved pipelines in one process ------------------- *)

(* Two complete pipelines over the same source — so both transformed
   programs carry the SAME loop node ids — run interleaved on two
   domains.  Any process-global state keyed by loop id (the historical
   hazard for the stats tables) corrupts at least one of them; both
   must match the serial reference byte for byte. *)
let test_interleaved_pipelines () =
  let src = program_src 7 in
  let run_pipeline () =
    let program = Privateer.Pipeline.parse src in
    let tr, _ = Privateer.Pipeline.compile program in
    let config = { RC.default with RC.workers = 5; host_domains = 1 } in
    let par = Privateer.Pipeline.run_parallel ~config tr in
    ( par.par_output,
      par.par_cycles,
      par.stats.invocations,
      par.stats.iterations,
      Privateer.Pipeline.loop_report par
      |> List.map (fun (loop, (ls : Privateer_runtime.Stats.loop_stats)) ->
             (loop, ls.l_invocations, ls.l_misspeculations, ls.l_wall_cycles)) )
  in
  let reference = run_pipeline () in
  let d1 = Domain.spawn run_pipeline in
  let d2 = Domain.spawn run_pipeline in
  let r1 = Domain.join d1 in
  let r2 = Domain.join d2 in
  check "interleaved pipeline 1 = serial reference" true (r1 = reference);
  check "interleaved pipeline 2 = serial reference" true (r2 = reference)

(* The underlying contract the regression leans on: loop tables are
   per-Stats instance, so equal loop ids in two instances never
   alias. *)
let test_stats_instance_scoped () =
  let open Privateer_runtime in
  let a = Stats.create () in
  let b = Stats.create () in
  let la = Stats.loop_stats a 5 in
  la.l_invocations <- 41;
  let lb = Stats.loop_stats b 5 in
  check_int "same loop id, fresh table" 0 lb.l_invocations;
  lb.l_misspeculations <- 7;
  check_int "writes do not alias across instances" 41
    (Stats.loop_stats a 5).l_invocations;
  check_int "no cross-talk back" 0 (Stats.loop_stats a 5).l_misspeculations

(* ---- lifecycle units ----------------------------------------------------- *)

let test_lifecycle_done () =
  let config = { RC.default with RC.max_inflight = 3 } in
  let specs = List.init 5 (fun i -> spec_of_src (Printf.sprintf "j%d" i) (program_src i)) in
  let t = Job_server.run_jobs ~host_cores:4 ~config specs in
  let jobs = Job_server.jobs t in
  check_int "all jobs accepted" 5 (List.length jobs);
  List.iter
    (fun j ->
      check "job settled Done" true
        (match Job_server.state t j with Job_server.Done _ -> true | _ -> false))
    jobs;
  (* Distinct salts give distinct fingerprints; equal salts equal ones. *)
  let fps = List.map (fingerprint_of t) jobs in
  check_int "5 distinct fingerprints" 5
    (List.length (List.sort_uniq compare fps));
  (* The aggregate report renders. *)
  check "report renders" true
    (String.length (Privateer_support.Json.to_string (Job_server.report t)) > 0);
  check "submit after shutdown refused" true
    (try
       ignore (Job_server.submit t (spec_of_src "late" (program_src 9)));
       false
     with Invalid_argument _ -> true)

let test_failed_job_confined () =
  (* The middle job divides by zero at run time: its pipeline raises,
     the job settles Failed, and the neighbours still finish Done. *)
  let bad = "fn main() { var x = 0; return 7 / x; }\n" in
  let specs =
    [ spec_of_src "ok1" (program_src 1); spec_of_src "bad" bad;
      spec_of_src "ok2" (program_src 2) ]
  in
  let t = Job_server.run_jobs ~host_cores:4 ~config:RC.default specs in
  match Job_server.jobs t with
  | [ j1; j2; j3 ] ->
    check "ok1 done" true
      (match Job_server.state t j1 with Job_server.Done _ -> true | _ -> false);
    check "bad failed" true
      (match Job_server.state t j2 with Job_server.Failed _ -> true | _ -> false);
    check "ok2 done" true
      (match Job_server.state t j3 with Job_server.Done _ -> true | _ -> false);
    check "await surfaces the error" true
      (match Job_server.await t j2 with Error _ -> true | Ok _ -> false)
  | _ -> Alcotest.fail "expected 3 jobs"

let test_inflight_clamp () =
  check_int "1 core -> sequential" 1
    (Job_server.effective_inflight_for ~host_cores:1 ~max_inflight:8);
  check_int "clamped to cores" 4
    (Job_server.effective_inflight_for ~host_cores:4 ~max_inflight:8);
  check_int "bounded by the knob" 3
    (Job_server.effective_inflight_for ~host_cores:8 ~max_inflight:3);
  let t = Job_server.create ~host_cores:1 ~config:{ RC.default with RC.max_inflight = 8 } () in
  check_int "server reports the clamp" 1 (Job_server.effective_inflight t);
  Job_server.shutdown t;
  let t = Job_server.create ~host_cores:4 ~config:{ RC.default with RC.max_inflight = 2 } () in
  check_int "server reports the knob" 2 (Job_server.effective_inflight t);
  Job_server.shutdown t

let test_backpressure_rejects () =
  (* 2 in-flight slots + queue cap 2: a burst of 6 admissions must see
     at least one rejection (jobs take milliseconds; the burst takes
     microseconds), and every accepted job still settles Done. *)
  let config = { RC.default with RC.max_inflight = 2; queue_cap = 2 } in
  let t = Job_server.create ~host_cores:4 ~config () in
  let accepted, rejected =
    List.fold_left
      (fun (a, r) i ->
        match Job_server.try_submit t (spec_of_src (Printf.sprintf "b%d" i) (program_src i)) with
        | Some j -> (j :: a, r)
        | None -> (a, r + 1))
      ([], 0) (List.init 6 Fun.id)
  in
  check "queue at cap rejects try_submit" true (rejected > 0);
  check "not everything rejected" true (List.length accepted >= 2);
  Job_server.drain t;
  List.iter
    (fun j ->
      check "accepted job settled Done" true
        (match Job_server.state t j with Job_server.Done _ -> true | _ -> false))
    accepted;
  Job_server.shutdown t

let test_bounded_queue_inline () =
  (* 1 core: jobs run inline at submit time, so a tiny queue cap can
     never deadlock a long submission stream. *)
  let config = { RC.default with RC.max_inflight = 4; queue_cap = 1 } in
  let specs = List.init 6 (fun i -> spec_of_src (Printf.sprintf "q%d" i) (program_src i)) in
  let t = Job_server.run_jobs ~host_cores:1 ~config specs in
  List.iter
    (fun j ->
      check "inline job done" true
        (match Job_server.state t j with Job_server.Done _ -> true | _ -> false))
    (Job_server.jobs t)

(* ---- manifest parsing ---------------------------------------------------- *)

let test_manifest_parse () =
  let text =
    "# comment\n\n\
     twice workload:dijkstra input=train repeat=2 workers=8\n\
     solo  workload:blackscholes baseline schedule=chunked:4\n"
  in
  let specs = Jobs_manifest.parse ~base:RC.default text in
  check_int "repeat expands" 3 (List.length specs);
  (match specs with
  | [ a; b; c ] ->
    check "repeat names" true
      (a.Job_server.js_name = "twice#1" && b.Job_server.js_name = "twice#2"
     && c.Job_server.js_name = "solo");
    check_int "workers knob applied" 8 a.Job_server.js_config.RC.workers;
    check "baseline flag" true c.Job_server.js_baseline;
    check "schedule knob applied" true
      (c.Job_server.js_config.RC.schedule = Privateer_parallel.Schedule.Chunked 4)
  | _ -> Alcotest.fail "expected 3 specs");
  let bad_line text msg =
    check msg true
      (try ignore (Jobs_manifest.parse ~base:RC.default text); false
       with Failure m -> String.length m > 0)
  in
  bad_line "x workload:nope\n" "unknown workload rejected";
  bad_line "x dijkstra\n" "missing source kind rejected";
  bad_line "x workload:dijkstra frobnicate=3\n" "unknown option rejected";
  bad_line "x workload:dijkstra workers=banana\n" "bad knob value rejected"

(* scenario: and scale= in the manifest, plus the shared loader's
   line-numbered error surface. *)
let test_manifest_scenarios () =
  let specs =
    Jobs_manifest.parse ~base:RC.default
      "gen scenario:seed=3,trip=24,misspec=0.1 input=alt scale=2 repeat=2 workers=6\n"
  in
  (match specs with
  | [ a; b ] ->
    check "repeat names" true
      (a.Job_server.js_name = "gen#1" && b.Job_server.js_name = "gen#2");
    check_int "workers knob applied" 6 a.Job_server.js_config.RC.workers;
    check "repeats never share an AST" true
      (a.Job_server.js_program != b.Job_server.js_program)
  | specs -> Alcotest.fail (Printf.sprintf "expected 2 specs, got %d" (List.length specs)));
  let contains s frag =
    let ls = String.length s and lf = String.length frag in
    let rec go i = i + lf <= ls && (String.sub s i lf = frag || go (i + 1)) in
    go 0
  in
  let bad text frag =
    match Jobs_manifest.parse ~base:RC.default text with
    | _ -> Alcotest.fail (Printf.sprintf "manifest %S accepted" text)
    | exception Failure m ->
      check (Printf.sprintf "%S -> %s" text frag) true (contains m frag)
  in
  bad "x scenario:trip=banana\n" "expected an integer";
  bad "x scenario:zap=1\n" "unknown scenario knob";
  bad "x scenario:seed=1,loops=99\n" "loops must be in 1..8";
  bad "x workload:dijkstra scale=0\n" "scale must be >= 1";
  bad "x workload:dijkstra scale=9\n" "supports scale 1..";
  bad "x zap:foo\n" "unknown job source kind";
  bad "x dijkstra input=ref\n" "job source must be";
  (* Errors carry the 1-based manifest line number. *)
  (match Jobs_manifest.parse ~base:RC.default "# fine\nx scenario:zap=1\n" with
  | _ -> Alcotest.fail "bad second line accepted"
  | exception Failure m -> check "line number prefix" true (contains m "line 2:"));
  (* scale= is a workload/scenario option; file: jobs reject it. *)
  let path = Filename.temp_file "manifest_scale" ".cm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc "fn main() { print 1; }\n");
      bad
        (Printf.sprintf "x file:%s scale=2\n" path)
        "scale= only applies")

(* The example manifest stays loadable: `privateer serve
   examples/jobs.manifest` must work out of the box. *)
let test_example_manifest_loads () =
  (* dune runs tests from the build context root's test/ dir; walk up
     to find the source tree's examples/. *)
  let rec find dir n =
    let candidate = Filename.concat dir "examples/jobs.manifest" in
    if Sys.file_exists candidate then Some candidate
    else if n = 0 then None
    else find (Filename.concat dir "..") (n - 1)
  in
  match find "." 6 with
  | None -> () (* source tree not visible from the sandbox; skip *)
  | Some path ->
    let specs = Jobs_manifest.load ~base:RC.default path in
    check "example manifest has jobs" true (List.length specs >= 5)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ QCheck.Test.make ~count:10
        ~name:"concurrent jobs byte-identical to serial (both kinds)" jobs_arb
        prop_concurrent_identical_to_serial ]
  @ [ Alcotest.test_case "interleaved pipelines = serial reference" `Quick
        test_interleaved_pipelines;
      Alcotest.test_case "stats tables are instance-scoped" `Quick
        test_stats_instance_scoped;
      Alcotest.test_case "lifecycle: jobs settle Done" `Quick test_lifecycle_done;
      Alcotest.test_case "failed job confined to its slot" `Quick
        test_failed_job_confined;
      Alcotest.test_case "in-flight bound clamps to cores" `Quick
        test_inflight_clamp;
      Alcotest.test_case "full queue rejects try_submit" `Quick
        test_backpressure_rejects;
      Alcotest.test_case "bounded queue: inline path can't deadlock" `Quick
        test_bounded_queue_inline;
      Alcotest.test_case "manifest: parse, repeat, knobs, errors" `Quick
        test_manifest_parse;
      Alcotest.test_case "manifest: scenario jobs, scale, line errors" `Quick
        test_manifest_scenarios;
      Alcotest.test_case "example manifest loads" `Quick
        test_example_manifest_loads ]
