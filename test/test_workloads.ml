(* Integration tests over the five evaluation programs: every workload
   must parse, plan its hot loop with the paper's classification
   shape, and execute speculatively with outputs equivalent to
   sequential execution.  Uses the small train/alt inputs to keep the
   suite fast; the ref-input runs live in the bench harness. *)

open Privateer
open Privateer_workloads
open Privateer_profile

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Plan-content assertions need the full profile, regardless of the
   PRIVATEER_PROFILERS environment the suite runs under. *)
let full_profile =
  { Privateer_parallel.Runtime_config.default with profilers = [ "all" ] }

let compile wl =
  let program = Workload.program wl in
  let tr, profiler =
    Pipeline.compile ~config:full_profile ~setup:(Workload.setup wl Workload.Train)
      program
  in
  (program, tr, profiler)

(* Outputs equal, with a float tolerance for reduction reassociation
   (alvinn's rmse lines). *)
let outputs_equivalent a b =
  let close x y =
    String.equal x y
    ||
    match
      ( Scanf.sscanf_opt x "epoch %d rmse %f" (fun d f -> (d, f)),
        Scanf.sscanf_opt y "epoch %d rmse %f" (fun d f -> (d, f)) )
    with
    | Some (d1, f1), Some (d2, f2) -> d1 = d2 && abs_float (f1 -. f2) < 1e-6
    | _ -> false
  in
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  List.length la = List.length lb && List.for_all2 close la lb

let run_both ?(workers = 8) ?(input = Workload.Alt) wl =
  let program, tr, _ = compile wl in
  let seq = Pipeline.run_sequential ~setup:(Workload.setup wl input) program in
  let config = { Privateer_parallel.Executor.default_config with workers } in
  let par = Pipeline.run_parallel ~setup:(Workload.setup wl input) ~config tr in
  (seq, par)

let plan_of tr =
  match (tr : Privateer_transform.Transform.result).selection.plans with
  | [ p ] -> p
  | plans -> Alcotest.fail (Printf.sprintf "expected 1 plan, got %d" (List.length plans))

let heap_of plan name = Privateer_analysis.Classify.heap_of plan.Privateer_analysis.Selection.assignment name

let test_all_parse_and_validate () =
  List.iter
    (fun wl ->
      let program = Workload.program wl in
      check (wl.Workload.name ^ " validates") true
        (Privateer_ir.Validate.check program = []))
    (Workloads.all ())

let test_all_plan_hot_loop () =
  List.iter
    (fun wl ->
      let _, tr, _ = compile wl in
      check (wl.Workload.name ^ " has a plan") true (tr.selection.plans <> []))
    (Workloads.all ())

let test_dijkstra_assignment_shape () =
  (* Paper Figure 4: Q and pathcost private, nodes short-lived, adj
     read-only; plus the empty-queue value prediction. *)
  let _, tr, _ = compile Dijkstra.workload in
  let plan = plan_of tr in
  check "pathcost private" true (heap_of plan (Objname.Global "pathcost") = Some Privateer_ir.Heap.Private);
  check "Q_head private" true (heap_of plan (Objname.Global "Q_head") = Some Privateer_ir.Heap.Private);
  check "Q_tail private" true (heap_of plan (Objname.Global "Q_tail") = Some Privateer_ir.Heap.Private);
  check "adj read-only" true (heap_of plan (Objname.Global "adj") = Some Privateer_ir.Heap.Read_only);
  check "nodes short-lived" true (not (Objname.Set.is_empty plan.assignment.short_lived));
  check_int "one value prediction" 1 (List.length plan.assignment.predictions);
  let extras = Privateer_analysis.Selection.extras plan in
  check "extras Value+Control+I/O" true
    (List.mem "Value" extras && List.mem "Control" extras && List.mem "I/O" extras)

let test_alvinn_assignment_shape () =
  (* Paper Table 3: reductions on two global arrays + a scalar local;
     four privatized stack arrays. *)
  let _, tr, _ = compile Alvinn.workload in
  let plan = plan_of tr in
  check "dw_ih redux" true (heap_of plan (Objname.Global "dw_ih") = Some Privateer_ir.Heap.Redux);
  check "dw_ho redux" true (heap_of plan (Objname.Global "dw_ho") = Some Privateer_ir.Heap.Redux);
  check "weights read-only" true
    (heap_of plan (Objname.Global "w_ih") = Some Privateer_ir.Heap.Read_only
    && heap_of plan (Objname.Global "w_ho") = Some Privateer_ir.Heap.Read_only);
  let stack_privates =
    Objname.Set.filter
      (fun o -> match o with Objname.Site _ -> true | _ -> false)
      plan.assignment.priv
  in
  check_int "four private stack arrays" 4 (Objname.Set.cardinal stack_privates);
  check "scalar register reduction" true
    (List.exists
       (fun (_, c) ->
         match (c : Privateer_analysis.Scalars.scalar_class) with
         | Reduction_reg _ -> true
         | _ -> false)
       plan.scalars)

let test_swaptions_assignment_shape () =
  (* Paper: mostly short-lived dynamic objects plus private scratch. *)
  let _, tr, _ = compile Swaptions.workload in
  let plan = plan_of tr in
  check "several short-lived names" true
    (Objname.Set.cardinal plan.assignment.short_lived >= 3);
  check "workbuf private" true (heap_of plan (Objname.Global "workbuf") = Some Privateer_ir.Heap.Private);
  check "results private" true (heap_of plan (Objname.Global "results") = Some Privateer_ir.Heap.Private);
  check "params read-only" true (heap_of plan (Objname.Global "params") = Some Privateer_ir.Heap.Read_only)

let test_md5_assignment_shape () =
  let _, tr, _ = compile Enc_md5.workload in
  let plan = plan_of tr in
  check "state private" true (heap_of plan (Objname.Global "md5_state") = Some Privateer_ir.Heap.Private);
  check "digest buffer short-lived" true
    (not (Objname.Set.is_empty plan.assignment.short_lived));
  check "data read-only" true (heap_of plan (Objname.Global "data") = Some Privateer_ir.Heap.Read_only);
  let extras = Privateer_analysis.Selection.extras plan in
  check "extras Control+I/O" true (List.mem "Control" extras && List.mem "I/O" extras)

let test_blackscholes_assignment_shape () =
  let _, tr, _ = compile Blackscholes.workload in
  let plan = plan_of tr in
  (* The prices array is dynamic (allocated in a helper): its site
     must be private. *)
  let dynamic_private =
    Objname.Set.exists
      (fun o -> match o with Objname.Site _ -> true | _ -> false)
      plan.assignment.priv
  in
  check "pointer-reached prices array private" true dynamic_private;
  check "option data read-only" true
    (heap_of plan (Objname.Global "sptprice") = Some Privateer_ir.Heap.Read_only)

let test_md5_known_vector () =
  (* MD5("") = d41d8cd98f00b204e9800998ecf8427e; our digest prints the
     four state words (little-endian bytes per word). *)
  let wl = Enc_md5.workload in
  let program = Workload.program wl in
  let setup st =
    List.iter (fun (g, v) -> Pipeline.set_global st g v)
      [ ("ndatasets", 1); ("dsize", 0); ("seed", 1) ]
  in
  let seq = Pipeline.run_sequential ~setup program in
  Alcotest.(check string) "empty-message digest"
    "0: d98c1dd4 4b2008f 980980e9 7e42f8ec\n" seq.seq_output

let test_outputs_equivalent_alt_input () =
  List.iter
    (fun wl ->
      let seq, par = run_both wl in
      check (wl.Workload.name ^ " par ~ seq") true
        (outputs_equivalent seq.seq_output par.par_output);
      check (wl.Workload.name ^ " no misspeculation") true
        (par.stats.misspeculations = 0))
    (Workloads.all ())

let test_profile_stability_alt () =
  (* The paper: profiling with a third input (alt) generates identical
     code.  Here: same selected loop and same site->heap map. *)
  List.iter
    (fun wl ->
      let program = Workload.program wl in
      let tr1, _ =
        Pipeline.compile ~config:full_profile
          ~setup:(Workload.setup wl Workload.Train) program
      in
      let tr2, _ =
        Pipeline.compile ~config:full_profile
          ~setup:(Workload.setup wl Workload.Alt) program
      in
      let loops1 = List.map (fun (p : Privateer_analysis.Selection.plan) -> p.loop) tr1.selection.plans in
      let loops2 = List.map (fun (p : Privateer_analysis.Selection.plan) -> p.loop) tr2.selection.plans in
      check (wl.Workload.name ^ " same loops selected") true (loops1 = loops2);
      let m1 = List.sort compare tr1.manifest.site_heap in
      let m2 = List.sort compare tr2.manifest.site_heap in
      check (wl.Workload.name ^ " same heap assignment") true (m1 = m2))
    (Workloads.all ())

let test_speedup_on_ref_dijkstra () =
  let seq, par = run_both ~workers:24 ~input:Workload.Ref Dijkstra.workload in
  let speedup = float_of_int seq.seq_cycles /. float_of_int par.par_cycles in
  check "dijkstra speedup > 8x at 24 workers" true (speedup > 8.0);
  check "output identical" true (String.equal seq.seq_output par.par_output)

(* ---- registry + scale API ----------------------------------------------- *)

let test_input_of_name () =
  List.iter
    (fun input ->
      match Workload.input_of_name (Workload.input_name input) with
      | Ok i -> check ("roundtrip " ^ Workload.input_name input) true (i = input)
      | Error m -> Alcotest.fail m)
    [ Workload.Train; Workload.Ref; Workload.Alt ];
  match Workload.input_of_name "bogus" with
  | Ok _ -> Alcotest.fail "input_of_name accepted \"bogus\""
  | Error m ->
    check "error names the choices" true
      (String.length m > 0 && m.[String.length m - 1] = ')')

let test_program_caching () =
  List.iter
    (fun wl ->
      check (wl.Workload.name ^ " program parses once") true
        (Workload.program wl == Workload.program wl);
      check (wl.Workload.name ^ " fresh_program bypasses the cache") true
        (Workload.fresh_program wl != Workload.program wl);
      check (wl.Workload.name ^ " fresh_program is fresh each call") true
        (Workload.fresh_program wl != Workload.fresh_program wl))
    (Workloads.all ())

let test_check_scale_errors () =
  List.iter
    (fun wl ->
      (match Workload.check_scale wl 0 with
      | Ok () -> Alcotest.fail (wl.Workload.name ^ ": scale 0 accepted")
      | Error m ->
        check (wl.Workload.name ^ " scale-0 message") true
          (String.length m >= 17 && String.sub m 0 17 = "scale must be >= "));
      match Workload.check_scale wl (wl.Workload.max_scale + 1) with
      | Ok () -> Alcotest.fail (wl.Workload.name ^ ": scale beyond max accepted")
      | Error _ -> ())
    (Workloads.all ());
  match Workload.params ~scale:99 Dijkstra.workload Workload.Ref with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "params ~scale:99 did not raise"

let test_scale_monotonic_cycles () =
  (* The --scale contract on the train input (ref-input growth is the
     bench `scale` experiment's gate): sequential cycles must grow
     strictly with the scale factor on every port. *)
  List.iter
    (fun wl ->
      let program = Workload.program wl in
      let cycles =
        List.init (min 3 wl.Workload.max_scale) (fun i ->
            let s = i + 1 in
            let seq =
              Pipeline.run_sequential ~setup:(Workload.setup ~scale:s wl Workload.Train)
                program
            in
            seq.seq_cycles)
      in
      let rec strictly = function
        | a :: (b :: _ as rest) -> a < b && strictly rest
        | _ -> true
      in
      check (wl.Workload.name ^ " train cycles grow with scale") true (strictly cycles);
      check (wl.Workload.name ^ " exposes scale range") true (wl.Workload.max_scale >= 2))
    (Workloads.all ())

let test_registry () =
  (match Workloads.lookup "no-such-workload" with
  | Ok _ -> Alcotest.fail "lookup found a ghost"
  | Error m ->
    let has frag =
      let ls = String.length m and lf = String.length frag in
      let rec go i = i + lf <= ls && (String.sub m i lf = frag || go (i + 1)) in
      go 0
    in
    check "canonical unknown-workload error" true
      (has "unknown workload" && has "dijkstra" && has "alvinn"));
  (match Workloads.register Dijkstra.workload with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "registering over a builtin was allowed");
  let dummy =
    Workload.make ~name:"test-registry-dummy" ~description:"registry test"
      ~source:"fn main() { print 1; }" (fun _ ~scale:_ -> [])
  in
  Workloads.register dummy;
  check "registered workload resolves" true (Workloads.find "test-registry-dummy" <> None);
  let before = List.length (Workloads.all ()) in
  Workloads.register dummy;
  check "re-registration is idempotent" true (List.length (Workloads.all ()) = before)

let suite =
  [ Alcotest.test_case "all workloads parse" `Quick test_all_parse_and_validate;
    Alcotest.test_case "all workloads plan" `Quick test_all_plan_hot_loop;
    Alcotest.test_case "dijkstra: Figure-4 assignment" `Quick test_dijkstra_assignment_shape;
    Alcotest.test_case "alvinn: reductions + stack arrays" `Quick test_alvinn_assignment_shape;
    Alcotest.test_case "swaptions: short-lived matrices" `Quick test_swaptions_assignment_shape;
    Alcotest.test_case "enc-md5: private state" `Quick test_md5_assignment_shape;
    Alcotest.test_case "blackscholes: dynamic prices array" `Quick test_blackscholes_assignment_shape;
    Alcotest.test_case "enc-md5: RFC 1321 empty digest" `Quick test_md5_known_vector;
    Alcotest.test_case "input names round-trip" `Quick test_input_of_name;
    Alcotest.test_case "program AST is parse-once cached" `Quick test_program_caching;
    Alcotest.test_case "check_scale rejects out-of-range" `Quick test_check_scale_errors;
    Alcotest.test_case "train cycles grow strictly with --scale" `Quick
      test_scale_monotonic_cycles;
    Alcotest.test_case "par ~ seq on alt inputs" `Slow test_outputs_equivalent_alt_input;
    Alcotest.test_case "profile stability (alt)" `Slow test_profile_stability_alt;
    Alcotest.test_case "dijkstra ref speedup" `Slow test_speedup_on_ref_dijkstra;
    (* Last: registers a dummy into the process-global registry, which
       Workloads.all-driven tests above must not observe. *)
    Alcotest.test_case "registry: lookup error, register rules" `Quick test_registry ]
