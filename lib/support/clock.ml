(* Host wall-clock for phase timing.  Everything simulated goes
   through the cycle model in Costs/Stats; this clock exists only for
   host-side instrumentation (merge phase attribution, bench timing)
   and must never feed back into simulated state — the determinism
   contract forbids host time from moving cycles or verdicts. *)

let now_ns () = Unix.gettimeofday () *. 1e9
