(** Minimal JSON assembly for machine-readable reports (CLI [--json],
    bench output).  Emission only; nothing in the system parses
    JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) rendering with escaped strings. *)
val to_string : t -> string
