(* A small fixed pool of OCaml 5 domains.

   Plain mutex/condition work queue: [run] pushes its tasks, the
   calling domain drains the queue alongside the workers, then waits
   for the last in-flight task.  Per-run completion state lives in the
   run's closure (fresh condition per call), so a pool object can be
   reused by successive runs without carry-over; the one mutex guards
   both the queue and every run's completion counter.

   Determinism contract: tasks receive no ordering or placement
   guarantees, so callers must make task results independent of
   execution order; [run] re-assembles them in task order. *)

type t = {
  size : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if t.stopping then None
    else
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
        Condition.wait t.work_ready t.mutex;
        next ()
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
    Mutex.unlock t.mutex;
    task ();
    worker_loop t

let create ~domains =
  if domains < 1 || domains > 64 then
    invalid_arg
      (Printf.sprintf "Domain_pool.create: domains must be in [1, 64] (got %d)" domains);
  let t =
    { size = domains; mutex = Mutex.create (); work_ready = Condition.create ();
      queue = Queue.create (); stopping = false; workers = [] }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let ws = t.workers in
  t.workers <- [];
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

(* One result slot per task; exceptions are captured and the first (in
   task order) re-raised by the caller once everything settled. *)
let run t tasks =
  match tasks with
  | [] -> []
  | [ f ] -> [ f () ]
  | tasks when t.size <= 1 || t.stopping -> List.map (fun f -> f ()) tasks
  | tasks ->
    let tasks = Array.of_list tasks in
    let n = Array.length tasks in
    let results = Array.make n None in
    let pending = ref n in
    let all_done = Condition.create () in
    let wrap i f () =
      let r = try Ok (f ()) with e -> Error e in
      Mutex.lock t.mutex;
      results.(i) <- Some r;
      decr pending;
      if !pending = 0 then Condition.broadcast all_done;
      Mutex.unlock t.mutex
    in
    Mutex.lock t.mutex;
    Array.iteri (fun i f -> Queue.push (wrap i f) t.queue) tasks;
    Condition.broadcast t.work_ready;
    (* The calling domain helps drain the queue, then waits for the
       tasks other domains still have in flight. *)
    let rec help () =
      match Queue.take_opt t.queue with
      | Some task ->
        Mutex.unlock t.mutex;
        task ();
        Mutex.lock t.mutex;
        help ()
      | None -> ()
    in
    help ();
    while !pending > 0 do
      Condition.wait all_done t.mutex
    done;
    Mutex.unlock t.mutex;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)

(* ---- process-wide shared pool ----------------------------------------- *)

let shared_pool : t option ref = ref None

let shared ~domains =
  let domains = max 1 domains in
  match !shared_pool with
  | Some p when p.size >= domains && not p.stopping -> p
  | prev ->
    Option.iter shutdown prev;
    let p = create ~domains in
    shared_pool := Some p;
    p
