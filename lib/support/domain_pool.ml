(* A small fixed pool of OCaml 5 domains.

   The pool is a process-wide scheduler, not a per-run helper: any
   number of client domains may submit work concurrently — barrier
   fan-outs via [run], fire-and-forget futures via [submit]/[await] —
   and tasks from all of them interleave on the same worker domains.
   The job server multiplexes whole speculative pipelines this way:
   each job body is one future, and the stage fan-outs it performs
   ([run] called from inside a pool task) push their tasks onto the
   same deques, so one job's merge shards interleave with another's
   extraction scans instead of monopolizing the pool.

   Two scheduler kinds share one [run] contract:

   - [Work_stealing] (the default): one chunked circular deque per
     domain, guarded by a per-deque mutex.  [run] submits its tasks in
     contiguous batches — one lock acquisition per deque, not per
     task — and every domain pops its own deque LIFO (hot cache) while
     idle domains steal FIFO from the other end, so a straggler's
     oldest work migrates first.  A global mutex/condition pair exists
     only for sleeping: an atomic count of enqueued tasks is the
     wake-up predicate, and submitters broadcast while holding the
     mutex, so a worker that re-checks the count under the lock cannot
     miss a wake-up.

   - [Single_queue]: the original single mutex/condition work queue,
     kept verbatim behind the kind flag as the differential-testing
     oracle for the work-stealing scheduler.

   Either way [run] wraps each task to capture its result or
   exception, the calling domain helps drain the work, and results are
   re-assembled in task order with the first (task-order) exception
   re-raised — so the two kinds are observably identical on correct
   task sets, and differential tests can compare them on incorrect
   ones too.

   Determinism contract: tasks receive no ordering or placement
   guarantees, so callers must make task results independent of
   execution order; [run] re-assembles them in task order. *)

type kind = Work_stealing | Single_queue

let kind_to_string = function
  | Work_stealing -> "work-stealing"
  | Single_queue -> "legacy"

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "work-stealing" | "ws" -> Some Work_stealing
  | "legacy" | "single-queue" -> Some Single_queue
  | _ -> None

(* ---- per-domain deque -------------------------------------------------- *)

(* A growable circular buffer: the owner pushes and pops at the tail
   (LIFO), thieves take from the head (FIFO).  One mutex per deque —
   contention is per-victim, not global, and the batched submission
   touches each deque once. *)
type deque = {
  dq_mutex : Mutex.t;
  mutable dq_buf : (unit -> unit) option array;
  mutable dq_head : int; (* index of the oldest task *)
  mutable dq_len : int;
}

let deque_create () =
  { dq_mutex = Mutex.create (); dq_buf = Array.make 16 None; dq_head = 0;
    dq_len = 0 }

(* Callers hold [dq_mutex]. *)
let deque_grow dq needed =
  let cap = Array.length dq.dq_buf in
  if dq.dq_len + needed > cap then begin
    let cap' = max (cap * 2) (dq.dq_len + needed) in
    let buf = Array.make cap' None in
    for i = 0 to dq.dq_len - 1 do
      buf.(i) <- dq.dq_buf.((dq.dq_head + i) mod cap)
    done;
    dq.dq_buf <- buf;
    dq.dq_head <- 0
  end

let deque_push_batch dq tasks =
  Mutex.lock dq.dq_mutex;
  deque_grow dq (List.length tasks);
  let cap = Array.length dq.dq_buf in
  List.iter
    (fun task ->
      dq.dq_buf.((dq.dq_head + dq.dq_len) mod cap) <- Some task;
      dq.dq_len <- dq.dq_len + 1)
    tasks;
  Mutex.unlock dq.dq_mutex

(* Owner side: newest task first (LIFO). *)
let deque_pop dq =
  Mutex.lock dq.dq_mutex;
  let r =
    if dq.dq_len = 0 then None
    else begin
      let i = (dq.dq_head + dq.dq_len - 1) mod Array.length dq.dq_buf in
      let task = dq.dq_buf.(i) in
      dq.dq_buf.(i) <- None;
      dq.dq_len <- dq.dq_len - 1;
      task
    end
  in
  Mutex.unlock dq.dq_mutex;
  r

(* Thief side: oldest task first (FIFO). *)
let deque_steal dq =
  Mutex.lock dq.dq_mutex;
  let r =
    if dq.dq_len = 0 then None
    else begin
      let task = dq.dq_buf.(dq.dq_head) in
      dq.dq_buf.(dq.dq_head) <- None;
      dq.dq_head <- (dq.dq_head + 1) mod Array.length dq.dq_buf;
      dq.dq_len <- dq.dq_len - 1;
      task
    end
  in
  Mutex.unlock dq.dq_mutex;
  r

(* ---- the pool ---------------------------------------------------------- *)

type t = {
  mutable visible : int;
      (* the size callers asked for — what [size] reports and what the
         sequential-fallback check consults.  [shared] may hand out a
         pool whose spawned domains outnumber the current request; its
         chunking heuristics must see the requested parallelism. *)
  actual : int; (* spawned parallelism: worker domains + the caller *)
  kind : kind;
  mutex : Mutex.t; (* guards sleep/wake and every run's completion count *)
  work_ready : Condition.t;
  queue : (unit -> unit) Queue.t; (* Single_queue work *)
  deques : deque array; (* Work_stealing work, one per domain *)
  enqueued : int Atomic.t; (* Work_stealing wake-up predicate *)
  submit_rr : int Atomic.t; (* Work_stealing [submit] placement cursor *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.visible
let pool_kind t = t.kind

(* ---- Single_queue worker ----------------------------------------------- *)

let rec sq_worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if t.stopping then None
    else
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
        Condition.wait t.work_ready t.mutex;
        next ()
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
    Mutex.unlock t.mutex;
    task ();
    sq_worker_loop t

(* ---- Work_stealing worker ---------------------------------------------- *)

(* Take one task as domain [me]: own deque LIFO first, then steal FIFO
   round-robin from the victims.  The [enqueued] decrement happens
   after the take, so the count may transiently exceed the available
   tasks — harmless, the sleep loop re-scans. *)
let try_run_one t me =
  let run task =
    Atomic.decr t.enqueued;
    task ();
    true
  in
  match deque_pop t.deques.(me) with
  | Some task -> run task
  | None ->
    let n = Array.length t.deques in
    let rec scan k =
      if k >= n then false
      else
        match deque_steal t.deques.((me + k) mod n) with
        | Some task -> run task
        | None -> scan (k + 1)
    in
    scan 1

let rec ws_worker_loop t me =
  if try_run_one t me then ws_worker_loop t me
  else begin
    Mutex.lock t.mutex;
    (* Submitters broadcast while holding the mutex after raising
       [enqueued], so re-checking the count here closes the lost
       wake-up window. *)
    if (not t.stopping) && Atomic.get t.enqueued = 0 then
      Condition.wait t.work_ready t.mutex;
    let stop = t.stopping in
    Mutex.unlock t.mutex;
    if not stop then ws_worker_loop t me
  end

(* ---- lifecycle --------------------------------------------------------- *)

let create ?(kind = Work_stealing) ~domains () =
  if domains < 1 || domains > 64 then
    invalid_arg
      (Printf.sprintf "Domain_pool.create: domains must be in [1, 64] (got %d)" domains);
  let t =
    { visible = domains; actual = domains; kind; mutex = Mutex.create ();
      work_ready = Condition.create (); queue = Queue.create ();
      deques =
        (match kind with
        | Work_stealing -> Array.init domains (fun _ -> deque_create ())
        | Single_queue -> [||]);
      enqueued = Atomic.make 0; submit_rr = Atomic.make 0; stopping = false;
      workers = [] }
  in
  t.workers <-
    List.init (domains - 1) (fun i ->
        match kind with
        | Work_stealing -> Domain.spawn (fun () -> ws_worker_loop t (i + 1))
        | Single_queue -> Domain.spawn (fun () -> sq_worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let ws = t.workers in
  t.workers <- [];
  t.stopping <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join ws

(* ---- run --------------------------------------------------------------- *)

(* One result slot per task; exceptions are captured and the first (in
   task order) re-raised by the caller once everything settled. *)
let run t tasks =
  match tasks with
  | [] -> []
  | [ f ] -> [ f () ]
  | tasks when t.visible <= 1 || t.stopping -> List.map (fun f -> f ()) tasks
  | tasks ->
    let tasks = Array.of_list tasks in
    let n = Array.length tasks in
    let results = Array.make n None in
    let pending = ref n in
    let all_done = Condition.create () in
    let wrap i f () =
      let r = try Ok (f ()) with e -> Error e in
      Mutex.lock t.mutex;
      results.(i) <- Some r;
      decr pending;
      if !pending = 0 then Condition.broadcast all_done;
      Mutex.unlock t.mutex
    in
    (match t.kind with
    | Single_queue ->
      Mutex.lock t.mutex;
      Array.iteri (fun i f -> Queue.push (wrap i f) t.queue) tasks;
      Condition.broadcast t.work_ready;
      (* The calling domain helps drain the queue, then waits for the
         tasks other domains still have in flight. *)
      let rec help () =
        match Queue.take_opt t.queue with
        | Some task ->
          Mutex.unlock t.mutex;
          task ();
          Mutex.lock t.mutex;
          help ()
        | None -> ()
      in
      help ();
      while !pending > 0 do
        Condition.wait all_done t.mutex
      done;
      Mutex.unlock t.mutex
    | Work_stealing ->
      (* Batched submission: contiguous task slices, one deque lock
         each.  The caller (domain 0) gets the first slice and drains
         it LIFO before stealing from the workers' slices. *)
      let d = Array.length t.deques in
      let per = (n + d - 1) / d in
      for j = 0 to d - 1 do
        let lo = j * per in
        let hi = min n (lo + per) in
        if lo < hi then
          deque_push_batch t.deques.(j)
            (List.init (hi - lo) (fun k -> wrap (lo + k) tasks.(lo + k)))
      done;
      Atomic.fetch_and_add t.enqueued n |> ignore;
      Mutex.lock t.mutex;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex;
      (* Help: run everything still enqueued, then wait for tasks in
         flight on other domains. *)
      while try_run_one t 0 do () done;
      Mutex.lock t.mutex;
      while !pending > 0 do
        Condition.wait all_done t.mutex
      done;
      Mutex.unlock t.mutex);
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         results)

(* ---- futures ----------------------------------------------------------- *)

(* A one-shot result cell.  [fu_st] is guarded by the pool mutex; the
   settling task broadcasts [work_ready] under that mutex, so an
   awaiter that re-checks the state under the lock before sleeping
   cannot miss the settle. *)
type 'a state = Pending | Settled of 'a | Failed of exn

type 'a future = { fu_pool : t; mutable fu_st : 'a state }

let submit t f =
  if t.visible <= 1 || t.stopping then
    (* Sequential fallback, mirroring [run]: execute on the submitting
       domain and hand back an already-settled future. *)
    { fu_pool = t;
      fu_st = (match f () with v -> Settled v | exception e -> Failed e) }
  else begin
    let fu = { fu_pool = t; fu_st = Pending } in
    let task () =
      let st = match f () with v -> Settled v | exception e -> Failed e in
      Mutex.lock t.mutex;
      fu.fu_st <- st;
      (* Awaiters sleep on the workers' condition: a settle is as much
         a "re-scan now" event as a submission. *)
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex
    in
    (match t.kind with
    | Single_queue ->
      Mutex.lock t.mutex;
      Queue.push task t.queue;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex
    | Work_stealing ->
      (* Round-robin placement spreads independent submissions across
         the deques; steals rebalance whatever this gets wrong. *)
      let d = Array.length t.deques in
      let j = Atomic.fetch_and_add t.submit_rr 1 mod d in
      let j = if j < 0 then j + d else j in
      deque_push_batch t.deques.(j) [ task ];
      Atomic.incr t.enqueued;
      Mutex.lock t.mutex;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.mutex);
    fu
  end

let poll fu =
  let t = fu.fu_pool in
  Mutex.lock t.mutex;
  let st = fu.fu_st in
  Mutex.unlock t.mutex;
  match st with
  | Pending -> None
  | Settled v -> Some (Ok v)
  | Failed e -> Some (Error e)

(* Take one task destined for anyone — [await]'s way of helping while
   its future is pending.  Work_stealing scans every deque starting at
   slot 0; Single_queue takes from the shared queue. *)
let help_one t =
  match t.kind with
  | Work_stealing -> try_run_one t 0
  | Single_queue ->
    Mutex.lock t.mutex;
    let task = Queue.take_opt t.queue in
    Mutex.unlock t.mutex;
    (match task with
    | Some task ->
      task ();
      true
    | None -> false)

let await fu =
  let t = fu.fu_pool in
  let rec loop () =
    Mutex.lock t.mutex;
    match fu.fu_st with
    | Settled v ->
      Mutex.unlock t.mutex;
      v
    | Failed e ->
      Mutex.unlock t.mutex;
      raise e
    | Pending ->
      Mutex.unlock t.mutex;
      if help_one t then loop ()
      else begin
        (* Nothing takeable: the future's task (or work it spawned) is
           in flight on another domain.  Every settle and every
           submission broadcasts under [t.mutex], so re-checking state
           and queues under the lock closes the lost wake-up window. *)
        Mutex.lock t.mutex;
        (match fu.fu_st with
        | Pending
          when Atomic.get t.enqueued = 0 && Queue.is_empty t.queue
               && not t.stopping ->
          Condition.wait t.work_ready t.mutex
        | _ -> ());
        Mutex.unlock t.mutex;
        loop ()
      end
  in
  loop ()

(* ---- process-wide shared pool ----------------------------------------- *)

let shared_mutex = Mutex.create ()
let shared_pool : t option ref = ref None

let shared ?(kind = Work_stealing) ~domains () =
  let domains = max 1 domains in
  Mutex.lock shared_mutex;
  let p =
    match !shared_pool with
    | Some p when p.actual >= domains && p.kind = kind && not p.stopping ->
      (* Reuse the spawned domains, but report (and chunk for) the
         parallelism this caller asked for — a smaller request must not
         silently inherit the larger pool's size. *)
      p.visible <- domains;
      p
    | prev ->
      Option.iter shutdown prev;
      let p = create ~kind ~domains () in
      shared_pool := Some p;
      p
  in
  Mutex.unlock shared_mutex;
  p
