(** A small fixed pool of OCaml 5 domains for host-side parallelism.

    The simulated runtime is deterministic and single-threaded; the
    pool exists so that {e host} work whose result is order-independent
    — checkpoint extraction scans over disjoint shadow pages, above
    all — can fan out over the machine's cores without perturbing any
    simulated state.  Consumers must uphold two rules: {ul
    {- tasks only {e read} shared structures (or write task-local
       ones) — the pool adds no locking around user data;}
    {- tasks never call back into the pool ([run] does not nest).}}

    A pool of size 1 (or an empty/singleton task list) degrades to
    plain sequential execution in the calling domain, with no domains
    spawned and no synchronization — the sequential path stays the
    reference semantics.  Results are always returned in task order,
    so a correct task set produces byte-identical results at every
    pool size. *)

type t

(** [create ~domains] makes a pool of total parallelism [domains]: the
    calling domain participates in [run], so [domains - 1] worker
    domains are spawned.  [domains <= 1] spawns nothing.
    @raise Invalid_argument if [domains < 1] or [domains > 64]. *)
val create : domains:int -> t

(** Total parallelism of the pool (including the calling domain). *)
val size : t -> int

(** [run t tasks] executes every task, using the pool's worker domains
    and the calling domain, and returns the results in task order.
    Blocks until all tasks finish.  If a task raises, the first raised
    exception (in task order) is re-raised after all tasks have
    settled.  After [shutdown] the tasks still run, sequentially in
    the calling domain. *)
val run : t -> (unit -> 'a) list -> 'a list

(** Stop and join the worker domains.  Idempotent.  Subsequent [run]s
    fall back to sequential execution. *)
val shutdown : t -> unit

(** [shared ~domains] returns a process-wide pool of at least
    [domains] total parallelism, creating or growing it on demand (the
    previous smaller pool is shut down).  Repeated executors share
    this pool instead of spawning domains per run — OCaml caps live
    domains at a small fixed number, so per-invocation pools would
    exhaust it. *)
val shared : domains:int -> t
