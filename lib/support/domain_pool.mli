(** A small fixed pool of OCaml 5 domains for host-side parallelism.

    The simulated runtime is deterministic and single-threaded; the
    pool exists so that {e host} work whose result is order-independent
    — checkpoint extraction scans over disjoint shadow pages, above
    all — can fan out over the machine's cores without perturbing any
    simulated state.  Consumers must uphold one rule: tasks touching
    the same mutable structure synchronize it themselves (or write
    task-local state) — the pool adds no locking around user data.

    The pool is a process-wide scheduler, safe for concurrent clients:
    any number of domains may call {!run} and {!submit} at once, and
    a pool task may itself call back into the pool.  A nested {!run}
    pushes its tasks onto the same queues and the calling task helps
    drain them before waiting, so the waits-for graph stays acyclic
    (every blocked domain first exhausts all takeable work, and
    in-flight tasks are by definition executing on some domain).  The
    job server leans on this: each job body is one {!submit}ted task,
    and the stage fan-outs it performs are nested {!run}s whose tasks
    interleave with other jobs' on the same deques.

    A pool of size 1 (or an empty/singleton task list) degrades to
    plain sequential execution in the calling domain, with no domains
    spawned and no synchronization — the sequential path stays the
    reference semantics.  Results are always returned in task order,
    so a correct task set produces byte-identical results at every
    pool size, every {!kind}, and every schedule. *)

type t

(** The scheduler behind [run].  {!Work_stealing} (the default) keeps
    one chunked deque per domain: submission batches contiguous task
    slices onto the deques (one lock per deque), owners pop LIFO,
    idle domains steal FIFO from the others.  {!Single_queue} is the
    original single mutex/condition work queue, retained as the
    differential-testing oracle.  Both kinds present the identical
    [run] contract. *)
type kind = Work_stealing | Single_queue

val kind_to_string : kind -> string
(** ["work-stealing"] / ["legacy"]. *)

val kind_of_string : string -> kind option
(** Accepts ["work-stealing"], ["ws"], ["legacy"], ["single-queue"]
    (case-insensitive). *)

(** [create ?kind ~domains ()] makes a pool of total parallelism
    [domains]: the calling domain participates in [run], so
    [domains - 1] worker domains are spawned.  [domains <= 1] spawns
    nothing.
    @raise Invalid_argument if [domains < 1] or [domains > 64]. *)
val create : ?kind:kind -> domains:int -> unit -> t

(** Parallelism of the pool as requested by its creator (or the last
    {!shared} caller) — the number [run] fans out to and the number
    callers should size their chunking heuristics by. *)
val size : t -> int

val pool_kind : t -> kind
(** The scheduler kind this pool was created with. *)

(** [run t tasks] executes every task, using the pool's worker domains
    and the calling domain, and returns the results in task order.
    Blocks until all tasks finish.  If a task raises, all tasks still
    run and settle, and the first raised exception {e in task order}
    (not completion order) is re-raised.  After [shutdown] the tasks
    still run, sequentially in the calling domain. *)
val run : t -> (unit -> 'a) list -> 'a list

(** A one-shot handle to a task submitted with {!submit}. *)
type 'a future

(** [submit t f] schedules [f] to run on the pool and returns a future
    for its result, without blocking.  On a pool of size 1 (or after
    [shutdown]) [f] runs inline on the calling domain and the returned
    future is already settled — the sequential path stays the
    reference semantics, mirroring {!run}.  [f]'s exception, if any,
    is captured and re-raised by {!await}. *)
val submit : t -> (unit -> 'a) -> 'a future

(** [await fu] blocks until [fu] settles, returning the task's result
    or re-raising its exception.  While the future is pending the
    awaiting domain {e helps}: it drains other pool tasks instead of
    idling, so awaiting from inside a pool task cannot deadlock the
    pool. *)
val await : 'a future -> 'a

(** [poll fu] is [Some (Ok v)] / [Some (Error e)] once the future has
    settled, [None] while it is pending.  Never blocks and never
    re-raises. *)
val poll : 'a future -> ('a, exn) result option

(** Stop and join the worker domains.  Idempotent.  Subsequent [run]s
    fall back to sequential execution. *)
val shutdown : t -> unit

(** [shared ?kind ~domains ()] returns a process-wide pool of at least
    [domains] total parallelism and the given kind, creating or
    replacing it on demand (a previous smaller or differently-kinded
    pool is shut down).  Repeated executors share this pool instead of
    spawning domains per run — OCaml caps live domains at a small
    fixed number, so per-invocation pools would exhaust it.  The
    returned pool {e reports} the requested [domains] through {!size}
    even when the underlying pool has more spawned domains, so
    callers' chunking heuristics and sequential-fallback checks see
    the parallelism they asked for. *)
val shared : ?kind:kind -> domains:int -> unit -> t
