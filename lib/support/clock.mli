(** Host wall-clock in nanoseconds (not monotonic — good enough for
    coarse phase attribution; never used for simulated state). *)
val now_ns : unit -> float
