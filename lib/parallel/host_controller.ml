(* The per-stage host-parallelism controller.

   The four host-parallel stages of one checkpoint interval — shadow
   interval reset, checkpoint extraction, the sharded merge passes,
   and spawn-time snapshot setup — used to fan out unconditionally
   whenever a domain pool was configured.  On hosts where that loses
   (few cores, tiny job sizes: dispatch and wake-up cost more than
   the work), the controller picks sequential execution instead, per
   stage and per interval, from three inputs:

   - the pool's requested size and the host's core count (a pool on a
     single core can never win — the domains time-share it);
   - the stage's job size this interval (reset jobs, marked bytes,
     index entries, workers) against a per-stage floor below which
     dispatch cost dominates;
   - observed wall time: an EWMA of ns-per-unit for each (stage, mode)
     pair, fed back by the call sites via [note].  Parallel must beat
     sequential by a hysteresis margin to win, and the losing mode is
     re-probed periodically so the controller tracks phase shifts.

   Every decision is host-side only: the chosen mode changes wall
   time, never a simulated cycle, verdict, or committed byte — the
   identity matrix in test/test_host_parallel.ml and bench/controller.ml
   pins that across modes, pool kinds, domain counts, and shard
   counts.  [Always] reproduces the pre-controller fan-out (parallel
   whenever a pool exists, legacy widths); [Never] forces the
   sequential reference path; both exist for differential testing and
   CI, not tuning — [Auto]'s sequential fallback is automatic, never a
   flag. *)

type mode = Auto | Always | Never

let mode_to_string = function
  | Auto -> "auto"
  | Always -> "always"
  | Never -> "never"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Some Auto
  | "always" -> Some Always
  | "never" -> Some Never
  | _ -> None

type stage = Reset | Extract | Merge | Spawn

let stage_name = function
  | Reset -> "reset"
  | Extract -> "extract"
  | Merge -> "merge"
  | Spawn -> "spawn"

let stage_index = function Reset -> 0 | Extract -> 1 | Merge -> 2 | Spawn -> 3

(* Per-(stage, mode) EWMA of observed ns per work unit; [nan] means
   the mode has not been sampled yet. *)
type stage_state = {
  mutable ss_seq_ns : float;
  mutable ss_par_ns : float;
  mutable ss_decisions : int; (* auto-mode decisions taken past the gates *)
}

type t = {
  hc_mode : mode;
  hc_pool : int; (* requested pool size; 1 = no pool *)
  hc_cores : int;
  hc_stages : stage_state array;
}

type decision = { par : bool; width : int }

let seq = { par = false; width = 1 }

let create ?host_cores ~mode ~pool_size () =
  let cores =
    match host_cores with
    | Some c -> max 1 c
    | None -> Domain.recommended_domain_count ()
  in
  { hc_mode = mode; hc_pool = max 1 pool_size; hc_cores = cores;
    hc_stages =
      Array.init 4 (fun _ ->
          { ss_seq_ns = Float.nan; ss_par_ns = Float.nan; ss_decisions = 0 }) }

let mode t = t.hc_mode
let pool_size t = t.hc_pool
let host_cores t = t.hc_cores

(* Whether any [decide] call could ever answer parallel.  Consulted
   before the pool is spawned: idle domains are not free — every
   stop-the-world minor collection must synchronize them, which on a
   single-core host taxes allocation-heavy sequential work by double-
   digit percentages.  [Never] and a single-core [Auto] therefore skip
   domain spawning entirely; [Always] keeps the pre-controller
   behavior. *)
let may_parallelize t =
  match t.hc_mode with
  | Never -> false
  | Always -> t.hc_pool > 1
  | Auto -> t.hc_pool > 1 && t.hc_cores > 1

(* The pre-controller fan-out widths, reproduced verbatim by [Always]:
   reset chunked the job list [2 * pool] ways, extraction chunked each
   worker's pages [pool] ways, the merge ran one job per shard
   (callers clamp [max_int] down to the shard count), and spawn ran
   one task per worker. *)
let legacy_width t = function
  | Reset -> t.hc_pool * 2
  | Extract -> t.hc_pool
  | Merge -> max_int
  | Spawn -> max_int

(* Effective parallelism for [Auto]: no point fanning wider than the
   cores that can actually run concurrently. *)
let auto_width t stage =
  let e = min t.hc_pool t.hc_cores in
  match stage with
  | Reset -> e * 2
  | Extract -> e
  | Merge -> e
  | Spawn -> max_int

(* Below these job sizes, dispatch + wake-up cost dominates any
   conceivable win; chosen well under the crossover measured by
   bench/controller.ml so the floor only filters obvious losers.
   Units per stage: reset jobs (page rewrites/refills), marked shadow
   bytes, index entries (writes + live-in probes), workers. *)
let min_units = function
  | Reset -> 4
  | Extract -> 1024
  | Merge -> 512
  | Spawn -> 4

let ewma_alpha = 0.3
let hysteresis = 0.9 (* parallel must be >= 10% faster to win *)
let reprobe_every = 32

let decide t stage ~units =
  match t.hc_mode with
  | Never -> seq
  | Always ->
    if t.hc_pool > 1 then { par = true; width = legacy_width t stage } else seq
  | Auto ->
    if t.hc_pool <= 1 || t.hc_cores <= 1 || units < min_units stage then seq
    else begin
      let ss = t.hc_stages.(stage_index stage) in
      ss.ss_decisions <- ss.ss_decisions + 1;
      let width = auto_width t stage in
      let have v = not (Float.is_nan v) in
      if not (have ss.ss_par_ns) then { par = true; width }
      else if not (have ss.ss_seq_ns) then seq
      else begin
        let par_wins = ss.ss_par_ns < ss.ss_seq_ns *. hysteresis in
        (* Periodically run the losing mode once so a phase shift in
           the workload is observed rather than assumed away. *)
        let par =
          if ss.ss_decisions mod reprobe_every = 0 then not par_wins else par_wins
        in
        if par then { par = true; width } else seq
      end
    end

let note t stage ~units ~par ~ns =
  if units > 0 && ns > 0.0 then begin
    let ss = t.hc_stages.(stage_index stage) in
    let per_unit = ns /. float_of_int units in
    let blend prev =
      if Float.is_nan prev then per_unit
      else (ewma_alpha *. per_unit) +. ((1.0 -. ewma_alpha) *. prev)
    in
    if par then ss.ss_par_ns <- blend ss.ss_par_ns
    else ss.ss_seq_ns <- blend ss.ss_seq_ns
  end

(* Learned state, for benches and the CLI report. *)
type stage_snapshot = {
  sn_stage : stage;
  sn_seq_ns_per_unit : float option;
  sn_par_ns_per_unit : float option;
  sn_decisions : int;
}

let snapshot t =
  List.map
    (fun stage ->
      let ss = t.hc_stages.(stage_index stage) in
      let opt v = if Float.is_nan v then None else Some v in
      { sn_stage = stage; sn_seq_ns_per_unit = opt ss.ss_seq_ns;
        sn_par_ns_per_unit = opt ss.ss_par_ns; sn_decisions = ss.ss_decisions })
    [ Reset; Extract; Merge; Spawn ]
