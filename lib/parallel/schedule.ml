(* Iteration-assignment policies for the speculative DOALL engine.

   A schedule decides which worker owns each iteration of a checkpoint
   interval.  It is a pure function of the interval bounds and the
   spawn point, so the committed state stays schedule-independent: the
   checkpoint merge is last-writer-wins by *iteration number*, the
   deferred-I/O commit is iteration-ordered, and privacy validation
   catches genuine cross-iteration flow under any assignment (within a
   worker by the Table 2 timestamps, across workers by phase-2
   live-in/write conflicts).  Only the simulated wall clock — load
   balance, per-worker dirty-page footprints — differs by policy. *)

type t =
  | Cyclic  (** worker [w] owns iterations [w], [w+W], ... of a spawn (round-robin) *)
  | Blocked  (** each interval is split into [W] contiguous blocks *)
  | Chunked of int  (** round-robin over contiguous chunks of the given size *)

let to_string = function
  | Cyclic -> "cyclic"
  | Blocked -> "blocked"
  | Chunked c -> Printf.sprintf "chunked:%d" c

let of_string s =
  match String.lowercase_ascii s with
  | "cyclic" -> Some Cyclic
  | "blocked" -> Some Blocked
  | s -> (
    match String.split_on_char ':' s with
    | [ "chunked"; n ] -> (
      match int_of_string_opt n with Some c when c > 0 -> Some (Chunked c) | _ -> None)
    | _ -> None)

(* Raises on nonsensical policies; called from [Executor.create]. *)
let validate = function
  | Cyclic | Blocked -> ()
  | Chunked c ->
    if c <= 0 then
      invalid_arg (Printf.sprintf "Schedule.Chunked: chunk size must be > 0 (got %d)" c)

(* The worker owning [iter].  [spawn_start] is the first iteration of
   the current worker cohort (constant across that cohort's
   intervals); [lo, hi) is the current checkpoint interval.  Every
   iteration of the interval is owned by exactly one worker id in
   [0, workers). *)
let owner t ~workers ~spawn_start ~lo ~hi iter =
  match t with
  | Cyclic -> (iter - spawn_start) mod workers
  | Blocked ->
    let len = hi - lo in
    let block = (len + workers - 1) / workers in
    (* block >= 1 whenever len >= 1, and (len-1)/block <= workers-1. *)
    min (workers - 1) ((iter - lo) / max 1 block)
  | Chunked c -> (iter - lo) / c mod workers
