(* The unified runtime-tuning surface.

   Every knob of the speculation engine lives in this one validated
   record: [Executor] consumes it directly ([Executor.config] is a
   re-export of [t], so `{ Executor.default_config with ... }` call
   sites keep compiling), [Pipeline] threads it through, and the CLI
   builds its flags from [cli_bindings] instead of hand-rolling one
   argument per field.  This module is also the only place that reads
   the PRIVATEER_* environment defaults. *)

module Page_pool = Privateer_runtime.Page_pool

(* When misspeculation is detected.  [Commit]: only at the checkpoint
   merge (the paper's two-phase validation).  [Eager]: additionally
   in-flight, through the conflict board — the first observed
   violation squashes the interval immediately.  Final outputs,
   results and violation verdicts are identical in both modes; only
   wasted-work accounting (and, on violating runs, cycles) differ. *)
type validation = Commit | Eager

let validation_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "commit" -> Some Commit
  | "eager" -> Some Eager
  | _ -> None

let validation_to_string = function Commit -> "commit" | Eager -> "eager"

type t = {
  workers : int; (* simulated worker processes *)
  host_domains : int;
      (* host-side parallelism: checkpoint extraction, interval reset,
         and spawn-time snapshot setup fan out over a pool of this
         many OCaml domains.  1 keeps the fully sequential reference
         path.  Host-only: simulated cycles and all committed state
         are byte-identical at any setting. *)
  merge_shards : int;
      (* address-shard count of the checkpoint merge's writer index:
         the merge's fill / validate / sweep passes run as one job per
         shard on the host pool.  Host-only, like host_domains —
         verdicts and overlays are byte-identical at any setting. *)
  pool_kind : Privateer_support.Domain_pool.kind;
      (* scheduler behind the host-domain pool: the work-stealing
         per-domain deques (default) or the legacy single mutex
         queue, kept as the differential-testing oracle.  Host-only. *)
  host_controller : Host_controller.mode;
      (* per-stage host-parallelism policy: auto (measure, and fan
         out only where it wins), always (pre-controller behavior:
         parallel whenever a pool exists), never (the sequential
         reference path).  Host-only: simulated cycles and verdicts
         are byte-identical at any setting. *)
  schedule : Schedule.t; (* iteration-assignment policy *)
  checkpoint_period : int option; (* None: auto (aim ~6 per invocation) *)
  adaptive_period : bool;
      (* true: shrink the period after a misspeculated interval and
         grow it back after clean ones (Recovery.period) *)
  throttle : int option;
      (* Some n: after n misspeculations in one invocation, demote the
         loop to sequential execution and suspend speculation on it
         for later invocations.  None: never demote. *)
  pool_cap : int;
      (* shadow-page pool free-list cap: fully-timestamped shadow
         pages are retired by buffer swap at interval reset and up to
         this many refilled buffers are kept for recycling.  0
         disables pooling (in-place rewrite everywhere);
         [Page_pool.unbounded] never evicts.  Host-only, like
         host_domains. *)
  costs : Cost_model.t;
  inject : (int -> bool) option; (* injected misspeculation, by iteration *)
  validate : bool; (* false: disable all validation work (ablation) *)
  validation : validation;
      (* when violations are detected: at the checkpoint merge only
         (Commit, the default) or additionally in-flight through the
         eager conflict board (Eager), which kills doomed intervals at
         the first observed violation.  Outputs and verdicts are
         identical in both modes; commit mode stays the differential
         oracle. *)
  serial_commit : bool;
      (* true: model an STMLite-style central commit process that
         serially merges every contributed page (ablation; the paper
         notes STMLite's central commit "can quickly become an
         execution bottleneck"). *)
  max_inflight : int;
      (* job server: maximum number of jobs running concurrently over
         the shared domain pool.  The server additionally clamps this
         to the host core count (1 core -> sequential jobs).
         Host-only: per-job results are byte-identical at any
         setting. *)
  queue_cap : int;
      (* job server: admission-control bound on the queued-but-not-
         running backlog; a full queue blocks (or rejects, for
         try_submit) further submissions.  0 means unbounded. *)
  profilers : string list;
      (* profilers to run on the training pass: a subset of
         Profiler.available (), ["all"] for every registered one, or
         ["reference"] for the monolithic oracle.  Queries of a
         disabled profiler answer empty, so restrict only when the
         downstream passes don't need them. *)
}

(* ---- environment defaults -------------------------------------------- *)

let env_int ~lo ~hi ~default name =
  match Sys.getenv_opt name with
  | Some s -> (
    try max lo (min hi (int_of_string (String.trim s))) with Failure _ -> default)
  | None -> default

(* PRIVATEER_HOST_DOMAINS sets the default host parallelism,
   PRIVATEER_MERGE_SHARDS the default merge shard count, and
   PRIVATEER_SHADOW_POOL_CAP the default pool cap, so an unmodified
   test or bench run can exercise the domain-parallel, sharded-merge
   and pool-disabled paths (CI forces all three). *)
let default_host_domains = env_int ~lo:1 ~hi:64 ~default:1 "PRIVATEER_HOST_DOMAINS"

let default_merge_shards =
  env_int ~lo:1 ~hi:64 ~default:Privateer_runtime.Checkpoint.default_shards
    "PRIVATEER_MERGE_SHARDS"

(* "auto" selects the adaptive pool cap (Page_pool.auto). *)
let parse_pool_cap s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Some Page_pool.auto
  | s -> (
    match int_of_string_opt s with
    | Some v when v >= 0 -> Some v
    | Some _ | None -> None)

let default_pool_cap =
  match Sys.getenv_opt "PRIVATEER_SHADOW_POOL_CAP" with
  | Some s -> (
    match parse_pool_cap s with
    | Some cap -> cap
    | None -> Page_pool.unbounded)
  | None -> Page_pool.unbounded

(* PRIVATEER_POOL_KIND ("work-stealing" | "legacy") selects the
   domain-pool scheduler, PRIVATEER_HOST_CONTROLLER ("auto" | "always"
   | "never") the host-parallelism policy — so CI can force every
   (kind x policy) cell through the unmodified suites. *)
let default_pool_kind =
  match Sys.getenv_opt "PRIVATEER_POOL_KIND" with
  | Some s -> (
    match Privateer_support.Domain_pool.kind_of_string s with
    | Some k -> k
    | None -> Privateer_support.Domain_pool.Work_stealing)
  | None -> Privateer_support.Domain_pool.Work_stealing

let default_host_controller =
  match Sys.getenv_opt "PRIVATEER_HOST_CONTROLLER" with
  | Some s -> (
    match Host_controller.mode_of_string s with
    | Some m -> m
    | None -> Host_controller.Auto)
  | None -> Host_controller.Auto

(* PRIVATEER_VALIDATION ("commit" | "eager") selects the default
   validation mode, so CI can push the whole unmodified suite through
   the eager path. *)
let default_validation =
  match Sys.getenv_opt "PRIVATEER_VALIDATION" with
  | Some s -> (
    match validation_of_string s with Some v -> v | None -> Commit)
  | None -> Commit

(* Comma-separated profiler names; "all" enables every registered
   profiler, "reference" (alone) the monolithic oracle. *)
let parse_profilers s =
  let names =
    String.split_on_char ',' s
    |> List.map (fun x -> String.lowercase_ascii (String.trim x))
    |> List.filter (fun x -> x <> "")
  in
  let known = "all" :: "reference" :: Privateer_profile.Profiler.available () in
  if names = [] then
    Error
      (Printf.sprintf "profilers: expected a comma-separated subset of %s"
         (String.concat ", " known))
  else
    match List.find_opt (fun n -> not (List.mem n known)) names with
    | Some bad ->
      Error
        (Printf.sprintf "profilers: unknown profiler %S (expected %s)" bad
           (String.concat ", " known))
    | None ->
      if List.mem "reference" names && List.length names > 1 then
        Error "profilers: 'reference' selects the whole oracle and cannot be combined"
      else Ok names

(* PRIVATEER_PROFILERS restricts the default profiler set, so CI can
   push suites through the registration path with only some consumers
   enabled. *)
let default_profilers =
  match Sys.getenv_opt "PRIVATEER_PROFILERS" with
  | Some s -> ( match parse_profilers s with Ok names -> names | Error _ -> [ "all" ])
  | None -> [ "all" ]

let default =
  { workers = 4; host_domains = default_host_domains;
    merge_shards = default_merge_shards; pool_kind = default_pool_kind;
    host_controller = default_host_controller; schedule = Schedule.Cyclic;
    checkpoint_period = None; adaptive_period = false; throttle = None;
    pool_cap = default_pool_cap; costs = Cost_model.default; inject = None;
    validate = true; validation = default_validation; serial_commit = false;
    max_inflight = env_int ~lo:1 ~hi:64 ~default:4 "PRIVATEER_MAX_INFLIGHT";
    queue_cap = env_int ~lo:0 ~hi:max_int ~default:0 "PRIVATEER_QUEUE_CAP";
    profilers = default_profilers }

(* ---- validation ------------------------------------------------------- *)

let validate config =
  if config.workers <= 0 then
    invalid_arg
      (Printf.sprintf "Runtime_config: workers must be > 0 (got %d)" config.workers);
  if config.host_domains < 1 || config.host_domains > 64 then
    invalid_arg
      (Printf.sprintf "Runtime_config: host_domains must be in [1, 64] (got %d)"
         config.host_domains);
  (match config.checkpoint_period with
  | Some k when k <= 0 ->
    invalid_arg
      (Printf.sprintf "Runtime_config: checkpoint_period must be > 0 (got %d)" k)
  | Some _ | None -> ());
  (match config.throttle with
  | Some n when n <= 0 ->
    invalid_arg (Printf.sprintf "Runtime_config: throttle must be > 0 (got %d)" n)
  | Some _ | None -> ());
  if config.merge_shards < 1 || config.merge_shards > 64 then
    invalid_arg
      (Printf.sprintf "Runtime_config: merge_shards must be in [1, 64] (got %d)"
         config.merge_shards);
  if config.pool_cap < 0 && config.pool_cap <> Page_pool.auto then
    invalid_arg
      (Printf.sprintf
         "Runtime_config: pool_cap must be >= 0 or Page_pool.auto (got %d)"
         config.pool_cap);
  if config.max_inflight < 1 || config.max_inflight > 64 then
    invalid_arg
      (Printf.sprintf "Runtime_config: max_inflight must be in [1, 64] (got %d)"
         config.max_inflight);
  if config.queue_cap < 0 then
    invalid_arg
      (Printf.sprintf "Runtime_config: queue_cap must be >= 0 (got %d)"
         config.queue_cap);
  (match parse_profilers (String.concat "," config.profilers) with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Runtime_config: " ^ msg));
  Schedule.validate config.schedule

(* ---- builder ---------------------------------------------------------- *)

let make ?workers ?host_domains ?merge_shards ?pool_kind ?host_controller
    ?schedule ?checkpoint_period ?adaptive_period ?throttle ?pool_cap ?costs
    ?inject ?validate:validate_opt ?validation ?serial_commit ?max_inflight
    ?queue_cap ?profilers () =
  let opt v d = Option.value v ~default:d in
  let config =
    { workers = opt workers default.workers;
      host_domains = opt host_domains default.host_domains;
      merge_shards = opt merge_shards default.merge_shards;
      pool_kind = opt pool_kind default.pool_kind;
      host_controller = opt host_controller default.host_controller;
      schedule = opt schedule default.schedule;
      checkpoint_period = opt checkpoint_period default.checkpoint_period;
      adaptive_period = opt adaptive_period default.adaptive_period;
      throttle = opt throttle default.throttle;
      pool_cap = opt pool_cap default.pool_cap; costs = opt costs default.costs;
      inject = opt inject default.inject;
      validate = opt validate_opt default.validate;
      validation = opt validation default.validation;
      serial_commit = opt serial_commit default.serial_commit;
      max_inflight = opt max_inflight default.max_inflight;
      queue_cap = opt queue_cap default.queue_cap;
      profilers = opt profilers default.profilers }
  in
  validate config;
  config

(* ---- CLI flag bindings ------------------------------------------------ *)

type binding = {
  b_flags : string list;
  b_docv : string;
  b_doc : string;
  b_flag_like : bool;
      (* true: the bare flag means "true" (CLI passes ~vopt:"true") *)
  b_apply : t -> string -> (t, string) result;
}

let int_field name apply t s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok (apply t v)
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" name s)

let opt_int_field name apply t s =
  match String.trim s with
  | "none" -> Ok (apply t None)
  | s -> (
    match int_of_string_opt s with
    | Some v -> Ok (apply t (Some v))
    | None -> Error (Printf.sprintf "%s: expected an integer or 'none', got %S" name s))

let bool_field name apply t s =
  match bool_of_string_opt (String.trim s) with
  | Some v -> Ok (apply t v)
  | None -> Error (Printf.sprintf "%s: expected true or false, got %S" name s)

(* One entry per string-expressible tunable; the CLI derives one
   Cmdliner argument per entry and folds the applications over a base
   config, so adding a knob here is the whole CLI change. *)
let cli_bindings =
  [ { b_flags = [ "w"; "workers" ]; b_docv = "N"; b_doc = "Worker processes.";
      b_flag_like = false;
      b_apply = int_field "workers" (fun t workers -> { t with workers }) };
    { b_flags = [ "host-domains" ]; b_docv = "N";
      b_doc =
        "Run host-parallel work (checkpoint extraction, interval reset, spawn \
         setup) on N OCaml domains (default \\$(b,PRIVATEER_HOST_DOMAINS) or 1).  \
         Host-only: simulated cycles and outputs are identical at any setting.";
      b_flag_like = false;
      b_apply =
        int_field "host-domains" (fun t host_domains -> { t with host_domains }) };
    { b_flags = [ "merge-shards" ]; b_docv = "N";
      b_doc =
        "Shard the checkpoint merge's writer index N ways; the merge's fill / \
         validate / sweep passes run as one job per shard on the host pool \
         (default \\$(b,PRIVATEER_MERGE_SHARDS) or 8).  Host-only: verdicts and \
         overlays are identical at any setting.";
      b_flag_like = false;
      b_apply =
        int_field "merge-shards" (fun t merge_shards -> { t with merge_shards }) };
    { b_flags = [ "pool-kind" ]; b_docv = "KIND";
      b_doc =
        "Domain-pool scheduler: 'work-stealing' (per-domain deques, the default) \
         or 'legacy' (single mutex queue, the differential-testing oracle; \
         default \\$(b,PRIVATEER_POOL_KIND)).  Host-only.";
      b_flag_like = false;
      b_apply =
        (fun t s ->
          match Privateer_support.Domain_pool.kind_of_string s with
          | Some pool_kind -> Ok { t with pool_kind }
          | None ->
            Error
              (Printf.sprintf "pool-kind: expected 'work-stealing' or 'legacy', got %S"
                 s)) };
    { b_flags = [ "host-controller" ]; b_docv = "MODE";
      b_doc =
        "Per-stage host-parallelism policy: 'auto' (measure per stage and fan \
         out only where it wins — the default), 'always' (parallel whenever a \
         pool exists), 'never' (sequential reference path; default \
         \\$(b,PRIVATEER_HOST_CONTROLLER)).  Host-only: simulated cycles and \
         verdicts are identical at any setting.";
      b_flag_like = false;
      b_apply =
        (fun t s ->
          match Host_controller.mode_of_string s with
          | Some host_controller -> Ok { t with host_controller }
          | None ->
            Error
              (Printf.sprintf "host-controller: expected auto, always or never, got %S"
                 s)) };
    { b_flags = [ "validation" ]; b_docv = "MODE";
      b_doc =
        "Misspeculation detection: 'commit' (only at the checkpoint merge — the \
         default) or 'eager' (in-flight conflict board squashes a doomed \
         interval at the first observed violation; the merge stays on as the \
         backstop; default \\$(b,PRIVATEER_VALIDATION)).  Final outputs and \
         violation verdicts are identical in both modes.";
      b_flag_like = false;
      b_apply =
        (fun t s ->
          match validation_of_string s with
          | Some validation -> Ok { t with validation }
          | None ->
            Error (Printf.sprintf "validation: expected 'commit' or 'eager', got %S" s)) };
    { b_flags = [ "checkpoint" ]; b_docv = "K";
      b_doc = "Checkpoint period in iterations ('none': auto).";
      b_flag_like = false;
      b_apply =
        opt_int_field "checkpoint" (fun t checkpoint_period ->
            { t with checkpoint_period }) };
    { b_flags = [ "schedule" ]; b_docv = "POLICY";
      b_doc = "Iteration schedule: cyclic, blocked, or chunked:N.";
      b_flag_like = false;
      b_apply =
        (fun t s ->
          match Schedule.of_string s with
          | Some schedule -> Ok { t with schedule }
          | None ->
            Error (Printf.sprintf "unknown schedule %S (cyclic|blocked|chunked:N)" s)) };
    { b_flags = [ "adaptive" ]; b_docv = "BOOL";
      b_doc =
        "Adapt the checkpoint period to misspeculation (shrink on failure, grow \
         back on clean intervals).";
      b_flag_like = true;
      b_apply =
        bool_field "adaptive" (fun t adaptive_period -> { t with adaptive_period }) };
    { b_flags = [ "throttle" ]; b_docv = "N";
      b_doc =
        "Demote a loop to sequential execution after N misspeculations in one \
         invocation and suspend speculation on it ('none': never).";
      b_flag_like = false;
      b_apply = opt_int_field "throttle" (fun t throttle -> { t with throttle }) };
    { b_flags = [ "shadow-pool-cap" ]; b_docv = "N";
      b_doc =
        "Keep up to N retired shadow-page buffers for swap-recycling at interval \
         reset (0 disables pooling; 'auto' learns a cap from recent retirement \
         footprints; default \\$(b,PRIVATEER_SHADOW_POOL_CAP) or unbounded).  \
         Host-only, like --host-domains.";
      b_flag_like = false;
      b_apply =
        (fun t s ->
          match parse_pool_cap s with
          | Some pool_cap -> Ok { t with pool_cap }
          | None ->
            Error
              (Printf.sprintf
                 "shadow-pool-cap: expected a non-negative integer or 'auto', got %S"
                 s)) };
    { b_flags = [ "max-inflight" ]; b_docv = "N";
      b_doc =
        "Job server: run at most N jobs concurrently over the shared domain \
         pool (clamped to the host core count; default \
         \\$(b,PRIVATEER_MAX_INFLIGHT) or 4).  Host-only: per-job results are \
         identical at any setting.";
      b_flag_like = false;
      b_apply =
        int_field "max-inflight" (fun t max_inflight -> { t with max_inflight }) };
    { b_flags = [ "queue-cap" ]; b_docv = "N";
      b_doc =
        "Job server: bound the queued-but-not-running backlog at N jobs; a full \
         queue applies backpressure to submitters (0: unbounded; default \
         \\$(b,PRIVATEER_QUEUE_CAP) or 0).";
      b_flag_like = false;
      b_apply = int_field "queue-cap" (fun t queue_cap -> { t with queue_cap }) };
    { b_flags = [ "profilers" ]; b_docv = "LIST";
      b_doc =
        "Profilers to run on the training pass: a comma-separated subset of \
         'ptr', 'lifetime', 'flow', 'value', 'exec'; 'all' (the default) runs \
         every registered profiler, 'reference' the monolithic oracle (default \
         \\$(b,PRIVATEER_PROFILERS)).  Queries of a disabled profiler answer \
         empty, so restrict only when the downstream passes don't need them.";
      b_flag_like = false;
      b_apply =
        (fun t s ->
          match parse_profilers s with
          | Ok profilers -> Ok { t with profilers }
          | Error e -> Error e) }
  ]

(* Fold a list of (binding, passed value) pairs over [base]; unpassed
   flags leave their field untouched.  The first parse error wins. *)
let apply_bindings base passed =
  List.fold_left
    (fun acc (b, v) ->
      match (acc, v) with
      | Error _, _ | _, None -> acc
      | Ok t, Some s -> b.b_apply t s)
    (Ok base) passed
