(* The speculative DOALL engine driver (paper section 5).

   Intercepts a selected For loop and wires the engine's layers around
   it: [Schedule] assigns iterations to simulated worker processes,
   [Worker] executes them under inline validation, [Commit] collects
   and merges checkpoint contributions and commits clean intervals,
   and [Recovery] squashes and re-executes misspeculated intervals —
   with an optional adaptive checkpoint period and a per-loop
   misspeculation throttle that demotes chronically misspeculating
   loops to sequential execution.

   Timing is simulated: workers accumulate cycle clocks (application
   costs from the interpreter's table, runtime costs from Cost_model),
   and the invocation's wall time is the checkpointed maximum, charged
   back to the main interpreter's cycle counter. *)

open Privateer_ir
open Privateer_machine
open Privateer_interp
open Privateer_transform
open Privateer_runtime

(* The engine's tuning record is [Runtime_config.t]; the re-export
   keeps the historical [{ Executor.default_config with ... }] call
   sites compiling unchanged.  New code should build configurations
   with [Runtime_config.make]. *)
type config = Runtime_config.t = {
  workers : int;
  host_domains : int;
  merge_shards : int;
  pool_kind : Privateer_support.Domain_pool.kind;
  host_controller : Host_controller.mode;
  schedule : Schedule.t;
  checkpoint_period : int option;
  adaptive_period : bool;
  throttle : int option;
  pool_cap : int;
  costs : Cost_model.t;
  inject : (int -> bool) option;
  validate : bool;
  validation : Runtime_config.validation;
  serial_commit : bool;
  max_inflight : int;
  queue_cap : int;
  profilers : string list;
}

(* Deprecated shims — use [Runtime_config] directly. *)
let default_host_domains = Runtime_config.default_host_domains
let default_config = Runtime_config.default
let validate_config = Runtime_config.validate

type t = {
  manifest : Manifest.t;
  config : config;
  stats : Stats.t;
  pool : Privateer_support.Domain_pool.t option;
      (* host-domain pool when host_domains > 1 (shared process-wide) *)
  controller : Host_controller.t;
      (* per-stage host-parallelism policy (one per executor: its EWMAs
         are this engine's observed stage costs) *)
  page_pool : Page_pool.t option;
      (* shadow-page buffer pool when pool_cap > 0 (per executor:
         retired buffers recycle across this engine's intervals) *)
  mutable fallbacks : int; (* invocations run sequentially (failed preheader) *)
  suspended : (Ast.node_id, unit) Hashtbl.t;
      (* loops whose speculation the throttle has suspended *)
}

let create ?pool manifest config =
  Runtime_config.validate config;
  let stats = Stats.create () in
  stats.workers <- config.workers;
  let controller =
    Host_controller.create ~mode:config.host_controller
      ~pool_size:(max 1 config.host_domains) ()
  in
  (* Spawn the pool only when the controller could ever use it: idle
     domains tax every minor collection, so [Never] (and single-core
     [Auto]) run poolless — host-only, the simulation cannot tell.
     A caller-provided [?pool] (the job server) bypasses the shared
     registry entirely: concurrent executors must never replace — and
     thereby shut down — a pool their neighbours are running on. *)
  let pool =
    match pool with
    | Some _ -> pool
    | None ->
      if config.host_domains > 1 && Host_controller.may_parallelize controller
      then
        Some
          (Privateer_support.Domain_pool.shared ~kind:config.pool_kind
             ~domains:config.host_domains ())
      else None
  in
  let page_pool =
    (* pool_cap 0 disables pooling; any other value (fixed or
       Page_pool.auto) creates a pool with that cap. *)
    if config.pool_cap <> 0 then
      Some
        (Page_pool.create ~cap:config.pool_cap ~fill:(Char.chr Shadow.old_write) ())
    else None
  in
  { manifest; config; stats; pool; controller; page_pool; fallbacks = 0;
    suspended = Hashtbl.create 4 }

let env t =
  { Worker.cm = t.config.costs; stats = t.stats; manifest = t.manifest;
    validate = t.config.validate; inject = t.config.inject; board = None }

(* True once the throttle has demoted the loop: later invocations run
   sequentially until something re-enables speculation. *)
let loop_suspended t loop = Hashtbl.mem t.suspended loop

let suspend_loop t loop = Hashtbl.replace t.suspended loop ()

(* Re-enable speculation on a suspended loop (the paper's §5.3
   re-enable discipline; exposed for callers that know the workload
   has shifted). *)
let reenable_loop t loop = Hashtbl.remove t.suspended loop

(* ---- main invocation driver ------------------------------------------ *)

let auto_period n = max 1 (min Shadow.max_interval ((n + 5) / 6))

let run_invocation t (st : Interp.t) fr (spec : Manifest.loop_spec) ~var ~init_value
    ~n ~body =
  (* Eager validation: one conflict board per invocation, threaded to
     the workers through the environment.  Without validation there is
     nothing to publish, so --no-validate ablations stay board-free in
     either mode. *)
  let eager = t.config.validation = Runtime_config.Eager && t.config.validate in
  let board = if eager then Some (Conflict_board.create ()) else None in
  let env = { (env t) with Worker.board } in
  let stats = t.stats in
  let ls = Stats.loop_stats stats spec.loop in
  stats.invocations <- stats.invocations + 1;
  ls.l_invocations <- ls.l_invocations + 1;
  let predictions = spec.predictions in
  let finish_induction () =
    (* Induction variable's final value, as after a sequential For. *)
    Hashtbl.replace fr.Interp.locals var (Value.VInt (init_value + n))
  in
  let preheader_ok () =
    List.for_all
      (fun (p : Privateer_analysis.Classify.prediction) ->
        Machine.get_int st.machine (Worker.prediction_addr st p) = p.pred_value)
      predictions
  in
  if loop_suspended t spec.loop then begin
    (* The throttle suspended this loop: non-speculative execution. *)
    ls.l_suspended_invocations <- ls.l_suspended_invocations + 1;
    ignore (Recovery.run_sequentially st fr ~var ~init_value ~body ~lo:0 ~hi:(n - 1));
    finish_induction ()
  end
  else if not (preheader_ok ()) then begin
    (* Preheader: live-in values must match the predictions, otherwise
       fall back to sequential, non-speculative execution. *)
    t.fallbacks <- t.fallbacks + 1;
    ignore (Recovery.run_sequentially st fr ~var ~init_value ~body ~lo:0 ~hi:(n - 1));
    finish_induction ()
  end
  else begin
    let k =
      match t.config.checkpoint_period with Some k -> k | None -> auto_period n
    in
    let period = Recovery.make_period ~adaptive:t.config.adaptive_period k in
    let throttle = Recovery.make_throttle t.config.throttle in
    let timeline = ref 0 in
    let c_start = st.cycles in
    let io = Deferred_io.create () in
    let emit_main = st.emit in
    let nw = t.config.workers in
    let rec parallel_from start_iter =
      if start_iter >= n then ()
      else if Recovery.should_demote throttle then begin
        (* Demotion: the invocation burned its misspeculation budget.
           Finish sequentially and suspend the loop. *)
        ls.l_demotions <- ls.l_demotions + 1;
        suspend_loop t spec.loop;
        let cycles =
          Recovery.run_sequentially st fr ~var ~init_value ~body ~lo:start_iter
            ~hi:(n - 1)
        in
        timeline := !timeline + cycles
      end
      else if not (preheader_ok ()) then begin
        (* The recovered (or entry) state contradicts the value
           predictions: speculation cannot resume yet.  Execute one
           iteration non-speculatively and try again — the prediction
           typically re-establishes itself (e.g. the queue drains). *)
        timeline :=
          !timeline
          + Recovery.reestablish_step env st fr ~var ~init_value ~body
              ~iter:start_iter;
        parallel_from (start_iter + 1)
      end
      else begin
        let ctx = Commit.make_ctx env st fr spec ~io ~emit_main
            ~serial_commit:t.config.serial_commit ~pool:t.pool
            ~controller:t.controller ~page_pool:t.page_pool
            ~merge_shards:t.config.merge_shards ()
        in
        let workers =
          Worker.spawn ?pool:t.pool ~controller:t.controller env st fr spec
            ctx.Commit.ranges nw ~now:!timeline
        in
        (match board with
        | Some b ->
          Conflict_board.new_cohort b
            (List.map
               (fun (w : Worker.t) -> (w.Worker.w_id, w.Worker.w_st.Interp.machine))
               workers)
        | None -> ());
        let rec interval_loop i0 =
          let hi = min n (i0 + Recovery.current_period period) in
          (match board with
          | Some b -> Conflict_board.new_interval b ~interval_start:i0
          | None -> ());
          let owner =
            Schedule.owner t.config.schedule ~workers:nw ~spawn_start:start_iter
              ~lo:i0 ~hi
          in
          (* Execute every worker's iterations of [i0, hi).  In eager
             mode the first misspeculation — board-confirmed or inline
             — squashes the whole sweep: the observing worker stops,
             and every worker after it in the (deterministic) sweep
             order never runs this interval, which is the mode's
             entire saving.  Commit mode reproduces the paper's
             behavior: every worker burns its full slice and the
             discard happens below. *)
          let misspecs = ref [] in
          let executed = ref 0 in
          let eager_killed = ref false in
          (try
             List.iter
               (fun (w : Worker.t) ->
                 try
                   for iter = i0 to hi - 1 do
                     if owner iter = w.Worker.w_id then begin
                       incr executed;
                       Worker.exec_iteration env w ~var ~init_value ~iter
                         ~interval_start:i0 ~body ~predictions ~io
                     end
                   done
                 with Worker.Worker_misspec (iter, reason) ->
                   misspecs := (iter, reason) :: !misspecs;
                   if eager then begin
                     eager_killed := true;
                     raise Exit
                   end)
               workers
           with Exit -> ());
          (* Contributions and phase-2 validation. *)
          let contributions =
            if !misspecs <> [] then []
            else Commit.collect ctx workers ~interval_start:i0
          in
          let merged =
            if contributions = [] then None else Some (Commit.merge ctx contributions)
          in
          let violation =
            match (!misspecs, merged) with
            | (_ :: _ as ms), _ ->
              (* Workers record the earliest misspeculated iteration
                 (paper 5.3). *)
              let earliest_iter, reason =
                List.fold_left
                  (fun (bi, br) (i, r) -> if i < bi then (i, r) else (bi, br))
                  (max_int, Misspec.Injected) ms
              in
              Some (earliest_iter, reason)
            | [], Some m -> (
              match m.Checkpoint.violation with
              | Some r -> Some (hi - 1, r) (* unknown iteration: recover interval *)
              | None -> None)
            | [], None -> None
          in
          match violation with
          | Some (miss_iter, _reason) ->
            (* Every speculatively executed iteration of a squashed
               interval is wasted work — the comparison metric between
               the two validation modes.  An eager kill additionally
               records how much of commit mode's waste it skipped, and
               hands the adaptive period the observed conflict
               distance (something merge-time detection, pinned to the
               interval end, cannot know). *)
            stats.squashed_iterations <- stats.squashed_iterations + !executed;
            if !eager_killed then begin
              stats.eager_kills <- stats.eager_kills + 1;
              stats.avoided_iterations <-
                stats.avoided_iterations + (hi - i0 - !executed)
            end;
            if eager then Recovery.period_note_eager period ~interval_start:i0 ~miss_iter;
            Recovery.period_on_misspec period;
            Recovery.throttle_note_misspec throttle;
            ls.l_misspeculations <- ls.l_misspeculations + 1;
            timeline :=
              List.fold_left
                (fun acc (w : Worker.t) -> max acc w.w_clock)
                !timeline workers;
            timeline :=
              !timeline
              + Recovery.recover env st fr ~var ~init_value ~body ~io ~emit_main
                  ~interval_start:i0 ~miss_iter;
            parallel_from (miss_iter + 1)
          | None ->
            Recovery.period_on_clean period;
            let m = Option.get merged in
            let checkpoint_done = Commit.commit_interval ctx st fr workers m ~lo:i0 ~hi in
            if hi >= n then begin
              (* Final commit: allocator state, frame scalars, join. *)
              let last_iter = n - 1 in
              let last =
                List.find (fun (w : Worker.t) -> owner last_iter = w.Worker.w_id) workers
              in
              let end_time =
                Commit.commit_final ctx st fr spec workers ~last ~checkpoint_done
              in
              timeline := max !timeline end_time
            end
            else interval_loop hi
        in
        interval_loop start_iter
      end
    in
    parallel_from 0;
    (match board with
    | Some b ->
      stats.eager_checks <- stats.eager_checks + Conflict_board.checks b;
      stats.eager_hits <- stats.eager_hits + Conflict_board.hits b
    | None -> ());
    finish_induction ();
    st.emit <- emit_main;
    stats.wall_cycles <- stats.wall_cycles + !timeline;
    ls.l_wall_cycles <- ls.l_wall_cycles + !timeline;
    (* Charge the invocation's wall time to the main process clock. *)
    st.cycles <- c_start + !timeline
  end

(* ---- installation ---------------------------------------------------- *)

(* Install the executor on an interpreter: selected loops run in
   parallel, everything else is untouched. *)
let install t (st : Interp.t) =
  st.parallel_for <-
    Some
      (fun st fr stmt ->
        match stmt with
        | Ast.For (loop, var, init_e, limit_e, body) -> (
          match Manifest.loop_spec t.manifest loop with
          | None -> false
          | Some spec ->
            let init_value = Value.as_int (Interp.eval st fr init_e) in
            let limit = Value.as_int (Interp.eval st fr limit_e) in
            let n = limit - init_value in
            if n <= 0 then begin
              Hashtbl.replace fr.Interp.locals var (Value.VInt init_value);
              true
            end
            else begin
              run_invocation t st fr spec ~var ~init_value ~n ~body;
              true
            end)
        | _ -> false)

(* One-shot: run a transformed program under the speculative runtime. *)
let run ?(config = default_config) (tr : Transform.result) =
  let st = Interp.create ~cost:config.costs.base tr.program in
  let t = create tr.manifest config in
  t.stats.separation_checks_elided <- Manifest.elided_check_count tr.manifest;
  install t st;
  ignore (Interp.run_entry st);
  (st, t)
