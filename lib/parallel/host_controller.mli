(** The adaptive per-stage host-parallelism controller.

    Decides, per checkpoint-interval stage, whether the host-parallel
    fan-out (over the {!Privateer_support.Domain_pool}) is worth its
    dispatch cost, and at what chunk width.  Inputs: the pool's
    requested size, the host's core count, the stage's job size this
    interval, and an EWMA of observed ns-per-unit for each
    (stage, mode) pair fed back via {!note}.  Decisions are host-side
    only — they change wall time, never a simulated cycle, verdict, or
    committed byte. *)

(** [Auto] measures and decides (the default; sequential fallback is
    automatic, never a flag).  [Always] reproduces the pre-controller
    behavior — parallel whenever a pool exists, at the legacy widths.
    [Never] forces the sequential reference path.  The forced modes
    exist for differential testing and CI. *)
type mode = Auto | Always | Never

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

(** The four host-parallel stages of one checkpoint interval.  Job-size
    units per stage: reset jobs (page rewrites + buffer refills),
    marked shadow bytes, merge index entries (writes + live-in
    probes), spawned workers. *)
type stage = Reset | Extract | Merge | Spawn

val stage_name : stage -> string

type t

(** [create ?host_cores ~mode ~pool_size ()] — [pool_size] is the
    requested {!Privateer_support.Domain_pool.size} (1 when no pool is
    configured); [host_cores] defaults to
    [Domain.recommended_domain_count ()]. *)
val create : ?host_cores:int -> mode:mode -> pool_size:int -> unit -> t

val mode : t -> mode
val pool_size : t -> int
val host_cores : t -> int

(** Whether any {!decide} call could ever answer parallel — [false]
    for [Never], for a pool of one, and for [Auto] on a single-core
    host.  Consult this {e before} spawning the pool: idle domains tax
    every stop-the-world minor collection, so a pool that will never
    be used should never be created. *)
val may_parallelize : t -> bool

(** One decision: fan out ([par = true], chunk [width] ways — callers
    clamp to their own maximum, e.g. the shard count) or run the
    sequential reference path. *)
type decision = { par : bool; width : int }

(** [decide t stage ~units] — [units] is this interval's job size in
    the stage's units.  [Auto] goes sequential when the pool or host
    has a single core, when [units] is under the stage's dispatch
    floor, or when the observed parallel ns-per-unit does not beat
    sequential by the hysteresis margin; unknown modes are probed
    first, and the losing mode is re-probed periodically. *)
val decide : t -> stage -> units:int -> decision

(** Feed back an observation: the stage ran over [units] work units in
    [ns] host-nanoseconds under the given mode.  Ignored when [units]
    or [ns] is non-positive. *)
val note : t -> stage -> units:int -> par:bool -> ns:float -> unit

(** Learned per-stage state, for benches and reports. *)
type stage_snapshot = {
  sn_stage : stage;
  sn_seq_ns_per_unit : float option;
  sn_par_ns_per_unit : float option;
  sn_decisions : int;  (** auto decisions taken past the static gates *)
}

val snapshot : t -> stage_snapshot list
