(* Checkpoint contribution, merge, and commit (paper section 5.2).

   Per interval, each worker contributes its speculative state (a scan
   of the shadow bank's dirty pages, skipping pages whose summary
   flags show no metadata); the merge performs phase-2 privacy
   validation via the per-word writer index and last-writer-wins
   combination; a clean merge commits into the main process:
   private-byte overlay, absolute reduction values, register-reduction
   folds, deferred output in iteration order, and per-worker metadata
   reset (which likewise visits only timestamp-flagged pages, while
   the simulated per-page charge stays on every mapped shadow page).  The final interval additionally adopts
   allocator state and live-out private registers from the worker
   that ran the last iteration.

   Under `--validation eager` the in-flight conflict board
   (Conflict_board, see docs/SPECULATION.md) may squash an interval
   before it reaches this module, but the phase-2 validation here
   remains the authoritative backstop: the board is sound but
   incomplete (it only sees current-interval summaries), so any
   conflict it misses — e.g. against the carried merge index — is
   still caught by the merge below, and commit mode doubles as the
   differential oracle for eager mode's verdicts. *)

open Privateer_machine
open Privateer_interp
open Privateer_analysis
open Privateer_transform
open Privateer_runtime

(* Everything one worker cohort's commits need; rebuilt at each
   (re)spawn because the reduction bases are read from the main
   process at that point (and so the carried merge index restarts with
   the cohort — squashed contributions must not leave entries
   behind). *)
type ctx = {
  env : Worker.env;
  ranges : (int * int * Privateer_ir.Ast.binop) list; (* redux heap ranges *)
  reg_ops : (string * Privateer_ir.Ast.binop) list; (* register reductions *)
  redux_base : (int * Value.t) list; (* absolute redux words at spawn *)
  reg_base : (string * Value.t) list; (* redux register values at spawn *)
  io : Deferred_io.t;
  emit_main : string -> unit;
  serial_commit : bool;
  pool : Privateer_support.Domain_pool.t option;
      (* host-domain pool for checkpoint extraction, interval reset
         and spawn setup; None = sequential *)
  controller : Host_controller.t option;
      (* per-stage host-parallelism policy; None = pre-controller
         behavior (parallel whenever the pool exists) *)
  page_pool : Page_pool.t option;
      (* shadow-page buffer pool for swap-retirement at interval
         reset; None = in-place rewrite *)
  merge_state : Checkpoint.merge_state;
      (* word -> writer index carried across this cohort's intervals *)
}

let make_ctx (env : Worker.env) (st : Interp.t) fr spec ~io ~emit_main ~serial_commit
    ~pool ?controller ~page_pool ~merge_shards () =
  let ranges = Worker.redux_ranges st spec in
  let reg_ops = Worker.reduction_regs spec in
  { env; ranges; reg_ops; redux_base = Worker.read_redux_base st ranges;
    reg_base =
      List.map (fun (name, _) -> (name, Hashtbl.find fr.Interp.locals name)) reg_ops;
    io; emit_main; serial_commit; pool; controller; page_pool;
    merge_state = Checkpoint.create_merge_state ~shards:merge_shards () }

(* Index work performed by this cohort's carried merge index — a
   per-ctx counter, so concurrent pipelines in one process cannot
   cross-contaminate each other's regression baselines. *)
let index_ops ctx = Checkpoint.index_ops ctx.merge_state

let write_value_word machine addr (v : Value.t) =
  let bits, is_float = Value.to_bits v in
  Machine.write_word machine addr bits is_float

(* Contribution collection: each worker's interval state plus the
   page-granular copy cost on its clock.  The extraction scans fan out
   over the ctx's domain pool (per worker and per page chunk) when one
   is configured; the simulated copy cost is charged identically
   either way — host parallelism never moves the cycle model. *)
let collect ctx workers ~interval_start =
  let cm = ctx.env.Worker.cm in
  let stats = ctx.env.Worker.stats in
  let reqs =
    List.map
      (fun (w : Worker.t) ->
        { Checkpoint.req_worker = w.w_id; req_machine = w.w_st.machine;
          req_redux_ranges = ctx.ranges;
          req_reg_partials =
            List.map
              (fun (name, _) -> (name, Hashtbl.find w.w_frame.Interp.locals name))
              ctx.reg_ops })
      workers
  in
  (* The controller sees the stage's exact job size — the marked-byte
     total extract computes anyway — through the [plan] hook, so it can
     record units for the EWMA even when it decides sequential. *)
  let chosen = ref None in
  let plan =
    match ctx.controller with
    | None -> None
    | Some hc ->
      Some
        (fun ~pages:_ ~marked ->
          let d = Host_controller.decide hc Host_controller.Extract ~units:marked in
          chosen := Some (d, marked);
          if d.Host_controller.par then d.Host_controller.width else 1)
  in
  let t0 = Privateer_support.Clock.now_ns () in
  let contribs = Checkpoint.extract ?pool:ctx.pool ?plan ~interval_start reqs in
  let ns = Privateer_support.Clock.now_ns () -. t0 in
  stats.ns_extract <- stats.ns_extract +. ns;
  (match (ctx.controller, !chosen) with
  | Some hc, Some (d, marked) ->
    let par = d.Host_controller.par && ctx.pool <> None in
    if par then stats.par_extracts <- stats.par_extracts + 1
    else stats.seq_extracts <- stats.seq_extracts + 1;
    Host_controller.note hc Host_controller.Extract ~units:marked ~par ~ns
  | _ ->
    if ctx.pool <> None then stats.par_extracts <- stats.par_extracts + 1
    else stats.seq_extracts <- stats.seq_extracts + 1);
  List.iter2
    (fun (w : Worker.t) (c : Checkpoint.contribution) ->
      let copy_cost =
        cm.c_checkpoint_base + (c.Checkpoint.pages_touched * cm.c_checkpoint_page)
      in
      w.w_clock <- w.w_clock + copy_cost;
      stats.cyc_checkpoint <- stats.cyc_checkpoint + copy_cost)
    workers contribs;
  contribs

(* Phase-2 validation + last-writer-wins merge through the cohort's
   carried, address-sharded index; the per-shard fill / validate /
   sweep jobs run on the ctx's domain pool when one is configured.
   The per-phase host time is folded into the run's Stats so the CLI
   and bench can attribute merge cost (host-side instrumentation only
   — never simulated state). *)
let merge ctx contribs =
  let stats = ctx.env.Worker.stats in
  (* Units for the controller: this interval's index entries — every
     contributed write plus every live-in probe.  Write-free merges
     short-circuit inside [Checkpoint.merge]; deciding (or noting) on
     them would poison the sequential EWMA with near-zero costs, so
     they bypass the controller entirely. *)
  let units =
    List.fold_left
      (fun acc (c : Checkpoint.contribution) ->
        acc + Hashtbl.length c.Checkpoint.writes
        + Hashtbl.length c.Checkpoint.live_in_reads)
      0 contribs
  in
  let have_writes =
    List.exists
      (fun (c : Checkpoint.contribution) -> Hashtbl.length c.Checkpoint.writes > 0)
      contribs
  in
  let d =
    match ctx.controller with
    | Some hc when have_writes ->
      Some (Host_controller.decide hc Host_controller.Merge ~units)
    | Some _ | None -> None
  in
  let before = Checkpoint.phase_timings ctx.merge_state in
  let t0 = Privateer_support.Clock.now_ns () in
  let m =
    match d with
    | Some dec ->
      Checkpoint.merge ~state:ctx.merge_state
        ?pool:(if dec.Host_controller.par then ctx.pool else None)
        ~jobs:dec.Host_controller.width contribs
    | None -> Checkpoint.merge ~state:ctx.merge_state ?pool:ctx.pool contribs
  in
  let ns = Privateer_support.Clock.now_ns () -. t0 in
  (match (ctx.controller, d) with
  | Some hc, Some dec ->
    let par = dec.Host_controller.par && ctx.pool <> None in
    if par then stats.par_merges <- stats.par_merges + 1
    else stats.seq_merges <- stats.seq_merges + 1;
    Host_controller.note hc Host_controller.Merge ~units ~par ~ns
  | _, _ ->
    if have_writes then
      if ctx.pool <> None then stats.par_merges <- stats.par_merges + 1
      else stats.seq_merges <- stats.seq_merges + 1);
  let after = Checkpoint.phase_timings ctx.merge_state in
  stats.ns_merge_fill <-
    stats.ns_merge_fill +. (after.Checkpoint.fill_ns -. before.Checkpoint.fill_ns);
  stats.ns_merge_validate <-
    stats.ns_merge_validate
    +. (after.Checkpoint.validate_ns -. before.Checkpoint.validate_ns);
  stats.ns_merge_sweep <-
    stats.ns_merge_sweep
    +. (after.Checkpoint.sweep_ns -. before.Checkpoint.sweep_ns);
  m

(* Commit a cleanly merged interval [lo, hi) into the main process.
   Returns the simulated time at which the checkpoint retires. *)
let commit_interval ctx (st : Interp.t) fr workers (m : Checkpoint.merged) ~lo ~hi =
  let cm = ctx.env.Worker.cm in
  let stats = ctx.env.Worker.stats in
  (* Overlay private bytes, absolute reduction values, deferred output. *)
  Checkpoint.apply_overlay st.machine m;
  List.iter
    (fun (addr, v) -> write_value_word st.machine addr v)
    (Checkpoint.merge_redux ~redux_ranges:ctx.ranges ~base:ctx.redux_base
       m.Checkpoint.contributions);
  List.iter
    (fun (name, v) -> Hashtbl.replace fr.Interp.locals name v)
    (Checkpoint.merge_reg_partials ~ops:ctx.reg_ops ~base:ctx.reg_base
       m.Checkpoint.contributions);
  Deferred_io.commit_range ctx.io ~lo ~hi ~sink:ctx.emit_main;
  stats.checkpoints <- stats.checkpoints + 1;
  (* Metadata reset + dirty clear per worker.  The reset's host work
     fans out over the ctx's domain pool and retires fully-timestamped
     pages through the shadow-page pool; the simulated per-page charge
     is identical either way. *)
  List.iter
    (fun (w : Worker.t) ->
      let chosen = ref None in
      let plan =
        match ctx.controller with
        | None -> None
        | Some hc ->
          Some
            (fun ~jobs ->
              let d = Host_controller.decide hc Host_controller.Reset ~units:jobs in
              chosen := Some (d, jobs);
              if d.Host_controller.par then d.Host_controller.width else 1)
      in
      let t0 = Privateer_support.Clock.now_ns () in
      let pages =
        Shadow.reset_interval ?pool:ctx.pool ?page_pool:ctx.page_pool ?plan
          w.w_st.machine
      in
      let ns = Privateer_support.Clock.now_ns () -. t0 in
      stats.ns_reset <- stats.ns_reset +. ns;
      (match (ctx.controller, !chosen) with
      | Some hc, Some (d, jobs) ->
        let par = d.Host_controller.par && ctx.pool <> None in
        if par then stats.par_resets <- stats.par_resets + 1
        else stats.seq_resets <- stats.seq_resets + 1;
        Host_controller.note hc Host_controller.Reset ~units:jobs ~par ~ns
      | _ ->
        if ctx.pool <> None then stats.par_resets <- stats.par_resets + 1
        else stats.seq_resets <- stats.seq_resets + 1);
      let cost = pages * cm.c_reset_page in
      w.w_clock <- w.w_clock + cost;
      stats.cyc_checkpoint <- stats.cyc_checkpoint + cost;
      Memory.clear_dirty w.w_st.machine.Machine.mem)
    workers;
  (* Workers merge their own contributions into the checkpoint object
     (paper 5.2: per-checkpoint locks, no barrier); the per-page copy
     cost is already on their clocks.  The checkpoint retires when the
     last worker has added its state. *)
  let serial_tail =
    if ctx.serial_commit then cm.c_merge_page * m.Checkpoint.total_pages else 0
  in
  let checkpoint_done =
    List.fold_left (fun acc (w : Worker.t) -> max acc w.w_clock) 0 workers
    + cm.c_checkpoint_base + serial_tail
  in
  (* A serial commit stalls every worker behind the central process
     (the STMLite bottleneck). *)
  if ctx.serial_commit then
    List.iter
      (fun (w : Worker.t) -> w.w_clock <- max w.w_clock checkpoint_done)
      workers;
  checkpoint_done

(* Final commit after the last interval: allocator state, live-out
   frame scalars, join.  [last] ran the invocation's last iteration.
   Returns the invocation's end time. *)
let commit_final ctx (st : Interp.t) fr (spec : Manifest.loop_spec) workers
    ~(last : Worker.t) ~checkpoint_done =
  let cm = ctx.env.Worker.cm in
  let stats = ctx.env.Worker.stats in
  Machine.commit_allocators st.machine ~last:last.w_st.machine
    ~all:(List.map (fun (w : Worker.t) -> w.w_st.machine) workers);
  List.iter
    (fun (name, cls) ->
      match (cls : Scalars.scalar_class) with
      | Private_reg -> (
        match Hashtbl.find_opt last.w_frame.Interp.locals name with
        | Some v -> Hashtbl.replace fr.Interp.locals name v
        | None -> ())
      | Induction | Live_in | Reduction_reg _ -> ())
    spec.scalars;
  let end_time = checkpoint_done + cm.c_join in
  List.iter
    (fun (w : Worker.t) ->
      stats.cyc_join <- stats.cyc_join + max 0 (end_time - w.w_clock))
    workers;
  end_time
