(* Misspeculation recovery and robustness policies (paper section 5.3).

   Recovery squashes the failed interval (contributions and buffered
   output) and re-executes it sequentially on the main process — which
   holds exactly the last valid checkpoint — through the earliest
   misspeculated iteration; speculation then resumes.

   Two policies harden repeated misspeculation:

   - an *adaptive checkpoint period*: after a misspeculated interval
     the period halves (bounding the sequential re-execution of the
     next failure), and it doubles back toward the configured period
     after consecutive clean intervals — so clean runs are untouched
     and misspec-heavy runs pay for shorter intervals only while
     failures cluster;

   - a *per-loop misspeculation throttle*: after N misspeculations in
     one invocation the loop is demoted to non-speculative sequential
     execution for the rest of the invocation, and speculation on that
     loop stays suspended across later invocations — the paper's §5.3
     "re-enable speculative execution" discipline made explicit. *)

open Privateer_interp
open Privateer_runtime

(* Sequential (non-speculative) execution of iterations [lo, hi] on
   the main process: recovery, demotion, and preheader fallback.
   Returns the cycles consumed. *)
let run_sequentially (st : Interp.t) fr ~var ~init_value ~body ~lo ~hi =
  let saved_hooks = st.hooks in
  st.hooks <- Hooks.default;
  let c0 = st.cycles in
  for iter = lo to hi do
    Hashtbl.replace fr.Interp.locals var (Value.VInt (init_value + iter));
    Interp.exec_block st fr body
  done;
  st.hooks <- saved_hooks;
  st.cycles - c0

(* ---- adaptive checkpoint period -------------------------------------- *)

type period = {
  p_base : int; (* the configured (or auto) period *)
  p_adaptive : bool;
  mutable p_current : int;
  mutable p_clean_streak : int;
  mutable p_miss_streak : int;
}

let make_period ~adaptive k =
  let k = max 1 (min Shadow.max_interval k) in
  { p_base = k; p_adaptive = adaptive; p_current = k; p_clean_streak = 0;
    p_miss_streak = 0 }

let current_period p = p.p_current

(* Shrink once misspeculation *clusters* — two failed intervals with
   no clean one between them — so the next failure re-executes at most
   half as many iterations.  An isolated misspec does not shrink:
   paying extra checkpoints for a one-off failure never amortizes. *)
let period_on_misspec p =
  if p.p_adaptive then begin
    p.p_clean_streak <- 0;
    p.p_miss_streak <- p.p_miss_streak + 1;
    if p.p_miss_streak >= 2 then p.p_current <- max 1 (p.p_current / 2)
  end

(* Grow back after two consecutive clean intervals, toward the
   configured period (never beyond Shadow.max_interval, which
   [make_period] already enforces on the base). *)
let period_on_clean p =
  if p.p_adaptive then begin
    p.p_miss_streak <- 0;
    if p.p_current < p.p_base then begin
      p.p_clean_streak <- p.p_clean_streak + 1;
      if p.p_clean_streak >= 2 then begin
        p.p_clean_streak <- 0;
        p.p_current <- min p.p_base (p.p_current * 2)
      end
    end
  end

(* The eager validator's extra signal: unlike a merge-time violation
   (pinned to the interval's last iteration), an eager kill knows the
   distance from the interval start to the earliest violating
   iteration.  Clamp the adaptive period down to that observed
   conflict horizon, so the very next interval checkpoints right
   around where conflicts are appearing instead of waiting for
   [period_on_misspec]'s halving to catch up; the usual two-clean
   doubling grows it back once the contention passes. *)
let period_note_eager p ~interval_start ~miss_iter =
  if p.p_adaptive then
    p.p_current <- max 1 (min p.p_current (miss_iter - interval_start + 1))

(* ---- per-loop misspeculation throttle -------------------------------- *)

type throttle = {
  t_limit : int option; (* None: throttling disabled *)
  mutable t_misspecs : int; (* misspeculations this invocation *)
}

let make_throttle limit = { t_limit = limit; t_misspecs = 0 }

let throttle_note_misspec t = t.t_misspecs <- t.t_misspecs + 1

(* True once the invocation has burned through its misspeculation
   budget: demote to sequential execution and suspend the loop. *)
let should_demote t =
  match t.t_limit with None -> false | Some n -> t.t_misspecs >= n

(* ---- recovery proper -------------------------------------------------- *)

(* Squash interval [interval_start, ...) and re-execute sequentially
   through [miss_iter] (paper 5.3).  The caller resumes speculation at
   [miss_iter + 1].  Returns the recovery's sequential cycles, already
   added to [stats]. *)
let recover (env : Worker.env) (st : Interp.t) fr ~var ~init_value ~body ~io
    ~emit_main ~interval_start ~miss_iter =
  let stats = env.Worker.stats in
  stats.misspeculations <- stats.misspeculations + 1;
  Deferred_io.discard_from io ~from:interval_start;
  st.emit <- emit_main;
  let rec_cycles =
    run_sequentially st fr ~var ~init_value ~body ~lo:interval_start ~hi:miss_iter
  in
  stats.recovered_iterations <-
    stats.recovered_iterations + (miss_iter - interval_start + 1);
  stats.cyc_recovery <- stats.cyc_recovery + rec_cycles;
  rec_cycles

(* One non-speculative iteration executed because the recovered (or
   entry) state contradicts the value predictions: speculation cannot
   resume until they re-establish themselves (e.g. the queue
   drains). *)
let reestablish_step (env : Worker.env) (st : Interp.t) fr ~var ~init_value ~body
    ~iter =
  let stats = env.Worker.stats in
  let rec_cycles = run_sequentially st fr ~var ~init_value ~body ~lo:iter ~hi:iter in
  stats.recovered_iterations <- stats.recovered_iterations + 1;
  stats.cyc_recovery <- stats.cyc_recovery + rec_cycles;
  rec_cycles
