(* Worker processes and inline validation (paper section 5.1).

   Each worker owns a copy-on-write snapshot of the main process (its
   page map), a copied register frame, and a simulated clock.  Inline
   validation — separation by address tag, privacy via the shadow
   metadata machine, short-lived lifetimes by allocation balance,
   value predictions at iteration boundaries — runs through the
   interpreter hooks installed here.  Checkpoint contribution and
   recovery live in [Commit] and [Recovery]; the [Executor] driver
   wires the layers together. *)

open Privateer_ir
open Privateer_machine
open Privateer_interp
open Privateer_analysis
open Privateer_transform
open Privateer_runtime

(* The layers below the driver share this environment instead of
   reaching back into [Executor.t]. *)
type env = {
  cm : Cost_model.t;
  stats : Stats.t;
  manifest : Manifest.t;
  validate : bool;
  inject : (int -> bool) option;
  board : Conflict_board.t option;
      (* eager validation: the invocation's in-flight conflict board;
         None in commit mode *)
}

(* Per-worker simulated process. *)
type t = {
  w_id : int;
  w_st : Interp.t;
  w_frame : Interp.frame;
  mutable w_clock : int; (* absolute simulated time *)
  mutable w_cycles_mark : int; (* st.cycles at last sample *)
  mutable w_beta : int;
  mutable w_iter : int;
  mutable w_sl_balance : int;
  mutable w_instr : int; (* instrumentation cycles this iteration *)
}

exception Worker_misspec of int * Misspec.reason (* iteration, reason *)

(* ---- worker hooks ---------------------------------------------------- *)

let charge_instr w n =
  Interp.charge w.w_st n;
  w.w_instr <- w.w_instr + n

(* Eager validation: publish a private access to the conflict board
   right after its [Shadow.access] and raise on the first confirmed
   cross-worker conflict.  The board models the Speculative Threading
   Unit's always-on tracker hardware, so publication costs no
   simulated cycles — which is also what keeps violation-free eager
   runs cycle-identical to commit mode. *)
let publish (env : env) w op ~addr ~size =
  match env.board with
  | None -> ()
  | Some board -> (
    match
      Conflict_board.publish board ~worker:w.w_id ~op ~addr ~size ~iter:w.w_iter
    with
    | None -> ()
    | Some c ->
      raise
        (Misspec.Misspeculation
           (Misspec.Eager_conflict
              { addr = c.Conflict_board.c_addr;
                earliest_iter = c.Conflict_board.c_earliest_iter })))

let hooks (env : env) w : Hooks.t =
  let cm = env.cm in
  let stats = env.stats in
  let separation_check id addr =
    match Manifest.find_check env.manifest id with
    | Some { expected = Some h; elided = false; _ } ->
      charge_instr w cm.c_check_heap;
      stats.separation_checks <- stats.separation_checks + 1;
      if not (Heap.check addr h) then
        raise (Misspec.Misspeculation (Misspec.Separation { site = id; addr; expected = h }))
    | Some _ | None -> ()
  in
  let redux_ok id =
    match Manifest.find_check env.manifest id with
    | Some { redux_op = Some _; _ } -> true
    | Some _ | None -> false
  in
  let on_access ~is_read id ~addr ~size =
    separation_check id addr;
    match Heap.heap_of_addr addr with
    | Heap.Private ->
      if is_read then begin
        charge_instr w (cm.c_private_read * ((size + 7) / 8));
        stats.private_bytes_read <- stats.private_bytes_read + size;
        stats.cyc_private_read <- stats.cyc_private_read + cm.c_private_read;
        Shadow.access w.w_st.machine Shadow.Read ~addr ~size ~beta:w.w_beta;
        publish env w Shadow.Read ~addr ~size
      end
      else begin
        charge_instr w (cm.c_private_write * ((size + 7) / 8));
        stats.private_bytes_written <- stats.private_bytes_written + size;
        stats.cyc_private_write <- stats.cyc_private_write + cm.c_private_write;
        Shadow.access w.w_st.machine Shadow.Write ~addr ~size ~beta:w.w_beta;
        publish env w Shadow.Write ~addr ~size
      end
    | Heap.Read_only ->
      if not is_read then
        raise (Misspec.Misspeculation (Misspec.Foreign_heap { addr }))
    | Heap.Redux ->
      if not (redux_ok id) then
        raise (Misspec.Misspeculation (Misspec.Redux_violation { site = id; addr }))
    | Heap.Short_lived | Heap.Stack -> ()
    | Heap.Default | Heap.Unrestricted | Heap.Shadow ->
      raise (Misspec.Misspeculation (Misspec.Foreign_heap { addr }))
  in
  if not env.validate then Hooks.default
  else
    { Hooks.default with
      on_load = (fun id ~addr ~size ~value:_ -> on_access ~is_read:true id ~addr ~size);
      on_store = (fun id ~addr ~size ~value:_ -> on_access ~is_read:false id ~addr ~size);
      on_alloc =
        (fun _ ~ctx:_ _ heap ~addr:_ ~size:_ ->
          if Heap.equal_kind heap Heap.Short_lived then
            w.w_sl_balance <- w.w_sl_balance + 1);
      on_free =
        (fun _ ~addr:_ ~size:_ heap ->
          if Heap.equal_kind heap Heap.Short_lived then
            w.w_sl_balance <- w.w_sl_balance - 1);
      on_check_heap =
        (fun id ~addr heap ~ok ->
          if not ok then
            raise (Misspec.Misspeculation (Misspec.Separation { site = id; addr; expected = heap })));
      on_assert_value =
        (fun id ~observed:_ ~expected ~ok ->
          if not ok then
            raise
              (Misspec.Misspeculation
                 (Misspec.Value_prediction
                    { global = Printf.sprintf "<site %d>" id; offset = 0;
                      expected })));
      on_misspec =
        (fun id ~reason:_ ->
          raise (Misspec.Misspeculation (Misspec.Control { site = id }))) }

(* ---- value predictions ----------------------------------------------- *)

let prediction_addr (st : Interp.t) (p : Classify.prediction) =
  Hashtbl.find st.globals p.pred_global + p.pred_offset

(* Runtime-performed re-initialization of a predicted location at
   iteration start (a sanctioned private write). *)
let apply_predictions (env : env) w predictions =
  let cm = env.cm in
  List.iter
    (fun (p : Classify.prediction) ->
      let addr = prediction_addr w.w_st p in
      charge_instr w (cm.c_prediction + cm.base.c_store + cm.c_private_write);
      env.stats.private_bytes_written <- env.stats.private_bytes_written + 8;
      env.stats.cyc_private_write <- env.stats.cyc_private_write + cm.c_private_write;
      if env.validate then begin
        Shadow.access w.w_st.machine Shadow.Write ~addr ~size:8 ~beta:w.w_beta;
        publish env w Shadow.Write ~addr ~size:8
      end;
      Machine.set_int w.w_st.machine addr p.pred_value)
    predictions

(* End-of-iteration prediction validation (a sanctioned private read). *)
let validate_predictions (env : env) w predictions =
  let cm = env.cm in
  List.iter
    (fun (p : Classify.prediction) ->
      let addr = prediction_addr w.w_st p in
      charge_instr w (cm.c_prediction + cm.base.c_load + cm.c_private_read);
      env.stats.private_bytes_read <- env.stats.private_bytes_read + 8;
      env.stats.cyc_private_read <- env.stats.cyc_private_read + cm.c_private_read;
      if env.validate then begin
        Shadow.access w.w_st.machine Shadow.Read ~addr ~size:8 ~beta:w.w_beta;
        publish env w Shadow.Read ~addr ~size:8
      end;
      let v = Machine.get_int w.w_st.machine addr in
      if v <> p.pred_value then
        raise
          (Misspec.Misspeculation
             (Misspec.Value_prediction
                { global = p.pred_global; offset = p.pred_offset;
                  expected = p.pred_value })))
    predictions

(* ---- loop-spec derived data ------------------------------------------ *)

(* Reduction registers of a loop spec. *)
let reduction_regs (spec : Manifest.loop_spec) =
  List.filter_map
    (fun (name, cls) ->
      match (cls : Scalars.scalar_class) with
      | Reduction_reg op -> Some (name, op)
      | Induction | Private_reg | Live_in -> None)
    spec.scalars

(* Redux heap ranges: (base address, byte size, operator). *)
let redux_ranges (st : Interp.t) (spec : Manifest.loop_spec) =
  Privateer_profile.Objname.Map.fold
    (fun name op acc ->
      match name with
      | Privateer_profile.Objname.Global g -> (
        match (Ast.find_global st.program g, Hashtbl.find_opt st.globals g) with
        | Some gl, Some base -> (base, max 8 gl.gbytes, op) :: acc
        | _ -> acc)
      | Privateer_profile.Objname.Site _ | Privateer_profile.Objname.Unknown -> acc)
    spec.assignment.redux_ops []

(* Absolute values of the reduction words at (re)spawn time; worker
   partials are folded over these at each checkpoint. *)
let read_redux_base (st : Interp.t) ranges =
  List.concat_map
    (fun (base, size, _op) ->
      List.init ((size + 7) / 8) (fun i ->
          let addr = base + (8 * i) in
          let bits, is_float = Machine.read_word st.machine addr in
          (addr, Value.of_bits bits is_float)))
    ranges

(* ---- spawn and iteration execution ----------------------------------- *)

(* Spawn-time snapshot setup for one worker: fork (copy-on-write page
   share), frame copy, reduction re-initialization.  Everything here
   is a function of the read-only parent state and the worker index,
   so [spawn] may run these on pool domains concurrently: the only
   writes that touch shared structures are the idempotent
   [page.shared <- true] stores inside [Machine.snapshot] (every fork
   writes the same value, and each task orders its own stores before
   its own reads), plus each task's own fresh page tables.  No
   simulated state moves: clocks are a function of the index and the
   result list is in index order. *)
let setup_worker (env : env) (st : Interp.t) fr spec ranges ~now i =
  let cm = env.cm in
  let wst = Interp.fork st in
  let frame = Interp.copy_frame fr in
  (* Reduction registers restart from the operator's identity. *)
  List.iter
    (fun (name, op) ->
      Hashtbl.replace frame.Interp.locals name (Reduction.identity_value op))
    (reduction_regs spec);
  (* The reduction heap is replaced by identity-initialized pages
     (paper 3.2) — bulk word fill, one page resolution per page. *)
  List.iter
    (fun (base, size, op) ->
      let bits, is_float = Reduction.identity_bits op in
      Machine.fill_words wst.machine base ~words:((size + 7) / 8) bits is_float)
    ranges;
  Memory.clear_dirty wst.machine.Machine.mem;
  let w =
    { w_id = i; w_st = wst; w_frame = frame; w_clock = now + ((i + 1) * cm.c_fork);
      w_cycles_mark = wst.cycles; w_beta = 0; w_iter = 0; w_sl_balance = 0;
      w_instr = 0 }
  in
  wst.hooks <- hooks env w;
  w

let spawn ?pool ?controller (env : env) (st : Interp.t) fr spec ranges n_workers
    ~now =
  let cm = env.cm in
  (* The controller (when threaded down) picks sequential vs parallel
     setup from observed per-stage cost; without one a configured pool
     always fans out — the pre-controller behavior. *)
  let d =
    match controller with
    | Some hc -> Host_controller.decide hc Host_controller.Spawn ~units:n_workers
    | None -> { Host_controller.par = pool <> None; width = max_int }
  in
  let t0 = Privateer_support.Clock.now_ns () in
  let workers =
    match pool with
    | Some dp
      when d.Host_controller.par
           && Privateer_support.Domain_pool.size dp > 1
           && n_workers > 1 ->
      env.stats.par_spawns <- env.stats.par_spawns + 1;
      Privateer_support.Domain_pool.run dp
        (List.init n_workers (fun i ->
             fun () -> setup_worker env st fr spec ranges ~now i))
    | Some _ | None ->
      env.stats.seq_spawns <- env.stats.seq_spawns + 1;
      List.init n_workers (setup_worker env st fr spec ranges ~now)
  in
  let ns = Privateer_support.Clock.now_ns () -. t0 in
  env.stats.ns_spawn <- env.stats.ns_spawn +. ns;
  (match controller with
  | Some hc ->
    Host_controller.note hc Host_controller.Spawn ~units:n_workers
      ~par:(d.Host_controller.par && pool <> None && n_workers > 1)
      ~ns
  | None -> ());
  (* Stats stay off the parallel tasks: one aggregate charge, equal to
     the per-worker sum the sequential path accumulated. *)
  env.stats.cyc_spawn <-
    env.stats.cyc_spawn + (n_workers * (n_workers + 1) / 2 * cm.c_fork);
  workers

(* Execute one iteration on a worker.  Raises Worker_misspec. *)
let exec_iteration (env : env) w ~var ~init_value ~iter ~interval_start ~body
    ~predictions ~io =
  w.w_iter <- iter;
  w.w_beta <- Shadow.timestamp ~iter ~interval_start;
  w.w_sl_balance <- 0;
  w.w_instr <- 0;
  let cycles_before = w.w_st.cycles in
  w.w_st.emit <- (fun s -> Deferred_io.emit io ~iter s);
  (try
     apply_predictions env w predictions;
     Hashtbl.replace w.w_frame.Interp.locals var (Value.VInt (init_value + iter));
     Interp.exec_block w.w_st w.w_frame body;
     validate_predictions env w predictions;
     if env.validate && w.w_sl_balance <> 0 then
       raise
         (Misspec.Misspeculation (Misspec.Short_lived_escape { unfreed = w.w_sl_balance }));
     match env.inject with
     | Some f when f iter -> raise (Misspec.Misspeculation Misspec.Injected)
     | Some _ | None -> ()
   with
  | Misspec.Misspeculation r ->
    let delta = w.w_st.cycles - cycles_before in
    w.w_clock <- w.w_clock + delta;
    (* The conflict board can pin the violation to an earlier involved
       iteration than the one that observed it; recovery then
       re-executes less and resumes sooner. *)
    let miss =
      match r with
      | Misspec.Eager_conflict { earliest_iter; _ } -> min iter earliest_iter
      | _ -> iter
    in
    raise (Worker_misspec (miss, r))
  | Interp.Runtime_error msg ->
    let delta = w.w_st.cycles - cycles_before in
    w.w_clock <- w.w_clock + delta;
    raise (Worker_misspec (iter, Misspec.Worker_fault msg)));
  let delta = w.w_st.cycles - cycles_before in
  w.w_clock <- w.w_clock + delta;
  env.stats.cyc_useful <- env.stats.cyc_useful + (delta - w.w_instr);
  env.stats.iterations <- env.stats.iterations + 1
