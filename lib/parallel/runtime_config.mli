(** The unified runtime-tuning surface of the speculation engine.

    One validated record holds every knob: simulated worker count,
    host-domain parallelism, checkpoint period (fixed or adaptive),
    misspeculation throttle, iteration schedule, shadow-page pool cap,
    cost model, and the ablation switches.  {!Executor.config} is a
    re-export of {!t} (so existing [{ Executor.default_config with
    ... }] call sites keep compiling), {!make} is the validating
    builder, this module is the only reader of the [PRIVATEER_*]
    environment defaults, and {!cli_bindings} is the single table the
    CLI derives its tuning flags from. *)

(** When misspeculation is detected.  [Commit]: only at the checkpoint
    merge (the paper's two-phase validation).  [Eager]: additionally
    in-flight, through {!Privateer_runtime.Conflict_board} — the first
    observed violation squashes the interval immediately and feeds the
    adaptive checkpoint period.  Final outputs, results and violation
    verdicts are byte-identical in both modes (commit mode is the
    differential oracle); the eager-only counters are listed in the
    determinism-contract table of [docs/RUNTIME.md]. *)
type validation = Commit | Eager

val validation_of_string : string -> validation option
(** ["commit"] / ["eager"] (case-insensitive); [None] otherwise. *)

val validation_to_string : validation -> string

type t = {
  workers : int;  (** simulated worker processes (> 0) *)
  host_domains : int;
      (** host-side parallelism in [\[1, 64\]]: checkpoint extraction,
          interval reset, and spawn-time snapshot setup fan out over a
          pool of this many OCaml domains; [1] keeps the fully
          sequential reference path.  Host-only — simulated cycles and
          all committed state are byte-identical at any setting.
          Default: [PRIVATEER_HOST_DOMAINS] or 1. *)
  merge_shards : int;
      (** address-shard count of the checkpoint merge's writer index
          in [\[1, 64\]]: the merge's fill / phase-2 validate / sweep
          passes run as one job per shard on the host pool.  Host-only
          — verdicts and overlays are byte-identical at any setting.
          Default: [PRIVATEER_MERGE_SHARDS] or
          [Checkpoint.default_shards] (8). *)
  pool_kind : Privateer_support.Domain_pool.kind;
      (** scheduler behind the host-domain pool: [Work_stealing]
          (per-domain deques; the default) or [Single_queue] (the
          legacy single mutex queue, kept as the differential-testing
          oracle).  Host-only, like [host_domains].  Default:
          [PRIVATEER_POOL_KIND] (["work-stealing"] or ["legacy"]) or
          work-stealing. *)
  host_controller : Host_controller.mode;
      (** per-stage host-parallelism policy: [Auto] measures each
          stage's sequential and parallel cost and fans out only where
          parallelism wins; [Always] reproduces the pre-controller
          behavior (parallel whenever a pool exists); [Never] forces
          the sequential reference path.  Host-only — simulated cycles
          and verdicts are byte-identical at any setting.  Default:
          [PRIVATEER_HOST_CONTROLLER] or [Auto]. *)
  schedule : Schedule.t;  (** iteration-assignment policy *)
  checkpoint_period : int option;
      (** [None]: auto (aim ~6 checkpoints per invocation) *)
  adaptive_period : bool;
      (** shrink the period after a misspeculated interval, grow it
          back after clean ones *)
  throttle : int option;
      (** [Some n]: demote a loop to sequential execution after [n]
          misspeculations in one invocation *)
  pool_cap : int;
      (** shadow-page pool free-list cap ([>= 0] or [Page_pool.auto]):
          fully-timestamped shadow pages are retired by buffer swap at
          interval reset and up to this many refilled buffers are kept
          for recycling.  [0] disables pooling; [Page_pool.unbounded]
          never evicts; [Page_pool.auto] learns a cap from an EWMA of
          recent retirement footprints.  Host-only, like
          [host_domains].  Default: [PRIVATEER_SHADOW_POOL_CAP]
          (integer or ["auto"]) or unbounded. *)
  costs : Cost_model.t;
  inject : (int -> bool) option;
      (** injected misspeculation, by iteration *)
  validate : bool;  (** [false]: disable all validation (ablation) *)
  validation : validation;
      (** misspeculation-detection mode: {!Commit} (merge-time only,
          the default) or {!Eager} (in-flight conflict board with
          mid-interval squash; the merge stays on as the backstop).
          Default: [PRIVATEER_VALIDATION] or [Commit]. *)
  serial_commit : bool;
      (** model an STMLite-style central serial commit (ablation) *)
  max_inflight : int;
      (** job server: maximum concurrently-running jobs in [\[1, 64\]],
          further clamped to the host core count at serve time (on a
          1-core host jobs run effectively sequentially).  Host-only —
          per-job results are byte-identical at any setting.  Default:
          [PRIVATEER_MAX_INFLIGHT] or 4. *)
  queue_cap : int;
      (** job server: admission-control bound ([>= 0]) on the
          queued-but-not-running backlog; a full queue blocks [submit]
          and rejects [try_submit].  [0] means unbounded.  Default:
          [PRIVATEER_QUEUE_CAP] or 0. *)
  profilers : string list;
      (** profilers to run on the training pass: a subset of
          [Profiler.available ()] (["ptr"], ["lifetime"], ["flow"],
          ["value"], ["exec"]), [["all"]] for every registered one, or
          [["reference"]] for the monolithic oracle.  Queries of a
          disabled profiler answer empty, so restrict only when the
          downstream passes don't need them.  Default:
          [PRIVATEER_PROFILERS] (comma-separated) or [["all"]]. *)
}

val default_host_domains : int
(** The [PRIVATEER_HOST_DOMAINS] environment default (1 when unset). *)

val default_merge_shards : int
(** The [PRIVATEER_MERGE_SHARDS] environment default
    ([Checkpoint.default_shards] when unset). *)

val default_pool_cap : int
(** The [PRIVATEER_SHADOW_POOL_CAP] environment default (unbounded
    when unset; the string ["auto"] selects [Page_pool.auto]). *)

val default_pool_kind : Privateer_support.Domain_pool.kind
(** The [PRIVATEER_POOL_KIND] environment default (work-stealing when
    unset or unparseable). *)

val default_host_controller : Host_controller.mode
(** The [PRIVATEER_HOST_CONTROLLER] environment default ([Auto] when
    unset or unparseable). *)

val default_validation : validation
(** The [PRIVATEER_VALIDATION] environment default ([Commit] when
    unset or unparseable). *)

val parse_pool_cap : string -> int option
(** Parse a pool-cap string: a non-negative integer, or ["auto"] for
    [Page_pool.auto].  [None] on anything else. *)

val default_profilers : string list
(** The [PRIVATEER_PROFILERS] environment default ([["all"]] when
    unset or unparseable). *)

val parse_profilers : string -> (string list, string) result
(** Parse a comma-separated profiler list against
    [Profiler.available ()] plus ["all"] and ["reference"]
    (["reference"] only alone). *)

val default : t
(** Every field at its documented default (environment-sensitive for
    [host_domains] and [pool_cap]). *)

(** Reject configurations that would fail deep inside an invocation.
    @raise Invalid_argument naming the offending field. *)
val validate : t -> unit

(** Builder: {!default} with the given fields replaced, validated.
    @raise Invalid_argument on an invalid combination. *)
val make :
  ?workers:int ->
  ?host_domains:int ->
  ?merge_shards:int ->
  ?pool_kind:Privateer_support.Domain_pool.kind ->
  ?host_controller:Host_controller.mode ->
  ?schedule:Schedule.t ->
  ?checkpoint_period:int option ->
  ?adaptive_period:bool ->
  ?throttle:int option ->
  ?pool_cap:int ->
  ?costs:Cost_model.t ->
  ?inject:(int -> bool) option ->
  ?validate:bool ->
  ?validation:validation ->
  ?serial_commit:bool ->
  ?max_inflight:int ->
  ?queue_cap:int ->
  ?profilers:string list ->
  unit ->
  t

(** {2 CLI flag bindings}

    One entry per string-expressible tunable.  A CLI derives one
    optional string argument per entry ([b_flag_like] entries accept
    the bare flag as "true") and folds the passed values over a base
    config with {!apply_bindings}; adding a knob to the table is the
    whole CLI change. *)

type binding = {
  b_flags : string list;  (** Cmdliner-style names, e.g. ["host-domains"] *)
  b_docv : string;
  b_doc : string;
  b_flag_like : bool;
  b_apply : t -> string -> (t, string) result;
}

val cli_bindings : binding list

(** Fold (binding, passed value) pairs over [base]; [None] values
    leave their field untouched; the first parse error wins. *)
val apply_bindings :
  t -> (binding * string option) list -> (t, string) result
