(* Byte-addressable memory with 4 KiB pages, copy-on-write snapshots,
   and per-heap page indexes.

   This stands in for the paper's POSIX shm/mmap substrate: each
   simulated worker process owns a page table; [snapshot] gives a
   child the parent's pages with copy-on-write semantics, exactly the
   mechanism the Privateer runtime uses to replicate a logical heap's
   storage without changing virtual addresses (paper section 5.1).

   The page table is bucketed by the 3-bit heap tag in address bits
   44-46: one bank (hashtable) and one dirty set per logical heap.
   Bulk consumers (checkpoint extraction, shadow metadata reset) walk
   exactly one bank instead of filtering a global table, and each page
   carries summary flags the shadow layer maintains so scans can skip
   pages wholesale.  The flags over-approximate content ("may
   contain"); a clear flag is a proof of absence, a set flag only an
   invitation to scan.

   Unmapped pages read as zero, so the shadow heap's metadata starts
   at code 0 (live-in) with no explicit initialization, as in the
   paper.

   Because the interpreter is dynamically typed, each 8-byte-aligned
   word carries a one-byte "float tag" recording whether the last full
   word store was a float; partial (byte) stores clear the tag. *)

open Privateer_ir

let page_shift = 12
let page_size = 1 lsl page_shift
let words_per_page = page_size / 8

(* Address bits [tag_shift, tag_shift + tag_bits) select the logical
   heap; in a page number (addr lsr page_shift) the same tag sits
   [page_shift] bits lower. *)
let heap_shift = Heap.tag_shift - page_shift
let n_heaps = 1 lsl Heap.tag_bits
let tag_of_key key = (key lsr heap_shift) land (n_heaps - 1)

type page = {
  mutable bytes : Bytes.t;
      (* mutable only for [swap_bytes]: the interval-reset fast path
         retires a fully-timestamped shadow page by exchanging its
         backing store with a pooled pre-filled buffer *)
  ftags : Bytes.t;
  mutable shared : bool;
      (* true when this page object may be referenced by another page
         table; a write must clone first (copy-on-write). *)
  mutable any_timestamp : bool; (* may hold shadow timestamps (>= 3) *)
  mutable any_live_in_read : bool; (* may hold read-live-in marks (2) *)
  mutable written_this_interval : bool; (* mirrors the dirty set *)
  mutable timestamp_bytes : int;
      (* exact count of shadow timestamp bytes (metadata >= 3) on this
         page, maintained by the shadow layer (Shadow.access adds,
         reset zeroes).  [timestamp_bytes = page_size] proves the page
         is fully timestamped, enabling the swap-and-fill retirement;
         unlike the [any_*] flags this is a count, not a hint, so only
         the shadow layer may write metadata on counted pages. *)
  mutable live_in_bytes : int;
      (* exact count of read-live-in marks (metadata = 2) on this
         page, the read-side mirror of [timestamp_bytes].  Together
         the two counts bound the marked bytes on a page, letting
         checkpoint extraction stop a page scan as soon as all marks
         have been found.  Marks survive the interval reset (live-in
         reads accumulate across the cohort), so unlike
         [timestamp_bytes] this count is never bulk-zeroed. *)
}

type t = {
  banks : (int, page) Hashtbl.t array; (* heap tag -> page number -> page *)
  dirty : (int, unit) Hashtbl.t array; (* heap tag -> dirty page numbers *)
}

let create () =
  { banks = Array.init n_heaps (fun _ -> Hashtbl.create 16);
    dirty = Array.init n_heaps (fun _ -> Hashtbl.create 8) }

let fresh_page () =
  { bytes = Bytes.make page_size '\000'; ftags = Bytes.make words_per_page '\000';
    shared = false; any_timestamp = false; any_live_in_read = false;
    written_this_interval = false; timestamp_bytes = 0; live_in_bytes = 0 }

(* The clone inherits the summary flags and the exact mark counts:
   they describe page content, which the copy shares at clone time. *)
let clone_page p =
  { bytes = Bytes.copy p.bytes; ftags = Bytes.copy p.ftags; shared = false;
    any_timestamp = p.any_timestamp; any_live_in_read = p.any_live_in_read;
    written_this_interval = p.written_this_interval;
    timestamp_bytes = p.timestamp_bytes; live_in_bytes = p.live_in_bytes }

(* Copy-on-write child: shares every current page with the parent.
   Both sides will clone a shared page on first write. *)
let snapshot t =
  let child = create () in
  Array.iteri
    (fun tag bank ->
      let cbank = child.banks.(tag) in
      Hashtbl.iter
        (fun key page ->
          page.shared <- true;
          Hashtbl.replace cbank key page)
        bank)
    t.banks;
  child

let page_of_addr addr = addr lsr page_shift
let offset_of_addr addr = addr land (page_size - 1)
let base_of_page key = key lsl page_shift

let page_bytes p = p.bytes
let any_timestamp p = p.any_timestamp
let any_live_in_read p = p.any_live_in_read
let written_this_interval p = p.written_this_interval
let flag_timestamp p = p.any_timestamp <- true
let flag_live_in_read p = p.any_live_in_read <- true

(* Clearing the timestamp flag is a proof of absence, so the exact
   count falls to zero with it. *)
let clear_timestamp_flag p =
  p.any_timestamp <- false;
  p.timestamp_bytes <- 0

let timestamp_bytes p = p.timestamp_bytes
let add_timestamp_bytes p n = p.timestamp_bytes <- p.timestamp_bytes + n
let live_in_bytes p = p.live_in_bytes
let add_live_in_bytes p n = p.live_in_bytes <- p.live_in_bytes + n

(* Exchange the page's backing store for [replacement], returning the
   old buffer.  Only legal on an unshared page (from [touch_page]): a
   shared page's buffer is still referenced by another page table. *)
let swap_bytes p replacement =
  assert (not p.shared && Bytes.length replacement = page_size);
  let old = p.bytes in
  p.bytes <- replacement;
  old

(* Page for reading: never allocates; None means all-zero. *)
let find_page t addr =
  let key = page_of_addr addr in
  Hashtbl.find_opt t.banks.(tag_of_key key) key

(* Page for writing: allocates or clones as needed, marks dirty. *)
let touch_page t addr =
  let key = page_of_addr addr in
  let tag = tag_of_key key in
  Hashtbl.replace t.dirty.(tag) key ();
  let bank = t.banks.(tag) in
  match Hashtbl.find_opt bank key with
  | None ->
    let p = fresh_page () in
    p.written_this_interval <- true;
    Hashtbl.replace bank key p;
    p
  | Some p when p.shared ->
    let p' = clone_page p in
    p'.written_this_interval <- true;
    Hashtbl.replace bank key p';
    p'
  | Some p ->
    p.written_this_interval <- true;
    p

let read_byte t addr =
  match find_page t addr with
  | None -> 0
  | Some p -> Char.code (Bytes.get p.bytes (offset_of_addr addr))

let write_byte t addr v =
  let p = touch_page t addr in
  let off = offset_of_addr addr in
  Bytes.set p.bytes off (Char.chr (v land 0xff));
  (* A partial store invalidates the word's float tag. *)
  Bytes.set p.ftags (off lsr 3) '\000'

(* Raw 8-byte little-endian read; [is_float] is the word's float tag
   (only meaningful for aligned access within one page). *)
let read_word t addr =
  let off = offset_of_addr addr in
  if off land 7 = 0 then
    match find_page t addr with
    | None -> (0L, false)
    | Some p ->
      (Bytes.get_int64_le p.bytes off, Bytes.get p.ftags (off lsr 3) <> '\000')
  else begin
    (* Unaligned (possibly page-crossing): assemble byte by byte. *)
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (read_byte t (addr + i)))
    done;
    (!v, false)
  end

let write_word t addr bits is_float =
  let off = offset_of_addr addr in
  if off land 7 = 0 then begin
    let p = touch_page t addr in
    Bytes.set_int64_le p.bytes off bits;
    Bytes.set p.ftags (off lsr 3) (if is_float then '\001' else '\000')
  end
  else
    for i = 0 to 7 do
      write_byte t (addr + i)
        (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done

(* ---- bulk API --------------------------------------------------------- *)

let fold_pages t ~heap ~init ~f =
  Hashtbl.fold (fun key page acc -> f ~key page acc) t.banks.(Heap.tag heap) init

let mapped_page_count t ~heap = Hashtbl.length t.banks.(Heap.tag heap)

let iter_range t ~lo ~hi ~f =
  let addr = ref lo in
  while !addr < hi do
    let off = offset_of_addr !addr in
    let chunk = min (hi - !addr) (page_size - off) in
    f ~base:(!addr - off) ~lo:off ~hi:(off + chunk) (find_page t !addr);
    addr := !addr + chunk
  done

let fill_words t addr ~words bits is_float =
  if addr land 7 <> 0 then
    for w = 0 to words - 1 do
      write_word t (addr + (8 * w)) bits is_float
    done
  else begin
    let ftag = if is_float then '\001' else '\000' in
    let pos = ref addr in
    let remaining = ref words in
    while !remaining > 0 do
      let off = offset_of_addr !pos in
      let n = min !remaining ((page_size - off) / 8) in
      let p = touch_page t !pos in
      for w = 0 to n - 1 do
        Bytes.set_int64_le p.bytes (off + (8 * w)) bits
      done;
      Bytes.fill p.ftags (off lsr 3) n ftag;
      pos := !pos + (8 * n);
      remaining := !remaining - n
    done
  end

let blit ~src ~src_addr ~dst ~dst_addr ~len =
  if len > 0 then
    if (src_addr lor dst_addr lor len) land 7 <> 0 then
      (* Unaligned: byte-wise fallback (loses float tags, as any
         partial store does). *)
      for i = 0 to len - 1 do
        write_byte dst (dst_addr + i) (read_byte src (src_addr + i))
      done
    else begin
      let copied = ref 0 in
      while !copied < len do
        let sa = src_addr + !copied and da = dst_addr + !copied in
        let soff = offset_of_addr sa and doff = offset_of_addr da in
        let n = min (len - !copied) (min (page_size - soff) (page_size - doff)) in
        let dp = touch_page dst da in
        (match find_page src sa with
        | Some sp ->
          Bytes.blit sp.bytes soff dp.bytes doff n;
          Bytes.blit sp.ftags (soff lsr 3) dp.ftags (doff lsr 3) (n lsr 3)
        | None ->
          Bytes.fill dp.bytes doff n '\000';
          Bytes.fill dp.ftags (doff lsr 3) (n lsr 3) '\000');
        copied := !copied + n
      done
    end

(* ---- dirty tracking --------------------------------------------------- *)

let dirty_pages ?heap t =
  match heap with
  | Some h -> Hashtbl.fold (fun k () acc -> k :: acc) t.dirty.(Heap.tag h) []
  | None ->
    Array.fold_left
      (fun acc d -> Hashtbl.fold (fun k () a -> k :: a) d acc)
      [] t.dirty

let clear_dirty t =
  Array.iteri
    (fun tag d ->
      if Hashtbl.length d > 0 then begin
        let bank = t.banks.(tag) in
        Hashtbl.iter
          (fun key () ->
            match Hashtbl.find_opt bank key with
            | Some p -> p.written_this_interval <- false
            | None -> ())
          d;
        Hashtbl.reset d
      end)
    t.dirty

let dirty_count t = Array.fold_left (fun acc d -> acc + Hashtbl.length d) 0 t.dirty

(* Install [src]'s page [key] into [dst] (used by checkpoint commit and
   recovery).  The page is copied so later writes don't alias. *)
let copy_page_into ~dst ~src key =
  let tag = tag_of_key key in
  (match Hashtbl.find_opt src.banks.(tag) key with
  | None -> Hashtbl.remove dst.banks.(tag) key
  | Some p -> Hashtbl.replace dst.banks.(tag) key (clone_page p));
  Hashtbl.replace dst.dirty.(tag) key ()

(* All page numbers mapped in [t] (zero pages excluded). *)
let mapped_pages t =
  Array.fold_left
    (fun acc bank -> Hashtbl.fold (fun k _ a -> k :: a) bank acc)
    [] t.banks

(* ---- comparison ------------------------------------------------------- *)

(* All-zero check of [lo, hi) within one page, word-wise. *)
let zero_chunk bytes lo hi =
  let ok = ref true in
  let i = ref lo in
  while !ok && !i < hi do
    if !i land 7 = 0 && hi - !i >= 8 then begin
      if Bytes.get_int64_le bytes !i <> 0L then ok := false;
      i := !i + 8
    end
    else begin
      if Bytes.get bytes !i <> '\000' then ok := false;
      incr i
    end
  done;
  !ok

let equal_chunk ba bb lo hi =
  let ok = ref true in
  let i = ref lo in
  while !ok && !i < hi do
    if !i land 7 = 0 && hi - !i >= 8 then begin
      if Bytes.get_int64_le ba !i <> Bytes.get_int64_le bb !i then ok := false;
      i := !i + 8
    end
    else begin
      if Bytes.get ba !i <> Bytes.get bb !i then ok := false;
      incr i
    end
  done;
  !ok

(* Byte-for-byte equality of an address range across two memories;
   unmapped pages compare as zero.  One page resolution per page and
   word-granular comparison: stack-safe and ~8x fewer steps than the
   old byte recursion. *)
let equal_range a b lo hi =
  let ok = ref true in
  let addr = ref lo in
  while !ok && !addr < hi do
    let off = offset_of_addr !addr in
    let chunk = min (hi - !addr) (page_size - off) in
    (match (find_page a !addr, find_page b !addr) with
    | None, None -> ()
    | Some p, None | None, Some p -> if not (zero_chunk p.bytes off (off + chunk)) then ok := false
    | Some p, Some q ->
      (* Shared COW pages are physically equal. *)
      if p != q then
        if off = 0 && chunk = page_size then begin
          if not (Bytes.equal p.bytes q.bytes) then ok := false
        end
        else if not (equal_chunk p.bytes q.bytes off (off + chunk)) then ok := false);
    addr := !addr + chunk
  done;
  !ok

(* Compare the full mapped footprint of two memories. *)
let equal_footprint a b =
  let keys = List.sort_uniq compare (mapped_pages a @ mapped_pages b) in
  List.for_all
    (fun key ->
      let lo = base_of_page key in
      equal_range a b lo (lo + page_size))
    keys
