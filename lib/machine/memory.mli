(** Byte-addressable memory with 4 KiB pages, copy-on-write snapshots,
    and per-heap page indexes — the stand-in for the paper's POSIX
    shm/mmap substrate.

    Pages are bucketed by the 3-bit heap tag in address bits 44–46
    ([Heap.tag_shift]), so bulk operations (checkpoint extraction,
    metadata resets) visit exactly one logical heap's pages instead of
    filtering the whole page table.  Each page additionally carries
    summary flags maintained by the shadow-metadata layer
    ([any_timestamp], [any_live_in_read]) plus a [written_this_interval]
    mark maintained by the dirty tracking, letting scans skip pages
    with nothing to find.

    Unmapped pages read as zero (so shadow metadata starts at code 0,
    live-in, with no initialization).  Each 8-byte-aligned word carries
    a float tag so the dynamically-typed interpreter can round-trip
    floats; partial (byte) stores clear the tag. *)

val page_shift : int
(** log2 of the page size (12). *)

val page_size : int
(** Bytes per page (4096). *)

val words_per_page : int
(** 8-byte words per page (512). *)

(** A paged memory. *)
type t

(** A mapped page.  [page_bytes] is the live backing store: callers
    holding a page obtained from {!touch_page} may mutate it directly
    (this is what makes range-granular metadata transitions one page
    resolution per run, not per byte).  Pages from {!find_page} must be
    treated as read-only — they may be shared copy-on-write. *)
type page

val page_bytes : page -> Bytes.t
(** The page's backing store (see {!type-page} for the mutation
    rules). *)

(** Summary flags.  The [any_timestamp] / [any_live_in_read] flags are
    set by the shadow layer when it writes the corresponding metadata
    codes and let [fold_pages] consumers skip pages wholesale; they
    over-approximate page content (a set flag means "may contain"),
    and [clear_timestamp_flag] re-arms the approximation after a
    metadata reset.  [written_this_interval] mirrors membership in the
    dirty set and is cleared by {!clear_dirty}. *)

val any_timestamp : page -> bool
val any_live_in_read : page -> bool
val written_this_interval : page -> bool

val flag_timestamp : page -> unit
val flag_live_in_read : page -> unit

val clear_timestamp_flag : page -> unit
(** Clears the timestamp flag {i and} zeroes {!timestamp_bytes}: the
    caller asserts the page holds no timestamps, so the exact count
    falls with the hint. *)

val timestamp_bytes : page -> int
(** Exact count of shadow timestamp bytes (metadata [>= 3]) on this
    page.  Unlike the [any_*] flags this is a count, not a hint: it is
    maintained solely by the shadow layer ([Shadow.access] adds,
    interval reset zeroes via {!clear_timestamp_flag}) and survives
    copy-on-write cloning.  [timestamp_bytes p = page_size] proves the
    page is fully timestamped, enabling the pooled swap-and-fill
    retirement on the interval-reset path. *)

val add_timestamp_bytes : page -> int -> unit
(** Add a (possibly negative) delta to {!timestamp_bytes}.  Shadow
    layer only. *)

val live_in_bytes : page -> int
(** Exact count of read-live-in marks (metadata [= 2]) on this page —
    the read-side mirror of {!timestamp_bytes}.  Maintained solely by
    the shadow layer ([Shadow.access] adds on the live-in → read-live-in
    transition) and inherited across copy-on-write cloning.  Live-in
    marks accumulate across the whole cohort (the interval reset
    preserves them), so this count is never bulk-zeroed.  Together with
    {!timestamp_bytes} it bounds the marked bytes on a page, letting
    checkpoint extraction stop a page scan once every mark has been
    found. *)

val add_live_in_bytes : page -> int -> unit
(** Add a (possibly negative) delta to {!live_in_bytes}.  Shadow layer
    only. *)

val swap_bytes : page -> Bytes.t -> Bytes.t
(** [swap_bytes p replacement] installs [replacement] as the page's
    backing store and returns the old buffer.  Only legal on an
    unshared page (one obtained from {!touch_page} this interval);
    [replacement] must be exactly {!page_size} bytes.  This is the
    interval-reset fast path: a fully-timestamped shadow page is
    retired wholesale by exchanging its buffer with a pooled,
    pre-filled one instead of rewriting 4096 bytes in place. *)

val create : unit -> t
(** An empty memory (every read sees zero). *)

(** Copy-on-write child sharing every current page with the parent;
    either side's first write to a shared page clones it. *)
val snapshot : t -> t

val page_of_addr : int -> int
(** The page number containing an address. *)

val offset_of_addr : int -> int
(** The in-page byte offset of an address. *)

(** Base address of a page number. *)
val base_of_page : int -> int

(** The page containing [addr], for reading; [None] means all-zero.
    Never allocates or clones. *)
val find_page : t -> int -> page option

(** The page containing [addr], for writing: allocates or clones
    (copy-on-write) as needed and marks the page dirty.  Resolving the
    page once and then mutating [page_bytes] is the sanctioned bulk
    write path. *)
val touch_page : t -> int -> page

(** Read one byte (0 for unmapped memory). *)
val read_byte : t -> int -> int

(** Write one byte (low 8 bits of [v]); clears the containing word's
    float tag. *)
val write_byte : t -> int -> int -> unit

(** Raw 8-byte little-endian read: [(bits, is_float)].  The float tag
    is only meaningful for aligned, same-page access. *)
val read_word : t -> int -> int64 * bool

val write_word : t -> int -> int64 -> bool -> unit
(** Raw 8-byte little-endian write of [(bits, is_float)]; the
    counterpart of {!read_word}. *)

(** {2 Bulk API}

    These are the only sanctioned ways to walk pages; no caller should
    resolve a page per byte. *)

(** Fold over the mapped pages of one logical heap (its bank of the
    page index).  Do not map or unmap pages of the same heap from
    inside [f]; collect keys first if mutation is needed. *)
val fold_pages :
  t -> heap:Privateer_ir.Heap.kind -> init:'a -> f:(key:int -> page -> 'a -> 'a) -> 'a

(** Number of mapped pages in one heap's bank (O(1)). *)
val mapped_page_count : t -> heap:Privateer_ir.Heap.kind -> int

(** Call [f] once per page-sized chunk of [\[lo, hi)]: [f ~base ~lo ~hi
    page] where [base] is the chunk's page base address and [lo]/[hi]
    are in-page offsets.  The page is resolved once per chunk. *)
val iter_range :
  t -> lo:int -> hi:int -> f:(base:int -> lo:int -> hi:int -> page option -> unit) -> unit

(** Fill [words] 8-byte words starting at [addr] with [bits], setting
    the float tags to [is_float] — one page resolution per page
    touched.  Falls back to word stores if [addr] is unaligned. *)
val fill_words : t -> int -> words:int -> int64 -> bool -> unit

(** Word-level bulk copy of [len] bytes between memories, preserving
    float tags when [src_addr], [dst_addr] and [len] are all 8-byte
    aligned (byte-wise fallback otherwise).  Unmapped source ranges
    copy as zeros. *)
val blit : src:t -> src_addr:int -> dst:t -> dst_addr:int -> len:int -> unit

(** Pages written since the last [clear_dirty] (page numbers), across
    all heaps or restricted to one heap's bank. *)
val dirty_pages : ?heap:Privateer_ir.Heap.kind -> t -> int list

val clear_dirty : t -> unit
(** Empty the dirty set (checkpoint interval boundary). *)

val dirty_count : t -> int
(** Size of the dirty set — the checkpoint copy-cost charge. *)

(** Deep-copy [src]'s page [key] into [dst] (checkpoint restore). *)
val copy_page_into : dst:t -> src:t -> int -> unit

(** All mapped page numbers, across every heap bank. *)
val mapped_pages : t -> int list

(** Byte-for-byte equality over [\[lo, hi)]; unmapped reads as zero.
    Word-wise and stack-safe (constant stack, 8 bytes per step). *)
val equal_range : t -> t -> int -> int -> bool

(** Equality over the union of both memories' mapped pages. *)
val equal_footprint : t -> t -> bool
