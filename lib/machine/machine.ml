(* A simulated process: one page-mapped memory plus one allocator per
   logical heap.  Workers are created by [snapshot], mirroring the
   paper's fork-based worker processes whose page maps start as
   copy-on-write replicas of the parent. *)

open Privateer_ir

type t = {
  mem : Memory.t;
  allocators : Allocator.t array; (* indexed by Heap.tag *)
}

let create () =
  { mem = Memory.create ();
    allocators = Array.of_list (List.map Allocator.create Heap.all) }

let () = assert (List.length Heap.all = 8)

let allocator t heap = t.allocators.(Heap.tag heap)

let snapshot t =
  { mem = Memory.snapshot t.mem; allocators = Array.map Allocator.copy t.allocators }

let alloc t heap size = Allocator.alloc (allocator t heap) size

(* Free via the address's own tag: a pointer always names its heap. *)
let free t addr =
  let heap = Heap.heap_of_addr addr in
  (heap, Allocator.free (allocator t heap) addr)

let read_byte t addr = Memory.read_byte t.mem addr
let write_byte t addr v = Memory.write_byte t.mem addr v
let read_word t addr = Memory.read_word t.mem addr
let write_word t addr bits is_float = Memory.write_word t.mem addr bits is_float

(* Bulk accessors: one page resolution per page touched, not per word.
   [fill_words] backs the reduction-heap identity initialization at
   worker spawn; [blit] is the generic word-level range copy. *)
let fill_words t addr ~words bits is_float = Memory.fill_words t.mem addr ~words bits is_float

let blit ~src ~src_addr ~dst ~dst_addr ~len =
  Memory.blit ~src:src.mem ~src_addr ~dst:dst.mem ~dst_addr ~len

(* After a parallel region commits, the main process must not hand out
   addresses that collide with objects workers allocated and published
   through the committed state: adopt the last-iteration worker's live
   tables and the maximum bump pointer across all workers. *)
let commit_allocators t ~last ~all =
  List.iter
    (fun heap ->
      let tag = Heap.tag heap in
      let merged = Allocator.copy last.allocators.(tag) in
      List.iter (fun (m : t) -> Allocator.raise_bump merged (Allocator.bump m.allocators.(tag))) all;
      t.allocators.(tag) <- merged)
    [ Heap.Default; Heap.Private; Heap.Short_lived ]

(* Convenience accessors used by workload setup and tests: 63-bit int
   words and floats at 8-byte granularity. *)
let get_int t addr = Int64.to_int (fst (read_word t addr))
let set_int t addr v = write_word t addr (Int64.of_int v) false
let get_float t addr =
  let bits, is_float = read_word t addr in
  if is_float then Int64.float_of_bits bits else Int64.to_float bits
let set_float t addr v = write_word t addr (Int64.bits_of_float v) true
