(** The shadow-heap metadata state machine (paper Table 2).

    Each private byte has one metadata byte in the shadow heap at
    [Heap.shadow_of_private addr].  Codes: {ul
    {- [0] live-in (initial; shadow pages read as zero);}
    {- [1] old-write (written before the last checkpoint);}
    {- [2] read-live-in (confirmed at the next checkpoint's phase-2
       validation);}
    {- [3 + (i - i0)] timestamp of a write at iteration [i], where
       [i0] starts the current checkpoint interval.}} *)

val live_in : int
(** Code [0]: untouched this invocation. *)

val old_write : int
(** Code [1]: written before the last checkpoint. *)

val read_live_in : int
(** Code [2]: read before any write this invocation — a phase-2
    obligation. *)

val first_timestamp : int
(** Code [3]: the timestamp of the interval's first iteration. *)

(** Maximum iterations per checkpoint interval (253) so timestamps fit
    one byte — the paper's "at least every 253 iterations". *)
val max_interval : int

(** The timestamp byte for iteration [iter] in the interval starting
    at [interval_start]. *)
val timestamp : iter:int -> interval_start:int -> int

val is_timestamp : int -> bool
(** Whether a metadata byte encodes a write timestamp
    ([first_timestamp] or above). *)

(** Inverse of [timestamp].
    @raise Invalid_argument if the byte is not a timestamp. *)
val iteration_of_timestamp : interval_start:int -> int -> int

(** Read-only probe of one private byte's metadata on one worker
    machine: [(metadata, dirty)] where [metadata] is the current shadow
    byte ([live_in] when the shadow page is unmapped) and [dirty] is
    whether that shadow page was written this interval — the same
    dirty-page scope checkpoint extraction uses.  The eager conflict
    board ({!Conflict_board}) is the intended caller; the probe never
    promotes a page or moves a simulated cycle. *)
val probe : Privateer_machine.Machine.t -> addr:int -> int * bool

(** The two private-access kinds Table 2 distinguishes (re-export of
    {!Shadow_sig.op} so this module satisfies
    {!Shadow_sig.module-type-S} alongside {!Shadow_reference}). *)
type op = Shadow_sig.op = Read | Write

type verdict =
  | Keep  (** metadata unchanged *)
  | Update of int  (** new metadata byte *)
  | Fail of (addr:int -> Misspec.reason)  (** privacy violation *)

(** The pure transition function of the paper's Table 2;
    exhaustively unit-tested against an independent transcription. *)
val transition : op -> current:int -> beta:int -> verdict

(** Apply the transition to every metadata byte covering a private
    access on the given worker machine.  Range-granular: one page
    resolution per contiguous run, metadata transitioned directly on
    the page bytes, page summary flags raised for the checkpoint and
    reset scans, and the exact per-page timestamp-byte count
    maintained for the reset's swap-retirement path.  Byte-for-byte
    equivalent to [Shadow_reference.access] (property-tested).
    @raise Misspec.Misspeculation on a violation. *)
val access :
  Privateer_machine.Machine.t -> op -> addr:int -> size:int -> beta:int -> unit

(** Checkpoint-time reset: every timestamp becomes old-write (code 1);
    read-live-in marks are preserved.  Returns the number of mapped
    shadow pages — the unchanged simulated cost charge — while host
    work visits only pages whose [any_timestamp] summary flag is set.

    Host accelerations, neither of which moves a simulated cycle or a
    metadata byte: [pool] fans the per-page byte work (disjoint by
    construction of the per-heap page banks) over a domain pool, and
    [page_pool] retires fully-timestamped pages (exact count equal to
    [Memory.page_size]) by swapping in a pre-filled buffer instead of
    rewriting 4096 bytes, with retired buffers refilled off the
    sequential path and recycled across intervals.  [plan] is the
    host controller's hook: given the byte-work job count it returns
    the chunk width ([<= 1]: sequential even with a pool); without it
    a configured pool fans out [2 * size] ways.
    @raise Invalid_argument if [page_pool]'s fill byte is not
    [old_write]. *)
val reset_interval :
  ?pool:Privateer_support.Domain_pool.t ->
  ?page_pool:Page_pool.t ->
  ?plan:(jobs:int -> int) ->
  Privateer_machine.Machine.t ->
  int
