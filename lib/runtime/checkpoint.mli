(** Checkpoint objects and two-phase privacy validation (paper
    sections 5.1–5.2).

    Per interval, each worker contributes its speculative state; the
    merge validates cross-worker live-in reads (phase 2), combines
    private writes last-writer-wins by iteration, and folds reduction
    partials over pre-spawn base values.

    Extraction is the host-parallel stage of the runtime: every shadow
    page covers a disjoint range of private words, so the per-page
    scans fan out over a {!Privateer_support.Domain_pool} (per worker
    and per page chunk) and reassemble into contributions that are
    byte-identical to the sequential scan.  Merging carries its
    word→writer index across intervals ({!merge_state}) so per-interval
    merge cost is proportional to that interval's new entries — zero
    for a clean interval — instead of re-allocating and re-filling the
    index each time. *)

open Privateer_interp

(** One committed-candidate write: the winning iteration plus the
    word's bits and float tag as read from the worker's memory. *)
type word_write = { iter : int; bits : int64; is_float : bool }

(** One worker's interval state, as extracted from its dirty shadow
    pages. *)
type contribution = {
  worker : int;  (** the contributing worker's id *)
  writes : (int, word_write) Hashtbl.t;
      (** private word address → last write this interval *)
  live_in_reads : (int, unit) Hashtbl.t;
      (** byte addresses read as live-in (metadata 2) *)
  redux_words : (int * int64 * bool) list;
      (** reduction partial snapshot: (address, bits, float tag) *)
  reg_partials : (string * Value.t) list;
      (** register-reduction partials *)
  pages_touched : int;  (** for simulated copy-cost accounting *)
}

(** What [extract] needs from one worker: its id, its machine, the
    reduction-heap ranges to snapshot and the register partials read
    from its frame. *)
type extract_request = {
  req_worker : int;
  req_machine : Privateer_machine.Machine.t;
  req_redux_ranges : (int * int * Privateer_ir.Ast.binop) list;
  req_reg_partials : (string * Value.t) list;
}

(** Extract every worker's interval contribution by scanning the
    shadow pages each worker dirtied since the interval started
    (straight off the shadow bank's dirty index; pages without
    timestamp/read-live-in summary flags are skipped).  Shadow
    timestamps decode into iteration numbers relative to
    [interval_start].

    With [?pool] (of size > 1), the page scans run as one flat task
    list over (worker, page-chunk) pairs on the pool's domains; the
    result is byte-identical to the sequential path, which remains the
    default and the correctness oracle. *)
val extract :
  ?pool:Privateer_support.Domain_pool.t ->
  interval_start:int ->
  extract_request list ->
  contribution list

(** Single-worker [extract] — the historical entry point, kept for
    benches and tests. *)
val contribution_of_worker :
  ?pool:Privateer_support.Domain_pool.t ->
  worker:int ->
  interval_start:int ->
  Privateer_machine.Machine.t ->
  redux_ranges:(int * int * Privateer_ir.Ast.binop) list ->
  reg_partials:(string * Value.t) list ->
  contribution

(** A validated, merged checkpoint interval. *)
type merged = {
  overlay : (int, word_write) Hashtbl.t;
      (** winning (latest-iteration) write per word *)
  contributions : contribution list;
      (** kept for recovery and the final commit *)
  violation : Misspec.reason option;
      (** phase-2 conflict, if any — pinned to the smallest
          conflicting byte address, so it is deterministic across pool
          sizes *)
  total_pages : int;  (** summed page-copy charge across workers *)
}

(** The word→writer index carried across one worker cohort's
    intervals.  Because contributions are per-interval deltas, the
    index holds one interval's entries during a merge and is swept
    back to empty before the merge returns: the allocation persists,
    the content is per-interval, and a clean interval (no new writes)
    does no index work at all. *)
type merge_state

(** A fresh carried index (one per worker cohort / spawn). *)
val create_merge_state : unit -> merge_state

(** Total index mutations (inserts, multi-writer updates, removals)
    performed through this state — the observable for the
    no-work-on-clean-intervals regression test. *)
val index_ops : merge_state -> int

(** Phase-2 validation plus last-writer-wins merge.  Phase 2 is one
    per-word writer-index lookup per live-in byte (O(live-in bytes)),
    not a scan over every writer's contribution.  Passing [?state]
    reuses the carried index (cost proportional to this interval's
    entries; an interval with no new writes short-circuits index fill
    and phase-2 scan entirely); omitting it builds a fresh ephemeral
    index with identical semantics. *)
val merge : ?state:merge_state -> contribution list -> merged

(** Install a merged overlay into the main process's memory. *)
val apply_overlay : Privateer_machine.Machine.t -> merged -> unit

(** Absolute reduction values: [base op partial_1 op ... op partial_n]
    per word of the given ranges. *)
val merge_redux :
  redux_ranges:(int * int * Privateer_ir.Ast.binop) list ->
  base:(int * Value.t) list ->
  contribution list ->
  (int * Value.t) list

(** Same combination for register-reduction partials. *)
val merge_reg_partials :
  ops:(string * Privateer_ir.Ast.binop) list ->
  base:(string * Value.t) list ->
  contribution list ->
  (string * Value.t) list
