(** Checkpoint objects and two-phase privacy validation (paper
    sections 5.1–5.2).

    Per interval, each worker contributes its speculative state; the
    merge validates cross-worker live-in reads (phase 2), combines
    private writes last-writer-wins by iteration, and folds reduction
    partials over pre-spawn base values. *)

open Privateer_interp

type word_write = { iter : int; bits : int64; is_float : bool }

type contribution = {
  worker : int;
  writes : (int, word_write) Hashtbl.t; (* private word address -> last write *)
  live_in_reads : (int, unit) Hashtbl.t; (* byte addresses read as live-in *)
  redux_words : (int * int64 * bool) list; (* reduction partial snapshot *)
  reg_partials : (string * Value.t) list; (* register-reduction partials *)
  pages_touched : int; (* for copy-cost accounting *)
}

(** Extract a worker's interval contribution by scanning the shadow
    pages it dirtied since the interval started (straight off the
    shadow bank's dirty index; pages without timestamp/read-live-in
    summary flags are skipped); shadow timestamps decode into
    iteration numbers relative to [interval_start]. *)
val contribution_of_worker :
  worker:int ->
  interval_start:int ->
  Privateer_machine.Machine.t ->
  redux_ranges:(int * int * Privateer_ir.Ast.binop) list ->
  reg_partials:(string * Value.t) list ->
  contribution

type merged = {
  overlay : (int, word_write) Hashtbl.t; (* winning writes per word *)
  contributions : contribution list;
  violation : Misspec.reason option; (* phase-2 conflict, if any *)
  total_pages : int;
}

(** Phase-2 validation plus last-writer-wins merge.  Phase 2 is one
    per-word writer-index lookup per live-in byte (O(live-in bytes)),
    not a scan over every writer's contribution. *)
val merge : contribution list -> merged

(** Install a merged overlay into the main process's memory. *)
val apply_overlay : Privateer_machine.Machine.t -> merged -> unit

(** Absolute reduction values: [base op partial_1 op ... op partial_n]
    per word of the given ranges. *)
val merge_redux :
  redux_ranges:(int * int * Privateer_ir.Ast.binop) list ->
  base:(int * Value.t) list ->
  contribution list ->
  (int * Value.t) list

(** Same combination for register-reduction partials. *)
val merge_reg_partials :
  ops:(string * Privateer_ir.Ast.binop) list ->
  base:(string * Value.t) list ->
  contribution list ->
  (string * Value.t) list
