(** Checkpoint objects and two-phase privacy validation (paper
    sections 5.1–5.2).

    Per interval, each worker contributes its speculative state; the
    merge validates cross-worker live-in reads (phase 2), combines
    private writes last-writer-wins by iteration, and folds reduction
    partials over pre-spawn base values.

    Both halves of the checkpoint path are host-parallel: every shadow
    page covers a disjoint range of private words, so the per-page
    extraction scans fan out over a {!Privateer_support.Domain_pool}
    (per worker and per page chunk) and reassemble into contributions
    that are byte-identical to the sequential scan; and the merge's
    writer index is address-sharded, so its fill / phase-2 validate /
    sweep passes run as disjoint per-shard jobs on the same pool.  The
    merge state is carried across intervals ({!merge_state}) so
    per-interval merge cost is proportional to that interval's new
    entries — zero for a clean interval — instead of re-allocating and
    re-filling the index each time. *)

open Privateer_interp

(** One committed-candidate write: the winning iteration plus the
    word's bits and float tag as read from the worker's memory. *)
type word_write = { iter : int; bits : int64; is_float : bool }

val word_base : int -> int
(** The 8-byte word containing a byte address ([addr land lnot 7]) —
    the mask mapping byte-granular shadow marks onto the word-granular
    write tracking, shared by the extraction scan and the phase-2
    probe. *)

(** One worker's interval state, as extracted from its dirty shadow
    pages. *)
type contribution = {
  worker : int;  (** the contributing worker's id *)
  writes : (int, word_write) Hashtbl.t;
      (** private word address → last write this interval *)
  live_in_reads : (int, unit) Hashtbl.t;
      (** byte addresses read as live-in (metadata 2) *)
  redux_words : (int * int64 * bool) list;
      (** reduction partial snapshot: (address, bits, float tag) *)
  reg_partials : (string * Value.t) list;
      (** register-reduction partials *)
  pages_touched : int;  (** for simulated copy-cost accounting *)
}

(** What [extract] needs from one worker: its id, its machine, the
    reduction-heap ranges to snapshot and the register partials read
    from its frame. *)
type extract_request = {
  req_worker : int;
  req_machine : Privateer_machine.Machine.t;
  req_redux_ranges : (int * int * Privateer_ir.Ast.binop) list;
  req_reg_partials : (string * Value.t) list;
}

(** Extract every worker's interval contribution by scanning the
    shadow pages each worker dirtied since the interval started
    (straight off the shadow bank's dirty index; pages without
    timestamp/read-live-in summary flags are skipped).  Shadow
    timestamps decode into iteration numbers relative to
    [interval_start].

    With [?pool] (of size > 1), the page scans run as one flat task
    list over (worker, page-chunk) pairs on the pool's domains; the
    result is byte-identical to the sequential path, which remains the
    default and the correctness oracle.

    [?plan] is the host controller's hook: it receives the dirty page
    total and the exact marked-byte total (the per-page timestamp and
    live-in counts the shadow fast path maintains) and returns the
    per-worker chunk count — [<= 1] selects the sequential path even
    with a pool.  Without it, a configured pool fans out at its size.
    Host-only either way: the extracted contributions are identical. *)
val extract :
  ?pool:Privateer_support.Domain_pool.t ->
  ?plan:(pages:int -> marked:int -> int) ->
  interval_start:int ->
  extract_request list ->
  contribution list

(** Single-worker [extract] — the historical entry point, kept for
    benches and tests. *)
val contribution_of_worker :
  ?pool:Privateer_support.Domain_pool.t ->
  worker:int ->
  interval_start:int ->
  Privateer_machine.Machine.t ->
  redux_ranges:(int * int * Privateer_ir.Ast.binop) list ->
  reg_partials:(string * Value.t) list ->
  contribution

(** A validated, merged checkpoint interval. *)
type merged = {
  overlay : (int, word_write) Hashtbl.t array;
      (** winning (latest-iteration) write per word, sharded by word
          address like the writer index; access through
          {!find_overlay} / {!iter_overlay} / {!overlay_size} *)
  contributions : contribution list;
      (** kept for recovery and the final commit *)
  violation : Misspec.reason option;
      (** phase-2 conflict, if any — pinned to the smallest
          conflicting byte address, so it is deterministic across pool
          sizes and shard counts *)
  total_pages : int;  (** summed page-copy charge across workers *)
}

val overlay_size : merged -> int
(** Total words in the overlay, across all shard slices. *)

val find_overlay : merged -> int -> word_write option
(** The winning write for a word address, probing only its shard. *)

val iter_overlay : merged -> f:(int -> word_write -> unit) -> unit
(** Iterate the whole overlay.  Every word lives in exactly one shard
    slice, so callers writing disjoint words need no order
    guarantees. *)

(** The word→writer index carried across one worker cohort's
    intervals, split into address-sharded slices
    ([shard = (addr lsr 3) mod shards]) so the merge passes can run as
    disjoint per-shard jobs.  Because contributions are per-interval
    deltas, the slices hold one interval's entries during a merge and
    are swept back to empty before the merge returns: the allocations
    persist, the content is per-interval, and a clean interval (no new
    writes) does no index work at all. *)
type merge_state

val default_shards : int
(** Default shard count (8). *)

(** A fresh carried index (one per worker cohort / spawn) with
    [shards] slices (default {!default_shards}).
    @raise Invalid_argument if [shards < 1]. *)
val create_merge_state : ?shards:int -> unit -> merge_state

val shard_count : merge_state -> int

(** Total index mutations (inserts, multi-writer updates, removals)
    performed through this state — the observable for the
    no-work-on-clean-intervals regression test.  Deterministic across
    shard counts and pool sizes: each contributed word costs an
    insert, at most one multi-writer update, and a sweep removal,
    regardless of which shard or domain processes it. *)
val index_ops : merge_state -> int

(** Cumulative host wall time this state has spent per merge phase.
    Instrumentation only: host time never feeds back into simulated
    state. *)
type phase_ns = { fill_ns : float; validate_ns : float; sweep_ns : float }

val phase_timings : merge_state -> phase_ns

(** Phase-2 validation plus last-writer-wins merge, as three passes
    over the address-sharded writer index: index fill, phase-2
    validation (one O(1) probe per live-in byte, not a scan over every
    writer's contribution), and delta sweep.

    With [?pool] (size > 1) each pass runs as parallel jobs over
    contiguous shard groups on the pool's domains — [?jobs] groups,
    clamped to [1, shards] (default: one job per shard; [<= 1]
    selects the sequential path even with a pool, the host
    controller's lever).  Jobs touch only their own shards' tables,
    and the violation verdict is the minimum over per-group minima,
    so overlays, op counts and verdicts are byte-identical to the
    sequential path at any domain count, shard count, and job count.
    Passing [?state] reuses the carried index (cost proportional to
    this interval's entries; an interval with no new writes
    short-circuits all three passes entirely); omitting it builds a
    fresh ephemeral index with identical semantics. *)
val merge :
  ?state:merge_state ->
  ?pool:Privateer_support.Domain_pool.t ->
  ?jobs:int ->
  contribution list ->
  merged

(** Install a merged overlay into the main process's memory. *)
val apply_overlay : Privateer_machine.Machine.t -> merged -> unit

(** Absolute reduction values: [base op partial_1 op ... op partial_n]
    per word of the given ranges. *)
val merge_redux :
  redux_ranges:(int * int * Privateer_ir.Ast.binop) list ->
  base:(int * Value.t) list ->
  contribution list ->
  (int * Value.t) list

(** Same combination for register-reduction partials. *)
val merge_reg_partials :
  ops:(string * Privateer_ir.Ast.binop) list ->
  base:(string * Value.t) list ->
  contribution list ->
  (string * Value.t) list
