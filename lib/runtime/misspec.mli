(** Misspeculation signalling: every way speculation can fail at
    runtime, and the exception workers raise to abort. *)

type reason =
  | Separation of { site : int; addr : int; expected : Privateer_ir.Heap.kind }
      (** a pointer's tag contradicts the compiler's expected heap *)
  | Privacy_flow of { addr : int }
      (** a read returned an earlier iteration's write (Table 2) *)
  | Privacy_conservative of { addr : int }
      (** write over a read-live-in byte (possible false positive) *)
  | Short_lived_escape of { unfreed : int }
      (** short-lived objects outlived their iteration *)
  | Value_prediction of { global : string; offset : int; expected : int }
  | Control of { site : int }  (** a speculated-away branch was taken *)
  | Phase2 of { addr : int }
      (** checkpoint-time cross-worker live-in conflict *)
  | Eager_conflict of { addr : int; earliest_iter : int }
      (** the same cross-worker conflict, observed in-flight by the
          conflict board; [earliest_iter] is the earliest iteration
          known to be involved, so recovery can resume right after it *)
  | Foreign_heap of { addr : int }
      (** speculative access outside every sanctioned heap *)
  | Redux_violation of { site : int; addr : int }
      (** non-reduction access to the reduction heap *)
  | Injected  (** artificial misspeculation (Figure 9 experiments) *)
  | Worker_fault of string  (** runtime error inside a worker *)

val to_string : reason -> string

exception Misspeculation of reason
