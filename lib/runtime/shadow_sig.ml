(** The signature shared by the shadow-metadata implementations.

    Two modules implement it: the range-granular, flag-driven
    {!Shadow} (the production path) and the per-byte
    {!Shadow_reference} oracle.  Property tests functorize over
    {!module-type-S} so the same workload drives both and their
    observable effects can be compared byte for byte. *)

(** The two private-access kinds the paper's Table 2 distinguishes. *)
type op = Read | Write

module type S = sig
  (** Apply the Table-2 transition to every metadata byte covering a
      private access on the given worker machine.
      @raise Misspec.Misspeculation on a privacy violation. *)
  val access :
    Privateer_machine.Machine.t -> op -> addr:int -> size:int -> beta:int -> unit

  (** Checkpoint-time reset: every timestamp becomes old-write;
      read-live-in marks are preserved.  Returns the number of mapped
      shadow pages (the simulated cost charge — identical in every
      implementation).  [pool] fans the host work over domains,
      [page_pool] enables swap-retirement of fully-timestamped pages,
      and [plan] lets a host controller pick the fan-out width; all
      three are host-side accelerations an implementation may ignore,
      and none moves a single simulated cycle or metadata byte. *)
  val reset_interval :
    ?pool:Privateer_support.Domain_pool.t ->
    ?page_pool:Page_pool.t ->
    ?plan:(jobs:int -> int) ->
    Privateer_machine.Machine.t ->
    int
end
