(* The retained per-byte reference implementation of the shadow-heap
   metadata operations — the pre-page-index code, kept verbatim.

   It exists for two consumers:

   - the qcheck property in [test/test_props.ml], which asserts that
     the range-granular [Shadow.access] is byte-for-byte equivalent
     (final metadata, verdicts, partial updates before a failure)
     under randomized op/addr/size/beta sequences;

   - the [overhead] bench experiment, which reports the host-time
     ratio between the indexed and reference implementations
     (BENCH_overhead.json).

   It resolves a page per byte through the generic Memory accessors
   and does NOT maintain the per-page summary flags, so a machine
   driven through this module must not be handed to the flag-driven
   fast paths ([Shadow.reset_interval], checkpoint extraction). *)

open Privateer_ir
open Privateer_machine

let access machine op ~addr ~size ~beta =
  for b = addr to addr + size - 1 do
    let shadow_addr = Heap.shadow_of_private b in
    let current = Machine.read_byte machine shadow_addr in
    match Shadow.transition op ~current ~beta with
    | Shadow.Keep -> ()
    | Shadow.Update m -> Machine.write_byte machine shadow_addr m
    | Shadow.Fail mk -> raise (Misspec.Misspeculation (mk ~addr:b))
  done

(* The oracle ignores both host accelerations: it always resets
   sequentially, in place, per byte.  The optional arguments exist so
   it satisfies [Shadow_sig.S] and the property tests can drive either
   implementation through one functor. *)
let reset_interval ?pool:_ ?page_pool:_ ?plan:_ machine =
  let mem = machine.Machine.mem in
  let pages =
    List.filter
      (fun key ->
        Heap.equal_kind (Heap.heap_of_addr (Memory.base_of_page key)) Heap.Shadow)
      (Memory.mapped_pages mem)
  in
  List.iter
    (fun key ->
      let base = Memory.base_of_page key in
      for off = 0 to Memory.page_size - 1 do
        let m = Memory.read_byte mem (base + off) in
        if Shadow.is_timestamp m then Memory.write_byte mem (base + off) Shadow.old_write
      done)
    pages;
  List.length pages
