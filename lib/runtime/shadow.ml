(* The shadow-heap metadata state machine (paper Table 2).

   Each byte of private data has one byte of metadata in the shadow
   heap, at the address obtained by OR-ing the private/shadow tag bit.
   Codes:

     0                live-in (initial state; shadow pages read as 0)
     1                old-write (written before the last checkpoint)
     2                read-live-in (read, believed live-in; confirmed
                      at the next checkpoint's phase-2 validation)
     3 + (i - i0)     timestamp: written at iteration i, where i0 is
                      the first iteration after the last checkpoint

   Checkpoints fire at least every [max_interval] iterations so
   timestamps cannot overflow one byte. *)

open Privateer_ir
open Privateer_machine

let live_in = 0
let old_write = 1
let read_live_in = 2
let first_timestamp = 3

(* 253 iterations: timestamps 3 .. 255. *)
let max_interval = 256 - first_timestamp

let timestamp ~iter ~interval_start = first_timestamp + (iter - interval_start)

let is_timestamp m = m >= first_timestamp

let iteration_of_timestamp ~interval_start m =
  if not (is_timestamp m) then invalid_arg "Shadow.iteration_of_timestamp";
  interval_start + m - first_timestamp

type op = Read | Write

type verdict = Keep | Update of int | Fail of (addr:int -> Misspec.reason)

(* The pure transition function; exhaustively unit-tested against the
   paper's table. [beta] is the current iteration's timestamp. *)
let transition op ~current ~beta : verdict =
  match op with
  | Read ->
    if current = live_in then Update read_live_in
    else if current = old_write then Fail (fun ~addr -> Misspec.Privacy_flow { addr })
    else if current = read_live_in then Keep
    else if current < beta then Fail (fun ~addr -> Misspec.Privacy_flow { addr })
    else Keep (* current = beta: intra-iteration flow *)
  | Write ->
    if current = live_in || current = old_write then Update beta
    else if current = read_live_in then
      Fail (fun ~addr -> Misspec.Privacy_conservative { addr })
    else Update beta (* overwrite of this interval's earlier/current write *)

(* Apply the transition to every metadata byte covering a private
   access.  Raises Misspec.Misspeculation on a violation.

   Range-granular: each shadow page is resolved once per contiguous
   run (not once per byte) and the metadata bytes are transitioned
   directly on the page's backing store.  The page is promoted to a
   writable (copy-on-write-cloned, dirty-marked) page lazily, at the
   first byte that actually needs an update, and the page summary flag
   matching the operation (timestamps for writes, read-live-in marks
   for reads) is raised at the same moment — so checkpoint extraction
   and metadata reset can skip unflagged pages wholesale.
   Byte-for-byte equivalent to [Shadow_reference.access] (asserted by
   a qcheck property): same final metadata, same verdict at the same
   byte, same partial updates before a failing byte. *)
let access machine op ~addr ~size ~beta =
  let mem = machine.Machine.mem in
  let pos = ref addr in
  let remaining = ref size in
  while !remaining > 0 do
    let private_base = !pos in
    let shadow_base = Heap.shadow_of_private private_base in
    let off = Memory.offset_of_addr shadow_base in
    let chunk = min !remaining (Memory.page_size - off) in
    let bytes =
      ref
        (match Memory.find_page mem shadow_base with
        | Some p -> Some (Memory.page_bytes p)
        | None -> None)
    in
    let writable = ref false in
    let promote () =
      let p = Memory.touch_page mem shadow_base in
      (match op with
      | Write -> Memory.flag_timestamp p
      | Read -> Memory.flag_live_in_read p);
      writable := true;
      let b = Memory.page_bytes p in
      bytes := Some b;
      b
    in
    for i = 0 to chunk - 1 do
      let current =
        match !bytes with
        | None -> live_in
        | Some b -> Char.code (Bytes.unsafe_get b (off + i))
      in
      match transition op ~current ~beta with
      | Keep -> ()
      | Update m ->
        let b = match !bytes with Some b when !writable -> b | _ -> promote () in
        Bytes.unsafe_set b (off + i) (Char.unsafe_chr m)
      | Fail mk -> raise (Misspec.Misspeculation (mk ~addr:(private_base + i)))
    done;
    pos := !pos + chunk;
    remaining := !remaining - chunk
  done

(* Checkpoint-time metadata reset: all timestamps become old-write.
   Returns the number of shadow pages in the cost model's sense — every
   mapped shadow page, exactly as before the page-index refactor, so
   simulated cycle charges are unchanged.  Host work is proportional
   only to pages whose [any_timestamp] summary flag is set: the rest
   provably hold no timestamps and are skipped without a scan. *)
let reset_interval machine =
  let mem = machine.Machine.mem in
  let mapped = Memory.mapped_page_count mem ~heap:Heap.Shadow in
  (* Collect first: resetting clones shared pages, which mutates the
     bank being folded over. *)
  let flagged =
    Memory.fold_pages mem ~heap:Heap.Shadow ~init:[] ~f:(fun ~key page acc ->
        if Memory.any_timestamp page then key :: acc else acc)
  in
  List.iter
    (fun key ->
      let p = Memory.touch_page mem (Memory.base_of_page key) in
      let bytes = Memory.page_bytes p in
      let off = ref 0 in
      while !off < Memory.page_size do
        (* Word-wise skip: an all-zero word is all live-in. *)
        if Bytes.get_int64_le bytes !off = 0L then off := !off + 8
        else begin
          let fin = !off + 8 in
          while !off < fin do
            if Char.code (Bytes.unsafe_get bytes !off) >= first_timestamp then
              Bytes.unsafe_set bytes !off (Char.unsafe_chr old_write);
            incr off
          done
        end
      done;
      Memory.clear_timestamp_flag p)
    flagged;
  mapped
