(* The shadow-heap metadata state machine (paper Table 2).

   Each byte of private data has one byte of metadata in the shadow
   heap, at the address obtained by OR-ing the private/shadow tag bit.
   Codes:

     0                live-in (initial state; shadow pages read as 0)
     1                old-write (written before the last checkpoint)
     2                read-live-in (read, believed live-in; confirmed
                      at the next checkpoint's phase-2 validation)
     3 + (i - i0)     timestamp: written at iteration i, where i0 is
                      the first iteration after the last checkpoint

   Checkpoints fire at least every [max_interval] iterations so
   timestamps cannot overflow one byte. *)

open Privateer_ir
open Privateer_machine
module Domain_pool = Privateer_support.Domain_pool

let live_in = 0
let old_write = 1
let read_live_in = 2
let first_timestamp = 3

(* 253 iterations: timestamps 3 .. 255. *)
let max_interval = 256 - first_timestamp

let timestamp ~iter ~interval_start = first_timestamp + (iter - interval_start)

let is_timestamp m = m >= first_timestamp

let iteration_of_timestamp ~interval_start m =
  if not (is_timestamp m) then invalid_arg "Shadow.iteration_of_timestamp";
  interval_start + m - first_timestamp

(* Read-only metadata probe for the eager conflict board: the current
   metadata byte of one private address on one worker machine, plus
   whether its shadow page is dirty this interval.  The dirty bit is
   what scopes a probe to the current interval's obligations: marks on
   clean pages are earlier intervals' business (already validated, or
   carried by the checkpoint merge's writer index), exactly as in
   checkpoint extraction, which also scans dirty pages only. *)
let probe machine ~addr =
  let mem = machine.Machine.mem in
  match Memory.find_page mem (Heap.shadow_of_private addr) with
  | None -> (live_in, false)
  | Some p ->
    ( Char.code (Bytes.get (Memory.page_bytes p) (Memory.offset_of_addr addr)),
      Memory.written_this_interval p )

type op = Shadow_sig.op = Read | Write

type verdict = Keep | Update of int | Fail of (addr:int -> Misspec.reason)

(* The pure transition function; exhaustively unit-tested against the
   paper's table. [beta] is the current iteration's timestamp. *)
let transition op ~current ~beta : verdict =
  match op with
  | Read ->
    if current = live_in then Update read_live_in
    else if current = old_write then Fail (fun ~addr -> Misspec.Privacy_flow { addr })
    else if current = read_live_in then Keep
    else if current < beta then Fail (fun ~addr -> Misspec.Privacy_flow { addr })
    else Keep (* current = beta: intra-iteration flow *)
  | Write ->
    if current = live_in || current = old_write then Update beta
    else if current = read_live_in then
      Fail (fun ~addr -> Misspec.Privacy_conservative { addr })
    else Update beta (* overwrite of this interval's earlier/current write *)

(* Apply the transition to every metadata byte covering a private
   access.  Raises Misspec.Misspeculation on a violation.

   Range-granular: each shadow page is resolved once per contiguous
   run (not once per byte) and the metadata bytes are transitioned
   directly on the page's backing store.  The page is promoted to a
   writable (copy-on-write-cloned, dirty-marked) page lazily, at the
   first byte that actually needs an update, and the page summary flag
   matching the operation (timestamps for writes, read-live-in marks
   for reads) is raised at the same moment — so checkpoint extraction
   and metadata reset can skip unflagged pages wholesale.  Promotions
   additionally maintain the page's exact mark counts — timestamp
   bytes on writes (a byte entering the >= first_timestamp range from
   below, which is what lets the reset retire fully-timestamped pages
   by buffer swap instead of rewrite) and read-live-in bytes on reads
   (the live-in -> read-live-in transition, which is what lets
   checkpoint extraction stop a page scan once every mark is found);
   both counts are flushed to the page before any raise so partial
   updates stay consistent.
   Byte-for-byte equivalent to [Shadow_reference.access] (asserted by
   a qcheck property): same final metadata, same verdict at the same
   byte, same partial updates before a failing byte. *)
let access machine op ~addr ~size ~beta =
  let mem = machine.Machine.mem in
  let pos = ref addr in
  let remaining = ref size in
  while !remaining > 0 do
    let private_base = !pos in
    let shadow_base = Heap.shadow_of_private private_base in
    let off = Memory.offset_of_addr shadow_base in
    let chunk = min !remaining (Memory.page_size - off) in
    let bytes =
      ref
        (match Memory.find_page mem shadow_base with
        | Some p -> Some (Memory.page_bytes p)
        | None -> None)
    in
    let page = ref None in
    let writable = ref false in
    let added = ref 0 in
    let li_added = ref 0 in
    let promote () =
      let p = Memory.touch_page mem shadow_base in
      (match op with
      | Write -> Memory.flag_timestamp p
      | Read -> Memory.flag_live_in_read p);
      writable := true;
      page := Some p;
      let b = Memory.page_bytes p in
      bytes := Some b;
      b
    in
    let flush_count () =
      if !added > 0 || !li_added > 0 then begin
        (match !page with
        | Some p ->
          if !added > 0 then Memory.add_timestamp_bytes p !added;
          if !li_added > 0 then Memory.add_live_in_bytes p !li_added
        | None -> assert false (* counted bytes were written via promote *));
        added := 0;
        li_added := 0
      end
    in
    for i = 0 to chunk - 1 do
      let current =
        match !bytes with
        | None -> live_in
        | Some b -> Char.code (Bytes.unsafe_get b (off + i))
      in
      match transition op ~current ~beta with
      | Keep -> ()
      | Update m ->
        let b = match !bytes with Some b when !writable -> b | _ -> promote () in
        if m >= first_timestamp && current < first_timestamp then incr added
        (* The only transition into read-live-in is from live-in, so
           every such update is a fresh mark. *)
        else if m = read_live_in then incr li_added;
        Bytes.unsafe_set b (off + i) (Char.unsafe_chr m)
      | Fail mk ->
        flush_count ();
        raise (Misspec.Misspeculation (mk ~addr:(private_base + i)))
    done;
    flush_count ();
    pos := !pos + chunk;
    remaining := !remaining - chunk
  done

(* In-place rewrite of one page's buffer: timestamps become old-write,
   everything else is preserved.  Pure [Bytes] mutation — safe to run
   on any domain as long as no other task touches this buffer. *)
let scan_rewrite bytes =
  let off = ref 0 in
  while !off < Memory.page_size do
    (* Word-wise skip: an all-zero word is all live-in. *)
    if Bytes.get_int64_le bytes !off = 0L then off := !off + 8
    else begin
      let fin = !off + 8 in
      while !off < fin do
        if Char.code (Bytes.unsafe_get bytes !off) >= first_timestamp then
          Bytes.unsafe_set bytes !off (Char.unsafe_chr old_write);
        incr off
      done
    end
  done

(* Split [jobs] into at most [n] round-robin-sized chunks, preserving
   nothing about order (the jobs are independent byte mutations). *)
let chunk_jobs n jobs =
  let total = List.length jobs in
  if total = 0 then []
  else begin
    let n = max 1 (min n total) in
    let per = (total + n - 1) / n in
    let rec take k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: tl -> take (k - 1) (x :: acc) tl
    in
    let rec split rest acc =
      match rest with
      | [] -> List.rev acc
      | _ ->
        let chunk, rest = take per [] rest in
        split rest (chunk :: acc)
    in
    split jobs []
  end

(* Checkpoint-time metadata reset: all timestamps become old-write.
   Returns the number of shadow pages in the cost model's sense — every
   mapped shadow page, exactly as before the page-index refactor, so
   simulated cycle charges are unchanged.  Host work is proportional
   only to pages whose [any_timestamp] summary flag is set: the rest
   provably hold no timestamps and are skipped without a scan.

   Host structure (invisible to the simulation — same final metadata,
   same return value at every pool size and cap):

   1. sequential: copy-on-write promotion of every flagged page,
      flag/count clears, and the swap decision — a page whose exact
      timestamp count equals the page size resets to a constant, so
      when the page pool can supply a pre-filled buffer the reset is a
      pointer exchange and the old buffer is retired;
   2. parallel (over [pool] when given): the disjoint [Bytes] work —
      word-wise scan-rewrites of surviving buffers and constant refills
      of retired ones.  Nothing here touches the page table, the dirty
      set, or the pool's free list.  [plan] is the host controller's
      hook: it receives the job count and returns the chunk width
      ([<= 1] selects the sequential path even with a pool); without
      it, a configured pool fans out [2 * size] ways as before;
   3. sequential: deposit the refilled buffers for recycling at the
      next interval. *)
let reset_interval ?pool ?page_pool ?plan machine =
  let mem = machine.Machine.mem in
  let mapped = Memory.mapped_page_count mem ~heap:Heap.Shadow in
  (match page_pool with
  | Some pp when Char.code (Page_pool.fill pp) <> old_write ->
    invalid_arg "Shadow.reset_interval: page pool fill byte is not old_write"
  | Some _ | None -> ());
  (* Collect first: resetting clones shared pages, which mutates the
     bank being folded over. *)
  let flagged =
    Memory.fold_pages mem ~heap:Heap.Shadow ~init:[] ~f:(fun ~key page acc ->
        if Memory.any_timestamp page then key :: acc else acc)
  in
  let jobs = ref [] in
  let retired = ref [] in
  List.iter
    (fun key ->
      let p = Memory.touch_page mem (Memory.base_of_page key) in
      let fully = Memory.timestamp_bytes p = Memory.page_size in
      Memory.clear_timestamp_flag p;
      let swapped =
        fully
        && (match page_pool with
           | None -> false
           | Some pp -> (
             match Page_pool.acquire pp with
             | None -> false
             | Some fresh ->
               retired := Memory.swap_bytes p fresh :: !retired;
               true))
      in
      if not swapped then begin
        let bytes = Memory.page_bytes p in
        jobs := (fun () -> scan_rewrite bytes) :: !jobs
      end)
    flagged;
  (match page_pool with
  | Some pp ->
    let fill = Page_pool.fill pp in
    List.iter
      (fun b ->
        jobs := (fun () -> Bytes.fill b 0 Memory.page_size fill) :: !jobs)
      !retired
  | None -> ());
  let width =
    match plan with
    | Some f -> f ~jobs:(List.length !jobs)
    | None -> (
      match pool with Some dp -> Domain_pool.size dp * 2 | None -> 1)
  in
  (match pool with
  | Some dp when Domain_pool.size dp > 1 && width > 1 ->
    let chunks = chunk_jobs width !jobs in
    ignore
      (Domain_pool.run dp
         (List.map (fun fs () -> List.iter (fun f -> f ()) fs) chunks))
  | Some _ | None -> List.iter (fun f -> f ()) !jobs);
  (match page_pool with
  | Some pp ->
    List.iter (Page_pool.deposit pp) !retired;
    (* Feed the adaptive cap: this reset's retirement footprint.
       No-op on fixed-cap pools. *)
    Page_pool.note_interval pp ~retired:(List.length !retired)
  | None -> ());
  mapped
