(** Runtime statistics: the counters behind the paper's Table 3 and
    the Figure 8 overhead breakdown. *)

(** Per-loop runtime health, keyed by the loop's IR node id; the
    executor's misspeculation throttle and the CLI/bench per-loop
    reports read this table. *)
type loop_stats = {
  mutable l_invocations : int;
  mutable l_misspeculations : int;
  mutable l_wall_cycles : int;
      (** wall time of this loop's parallel invocations *)
  mutable l_demotions : int;
      (** invocations demoted mid-flight by the throttle *)
  mutable l_suspended_invocations : int;
      (** invocations run sequentially while suspended *)
}

(** Whole-run counters.  Every field is part of the deterministic
    simulation — none may vary with host parallelism
    ([Executor.config.host_domains]), a property the host-parallel
    test suite asserts — except the [ns_*] host-time accumulators and
    the [par_*]/[seq_*] host-controller decision counters, which are
    explicitly host-side instrumentation.  The [eager_*] /
    [squashed_iterations] / [avoided_iterations] fields are simulated
    and host-deterministic, but differ between the two validation
    modes by design; the authoritative table of every
    determinism-contract exemption is in [docs/RUNTIME.md]. *)
type t = {
  mutable invocations : int;
  mutable checkpoints : int;
  mutable private_bytes_read : int;
  mutable private_bytes_written : int;
  mutable separation_checks : int;  (** dynamic, non-elided *)
  mutable separation_checks_elided : int;  (** static count *)
  mutable misspeculations : int;
  mutable recovered_iterations : int;
  mutable iterations : int;
  (* Overhead cycle accounting (Figure 8 categories). *)
  mutable cyc_useful : int;
  mutable cyc_private_read : int;
  mutable cyc_private_write : int;
  mutable cyc_checkpoint : int;
  mutable cyc_spawn : int;
  mutable cyc_join : int;
  mutable cyc_recovery : int;
  mutable eager_kills : int;
      (** intervals cut short by the eager conflict board.  Like the
          other [eager_*] fields: deterministic at any host setting,
          exempt only from the cross-validation-mode identity
          surface. *)
  mutable eager_checks : int;  (** accesses published to the board *)
  mutable eager_hits : int;
      (** coarse page hits that ran a precise confirm *)
  mutable squashed_iterations : int;
      (** speculative iterations executed inside later-squashed
          intervals (either mode) — the wasted-work metric eager and
          commit validation are compared on *)
  mutable avoided_iterations : int;
      (** iterations of squashed intervals an eager kill skipped *)
  mutable wall_cycles : int;  (** sum over parallel invocations *)
  mutable workers : int;
  mutable ns_merge_fill : float;
      (** host ns in the merge's index-fill pass — instrumentation,
          {e not} simulated state; varies run to run *)
  mutable ns_merge_validate : float;
      (** host ns in the phase-2 validation pass *)
  mutable ns_merge_sweep : float;
      (** host ns in the delta-sweep pass *)
  mutable ns_reset : float;
      (** host ns in the shadow interval reset — instrumentation, like
          [ns_merge_fill] *)
  mutable ns_extract : float;  (** host ns in checkpoint extraction *)
  mutable ns_spawn : float;  (** host ns in spawn-time snapshot setup *)
  mutable par_resets : int;
      (** interval resets the host controller fanned out (vs
          [seq_resets] run sequentially).  Host-side: in auto mode the
          split follows observed host timings. *)
  mutable seq_resets : int;
  mutable par_extracts : int;
  mutable seq_extracts : int;
  mutable par_merges : int;
  mutable seq_merges : int;
  mutable par_spawns : int;
  mutable seq_spawns : int;
  loops : (int, loop_stats) Hashtbl.t;
}

val create : unit -> t
(** A zeroed counter set. *)

(** The per-loop entry for an IR loop id, created on first use. *)
val loop_stats : t -> int -> loop_stats

(** All per-loop entries, sorted by loop id. *)
val loop_table : t -> (int * loop_stats) list

(** Parallel-region capacity: [workers * wall_cycles], the
    denominator of the paper's Figure 8 normalization. *)
val capacity : t -> int

type breakdown = {
  useful : float;
  private_read : float;
  private_write : float;
  checkpoint : float;
  spawn_join : float;
  other : float;  (** residual: elided-check costs, rounding *)
}

(** Percentages of capacity; sums to ~100 for misspeculation-free
    runs. *)
val breakdown : t -> breakdown
