(* Free-list pool of pre-filled shadow page buffers.

   The interval-reset fast path retires a fully-timestamped shadow
   page by swapping its backing store with a buffer from this pool
   (every byte already holds the reset value), then refills the
   retired buffer off the sequential path and recycles it at the next
   interval.  The fill byte is a construction parameter rather than a
   [Shadow] reference so this module sits below the shadow layer in
   the dependency order; [Shadow.reset_interval] checks at run time
   that the byte is the one its state machine resets to.

   The free-list cap comes in three flavours: a fixed positive bound,
   0 (pool disabled), or [auto] — an adaptive bound learned from an
   EWMA of recent retirement footprints (how many pages each reset
   retired).  Auto mode keeps the steady-state free list close to what
   the workload actually recycles per interval, so a phase shift from
   wide to narrow footprints sheds the now-idle buffers instead of
   holding the old high water forever.

   The pool is single-domain by design: [acquire], [deposit] and
   [note_interval] are only ever called from the sequential phases of
   the reset (the parallel phase touches the buffers' bytes, never the
   free list), so there is no locking. *)

type stats = {
  swaps : int;  (** buffers handed out for swap-retirement *)
  recycled : int;  (** hand-outs served from the free list *)
  evictions : int;  (** refilled buffers dropped at the cap *)
  high_water : int;  (** max free-list length ever observed *)
}

type t = {
  cap : int; (* as configured: fixed >= 0, or [auto] *)
  fill : char;
  mutable eff_cap : int; (* the bound deposits actually check *)
  mutable ewma : float; (* smoothed retirement footprint; < 0 = no sample *)
  mutable free : Bytes.t list;
  mutable free_len : int;
  mutable swaps : int;
  mutable recycled : int;
  mutable evictions : int;
  mutable high_water : int;
}

let unbounded = max_int
let auto = -1

(* EWMA smoothing: weight on the newest interval's footprint.  High
   enough to track a phase shift within a few intervals, low enough
   that one outlier interval doesn't flush the list. *)
let ewma_alpha = 0.3

let create ?(cap = unbounded) ~fill () =
  if cap < 0 && cap <> auto then
    invalid_arg "Page_pool.create: negative cap (use Page_pool.auto)";
  { cap; fill;
    (* Auto starts unbounded: until the first footprint sample there
       is nothing to bound against, and dropping early deposits would
       just force fresh mints. *)
    eff_cap = (if cap = auto then unbounded else cap);
    ewma = -1.0; free = []; free_len = 0; swaps = 0; recycled = 0;
    evictions = 0; high_water = 0 }

let cap t = t.cap
let fill t = t.fill
let enabled t = t.cap = auto || t.cap > 0
let ready t = t.free_len
let current_cap t = t.eff_cap

let acquire t =
  if not (enabled t) then None
  else begin
    t.swaps <- t.swaps + 1;
    match t.free with
    | b :: rest ->
      t.free <- rest;
      t.free_len <- t.free_len - 1;
      t.recycled <- t.recycled + 1;
      Some b
    | [] ->
      (* Growing the pool: mint a pre-filled buffer.  The high-water
         cap bounds the free list, not the mint — outstanding buffers
         are owned by live pages. *)
      Some (Bytes.make Privateer_machine.Memory.page_size t.fill)
  end

let deposit t b =
  if t.free_len >= t.eff_cap then t.evictions <- t.evictions + 1
  else begin
    t.free <- b :: t.free;
    t.free_len <- t.free_len + 1;
    if t.free_len > t.high_water then t.high_water <- t.free_len
  end

(* One reset's retirement footprint.  Only auto pools learn from it;
   the first sample seeds the EWMA directly so the cap doesn't spend
   its first intervals converging from an arbitrary start.  The
   effective cap floors at 1: a pool that observed a quiet stretch
   should still keep one warm buffer rather than flap to disabled. *)
let note_interval t ~retired =
  if t.cap = auto then begin
    let r = float_of_int retired in
    t.ewma <- (if t.ewma < 0.0 then r else ((1.0 -. ewma_alpha) *. t.ewma) +. (ewma_alpha *. r));
    t.eff_cap <- max 1 (int_of_float (ceil t.ewma))
  end

let stats t =
  { swaps = t.swaps; recycled = t.recycled; evictions = t.evictions;
    high_water = t.high_water }
