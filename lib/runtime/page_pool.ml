(* Free-list pool of pre-filled shadow page buffers.

   The interval-reset fast path retires a fully-timestamped shadow
   page by swapping its backing store with a buffer from this pool
   (every byte already holds the reset value), then refills the
   retired buffer off the sequential path and recycles it at the next
   interval.  The fill byte is a construction parameter rather than a
   [Shadow] reference so this module sits below the shadow layer in
   the dependency order; [Shadow.reset_interval] checks at run time
   that the byte is the one its state machine resets to.

   The pool is single-domain by design: [acquire] and [deposit] are
   only ever called from the sequential phases of the reset (the
   parallel phase touches the buffers' bytes, never the free list), so
   there is no locking. *)

type stats = {
  swaps : int;  (** buffers handed out for swap-retirement *)
  recycled : int;  (** hand-outs served from the free list *)
  evictions : int;  (** refilled buffers dropped at the cap *)
  high_water : int;  (** max free-list length ever observed *)
}

type t = {
  cap : int;
  fill : char;
  mutable free : Bytes.t list;
  mutable free_len : int;
  mutable swaps : int;
  mutable recycled : int;
  mutable evictions : int;
  mutable high_water : int;
}

let unbounded = max_int

let create ?(cap = unbounded) ~fill () =
  if cap < 0 then invalid_arg "Page_pool.create: negative cap";
  { cap; fill; free = []; free_len = 0; swaps = 0; recycled = 0; evictions = 0;
    high_water = 0 }

let cap t = t.cap
let fill t = t.fill
let enabled t = t.cap > 0
let ready t = t.free_len

let acquire t =
  if t.cap = 0 then None
  else begin
    t.swaps <- t.swaps + 1;
    match t.free with
    | b :: rest ->
      t.free <- rest;
      t.free_len <- t.free_len - 1;
      t.recycled <- t.recycled + 1;
      Some b
    | [] ->
      (* Growing the pool: mint a pre-filled buffer.  The high-water
         cap bounds the free list, not the mint — outstanding buffers
         are owned by live pages. *)
      Some (Bytes.make Privateer_machine.Memory.page_size t.fill)
  end

let deposit t b =
  if t.free_len >= t.cap then t.evictions <- t.evictions + 1
  else begin
    t.free <- b :: t.free;
    t.free_len <- t.free_len + 1;
    if t.free_len > t.high_water then t.high_water <- t.free_len
  end

let stats t =
  { swaps = t.swaps; recycled = t.recycled; evictions = t.evictions;
    high_water = t.high_water }
