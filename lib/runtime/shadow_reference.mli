(** The retained per-byte reference implementation of the shadow-heap
    metadata operations — the pre-page-index code, kept as an oracle.

    It satisfies the same {!Shadow_sig.module-type-S} signature as the
    optimized {!Shadow}, so property tests functorize over the two and
    compare their observable effects byte for byte; the [overhead]
    bench experiment reports the host-time ratio between them.

    It resolves a page per byte through the generic [Memory] accessors
    and does {b not} maintain the per-page summary flags or the exact
    timestamp-byte counts, so a machine driven through this module
    must not be handed to the flag-driven fast paths
    ([Shadow.reset_interval], checkpoint extraction).  Its
    [reset_interval] ignores the host-acceleration arguments and
    always rewrites sequentially in place. *)

include Shadow_sig.S
