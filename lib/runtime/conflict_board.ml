(* The eager in-flight conflict board (validation mode [eager]).

   Commit-time validation only notices a cross-worker privacy conflict
   at the checkpoint merge, after every worker has burned its whole
   interval.  The board is the in-flight counterpart, shaped after the
   Speculative Threading Unit's validator + memory tracker: as workers
   execute (serially, in the engine's deterministic worker order),
   every private access publishes a coarse per-page summary here, each
   publication is cross-checked against the other workers' summaries,
   and the first confirmed conflict is reported so the executor can
   squash the interval immediately instead of at the merge.

   Two-level check, cheap by construction:

   - *coarse*: one hash lookup per touched page.  Each of the two
     tables (pages written, pages read) maps a page number to the sole
     worker that touched it, or to [multi] once a second worker has.
     No cross-worker sharing on a page -> no conflict possible -> done.

   - *precise*: only on a coarse hit, re-read the actual shadow
     metadata (through [Shadow.probe]) and confirm the conflict at the
     byte level under exactly the checkpoint merge's rules: a reader's
     [read_live_in] byte on a dirty shadow page conflicts with any
     other worker's timestamped byte in the same 8-byte word (and
     symmetrically for writes observing reads).  Bytes are scanned in
     ascending address order and the first confirmed byte wins, so
     verdicts are deterministic.

   The board is sound but incomplete: it never confirms a conflict the
   merge would not also flag for this interval (no false kills — on a
   violation-free run eager mode is cycle-identical to commit mode),
   but it can miss conflicts whose evidence is not in current-interval
   metadata — a write that committed in an earlier interval (carried
   only by the merge's word->writer index) or a reader whose live-in
   mark sits on a page not dirtied this interval.  The commit-time
   merge stays on as the backstop that catches those. *)

open Privateer_machine

(* A page-table entry: the sole worker id that touched the page, or
   [multi] once at least two distinct workers have.  With >= 2 distinct
   touchers, at least one always differs from any given worker, so
   [multi] unconditionally coarse-hits. *)
let multi = -1

type t = {
  mutable machines : (int * Machine.t) list; (* cohort, by worker id *)
  wrote : (int, int) Hashtbl.t; (* page -> sole writer | multi *)
  read : (int, int) Hashtbl.t; (* page -> sole reader | multi *)
  mutable interval_start : int;
  mutable checks : int; (* publications *)
  mutable hits : int; (* coarse hits that ran the precise confirm *)
}

type conflict = {
  c_addr : int; (* the reader's live-in byte, as in phase 2 *)
  c_earliest_iter : int; (* earliest iteration known involved *)
}

let create () =
  { machines = []; wrote = Hashtbl.create 64; read = Hashtbl.create 64;
    interval_start = 0; checks = 0; hits = 0 }

let checks t = t.checks
let hits t = t.hits

(* A fresh cohort of workers (after spawn or respawn): summaries of the
   squashed cohort are meaningless against the new machines. *)
let new_cohort t machines =
  t.machines <- List.sort (fun (a, _) (b, _) -> compare a b) machines;
  Hashtbl.reset t.wrote;
  Hashtbl.reset t.read

(* A new checkpoint interval: committed summaries are the merge's
   carried index's business now, not the board's. *)
let new_interval t ~interval_start =
  t.interval_start <- interval_start;
  Hashtbl.reset t.wrote;
  Hashtbl.reset t.read

(* ---- coarse per-page summaries ---------------------------------------- *)

let note table ~worker page =
  match Hashtbl.find_opt table page with
  | None -> Hashtbl.replace table page worker
  | Some w when w = worker || w = multi -> ()
  | Some _ -> Hashtbl.replace table page multi

let shared_with_other table ~worker page =
  match Hashtbl.find_opt table page with
  | None -> false
  | Some w -> w <> worker (* [multi] implies some other worker *)

(* ---- precise confirmation on the shadow metadata ---------------------- *)

let word_base addr = addr land lnot 7

(* Does any worker other than [self] hold a current-interval timestamp
   in the word at [base]?  Returns the smallest such iteration. *)
let other_write_iter t ~self ~base =
  List.fold_left
    (fun acc (id, m) ->
      if id = self then acc
      else
        let best = ref acc in
        for b = base to base + 7 do
          let md, dirty = Shadow.probe m ~addr:b in
          if dirty && Shadow.is_timestamp md then
            let it = Shadow.iteration_of_timestamp ~interval_start:t.interval_start md in
            if !best = None || Some it < !best then best := Some it
        done;
        !best)
    None t.machines

(* A read by [worker]: for each byte it just marked read-live-in (on a
   dirty page), any other worker's timestamp in the same word is the
   conflict phase 2 would flag.  The earliest involved iteration is
   the smaller of the reading iteration and the writer's decoded
   timestamp. *)
let confirm_read t ~worker ~iter ~addr ~size =
  let self_machine = List.assoc worker t.machines in
  let rec scan b =
    if b >= addr + size then None
    else
      let md, dirty = Shadow.probe self_machine ~addr:b in
      if dirty && md = Shadow.read_live_in then
        match other_write_iter t ~self:worker ~base:(word_base b) with
        | Some w_iter -> Some { c_addr = b; c_earliest_iter = min iter w_iter }
        | None -> scan (b + 1)
      else scan (b + 1)
  in
  scan addr

(* A write by [worker]: any other worker's read-live-in byte (on a
   dirty page) in a word this write touches is the symmetric conflict.
   The reader's iteration is not recoverable from metadata (the
   read-live-in code carries no timestamp), so the writing iteration
   stands in as the earliest known — one reason eager mode can fire
   later than the true earliest violating iteration. *)
let confirm_write t ~worker ~iter ~addr ~size =
  let rec words base =
    if base >= addr + size then None
    else
      let found =
        List.fold_left
          (fun acc (id, m) ->
            match acc with
            | Some _ -> acc
            | None ->
              if id = worker then None
              else
                let best = ref None in
                for b = base + 7 downto base do
                  let md, dirty = Shadow.probe m ~addr:b in
                  if dirty && md = Shadow.read_live_in then best := Some b
                done;
                !best)
          None t.machines
      in
      match found with
      | Some b -> Some { c_addr = b; c_earliest_iter = iter }
      | None -> words (base + 8)
  in
  words (word_base addr)

(* ---- publication ------------------------------------------------------ *)

(* Publish one private access and cross-check it against the other
   workers' summaries.  Must run right after the corresponding
   [Shadow.access], on the engine's (serial, deterministic) execution
   path.  Returns the first confirmed conflict, if any. *)
let publish t ~worker ~op ~addr ~size ~iter =
  t.checks <- t.checks + 1;
  let p0 = Memory.page_of_addr addr in
  let p1 = Memory.page_of_addr (addr + size - 1) in
  let own, others =
    match (op : Shadow.op) with
    | Read -> (t.read, t.wrote)
    | Write -> (t.wrote, t.read)
  in
  let coarse_hit = ref false in
  for p = p0 to p1 do
    note own ~worker p;
    if shared_with_other others ~worker p then coarse_hit := true
  done;
  if not !coarse_hit then None
  else begin
    t.hits <- t.hits + 1;
    match (op : Shadow.op) with
    | Read -> confirm_read t ~worker ~iter ~addr ~size
    | Write -> confirm_write t ~worker ~iter ~addr ~size
  end
