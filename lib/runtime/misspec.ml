(* Misspeculation signalling. *)

type reason =
  | Separation of { site : int; addr : int; expected : Privateer_ir.Heap.kind }
  | Privacy_flow of { addr : int } (* read of an earlier iteration's write *)
  | Privacy_conservative of { addr : int } (* write over read-live-in *)
  | Short_lived_escape of { unfreed : int }
  | Value_prediction of { global : string; offset : int; expected : int }
  | Control of { site : int }
  | Phase2 of { addr : int } (* cross-worker live-in read/write conflict *)
  | Eager_conflict of { addr : int; earliest_iter : int }
      (* the same cross-worker conflict, observed in-flight by the
         conflict board before the checkpoint merge could *)
  | Foreign_heap of { addr : int } (* access outside any sanctioned heap *)
  | Redux_violation of { site : int; addr : int }
  | Injected (* artificial misspeculation (Figure 9 experiments) *)
  | Worker_fault of string (* runtime error inside a speculative worker *)

let to_string = function
  | Separation { site; addr; expected } ->
    Printf.sprintf "separation check failed at site %d: %#x not in %s heap" site addr
      (Privateer_ir.Heap.name expected)
  | Privacy_flow { addr } ->
    Printf.sprintf "privacy: read of earlier iteration's write at %#x" addr
  | Privacy_conservative { addr } ->
    Printf.sprintf "privacy: overwrite of read-live-in byte at %#x (conservative)" addr
  | Short_lived_escape { unfreed } ->
    Printf.sprintf "short-lived object lifetime violation (%d unfreed)" unfreed
  | Value_prediction { global; offset; expected } ->
    Printf.sprintf "value prediction failed: %s+%d != %d" global offset expected
  | Control { site } -> Printf.sprintf "control speculation violated at branch %d" site
  | Phase2 { addr } -> Printf.sprintf "phase-2 privacy conflict at %#x" addr
  | Eager_conflict { addr; earliest_iter } ->
    Printf.sprintf "eager cross-worker conflict at %#x (earliest iteration %d)" addr
      earliest_iter
  | Foreign_heap { addr } -> Printf.sprintf "access outside sanctioned heaps at %#x" addr
  | Redux_violation { site; addr } ->
    Printf.sprintf "non-reduction access to redux heap at site %d (%#x)" site addr
  | Injected -> "injected misspeculation"
  | Worker_fault msg -> "worker fault: " ^ msg

exception Misspeculation of reason
