(** The eager in-flight conflict board (validation mode [eager]).

    As workers execute, every private access publishes a coarse
    per-page summary here and is cross-checked against the other
    workers' summaries; on a coarse page hit the conflict is confirmed
    precisely against the shadow metadata ({!Shadow.probe}) under the
    checkpoint merge's own rules, so a confirmed conflict is always
    one phase 2 would also flag this interval.  Sound but incomplete:
    no false kills ever, but conflicts whose evidence lives outside
    current-interval metadata (earlier-interval writes carried only by
    the merge's word->writer index, live-in marks on pages not dirtied
    this interval) are left to the commit-time backstop.  See
    [docs/SPECULATION.md] for the full lifecycle. *)

type t

type conflict = {
  c_addr : int;
      (** the conflicting live-in byte, pinned as in phase 2 *)
  c_earliest_iter : int;
      (** earliest iteration known involved; recovery resumes after it *)
}

val create : unit -> t
(** An empty board: one per parallel invocation. *)

val new_cohort : t -> (int * Privateer_machine.Machine.t) list -> unit
(** Register a fresh worker cohort (worker id, worker machine) after
    (re)spawn, discarding all summaries. *)

val new_interval : t -> interval_start:int -> unit
(** Start a checkpoint interval: summaries reset (committed intervals
    are the merge's carried index's business) and timestamps decode
    against the new [interval_start]. *)

val publish :
  t -> worker:int -> op:Shadow.op -> addr:int -> size:int -> iter:int ->
  conflict option
(** Publish one private access, made by [worker] at [iter], right
    after its [Shadow.access]; returns the first confirmed cross-worker
    conflict.  Scans bytes in ascending address order and workers in id
    order, so the verdict is a deterministic function of the simulated
    execution. *)

val checks : t -> int
(** Accesses published since [create]. *)

val hits : t -> int
(** Coarse page hits that ran the precise confirmation. *)
