(** Free-list pool of pre-filled page buffers for the interval-reset
    swap path.

    A fully-timestamped shadow page ([Memory.timestamp_bytes] equal to
    [Memory.page_size]) resets to a constant byte; instead of
    rewriting 4096 bytes in place, {!Shadow.reset_interval} swaps the
    page's backing store with an {!acquire}d buffer (already holding
    the reset value everywhere), defers the retired buffer's refill to
    the host-parallel phase, and {!deposit}s it back for the next
    interval.

    Not thread-safe: the free list is only touched from the sequential
    phases of the reset.  The parallel phase may fill the {e bytes} of
    buffers it was handed, but never calls into the pool. *)

type t

(** Counter snapshot (see {!stats}). *)
type stats = {
  swaps : int;  (** buffers handed out for swap-retirement *)
  recycled : int;  (** hand-outs served from the free list (the rest
                       were freshly minted) *)
  evictions : int;  (** refilled buffers dropped at the cap *)
  high_water : int;  (** max free-list length ever observed *)
}

val unbounded : int
(** A cap that never evicts ([max_int]). *)

val auto : int
(** Sentinel cap (-1) selecting the adaptive mode: the free-list bound
    is learned from an EWMA of recent retirement footprints reported
    via {!note_interval}.  Starts {!unbounded} (nothing to bound
    against before the first sample), then tracks roughly the number
    of pages the workload retires per reset, floored at 1. *)

(** [create ~cap ~fill ()] makes a pool of buffers pre-filled with
    [fill].  [cap] (default {!unbounded}) bounds the {e free list}:
    a deposit beyond it drops the buffer (eviction) so idle pools shed
    memory; buffers handed out to live pages are not counted.
    [cap = 0] disables the pool — {!acquire} always returns [None].
    [cap = auto] selects the adaptive bound (see {!auto}).
    @raise Invalid_argument if [cap] is negative and not {!auto}. *)
val create : ?cap:int -> fill:char -> unit -> t

val cap : t -> int
(** The configured cap, verbatim (possibly {!auto}). *)

val fill : t -> char

val enabled : t -> bool
(** [cap t = auto || cap t > 0]. *)

val ready : t -> int
(** Buffers currently on the free list. *)

val current_cap : t -> int
(** The bound deposits are checked against right now: the fixed cap,
    or the learned bound in {!auto} mode ({!unbounded} until the first
    {!note_interval} sample). *)

(** A page-sized buffer with every byte equal to [fill t] — recycled
    from the free list when possible, freshly minted otherwise.
    [None] iff the pool is disabled ([cap = 0]). *)
val acquire : t -> Bytes.t option

(** Return a buffer to the free list for recycling.  The caller must
    have re-filled it with [fill t] first.  Dropped (and counted as an
    eviction) when the free list is at the current cap. *)
val deposit : t -> Bytes.t -> unit

(** [note_interval t ~retired] reports one reset's retirement
    footprint (how many pages it swap-retired).  No-op unless the pool
    was created with [cap = auto], in which case the adaptive bound is
    updated: the first sample seeds the EWMA, later ones are smoothed
    in, and the effective cap becomes [max 1 (ceil ewma)].  Call from
    the sequential tail of the reset, after the deposits. *)
val note_interval : t -> retired:int -> unit

val stats : t -> stats
