(** Free-list pool of pre-filled page buffers for the interval-reset
    swap path.

    A fully-timestamped shadow page ([Memory.timestamp_bytes] equal to
    [Memory.page_size]) resets to a constant byte; instead of
    rewriting 4096 bytes in place, {!Shadow.reset_interval} swaps the
    page's backing store with an {!acquire}d buffer (already holding
    the reset value everywhere), defers the retired buffer's refill to
    the host-parallel phase, and {!deposit}s it back for the next
    interval.

    Not thread-safe: the free list is only touched from the sequential
    phases of the reset.  The parallel phase may fill the {e bytes} of
    buffers it was handed, but never calls into the pool. *)

type t

(** Counter snapshot (see {!stats}). *)
type stats = {
  swaps : int;  (** buffers handed out for swap-retirement *)
  recycled : int;  (** hand-outs served from the free list (the rest
                       were freshly minted) *)
  evictions : int;  (** refilled buffers dropped at the cap *)
  high_water : int;  (** max free-list length ever observed *)
}

val unbounded : int
(** A cap that never evicts ([max_int]). *)

(** [create ~cap ~fill ()] makes a pool of buffers pre-filled with
    [fill].  [cap] (default {!unbounded}) bounds the {e free list}:
    a deposit beyond it drops the buffer (eviction) so idle pools shed
    memory; buffers handed out to live pages are not counted.
    [cap = 0] disables the pool — {!acquire} always returns [None].
    @raise Invalid_argument if [cap < 0]. *)
val create : ?cap:int -> fill:char -> unit -> t

val cap : t -> int
val fill : t -> char

val enabled : t -> bool
(** [cap t > 0]. *)

val ready : t -> int
(** Buffers currently on the free list. *)

(** A page-sized buffer with every byte equal to [fill t] — recycled
    from the free list when possible, freshly minted otherwise.
    [None] iff the pool is disabled ([cap = 0]). *)
val acquire : t -> Bytes.t option

(** Return a buffer to the free list for recycling.  The caller must
    have re-filled it with [fill t] first.  Dropped (and counted as an
    eviction) when the free list is at the cap. *)
val deposit : t -> Bytes.t -> unit

val stats : t -> stats
