(* Checkpoint objects and the two-phase privacy validation
   (paper sections 5.1-5.2).

   Per checkpoint interval, each worker contributes its speculative
   state: the private bytes it wrote (with the writing iteration
   decoded from shadow timestamps), the bytes it read as live-in, a
   snapshot of its reduction partials, its register-reduction
   partials, and its deferred output.  Merging performs:

   - phase-2 privacy validation: a byte one worker read as live-in
     must not have been written by another worker (conservatively, at
     any earlier point);
   - last-writer-wins combination of private bytes across workers by
     iteration number, yielding the overlay to commit onto the main
     process's heaps. *)

open Privateer_ir
open Privateer_machine
open Privateer_interp

type word_write = { iter : int; bits : int64; is_float : bool }

type contribution = {
  worker : int;
  (* private word address -> latest write this interval.  Word
     granularity preserves the float tags of the simulated memory; the
     iteration is the latest timestamp among the word's bytes. *)
  writes : (int, word_write) Hashtbl.t;
  (* byte addresses this worker read as live-in (metadata 2) *)
  live_in_reads : (int, unit) Hashtbl.t;
  (* snapshot of the worker's reduction-heap partials *)
  redux_words : (int * int64 * bool) list;
  (* register-reduction partials *)
  reg_partials : (string * Value.t) list;
  pages_touched : int; (* for checkpoint copy cost accounting *)
}

(* Extract a worker's interval contribution by scanning the shadow
   pages it dirtied since the interval started.  [interval_start]
   decodes shadow timestamps into iteration numbers.

   The shadow bank's dirty index hands us exactly the candidate pages
   (no filtering of the global dirty set); pages whose summary flags
   show neither timestamps nor read-live-in marks are skipped without
   a scan, and flagged pages are scanned word-wise directly on the
   page bytes (an all-zero metadata word is all live-in). *)
let contribution_of_worker ~worker ~interval_start (machine : Machine.t)
    ~redux_ranges ~reg_partials =
  let mem = machine.Machine.mem in
  let writes = Hashtbl.create 256 in
  let live_in_reads = Hashtbl.create 16 in
  List.iter
    (fun key ->
      match Memory.find_page mem (Memory.base_of_page key) with
      | None -> ()
      | Some page ->
        if Memory.any_timestamp page || Memory.any_live_in_read page then begin
          let bytes = Memory.page_bytes page in
          let base = Memory.base_of_page key in
          let off = ref 0 in
          while !off < Memory.page_size do
            if Bytes.get_int64_le bytes !off = 0L then off := !off + 8
            else begin
              let fin = !off + 8 in
              while !off < fin do
                let m = Char.code (Bytes.unsafe_get bytes !off) in
                if Shadow.is_timestamp m then begin
                  let private_addr = Heap.private_of_shadow (base + !off) in
                  let word_addr = private_addr land lnot 7 in
                  let iter = Shadow.iteration_of_timestamp ~interval_start m in
                  let keep =
                    match Hashtbl.find_opt writes word_addr with
                    | Some prev -> iter > prev.iter
                    | None -> true
                  in
                  if keep then begin
                    let bits, is_float = Memory.read_word mem word_addr in
                    Hashtbl.replace writes word_addr { iter; bits; is_float }
                  end
                end
                else if m = Shadow.read_live_in then
                  Hashtbl.replace live_in_reads
                    (Heap.private_of_shadow (base + !off))
                    ();
                incr off
              done
            end
          done
        end)
    (Memory.dirty_pages ~heap:Heap.Shadow mem);
  let redux_words =
    List.concat_map
      (fun (base, size, _op) ->
        let words = (size + 7) / 8 in
        List.init words (fun w ->
            let addr = base + (8 * w) in
            let bits, is_float = Memory.read_word mem addr in
            (addr, bits, is_float)))
      redux_ranges
  in
  { worker; writes; live_in_reads; redux_words; reg_partials;
    pages_touched = Memory.dirty_count mem }

type merged = {
  (* word address -> the interval's winning (latest-iteration) write *)
  overlay : (int, word_write) Hashtbl.t;
  (* per-worker redux snapshots and register partials, kept for
     recovery and final commit *)
  contributions : contribution list;
  violation : Misspec.reason option;
  total_pages : int;
}

(* Phase-2 validation + last-writer-wins merge.

   The merge pass that builds the overlay also builds a per-word
   writer index ([-1] = more than one distinct worker), so phase 2 is
   a single O(1) lookup per live-in byte instead of a scan over every
   writer's contribution — O(live-in bytes) total where the old
   nested-list pass was O(readers x live-in bytes x writers). *)
let merge (contribs : contribution list) =
  let overlay = Hashtbl.create 1024 in
  let writers = Hashtbl.create 1024 in (* word -> sole writer, or -1 *)
  let violation = ref None in
  (* Last-writer-wins across workers; record who wrote each word. *)
  List.iter
    (fun c ->
      Hashtbl.iter
        (fun addr (w : word_write) ->
          (match Hashtbl.find_opt writers addr with
          | None -> Hashtbl.replace writers addr c.worker
          | Some id when id = c.worker || id = -1 -> ()
          | Some _ -> Hashtbl.replace writers addr (-1));
          match Hashtbl.find_opt overlay addr with
          | Some prev when prev.iter >= w.iter -> ()
          | Some _ | None -> Hashtbl.replace overlay addr w)
        c.writes)
    contribs;
  (* Phase 2: a live-in read by worker w conflicts with any write to
     the same byte by a different worker (conservative: regardless of
     iteration order, as in the paper's one-byte-metadata design). *)
  List.iter
    (fun reader ->
      if !violation = None then
        Hashtbl.iter
          (fun addr () ->
            if !violation = None then
              match Hashtbl.find_opt writers (addr land lnot 7) with
              | Some id when id <> reader.worker ->
                violation := Some (Misspec.Phase2 { addr })
              | Some _ | None -> ())
          reader.live_in_reads)
    contribs;
  let total_pages = List.fold_left (fun acc c -> acc + c.pages_touched) 0 contribs in
  { overlay; contributions = contribs; violation = !violation; total_pages }

(* Install a merged overlay into the main process's memory (the
   paper's "replaces its heaps with those from the last valid
   checkpoint" uses mmap; we write the bytes). *)
let apply_overlay (machine : Machine.t) merged =
  Hashtbl.iter
    (fun addr (w : word_write) ->
      Memory.write_word machine.Machine.mem addr w.bits w.is_float)
    merged.overlay

(* Combine worker reduction partials over the base (pre-interval)
   values: final = base op partial_1 op ... op partial_n. *)
let merge_redux ~(redux_ranges : (int * int * Privateer_ir.Ast.binop) list)
    ~(base : (int * Value.t) list) (contribs : contribution list) =
  let op_of addr =
    List.find_map
      (fun (b, s, op) -> if addr >= b && addr < b + s then Some op else None)
      redux_ranges
  in
  List.map
    (fun (addr, base_v) ->
      let op = match op_of addr with Some op -> op | None -> assert false in
      let v =
        List.fold_left
          (fun acc c ->
            match List.find_opt (fun (a, _, _) -> a = addr) c.redux_words with
            | Some (_, bits, is_float) ->
              Privateer_analysis.Reduction.merge_values op acc
                (Value.of_bits bits is_float)
            | None -> acc)
          base_v contribs
      in
      (addr, v))
    base

(* Combine register-reduction partials similarly. *)
let merge_reg_partials ~(ops : (string * Privateer_ir.Ast.binop) list)
    ~(base : (string * Value.t) list) (contribs : contribution list) =
  List.map
    (fun (name, base_v) ->
      let op = List.assoc name ops in
      let v =
        List.fold_left
          (fun acc c ->
            match List.assoc_opt name c.reg_partials with
            | Some p -> Privateer_analysis.Reduction.merge_values op acc p
            | None -> acc)
          base_v contribs
      in
      (name, v))
    base
