(* Checkpoint objects and the two-phase privacy validation
   (paper sections 5.1-5.2).

   Per checkpoint interval, each worker contributes its speculative
   state: the private bytes it wrote (with the writing iteration
   decoded from shadow timestamps), the bytes it read as live-in, a
   snapshot of its reduction partials, its register-reduction
   partials, and its deferred output.  Merging performs:

   - phase-2 privacy validation: a byte one worker read as live-in
     must not have been written by another worker (conservatively, at
     any earlier point);
   - last-writer-wins combination of private bytes across workers by
     iteration number, yielding the overlay to commit onto the main
     process's heaps.

   Host parallelism: the per-page extraction scans are independent —
   every shadow page covers a disjoint range of private words — so
   [extract] can fan them out over a [Domain_pool], per worker and per
   page chunk.  Tasks only read the (quiescent) worker memories and
   fill task-local tables; chunk results merge over disjoint key sets,
   so the assembled contributions are byte-identical to the sequential
   scan at any pool size. *)

open Privateer_ir
open Privateer_machine
open Privateer_interp
module Domain_pool = Privateer_support.Domain_pool

type word_write = { iter : int; bits : int64; is_float : bool }

type contribution = {
  worker : int;
  (* private word address -> latest write this interval.  Word
     granularity preserves the float tags of the simulated memory; the
     iteration is the latest timestamp among the word's bytes. *)
  writes : (int, word_write) Hashtbl.t;
  (* byte addresses this worker read as live-in (metadata 2) *)
  live_in_reads : (int, unit) Hashtbl.t;
  (* snapshot of the worker's reduction-heap partials *)
  redux_words : (int * int64 * bool) list;
  (* register-reduction partials *)
  reg_partials : (string * Value.t) list;
  pages_touched : int; (* for checkpoint copy cost accounting *)
}

(* Scan one flagged shadow page into the given tables.  [interval_start]
   decodes shadow timestamps into iteration numbers.  Pages whose
   summary flags show neither timestamps nor read-live-in marks are
   skipped without a scan; flagged pages are scanned word-wise directly
   on the page bytes (an all-zero metadata word is all live-in). *)
let scan_page ~interval_start mem key writes live_in_reads =
  match Memory.find_page mem (Memory.base_of_page key) with
  | None -> ()
  | Some page ->
    if Memory.any_timestamp page || Memory.any_live_in_read page then begin
      let bytes = Memory.page_bytes page in
      let base = Memory.base_of_page key in
      let off = ref 0 in
      while !off < Memory.page_size do
        if Bytes.get_int64_le bytes !off = 0L then off := !off + 8
        else begin
          let fin = !off + 8 in
          while !off < fin do
            let m = Char.code (Bytes.unsafe_get bytes !off) in
            if Shadow.is_timestamp m then begin
              let private_addr = Heap.private_of_shadow (base + !off) in
              let word_addr = private_addr land lnot 7 in
              let iter = Shadow.iteration_of_timestamp ~interval_start m in
              let keep =
                match Hashtbl.find_opt writes word_addr with
                | Some prev -> iter > prev.iter
                | None -> true
              in
              if keep then begin
                let bits, is_float = Memory.read_word mem word_addr in
                Hashtbl.replace writes word_addr { iter; bits; is_float }
              end
            end
            else if m = Shadow.read_live_in then
              Hashtbl.replace live_in_reads
                (Heap.private_of_shadow (base + !off))
                ();
            incr off
          done
        end
      done
    end

(* Split [keys] into at most [n] contiguous chunks, preserving order
   (so each chunk replays the sequential scan order of its pages). *)
let chunk_keys n keys =
  let len = List.length keys in
  if len = 0 then []
  else begin
    let n = max 1 (min n len) in
    let per = (len + n - 1) / n in
    let rec take k acc = function
      | [] -> (List.rev acc, [])
      | l when k = 0 -> (List.rev acc, l)
      | x :: tl -> take (k - 1) (x :: acc) tl
    in
    let rec split = function
      | [] -> []
      | l ->
        let chunk, rest = take per [] l in
        chunk :: split rest
    in
    split keys
  end

type extract_request = {
  req_worker : int;
  req_machine : Machine.t;
  req_redux_ranges : (int * int * Privateer_ir.Ast.binop) list;
  req_reg_partials : (string * Value.t) list;
}

(* The sequential-or-parallel page scans of one request, as (writes,
   live-in) tables.  Word addresses from distinct shadow pages are
   disjoint, so merging per-chunk tables key-by-key reproduces the
   sequential tables exactly. *)
let finish_request req (writes, live_in_reads) =
  let mem = req.req_machine.Machine.mem in
  let redux_words =
    List.concat_map
      (fun (base, size, _op) ->
        let words = (size + 7) / 8 in
        List.init words (fun w ->
            let addr = base + (8 * w) in
            let bits, is_float = Memory.read_word mem addr in
            (addr, bits, is_float)))
      req.req_redux_ranges
  in
  { worker = req.req_worker; writes; live_in_reads; redux_words;
    reg_partials = req.req_reg_partials; pages_touched = Memory.dirty_count mem }

let scan_sequential ~interval_start mem keys =
  let writes = Hashtbl.create 256 in
  let live_in_reads = Hashtbl.create 16 in
  List.iter (fun key -> scan_page ~interval_start mem key writes live_in_reads) keys;
  (writes, live_in_reads)

(* Extract every worker's interval contribution.  With a pool of size
   > 1 the page scans fan out as one flat task list over (worker, page
   chunk); without one (or when there is nothing to scan in parallel)
   the scan runs sequentially — the reference path. *)
let extract ?pool ~interval_start (reqs : extract_request list) =
  let keyed =
    List.map
      (fun req ->
        (req, Memory.dirty_pages ~heap:Heap.Shadow req.req_machine.Machine.mem))
      reqs
  in
  let pool_size = match pool with Some p -> Domain_pool.size p | None -> 1 in
  let total_pages = List.fold_left (fun acc (_, ks) -> acc + List.length ks) 0 keyed in
  match pool with
  | Some pool when pool_size > 1 && total_pages > 1 ->
    (* One flat task list: each task scans one chunk of one worker's
       dirty pages into task-local tables. *)
    let jobs =
      List.concat_map
        (fun (req, keys) ->
          let mem = req.req_machine.Machine.mem in
          List.map
            (fun chunk -> (req.req_worker, fun () ->
                 let writes = Hashtbl.create 64 in
                 let live_in_reads = Hashtbl.create 16 in
                 List.iter
                   (fun key -> scan_page ~interval_start mem key writes live_in_reads)
                   chunk;
                 (writes, live_in_reads)))
            (chunk_keys pool_size keys))
        keyed
    in
    let parts = List.combine (List.map fst jobs) (Domain_pool.run pool (List.map snd jobs)) in
    List.map
      (fun (req, _) ->
        let writes = Hashtbl.create 256 in
        let live_in_reads = Hashtbl.create 16 in
        List.iter
          (fun (w, (pw, pl)) ->
            if w = req.req_worker then begin
              Hashtbl.iter (Hashtbl.replace writes) pw;
              Hashtbl.iter (Hashtbl.replace live_in_reads) pl
            end)
          parts;
        finish_request req (writes, live_in_reads))
      keyed
  | Some _ | None ->
    List.map
      (fun (req, keys) ->
        finish_request req
          (scan_sequential ~interval_start req.req_machine.Machine.mem keys))
      keyed

(* Extract a single worker's contribution (the historical entry point;
   [extract] is the batched, poolable form). *)
let contribution_of_worker ?pool ~worker ~interval_start (machine : Machine.t)
    ~redux_ranges ~reg_partials =
  match
    extract ?pool ~interval_start
      [ { req_worker = worker; req_machine = machine;
          req_redux_ranges = redux_ranges; req_reg_partials = reg_partials } ]
  with
  | [ c ] -> c
  | _ -> assert false

type merged = {
  (* word address -> the interval's winning (latest-iteration) write *)
  overlay : (int, word_write) Hashtbl.t;
  (* per-worker redux snapshots and register partials, kept for
     recovery and final commit *)
  contributions : contribution list;
  violation : Misspec.reason option;
  total_pages : int;
}

(* The word -> writer index carried across a worker cohort's intervals.
   Contributions are per-interval deltas (extraction visits only pages
   dirtied since the last checkpoint), so the index holds exactly one
   interval's entries while a merge is validating and is swept back to
   empty before the merge returns: the table (and its grown bucket
   array) persists, the content is per-interval.  [ms_index_ops] counts
   every insert/update/remove so tests can assert that clean intervals
   do no index work at all. *)
type merge_state = {
  ms_writers : (int, int) Hashtbl.t; (* word -> sole writer, or -1 *)
  mutable ms_index_ops : int;
}

let create_merge_state () = { ms_writers = Hashtbl.create 1024; ms_index_ops = 0 }

let index_ops state = state.ms_index_ops

(* Phase-2 validation + last-writer-wins merge.

   The merge pass that builds the overlay also fills the per-word
   writer index ([-1] = more than one distinct worker), so phase 2 is
   a single O(1) lookup per live-in byte instead of a scan over every
   writer's contribution — O(live-in bytes) total where the old
   nested-list pass was O(readers x live-in bytes x writers).

   With [?state], the index table is the carried one: merge cost is
   proportional to this interval's entries (insert the delta, sweep it
   out again), and an interval with no new writes short-circuits both
   the index fill and the phase-2 scan outright — no allocation, no
   hashing, no read iteration.  Verdicts are identical either way; the
   reported violation is pinned to the smallest conflicting byte
   address so it cannot depend on hash-table iteration order (and
   therefore not on the extraction pool size). *)
let merge ?state (contribs : contribution list) =
  let st = match state with Some s -> s | None -> create_merge_state () in
  let writers = st.ms_writers in
  let have_writes =
    List.exists (fun c -> Hashtbl.length c.writes > 0) contribs
  in
  let overlay = Hashtbl.create (if have_writes then 1024 else 1) in
  let violation = ref None in
  if have_writes then begin
    let inserted = ref [] in
    (* Last-writer-wins across workers; record who wrote each word. *)
    List.iter
      (fun c ->
        Hashtbl.iter
          (fun addr (w : word_write) ->
            (match Hashtbl.find_opt writers addr with
            | None ->
              Hashtbl.replace writers addr c.worker;
              inserted := addr :: !inserted;
              st.ms_index_ops <- st.ms_index_ops + 1
            | Some id when id = c.worker || id = -1 -> ()
            | Some _ ->
              Hashtbl.replace writers addr (-1);
              st.ms_index_ops <- st.ms_index_ops + 1);
            match Hashtbl.find_opt overlay addr with
            | Some prev when prev.iter >= w.iter -> ()
            | Some _ | None -> Hashtbl.replace overlay addr w)
          c.writes)
      contribs;
    (* Phase 2: a live-in read by worker w conflicts with any write to
       the same byte by a different worker (conservative: regardless of
       iteration order, as in the paper's one-byte-metadata design).
       The smallest conflicting byte address is reported. *)
    List.iter
      (fun reader ->
        Hashtbl.iter
          (fun addr () ->
            match Hashtbl.find_opt writers (addr land lnot 7) with
            | Some id when id <> reader.worker -> (
              match !violation with
              | Some a when a <= addr -> ()
              | Some _ | None -> violation := Some addr)
            | Some _ | None -> ())
          reader.live_in_reads)
      contribs;
    (* Sweep this interval's delta back out so the carried index is
       empty again (content is per-interval; only the allocation is
       carried). *)
    List.iter
      (fun addr ->
        Hashtbl.remove writers addr;
        st.ms_index_ops <- st.ms_index_ops + 1)
      !inserted
  end;
  let total_pages = List.fold_left (fun acc c -> acc + c.pages_touched) 0 contribs in
  { overlay; contributions = contribs;
    violation = Option.map (fun addr -> Misspec.Phase2 { addr }) !violation;
    total_pages }

(* Install a merged overlay into the main process's memory (the
   paper's "replaces its heaps with those from the last valid
   checkpoint" uses mmap; we write the bytes). *)
let apply_overlay (machine : Machine.t) merged =
  Hashtbl.iter
    (fun addr (w : word_write) ->
      Memory.write_word machine.Machine.mem addr w.bits w.is_float)
    merged.overlay

(* Combine worker reduction partials over the base (pre-interval)
   values: final = base op partial_1 op ... op partial_n. *)
let merge_redux ~(redux_ranges : (int * int * Privateer_ir.Ast.binop) list)
    ~(base : (int * Value.t) list) (contribs : contribution list) =
  let op_of addr =
    List.find_map
      (fun (b, s, op) -> if addr >= b && addr < b + s then Some op else None)
      redux_ranges
  in
  List.map
    (fun (addr, base_v) ->
      let op = match op_of addr with Some op -> op | None -> assert false in
      let v =
        List.fold_left
          (fun acc c ->
            match List.find_opt (fun (a, _, _) -> a = addr) c.redux_words with
            | Some (_, bits, is_float) ->
              Privateer_analysis.Reduction.merge_values op acc
                (Value.of_bits bits is_float)
            | None -> acc)
          base_v contribs
      in
      (addr, v))
    base

(* Combine register-reduction partials similarly. *)
let merge_reg_partials ~(ops : (string * Privateer_ir.Ast.binop) list)
    ~(base : (string * Value.t) list) (contribs : contribution list) =
  List.map
    (fun (name, base_v) ->
      let op = List.assoc name ops in
      let v =
        List.fold_left
          (fun acc c ->
            match List.assoc_opt name c.reg_partials with
            | Some p -> Privateer_analysis.Reduction.merge_values op acc p
            | None -> acc)
          base_v contribs
      in
      (name, v))
    base
