(* Checkpoint objects and the two-phase privacy validation
   (paper sections 5.1-5.2).

   Per checkpoint interval, each worker contributes its speculative
   state: the private bytes it wrote (with the writing iteration
   decoded from shadow timestamps), the bytes it read as live-in, a
   snapshot of its reduction partials, its register-reduction
   partials, and its deferred output.  Merging performs:

   - phase-2 privacy validation: a byte one worker read as live-in
     must not have been written by another worker (conservatively, at
     any earlier point);
   - last-writer-wins combination of private bytes across workers by
     iteration number, yielding the overlay to commit onto the main
     process's heaps.

   Host parallelism: the per-page extraction scans are independent —
   every shadow page covers a disjoint range of private words — so
   [extract] can fan them out over a [Domain_pool], per worker and per
   page chunk.  Tasks only read the (quiescent) worker memories and
   fill task-local tables; chunk results merge over disjoint key sets,
   so the assembled contributions are byte-identical to the sequential
   scan at any pool size. *)

open Privateer_ir
open Privateer_machine
open Privateer_interp
module Domain_pool = Privateer_support.Domain_pool
module Clock = Privateer_support.Clock

type word_write = { iter : int; bits : int64; is_float : bool }

(* The 8-byte word containing a byte address.  Writes are tracked at
   word granularity (to preserve float tags); this is the one mask
   that maps a byte-granular shadow mark onto that index, used by both
   the extraction scan and the phase-2 probe. *)
let word_base addr = addr land lnot 7

type contribution = {
  worker : int;
  (* private word address -> latest write this interval.  Word
     granularity preserves the float tags of the simulated memory; the
     iteration is the latest timestamp among the word's bytes. *)
  writes : (int, word_write) Hashtbl.t;
  (* byte addresses this worker read as live-in (metadata 2) *)
  live_in_reads : (int, unit) Hashtbl.t;
  (* snapshot of the worker's reduction-heap partials *)
  redux_words : (int * int64 * bool) list;
  (* register-reduction partials *)
  reg_partials : (string * Value.t) list;
  pages_touched : int; (* for checkpoint copy cost accounting *)
}

(* Scan one flagged shadow page into the given tables.  [interval_start]
   decodes shadow timestamps into iteration numbers.  Pages whose
   summary flags show neither timestamps nor read-live-in marks are
   skipped without a scan; flagged pages are scanned word-wise directly
   on the page bytes (an all-zero metadata word is all live-in).

   The scan is bounded by the page's exact mark counts: once
   [timestamp_bytes + live_in_bytes] marked bytes have been found, the
   rest of the page is provably unmarked (live-in or old-write) and
   the scan stops — O(marked bytes) on sparse pages instead of
   O(page).  Machines driven through [Shadow_reference] never reach
   this loop: reference pages carry no summary flags, so the [any_*]
   guard filters them out before the counts matter. *)
let scan_page ~interval_start mem key writes live_in_reads =
  match Memory.find_page mem (Memory.base_of_page key) with
  | None -> ()
  | Some page ->
    if Memory.any_timestamp page || Memory.any_live_in_read page then begin
      let bytes = Memory.page_bytes page in
      let base = Memory.base_of_page key in
      let remaining =
        ref (Memory.timestamp_bytes page + Memory.live_in_bytes page)
      in
      let off = ref 0 in
      while !remaining > 0 && !off < Memory.page_size do
        if Bytes.get_int64_le bytes !off = 0L then off := !off + 8
        else begin
          let fin = !off + 8 in
          while !off < fin do
            let m = Char.code (Bytes.unsafe_get bytes !off) in
            if Shadow.is_timestamp m then begin
              decr remaining;
              let private_addr = Heap.private_of_shadow (base + !off) in
              let word_addr = word_base private_addr in
              let iter = Shadow.iteration_of_timestamp ~interval_start m in
              let keep =
                match Hashtbl.find_opt writes word_addr with
                | Some prev -> iter > prev.iter
                | None -> true
              in
              if keep then begin
                let bits, is_float = Memory.read_word mem word_addr in
                Hashtbl.replace writes word_addr { iter; bits; is_float }
              end
            end
            else if m = Shadow.read_live_in then begin
              decr remaining;
              Hashtbl.replace live_in_reads
                (Heap.private_of_shadow (base + !off))
                ()
            end;
            incr off
          done
        end
      done
    end

(* Split [keys] into at most [n] contiguous chunks, preserving order
   (so each chunk replays the sequential scan order of its pages). *)
let chunk_keys n keys =
  let len = List.length keys in
  if len = 0 then []
  else begin
    let n = max 1 (min n len) in
    let per = (len + n - 1) / n in
    let rec take k acc = function
      | [] -> (List.rev acc, [])
      | l when k = 0 -> (List.rev acc, l)
      | x :: tl -> take (k - 1) (x :: acc) tl
    in
    let rec split = function
      | [] -> []
      | l ->
        let chunk, rest = take per [] l in
        chunk :: split rest
    in
    split keys
  end

type extract_request = {
  req_worker : int;
  req_machine : Machine.t;
  req_redux_ranges : (int * int * Privateer_ir.Ast.binop) list;
  req_reg_partials : (string * Value.t) list;
}

(* The sequential-or-parallel page scans of one request, as (writes,
   live-in) tables.  Word addresses from distinct shadow pages are
   disjoint, so merging per-chunk tables key-by-key reproduces the
   sequential tables exactly. *)
let finish_request req (writes, live_in_reads) =
  let mem = req.req_machine.Machine.mem in
  let redux_words =
    List.concat_map
      (fun (base, size, _op) ->
        let words = (size + 7) / 8 in
        List.init words (fun w ->
            let addr = base + (8 * w) in
            let bits, is_float = Memory.read_word mem addr in
            (addr, bits, is_float)))
      req.req_redux_ranges
  in
  { worker = req.req_worker; writes; live_in_reads; redux_words;
    reg_partials = req.req_reg_partials; pages_touched = Memory.dirty_count mem }

let scan_sequential ~interval_start mem keys =
  let writes = Hashtbl.create 256 in
  let live_in_reads = Hashtbl.create 16 in
  List.iter (fun key -> scan_page ~interval_start mem key writes live_in_reads) keys;
  (writes, live_in_reads)

(* Extract every worker's interval contribution.  With a pool of size
   > 1 the page scans fan out as one flat task list over (worker, page
   chunk); without one (or when there is nothing to scan in parallel)
   the scan runs sequentially — the reference path.

   [plan] is the host controller's hook: it receives the dirty page
   count and the exact marked-byte total (the per-page timestamp +
   live-in mark counts the shadow fast path maintains — the same
   counts that bound the early-exit scan) and returns the per-worker
   chunk count; <= 1 selects the sequential path even with a pool.
   Without [plan], a configured pool fans out unconditionally at its
   size (the pre-controller behavior). *)
let extract ?pool ?plan ~interval_start (reqs : extract_request list) =
  let keyed =
    List.map
      (fun req ->
        (req, Memory.dirty_pages ~heap:Heap.Shadow req.req_machine.Machine.mem))
      reqs
  in
  let pool_size = match pool with Some p -> Domain_pool.size p | None -> 1 in
  let total_pages = List.fold_left (fun acc (_, ks) -> acc + List.length ks) 0 keyed in
  let chunks =
    match plan with
    | None -> pool_size
    | Some f ->
      let marked =
        List.fold_left
          (fun acc (req, keys) ->
            let mem = req.req_machine.Machine.mem in
            List.fold_left
              (fun acc key ->
                match Memory.find_page mem (Memory.base_of_page key) with
                | Some p -> acc + Memory.timestamp_bytes p + Memory.live_in_bytes p
                | None -> acc)
              acc keys)
          0 keyed
      in
      f ~pages:total_pages ~marked
  in
  match pool with
  | Some pool when pool_size > 1 && chunks > 1 && total_pages > 1 ->
    (* One flat task list: each task scans one chunk of one worker's
       dirty pages into task-local tables. *)
    let jobs =
      List.concat_map
        (fun (req, keys) ->
          let mem = req.req_machine.Machine.mem in
          List.map
            (fun chunk -> (req.req_worker, fun () ->
                 let writes = Hashtbl.create 64 in
                 let live_in_reads = Hashtbl.create 16 in
                 List.iter
                   (fun key -> scan_page ~interval_start mem key writes live_in_reads)
                   chunk;
                 (writes, live_in_reads)))
            (chunk_keys chunks keys))
        keyed
    in
    let parts = List.combine (List.map fst jobs) (Domain_pool.run pool (List.map snd jobs)) in
    List.map
      (fun (req, _) ->
        let writes = Hashtbl.create 256 in
        let live_in_reads = Hashtbl.create 16 in
        List.iter
          (fun (w, (pw, pl)) ->
            if w = req.req_worker then begin
              Hashtbl.iter (Hashtbl.replace writes) pw;
              Hashtbl.iter (Hashtbl.replace live_in_reads) pl
            end)
          parts;
        finish_request req (writes, live_in_reads))
      keyed
  | Some _ | None ->
    List.map
      (fun (req, keys) ->
        finish_request req
          (scan_sequential ~interval_start req.req_machine.Machine.mem keys))
      keyed

(* Extract a single worker's contribution (the historical entry point;
   [extract] is the batched, poolable form). *)
let contribution_of_worker ?pool ~worker ~interval_start (machine : Machine.t)
    ~redux_ranges ~reg_partials =
  match
    extract ?pool ~interval_start
      [ { req_worker = worker; req_machine = machine;
          req_redux_ranges = redux_ranges; req_reg_partials = reg_partials } ]
  with
  | [ c ] -> c
  | _ -> assert false

type merged = {
  (* winning (latest-iteration) write per word, sharded by word
     address exactly like the writer index ([shard_of]); every word
     lives in exactly one slice.  Use [find_overlay] / [iter_overlay] /
     [overlay_size] rather than indexing by hand. *)
  overlay : (int, word_write) Hashtbl.t array;
  (* per-worker redux snapshots and register partials, kept for
     recovery and final commit *)
  contributions : contribution list;
  violation : Misspec.reason option;
  total_pages : int;
}

(* Which shard owns a word address.  [addr] is 8-byte aligned, so the
   low bits are dropped before the mod: consecutive words land on
   consecutive shards, spreading dense runs evenly. *)
let shard_of ~shards addr = (addr lsr 3) mod shards

let overlay_size m =
  Array.fold_left (fun acc t -> acc + Hashtbl.length t) 0 m.overlay

let find_overlay m addr =
  Hashtbl.find_opt m.overlay.(shard_of ~shards:(Array.length m.overlay) addr) addr

let iter_overlay m ~f = Array.iter (Hashtbl.iter f) m.overlay

(* The word -> writer index carried across a worker cohort's intervals,
   split into [shards] address-sharded slices so the fill / validate /
   sweep passes can run as disjoint per-shard jobs.  Contributions are
   per-interval deltas (extraction visits only pages dirtied since the
   last checkpoint), so each slice holds exactly one interval's entries
   while a merge is validating and is swept back to empty before the
   merge returns: the tables (and their grown bucket arrays) persist,
   the content is per-interval.  [ms_index_ops] counts every
   insert/update/remove so tests can assert that clean intervals do no
   index work at all; the [ms_*_ns] accumulators attribute host wall
   time per merge phase (instrumentation only — host time never feeds
   back into simulated state). *)
type merge_state = {
  ms_shards : (int, int) Hashtbl.t array; (* word -> sole writer, or -1 *)
  mutable ms_index_ops : int;
  mutable ms_fill_ns : float;
  mutable ms_validate_ns : float;
  mutable ms_sweep_ns : float;
}

let default_shards = 8

let create_merge_state ?(shards = default_shards) () =
  if shards < 1 then invalid_arg "Checkpoint.create_merge_state: shards < 1";
  { ms_shards = Array.init shards (fun _ -> Hashtbl.create 256);
    ms_index_ops = 0; ms_fill_ns = 0.0; ms_validate_ns = 0.0; ms_sweep_ns = 0.0 }

let shard_count state = Array.length state.ms_shards
let index_ops state = state.ms_index_ops

type phase_ns = { fill_ns : float; validate_ns : float; sweep_ns : float }

let phase_timings state =
  { fill_ns = state.ms_fill_ns; validate_ns = state.ms_validate_ns;
    sweep_ns = state.ms_sweep_ns }

(* Phase-2 validation + last-writer-wins merge, in three passes over
   address-disjoint shards:

   1. index fill: route every contributed word write to its shard —
      build that shard's overlay slice last-writer-wins by iteration
      and record the word's sole writer ([-1] = more than one distinct
      worker) in the shard's writer index;
   2. validate: for every live-in byte, one O(1) probe of the owning
      shard's index — a write by a different worker is a phase-2
      privacy violation (conservative: regardless of iteration order,
      as in the paper's one-byte-metadata design);
   3. sweep: remove this interval's inserted delta so every shard's
      carried index is empty again.

   With [?pool] (size > 1), each pass runs as parallel jobs over
   contiguous shard groups on the pool's domains — [jobs] groups
   (clamped to [1, shards]; default one job per shard, the
   pre-controller granularity; <= 1 selects the sequential path).
   Jobs read the quiescent contributions and touch only their own
   shards' tables, so no two jobs share mutable state; the per-shard
   entry streams are the same subsequences in either mode and at any
   grouping, making tables, op counts and overlay slices identical to
   the sequential path at any domain count.  The violation verdict is
   the minimum over per-group minima of per-shard minima — i.e. still
   the globally smallest conflicting byte address, so the verdict
   cannot depend on shard count, job count, domain count, or hash
   iteration order.  Without a pool, a single pass routes each
   address to its shard directly (no per-shard re-walk of the
   contributions).

   With [?state], the shard tables are the carried ones: merge cost is
   proportional to this interval's entries (insert the delta, sweep it
   out again), and an interval with no new writes short-circuits all
   three passes outright — no allocation, no hashing, no read
   iteration, no pool dispatch. *)
let merge ?state ?pool ?jobs (contribs : contribution list) =
  let st = match state with Some s -> s | None -> create_merge_state () in
  let shards = Array.length st.ms_shards in
  let have_writes =
    List.exists (fun c -> Hashtbl.length c.writes > 0) contribs
  in
  let overlay =
    Array.init shards (fun _ -> Hashtbl.create (if have_writes then 64 else 1))
  in
  let violation = ref None in
  if have_writes then begin
    let jobs = match jobs with Some j -> max 0 (min j shards) | None -> shards in
    let par =
      match pool with
      | Some p when Domain_pool.size p > 1 && jobs > 1 -> Some p
      | _ -> None
    in
    (* Contiguous shard groups, one parallel job each.  [jobs >=
       shards] degenerates to one group per shard. *)
    let groups =
      let per = (shards + max 1 jobs - 1) / max 1 jobs in
      List.init ((shards + per - 1) / per) (fun j ->
          (j * per, min shards ((j + 1) * per)))
    in
    let inserted = Array.make shards [] in
    (* Route one word write into shard tables [writers]/[ov];
       [ins]/[ops] are the shard-local accumulation cells. *)
    let fill_word writers ov ins ops addr (w : word_write) worker =
      (match Hashtbl.find_opt writers addr with
      | None ->
        Hashtbl.replace writers addr worker;
        ins := addr :: !ins;
        incr ops
      | Some id when id = worker || id = -1 -> ()
      | Some _ ->
        Hashtbl.replace writers addr (-1);
        incr ops);
      match Hashtbl.find_opt ov addr with
      | Some prev when prev.iter >= w.iter -> ()
      | Some _ | None -> Hashtbl.replace ov addr w
    in
    let t0 = Clock.now_ns () in
    (* Pass 1: index fill. *)
    (match par with
    | None ->
      let ops = ref 0 in
      let ins = Array.init shards (fun _ -> ref []) in
      List.iter
        (fun c ->
          Hashtbl.iter
            (fun addr w ->
              let s = shard_of ~shards addr in
              fill_word st.ms_shards.(s) overlay.(s) ins.(s) ops addr w c.worker)
            c.writes)
        contribs;
      Array.iteri (fun s r -> inserted.(s) <- !r) ins;
      st.ms_index_ops <- st.ms_index_ops + !ops
    | Some p ->
      let results =
        Domain_pool.run p
          (List.map
             (fun (lo, hi) () ->
               (* One walk per group, routing to the group's shards —
                  each shard's entry stream is the same subsequence
                  the per-shard job saw, so tables and op counts are
                  grouping-invariant. *)
               let ins = Array.init shards (fun _ -> ref []) in
               let ops = ref 0 in
               List.iter
                 (fun c ->
                   Hashtbl.iter
                     (fun addr w ->
                       let s = shard_of ~shards addr in
                       if s >= lo && s < hi then
                         fill_word st.ms_shards.(s) overlay.(s) ins.(s) ops addr w
                           c.worker)
                     c.writes)
                 contribs;
               (lo, hi, Array.map ( ! ) ins, !ops))
             groups)
      in
      List.iter
        (fun (lo, hi, ins, ops) ->
          for s = lo to hi - 1 do
            inserted.(s) <- ins.(s)
          done;
          st.ms_index_ops <- st.ms_index_ops + ops)
        results);
    let t1 = Clock.now_ns () in
    (* Pass 2: validate.  [probe] is one lookup in the shard owning
       the byte's word. *)
    let probe reader_worker addr =
      let wb = word_base addr in
      match Hashtbl.find_opt st.ms_shards.(shard_of ~shards wb) wb with
      | Some id when id <> reader_worker -> true
      | Some _ | None -> false
    in
    (match par with
    | None ->
      List.iter
        (fun reader ->
          Hashtbl.iter
            (fun addr () ->
              if probe reader.worker addr then
                match !violation with
                | Some a when a <= addr -> ()
                | Some _ | None -> violation := Some addr)
            reader.live_in_reads)
        contribs
    | Some p ->
      let minima =
        Domain_pool.run p
          (List.map
             (fun (lo, hi) () ->
               let best = ref None in
               List.iter
                 (fun reader ->
                   Hashtbl.iter
                     (fun addr () ->
                       let s = shard_of ~shards (word_base addr) in
                       if s >= lo && s < hi && probe reader.worker addr then
                         match !best with
                         | Some a when a <= addr -> ()
                         | Some _ | None -> best := Some addr)
                     reader.live_in_reads)
                 contribs;
               !best)
             groups)
      in
      violation :=
        List.fold_left
          (fun acc m ->
            match (acc, m) with
            | None, m -> m
            | acc, None -> acc
            | Some a, Some b -> Some (min a b))
          None minima);
    let t2 = Clock.now_ns () in
    (* Pass 3: sweep this interval's delta back out so the carried
       index is empty again (content is per-interval; only the
       allocations are carried). *)
    (match par with
    | None ->
      Array.iteri
        (fun s ins ->
          let writers = st.ms_shards.(s) in
          List.iter (fun addr -> Hashtbl.remove writers addr) ins;
          st.ms_index_ops <- st.ms_index_ops + List.length ins)
        inserted
    | Some p ->
      let swept =
        Domain_pool.run p
          (List.map
             (fun (lo, hi) () ->
               let k = ref 0 in
               for s = lo to hi - 1 do
                 let writers = st.ms_shards.(s) in
                 List.iter (fun addr -> Hashtbl.remove writers addr) inserted.(s);
                 k := !k + List.length inserted.(s)
               done;
               !k)
             groups)
      in
      List.iter (fun k -> st.ms_index_ops <- st.ms_index_ops + k) swept);
    let t3 = Clock.now_ns () in
    st.ms_fill_ns <- st.ms_fill_ns +. (t1 -. t0);
    st.ms_validate_ns <- st.ms_validate_ns +. (t2 -. t1);
    st.ms_sweep_ns <- st.ms_sweep_ns +. (t3 -. t2)
  end;
  let total_pages = List.fold_left (fun acc c -> acc + c.pages_touched) 0 contribs in
  { overlay; contributions = contribs;
    violation = Option.map (fun addr -> Misspec.Phase2 { addr }) !violation;
    total_pages }

(* Install a merged overlay into the main process's memory (the
   paper's "replaces its heaps with those from the last valid
   checkpoint" uses mmap; we write the bytes).  Every word lives in
   exactly one shard slice, so the write order across slices cannot
   matter. *)
let apply_overlay (machine : Machine.t) merged =
  iter_overlay merged ~f:(fun addr (w : word_write) ->
      Memory.write_word machine.Machine.mem addr w.bits w.is_float)

(* Combine worker reduction partials over the base (pre-interval)
   values: final = base op partial_1 op ... op partial_n. *)
let merge_redux ~(redux_ranges : (int * int * Privateer_ir.Ast.binop) list)
    ~(base : (int * Value.t) list) (contribs : contribution list) =
  let op_of addr =
    List.find_map
      (fun (b, s, op) -> if addr >= b && addr < b + s then Some op else None)
      redux_ranges
  in
  List.map
    (fun (addr, base_v) ->
      let op = match op_of addr with Some op -> op | None -> assert false in
      let v =
        List.fold_left
          (fun acc c ->
            match List.find_opt (fun (a, _, _) -> a = addr) c.redux_words with
            | Some (_, bits, is_float) ->
              Privateer_analysis.Reduction.merge_values op acc
                (Value.of_bits bits is_float)
            | None -> acc)
          base_v contribs
      in
      (addr, v))
    base

(* Combine register-reduction partials similarly. *)
let merge_reg_partials ~(ops : (string * Privateer_ir.Ast.binop) list)
    ~(base : (string * Value.t) list) (contribs : contribution list) =
  List.map
    (fun (name, base_v) ->
      let op = List.assoc name ops in
      let v =
        List.fold_left
          (fun acc c ->
            match List.assoc_opt name c.reg_partials with
            | Some p -> Privateer_analysis.Reduction.merge_values op acc p
            | None -> acc)
          base_v contribs
      in
      (name, v))
    base
