(* Runtime statistics: the counters behind the paper's Table 3 and the
   Figure 8 overhead breakdown. *)

(* Per-loop runtime health, keyed by the loop's IR node id.  Feeds the
   throttle's suspension decision and the CLI/bench per-loop report. *)
type loop_stats = {
  mutable l_invocations : int;
  mutable l_misspeculations : int;
  mutable l_wall_cycles : int; (* wall time of this loop's parallel invocations *)
  mutable l_demotions : int; (* invocations demoted mid-flight by the throttle *)
  mutable l_suspended_invocations : int; (* invocations run sequentially while suspended *)
}

type t = {
  mutable invocations : int;
  mutable checkpoints : int;
  mutable private_bytes_read : int;
  mutable private_bytes_written : int;
  mutable separation_checks : int;
  mutable separation_checks_elided : int; (* static count, filled by caller *)
  mutable misspeculations : int;
  mutable recovered_iterations : int;
  mutable iterations : int;
  (* Overhead cycle accounting (Figure 8 categories). *)
  mutable cyc_useful : int;
  mutable cyc_private_read : int;
  mutable cyc_private_write : int;
  mutable cyc_checkpoint : int;
  mutable cyc_spawn : int;
  mutable cyc_join : int;
  mutable cyc_recovery : int;
  (* Eager-validation accounting.  Deterministic within one validation
     mode (pure functions of the simulated execution, identical at any
     host-parallelism setting) but *not* part of the cross-mode
     identity surface: commit mode never kills early, so these — and
     only these among the simulated counters — legitimately differ
     between --validation eager and commit.  squashed_iterations is
     maintained in both modes: it is the wasted-work metric the two
     modes are compared on. *)
  mutable eager_kills : int; (* intervals cut short by the conflict board *)
  mutable eager_checks : int; (* accesses published to the board *)
  mutable eager_hits : int; (* coarse page hits that ran a precise confirm *)
  mutable squashed_iterations : int;
      (* speculative iterations executed inside intervals that were
         then squashed (their work discarded) — in either mode *)
  mutable avoided_iterations : int;
      (* iterations of squashed intervals never executed because an
         eager kill stopped the interval first: commit mode's waste,
         saved *)
  (* Wall-clock (simulated cycles) of all parallel invocations. *)
  mutable wall_cycles : int;
  mutable workers : int;
  (* Host wall time spent in the checkpoint merge, split by phase
     (index fill / phase-2 validate / delta sweep).  Unlike every
     other field these are host-side instrumentation, not simulated
     state: they vary run to run and with host parallelism, and must
     never feed a simulated decision. *)
  mutable ns_merge_fill : float;
  mutable ns_merge_validate : float;
  mutable ns_merge_sweep : float;
  (* Host wall time of the other three host-parallel stages (interval
     reset, checkpoint extraction, spawn setup) — instrumentation like
     ns_merge_*, feeding the host controller and the CLI report. *)
  mutable ns_reset : float;
  mutable ns_extract : float;
  mutable ns_spawn : float;
  (* How often the host controller ran each stage parallel vs
     sequentially.  Host-side like the ns_* fields: in auto mode the
     split follows observed host timings, so it may vary run to run
     and must never feed a simulated decision. *)
  mutable par_resets : int;
  mutable seq_resets : int;
  mutable par_extracts : int;
  mutable seq_extracts : int;
  mutable par_merges : int;
  mutable seq_merges : int;
  mutable par_spawns : int;
  mutable seq_spawns : int;
  loops : (int, loop_stats) Hashtbl.t;
}

let create () =
  { invocations = 0; checkpoints = 0; private_bytes_read = 0;
    private_bytes_written = 0; separation_checks = 0; separation_checks_elided = 0;
    misspeculations = 0; recovered_iterations = 0; iterations = 0; cyc_useful = 0;
    cyc_private_read = 0; cyc_private_write = 0; cyc_checkpoint = 0; cyc_spawn = 0;
    cyc_join = 0; cyc_recovery = 0; eager_kills = 0; eager_checks = 0;
    eager_hits = 0; squashed_iterations = 0; avoided_iterations = 0;
    wall_cycles = 0; workers = 0;
    ns_merge_fill = 0.0; ns_merge_validate = 0.0; ns_merge_sweep = 0.0;
    ns_reset = 0.0; ns_extract = 0.0; ns_spawn = 0.0; par_resets = 0;
    seq_resets = 0; par_extracts = 0; seq_extracts = 0; par_merges = 0;
    seq_merges = 0; par_spawns = 0; seq_spawns = 0; loops = Hashtbl.create 4 }

let loop_stats t loop =
  match Hashtbl.find_opt t.loops loop with
  | Some ls -> ls
  | None ->
    let ls =
      { l_invocations = 0; l_misspeculations = 0; l_wall_cycles = 0; l_demotions = 0;
        l_suspended_invocations = 0 }
    in
    Hashtbl.replace t.loops loop ls;
    ls

let loop_table t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun loop ls acc -> (loop, ls) :: acc) t.loops [])

(* Total capacity of the parallel region: cores x duration, the
   denominator of the paper's Figure 8 normalization. *)
let capacity t = t.workers * t.wall_cycles

type breakdown = {
  useful : float;
  private_read : float;
  private_write : float;
  checkpoint : float;
  spawn_join : float;
  other : float;
}

let breakdown t =
  let cap = float_of_int (max 1 (capacity t)) in
  let pct c = 100.0 *. float_of_int c /. cap in
  let useful = pct t.cyc_useful in
  let private_read = pct t.cyc_private_read in
  let private_write = pct t.cyc_private_write in
  let checkpoint = pct t.cyc_checkpoint in
  let spawn_join = pct (t.cyc_spawn + t.cyc_join) in
  let other = max 0.0 (100.0 -. useful -. private_read -. private_write -. checkpoint -. spawn_join) in
  { useful; private_read; private_write; checkpoint; spawn_join; other }
