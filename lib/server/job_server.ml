(* Privateer as a service: a job server multiplexing concurrent
   speculative pipelines over one shared domain pool.

   Each job is a whole pipeline — profile (train input), classify,
   transform, speculative parallel run (run input) — and jobs run
   concurrently as tasks on the process's work-stealing `Domain_pool`:
   a job body is one submitted future, and the stage fan-outs it
   performs (checkpoint extraction, merge shards, interval reset) are
   nested `Domain_pool.run` calls whose tasks interleave with other
   jobs' on the same deques.

   Determinism contract: a job's simulated cycles, output, result and
   every non-host stats counter (everything but the `ns_*` wall-time
   accumulators and the `par_*`/`seq_*` controller decision counters)
   depend only on the job itself, never on what else is in flight —
   N jobs at any `max_inflight` are byte-identical to the same jobs
   run serially.  [fingerprint] digests exactly that deterministic
   surface, so the bench and tests can assert the contract cheaply.

   Admission control: at most [effective_inflight] jobs run at once
   (the configured `max_inflight` clamped to the host core count —
   on a 1-core host jobs run sequentially, concurrency could only add
   scheduling overhead), and at most `queue_cap` accepted jobs may
   wait in the queue; a full queue blocks [submit] (backpressure) and
   rejects [try_submit]. *)

module Domain_pool = Privateer_support.Domain_pool
module Clock = Privateer_support.Clock
module Json = Privateer_support.Json
module RC = Privateer_parallel.Runtime_config
module Stats = Privateer_runtime.Stats
module Pipeline = Privateer.Pipeline

(* ---- job specification ------------------------------------------------ *)

type job_spec = {
  js_name : string;
  js_program : Privateer_ir.Ast.program;
      (* parsed per spec (ASTs are not shared between concurrent jobs) *)
  js_train : Pipeline.setup; (* profiling input *)
  js_run : Pipeline.setup; (* evaluation input *)
  js_config : RC.t;
  js_baseline : bool;
      (* also run the original program sequentially and record
         output_identical / speedup *)
}

let job_spec ?(train = Pipeline.no_setup) ?(run = Pipeline.no_setup)
    ?(config = RC.default) ?(baseline = false) ~name program =
  { js_name = name; js_program = program; js_train = train; js_run = run;
    js_config = config; js_baseline = baseline }

(* ---- results and lifecycle -------------------------------------------- *)

type job_result = {
  jr_name : string;
  jr_cycles : int; (* simulated parallel cycles (deterministic) *)
  jr_output : string;
  jr_result : string; (* entry return value, printed *)
  jr_fallbacks : int;
  jr_stats : Stats.t;
  jr_fingerprint : string;
      (* digest of the deterministic surface: cycles, output, result,
         non-host stats, per-loop table *)
  jr_baseline_cycles : int option; (* when js_baseline *)
  jr_output_identical : bool option;
  jr_queue_ns : float; (* host: admission to launch *)
  jr_service_ns : float; (* host: launch to settle *)
  jr_profile_ns : float; (* host: profiling share of the training run *)
}

type state = Queued | Running | Done of job_result | Failed of string

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Failed _ -> "failed"

type job = {
  j_id : int;
  j_spec : job_spec;
  mutable j_state : state;
  mutable j_future : unit Domain_pool.future option;
      (* set when launched; its task settles after j_state is final *)
  j_submit_ns : float;
  mutable j_start_ns : float;
}

(* ---- the deterministic fingerprint ------------------------------------ *)

(* Everything here must be independent of host parallelism and of
   concurrent neighbours: simulated cycles and outputs, the
   non-instrumentation stats counters, and the per-loop table.  The
   ns_* accumulators and the controller's par_*/seq_* decision splits
   are host-side and deliberately excluded. *)
let deterministic_stats (s : Stats.t) =
  let loops =
    List.map
      (fun (loop, (ls : Stats.loop_stats)) ->
        Printf.sprintf "loop %d: inv %d miss %d wall %d dem %d susp %d" loop
          ls.l_invocations ls.l_misspeculations ls.l_wall_cycles ls.l_demotions
          ls.l_suspended_invocations)
      (Stats.loop_table s)
  in
  String.concat "\n"
    (Printf.sprintf
       "inv %d ckpt %d pbr %d pbw %d sc %d sce %d miss %d rec %d iter %d"
       s.invocations s.checkpoints s.private_bytes_read s.private_bytes_written
       s.separation_checks s.separation_checks_elided s.misspeculations
       s.recovered_iterations s.iterations
    :: Printf.sprintf "cyc %d %d %d %d %d %d %d wall %d workers %d" s.cyc_useful
         s.cyc_private_read s.cyc_private_write s.cyc_checkpoint s.cyc_spawn
         s.cyc_join s.cyc_recovery s.wall_cycles s.workers
    :: loops)

let fingerprint_of_run ~output ~result ~cycles ~fallbacks stats =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "cycles %d fallbacks %d\nresult %s\noutput:\n%s\nstats:\n%s"
          cycles fallbacks result output (deterministic_stats stats)))

(* ---- job execution ----------------------------------------------------- *)

(* The whole pipeline, on the caller's domain (possibly a pool worker).
   [pool] is the server's pool, passed straight to the executor so a
   concurrent job can never replace — and shut down — the shared pool
   through the `Domain_pool.shared` registry. *)
let execute_spec ?pool spec =
  let tr, profiler =
    Pipeline.compile ~setup:spec.js_train ~config:spec.js_config ?pool
      spec.js_program
  in
  let par = Pipeline.run_parallel ~setup:spec.js_run ~config:spec.js_config ?pool tr in
  let baseline =
    if spec.js_baseline then
      Some (Pipeline.run_sequential ~setup:spec.js_run spec.js_program)
    else None
  in
  let result = Privateer_interp.Value.to_string par.par_result in
  { jr_name = spec.js_name; jr_cycles = par.par_cycles; jr_output = par.par_output;
    jr_result = result; jr_fallbacks = par.fallbacks; jr_stats = par.stats;
    jr_fingerprint =
      fingerprint_of_run ~output:par.par_output ~result ~cycles:par.par_cycles
        ~fallbacks:par.fallbacks par.stats;
    jr_baseline_cycles =
      Option.map (fun (s : Pipeline.seq_run) -> s.seq_cycles) baseline;
    jr_output_identical =
      Option.map
        (fun (s : Pipeline.seq_run) -> String.equal s.seq_output par.par_output)
        baseline;
    jr_queue_ns = 0.0; jr_service_ns = 0.0;
    jr_profile_ns = Privateer_profile.Profiler.wall_ns profiler }

(* ---- the server -------------------------------------------------------- *)

type t = {
  sv_mutex : Mutex.t;
  sv_not_full : Condition.t; (* queue dropped below cap *)
  sv_changed : Condition.t; (* some job launched or settled *)
  sv_queue : job Queue.t; (* accepted, not yet launched *)
  sv_queue_cap : int; (* 0 = unbounded *)
  sv_requested_inflight : int;
  sv_inflight_cap : int; (* effective: clamped to host cores *)
  mutable sv_inflight : int;
  sv_pool : Domain_pool.t option; (* None: jobs run inline, one at a time *)
  sv_kind : Domain_pool.kind;
  sv_host_cores : int;
  sv_config : RC.t; (* server base config (host knobs of record) *)
  mutable sv_jobs : job list; (* every accepted job, reverse order *)
  mutable sv_next_id : int;
  mutable sv_started_ns : float;
  mutable sv_shut : bool;
}

(* Clamp the configured in-flight bound to what the host can actually
   run: on a 1-core box concurrent jobs only interleave on one core
   (and tax the GC), so the server degrades to sequential execution —
   the per-job determinism contract makes this invisible in results. *)
let effective_inflight_for ~host_cores ~max_inflight =
  if host_cores <= 1 then 1 else min max_inflight host_cores

let create ?host_cores ~config () =
  RC.validate config;
  let host_cores =
    match host_cores with
    | Some c -> max 1 c
    | None -> Domain.recommended_domain_count ()
  in
  let inflight = effective_inflight_for ~host_cores ~max_inflight:config.RC.max_inflight in
  (* The pool serves both levels of parallelism: job bodies and the
     stage fan-outs inside them.  Size it to the larger of the two
     demands; per-job configs are normalized to this size below. *)
  let pool_domains = max inflight config.RC.host_domains in
  let pool =
    if inflight > 1 || (pool_domains > 1 && host_cores > 1) then
      Some (Domain_pool.create ~kind:config.RC.pool_kind ~domains:pool_domains ())
    else None
  in
  { sv_mutex = Mutex.create (); sv_not_full = Condition.create ();
    sv_changed = Condition.create (); sv_queue = Queue.create ();
    sv_queue_cap = config.RC.queue_cap;
    sv_requested_inflight = config.RC.max_inflight; sv_inflight_cap = inflight;
    sv_inflight = 0; sv_pool = pool; sv_kind = config.RC.pool_kind;
    sv_host_cores = host_cores; sv_config = config; sv_jobs = [];
    sv_next_id = 0; sv_started_ns = Clock.now_ns (); sv_shut = false }

let effective_inflight t = t.sv_inflight_cap
let host_cores t = t.sv_host_cores
let jobs t = List.rev t.sv_jobs

let state t job =
  Mutex.lock t.sv_mutex;
  let s = job.j_state in
  Mutex.unlock t.sv_mutex;
  s

(* Per-job host knobs must agree with the server's pool: the executor
   is handed the shared pool directly, so its chunking heuristics and
   controller must be sized to it, and a poolless server pins jobs to
   the sequential reference path. *)
let normalize_config t (c : RC.t) =
  match t.sv_pool with
  | Some p -> { c with RC.host_domains = Domain_pool.size p; pool_kind = t.sv_kind }
  | None -> { c with RC.host_domains = 1; pool_kind = t.sv_kind }

(* Run [job] to completion on the calling domain and settle its state.
   Never raises: a failed pipeline is a Failed job, not a dead pool
   task.  Completion frees an in-flight slot, so it pumps the queue —
   that is what keeps a drained server launching jobs without anyone
   calling submit again. *)
let rec run_job_body t job () =
  let outcome =
    try
      let r = execute_spec ?pool:t.sv_pool
          { job.j_spec with js_config = normalize_config t job.j_spec.js_config }
      in
      let now = Clock.now_ns () in
      Done
        { r with
          jr_queue_ns = job.j_start_ns -. job.j_submit_ns;
          jr_service_ns = now -. job.j_start_ns }
    with e -> Failed (Printexc.to_string e)
  in
  Mutex.lock t.sv_mutex;
  job.j_state <- outcome;
  t.sv_inflight <- t.sv_inflight - 1;
  Condition.broadcast t.sv_changed;
  pump t;
  Mutex.unlock t.sv_mutex

(* Launch queued jobs while in-flight capacity allows.  Caller holds
   [sv_mutex]; submission to the pool happens outside the lock (the
   launched slots are reserved first, so concurrent pumps cannot
   overshoot the cap).  With no pool the dequeued jobs run inline —
   sequentially, to completion — on the calling domain. *)
and pump t =
  let launch = ref [] in
  while
    (not (Queue.is_empty t.sv_queue)) && t.sv_inflight < t.sv_inflight_cap
  do
    let job = Queue.pop t.sv_queue in
    job.j_start_ns <- Clock.now_ns ();
    job.j_state <- Running;
    t.sv_inflight <- t.sv_inflight + 1;
    launch := job :: !launch;
    Condition.broadcast t.sv_not_full
  done;
  let launch = List.rev !launch in
  match t.sv_pool with
  | Some pool ->
    Mutex.unlock t.sv_mutex;
    List.iter
      (fun job ->
        let fu = Domain_pool.submit pool (run_job_body t job) in
        Mutex.lock t.sv_mutex;
        job.j_future <- Some fu;
        Condition.broadcast t.sv_changed;
        Mutex.unlock t.sv_mutex)
      launch;
    Mutex.lock t.sv_mutex
  | None ->
    (* Inline: run each dequeued job now.  run_job_body re-locks, so
       release around it; completion may have queued more capacity. *)
    Mutex.unlock t.sv_mutex;
    List.iter (fun job -> run_job_body t job ()) launch;
    Mutex.lock t.sv_mutex;
    if (not (Queue.is_empty t.sv_queue)) && t.sv_inflight < t.sv_inflight_cap then
      pump t

let enqueue_locked t spec =
  let job =
    { j_id = t.sv_next_id; j_spec = spec; j_state = Queued; j_future = None;
      j_submit_ns = Clock.now_ns (); j_start_ns = 0.0 }
  in
  t.sv_next_id <- t.sv_next_id + 1;
  t.sv_jobs <- job :: t.sv_jobs;
  Queue.push job t.sv_queue;
  pump t;
  job

let queue_full t =
  t.sv_queue_cap > 0 && Queue.length t.sv_queue >= t.sv_queue_cap

(* Blocking admission: waits while the queue is at cap (backpressure). *)
let submit t spec =
  Mutex.lock t.sv_mutex;
  if t.sv_shut then begin
    Mutex.unlock t.sv_mutex;
    invalid_arg "Job_server.submit: server is shut down"
  end;
  while queue_full t do
    Condition.wait t.sv_not_full t.sv_mutex
  done;
  let job = enqueue_locked t spec in
  Mutex.unlock t.sv_mutex;
  job

(* Non-blocking admission: [None] when the queue is at cap. *)
let try_submit t spec =
  Mutex.lock t.sv_mutex;
  if t.sv_shut then begin
    Mutex.unlock t.sv_mutex;
    invalid_arg "Job_server.try_submit: server is shut down"
  end;
  let r = if queue_full t then None else Some (enqueue_locked t spec) in
  Mutex.unlock t.sv_mutex;
  r

(* Block until [job] settles.  While its future is pending the calling
   domain helps drain the pool (Domain_pool.await), so awaiting from
   the submitting thread contributes a core instead of idling. *)
let await t job =
  let rec loop () =
    Mutex.lock t.sv_mutex;
    match (job.j_state, job.j_future) with
    | Done r, _ ->
      Mutex.unlock t.sv_mutex;
      Ok r
    | Failed msg, _ ->
      Mutex.unlock t.sv_mutex;
      Error msg
    | (Queued | Running), Some fu ->
      Mutex.unlock t.sv_mutex;
      Domain_pool.await fu;
      loop ()
    | (Queued | Running), None ->
      (* Not launched yet: wait for a launch or settle; every pump and
         every completion broadcasts sv_changed. *)
      Condition.wait t.sv_changed t.sv_mutex;
      Mutex.unlock t.sv_mutex;
      loop ()
  in
  loop ()

let drain t = List.iter (fun job -> ignore (await t job)) (jobs t)

let shutdown t =
  drain t;
  Mutex.lock t.sv_mutex;
  t.sv_shut <- true;
  Mutex.unlock t.sv_mutex;
  Option.iter Domain_pool.shutdown t.sv_pool

(* ---- aggregate report -------------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let i = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) i))

let latency_summary values =
  let a = Array.of_list values in
  Array.sort compare a;
  let n = Array.length a in
  let mean = if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n in
  Json.Obj
    [ ("p50_ms", Json.Float (percentile a 0.50 /. 1e6));
      ("p95_ms", Json.Float (percentile a 0.95 /. 1e6));
      ("mean_ms", Json.Float (mean /. 1e6));
      ("max_ms", Json.Float ((if n = 0 then 0.0 else a.(n - 1)) /. 1e6)) ]

let job_json t job =
  let base =
    [ ("id", Json.Int job.j_id); ("name", Json.String job.j_spec.js_name);
      ("state", Json.String (state_name (state t job))) ]
  in
  match state t job with
  | Done r ->
    let loops =
      List.map
        (fun (loop, (ls : Stats.loop_stats)) ->
          Json.Obj
            [ ("loop", Json.Int loop); ("invocations", Json.Int ls.l_invocations);
              ("misspeculations", Json.Int ls.l_misspeculations);
              ("wall_cycles", Json.Int ls.l_wall_cycles) ])
        (Stats.loop_table r.jr_stats)
    in
    Json.Obj
      (base
      @ [ ("cycles", Json.Int r.jr_cycles);
          ("fallbacks", Json.Int r.jr_fallbacks);
          ("misspeculations", Json.Int r.jr_stats.misspeculations);
          ("iterations", Json.Int r.jr_stats.iterations);
          ("fingerprint", Json.String r.jr_fingerprint);
          ("queue_ms", Json.Float (r.jr_queue_ns /. 1e6));
          ("service_ms", Json.Float (r.jr_service_ns /. 1e6));
          ("profile_ms", Json.Float (r.jr_profile_ns /. 1e6));
          ("loops", Json.List loops) ]
      @ (match r.jr_baseline_cycles with
        | Some c ->
          [ ("baseline_cycles", Json.Int c);
            ( "speedup",
              Json.Float (float_of_int c /. float_of_int (max 1 r.jr_cycles)) );
            ( "output_identical",
              Json.Bool (Option.value ~default:false r.jr_output_identical) ) ]
        | None -> []))
  | Failed msg -> Json.Obj (base @ [ ("error", Json.String msg) ])
  | Queued | Running -> Json.Obj base

(* The aggregate report: admission configuration, throughput over the
   server's lifetime, queue/service latency percentiles, and one entry
   per job.  Meaningful after [drain]. *)
let report t =
  let all = jobs t in
  let results =
    List.filter_map
      (fun j -> match state t j with Done r -> Some r | _ -> None)
      all
  in
  let failed =
    List.length (List.filter (fun j -> match state t j with Failed _ -> true | _ -> false) all)
  in
  let wall_ns = Clock.now_ns () -. t.sv_started_ns in
  let wall_s = wall_ns /. 1e9 in
  Json.Obj
    [ ("jobs", Json.Int (List.length all));
      ("done", Json.Int (List.length results)); ("failed", Json.Int failed);
      ("max_inflight_requested", Json.Int t.sv_requested_inflight);
      ("max_inflight_effective", Json.Int t.sv_inflight_cap);
      ("queue_cap", Json.Int t.sv_queue_cap);
      ("host_cores", Json.Int t.sv_host_cores);
      ("pool_kind", Json.String (Domain_pool.kind_to_string t.sv_kind));
      ("wall_s", Json.Float wall_s);
      ( "throughput_jobs_per_s",
        Json.Float
          (if wall_s <= 0.0 then 0.0 else float_of_int (List.length results) /. wall_s)
      );
      ("queue_latency", latency_summary (List.map (fun r -> r.jr_queue_ns) results));
      ( "service_latency",
        latency_summary (List.map (fun r -> r.jr_service_ns) results) );
      ("job_results", Json.List (List.map (job_json t) all)) ]

(* One-shot convenience: create, submit everything, drain, shut the
   pool down; the returned server holds the settled jobs for [report]
   and inspection. *)
let run_jobs ?host_cores ~config specs =
  let t = create ?host_cores ~config () in
  List.iter (fun spec -> ignore (submit t spec)) specs;
  shutdown t;
  t
