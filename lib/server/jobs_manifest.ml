(* The jobs-manifest format behind `privateer serve`.

   One job per line (nothing in the system parses JSON — Json.mli is
   emission-only — so the manifest is a line format):

     <name> workload:<wl>    [input=train|ref|alt] [train=train|ref|alt]
                             [scale=N] [baseline] [repeat=N] [<knob>=<value> ...]
     <name> scenario:<spec>  [same options as workload:]
     <name> file:<path.cm>   [baseline] [repeat=N] [<knob>=<value> ...]

   `#` starts a comment; blank lines are skipped.  All three source
   kinds resolve through the shared loader (Privateer_gen.Sources), so
   the CLI and the server report identical errors — here each wrapped
   with its line number.  A scenario:<spec> (see docs/SCENARIOS.md) is
   generated on first use and registered as a first-class workload;
   `scale=N` picks the workload's large-input scale factor.  <knob> is
   any Runtime_config CLI binding name (workers, checkpoint, schedule,
   pool-kind, ...), applied over the server's base config — the same
   single table that feeds the CLI flags, so every engine knob is
   expressible per job with no manifest change.  `repeat=N` expands
   the line into N independent jobs named <name>#1 .. <name>#N (each
   with its own parsed AST: concurrent jobs never share programs).
   `file:` paths are resolved against the manifest's directory. *)

module RC = Privateer_parallel.Runtime_config
module Sources = Privateer_gen.Sources
open Privateer_workloads

let fail ~lineno fmt =
  Printf.ksprintf (fun msg -> failwith (Printf.sprintf "line %d: %s" lineno msg)) fmt

let input_of_string ~lineno s =
  match Workload.input_of_name s with
  | Ok i -> i
  | Error msg -> fail ~lineno "%s" msg

(* The per-job engine knobs reuse the CLI's binding table: key=value
   pairs resolve by flag name and fold over the base config. *)
let find_binding key =
  List.find_opt (fun (b : RC.binding) -> List.mem key b.b_flags) RC.cli_bindings

type parsed_line = {
  p_name : string;
  p_source : Sources.t;
  mutable p_train : Workload.input;
  mutable p_run : Workload.input;
  mutable p_scale : int;
  mutable p_config : RC.t;
  mutable p_baseline : bool;
  mutable p_repeat : int;
}

let require_workload ~lineno p key =
  match p.p_source.Sources.src_workload with
  | Some wl -> wl
  | None -> fail ~lineno "%s= only applies to workload: and scenario: jobs" key

let apply_option ~lineno p key value =
  match (key, value) with
  | "input", Some v ->
    let _ = require_workload ~lineno p "input" in
    p.p_run <- input_of_string ~lineno v
  | "train", Some v ->
    let _ = require_workload ~lineno p "train" in
    p.p_train <- input_of_string ~lineno v
  | "scale", Some v -> (
    let wl = require_workload ~lineno p "scale" in
    match int_of_string_opt v with
    | None -> fail ~lineno "scale: expected an integer, got %S" v
    | Some s -> (
      match Workload.check_scale wl s with
      | Ok () -> p.p_scale <- s
      | Error msg -> fail ~lineno "%s" msg))
  | "baseline", None -> p.p_baseline <- true
  | "baseline", Some v -> (
    match bool_of_string_opt v with
    | Some b -> p.p_baseline <- b
    | None -> fail ~lineno "baseline: expected true or false, got %S" v)
  | "repeat", Some v -> (
    match int_of_string_opt v with
    | Some n when n >= 1 -> p.p_repeat <- n
    | Some _ | None -> fail ~lineno "repeat: expected a positive integer, got %S" v)
  | key, value -> (
    match find_binding key with
    | None -> fail ~lineno "unknown job option %S" key
    | Some b -> (
      let v =
        match value with
        | Some v -> v
        | None when b.b_flag_like -> "true"
        | None -> fail ~lineno "option %s needs a value" key
      in
      match b.b_apply p.p_config v with
      | Ok c -> p.p_config <- c
      | Error msg -> fail ~lineno "%s" msg))

let parse_job_line ~base ~dir ~lineno line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] | [ _ ] -> fail ~lineno "expected: <name> <kind>:<arg> [options] (%s)" Sources.kinds
  | name :: src :: options ->
    let source =
      match Sources.parse ~dir src with
      | Ok s -> s
      | Error msg -> fail ~lineno "%s" msg
    in
    let p =
      { p_name = name; p_source = source; p_train = Workload.Train;
        p_run = Workload.Ref; p_scale = 1; p_config = base; p_baseline = false;
        p_repeat = 1 }
    in
    List.iter
      (fun opt ->
        match String.index_opt opt '=' with
        | Some i ->
          apply_option ~lineno p (String.sub opt 0 i)
            (Some (String.sub opt (i + 1) (String.length opt - i - 1)))
        | None -> apply_option ~lineno p opt None)
      options;
    let train, run =
      match p.p_source.Sources.src_workload with
      | Some wl ->
        ( Workload.setup ~scale:p.p_scale wl p.p_train,
          Workload.setup ~scale:p.p_scale wl p.p_run )
      | None -> (Privateer.Pipeline.no_setup, Privateer.Pipeline.no_setup)
    in
    List.init p.p_repeat (fun k ->
        let name =
          if p.p_repeat = 1 then p.p_name
          else Printf.sprintf "%s#%d" p.p_name (k + 1)
        in
        Job_server.job_spec ~train ~run ~config:p.p_config ~baseline:p.p_baseline
          ~name
          (p.p_source.Sources.src_fresh ()))

(* Parse manifest text; [dir] anchors relative file: paths.
   @raise Failure with a line number on malformed lines. *)
let parse ?(dir = ".") ~base text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
         let lineno = i + 1 in
         let line =
           match String.index_opt line '#' with
           | Some j -> String.sub line 0 j
           | None -> line
         in
         let line = String.trim line in
         if line = "" then [] else parse_job_line ~base ~dir ~lineno line)
       lines)

let load ~base path =
  let text = In_channel.with_open_text path In_channel.input_all in
  parse ~dir:(Filename.dirname path) ~base text
