(* The jobs-manifest format behind `privateer serve`.

   One job per line (nothing in the system parses JSON — Json.mli is
   emission-only — so the manifest is a line format):

     <name> workload:<wl> [input=train|ref|alt] [train=train|ref|alt]
                          [baseline] [repeat=N] [<knob>=<value> ...]
     <name> file:<path.cm> [baseline] [repeat=N] [<knob>=<value> ...]

   `#` starts a comment; blank lines are skipped.  <knob> is any
   Runtime_config CLI binding name (workers, checkpoint, schedule,
   pool-kind, ...), applied over the server's base config — the same
   single table that feeds the CLI flags, so every engine knob is
   expressible per job with no manifest change.  `repeat=N` expands
   the line into N independent jobs named <name>#1 .. <name>#N (each
   with its own parsed AST: concurrent jobs never share programs).
   `file:` paths are resolved against the manifest's directory. *)

module RC = Privateer_parallel.Runtime_config
open Privateer_workloads

let fail ~lineno fmt =
  Printf.ksprintf (fun msg -> failwith (Printf.sprintf "line %d: %s" lineno msg)) fmt

let input_of_string ~lineno = function
  | "train" -> Workload.Train
  | "ref" -> Workload.Ref
  | "alt" -> Workload.Alt
  | s -> fail ~lineno "unknown input %S (train|ref|alt)" s

(* The per-job engine knobs reuse the CLI's binding table: key=value
   pairs resolve by flag name and fold over the base config. *)
let find_binding key =
  List.find_opt (fun (b : RC.binding) -> List.mem key b.b_flags) RC.cli_bindings

type parsed_line = {
  p_name : string;
  p_program : unit -> Privateer_ir.Ast.program; (* fresh AST per call *)
  mutable p_train : Privateer.Pipeline.setup;
  mutable p_run : Privateer.Pipeline.setup;
  p_workload : Workload.t option;
  mutable p_config : RC.t;
  mutable p_baseline : bool;
  mutable p_repeat : int;
}

let parse_source ~lineno ~dir src =
  match String.index_opt src ':' with
  | None -> fail ~lineno "job source must be workload:<name> or file:<path>, got %S" src
  | Some i -> (
    let kind = String.sub src 0 i in
    let arg = String.sub src (i + 1) (String.length src - i - 1) in
    match kind with
    | "workload" -> (
      match Workloads.find arg with
      | Some wl -> ((fun () -> Workload.program wl), Some wl)
      | None ->
        fail ~lineno "unknown workload %S (have: %s)" arg
          (String.concat ", " (List.map (fun (w : Workload.t) -> w.name) Workloads.all)))
    | "file" ->
      let path = if Filename.is_relative arg then Filename.concat dir arg else arg in
      if not (Sys.file_exists path) then fail ~lineno "no such file %S" path;
      let source = In_channel.with_open_text path In_channel.input_all in
      ((fun () -> Privateer.Pipeline.parse source), None)
    | k -> fail ~lineno "unknown job source kind %S (workload|file)" k)

let apply_option ~lineno p key value =
  match (key, value) with
  | "input", Some v -> (
    match p.p_workload with
    | Some wl -> p.p_run <- Workload.setup wl (input_of_string ~lineno v)
    | None -> fail ~lineno "input= only applies to workload: jobs")
  | "train", Some v -> (
    match p.p_workload with
    | Some wl -> p.p_train <- Workload.setup wl (input_of_string ~lineno v)
    | None -> fail ~lineno "train= only applies to workload: jobs")
  | "baseline", None -> p.p_baseline <- true
  | "baseline", Some v -> (
    match bool_of_string_opt v with
    | Some b -> p.p_baseline <- b
    | None -> fail ~lineno "baseline: expected true or false, got %S" v)
  | "repeat", Some v -> (
    match int_of_string_opt v with
    | Some n when n >= 1 -> p.p_repeat <- n
    | Some _ | None -> fail ~lineno "repeat: expected a positive integer, got %S" v)
  | key, value -> (
    match find_binding key with
    | None -> fail ~lineno "unknown job option %S" key
    | Some b -> (
      let v =
        match value with
        | Some v -> v
        | None when b.b_flag_like -> "true"
        | None -> fail ~lineno "option %s needs a value" key
      in
      match b.b_apply p.p_config v with
      | Ok c -> p.p_config <- c
      | Error msg -> fail ~lineno "%s" msg))

let parse_job_line ~base ~dir ~lineno line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] | [ _ ] -> fail ~lineno "expected: <name> workload:<wl>|file:<path> [options]"
  | name :: src :: options ->
    let program, workload = parse_source ~lineno ~dir src in
    let p =
      { p_name = name; p_program = program;
        p_train =
          (match workload with
          | Some wl -> Workload.setup wl Workload.Train
          | None -> Privateer.Pipeline.no_setup);
        p_run =
          (match workload with
          | Some wl -> Workload.setup wl Workload.Ref
          | None -> Privateer.Pipeline.no_setup);
        p_workload = workload; p_config = base; p_baseline = false; p_repeat = 1 }
    in
    List.iter
      (fun opt ->
        match String.index_opt opt '=' with
        | Some i ->
          apply_option ~lineno p (String.sub opt 0 i)
            (Some (String.sub opt (i + 1) (String.length opt - i - 1)))
        | None -> apply_option ~lineno p opt None)
      options;
    List.init p.p_repeat (fun k ->
        let name =
          if p.p_repeat = 1 then p.p_name
          else Printf.sprintf "%s#%d" p.p_name (k + 1)
        in
        Job_server.job_spec ~train:p.p_train ~run:p.p_run ~config:p.p_config
          ~baseline:p.p_baseline ~name
          (p.p_program ()))

(* Parse manifest text; [dir] anchors relative file: paths.
   @raise Failure with a line number on malformed lines. *)
let parse ?(dir = ".") ~base text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
         let lineno = i + 1 in
         let line =
           match String.index_opt line '#' with
           | Some j -> String.sub line 0 j
           | None -> line
         in
         let line = String.trim line in
         if line = "" then [] else parse_job_line ~base ~dir ~lineno line)
       lines)

let load ~base path =
  let text = In_channel.with_open_text path In_channel.input_all in
  parse ~dir:(Filename.dirname path) ~base text
