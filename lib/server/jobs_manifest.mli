(** The jobs-manifest format behind [privateer serve].

    One job per line:
    {v
    <name> workload:<wl> [input=train|ref|alt] [train=train|ref|alt]
                         [baseline] [repeat=N] [<knob>=<value> ...]
    <name> file:<path.cm> [baseline] [repeat=N] [<knob>=<value> ...]
    v}

    [#] starts a comment; blank lines are skipped.  [<knob>] is any
    {!Privateer_parallel.Runtime_config.cli_bindings} flag name
    ([workers], [checkpoint], [schedule], [pool-kind], ...), applied
    over the base config — the same table that feeds the CLI flags.
    [repeat=N] expands a line into N independent jobs named
    [<name>#1 .. <name>#N], each with its own parsed AST.  [file:]
    paths are resolved against the manifest's directory. *)

(** Parse manifest text; [dir] (default ["."]) anchors relative
    [file:] paths, [base] is the config job knobs fold over.
    @raise Failure with a line number on malformed lines. *)
val parse :
  ?dir:string ->
  base:Privateer_parallel.Runtime_config.t ->
  string ->
  Job_server.job_spec list

(** Read and {!parse} a manifest file, anchoring [file:] paths at the
    manifest's directory. *)
val load :
  base:Privateer_parallel.Runtime_config.t ->
  string ->
  Job_server.job_spec list
