(** Privateer as a service: a job server multiplexing concurrent
    speculative pipelines over one shared {!Privateer_support.Domain_pool}.

    Each job is a whole pipeline — profile on the train input,
    classify, transform, speculative parallel run on the run input —
    submitted as one pool future; the stage fan-outs inside it
    (checkpoint extraction, merge shards, interval reset) are nested
    [Domain_pool.run] calls whose tasks interleave with other jobs' on
    the same deques.

    {b Admission control.} At most [max_inflight] jobs run at once —
    clamped to the host core count, so a 1-core host degrades to
    sequential execution — and at most [queue_cap] accepted jobs may
    wait ([0]: unbounded); a full queue blocks {!submit} and rejects
    {!try_submit}.

    {b Determinism contract.} A job's simulated cycles, output, result
    and every non-host stats counter (all but the [ns_*] wall-time
    accumulators and the [par_*]/[seq_*] controller decision counters)
    depend only on the job itself: N jobs at any [max_inflight], on
    either pool kind, are byte-identical to the same jobs run
    serially.  {!job_result}.[jr_fingerprint] digests exactly that
    surface. *)

module RC = Privateer_parallel.Runtime_config

(** One parallelization job: a parsed program, its inputs and its
    engine configuration.  Programs are parsed per spec — concurrent
    jobs never share an AST. *)
type job_spec = {
  js_name : string;
  js_program : Privateer_ir.Ast.program;
  js_train : Privateer.Pipeline.setup;  (** profiling input *)
  js_run : Privateer.Pipeline.setup;  (** evaluation input *)
  js_config : RC.t;
  js_baseline : bool;
      (** also run the original program sequentially, recording
          [baseline_cycles] / [output_identical] in the report *)
}

(** Spec builder with the usual defaults ([no_setup] inputs,
    [RC.default], no baseline). *)
val job_spec :
  ?train:Privateer.Pipeline.setup ->
  ?run:Privateer.Pipeline.setup ->
  ?config:RC.t ->
  ?baseline:bool ->
  name:string ->
  Privateer_ir.Ast.program ->
  job_spec

type job_result = {
  jr_name : string;
  jr_cycles : int;  (** simulated parallel cycles (deterministic) *)
  jr_output : string;
  jr_result : string;  (** entry return value, printed *)
  jr_fallbacks : int;
  jr_stats : Privateer_runtime.Stats.t;
  jr_fingerprint : string;
      (** digest of the deterministic surface: cycles, output, result,
          non-host stats counters, per-loop table *)
  jr_baseline_cycles : int option;
  jr_output_identical : bool option;
  jr_queue_ns : float;  (** host wall time from admission to launch *)
  jr_service_ns : float;  (** host wall time from launch to settle *)
  jr_profile_ns : float;
      (** host wall time the training run spent profiling
          ([Profiler.wall_ns]); instrumentation like [jr_queue_ns],
          excluded from the fingerprint *)
}

(** Job lifecycle: [Queued] (admitted, waiting for an in-flight slot)
    → [Running] → [Done] or [Failed] (the pipeline raised; the server
    survives and the exception text is recorded). *)
type state = Queued | Running | Done of job_result | Failed of string

val state_name : state -> string
(** ["queued"] / ["running"] / ["done"] / ["failed"]. *)

(** A job accepted by {!submit} / {!try_submit}. *)
type job

type t

(** [create ~config ()] builds a server from [config]'s [max_inflight],
    [queue_cap], [pool_kind] and [host_domains] knobs, spawning its own
    domain pool (never the [Domain_pool.shared] registry — concurrent
    servers must not shut each other's pools down).  [host_cores]
    overrides the detected core count, for tests: the effective
    in-flight bound is [max_inflight] clamped to it, and a 1-core host
    runs jobs sequentially with no pool at all. *)
val create : ?host_cores:int -> config:RC.t -> unit -> t

val effective_inflight : t -> int
(** The clamped in-flight bound actually enforced. *)

val host_cores : t -> int

(** Blocking admission: enqueue the job, waiting while the queue is at
    [queue_cap] (backpressure).
    @raise Invalid_argument after {!shutdown}. *)
val submit : t -> job_spec -> job

(** Non-blocking admission: [None] when the queue is at cap. *)
val try_submit : t -> job_spec -> job option

val state : t -> job -> state
(** Lifecycle snapshot. *)

(** Block until the job settles.  While waiting, the calling domain
    helps drain the pool, contributing a core instead of idling. *)
val await : t -> job -> (job_result, string) result

val drain : t -> unit
(** {!await} every accepted job. *)

val jobs : t -> job list
(** Every accepted job, in submission order. *)

val shutdown : t -> unit
(** {!drain}, then stop the server's pool and refuse new submissions.
    Settled jobs remain readable ({!state}, {!report}). *)

(** The aggregate report: job counts by outcome, the requested and
    effective in-flight bounds, wall-clock throughput (jobs/s),
    queue/service latency percentiles (p50/p95/mean/max, ms), and one
    entry per job (cycles, fingerprint, per-loop table; error text for
    failed jobs).  Meaningful after {!drain}. *)
val report : t -> Privateer_support.Json.t

(** One-shot convenience: create, submit everything, drain, shut down;
    the returned server holds the settled jobs for {!report} and
    {!jobs}/{!state} inspection. *)
val run_jobs : ?host_cores:int -> config:RC.t -> job_spec list -> t

(**/**)

(** Exposed for tests and the bench determinism check. *)

val fingerprint_of_run :
  output:string ->
  result:string ->
  cycles:int ->
  fallbacks:int ->
  Privateer_runtime.Stats.t ->
  string

val effective_inflight_for : host_cores:int -> max_inflight:int -> int
