(* Facade over the two profiling implementations:

   - the fast path: the shared event {!Frontend} with the registered
     per-profiler consumers ({!Prof_ptr}, {!Prof_lifetime},
     {!Prof_flow}, {!Prof_value}, {!Prof_exec});
   - the monolithic {!Profiler_reference} oracle, selected with the
     pseudo-profiler name ["reference"].

   Every query answers identically across the two, so downstream
   classification and transform decisions never depend on which one
   produced the profile.  Queries belonging to a profiler that was not
   enabled answer as if the profiler observed nothing. *)

open Privateer_ir
open Privateer_interp

type const_status = Profile_types.const_status = Const of Value.t | Varying

type dep_info = Profile_types.dep_info = {
  mutable dep_count : int;
  mutable dep_value : const_status;
  mutable dep_addr : [ `Addr of int | `Many ];
}

type loop_summary = Profile_types.loop_summary = {
  loop_invocations : int;
  loop_trips : int;
  loop_cycles : int;
}

type impl = Fast of Frontend.t | Reference of Profiler_reference.t

type t = { impl : impl; mutable wall_ns : float }

(* Referencing one value from each consumer module forces them to
   link (and so to self-register) even though dispatch below only
   mentions their [State] constructors. *)
let all_profilers = [ Prof_ptr.name; Prof_lifetime.name; Prof_flow.name;
                      Prof_value.name; Prof_exec.name ]

let available () = Frontend.registered ()

let reference_name = "reference"

let create ?(profilers = [ "all" ]) ?pool ?batch () =
  ignore all_profilers;
  if profilers = [ reference_name ] then
    { impl = Reference (Profiler_reference.create ()); wall_ns = 0. }
  else
    { impl = Fast (Frontend.create ~profilers ?pool ?batch ()); wall_ns = 0. }

let create_reference () =
  { impl = Reference (Profiler_reference.create ()); wall_ns = 0. }

let enabled p =
  match p.impl with
  | Fast f -> Frontend.enabled f
  | Reference _ -> [ reference_name ]

let wall_ns p = p.wall_ns
let set_wall_ns p ns = p.wall_ns <- ns

(* ---- attaching to an interpreter ------------------------------------ *)

(* Only kinds in the frontend's [hook_mask] get real hooks; the rest
   keep the no-op defaults, so a restricted profiler set (say exec
   alone) pays nothing per load, store or branch — the interpreter
   calls straight into the same no-ops a plain run does. *)
let fast_hooks f : Hooks.t =
  let m = Frontend.hook_mask f in
  let on k real dflt = if m land Event.bit k <> 0 then real else dflt in
  let d = Hooks.default in
  { Hooks.default with
    on_load =
      on Event.load
        (fun id ~addr ~size ~value -> Frontend.on_load f id ~addr ~size ~value)
        d.on_load;
    on_store =
      on Event.store
        (fun id ~addr ~size ~value:_ -> Frontend.on_store f id ~addr ~size)
        d.on_store;
    on_alloc =
      (fun id ~ctx _kind _heap ~addr ~size -> Frontend.on_alloc f id ~ctx ~addr ~size);
    on_free = (fun _id ~addr ~size _heap -> Frontend.on_free f ~addr ~size);
    on_loop_enter = on Event.enter (fun id -> Frontend.on_loop_enter f id) d.on_loop_enter;
    on_loop_iter =
      on Event.iter (fun id ~iter -> Frontend.on_loop_iter f id ~iter) d.on_loop_iter;
    on_loop_exit =
      on Event.exit'
        (fun id ~trips -> Frontend.on_loop_exit f id ~trips)
        d.on_loop_exit;
    on_branch =
      on Event.branch (fun id ~taken -> Frontend.on_branch f id ~taken) d.on_branch }

let attach p (st : Interp.t) =
  match p.impl with
  | Reference r -> Profiler_reference.attach r st
  | Fast f ->
    List.iter
      (fun (g : Ast.global) ->
        let addr = Hashtbl.find st.globals g.gname in
        Frontend.register_global f g.gname ~addr ~bytes:g.gbytes)
      st.program.globals;
    Frontend.set_get_cycles f (fun () -> st.cycles);
    st.hooks <- fast_hooks f

(* Drain all in-flight event batches; queries do this implicitly, but
   callers that time the profile want the consumers' work on the
   profiling side of the clock. *)
let sync p = match p.impl with Fast f -> Frontend.sync f | Reference _ -> ()

let profile_run ?profilers ?pool program =
  let st = Interp.create program in
  let p = create ?profilers ?pool () in
  attach p st;
  ignore (Interp.run_entry st);
  sync p;
  (p, st)

(* ---- post-run queries ------------------------------------------------ *)

let consumer f name = Frontend.consumer_state f name

let ids_to_set f ids =
  List.fold_left
    (fun acc id -> Objname.Set.add (Frontend.name_of f id) acc)
    Objname.Set.empty ids

let objects_at_site p site =
  match p.impl with
  | Reference r -> Profiler_reference.objects_at_site r site
  | Fast f -> (
    match consumer f Prof_ptr.name with
    | Some (Prof_ptr.State st) -> ids_to_set f (Prof_ptr.objects_at_site st site)
    | _ -> Objname.Set.empty)

let alloc_names p site =
  match p.impl with
  | Reference r -> Profiler_reference.alloc_names r site
  | Fast f -> (
    match consumer f Prof_ptr.name with
    | Some (Prof_ptr.State st) -> ids_to_set f (Prof_ptr.alloc_names st site)
    | _ -> Objname.Set.empty)

let is_short_lived p name ~loop =
  match p.impl with
  | Reference r -> Profiler_reference.is_short_lived r name ~loop
  | Fast f -> (
    match consumer f Prof_lifetime.name with
    | Some (Prof_lifetime.State st) -> (
      match Frontend.id_of_name f name with
      | Some id -> Prof_lifetime.is_short_lived st id loop
      | None -> false)
    | _ -> false)

let flow_deps p ~loop =
  match p.impl with
  | Reference r -> Profiler_reference.flow_deps r ~loop
  | Fast f -> (
    match consumer f Prof_flow.name with
    | Some (Prof_flow.State st) -> Prof_flow.flow_deps st loop
    | _ -> [])

let const_load_value p site =
  match p.impl with
  | Reference r -> Profiler_reference.const_load_value r site
  | Fast f -> (
    match consumer f Prof_value.name with
    | Some (Prof_value.State st) -> Prof_value.const_load_value st site
    | _ -> None)

let branch_bias p branch =
  match p.impl with
  | Reference r -> Profiler_reference.branch_bias r branch
  | Fast f -> (
    match consumer f Prof_value.name with
    | Some (Prof_value.State st) -> Prof_value.branch_bias st branch
    | _ -> None)

let branch_counts p branch =
  match p.impl with
  | Reference r -> Profiler_reference.branch_counts r branch
  | Fast f -> (
    match consumer f Prof_value.name with
    | Some (Prof_value.State st) -> Prof_value.branch_counts st branch
    | _ -> (0, 0))

let loop_summary p loop =
  match p.impl with
  | Reference r -> Profiler_reference.loop_summary r loop
  | Fast f -> (
    match consumer f Prof_exec.name with
    | Some (Prof_exec.State st) -> Prof_exec.loop_summary st loop
    | _ -> None)

let loops_by_weight p =
  match p.impl with
  | Reference r -> Profiler_reference.loops_by_weight r
  | Fast f -> (
    match consumer f Prof_exec.name with
    | Some (Prof_exec.State st) -> Prof_exec.loops_by_weight st
    | _ -> [])

let all_objects p =
  match p.impl with
  | Reference r -> Profiler_reference.all_objects r
  | Fast f -> Frontend.all_objects f

let object_size p name =
  match p.impl with
  | Reference r -> Profiler_reference.object_size r name
  | Fast f -> Frontend.object_size f name

let object_at_addr p addr =
  match p.impl with
  | Reference r -> Profiler_reference.object_at_addr r addr
  | Fast f -> Frontend.object_at_addr f addr
