(* The original monolithic Privateer profiler (paper section 4.1),
   kept verbatim as the differential-testing oracle for the fast
   event-batch frontend — the same pattern as [Shadow_reference] and
   the legacy single-queue domain pool.  All five profilers run over
   one set of interpreter hooks:

   - pointer-to-object profiler: an interval map from live address
     ranges to object names records, for every load/store site, the
     set of objects it was observed to touch;
   - object lifetime profiler: marks objects allocated and freed
     within a single iteration of each enclosing loop (short-lived);
   - memory flow dependence profiler: records cross-iteration
     (loop-carried) flow dependences per loop at word granularity;
   - value-prediction profiler: finds load sites that always observe
     the same constant;
   - execution-time profiler: per-loop invocation/trip/cycle totals,
     used to find hot loops. *)

open Privateer_support
open Privateer_ir
open Privateer_interp

type instance = {
  name : Objname.t;
  birth_vec : (int * int * int) list; (* (loop, invocation, iter) at birth *)
}

type write_rec = { wsite : int; wvec : (int * int * int) list }

type loop_stat = {
  mutable invocations : int;
  mutable trips : int;
  mutable cycles : int;
  mutable enter_cycles : int list; (* stack for nested invocations *)
}

type const_status = Profile_types.const_status = Const of Value.t | Varying

type dep_info = Profile_types.dep_info = {
  mutable dep_count : int;
  mutable dep_value : const_status;
  mutable dep_addr : [ `Addr of int | `Many ];
}

type t = {
  live : instance Interval_map.t;
  site_objects : (int, Objname.Set.t ref) Hashtbl.t;
  alloc_site_names : (int, Objname.Set.t ref) Hashtbl.t;
  (* (name, loop) pairs: allocations observed under the loop, and
     pairs disqualified from short-lived status. *)
  sl_seen : (Objname.t * int, unit) Hashtbl.t;
  sl_bad : (Objname.t * int, unit) Hashtbl.t;
  (* Live objects born during the current invocation of each loop. *)
  born_in : (int, (int, Objname.t) Hashtbl.t) Hashtbl.t;
  flow_deps : (int, (int * int, dep_info) Hashtbl.t) Hashtbl.t;
  branch_counts : (int, (int ref * int ref)) Hashtbl.t; (* taken, not taken *)
  last_write : (int, write_rec) Hashtbl.t; (* word address -> last writer *)
  load_const : (int, const_status) Hashtbl.t;
  loop_stats : (int, loop_stat) Hashtbl.t;
  mutable objects : Objname.Set.t;
  obj_size : (Objname.t, int) Hashtbl.t;
  (* Current loop iteration vector, innermost first. *)
  mutable vec : (int * int * int) list;
  mutable get_cycles : unit -> int;
}

let create () =
  { live = Interval_map.create (); site_objects = Hashtbl.create 64;
    alloc_site_names = Hashtbl.create 16; sl_seen = Hashtbl.create 32;
    sl_bad = Hashtbl.create 32; born_in = Hashtbl.create 8;
    flow_deps = Hashtbl.create 8; branch_counts = Hashtbl.create 32;
    last_write = Hashtbl.create 4096;
    load_const = Hashtbl.create 64; loop_stats = Hashtbl.create 16;
    objects = Objname.Set.empty; obj_size = Hashtbl.create 32; vec = [];
    get_cycles = (fun () -> 0) }

let note_object p name size =
  p.objects <- Objname.Set.add name p.objects;
  match Hashtbl.find_opt p.obj_size name with
  | Some s when s >= size -> ()
  | Some _ | None -> Hashtbl.replace p.obj_size name size

let add_to_set tbl key name =
  match Hashtbl.find_opt tbl key with
  | Some cell -> cell := Objname.Set.add name !cell
  | None -> Hashtbl.replace tbl key (ref (Objname.Set.singleton name))

let stat_of p loop =
  match Hashtbl.find_opt p.loop_stats loop with
  | Some s -> s
  | None ->
    let s = { invocations = 0; trips = 0; cycles = 0; enter_cycles = [] } in
    Hashtbl.replace p.loop_stats loop s;
    s

let mark_sl_bad p name loop = Hashtbl.replace p.sl_bad (name, loop) ()

(* ---- hook bodies ----------------------------------------------------- *)

let name_of_addr p addr =
  match Interval_map.find_opt p.live addr with
  | Some (_, _, inst) -> inst.name
  | None -> Objname.Unknown

let on_access p site addr =
  add_to_set p.site_objects site (name_of_addr p addr)

let word_of addr = addr lsr 3

let on_load p site addr size value =
  on_access p site addr;
  (* Value-prediction candidates. *)
  (match Hashtbl.find_opt p.load_const site with
  | None -> Hashtbl.replace p.load_const site (Const value)
  | Some (Const v) when Value.equal v value -> ()
  | Some (Const _) -> Hashtbl.replace p.load_const site Varying
  | Some Varying -> ());
  (* Cross-iteration flow dependences: did an earlier iteration of any
     currently-active loop write any word this load reads?  The word
     range spans [addr, addr + size), including the trailing word an
     unaligned access crosses into. *)
  for w = word_of addr to word_of (addr + max 1 size - 1) do
    match Hashtbl.find_opt p.last_write w with
    | None -> ()
    | Some { wsite; wvec } ->
      List.iter
        (fun (l, inv, it) ->
          match List.find_opt (fun (l', _, _) -> l' = l) wvec with
          | Some (_, inv', it') when inv' = inv && it' < it ->
            let deps =
              match Hashtbl.find_opt p.flow_deps l with
              | Some d -> d
              | None ->
                let d = Hashtbl.create 16 in
                Hashtbl.replace p.flow_deps l d;
                d
            in
            let info =
              match Hashtbl.find_opt deps (wsite, site) with
              | Some info -> info
              | None ->
                let info =
                  { dep_count = 0; dep_value = Const value; dep_addr = `Addr addr }
                in
                Hashtbl.replace deps (wsite, site) info;
                info
            in
            info.dep_count <- info.dep_count + 1;
            (match info.dep_value with
            | Const v when Value.equal v value -> ()
            | Const _ -> info.dep_value <- Varying
            | Varying -> ());
            (match info.dep_addr with
            | `Addr a when a = addr -> ()
            | `Addr _ -> info.dep_addr <- `Many
            | `Many -> ())
          | Some _ | None -> ())
        p.vec
  done

let on_store p site addr size =
  on_access p site addr;
  for w = word_of addr to word_of (addr + max 1 size - 1) do
    Hashtbl.replace p.last_write w { wsite = site; wvec = p.vec }
  done

let on_alloc p site ctx addr size =
  let name = Objname.Site (site, ctx) in
  note_object p name size;
  add_to_set p.alloc_site_names site name;
  Interval_map.insert p.live addr (addr + size) { name; birth_vec = p.vec };
  List.iter
    (fun (l, _, _) ->
      Hashtbl.replace p.sl_seen (name, l) ();
      match Hashtbl.find_opt p.born_in l with
      | Some tbl -> Hashtbl.replace tbl addr name
      | None ->
        let tbl = Hashtbl.create 16 in
        Hashtbl.replace p.born_in l tbl;
        Hashtbl.replace tbl addr name)
    p.vec

let on_free p addr size =
  (* Recycled ranges must not leave stale last-write records behind:
     a later object at the same address is a different object.  The
     cleared span mirrors the registered range (at least 8 bytes). *)
  for w = word_of addr to word_of (addr + max 8 size - 1) do
    Hashtbl.remove p.last_write w
  done;
  match Interval_map.remove_start p.live addr with
  | None -> () (* freeing something the profiler never saw allocated *)
  | Some (_, inst) ->
    (* Short-lived check: every loop active at birth must still be in
       the same invocation and iteration now; loops active now but not
       at birth saw the object cross into them from outside. *)
    List.iter
      (fun (l, inv, it) ->
        (match List.find_opt (fun (l', _, _) -> l' = l) p.vec with
        | Some (_, inv', it') when inv' = inv && it' = it -> ()
        | Some _ | None -> mark_sl_bad p inst.name l);
        match Hashtbl.find_opt p.born_in l with
        | Some tbl -> Hashtbl.remove tbl addr
        | None -> ())
      inst.birth_vec;
    List.iter
      (fun (l, _, _) ->
        if not (List.exists (fun (l', _, _) -> l' = l) inst.birth_vec) then
          mark_sl_bad p inst.name l)
      p.vec

let on_loop_enter p loop =
  let s = stat_of p loop in
  s.invocations <- s.invocations + 1;
  s.enter_cycles <- p.get_cycles () :: s.enter_cycles;
  p.vec <- (loop, s.invocations, -1) :: p.vec;
  (match Hashtbl.find_opt p.born_in loop with
  | Some tbl -> Hashtbl.reset tbl
  | None -> Hashtbl.replace p.born_in loop (Hashtbl.create 16))

let on_loop_iter p loop iter =
  p.vec <-
    List.map (fun (l, inv, it) -> if l = loop then (l, inv, iter) else (l, inv, it)) p.vec

let on_loop_exit p loop trips =
  let s = stat_of p loop in
  s.trips <- s.trips + trips;
  (match s.enter_cycles with
  | enter :: rest ->
    s.enter_cycles <- rest;
    s.cycles <- s.cycles + (p.get_cycles () - enter)
  | [] -> ());
  (match p.vec with
  | (l, _, _) :: rest when l = loop -> p.vec <- rest
  | _ -> p.vec <- List.filter (fun (l, _, _) -> l <> loop) p.vec);
  (* Objects born in this invocation and still live are not
     short-lived with respect to this loop. *)
  match Hashtbl.find_opt p.born_in loop with
  | None -> ()
  | Some tbl ->
    Hashtbl.iter (fun _addr name -> mark_sl_bad p name loop) tbl;
    Hashtbl.reset tbl

(* ---- attaching to an interpreter ------------------------------------ *)

(* Register the program's globals as named objects (they are allocated
   by Interp.create before hooks can observe them). *)
let register_globals p (st : Interp.t) =
  List.iter
    (fun (g : Ast.global) ->
      let addr = Hashtbl.find st.globals g.gname in
      let name = Objname.Global g.gname in
      note_object p name g.gbytes;
      Interval_map.insert p.live addr (addr + max 8 g.gbytes) { name; birth_vec = [] })
    st.program.globals

let hooks p : Hooks.t =
  { Hooks.default with
    on_load = (fun id ~addr ~size ~value -> on_load p id addr size value);
    on_store = (fun id ~addr ~size ~value:_ -> on_store p id addr size);
    on_alloc = (fun id ~ctx _kind _heap ~addr ~size -> on_alloc p id ctx addr size);
    on_free = (fun _id ~addr ~size _heap -> on_free p addr size);
    on_loop_enter = (fun id -> on_loop_enter p id);
    on_loop_iter = (fun id ~iter -> on_loop_iter p id iter);
    on_loop_exit = (fun id ~trips -> on_loop_exit p id trips);
    on_branch =
      (fun id ~taken ->
        let t, f =
          match Hashtbl.find_opt p.branch_counts id with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.replace p.branch_counts id cell;
            cell
        in
        incr (if taken then t else f)) }

let attach p (st : Interp.t) =
  register_globals p st;
  p.get_cycles <- (fun () -> st.cycles);
  st.hooks <- hooks p

(* Profile a whole program run; returns the profiler and final state. *)
let profile_run program =
  let st = Interp.create program in
  let p = create () in
  attach p st;
  ignore (Interp.run_entry st);
  (p, st)

(* ---- post-run queries ------------------------------------------------ *)

let objects_at_site p site =
  match Hashtbl.find_opt p.site_objects site with
  | Some cell -> !cell
  | None -> Objname.Set.empty

let alloc_names p site =
  match Hashtbl.find_opt p.alloc_site_names site with
  | Some cell -> !cell
  | None -> Objname.Set.empty

let is_short_lived p name ~loop =
  Hashtbl.mem p.sl_seen (name, loop) && not (Hashtbl.mem p.sl_bad (name, loop))

(* Canonical order (writer site, reader site): hash-table fold order
   would differ between implementations of the same dependence set. *)
let flow_deps p ~loop =
  match Hashtbl.find_opt p.flow_deps loop with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun (w, r) info acc -> (w, r, info) :: acc) tbl []
    |> List.sort (fun (w1, r1, _) (w2, r2, _) -> compare (w1, r1) (w2, r2))

(* Branch bias: Some true = always taken, Some false = never taken,
   None = mixed or never executed. *)
let branch_bias p branch =
  match Hashtbl.find_opt p.branch_counts branch with
  | None -> None
  | Some (t, f) ->
    if !t > 0 && !f = 0 then Some true
    else if !f > 0 && !t = 0 then Some false
    else None

let branch_counts p branch =
  match Hashtbl.find_opt p.branch_counts branch with
  | None -> (0, 0)
  | Some (t, f) -> (!t, !f)

let const_load_value p site =
  match Hashtbl.find_opt p.load_const site with
  | Some (Const v) -> Some v
  | Some Varying | None -> None

type loop_summary = Profile_types.loop_summary = {
  loop_invocations : int;
  loop_trips : int;
  loop_cycles : int;
}

let loop_summary p loop =
  match Hashtbl.find_opt p.loop_stats loop with
  | None -> None
  | Some s ->
    Some { loop_invocations = s.invocations; loop_trips = s.trips; loop_cycles = s.cycles }

let all_objects p = p.objects

let object_size p name = Hashtbl.find_opt p.obj_size name

(* The object containing [addr] (and its base address) at the current
   point in the run; used post-run to resolve value-prediction
   addresses against still-live objects such as globals. *)
let object_at_addr p addr =
  match Interval_map.find_opt p.live addr with
  | Some (lo, _, inst) -> Some (inst.name, lo)
  | None -> None

(* Loops sorted by total cycle weight, heaviest first; ties break on
   the loop id so hot-loop selection order is stable. *)
let loops_by_weight p =
  Hashtbl.fold (fun l s acc -> (l, s.cycles) :: acc) p.loop_stats []
  |> List.sort (fun (la, a) (lb, b) ->
         match compare b a with 0 -> compare la lb | c -> c)
