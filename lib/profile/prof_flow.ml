(* Memory flow-dependence profiler: cross-iteration (loop-carried)
   flow dependences per loop, at word granularity.

   The reference keeps a [Hashtbl] from word address to last-writer
   record; here the shadow is a direct-mapped array per heap tag —
   word index [(addr land (capacity-1)) lsr 3] into a grow-on-demand
   array — so the per-word cost of a store is two array writes.  The
   writer's loop context is a shared {!Loop_ctx.snapshot}, refreshed
   only when the context actually changes (the reference rebuilds the
   list on every loop iteration instead). *)

open Privateer_ir

let name = "flow"

type shadow = {
  mutable w_site : int array; (* word -> writer site, -1 = none *)
  mutable w_vec : Loop_ctx.snap array; (* word -> writer context snapshot *)
  mutable w_epoch : int array; (* word -> Loop_ctx.epoch at write *)
}

type t = {
  ctx : Loop_ctx.t;
  shadows : shadow array; (* indexed by heap tag *)
  deps : (int, (int * int, Profile_types.dep_info) Hashtbl.t) Hashtbl.t;
  (* One-entry memo on (loop, writer site, reader site): a streaming
     read repeats the same dependence every iteration, and the memo
     turns those two hash lookups into three compares. *)
  mutable last_loop : int; (* -1 = memo invalid *)
  mutable last_wsite : int;
  mutable last_rsite : int;
  mutable last_info : Profile_types.dep_info;
  mutable scratch : int array; (* match-walk collection buffer *)
  mutable singles : int array array; (* loop -> interned [| loop |] *)
}

type Frontend.state += State of t

let heap_of addr = (addr lsr Heap.tag_shift) land ((1 lsl Heap.tag_bits) - 1)
let word_of addr = (addr land (Heap.capacity - 1)) lsr 3

(* Stdlib.max/min are polymorphic — a generic call per event in the
   hot paths below; these stay integer compares. *)
let[@inline] imax a b : int = if a >= b then a else b
let[@inline] imin a b : int = if a <= b then a else b

let ensure sh word =
  let n = Array.length sh.w_site in
  if word >= n then begin
    let n' = max (max (2 * n) 1024) (word + 1) in
    let ws = Array.make n' (-1) in
    Array.blit sh.w_site 0 ws 0 n;
    let wv = Array.make n' Loop_ctx.empty_snapshot in
    Array.blit sh.w_vec 0 wv 0 n;
    let we = Array.make n' 0 in
    Array.blit sh.w_epoch 0 we 0 n;
    sh.w_site <- ws;
    sh.w_vec <- wv;
    sh.w_epoch <- we
  end

let record_dep p loop wsite rsite addr value =
  let info =
    if loop = p.last_loop && wsite = p.last_wsite && rsite = p.last_rsite then
      p.last_info
    else begin
      let deps =
        match Hashtbl.find_opt p.deps loop with
        | Some d -> d
        | None ->
          let d = Hashtbl.create 16 in
          Hashtbl.replace p.deps loop d;
          d
      in
      let info =
        match Hashtbl.find_opt deps (wsite, rsite) with
        | Some info -> info
        | None ->
          let info =
            { Profile_types.dep_count = 0; dep_value = Profile_types.Const value;
              dep_addr = `Addr addr }
          in
          Hashtbl.replace deps (wsite, rsite) info;
          info
      in
      p.last_loop <- loop;
      p.last_wsite <- wsite;
      p.last_rsite <- rsite;
      p.last_info <- info;
      info
    end
  in
  info.Profile_types.dep_count <- info.Profile_types.dep_count + 1;
  (match info.Profile_types.dep_value with
  | Profile_types.Const v when Privateer_interp.Value.equal v value -> ()
  | Profile_types.Const _ -> info.Profile_types.dep_value <- Profile_types.Varying
  | Profile_types.Varying -> ());
  match info.Profile_types.dep_addr with
  | `Addr a when a = addr -> ()
  | `Addr _ -> info.Profile_types.dep_addr <- `Many
  | `Many -> ()

(* Interned one-loop match sets: nearly every productive walk matches
   exactly one loop, and the memo would otherwise allocate a fresh
   one-element array per (snapshot, epoch). *)
let singleton p l =
  let n = Array.length p.singles in
  if l >= n then begin
    let a = Array.make (max (2 * n) (l + 1)) Loop_ctx.no_loops in
    Array.blit p.singles 0 a 0 n;
    p.singles <- a
  end;
  match p.singles.(l) with
  | [||] ->
    let s = [| l |] in
    p.singles.(l) <- s;
    s
  | s -> s

let seal p n =
  if n = 0 then Loop_ctx.no_loops
  else if n = 1 then singleton p p.scratch.(0)
  else Array.sub p.scratch 0 n

(* The loops matched against writer snapshot [wvec] at the current
   context state: active loops still in the writer's invocation whose
   iteration has advanced.  Word-independent, so the result is cached
   in the snapshot keyed by the context epoch — one walk per
   (snapshot, epoch) serves every word written under that snapshot.

   The walk exploits a structural fact: the stack is LIFO and
   invocation counters are globally unique, so the writer-stack
   entries still live are exactly a *positional common prefix* of the
   current stack.  For duplicate-free snapshots (no recursive loop,
   the overwhelmingly common case) one linear co-walk — compare
   (loop, invocation) level by level from the outermost — finds every
   live entry, with no nested stack search; snapshots carrying a
   duplicated loop id take the shadow-aware quadratic walk instead
   (the reference consults only the innermost entry per loop).

   A walk finding no live entry marks the snapshot *dead*: invocation
   counters only grow, so an ended invocation never returns and the
   snapshot is unmatchable at every future epoch.  Dead snapshots
   (m_epoch = max_int) never walk again — this is what keeps data
   written by a finished loop (initialization is the common case)
   O(1) per read forever after. *)
let matched_loops p (wvec : Loop_ctx.snap) ep =
  if wvec.Loop_ctx.m_epoch >= ep then wvec.Loop_ctx.m_matched
  else begin
    let ctx = p.ctx in
    let tr = wvec.Loop_ctx.triples in
    let ntr = Array.length tr / 3 in
    if Array.length p.scratch < ntr then p.scratch <- Array.make (2 * ntr) 0;
    if not wvec.Loop_ctx.s_dups then begin
      (* Triples are innermost-first; stack index 0 is outermost, so
         triple [ntr - 1 - k] sits at stack position [k].  Returns the
         match count, or -1 when even the outermost writer entry is
         gone (the snapshot is dead); all-int tail recursion so the
         walk allocates nothing. *)
      let lim = imin ntr ctx.Loop_ctx.depth in
      let loops = ctx.Loop_ctx.loops
      and invs = ctx.Loop_ctx.invs
      and iters = ctx.Loop_ctx.iters
      and scratch = p.scratch in
      let rec go k n =
        if k >= lim then n
        else begin
          let j = 3 * (ntr - 1 - k) in
          if
            Array.unsafe_get loops k = Array.unsafe_get tr j
            && Array.unsafe_get invs k = Array.unsafe_get tr (j + 1)
          then
            if Array.unsafe_get iters k > Array.unsafe_get tr (j + 2) then begin
              Array.unsafe_set scratch n (Array.unsafe_get tr j);
              go (k + 1) (n + 1)
            end
            else go (k + 1) n
          else if k = 0 then -1
          else n
        end
      in
      let n = if ntr = 0 then -1 else go 0 0 in
      if n >= 0 then begin
        let m = seal p n in
        wvec.Loop_ctx.m_epoch <- ep;
        wvec.Loop_ctx.m_matched <- m;
        m
      end
      else begin
        wvec.Loop_ctx.m_epoch <- max_int;
        wvec.Loop_ctx.m_matched <- Loop_ctx.no_loops;
        Loop_ctx.no_loops
      end
    end
    else begin
      let n = ref 0 in
      let alive = ref false in
      for j = 0 to ntr - 1 do
        let l = tr.(3 * j) in
        (* Innermost-first: entries shadowed by an earlier entry for
           the same loop are never consulted (the reference's
           [find_opt]). *)
        if Loop_ctx.find_in_snapshot tr l = j then begin
          let inv = tr.((3 * j) + 1) in
          (* The stack level running invocation [inv] of [l], if any
             (invocations are unique, so at most one level matches). *)
          let s = ref (ctx.Loop_ctx.depth - 1) in
          while
            !s >= 0
            && not
                 (Array.unsafe_get ctx.Loop_ctx.loops !s = l
                 && Array.unsafe_get ctx.Loop_ctx.invs !s = inv)
          do
            decr s
          done;
          if !s >= 0 then begin
            alive := true;
            if Array.unsafe_get ctx.Loop_ctx.iters !s > tr.((3 * j) + 2) then begin
              p.scratch.(!n) <- l;
              incr n
            end
          end
        end
      done;
      if !alive then begin
        let m = seal p !n in
        wvec.Loop_ctx.m_epoch <- ep;
        wvec.Loop_ctx.m_matched <- m;
        m
      end
      else begin
        wvec.Loop_ctx.m_epoch <- max_int;
        wvec.Loop_ctx.m_matched <- Loop_ctx.no_loops;
        Loop_ctx.no_loops
      end
    end
  end

let on_load p site addr size _id value =
  let ctx = p.ctx in
  if ctx.Loop_ctx.depth > 0 then begin
    let sh = Array.unsafe_get p.shadows (heap_of addr) in
    let extent = Array.length sh.w_site in
    let ep = ctx.Loop_ctx.epoch in
    for w = word_of addr to word_of (addr + imax 1 size - 1) do
      (* Two word-local fast paths, both a probe and a compare into a
         flat int array: same-epoch (no loop boundary crossed since
         the write, so every active loop is still in the writer's
         iteration — the write-then-read-in-the-same-iteration case)
         and the max_int dead-word sentinel (the writer's loop
         invocations have all ended — data a finished loop
         initialized, re-read forever after). *)
      if w < extent then begin
        let we = Array.unsafe_get sh.w_epoch w in
        if we <> ep && we <> max_int && Array.unsafe_get sh.w_site w >= 0
        then begin
          let wsite = Array.unsafe_get sh.w_site w in
          let wvec = Array.unsafe_get sh.w_vec w in
          let m = matched_loops p wvec ep in
          for k = 0 to Array.length m - 1 do
            record_dep p (Array.unsafe_get m k) wsite site addr value
          done;
          if wvec.Loop_ctx.m_epoch = max_int then
            Array.unsafe_set sh.w_epoch w max_int
        end
      end
    done
  end

let on_store p site addr size _id =
  let sh = p.shadows.(heap_of addr) in
  let hi = word_of (addr + imax 1 size - 1) in
  ensure sh hi;
  let snap = Loop_ctx.snapshot p.ctx in
  let ep = p.ctx.Loop_ctx.epoch in
  for w = word_of addr to hi do
    sh.w_site.(w) <- site;
    sh.w_vec.(w) <- snap;
    sh.w_epoch.(w) <- ep
  done

let on_free p addr size _id =
  let sh = p.shadows.(heap_of addr) in
  let extent = Array.length sh.w_site in
  let hi = imin (word_of (addr + imax 8 size - 1)) (extent - 1) in
  for w = word_of addr to hi do
    sh.w_site.(w) <- -1;
    sh.w_vec.(w) <- Loop_ctx.empty_snapshot
  done

(* Canonical order (writer site, reader site), matching the
   reference. *)
let flow_deps p loop =
  match Hashtbl.find_opt p.deps loop with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun (w, r) info acc -> (w, r, info) :: acc) tbl []
    |> List.sort (fun (w1, r1, _) (w2, r2, _) -> compare (w1, r1) (w2, r2))

let () =
  Frontend.register
    { Frontend.d_name = name;
      d_doc = "flow dependences: cross-iteration read-after-write per loop";
      d_needs_objects = false;
      d_needs_ctx = true;
      d_kinds = Event.(mask_of [ load; store; free ]);
      d_create =
        (fun ~ctx ->
          let p =
            { ctx;
              shadows =
                Array.init
                  (1 lsl Heap.tag_bits)
                  (fun _ -> { w_site = [||]; w_vec = [||]; w_epoch = [||] });
              deps = Hashtbl.create 8; last_loop = -1; last_wsite = -1;
              last_rsite = -1;
              last_info =
                { Profile_types.dep_count = 0;
                  dep_value = Profile_types.Varying; dep_addr = `Many };
              scratch = Array.make 8 0; singles = Array.make 64 Loop_ctx.no_loops }
          in
          { (Frontend.null_consumer (State p)) with
            c_load = on_load p; c_store = on_store p; c_free = on_free p }) }
