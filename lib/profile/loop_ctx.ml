(* Mutable loop-context tracking for profiler consumers: the stack of
   (loop, invocation, iteration) triples for the loops currently
   executing.  The reference profiler rebuilds an immutable list on
   every [on_loop_iter]; here the stack lives in flat arrays mutated
   in place, and consumers that must remember "the context as of this
   event" (flow-dep write records, lifetime birth vectors) take a
   packed [snapshot] that is shared until the next mutation.

   A snapshot is an int array of [3 * depth] slots — loop, invocation,
   iteration — with the innermost loop first, matching the reference's
   innermost-first list order so first-match scans agree.

   Recursion can put the same loop id on the stack more than once;
   [iter] updates every matching entry and [exit] pops the top entry
   if it matches, otherwise removes all matching entries — exactly the
   reference semantics. *)

(* A snapshot carries a match-memo for the flow profiler: the set of
   currently-active loops whose iteration has advanced past this
   context is a function of (snapshot, epoch) alone — not of which
   word is being read — so one walk per (snapshot, epoch) serves every
   shadow word written under that snapshot.  The memo is only ever
   touched by the single consumer owning the context that minted the
   snapshot (contexts are never shared across consumers in batched
   mode), except [empty_snapshot], whose matched set is empty at every
   epoch of every context, making sharing harmless. *)
type snap = {
  triples : int array; (* packed (loop, invocation, iter), innermost first *)
  s_dups : bool; (* some loop id appears twice (recursion) *)
  mutable m_epoch : int; (* epoch [m_matched] was computed at; 0 = never *)
  mutable m_matched : int array; (* loops with a cross-iteration match *)
}

type t = {
  mutable loops : int array; (* index 0 = outermost *)
  mutable invs : int array;
  mutable iters : int array;
  mutable depth : int;
  counts : (int, int ref) Hashtbl.t; (* loop -> invocation counter *)
  mutable snap : snap option; (* cached packed snapshot *)
  mutable epoch : int; (* bumped on every enter/iter/exit *)
}

let no_loops : int array = [||]

let empty_snapshot : snap =
  { triples = [||]; s_dups = false; m_epoch = 0; m_matched = no_loops }

let create () =
  { loops = Array.make 8 0; invs = Array.make 8 0; iters = Array.make 8 0;
    depth = 0; counts = Hashtbl.create 8; snap = Some empty_snapshot;
    epoch = 1 }

let grow t =
  let n = Array.length t.loops * 2 in
  let cp a = let b = Array.make n 0 in Array.blit a 0 b 0 t.depth; b in
  t.loops <- cp t.loops;
  t.invs <- cp t.invs;
  t.iters <- cp t.iters

let enter t loop =
  let c =
    match Hashtbl.find_opt t.counts loop with
    | Some c -> c
    | None -> let c = ref 0 in Hashtbl.replace t.counts loop c; c
  in
  incr c;
  if t.depth = Array.length t.loops then grow t;
  t.loops.(t.depth) <- loop;
  t.invs.(t.depth) <- !c;
  t.iters.(t.depth) <- -1;
  t.depth <- t.depth + 1;
  t.snap <- None;
  t.epoch <- t.epoch + 1

let iter t loop iteration =
  for i = 0 to t.depth - 1 do
    if t.loops.(i) = loop then t.iters.(i) <- iteration
  done;
  t.snap <- None;
  t.epoch <- t.epoch + 1

let exit t loop =
  (if t.depth > 0 && t.loops.(t.depth - 1) = loop then t.depth <- t.depth - 1
   else begin
     (* Unbalanced exit: drop every entry for [loop], compacting. *)
     let j = ref 0 in
     for i = 0 to t.depth - 1 do
       if t.loops.(i) <> loop then begin
         t.loops.(!j) <- t.loops.(i);
         t.invs.(!j) <- t.invs.(i);
         t.iters.(!j) <- t.iters.(i);
         incr j
       end
     done;
     t.depth <- !j
   end);
  t.snap <- None;
  t.epoch <- t.epoch + 1

let depth t = t.depth

(* Innermost-first packed triples; cached and shared until the next
   mutation, so consecutive stores in one iteration share one array. *)
let snapshot t =
  match t.snap with
  | Some s -> s
  | None ->
    let s =
      if t.depth = 0 then empty_snapshot
      else begin
        let a = Array.make (3 * t.depth) 0 in
        for i = 0 to t.depth - 1 do
          let src = t.depth - 1 - i in
          a.(3 * i) <- t.loops.(src);
          a.(3 * i + 1) <- t.invs.(src);
          a.(3 * i + 2) <- t.iters.(src)
        done;
        (* Duplicate loop ids (recursion) force consumers onto the
           shadow-aware slow walk; the check is O(depth^2) but runs
           once per snapshot, amortized over every event sharing it. *)
        let dups = ref false in
        for i = 1 to t.depth - 1 do
          for j = 0 to i - 1 do
            if a.(3 * i) = a.(3 * j) then dups := true
          done
        done;
        { triples = a; s_dups = !dups; m_epoch = 0; m_matched = no_loops }
      end
    in
    t.snap <- Some s;
    s

(* First entry for [loop] in a packed snapshot, innermost-first —
   the analogue of the reference's [List.find_opt] over [wvec].
   Returns the triple index, or -1. *)
let find_in_snapshot snap loop =
  let n = Array.length snap / 3 in
  let rec go i = if i >= n then -1 else if snap.(3 * i) = loop then i else go (i + 1) in
  go 0

(* Innermost entry for [loop] on the current stack (the analogue of
   [List.find_opt] over the reference's innermost-first list).
   Returns the stack index for [inv_at]/[iter_at], or -1. *)
let find_current t loop =
  let rec go i = if i < 0 then -1 else if t.loops.(i) = loop then i else go (i - 1) in
  go (t.depth - 1)

let inv_at t i = t.invs.(i)
let iter_at t i = t.iters.(i)

(* Iterate the current context innermost-first: [f loop inv iter]. *)
let iter_current t f =
  for i = t.depth - 1 downto 0 do
    f t.loops.(i) t.invs.(i) t.iters.(i)
  done
