(** The shared profiling frontend (PROMPT's shape): one fast event
    producer fed by the interpreter hooks, fanned out to independent
    per-profiler consumers.

    The frontend owns the work every profiler shares — object naming
    (live-range interval map behind a last-object cache and a
    direct-mapped page cache) and one shared {!Loop_ctx} loop-context
    stack — and dispatches events to per-kind consumer handlers.
    Without a pool, handlers are called inline and no event is ever
    materialized.  With a {!Privateer_support.Domain_pool} of size > 1
    attached, events append to flat {!Event.t} batches and every
    consumer replays each batch as one pool task under double
    buffering (each ctx-needing consumer replaying loop transitions
    into its own private stack); answers are identical either way. *)

(** Extended by each profiler module with its own state constructor,
    so callers can recover typed state from {!consumer_state}. *)
type state = ..

(** Per-kind handlers; operand order follows the {!Event} layout.
    [c_load site addr size id value], [c_store site addr size id],
    [c_alloc site addr size id], [c_free addr size id],
    [c_enter loop cycles], [c_iter loop iteration],
    [c_exit loop trips cycles], [c_branch id taken]. *)
type consumer = {
  c_state : state;
  c_load : int -> int -> int -> int -> Privateer_interp.Value.t -> unit;
  c_store : int -> int -> int -> int -> unit;
  c_alloc : int -> int -> int -> int -> unit;
  c_free : int -> int -> int -> unit;
  c_enter : int -> int -> unit;
  c_iter : int -> int -> unit;
  c_exit : int -> int -> int -> unit;
  c_branch : int -> int -> unit;
}

(** All-no-op handler table around a state; consumers override the
    kinds they declare in [d_kinds]. *)
val null_consumer : state -> consumer

type descriptor = {
  d_name : string;  (** unique profiler name (the [--profilers] token) *)
  d_doc : string;
  d_needs_objects : bool;
      (** resolve an object name per load/store for this consumer? *)
  d_needs_ctx : bool;
      (** maintain a (loop, invocation, iteration) stack for it? *)
  d_kinds : int;
      (** {!Event.mask_of} of the kinds it handles; the frontend never
          generates kinds no enabled consumer wants *)
  d_create : ctx:Loop_ctx.t -> consumer;
      (** [ctx] is the context stack this consumer must read: the
          frontend's shared stack inline, a private replay stack in
          batched mode *)
}

(** Register a profiler.  Called by each profiler module at init.
    @raise Invalid_argument on a duplicate name. *)
val register : descriptor -> unit

(** Registered profiler names, in registration order. *)
val registered : unit -> string list

val find : string -> descriptor option

type t

(** [create ~profilers ()] instantiates the named profilers (["all"]
    anywhere in the list enables every registered one; duplicates are
    dropped).  @raise Invalid_argument on an unknown name. *)
val create :
  ?profilers:string list -> ?pool:Privateer_support.Domain_pool.t ->
  ?batch:int -> unit -> t

(** Instantiated profiler names. *)
val enabled : t -> string list

(** Cycle source for Enter/Exit event stamps (the interpreter's cycle
    counter). *)
val set_get_cycles : t -> (unit -> int) -> unit

(** Mask ({!Event.bit}) of the event kinds whose hooks do any work for
    the enabled consumer set.  Callers may install no-op interpreter
    hooks for every other kind, so a restricted profiler set pays
    nothing at all for the kinds it ignores.  Allocation and free are
    always included (they maintain the frontend's object naming), and
    the loop kinds whenever some consumer needs the context stack. *)
val hook_mask : t -> int

(** {1 Hook bodies} *)

val on_load : t -> int -> addr:int -> size:int -> value:Privateer_interp.Value.t -> unit
val on_store : t -> int -> addr:int -> size:int -> unit
val on_alloc : t -> int -> ctx:int list -> addr:int -> size:int -> unit
val on_free : t -> addr:int -> size:int -> unit
val on_loop_enter : t -> int -> unit
val on_loop_iter : t -> int -> iter:int -> unit
val on_loop_exit : t -> int -> trips:int -> unit
val on_branch : t -> int -> taken:bool -> unit

(** Register a program global as a named live object (no event:
    globals are allocated before hooks can observe them). *)
val register_global : t -> string -> addr:int -> bytes:int -> unit

(** Drain every produced batch through every consumer; returns when
    all consumer work has finished (inline mode has nothing in
    flight).  Queries sync implicitly. *)
val sync : t -> unit

(** {1 Queries} *)

(** [consumer_state t name] syncs, then returns the named consumer's
    state ([None] if that profiler is not enabled). *)
val consumer_state : t -> string -> state option

(** Interned object name for an event's name id (id 0 = [Unknown]). *)
val name_of : t -> int -> Objname.t

val id_of_name : t -> Objname.t -> int option
val all_objects : t -> Objname.Set.t
val object_size : t -> Objname.t -> int option
val object_at_addr : t -> int -> (Objname.t * int) option
