(** The Privateer profilers (paper section 4.1): pointer-to-object,
    object lifetime, cross-iteration memory flow dependence,
    value-prediction, branch-bias, and per-loop execution time.

    This is a facade over two implementations with identical query
    answers: the fast event-batch frontend with independently
    registered per-profiler consumers ({!Frontend}), and the original
    monolithic profiler kept as the differential-testing oracle
    ({!Profiler_reference}, selected with the pseudo-profiler name
    ["reference"]). *)

type const_status = Profile_types.const_status =
  | Const of Privateer_interp.Value.t
  | Varying

(** Per cross-iteration flow dependence: occurrence count, whether the
    flowing value was one constant, and whether it flowed through a
    single address — constant single-address dependences are
    value-prediction candidates. *)
type dep_info = Profile_types.dep_info = {
  mutable dep_count : int;
  mutable dep_value : const_status;
  mutable dep_addr : [ `Addr of int | `Many ];
}

type t

(** [create ~profilers ()] builds a profiler running only the named
    profilers (see {!available}); ["all"] (the default) enables every
    registered one, ["reference"] selects the monolithic oracle.
    [pool] lets the fast frontend drain event batches on pool domains;
    answers are identical at every pool size.  [batch] overrides the
    event-batch capacity (testing only).
    @raise Invalid_argument on an unknown profiler name. *)
val create :
  ?profilers:string list -> ?pool:Privateer_support.Domain_pool.t ->
  ?batch:int -> unit -> t

(** The monolithic oracle, directly. *)
val create_reference : unit -> t

(** Registered profiler names, in registration order
    (["ptr"; "lifetime"; "flow"; "value"; "exec"]). *)
val available : unit -> string list

(** The profiler names this instance runs (["reference"] for the
    oracle). *)
val enabled : t -> string list

(** Register the program's globals and install the profiling hooks on
    an interpreter (call before [Interp.run_entry]). *)
val attach : t -> Privateer_interp.Interp.t -> unit

(** Drain in-flight event batches.  Queries sync implicitly; callers
    timing the profile call it so consumer work lands on the profiling
    side of the clock. *)
val sync : t -> unit

(** Convenience: create an interpreter, attach, run the program,
    sync. *)
val profile_run :
  ?profilers:string list -> ?pool:Privateer_support.Domain_pool.t ->
  Privateer_ir.Ast.program -> t * Privateer_interp.Interp.t

(** Wall-clock nanoseconds the training run spent profiling, stamped
    by [Pipeline.profile]; 0 until set.  Reporting only — exempt from
    the determinism contract. *)
val wall_ns : t -> float

val set_wall_ns : t -> float -> unit

(** {1 Post-run queries}

    Queries owned by a profiler that was not enabled return the
    empty answer ([Objname.Set.empty], [false], [[]], [None],
    [(0, 0)]). *)

(** Objects a load/store site was observed to touch
    (the paper's [mapPointerToObjects]). *)
val objects_at_site : t -> int -> Objname.Set.t

(** Object names created by an allocation site (one per dynamic
    context). *)
val alloc_names : t -> int -> Objname.Set.t

(** Was every instance of this object allocated and freed within a
    single iteration of [loop]? *)
val is_short_lived : t -> Objname.t -> loop:int -> bool

(** Cross-iteration (loop-carried) flow dependences of [loop]:
    [(writer site, reader site, info)], sorted by (writer, reader). *)
val flow_deps : t -> loop:int -> (int * int * dep_info) list

(** The constant every observation of this load produced, if any. *)
val const_load_value : t -> int -> Privateer_interp.Value.t option

(** [Some true]: branch always taken; [Some false]: never taken;
    [None]: mixed or never executed. *)
val branch_bias : t -> int -> bool option

(** Raw (taken, not-taken) counts. *)
val branch_counts : t -> int -> int * int

type loop_summary = Profile_types.loop_summary = {
  loop_invocations : int;
  loop_trips : int;
  loop_cycles : int;
}

val loop_summary : t -> int -> loop_summary option

(** Every object name observed during the run. *)
val all_objects : t -> Objname.Set.t

(** Largest observed size of the named object. *)
val object_size : t -> Objname.t -> int option

(** The live object containing [addr] (post-run: globals and leaks),
    with its base address. *)
val object_at_addr : t -> int -> (Objname.t * int) option

(** Loops by total profiled cycles, heaviest first; ties break on the
    loop id (the execution-time profiler's hot-loop ranking). *)
val loops_by_weight : t -> (int * int) list
