(* Execution-time profiler: per-loop invocation, trip and cycle
   totals, with a per-loop stack of entry cycle counts for nested
   (recursive) invocations.  Cycle stamps ride on the Enter/Exit
   events, so this consumer never reads interpreter state. *)

let name = "exec"

type stat = {
  mutable invocations : int;
  mutable trips : int;
  mutable cycles : int;
  mutable enter_cycles : int list;
}

type t = { stats : (int, stat) Hashtbl.t }

type Frontend.state += State of t

let stat_of p loop =
  match Hashtbl.find_opt p.stats loop with
  | Some s -> s
  | None ->
    let s = { invocations = 0; trips = 0; cycles = 0; enter_cycles = [] } in
    Hashtbl.replace p.stats loop s;
    s

let on_enter p loop cycles =
  let s = stat_of p loop in
  s.invocations <- s.invocations + 1;
  s.enter_cycles <- cycles :: s.enter_cycles

let on_exit p loop trips cycles =
  let s = stat_of p loop in
  s.trips <- s.trips + trips;
  match s.enter_cycles with
  | enter :: rest ->
    s.enter_cycles <- rest;
    s.cycles <- s.cycles + (cycles - enter)
  | [] -> ()

let loop_summary p loop =
  match Hashtbl.find_opt p.stats loop with
  | None -> None
  | Some s ->
    Some
      { Profile_types.loop_invocations = s.invocations; loop_trips = s.trips;
        loop_cycles = s.cycles }

let loops_by_weight p =
  Hashtbl.fold (fun l s acc -> (l, s.cycles) :: acc) p.stats []
  |> List.sort (fun (la, a) (lb, b) ->
         match compare b a with 0 -> compare la lb | c -> c)

let () =
  Frontend.register
    { Frontend.d_name = name;
      d_doc = "execution time: loop invocation/trip/cycle totals";
      d_needs_objects = false;
      d_needs_ctx = false;
      d_kinds = Event.(mask_of [ enter; exit' ]);
      d_create =
        (fun ~ctx:_ ->
          let p = { stats = Hashtbl.create 16 } in
          { (Frontend.null_consumer (State p)) with
            c_enter = on_enter p; c_exit = on_exit p }) }
