(* Query-result types shared by the fast profiling frontend, the
   per-profiler consumer modules and the [Profiler_reference] oracle.
   The [Profiler] facade re-exports them with type equations, so
   downstream pattern matches compile against either implementation. *)

type const_status = Const of Privateer_interp.Value.t | Varying

(* Per cross-iteration flow dependence: how often it fired, whether the
   flowing value was always one constant, and whether it always flowed
   through a single address.  Constant-value single-address dependences
   are value-prediction candidates (the paper's dijkstra empty-list
   speculation). *)
type dep_info = {
  mutable dep_count : int;
  mutable dep_value : const_status;
  mutable dep_addr : [ `Addr of int | `Many ];
}

type loop_summary = { loop_invocations : int; loop_trips : int; loop_cycles : int }

let const_status_equal a b =
  match (a, b) with
  | Const va, Const vb -> Privateer_interp.Value.equal va vb
  | Varying, Varying -> true
  | Const _, Varying | Varying, Const _ -> false

let dep_info_equal a b =
  a.dep_count = b.dep_count
  && const_status_equal a.dep_value b.dep_value
  && a.dep_addr = b.dep_addr
