(* The shared profiling frontend (PROMPT's shape): one fast event
   producer fed by the interpreter hooks, fanned out to independent
   per-profiler consumers registered through {!register}.

   The frontend owns the work every profiler shares:

   - object naming — a live-range interval map from addresses to
     interned object-name ids, fronted by a last-object cache and a
     direct-mapped page cache so the common strided/repeated access
     patterns never reach the tree;
   - loop context — one flat mutable (loop, invocation, iteration)
     stack ({!Loop_ctx}) updated once per loop transition, shared by
     every consumer that declares [d_needs_ctx] (the reference
     rebuilds an immutable list per iteration; the old fan-out kept
     one stack per consumer);
   - event dispatch — consumers are per-kind handler tables.  Without
     a pool, hooks call the handlers directly: no event is ever
     materialized, and kinds no enabled consumer handles are never
     even dispatched.  With a {!Domain_pool} of size > 1 attached,
     hooks append to flat {!Event.t} batches instead and each
     consumer replays each batch as one pool task under double
     buffering: the frontend keeps exactly two batches, and before
     reusing one it awaits every consumer's previous task — so
     consumer state needs no locking.  In batched mode each
     ctx-needing consumer replays loop transitions into its own
     private {!Loop_ctx}, which is why answers are identical at every
     pool size. *)

open Privateer_support

(* Extended by each profiler module with its own state constructor, so
   the facade can recover typed state from {!consumer_state}. *)
type state = ..

(* Per-kind handlers; operand order follows the {!Event} layout. *)
type consumer = {
  c_state : state;
  c_load : int -> int -> int -> int -> Privateer_interp.Value.t -> unit;
      (* site addr size name-id value *)
  c_store : int -> int -> int -> int -> unit; (* site addr size name-id *)
  c_alloc : int -> int -> int -> int -> unit; (* site addr size name-id *)
  c_free : int -> int -> int -> unit; (* addr size name-id (-1 unknown) *)
  c_enter : int -> int -> unit; (* loop cycles-at-entry *)
  c_iter : int -> int -> unit; (* loop iteration *)
  c_exit : int -> int -> int -> unit; (* loop trips cycles-at-exit *)
  c_branch : int -> int -> unit; (* branch-id taken(1/0) *)
}

(* All-no-op handler table; consumers override the kinds they declare
   in [d_kinds]. *)
let null_consumer st =
  { c_state = st;
    c_load = (fun _ _ _ _ _ -> ());
    c_store = (fun _ _ _ _ -> ());
    c_alloc = (fun _ _ _ _ -> ());
    c_free = (fun _ _ _ -> ());
    c_enter = (fun _ _ -> ());
    c_iter = (fun _ _ -> ());
    c_exit = (fun _ _ _ -> ());
    c_branch = (fun _ _ -> ()) }

type descriptor = {
  d_name : string;
  d_doc : string;
  d_needs_objects : bool;
      (* resolve an object name per load/store for this consumer? *)
  d_needs_ctx : bool; (* maintain a loop-context stack for it? *)
  d_kinds : int; (* Event.mask_of of the kinds it handles *)
  d_create : ctx:Loop_ctx.t -> consumer;
}

let registry : descriptor list ref = ref []

let register d =
  if List.exists (fun d' -> d'.d_name = d.d_name) !registry then
    invalid_arg ("Profile.Frontend.register: duplicate profiler " ^ d.d_name);
  registry := !registry @ [ d ]

let registered () = List.map (fun d -> d.d_name) !registry
let find name = List.find_opt (fun d -> d.d_name = name) !registry

type instance = {
  i_name : string;
  i_consumer : consumer;
  i_mask : int;
  i_needs_ctx : bool;
  i_ctx : Loop_ctx.t; (* private replay stack (batched mode only) *)
  mutable i_pending : unit Domain_pool.future option;
}

(* Page cache geometry: 4 KiB pages, 4096 direct-mapped slots. *)
let page_bits = 12
let pc_slots = 4096

let loop_kinds = Event.(mask_of [ enter; iter; exit' ])

type t = {
  live : int Interval_map.t; (* address range -> name id *)
  mutable names : Objname.t array; (* id -> name; id 0 = Unknown *)
  mutable n_names : int;
  name_ids : (Objname.t, int) Hashtbl.t;
  obj_size : (int, int) Hashtbl.t; (* name id -> max observed size *)
  mutable objects : Objname.Set.t;
  (* Caches are valid only while [gen] is unchanged; every allocation,
     free and global registration bumps it. *)
  mutable gen : int;
  mutable last_gen : int;
  mutable last_lo : int;
  mutable last_hi : int;
  mutable last_id : int;
  pc_gen : int array;
  pc_page : int array;
  pc_lo : int array;
  pc_hi : int array;
  pc_id : int array;
  resolve_names : bool; (* any enabled consumer needs per-access names *)
  needs_ctx : bool; (* any enabled consumer needs the loop context *)
  ctx : Loop_ctx.t; (* the shared stack (inline mode) *)
  wanted : int; (* kinds to dispatch (inline) / materialize (batched) *)
  batched : bool; (* pool of size > 1 attached *)
  (* Inline dispatch tables: the consumers handling each kind. *)
  h_load : (int -> int -> int -> int -> Privateer_interp.Value.t -> unit) array;
  h_store : (int -> int -> int -> int -> unit) array;
  h_alloc : (int -> int -> int -> int -> unit) array;
  h_free : (int -> int -> int -> unit) array;
  h_enter : (int -> int -> unit) array;
  h_iter : (int -> int -> unit) array;
  h_exit : (int -> int -> int -> unit) array;
  h_branch : (int -> int -> unit) array;
  mutable cur : Event.t; (* batch being filled (batched mode) *)
  mutable spare : Event.t; (* batch possibly still in flight *)
  consumers : instance array;
  pool : Domain_pool.t option;
  mutable get_cycles : unit -> int;
}

let default_batch = 4096

let dedup names =
  List.fold_left (fun acc n -> if List.mem n acc then acc else acc @ [ n ]) [] names

let create ?(profilers = [ "all" ]) ?pool ?(batch = default_batch) () =
  let descriptors =
    if List.mem "all" profilers then !registry
    else
      List.map
        (fun n ->
          match find n with
          | Some d -> d
          | None ->
            invalid_arg
              (Printf.sprintf "unknown profiler %S (registered: %s)" n
                 (String.concat ", " (registered ()))))
        (dedup profilers)
  in
  let batched =
    match pool with Some p when Domain_pool.size p > 1 -> true | Some _ | None -> false
  in
  let ctx = Loop_ctx.create () in
  let consumers =
    Array.of_list
      (List.map
         (fun d ->
           (* Inline mode: every ctx consumer shares the frontend's
              stack.  Batched mode: each replays into its own. *)
           let i_ctx =
             if batched && d.d_needs_ctx then Loop_ctx.create () else ctx
           in
           { i_name = d.d_name; i_consumer = d.d_create ~ctx:i_ctx;
             i_mask = d.d_kinds; i_needs_ctx = d.d_needs_ctx; i_ctx;
             i_pending = None })
         descriptors)
  in
  let handler_mask = List.fold_left (fun m d -> m lor d.d_kinds) 0 descriptors in
  let needs_ctx = List.exists (fun d -> d.d_needs_ctx) descriptors in
  let handlers bit proj =
    Array.of_list
      (List.filter_map
         (fun inst ->
           if inst.i_mask land bit <> 0 then Some (proj inst.i_consumer) else None)
         (Array.to_list consumers))
  in
  let t =
    { live = Interval_map.create (); names = Array.make 64 Objname.Unknown;
      n_names = 1; name_ids = Hashtbl.create 64; obj_size = Hashtbl.create 32;
      objects = Objname.Set.empty; gen = 1; last_gen = 0; last_lo = 0;
      last_hi = 0; last_id = 0; pc_gen = Array.make pc_slots 0;
      pc_page = Array.make pc_slots 0; pc_lo = Array.make pc_slots 0;
      pc_hi = Array.make pc_slots 0; pc_id = Array.make pc_slots 0;
      resolve_names = List.exists (fun d -> d.d_needs_objects) descriptors;
      needs_ctx; ctx;
      (* Batched mode must also materialize loop transitions for the
         consumers' private replay stacks. *)
      wanted =
        (if batched && needs_ctx then handler_mask lor loop_kinds else handler_mask);
      batched;
      h_load = handlers (Event.bit Event.load) (fun c -> c.c_load);
      h_store = handlers (Event.bit Event.store) (fun c -> c.c_store);
      h_alloc = handlers (Event.bit Event.alloc) (fun c -> c.c_alloc);
      h_free = handlers (Event.bit Event.free) (fun c -> c.c_free);
      h_enter = handlers (Event.bit Event.enter) (fun c -> c.c_enter);
      h_iter = handlers (Event.bit Event.iter) (fun c -> c.c_iter);
      h_exit = handlers (Event.bit Event.exit') (fun c -> c.c_exit);
      h_branch = handlers (Event.bit Event.branch) (fun c -> c.c_branch);
      cur = Event.create (if batched then batch else 0);
      spare = Event.create (if batched then batch else 0);
      consumers; pool; get_cycles = (fun () -> 0) }
  in
  (* Name id 0 is reserved for [Objname.Unknown]. *)
  Hashtbl.replace t.name_ids Objname.Unknown 0;
  t

let enabled t = Array.to_list (Array.map (fun i -> i.i_name) t.consumers)
let set_get_cycles t f = t.get_cycles <- f

(* ---- object naming --------------------------------------------------- *)

let intern t name =
  match Hashtbl.find_opt t.name_ids name with
  | Some id -> id
  | None ->
    let id = t.n_names in
    if id = Array.length t.names then begin
      let a = Array.make (2 * id) Objname.Unknown in
      Array.blit t.names 0 a 0 id;
      t.names <- a
    end;
    t.names.(id) <- name;
    t.n_names <- id + 1;
    Hashtbl.replace t.name_ids name id;
    id

let name_of t id =
  if id >= 0 && id < t.n_names then t.names.(id) else Objname.Unknown

let id_of_name t name = Hashtbl.find_opt t.name_ids name

let note_object t id size =
  t.objects <- Objname.Set.add t.names.(id) t.objects;
  match Hashtbl.find_opt t.obj_size id with
  | Some s when s >= size -> ()
  | Some _ | None -> Hashtbl.replace t.obj_size id size

(* Name id of the object containing [addr]: last-object cache, then
   the page cache, then the interval map (filling both caches on the
   way out).  Misses resolve to id 0 = Unknown and are not cached —
   in practice almost every access hits a registered object. *)
let resolve t addr =
  if t.last_gen = t.gen && addr >= t.last_lo && addr < t.last_hi then t.last_id
  else begin
    let page = addr lsr page_bits in
    let slot = page land (pc_slots - 1) in
    if
      t.pc_gen.(slot) = t.gen && t.pc_page.(slot) = page
      && addr >= t.pc_lo.(slot)
      && addr < t.pc_hi.(slot)
    then begin
      t.last_gen <- t.gen;
      t.last_lo <- t.pc_lo.(slot);
      t.last_hi <- t.pc_hi.(slot);
      t.last_id <- t.pc_id.(slot);
      t.last_id
    end
    else
      match Interval_map.find_opt t.live addr with
      | Some (lo, hi, id) ->
        t.last_gen <- t.gen;
        t.last_lo <- lo;
        t.last_hi <- hi;
        t.last_id <- id;
        t.pc_gen.(slot) <- t.gen;
        t.pc_page.(slot) <- page;
        t.pc_lo.(slot) <- lo;
        t.pc_hi.(slot) <- hi;
        t.pc_id.(slot) <- id;
        id
      | None -> 0
  end

(* ---- batched hand-off (pool mode) ------------------------------------- *)

(* One consumer replays one batch: loop transitions feed its private
   context stack (in event order, before the handler that observes
   them), handled kinds go to its handler table. *)
let replay inst (e : Event.t) =
  let c = inst.i_consumer in
  let ctx = inst.i_ctx in
  let mask = inst.i_mask in
  let needs_ctx = inst.i_needs_ctx in
  let a = e.Event.a and b = e.Event.b and cc = e.Event.c and d = e.Event.d in
  for i = 0 to e.Event.n - 1 do
    let code = Char.code (Bytes.unsafe_get e.Event.kind i) in
    if needs_ctx then
      if code = Char.code Event.enter then Loop_ctx.enter ctx a.(i)
      else if code = Char.code Event.iter then Loop_ctx.iter ctx a.(i) b.(i)
      else if code = Char.code Event.exit' then Loop_ctx.exit ctx a.(i);
    if mask land (1 lsl code) <> 0 then
      match code with
      | 0 -> c.c_load a.(i) b.(i) cc.(i) d.(i) e.Event.v.(i)
      | 1 -> c.c_store a.(i) b.(i) cc.(i) d.(i)
      | 2 -> c.c_alloc a.(i) b.(i) cc.(i) d.(i)
      | 3 -> c.c_free b.(i) cc.(i) d.(i)
      | 4 -> c.c_enter a.(i) b.(i)
      | 5 -> c.c_iter a.(i) b.(i)
      | 6 -> c.c_exit a.(i) b.(i) cc.(i)
      | 7 -> c.c_branch a.(i) b.(i)
      | _ -> ()
  done

let dispatch t inst batch =
  match t.pool with
  | Some pool -> inst.i_pending <- Some (Domain_pool.submit pool (fun () -> replay inst batch))
  | None -> replay inst batch

let await_pending inst =
  match inst.i_pending with
  | None -> ()
  | Some fut ->
    Domain_pool.await fut;
    inst.i_pending <- None

let flush t =
  if t.cur.Event.n > 0 then begin
    (* The previously submitted batch is [spare]; once every consumer
       has drained it, it becomes the new fill buffer. *)
    Array.iter await_pending t.consumers;
    let batch = t.cur in
    Event.clear t.spare;
    t.cur <- t.spare;
    t.spare <- batch;
    Array.iter (fun inst -> dispatch t inst batch) t.consumers
  end

(* Drain everything: all produced events consumed by all consumers.
   Must run before any query.  Inline mode has nothing in flight. *)
let sync t =
  if t.batched then begin
    flush t;
    Array.iter await_pending t.consumers
  end

let push t k ~a ~b ~c ~d ~v =
  if Event.is_full t.cur then flush t;
  Event.push t.cur k ~a ~b ~c ~d ~v

let[@inline] push_nv t k ~a ~b ~c ~d =
  if Event.is_full t.cur then flush t;
  Event.push_nv t.cur k ~a ~b ~c ~d

(* ---- hook bodies ------------------------------------------------------ *)

(* Every hook first checks the event kind against [wanted]: kinds no
   enabled consumer consumes are never materialized or dispatched (an
   exec-only run does nothing at all on an access).  Naming (interval
   map, interning) is frontend state and is maintained regardless. *)

let[@inline] wants t k = t.wanted land (1 lsl Char.code k) <> 0

(* Kinds whose hooks must actually be invoked: wanted kinds, alloc and
   free unconditionally (they maintain object naming), and the loop
   kinds whenever the shared context stack is maintained inline.
   Callers can install no-op interpreter hooks for everything else. *)
let hook_mask t =
  t.wanted
  lor Event.(mask_of [ alloc; free ])
  lor (if t.needs_ctx then loop_kinds else 0)

let on_load t site ~addr ~size ~value =
  if wants t Event.load then begin
    let d = if t.resolve_names then resolve t addr else 0 in
    if t.batched then push t Event.load ~a:site ~b:addr ~c:size ~d ~v:value
    else
      let hs = t.h_load in
      for i = 0 to Array.length hs - 1 do
        (Array.unsafe_get hs i) site addr size d value
      done
  end

let on_store t site ~addr ~size =
  if wants t Event.store then begin
    let d = if t.resolve_names then resolve t addr else 0 in
    if t.batched then push_nv t Event.store ~a:site ~b:addr ~c:size ~d
    else
      let hs = t.h_store in
      for i = 0 to Array.length hs - 1 do
        (Array.unsafe_get hs i) site addr size d
      done
  end

let on_alloc t site ~ctx ~addr ~size =
  let id = intern t (Objname.Site (site, ctx)) in
  note_object t id size;
  t.gen <- t.gen + 1;
  Interval_map.insert t.live addr (addr + size) id;
  if wants t Event.alloc then
    if t.batched then push_nv t Event.alloc ~a:site ~b:addr ~c:size ~d:id
    else
      let hs = t.h_alloc in
      for i = 0 to Array.length hs - 1 do
        (Array.unsafe_get hs i) site addr size id
      done

let on_free t ~addr ~size =
  t.gen <- t.gen + 1;
  let d =
    match Interval_map.remove_start t.live addr with
    | Some (_, id) -> id
    | None -> -1
  in
  if wants t Event.free then
    if t.batched then push_nv t Event.free ~a:0 ~b:addr ~c:size ~d
    else
      let hs = t.h_free in
      for i = 0 to Array.length hs - 1 do
        (Array.unsafe_get hs i) addr size d
      done

let on_loop_enter t loop =
  if t.batched then begin
    if wants t Event.enter then
      push_nv t Event.enter ~a:loop ~b:(t.get_cycles ()) ~c:0 ~d:0
  end
  else begin
    if t.needs_ctx then Loop_ctx.enter t.ctx loop;
    let hs = t.h_enter in
    if Array.length hs > 0 then begin
      let cy = t.get_cycles () in
      for i = 0 to Array.length hs - 1 do
        (Array.unsafe_get hs i) loop cy
      done
    end
  end

let on_loop_iter t loop ~iter =
  if t.batched then begin
    if wants t Event.iter then push_nv t Event.iter ~a:loop ~b:iter ~c:0 ~d:0
  end
  else begin
    if t.needs_ctx then Loop_ctx.iter t.ctx loop iter;
    let hs = t.h_iter in
    for i = 0 to Array.length hs - 1 do
      (Array.unsafe_get hs i) loop iter
    done
  end

let on_loop_exit t loop ~trips =
  if t.batched then begin
    if wants t Event.exit' then
      push_nv t Event.exit' ~a:loop ~b:trips ~c:(t.get_cycles ()) ~d:0
  end
  else begin
    if t.needs_ctx then Loop_ctx.exit t.ctx loop;
    let hs = t.h_exit in
    if Array.length hs > 0 then begin
      let cy = t.get_cycles () in
      for i = 0 to Array.length hs - 1 do
        (Array.unsafe_get hs i) loop trips cy
      done
    end
  end

let on_branch t id ~taken =
  if wants t Event.branch then begin
    let tk = if taken then 1 else 0 in
    if t.batched then push_nv t Event.branch ~a:id ~b:tk ~c:0 ~d:0
    else
      let hs = t.h_branch in
      for i = 0 to Array.length hs - 1 do
        (Array.unsafe_get hs i) id tk
      done
  end

(* Globals are allocated by [Interp.create] before hooks can observe
   them; register them as named live objects directly (no event —
   nothing is born or freed). *)
let register_global t gname ~addr ~bytes =
  let id = intern t (Objname.Global gname) in
  note_object t id bytes;
  t.gen <- t.gen + 1;
  Interval_map.insert t.live addr (addr + max 8 bytes) id

(* ---- queries ---------------------------------------------------------- *)

let consumer_state t name =
  sync t;
  let found = ref None in
  Array.iter
    (fun inst ->
      if !found = None && inst.i_name = name then found := Some inst.i_consumer.c_state)
    t.consumers;
  !found

let all_objects t = t.objects

let object_size t name =
  match Hashtbl.find_opt t.name_ids name with
  | None -> None
  | Some id -> Hashtbl.find_opt t.obj_size id

let object_at_addr t addr =
  match Interval_map.find_opt t.live addr with
  | Some (lo, _, id) -> Some (t.names.(id), lo)
  | None -> None
